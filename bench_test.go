// Package partitionjoin's root benchmark suite regenerates every table and
// figure of the paper's evaluation section through testing.B entry points.
// Each benchmark logs the experiment's text rendering (run with -v to see
// it) and reports the primary throughput metric so `go test -bench=.`
// doubles as the reproduction harness. The cmd/joinbench and cmd/tpchbench
// binaries run the same experiments with tunable scales.
//
// Scales default small enough for CI hardware; the *Scale constants are the
// single place to raise them on a larger machine.
package main

import (
	"context"
	"testing"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/tpch"
)

const (
	// microScale scales Balkesen et al.'s workloads (1 = 16M x 256M).
	microScale = 1.0 / 128
	// tpchScale is the TPC-H scale factor for the benchmark harness.
	tpchScale = 0.02
)

var benchDB *tpch.DB

func tpchDB() *tpch.DB {
	if benchDB == nil {
		benchDB = tpch.Generate(tpchScale, 1)
	}
	return benchDB
}

func logTable(b *testing.B, t *bench.Table) {
	b.Helper()
	t.Print(func(format string, args ...any) { b.Logf(format, args...) })
}

// logT adapts logTable for the (Table, error) experiment harnesses:
// logT(b)(bench.Fig8(...)) fails the benchmark on error and logs otherwise.
func logT(b *testing.B) func(*bench.Table, error) {
	return func(t *bench.Table, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, t)
	}
}

func singleRun(b *testing.B) {
	b.Helper()
	bench.Runs = 1
}

// BenchmarkTable1WorkloadsAB reports the prior-work workload shapes
// (paper Table 1).
func BenchmarkTable1WorkloadsAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, bench.Table1(microScale))
	}
}

// BenchmarkFig2WorkloadStats reproduces the tuple-size and join-partner
// histograms of Figure 2 over the TPC-H joins.
func BenchmarkFig2WorkloadStats(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(tpch.Fig2(db, 0))
	}
}

// BenchmarkFig8Scalability sweeps thread counts for workloads A and B over
// NPJ, PRJ, BHJ and RJ (Figures 8 and 9 share the harness).
func BenchmarkFig8Scalability(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig8(microScale/2, []int{1, 2}, core.DefaultConfig()))
	}
}

// BenchmarkFig10Bandwidth reports the per-phase memory traffic of the RJ
// (Figure 10, PCM substitute).
func BenchmarkFig10Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig10(microScale/2, core.DefaultConfig()))
	}
}

// BenchmarkFig11TPCH runs every TPC-H join query under BHJ, BRJ and RJ
// with and without late materialization (Figure 11).
func BenchmarkFig11TPCH(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(tpch.Fig11(db, 0, 1))
	}
}

// BenchmarkFig1JoinScatter measures the per-join BRJ-vs-BHJ swap for every
// join of every query with its build/probe volumes (Figure 1).
func BenchmarkFig1JoinScatter(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		points, err := tpch.Fig1(db, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, tpch.Fig1Table(points, db.SF))
	}
}

// BenchmarkFig12PerJoin reproduces the per-join impact plots for the
// paper's selected queries (Figure 12).
func BenchmarkFig12PerJoin(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(tpch.Fig12(db, 0, 1, []int{5, 7, 8, 9, 21, 22}))
	}
}

// BenchmarkFig13Q21Tree prints Q21's join tree annotated with measured
// build/probe volumes (Figure 13).
func BenchmarkFig13Q21Tree(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(tpch.Fig13(db, 0))
	}
}

// BenchmarkFig14Selectivity sweeps foreign-key selectivity (Figure 14).
func BenchmarkFig14Selectivity(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig14(microScale, []float64{0, 0.05, 0.25, 0.5, 1}, core.DefaultConfig()))
	}
}

// BenchmarkFig15Payload sweeps the probe payload width with and without
// late materialization (Figure 15).
func BenchmarkFig15Payload(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig15(microScale, []int{0, 2, 4, 8}, core.DefaultConfig()))
	}
}

// BenchmarkFig16PipelineDepth sweeps chained joins over a star schema
// (Figure 16).
func BenchmarkFig16PipelineDepth(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig16(microScale/4, []int{1, 3, 5, 7}, core.DefaultConfig()))
	}
}

// BenchmarkFig17Skew sweeps Zipf skew for both workloads (Figure 17).
func BenchmarkFig17Skew(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig17(microScale/2, []float64{0, 0.5, 1, 1.5, 2}, core.DefaultConfig()))
	}
}

// BenchmarkFig18Speedup reports the speedups of BRJ and BHJ over the RJ on
// the microbenchmark and TPC-H (Figure 18).
func BenchmarkFig18Speedup(b *testing.B) {
	singleRun(b)
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Fig18Micro(microScale, core.DefaultConfig()))
		logT(b)(tpch.Fig18TPCH(db, 0, 1))
	}
}

// BenchmarkTable3LateMaterialization measures the combined selectivity and
// payload effect of late materialization (Table 3).
func BenchmarkTable3LateMaterialization(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Table3(microScale, core.DefaultConfig()))
	}
}

// BenchmarkTable4WorkableRanges synthesizes the workable/beneficial ranges
// (Table 4) from quick sweeps.
func BenchmarkTable4WorkableRanges(b *testing.B) {
	singleRun(b)
	for i := 0; i < b.N; i++ {
		logT(b)(bench.Table4(microScale, core.DefaultConfig()))
	}
}

// BenchmarkTable5WorkloadProperties contrasts TPC-H with prior work
// (Table 5).
func BenchmarkTable5WorkloadProperties(b *testing.B) {
	db := tpchDB()
	for i := 0; i < b.N; i++ {
		logT(b)(tpch.Table5(db, 0))
	}
}

// --- raw join micro-benchmarks: per-algorithm throughput on workload A ---

func benchJoin(b *testing.B, algo plan.JoinAlgo) {
	spec := bench.WorkloadA(microScale / 2)
	build, probe := spec.Tables()
	tuples := int64(build.NumRows() + probe.NumRows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Runs = 1
		res, err := bench.RunDBMS(build, probe, nil, bench.DBMSOpts{Algo: algo, Core: core.DefaultConfig()})
		if err != nil {
			b.Fatal(err)
		}
		if res.Checksum == 0 {
			b.Fatal("empty join result")
		}
	}
	b.SetBytes(tuples * 16)
}

// BenchmarkJoinBHJ measures the buffered non-partitioned hash join alone.
func BenchmarkJoinBHJ(b *testing.B) { benchJoin(b, plan.BHJ) }

// BenchmarkJoinRJ measures the radix join alone.
func BenchmarkJoinRJ(b *testing.B) { benchJoin(b, plan.RJ) }

// BenchmarkJoinBRJ measures the Bloom-filtered radix join alone.
func BenchmarkJoinBRJ(b *testing.B) { benchJoin(b, plan.BRJ) }

// benchScan measures SUM(v) over k < sel*n on a 2M-row clustered key
// column, with the scan pushdown on or off. The pushed 1% scan rides
// zone-map pruning (nearly every morsel skipped); the acceptance bar is
// >= 3x over the unpushed FilterOp plan at 1% and no regression at 100%.
func benchScan(b *testing.B, sel float64, pushdown bool) {
	b.Helper()
	const rows = 2 << 20
	t := scanBenchTable(rows)
	cutoff := int64(float64(rows) * sel)
	opts := plan.DefaultOptions()
	opts.NoScanPushdown = !pushdown
	root := plan.GroupBy(
		plan.Filter(plan.Scan(t, "k", "v"), expr.LtI("k", cutoff)),
		nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "v", As: "sum_v"},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := plan.ExecuteErr(context.Background(), opts, root)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Result.Vecs[0].I64[0]; got != scanBenchSum(cutoff) {
			b.Fatalf("sum %d, want %d", got, scanBenchSum(cutoff))
		}
	}
	b.SetBytes(rows * 16)
}

// scanBenchSum computes the expected SUM(v) for k < cutoff directly.
func scanBenchSum(cutoff int64) int64 {
	var sum int64
	for i := int64(0); i < cutoff; i++ {
		sum += i % 97
	}
	return sum
}

var scanBenchTbl *storage.Table

func scanBenchTable(rows int) *storage.Table {
	if scanBenchTbl == nil || scanBenchTbl.NumRows() != rows {
		schema := storage.NewSchema(
			storage.ColumnDef{Name: "k", Type: storage.Int64},
			storage.ColumnDef{Name: "v", Type: storage.Int64},
		)
		t := storage.NewTable("scanbench", schema, rows)
		kc := t.Cols[0].(*storage.Int64Column)
		vc := t.Cols[1].(*storage.Int64Column)
		for i := 0; i < rows; i++ {
			kc.Values = append(kc.Values, int64(i))
			vc.Values = append(vc.Values, int64(i%97))
		}
		scanBenchTbl = t
	}
	return scanBenchTbl
}

// BenchmarkScanPruned1pct is the 1%-selectivity range scan with pushdown:
// zone maps skip nearly every morsel of the clustered key column.
func BenchmarkScanPruned1pct(b *testing.B) { benchScan(b, 0.01, true) }

// BenchmarkScanUnpruned1pct is the same scan through the unpushed FilterOp
// plan — the before side of the 3x acceptance bar.
func BenchmarkScanUnpruned1pct(b *testing.B) { benchScan(b, 0.01, false) }

// BenchmarkScanPrunedFull is the 100%-selectivity scan with pushdown, which
// must not regress: nothing prunes, the pushed predicate keeps every row.
func BenchmarkScanPrunedFull(b *testing.B) { benchScan(b, 1, true) }

// BenchmarkScanUnprunedFull is the 100%-selectivity baseline.
func BenchmarkScanUnprunedFull(b *testing.B) { benchScan(b, 1, false) }
