package zipf

import (
	"math"
	"testing"
)

func TestUniformWhenZZero(t *testing.T) {
	g := New(100, 0, 1)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for r, c := range counts {
		if c < n/100/2 || c > n/100*2 {
			t.Fatalf("rank %d count %d far from uniform %d", r, c, n/100)
		}
	}
}

func TestRanksInDomain(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 1.5, 2} {
		g := New(1000, z, 7)
		for i := 0; i < 10000; i++ {
			r := g.Next()
			if r < 0 || r >= 1000 {
				t.Fatalf("z=%v: rank %d out of domain", z, r)
			}
		}
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	// The paper's Section 5.4.5: with z > 1 more than 50% of tuples hit
	// the first 20% of the build relation.
	g := New(1000, 1.25, 3)
	const n = 200000
	inTop := 0
	for i := 0; i < n; i++ {
		if g.Next() < 200 {
			inTop++
		}
	}
	if frac := float64(inTop) / n; frac < 0.5 {
		t.Fatalf("z=1.25: top-20%% mass %.3f, want > 0.5", frac)
	}
}

func TestHigherZMoreSkew(t *testing.T) {
	mass := func(z float64) float64 {
		g := New(1000, z, 11)
		hit := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if g.Next() == 0 {
				hit++
			}
		}
		return float64(hit) / n
	}
	m05, m20 := mass(0.5), mass(2.0)
	if m20 <= m05 {
		t.Fatalf("rank-0 mass should grow with z: z=0.5 -> %.4f, z=2 -> %.4f", m05, m20)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, b := New(500, 1, 42), New(500, 1, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestFill(t *testing.T) {
	g := New(10, 1, 5)
	dst := make([]int64, 256)
	g.Fill(dst)
	for _, v := range dst {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestTheoreticalFirstRankFrequency(t *testing.T) {
	// For z=1, P(rank 0) = 1/H_n; check the empirical frequency.
	n := 100
	hn := 0.0
	for i := 1; i <= n; i++ {
		hn += 1.0 / float64(i)
	}
	g := New(n, 1, 9)
	hits := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		if g.Next() == 0 {
			hits++
		}
	}
	want := 1.0 / hn
	got := float64(hits) / draws
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(rank 0) = %.4f, theory %.4f", got, want)
	}
}
