// Package zipf generates Zipf-distributed keys for the skew experiments
// (Section 5.4.5). The same construction Balkesen et al. use: draw rank r
// from the Zipfian CDF over n items, so that with exponent z more than 50%
// of the probes hit the first 20% of the build relation once z > 1.
//
// math/rand's Zipf requires s > 1; the paper sweeps z from 0 (uniform)
// through 2, so we implement the classic inverse-CDF method that covers the
// full range.
package zipf

import (
	"math"
	"math/rand"
	"sort"
)

// Generator draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^z. z = 0 degenerates to the uniform distribution.
type Generator struct {
	n   int
	z   float64
	cdf []float64 // cumulative probability per rank; nil when z == 0
	rng *rand.Rand
}

// New builds a generator over n items with exponent z, seeded with seed.
// Building the CDF is O(n); drawing is O(log n).
func New(n int, z float64, seed int64) *Generator {
	g := &Generator{n: n, z: z, rng: rand.New(rand.NewSource(seed))}
	if z != 0 {
		g.cdf = make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += 1.0 / math.Pow(float64(i+1), z)
			g.cdf[i] = sum
		}
		inv := 1.0 / sum
		for i := range g.cdf {
			g.cdf[i] *= inv
		}
		g.cdf[n-1] = 1.0
	}
	return g
}

// N returns the domain size.
func (g *Generator) N() int { return g.n }

// Next draws one rank in [0, n).
func (g *Generator) Next() int {
	if g.cdf == nil {
		return g.rng.Intn(g.n)
	}
	u := g.rng.Float64()
	return sort.SearchFloat64s(g.cdf, u)
}

// Fill populates dst with draws.
func (g *Generator) Fill(dst []int64) {
	for i := range dst {
		dst[i] = int64(g.Next())
	}
}
