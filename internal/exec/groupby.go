package exec

import (
	"encoding/binary"
	"math"
	"sync"

	"partitionjoin/internal/govern"
	"partitionjoin/internal/storage"
)

// AggKind enumerates the aggregate functions of the substrate.
type AggKind uint8

const (
	// AggCount counts tuples (COUNT(*)).
	AggCount AggKind = iota
	// AggSumI sums an int64 column (exact, order-independent — decimals
	// are scaled integers so parallel merge order cannot change results).
	AggSumI
	// AggSumF sums a float64 column.
	AggSumF
	// AggMinI / AggMaxI extremize an int64 column.
	AggMinI
	AggMaxI
	// AggMinF / AggMaxF extremize a float64 column.
	AggMinF
	AggMaxF
	// AggAvgF averages an int64 or float64 column into a float64.
	AggAvgF
	// AggCountDistinctI counts distinct int64 values.
	AggCountDistinctI
	// AggMinStr keeps the lexicographically smallest string.
	AggMinStr
)

// AggSpec names one aggregate over a batch vector (Col = vector index;
// -1 for AggCount).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// OutType returns the output type of the aggregate.
func (a AggSpec) OutType() storage.Type {
	switch a.Kind {
	case AggCount, AggSumI, AggMinI, AggMaxI, AggCountDistinctI:
		return storage.Int64
	case AggMinStr:
		return storage.String
	default:
		return storage.Float64
	}
}

// groupTable is one worker's (or the merged) aggregation hash table.
// Groups are keyed by their packed key bytes; states live in flat arrays
// indexed by group id.
type groupTable struct {
	idx     map[string]int32
	rawKeys []string
	keyVecs []Vector
	aggI    [][]int64
	aggF    [][]float64
	aggStr  [][][]byte
	dist    []map[int64]struct{} // flattened: aggIdx*groups would waste; see distFor
	distOf  map[int64]map[int64]struct{}
	n       int32
	// scratch is the worker-local key-packing buffer; keeping it on the
	// table instead of allocating per Consume call keeps the hot path
	// allocation-free.
	scratch []byte
}

// GroupBySink hash-aggregates its input. Workers aggregate into private
// tables (no synchronization on the hot path) that Close merges; the result
// is exposed through Source, which emits key columns followed by one output
// column per aggregate.
type GroupBySink struct {
	Keys []int // vector indices of the grouping keys
	Aggs []AggSpec

	// KeyTypes / KeyCaps describe the grouping key vectors (needed to
	// rebuild output vectors); set by the plan layer from the input shape.
	KeyTypes []storage.Type
	KeyCaps  []int

	// Gov accounts the table's growth with the query's memory governor
	// (coarsely: key bytes plus fixed state per aggregate, charged once
	// per new group). Nil records nothing.
	Gov *govern.Governor

	mu     sync.Mutex
	locals []*groupTable
	merged *groupTable
}

func (g *GroupBySink) newTable() *groupTable {
	t := &groupTable{idx: make(map[string]int32), distOf: make(map[int64]map[int64]struct{})}
	t.keyVecs = make([]Vector, len(g.Keys))
	for i := range t.keyVecs {
		t.keyVecs[i] = NewVector(g.KeyTypes[i], g.KeyCaps[i])
	}
	t.aggI = make([][]int64, len(g.Aggs))
	t.aggF = make([][]float64, len(g.Aggs))
	t.aggStr = make([][][]byte, len(g.Aggs))
	return t
}

// Open implements Sink.
func (g *GroupBySink) Open(workers int) {
	g.locals = make([]*groupTable, workers)
	g.merged = nil
}

func (g *GroupBySink) local(ctx *Ctx) *groupTable {
	t := g.locals[ctx.Worker]
	if t == nil {
		t = g.newTable()
		g.locals[ctx.Worker] = t
	}
	return t
}

// packKey serializes the grouping key of row i into buf.
func (g *GroupBySink) packKey(b *Batch, i int, buf []byte) []byte {
	for _, ki := range g.Keys {
		v := &b.Vecs[ki]
		if v.T == storage.String {
			var lenb [4]byte
			binary.LittleEndian.PutUint32(lenb[:], uint32(len(v.Str[i])))
			buf = append(buf, lenb[:]...)
			buf = append(buf, v.Str[i]...)
		} else if v.T == storage.Float64 {
			var xb [8]byte
			binary.LittleEndian.PutUint64(xb[:], math.Float64bits(v.F64[i]))
			buf = append(buf, xb[:]...)
		} else {
			var xb [8]byte
			binary.LittleEndian.PutUint64(xb[:], uint64(v.I64[i]))
			buf = append(buf, xb[:]...)
		}
	}
	return buf
}

// group finds or creates the group of row i and returns its id.
func (g *GroupBySink) group(t *groupTable, b *Batch, i int, scratch []byte) (int32, []byte) {
	scratch = g.packKey(b, i, scratch[:0])
	gid, ok := t.idx[string(scratch)]
	if !ok {
		gid = t.n
		t.n++
		g.Gov.MustGrant(int64(len(scratch)) + 16*int64(len(g.Aggs)))
		key := string(scratch)
		t.idx[key] = gid
		t.rawKeys = append(t.rawKeys, key)
		for k, ki := range g.Keys {
			v := &b.Vecs[ki]
			kv := &t.keyVecs[k]
			switch kv.T {
			case storage.String:
				kv.Str = append(kv.Str, append([]byte(nil), v.Str[i]...))
			case storage.Float64:
				kv.F64 = append(kv.F64, v.F64[i])
			default:
				kv.I64 = append(kv.I64, v.I64[i])
			}
		}
		for ai, a := range g.Aggs {
			switch a.Kind {
			case AggCount, AggSumI, AggCountDistinctI:
				t.aggI[ai] = append(t.aggI[ai], 0)
			case AggMinI:
				t.aggI[ai] = append(t.aggI[ai], math.MaxInt64)
			case AggMaxI:
				t.aggI[ai] = append(t.aggI[ai], math.MinInt64)
			case AggSumF, AggAvgF:
				t.aggF[ai] = append(t.aggF[ai], 0)
				if a.Kind == AggAvgF {
					t.aggI[ai] = append(t.aggI[ai], 0) // count slot
				}
			case AggMinF:
				t.aggF[ai] = append(t.aggF[ai], math.Inf(1))
			case AggMaxF:
				t.aggF[ai] = append(t.aggF[ai], math.Inf(-1))
			case AggMinStr:
				t.aggStr[ai] = append(t.aggStr[ai], nil)
			}
		}
	}
	return gid, scratch
}

// update folds row i of the batch into group gid.
func (g *GroupBySink) update(t *groupTable, b *Batch, i int, gid int32) {
	for ai, a := range g.Aggs {
		switch a.Kind {
		case AggCount:
			t.aggI[ai][gid]++
		case AggSumI:
			t.aggI[ai][gid] += b.Vecs[a.Col].I64[i]
		case AggSumF:
			t.aggF[ai][gid] += numF(&b.Vecs[a.Col], i)
		case AggMinI:
			if x := b.Vecs[a.Col].I64[i]; x < t.aggI[ai][gid] {
				t.aggI[ai][gid] = x
			}
		case AggMaxI:
			if x := b.Vecs[a.Col].I64[i]; x > t.aggI[ai][gid] {
				t.aggI[ai][gid] = x
			}
		case AggMinF:
			if x := numF(&b.Vecs[a.Col], i); x < t.aggF[ai][gid] {
				t.aggF[ai][gid] = x
			}
		case AggMaxF:
			if x := numF(&b.Vecs[a.Col], i); x > t.aggF[ai][gid] {
				t.aggF[ai][gid] = x
			}
		case AggAvgF:
			t.aggF[ai][gid] += numF(&b.Vecs[a.Col], i)
			t.aggI[ai][gid]++
		case AggCountDistinctI:
			key := int64(ai)<<32 | int64(gid)
			set := t.distOf[key]
			if set == nil {
				set = make(map[int64]struct{})
				t.distOf[key] = set
			}
			set[b.Vecs[a.Col].I64[i]] = struct{}{}
		case AggMinStr:
			s := b.Vecs[a.Col].Str[i]
			cur := t.aggStr[ai][gid]
			if cur == nil || string(s) < string(cur) {
				t.aggStr[ai][gid] = append([]byte(nil), s...)
			}
		}
	}
}

// numF reads a numeric vector value as float64.
func numF(v *Vector, i int) float64 {
	if v.T == storage.Float64 {
		return v.F64[i]
	}
	return float64(v.I64[i])
}

// Consume implements Sink.
func (g *GroupBySink) Consume(ctx *Ctx, b *Batch) {
	t := g.local(ctx)
	if len(g.Keys) == 0 {
		g.consumeGlobal(t, b)
		return
	}
	scratch := t.scratch
	var gid int32
	for i := 0; i < b.N; i++ {
		gid, scratch = g.group(t, b, i, scratch)
		g.update(t, b, i, gid)
	}
	t.scratch = scratch
}

// consumeGlobal is the keyless fast path: a single accumulator per worker,
// updated with one tight loop per aggregate instead of a per-row hash
// lookup — the shape generated code would have for a global aggregate.
func (g *GroupBySink) consumeGlobal(t *groupTable, b *Batch) {
	if t.n == 0 {
		var scratch []byte
		_, _ = g.group(t, b, 0, scratch)
	}
	for _, a := range g.Aggs {
		switch a.Kind {
		case AggCount, AggSumI, AggSumF, AggMinI, AggMaxI:
		default:
			// A non-vectorizable aggregate: fall back to the generic
			// per-row update for the whole batch.
			for i := 0; i < b.N; i++ {
				g.update(t, b, i, 0)
			}
			return
		}
	}
	for ai, a := range g.Aggs {
		switch a.Kind {
		case AggCount:
			t.aggI[ai][0] += int64(b.N)
		case AggSumI:
			var s int64
			for _, v := range b.Vecs[a.Col].I64[:b.N] {
				s += v
			}
			t.aggI[ai][0] += s
		case AggSumF:
			v := &b.Vecs[a.Col]
			if v.T == storage.Float64 {
				var s float64
				for _, x := range v.F64[:b.N] {
					s += x
				}
				t.aggF[ai][0] += s
			} else {
				var s float64
				for _, x := range v.I64[:b.N] {
					s += float64(x)
				}
				t.aggF[ai][0] += s
			}
		case AggMinI:
			m := t.aggI[ai][0]
			for _, v := range b.Vecs[a.Col].I64[:b.N] {
				if v < m {
					m = v
				}
			}
			t.aggI[ai][0] = m
		case AggMaxI:
			m := t.aggI[ai][0]
			for _, v := range b.Vecs[a.Col].I64[:b.N] {
				if v > m {
					m = v
				}
			}
			t.aggI[ai][0] = m
		}
	}
}

// Close implements Sink: merges the worker tables.
func (g *GroupBySink) Close() {
	m := g.newTable()
	for _, t := range g.locals {
		if t == nil {
			continue
		}
		for gid := int32(0); gid < t.n; gid++ {
			key := t.rawKeys[gid]
			mid, ok := m.idx[key]
			if !ok {
				mid = m.n
				m.n++
				m.idx[key] = mid
				m.rawKeys = append(m.rawKeys, key)
				for k := range m.keyVecs {
					kv := &m.keyVecs[k]
					sv := &t.keyVecs[k]
					switch kv.T {
					case storage.String:
						kv.Str = append(kv.Str, sv.Str[gid])
					case storage.Float64:
						kv.F64 = append(kv.F64, sv.F64[gid])
					default:
						kv.I64 = append(kv.I64, sv.I64[gid])
					}
				}
				for ai, a := range g.Aggs {
					switch a.Kind {
					case AggCount, AggSumI, AggMinI, AggMaxI, AggCountDistinctI:
						m.aggI[ai] = append(m.aggI[ai], t.aggI[ai][gid])
					case AggSumF, AggMinF, AggMaxF:
						m.aggF[ai] = append(m.aggF[ai], t.aggF[ai][gid])
					case AggAvgF:
						m.aggF[ai] = append(m.aggF[ai], t.aggF[ai][gid])
						m.aggI[ai] = append(m.aggI[ai], t.aggI[ai][gid])
					case AggMinStr:
						m.aggStr[ai] = append(m.aggStr[ai], t.aggStr[ai][gid])
					}
					if a.Kind == AggCountDistinctI {
						src := t.distOf[int64(ai)<<32|int64(gid)]
						dst := make(map[int64]struct{}, len(src))
						for v := range src {
							dst[v] = struct{}{}
						}
						m.distOf[int64(ai)<<32|int64(mid)] = dst
					}
				}
			} else {
				for ai, a := range g.Aggs {
					switch a.Kind {
					case AggCount, AggSumI:
						m.aggI[ai][mid] += t.aggI[ai][gid]
					case AggSumF:
						m.aggF[ai][mid] += t.aggF[ai][gid]
					case AggMinI:
						if t.aggI[ai][gid] < m.aggI[ai][mid] {
							m.aggI[ai][mid] = t.aggI[ai][gid]
						}
					case AggMaxI:
						if t.aggI[ai][gid] > m.aggI[ai][mid] {
							m.aggI[ai][mid] = t.aggI[ai][gid]
						}
					case AggMinF:
						if t.aggF[ai][gid] < m.aggF[ai][mid] {
							m.aggF[ai][mid] = t.aggF[ai][gid]
						}
					case AggMaxF:
						if t.aggF[ai][gid] > m.aggF[ai][mid] {
							m.aggF[ai][mid] = t.aggF[ai][gid]
						}
					case AggAvgF:
						m.aggF[ai][mid] += t.aggF[ai][gid]
						m.aggI[ai][mid] += t.aggI[ai][gid]
					case AggCountDistinctI:
						dst := m.distOf[int64(ai)<<32|int64(mid)]
						for v := range t.distOf[int64(ai)<<32|int64(gid)] {
							dst[v] = struct{}{}
						}
					case AggMinStr:
						s := t.aggStr[ai][gid]
						cur := m.aggStr[ai][mid]
						if s != nil && (cur == nil || string(s) < string(cur)) {
							m.aggStr[ai][mid] = s
						}
					}
				}
			}
		}
	}
	// SQL semantics: a global aggregate (no GROUP BY keys) over an empty
	// input still yields one row of default values (COUNT = 0).
	if len(g.Keys) == 0 && m.n == 0 {
		m.n = 1
		m.rawKeys = append(m.rawKeys, "")
		m.idx[""] = 0
		for ai, a := range g.Aggs {
			switch a.Kind {
			case AggCount, AggSumI, AggCountDistinctI:
				m.aggI[ai] = append(m.aggI[ai], 0)
			case AggMinI:
				m.aggI[ai] = append(m.aggI[ai], math.MaxInt64)
			case AggMaxI:
				m.aggI[ai] = append(m.aggI[ai], math.MinInt64)
			case AggSumF:
				m.aggF[ai] = append(m.aggF[ai], 0)
			case AggAvgF:
				m.aggF[ai] = append(m.aggF[ai], 0)
				m.aggI[ai] = append(m.aggI[ai], 0)
			case AggMinF:
				m.aggF[ai] = append(m.aggF[ai], math.Inf(1))
			case AggMaxF:
				m.aggF[ai] = append(m.aggF[ai], math.Inf(-1))
			case AggMinStr:
				m.aggStr[ai] = append(m.aggStr[ai], nil)
			}
		}
	}
	g.merged = m
	g.locals = nil
}

// NumGroups returns the number of result groups after Close.
func (g *GroupBySink) NumGroups() int { return int(g.merged.n) }

// Source returns a Source emitting the aggregation result: key columns in
// Keys order followed by one column per aggregate.
func (g *GroupBySink) Source() *GroupSource { return &GroupSource{g: g} }

// OutTypes returns the logical types of the result columns.
func (g *GroupBySink) OutTypes() ([]storage.Type, []int) {
	ts := make([]storage.Type, 0, len(g.Keys)+len(g.Aggs))
	caps := make([]int, 0, len(g.Keys)+len(g.Aggs))
	ts = append(ts, g.KeyTypes...)
	caps = append(caps, g.KeyCaps...)
	for _, a := range g.Aggs {
		ts = append(ts, a.OutType())
		caps = append(caps, 64)
	}
	return ts, caps
}

// GroupSource emits the merged aggregation result batch-wise, split into
// morsel-sized chunks for parallel post-processing (having, ordering).
type GroupSource struct {
	g *GroupBySink
}

// Tasks implements Source.
func (s *GroupSource) Tasks() int {
	return (int(s.g.merged.n) + BatchSize - 1) / BatchSize
}

// Emit implements Source.
func (s *GroupSource) Emit(ctx *Ctx, task int, out Operator) {
	g := s.g
	m := g.merged
	start := task * BatchSize
	end := start + BatchSize
	if end > int(m.n) {
		end = int(m.n)
	}
	ts, caps := g.OutTypes()
	if ctx.scanBatch == nil {
		ctx.scanBatch = NewBatch(ts, caps)
	}
	b := ctx.scanBatch
	b.Reset()
	for k := range g.Keys {
		v := &b.Vecs[k]
		sv := &m.keyVecs[k]
		switch v.T {
		case storage.String:
			v.Str = append(v.Str, sv.Str[start:end]...)
		case storage.Float64:
			v.F64 = append(v.F64, sv.F64[start:end]...)
		default:
			v.I64 = append(v.I64, sv.I64[start:end]...)
		}
	}
	for ai, a := range g.Aggs {
		v := &b.Vecs[len(g.Keys)+ai]
		for gid := start; gid < end; gid++ {
			switch a.Kind {
			case AggCount, AggSumI, AggMinI, AggMaxI:
				v.I64 = append(v.I64, m.aggI[ai][gid])
			case AggSumF, AggMinF, AggMaxF:
				v.F64 = append(v.F64, m.aggF[ai][gid])
			case AggAvgF:
				cnt := m.aggI[ai][gid]
				if cnt == 0 {
					v.F64 = append(v.F64, 0)
				} else {
					v.F64 = append(v.F64, m.aggF[ai][gid]/float64(cnt))
				}
			case AggCountDistinctI:
				v.I64 = append(v.I64, int64(len(m.distOf[int64(ai)<<32|int64(gid)])))
			case AggMinStr:
				v.Str = append(v.Str, m.aggStr[ai][gid])
			}
		}
	}
	b.N = end - start
	if ctx.SourceRows != nil {
		ctx.SourceRows.Add(int64(b.N))
	}
	out.Process(ctx, b)
}
