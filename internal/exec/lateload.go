package exec

import "partitionjoin/internal/storage"

// LateLoadOp implements late materialization (Section 4.2): a pipeline that
// carried only a tuple id (the @rowid pseudo-column) fetches the deferred
// columns by random access once the tuples survived the join. The fetch is
// a vectorized gather over the base table's columns.
type LateLoadOp struct {
	Next     Operator
	Table    *storage.Table
	Cols     []int // storage column indices to fetch
	RowIDVec int   // batch vector index holding tuple ids

	vecs []Vector
}

// NewLateLoadOp builds a late-load operator fetching the named columns.
func NewLateLoadOp(next Operator, t *storage.Table, rowIDVec int, cols ...string) *LateLoadOp {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.MustCol(c)
	}
	return &LateLoadOp{Next: next, Table: t, Cols: idx, RowIDVec: rowIDVec}
}

// Process implements Operator: appends one fetched vector per deferred
// column to the batch.
func (o *LateLoadOp) Process(ctx *Ctx, b *Batch) {
	if b.N == 0 {
		return
	}
	if o.vecs == nil {
		o.vecs = make([]Vector, len(o.Cols))
		for i, ci := range o.Cols {
			def := o.Table.Schema.Cols[ci]
			o.vecs[i] = NewVector(def.Type, def.StrCap)
		}
	}
	ids := b.Vecs[o.RowIDVec].I64
	if o.Table.Pager != nil {
		// Disk-backed table: pin the pages behind the gathered rows for the
		// duration of the fetch (same protocol as TableSource.emit).
		release, err := o.Table.Pager.PinRows(o.Cols, ids[:b.N])
		if err != nil {
			panic(err)
		}
		defer release()
	}
	var bytesRead int64
	for i, ci := range o.Cols {
		v := &o.vecs[i]
		v.Reset()
		switch col := o.Table.Cols[ci].(type) {
		case *storage.Int64Column:
			for _, id := range ids[:b.N] {
				v.I64 = append(v.I64, col.Values[id])
			}
			bytesRead += int64(b.N) * 8
		case *storage.Int32Column:
			for _, id := range ids[:b.N] {
				v.I64 = append(v.I64, int64(col.Values[id]))
			}
			bytesRead += int64(b.N) * 4
		case *storage.Float64Column:
			for _, id := range ids[:b.N] {
				v.F64 = append(v.F64, col.Values[id])
			}
			bytesRead += int64(b.N) * 8
		case *storage.StringColumn:
			for _, id := range ids[:b.N] {
				s := col.Value(int(id))
				v.Str = append(v.Str, s)
				bytesRead += int64(len(s))
			}
		case *storage.DictColumn:
			for _, id := range ids[:b.N] {
				s := col.Value(int(id))
				v.Str = append(v.Str, s)
				bytesRead += int64(len(s))
			}
			bytesRead += int64(b.N) * 4
		}
	}
	ctx.Meter.AddRead(bytesRead)
	n := len(b.Vecs)
	b.Vecs = append(b.Vecs, o.vecs...)
	o.Next.Process(ctx, b)
	copy(o.vecs, b.Vecs[n:])
	b.Vecs = b.Vecs[:n]
}

// Flush implements Operator.
func (o *LateLoadOp) Flush(ctx *Ctx) { o.Next.Flush(ctx) }
