package exec

import (
	"partitionjoin/internal/storage"
)

// TableSource scans a stored table morsel-wise, reading only the requested
// columns (early materialization, Section 4.2): each emitted batch holds
// one vector per requested column, numeric types widened into the I64 lane
// with their declared materialization width preserved.
type TableSource struct {
	Table   *storage.Table
	Cols    []int
	morsels []storage.Morsel
}

// NewTableSource builds a scan source over the named columns.
func NewTableSource(t *storage.Table, cols ...string) *TableSource {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.MustCol(c)
	}
	return &TableSource{Table: t, Cols: idx, morsels: storage.Morsels(t.NumRows(), 0)}
}

// Tasks implements Source: one task per morsel.
func (s *TableSource) Tasks() int { return len(s.morsels) }

// BatchTypes returns the logical types and string caps of emitted batches.
func (s *TableSource) BatchTypes() ([]storage.Type, []int) {
	ts := make([]storage.Type, len(s.Cols))
	caps := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		def := s.Table.Schema.Cols[c]
		ts[i] = def.Type
		caps[i] = def.StrCap
	}
	return ts, caps
}

// Emit implements Source: slices the morsel into batches and pushes them.
func (s *TableSource) Emit(ctx *Ctx, task int, out Operator) {
	m := s.morsels[task]
	b := ctx.srcBatch(s)
	var bytesRead int64
	for start := m.Start; start < m.End; start += BatchSize {
		if ctx.Err() != nil {
			return
		}
		end := start + BatchSize
		if end > m.End {
			end = m.End
		}
		n := end - start
		b.Reset()
		for vi, ci := range s.Cols {
			v := &b.Vecs[vi]
			switch col := s.Table.Cols[ci].(type) {
			case *storage.Int64Column:
				v.I64 = append(v.I64, col.Values[start:end]...)
				bytesRead += int64(n) * 8
			case *storage.Int32Column:
				for _, x := range col.Values[start:end] {
					v.I64 = append(v.I64, int64(x))
				}
				bytesRead += int64(n) * 4
			case *storage.Float64Column:
				v.F64 = append(v.F64, col.Values[start:end]...)
				bytesRead += int64(n) * 8
			case *storage.StringColumn:
				for i := start; i < end; i++ {
					v.Str = append(v.Str, col.Value(i))
					bytesRead += int64(col.Offsets[i+1] - col.Offsets[i])
				}
			}
		}
		b.N = n
		out.Process(ctx, b)
	}
	rows := int64(m.End - m.Start)
	if ctx.SourceRows != nil {
		ctx.SourceRows.Add(rows)
	}
	ctx.Meter.AddRead(bytesRead)
}

// srcBatch returns the per-worker reusable batch for this source.
func (c *Ctx) srcBatch(s *TableSource) *Batch {
	if c.scanBatch == nil {
		ts, caps := s.BatchTypes()
		c.scanBatch = NewBatch(ts, caps)
	}
	return c.scanBatch
}

// RowIDSourceCol is a pseudo-column name understood by plan-level scans to
// request the tuple id (row index) as an extra Int64 vector; the late
// materialization path joins on it after the join phase.
const RowIDSourceCol = "@rowid"

// TableSourceWithRowID scans like TableSource but appends a tuple-id vector.
type TableSourceWithRowID struct {
	TableSource
}

// NewTableSourceWithRowID builds a scan that also emits row ids.
func NewTableSourceWithRowID(t *storage.Table, cols ...string) *TableSourceWithRowID {
	return &TableSourceWithRowID{TableSource: *NewTableSource(t, cols...)}
}

// BatchTypes implements the batch-shape contract including the rowid vector.
func (s *TableSourceWithRowID) BatchTypes() ([]storage.Type, []int) {
	ts, caps := s.TableSource.BatchTypes()
	return append(ts, storage.Int64), append(caps, 0)
}

// Emit implements Source.
func (s *TableSourceWithRowID) Emit(ctx *Ctx, task int, out Operator) {
	m := s.morsels[task]
	if ctx.scanBatch == nil {
		ts, caps := s.BatchTypes()
		ctx.scanBatch = NewBatch(ts, caps)
	}
	b := ctx.scanBatch
	var bytesRead int64
	for start := m.Start; start < m.End; start += BatchSize {
		if ctx.Err() != nil {
			return
		}
		end := start + BatchSize
		if end > m.End {
			end = m.End
		}
		n := end - start
		b.Reset()
		for vi, ci := range s.Cols {
			v := &b.Vecs[vi]
			switch col := s.Table.Cols[ci].(type) {
			case *storage.Int64Column:
				v.I64 = append(v.I64, col.Values[start:end]...)
				bytesRead += int64(n) * 8
			case *storage.Int32Column:
				for _, x := range col.Values[start:end] {
					v.I64 = append(v.I64, int64(x))
				}
				bytesRead += int64(n) * 4
			case *storage.Float64Column:
				v.F64 = append(v.F64, col.Values[start:end]...)
				bytesRead += int64(n) * 8
			case *storage.StringColumn:
				for i := start; i < end; i++ {
					v.Str = append(v.Str, col.Value(i))
					bytesRead += int64(col.Offsets[i+1] - col.Offsets[i])
				}
			}
		}
		rid := &b.Vecs[len(s.Cols)]
		for i := start; i < end; i++ {
			rid.I64 = append(rid.I64, int64(i))
		}
		b.N = n
		out.Process(ctx, b)
	}
	if ctx.SourceRows != nil {
		ctx.SourceRows.Add(int64(m.End - m.Start))
	}
	ctx.Meter.AddRead(bytesRead)
}
