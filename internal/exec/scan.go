package exec

import (
	"partitionjoin/internal/storage"
)

// TableSource scans a stored table morsel-wise, reading only the requested
// columns (early materialization, Section 4.2): each emitted batch holds
// one vector per requested column, numeric types widened into the I64 lane
// with their declared materialization width preserved.
//
// With pushed predicates (SetPushed) the scan consults zone maps to skip
// whole morsels and whole batches whose value ranges provably miss a
// predicate, and evaluates the predicates on the raw storage slices before
// widening, materializing only the surviving rows. Dictionary-encoded string
// columns listed in codeCols are emitted as their int32 codes on the I64
// lane instead of decoded bytes (SetCodeCols).
type TableSource struct {
	Table   *storage.Table
	Cols    []int
	morsels []storage.Morsel
	// pushed are scan-evaluated predicate conjuncts; pruner holds their zone
	// maps (nil when nothing is pushed).
	pushed []ScanPred
	pruner *scanPruner
	// codeCols[i] means Cols[i] is a dictionary column emitted as codes.
	codeCols []bool
	// pinCols is the union of scanned and pushed-predicate storage columns:
	// every column whose raw slices a morsel touches, and therefore the set
	// pinned through Table.Pager while the morsel runs (disk-backed tables
	// only; nil Pager skips pinning entirely).
	pinCols []int
}

// NewTableSource builds a scan source over the named columns.
func NewTableSource(t *storage.Table, cols ...string) *TableSource {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.MustCol(c)
	}
	return &TableSource{Table: t, Cols: idx, pinCols: append([]int(nil), idx...),
		morsels: storage.Morsels(t.NumRows(), 0)}
}

// SetPushed installs pushed predicates and builds their zone maps. Call
// before the scan runs (plan compile time), never concurrently with Emit.
func (s *TableSource) SetPushed(preds []ScanPred) {
	s.pushed = preds
	s.pruner = newScanPruner(s.Table, preds)
	for _, p := range preds {
		seen := false
		for _, c := range s.pinCols {
			if c == p.Col {
				seen = true
				break
			}
		}
		if !seen {
			s.pinCols = append(s.pinCols, p.Col)
		}
	}
}

// Pushed returns the installed pushed predicates.
func (s *TableSource) Pushed() []ScanPred { return s.pushed }

// SetCodeCols marks which of the scanned columns (by position) are
// dictionary columns to emit as int32 codes rather than decoded strings.
func (s *TableSource) SetCodeCols(codeCols []bool) { s.codeCols = codeCols }

// Tasks implements Source: one task per morsel.
func (s *TableSource) Tasks() int { return len(s.morsels) }

// BatchTypes returns the logical types and string caps of emitted batches.
// Code-emitted dictionary columns surface as Int32 (4-byte values on the
// I64 lane), which is also the width joins pack for them.
func (s *TableSource) BatchTypes() ([]storage.Type, []int) {
	ts := make([]storage.Type, len(s.Cols))
	caps := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		def := s.Table.Schema.Cols[c]
		ts[i] = def.Type
		caps[i] = def.StrCap
		if len(s.codeCols) > 0 && s.codeCols[i] {
			ts[i] = storage.Int32
			caps[i] = 0
		}
	}
	return ts, caps
}

// Emit implements Source: slices the morsel into batches and pushes them.
func (s *TableSource) Emit(ctx *Ctx, task int, out Operator) {
	b := ctx.srcBatch(s)
	s.emit(ctx, task, out, b, false)
}

// emit is the shared scan body; withRowID appends a tuple-id vector after
// the column vectors. Pruned rows still count toward SourceRows — the
// throughput metric divides source tuples by duration, and a scan that
// skipped a morsel did process it, just without touching its bytes.
func (s *TableSource) emit(ctx *Ctx, task int, out Operator, b *Batch, withRowID bool) {
	m := s.morsels[task]
	rows := int64(m.End - m.Start)
	defer func() {
		if ctx.SourceRows != nil {
			ctx.SourceRows.Add(rows)
		}
	}()
	if s.pruner != nil && s.pruner.rangePruned(m.Start, m.End) {
		ctx.Meter.AddMorselsPruned(1)
		return
	}
	if s.Table.Pager != nil {
		// Disk-backed table: pin the pages behind this morsel's columns
		// (scanned and predicate) before touching their slices. Pinning
		// verifies checksums on first touch; damage surfaces as a typed
		// error through the pipeline's panic containment, never as wrong
		// rows. Zone-pruned morsels above never fault their pages in.
		release, err := s.Table.Pager.PinRange(s.pinCols, m.Start, m.End)
		if err != nil {
			panic(err)
		}
		defer release()
	}
	var bytesRead, batchesPruned, prefiltered, fullMatch int64
	for start := m.Start; start < m.End; start += BatchSize {
		if ctx.Err() != nil {
			break
		}
		end := start + BatchSize
		if end > m.End {
			end = m.End
		}
		n := end - start
		if s.pruner != nil && s.pruner.rangePruned(start, end) {
			batchesPruned++
			continue
		}
		var keep []bool
		kept := n
		if len(s.pushed) > 0 {
			if s.pruner != nil && s.pruner.rangeAllMatch(start, end) {
				// Zone blocks prove every row matches: skip per-row
				// evaluation, emit on the fully-kept zero-copy path.
				fullMatch++
			} else {
				keep = ctx.KeepBuf(n)
				kept = evalPushed(s.Table, s.pushed, keep, start, end, &bytesRead)
				prefiltered += int64(n - kept)
				if kept == 0 {
					continue
				}
				if kept == n {
					keep = nil // batch fully kept: use the bulk copy path
				}
			}
		}
		b.Reset()
		for vi, ci := range s.Cols {
			code := len(s.codeCols) > 0 && s.codeCols[vi]
			s.appendCol(&b.Vecs[vi], ci, start, end, keep, code, &bytesRead)
		}
		if withRowID {
			rid := &b.Vecs[len(s.Cols)]
			for i := start; i < end; i++ {
				if keep == nil || keep[i-start] {
					rid.I64 = append(rid.I64, int64(i))
				}
			}
		}
		b.N = kept
		out.Process(ctx, b)
	}
	ctx.Meter.AddRead(bytesRead)
	ctx.Meter.AddBatchesPruned(batchesPruned)
	ctx.Meter.AddRowsPrefiltered(prefiltered)
	ctx.Meter.AddBatchesFullMatch(fullMatch)
}

// appendCol widens rows [start, end) of storage column ci into v, keeping
// only rows where keep is true (nil keep = all rows). Fully-kept Int64 and
// Float64 columns are zero-copy: the vector aliases the storage slice
// (Vector.ShareI64/ShareF64) instead of memmoving 8 KiB per batch, and the
// copy-on-write machinery in Vector keeps downstream mutation safe.
func (s *TableSource) appendCol(v *Vector, ci, start, end int, keep []bool, code bool, bytesRead *int64) {
	n := end - start
	switch col := s.Table.Cols[ci].(type) {
	case *storage.Int64Column:
		if keep == nil {
			v.ShareI64(col.Values[start:end])
		} else {
			for i, x := range col.Values[start:end] {
				if keep[i] {
					v.I64 = append(v.I64, x)
				}
			}
		}
		*bytesRead += int64(n) * 8
	case *storage.Int32Column:
		vals := col.Values[start:end]
		if keep == nil {
			v.I64 = widenI32(v.I64, vals, nil)
		} else {
			v.I64 = widenI32(v.I64, vals, keep)
		}
		*bytesRead += int64(n) * 4
	case *storage.Float64Column:
		if keep == nil {
			v.ShareF64(col.Values[start:end])
		} else {
			for i, x := range col.Values[start:end] {
				if keep[i] {
					v.F64 = append(v.F64, x)
				}
			}
		}
		*bytesRead += int64(n) * 8
	case *storage.StringColumn:
		for i := start; i < end; i++ {
			if keep == nil || keep[i-start] {
				v.Str = append(v.Str, col.Value(i))
				*bytesRead += int64(col.Offsets[i+1] - col.Offsets[i])
			}
		}
	case *storage.DictColumn:
		if code {
			v.I64 = widenI32(v.I64, col.Codes[start:end], keep)
			*bytesRead += int64(n) * 4
		} else {
			for i := start; i < end; i++ {
				if keep == nil || keep[i-start] {
					val := col.Value(i)
					v.Str = append(v.Str, val)
					*bytesRead += int64(len(val))
				}
			}
			*bytesRead += int64(n) * 4 // the code array drove the lookups
		}
	}
}

// srcBatch returns the per-worker reusable batch for this source.
func (c *Ctx) srcBatch(s *TableSource) *Batch {
	if c.scanBatch == nil {
		ts, caps := s.BatchTypes()
		c.scanBatch = NewBatch(ts, caps)
	}
	return c.scanBatch
}

// RowIDSourceCol is a pseudo-column name understood by plan-level scans to
// request the tuple id (row index) as an extra Int64 vector; the late
// materialization path joins on it after the join phase.
const RowIDSourceCol = "@rowid"

// TableSourceWithRowID scans like TableSource but appends a tuple-id vector.
type TableSourceWithRowID struct {
	TableSource
}

// NewTableSourceWithRowID builds a scan that also emits row ids.
func NewTableSourceWithRowID(t *storage.Table, cols ...string) *TableSourceWithRowID {
	return &TableSourceWithRowID{TableSource: *NewTableSource(t, cols...)}
}

// BatchTypes implements the batch-shape contract including the rowid vector.
func (s *TableSourceWithRowID) BatchTypes() ([]storage.Type, []int) {
	ts, caps := s.TableSource.BatchTypes()
	return append(ts, storage.Int64), append(caps, 0)
}

// Emit implements Source.
func (s *TableSourceWithRowID) Emit(ctx *Ctx, task int, out Operator) {
	if ctx.scanBatch == nil {
		ts, caps := s.BatchTypes()
		ctx.scanBatch = NewBatch(ts, caps)
	}
	s.emit(ctx, task, out, ctx.scanBatch, true)
}
