package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"partitionjoin/internal/meter"
)

// Pipeline is one source-to-breaker dataflow of a query plan. NewChain
// builds the worker-local fused operator chain; the chain's terminal
// operator must feed Sink (usually via SinkOp). The driver executes the
// pipelines of a plan in order: a pipeline only starts after the pipelines
// producing its inputs (hash tables, partitions) have closed, mirroring the
// produce/consume compilation of Algorithm 1.
type Pipeline struct {
	Name     string
	Source   Source
	NewChain func(ctx *Ctx) Operator
	Sink     Sink
}

// Driver runs pipelines with a fixed worker count.
type Driver struct {
	Workers int
	Meter   *meter.Meter

	// SourceRows accumulates tuples emitted at sources across all
	// pipelines run by this driver (the paper's throughput denominator).
	SourceRows atomic.Int64
}

// NewDriver returns a driver with the given parallelism; workers <= 0 uses
// GOMAXPROCS.
func NewDriver(workers int) *Driver {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Driver{Workers: workers}
}

// Run executes one pipeline to completion: opens the sink, spawns workers
// that claim source tasks through an atomic cursor (work stealing across
// morsels), flushes each worker's chain, and closes the sink.
func (d *Driver) Run(p *Pipeline) {
	tasks := p.Source.Tasks()
	if p.Sink != nil {
		p.Sink.Open(d.Workers)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := d.Workers
	if workers > tasks && tasks > 0 {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := &Ctx{Worker: w, Workers: d.Workers, Meter: d.Meter, SourceRows: &d.SourceRows}
			chain := p.NewChain(ctx)
			for {
				t := int(cursor.Add(1)) - 1
				if t >= tasks {
					break
				}
				p.Source.Emit(ctx, t, chain)
			}
			chain.Flush(ctx)
		}(w)
	}
	wg.Wait()
	if p.Sink != nil {
		p.Sink.Close()
	}
}

// RunAll executes pipelines in order.
func (d *Driver) RunAll(ps []*Pipeline) {
	for _, p := range ps {
		if d.Meter != nil && p.Name != "" {
			d.Meter.BeginPhase(p.Name)
		}
		d.Run(p)
		if d.Meter != nil && p.Name != "" {
			d.Meter.EndPhase()
		}
	}
}
