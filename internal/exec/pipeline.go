package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/meter"
)

// Pipeline is one source-to-breaker dataflow of a query plan. NewChain
// builds the worker-local fused operator chain; the chain's terminal
// operator must feed Sink (usually via SinkOp). The driver executes the
// pipelines of a plan in order: a pipeline only starts after the pipelines
// producing its inputs (hash tables, partitions) have closed, mirroring the
// produce/consume compilation of Algorithm 1.
type Pipeline struct {
	Name     string
	Source   Source
	NewChain func(ctx *Ctx) Operator
	Sink     Sink

	// SinkWorkers, when > 0, overrides the worker count passed to
	// Sink.Open. Sinks shared across pipelines with different task counts
	// (sweep pipelines reusing the main pipeline's terminal sink) must be
	// opened with the maximum concurrency any sharing pipeline can reach,
	// even if this pipeline's own worker count is clamped lower.
	SinkWorkers int
}

// Driver runs pipelines with a fixed worker count.
type Driver struct {
	Workers int
	Meter   *meter.Meter

	// SourceRows accumulates tuples emitted at sources across all
	// pipelines run by this driver (the paper's throughput denominator).
	SourceRows atomic.Int64

	// Progress, when set, is ticked once per claimed morsel across all
	// pipelines — the liveness signal the admission watchdog samples to
	// detect stuck queries. Nil costs nothing.
	Progress *atomic.Int64
}

// NewDriver returns a driver with the given parallelism; workers <= 0 uses
// GOMAXPROCS.
func NewDriver(workers int) *Driver {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Driver{Workers: workers}
}

// MorselSite is the fault-injection site visited once per claimed morsel by
// every worker.
const MorselSite = "exec.morsel"

var _ = faultinject.Register(MorselSite)

// panicErr converts a recovered panic value into an error tagged with the
// pipeline name and worker id. Error values are wrapped so errors.Is/As see
// through to the cause (injected faults, governor failures); other values
// get the stack attached since they indicate a real bug.
func panicErr(pipeline string, worker int, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("exec: pipeline %q worker %d panicked: %w", pipeline, worker, err)
	}
	return fmt.Errorf("exec: pipeline %q worker %d panicked: %v\n%s", pipeline, worker, r, debug.Stack())
}

// Run executes one pipeline to completion: opens the sink, spawns workers
// that claim source tasks through an atomic cursor (work stealing across
// morsels), flushes each worker's chain, and closes the sink.
//
// ctx cancellation (or deadline expiry) stops workers at the next
// morsel-claim boundary and is returned as the context's cause. A panic in
// any worker is recovered, converted to an error naming the pipeline and
// worker, and cancels the sibling workers; the first cause wins. The sink
// is always closed exactly once, even on failure, so pipeline-breaker state
// never leaks goroutines or leaves shared sinks half-open.
func (d *Driver) Run(ctx context.Context, p *Pipeline) error {
	tasks := p.Source.Tasks()
	workers := d.Workers
	if workers > tasks && tasks > 0 {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	sinkWorkers := workers
	if p.SinkWorkers > 0 {
		sinkWorkers = p.SinkWorkers
	}

	var firstErr error
	var once sync.Once
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel(err)
		})
	}

	// guard runs fn with panic containment, reporting a recovered panic
	// as the pipeline's failure without letting it escape the driver.
	guard := func(worker int, fn func()) {
		defer func() {
			if r := recover(); r != nil {
				fail(panicErr(p.Name, worker, r))
			}
		}()
		fn()
	}

	opened := false
	if p.Sink != nil {
		guard(-1, func() { p.Sink.Open(sinkWorkers); opened = true })
	}
	if firstErr == nil {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				guard(w, func() {
					ctx := &Ctx{
						Worker: w, Workers: workers,
						Query: wctx, Meter: d.Meter, SourceRows: &d.SourceRows,
					}
					chain := p.NewChain(ctx)
					for wctx.Err() == nil {
						t := int(cursor.Add(1)) - 1
						if t >= tasks {
							break
						}
						if d.Progress != nil {
							d.Progress.Add(1)
						}
						faultinject.Hit(MorselSite)
						p.Source.Emit(ctx, t, chain)
					}
					if wctx.Err() == nil {
						chain.Flush(ctx)
					}
				})
			}(w)
		}
		wg.Wait()
	}
	if opened {
		// Close exactly once even on failure; a worker error set first
		// keeps precedence over a close panic via the once in fail.
		guard(-1, func() { p.Sink.Close() })
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	return nil
}

// RunAll executes pipelines in order, stopping at the first failure.
func (d *Driver) RunAll(ctx context.Context, ps []*Pipeline) error {
	for _, p := range ps {
		if d.Meter != nil && p.Name != "" {
			d.Meter.BeginPhase(p.Name)
		}
		err := d.Run(ctx, p)
		if d.Meter != nil && p.Name != "" {
			d.Meter.EndPhase()
		}
		if err != nil {
			return err
		}
	}
	return nil
}
