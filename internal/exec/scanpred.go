package exec

import (
	"bytes"
	"math"

	"partitionjoin/internal/storage"
)

// ScanPredKind enumerates the predicate shapes a scan can evaluate on raw
// storage, before any widening into batch vectors.
type ScanPredKind uint8

const (
	// ScanNever matches no rows: the planner proved the predicate empty
	// (inverted range, dictionary miss). The scan skips every morsel.
	ScanNever ScanPredKind = iota
	// ScanRangeI keeps rows with Lo <= v <= Hi on the integer lane
	// (Int64/Date/Bool values, Int32 values, dictionary codes).
	ScanRangeI
	// ScanInI keeps rows whose integer-lane value is in Set; Lo/Hi hold the
	// set's envelope for zone-map checks.
	ScanInI
	// ScanRangeF keeps rows with FLo <= v <= FHi on a Float64 column;
	// FLoOpen/FHiOpen make a bound strict.
	ScanRangeF
	// ScanEqStr keeps rows equal to any of Strs on a plain string column.
	// (On dictionary columns the planner turns equality into a code range
	// or set instead.)
	ScanEqStr
	// ScanRangeStr keeps rows within [StrLo, StrHi] on a plain string
	// column; a nil bound is unbounded, the Open flags make a bound strict.
	ScanRangeStr
)

// ScanPred is one pushed predicate conjunct over a single storage column,
// already resolved to the physical representation by the planner.
type ScanPred struct {
	Kind ScanPredKind
	// Col is the storage column index in the scanned table.
	Col int

	Lo, Hi int64
	Set    map[int64]struct{}

	FLo, FHi     float64
	FLoOpen      bool
	FHiOpen      bool
	StrLo, StrHi []byte
	StrLoOpen    bool
	StrHiOpen    bool
	Strs         [][]byte
}

// zonePrunable reports whether the predicate can skip blocks via a zone map,
// and if so over which lane.
func (p *ScanPred) zonePrunable() bool {
	switch p.Kind {
	case ScanRangeI, ScanInI, ScanRangeF, ScanNever:
		return true
	}
	return false
}

// scanPruner holds the per-scan zone maps for the pushed predicates. Block
// size equals BatchSize so batch-level and morsel-level pruning read the same
// summaries.
type scanPruner struct {
	preds []ScanPred
	zones []*storage.ZoneMap // parallel to preds; nil = no block skipping
	never bool
}

func newScanPruner(t *storage.Table, preds []ScanPred) *scanPruner {
	if len(preds) == 0 {
		return nil
	}
	p := &scanPruner{preds: preds, zones: make([]*storage.ZoneMap, len(preds))}
	for i := range preds {
		if preds[i].Kind == ScanNever {
			p.never = true
			continue
		}
		if preds[i].zonePrunable() {
			p.zones[i] = t.ZoneMap(preds[i].Col, BatchSize)
		}
	}
	return p
}

// predPrunesBlock reports whether zone block b provably contains no row
// matching pred i.
func (p *scanPruner) predPrunesBlock(i, b int) bool {
	z := p.zones[i]
	if z == nil || b >= z.NumBlocks() {
		return false
	}
	pr := &p.preds[i]
	switch pr.Kind {
	case ScanRangeI:
		return !z.OverlapsI(b, pr.Lo, pr.Hi)
	case ScanInI:
		if !z.OverlapsI(b, pr.Lo, pr.Hi) {
			return true
		}
		// Small sets: prune when no member falls inside the block's range.
		if len(pr.Set) <= 16 {
			for v := range pr.Set {
				if z.MinI[b] <= v && v <= z.MaxI[b] {
					return false
				}
			}
			return true
		}
		return false
	case ScanRangeF:
		return !z.OverlapsF(b, pr.FLo, pr.FHi, pr.FLoOpen, pr.FHiOpen)
	}
	return false
}

// rangeAllMatch reports whether every row in [start, end) provably
// satisfies every pushed predicate: each predicate's zone blocks for the
// range sit fully inside its value range. The scan then skips per-row
// predicate evaluation and emits the batch on the zero-copy fully-kept
// path — the dual of pruning, and on clustered data the common case.
// Only the integer lane participates: float zone maps are built with
// ordinary comparisons, so a block holding NaNs could claim full
// coverage while the row-level predicate would reject them.
func (p *scanPruner) rangeAllMatch(start, end int) bool {
	if p.never {
		return false
	}
	for i := range p.preds {
		pr := &p.preds[i]
		if pr.Kind != ScanRangeI {
			return false
		}
		z := p.zones[i]
		if z == nil {
			return false
		}
		for b := start / z.Block; b*z.Block < end; b++ {
			if b >= z.NumBlocks() || z.MinI[b] < pr.Lo || z.MaxI[b] > pr.Hi {
				return false
			}
		}
	}
	return true
}

// rangePruned reports whether the row range [start, end) is provably empty:
// some pushed predicate eliminates every zone block the range touches.
func (p *scanPruner) rangePruned(start, end int) bool {
	if p.never {
		return true
	}
	for i := range p.preds {
		if p.zones[i] == nil {
			continue
		}
		block := p.zones[i].Block
		pruned := true
		for b := start / block; b*block < end; b++ {
			if !p.predPrunesBlock(i, b) {
				pruned = false
				break
			}
		}
		if pruned {
			return true
		}
	}
	return false
}

// PrunedRows returns the number of rows of t that the pushed predicates
// provably eliminate via zone maps — a sound lower bound on filtered-out
// rows, so NumRows - PrunedRows is a sound upper bound on scan output. The
// planner uses it to tighten estimateRows without ever under-estimating.
func PrunedRows(t *storage.Table, preds []ScanPred) int64 {
	p := newScanPruner(t, preds)
	if p == nil {
		return 0
	}
	n := t.NumRows()
	if p.never {
		return int64(n)
	}
	var pruned int64
	for start := 0; start < n; start += BatchSize {
		end := start + BatchSize
		if end > n {
			end = n
		}
		if p.rangePruned(start, end) {
			pruned += int64(end - start)
		}
	}
	return pruned
}

// evalPushed applies every pushed predicate to rows [start, end) of the
// table, writing per-row verdicts into keep (length end-start) and returning
// the number of kept rows. bytesRead accumulates the storage bytes touched.
//
// Numeric and dictionary-code conjuncts run through the monomorphized
// kernels in scan_kernels.go: the first conjunct overwrites keep (no
// init-to-true pass) with the kept count fused into its loop, later
// conjuncts conjoin, and open float bounds are converted to closed ones
// once per batch (math.Nextafter) so the inner loop is a plain two-sided
// compare for every lane.
func evalPushed(t *storage.Table, preds []ScanPred, keep []bool, start, end int, bytesRead *int64) int {
	n := end - start
	keep = keep[:n]
	inited := false // keep holds verdicts of the conjuncts applied so far
	fused := -1     // kept count fused into a first-conjunct kernel
	for pi := range preds {
		p := &preds[pi]
		first := !inited
		if p.Kind == ScanNever {
			for i := range keep {
				keep[i] = false
			}
			return 0
		}
		switch col := t.Cols[p.Col].(type) {
		case *storage.Int64Column:
			vals := col.Values[start:end]
			*bytesRead += int64(n) * 8
			switch p.Kind {
			case ScanRangeI:
				fused = applyRange(vals, p.Lo, p.Hi,
					p.Lo != math.MinInt64, p.Hi != math.MaxInt64, keep, first)
			case ScanInI:
				fused = applyIn(vals, p.Set, keep, first)
			default:
				panic("exec: pushed predicate kind does not match int64 column")
			}
		case *storage.Int32Column:
			vals := col.Values[start:end]
			*bytesRead += int64(n) * 4
			switch p.Kind {
			case ScanRangeI:
				lo32, hi32, loB, hiB, never := clampI32(p.Lo, p.Hi)
				if never {
					for i := range keep {
						keep[i] = false
					}
					return 0
				}
				fused = applyRange(vals, lo32, hi32, loB, hiB, keep, first)
			case ScanInI:
				fused = applyIn(vals, p.Set, keep, first)
			default:
				panic("exec: pushed predicate kind does not match int32 column")
			}
		case *storage.DictColumn:
			codes := col.Codes[start:end]
			*bytesRead += int64(n) * 4
			switch p.Kind {
			case ScanRangeI:
				lo32, hi32, loB, hiB, never := clampI32(p.Lo, p.Hi)
				if never {
					for i := range keep {
						keep[i] = false
					}
					return 0
				}
				fused = applyRange(codes, lo32, hi32, loB, hiB, keep, first)
			case ScanInI:
				fused = applyIn(codes, p.Set, keep, first)
			default:
				panic("exec: pushed predicate kind does not match dictionary column")
			}
		case *storage.Float64Column:
			vals := col.Values[start:end]
			*bytesRead += int64(n) * 8
			if p.Kind != ScanRangeF {
				panic("exec: pushed predicate kind does not match float64 column")
			}
			lo, hi := p.FLo, p.FHi
			if p.FLoOpen {
				if math.IsInf(lo, 1) { // v > +Inf matches nothing
					for i := range keep {
						keep[i] = false
					}
					return 0
				}
				lo = math.Nextafter(lo, math.Inf(1))
			}
			if p.FHiOpen {
				if math.IsInf(hi, -1) { // v < -Inf matches nothing
					for i := range keep {
						keep[i] = false
					}
					return 0
				}
				hi = math.Nextafter(hi, math.Inf(-1))
			}
			// Both bounds always constrain on the float lane: comparing
			// against ±Inf is free and keeps NaN rows excluded exactly as
			// the open/closed comparisons did.
			fused = applyRange(vals, lo, hi, true, true, keep, first)
		case *storage.StringColumn:
			if first {
				for i := range keep {
					keep[i] = true
				}
			}
			fused = -1
			*bytesRead += int64(col.Offsets[end]-col.Offsets[start]) + int64(n)*4
			switch p.Kind {
			case ScanEqStr:
				for i := range keep[:n] {
					if !keep[i] {
						continue
					}
					v := col.Value(start + i)
					hit := false
					for _, s := range p.Strs {
						if bytes.Equal(v, s) {
							hit = true
							break
						}
					}
					keep[i] = hit
				}
			case ScanRangeStr:
				for i := range keep[:n] {
					if !keep[i] {
						continue
					}
					v := col.Value(start + i)
					ok := true
					if p.StrLo != nil {
						cmp := bytes.Compare(v, p.StrLo)
						ok = cmp > 0 || (cmp == 0 && !p.StrLoOpen)
					}
					if ok && p.StrHi != nil {
						cmp := bytes.Compare(v, p.StrHi)
						ok = cmp < 0 || (cmp == 0 && !p.StrHiOpen)
					}
					keep[i] = ok
				}
			default:
				panic("exec: pushed predicate kind does not match string column")
			}
		default:
			panic("exec: pushed predicate on unsupported column type")
		}
		inited = true
	}
	if fused >= 0 && len(preds) == 1 {
		return fused
	}
	return countKeep(keep)
}
