package exec

// Monomorphized predicate kernels for the pushed-filter hot loop. Each
// kernel instantiates per element type (int64 values, int32 values,
// dictionary codes, float64 values), so the inner loop is a tight
// compare-and-store with no interface dispatch, no per-row closure call,
// and a single bounds check hoisted by the compiler. "First" kernels
// overwrite the keep array (saving the init-to-true pass) and return the
// kept count fused into the same loop; "And" kernels conjoin onto the
// verdicts of earlier conjuncts.

// ordered covers every lane a pushed range predicate can run on. NaN
// float values fail both bound comparisons, matching SQL comparison
// semantics for the predicates the planner pushes.
type ordered interface {
	~int32 | ~int64 | ~float64
}

// integer covers the lanes an IN-set predicate can run on.
type integer interface {
	~int32 | ~int64
}

func scanRangeFirst[T ordered](vals []T, lo, hi T, keep []bool) int {
	kept := 0
	keep = keep[:len(vals)]
	for i, v := range vals {
		k := v >= lo && v <= hi
		keep[i] = k
		if k {
			kept++
		}
	}
	return kept
}

func scanRangeAnd[T ordered](vals []T, lo, hi T, keep []bool) {
	keep = keep[:len(vals)]
	for i, v := range vals {
		keep[i] = keep[i] && v >= lo && v <= hi
	}
}

func scanGeFirst[T ordered](vals []T, lo T, keep []bool) int {
	kept := 0
	keep = keep[:len(vals)]
	for i, v := range vals {
		k := v >= lo
		keep[i] = k
		if k {
			kept++
		}
	}
	return kept
}

func scanGeAnd[T ordered](vals []T, lo T, keep []bool) {
	keep = keep[:len(vals)]
	for i, v := range vals {
		keep[i] = keep[i] && v >= lo
	}
}

func scanLeFirst[T ordered](vals []T, hi T, keep []bool) int {
	kept := 0
	keep = keep[:len(vals)]
	for i, v := range vals {
		k := v <= hi
		keep[i] = k
		if k {
			kept++
		}
	}
	return kept
}

func scanLeAnd[T ordered](vals []T, hi T, keep []bool) {
	keep = keep[:len(vals)]
	for i, v := range vals {
		keep[i] = keep[i] && v <= hi
	}
}

// applyRange dispatches a [lo, hi] range over vals to the tightest kernel.
// loB/hiB say whether each bound actually constrains (an unbounded side is
// dropped from the loop entirely). When first is true the keep array is
// overwritten and the fused kept count returned; otherwise the verdicts
// are conjoined and -1 returned.
func applyRange[T ordered](vals []T, lo, hi T, loB, hiB bool, keep []bool, first bool) int {
	switch {
	case first && loB && hiB:
		return scanRangeFirst(vals, lo, hi, keep)
	case first && loB:
		return scanGeFirst(vals, lo, keep)
	case first && hiB:
		return scanLeFirst(vals, hi, keep)
	case first:
		for i := range keep {
			keep[i] = true
		}
		return len(vals)
	case loB && hiB:
		scanRangeAnd(vals, lo, hi, keep)
	case loB:
		scanGeAnd(vals, lo, keep)
	case hiB:
		scanLeAnd(vals, hi, keep)
	}
	return -1
}

func scanInFirst[T integer](vals []T, set map[int64]struct{}, keep []bool) int {
	kept := 0
	keep = keep[:len(vals)]
	for i, v := range vals {
		_, ok := set[int64(v)]
		keep[i] = ok
		if ok {
			kept++
		}
	}
	return kept
}

func scanInAnd[T integer](vals []T, set map[int64]struct{}, keep []bool) {
	keep = keep[:len(vals)]
	for i, v := range vals {
		if keep[i] {
			_, ok := set[int64(v)]
			keep[i] = ok
		}
	}
}

func applyIn[T integer](vals []T, set map[int64]struct{}, keep []bool, first bool) int {
	if first {
		return scanInFirst(vals, set, keep)
	}
	scanInAnd(vals, set, keep)
	return -1
}

// widenI32 appends vals widened to int64 onto dst, honoring keep (nil
// keeps all rows). Shared by the Int32-column and dictionary-code scan
// paths.
func widenI32[T ~int32](dst []int64, vals []T, keep []bool) []int64 {
	if keep == nil {
		if free := cap(dst) - len(dst); free < len(vals) {
			grown := make([]int64, len(dst), len(dst)+len(vals))
			copy(grown, dst)
			dst = grown
		}
		for _, x := range vals {
			dst = append(dst, int64(x))
		}
		return dst
	}
	for i, x := range vals {
		if keep[i] {
			dst = append(dst, int64(x))
		}
	}
	return dst
}

// countKeep tallies the surviving rows after a multi-conjunct evaluation.
func countKeep(keep []bool) int {
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	return kept
}

// clampI32 narrows an int64 range to the int32 lane. never means the range
// provably excludes every int32; loB/hiB say whether the narrowed bound
// still constrains.
func clampI32(lo, hi int64) (lo32, hi32 int32, loB, hiB, never bool) {
	const minI32, maxI32 = -1 << 31, 1<<31 - 1
	if lo > maxI32 || hi < minI32 || lo > hi {
		return 0, 0, false, false, true
	}
	loB, hiB = lo > minI32, hi < maxI32
	if loB {
		lo32 = int32(lo)
	}
	if hiB {
		hi32 = int32(hi)
	}
	return lo32, hi32, loB, hiB, false
}
