package exec

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"partitionjoin/internal/storage"
)

// --- batch / vector ---

func TestVectorCompact(t *testing.T) {
	v := NewVector(storage.Int64, 0)
	v.I64 = append(v.I64, 1, 2, 3, 4, 5)
	v.Compact([]bool{true, false, true, false, true})
	if len(v.I64) != 3 || v.I64[0] != 1 || v.I64[1] != 3 || v.I64[2] != 5 {
		t.Fatalf("compact: %v", v.I64)
	}
	s := NewVector(storage.String, 8)
	s.Str = append(s.Str, []byte("a"), []byte("b"), []byte("c"))
	s.Compact([]bool{false, true, false})
	if len(s.Str) != 1 || string(s.Str[0]) != "b" {
		t.Fatalf("string compact: %v", s.Str)
	}
}

func TestBatchCompactProperty(t *testing.T) {
	check := func(vals []int64, keepBits []bool) bool {
		n := len(vals)
		if len(keepBits) < n {
			return true // skip mismatched generations
		}
		b := NewBatch([]storage.Type{storage.Int64, storage.Float64}, nil)
		for _, v := range vals {
			b.Vecs[0].I64 = append(b.Vecs[0].I64, v)
			b.Vecs[1].F64 = append(b.Vecs[1].F64, float64(v)/2)
		}
		b.N = n
		var want []int64
		for i := 0; i < n; i++ {
			if keepBits[i] {
				want = append(want, vals[i])
			}
		}
		b.Compact(keepBits[:n])
		if b.N != len(want) {
			return false
		}
		for i, w := range want {
			if b.Vecs[0].I64[i] != w || b.Vecs[1].F64[i] != float64(w)/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorGather(t *testing.T) {
	src := NewVector(storage.Int64, 0)
	src.I64 = append(src.I64, 10, 20, 30)
	dst := NewVector(storage.Int64, 0)
	dst.Gather(&src, []int32{2, 0, 2})
	if dst.I64[0] != 30 || dst.I64[1] != 10 || dst.I64[2] != 30 {
		t.Fatalf("gather: %v", dst.I64)
	}
}

// --- scan source ---

func makeTestTable(n int) *storage.Table {
	s := storage.NewSchema(
		storage.ColumnDef{Name: "a", Type: storage.Int64},
		storage.ColumnDef{Name: "b", Type: storage.Int32},
		storage.ColumnDef{Name: "s", Type: storage.String, StrCap: 8},
	)
	tb := storage.NewTable("t", s, n)
	ac := tb.Cols[0].(*storage.Int64Column)
	bc := tb.Cols[1].(*storage.Int32Column)
	sc := tb.Cols[2].(*storage.StringColumn)
	for i := 0; i < n; i++ {
		ac.Values = append(ac.Values, int64(i))
		bc.Values = append(bc.Values, int32(-i))
		if i%2 == 0 {
			sc.AppendString("even")
		} else {
			sc.AppendString("odd")
		}
	}
	return tb
}

// collectOp records everything pushed into it.
type collectOp struct {
	sumA  int64
	sumB  int64
	evens int64
	rows  int64
}

func (c *collectOp) Process(ctx *Ctx, b *Batch) {
	c.rows += int64(b.N)
	for i := 0; i < b.N; i++ {
		c.sumA += b.Vecs[0].I64[i]
		c.sumB += b.Vecs[1].I64[i]
		if string(b.Vecs[2].Str[i]) == "even" {
			c.evens++
		}
	}
}
func (c *collectOp) Flush(ctx *Ctx) {}

func TestTableSourceScansEverythingOnce(t *testing.T) {
	const n = 150000 // multiple morsels
	tb := makeTestTable(n)
	src := NewTableSource(tb, "a", "b", "s")
	if src.Tasks() < 2 {
		t.Fatalf("expected multiple morsels, got %d", src.Tasks())
	}
	var rows atomic.Int64
	ctx := &Ctx{Worker: 0, Workers: 1, SourceRows: &rows}
	sink := &collectOp{}
	for task := 0; task < src.Tasks(); task++ {
		src.Emit(ctx, task, sink)
	}
	if sink.rows != n {
		t.Fatalf("scanned %d rows", sink.rows)
	}
	wantA := int64(n) * int64(n-1) / 2
	if sink.sumA != wantA || sink.sumB != -wantA {
		t.Fatalf("sums: %d %d (int32 widening broken?)", sink.sumA, sink.sumB)
	}
	if sink.evens != (n+1)/2 {
		t.Fatalf("string scan: %d evens", sink.evens)
	}
	if rows.Load() != n {
		t.Fatalf("SourceRows = %d", rows.Load())
	}
}

func TestTableSourceWithRowID(t *testing.T) {
	tb := makeTestTable(1000)
	src := NewTableSourceWithRowID(tb, "a")
	ctx := &Ctx{Worker: 0, Workers: 1}
	ok := true
	sink := &funcOp{fn: func(b *Batch) {
		for i := 0; i < b.N; i++ {
			if b.Vecs[0].I64[i] != b.Vecs[1].I64[i] {
				ok = false // column a equals the row index by construction
			}
		}
	}}
	for task := 0; task < src.Tasks(); task++ {
		src.Emit(ctx, task, sink)
	}
	if !ok {
		t.Fatal("rowid does not match row index")
	}
}

type funcOp struct{ fn func(b *Batch) }

func (f *funcOp) Process(ctx *Ctx, b *Batch) { f.fn(b) }
func (f *funcOp) Flush(ctx *Ctx)             {}

// --- group by ---

func TestGroupByMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sink := &GroupBySink{
		Keys:     []int{0},
		KeyTypes: []storage.Type{storage.Int64},
		KeyCaps:  []int{0},
		Aggs: []AggSpec{
			{Kind: AggCount},
			{Kind: AggSumI, Col: 1},
			{Kind: AggMinI, Col: 1},
			{Kind: AggMaxI, Col: 1},
			{Kind: AggAvgF, Col: 1},
			{Kind: AggCountDistinctI, Col: 2},
		},
	}
	sink.Open(3)
	type ref struct {
		count, sum, min, max int64
		distinct             map[int64]struct{}
	}
	refs := map[int64]*ref{}
	for w := 0; w < 3; w++ {
		ctx := &Ctx{Worker: w, Workers: 3}
		b := NewBatch([]storage.Type{storage.Int64, storage.Int64, storage.Int64}, nil)
		for i := 0; i < 5000; i++ {
			k := rng.Int63n(20)
			v := rng.Int63n(1000) - 500
			d := rng.Int63n(7)
			b.Vecs[0].I64 = append(b.Vecs[0].I64, k)
			b.Vecs[1].I64 = append(b.Vecs[1].I64, v)
			b.Vecs[2].I64 = append(b.Vecs[2].I64, d)
			r := refs[k]
			if r == nil {
				r = &ref{min: 1 << 60, max: -(1 << 60), distinct: map[int64]struct{}{}}
				refs[k] = r
			}
			r.count++
			r.sum += v
			if v < r.min {
				r.min = v
			}
			if v > r.max {
				r.max = v
			}
			r.distinct[d] = struct{}{}
			if i%777 == 0 {
				b.N = len(b.Vecs[0].I64)
				sink.Consume(ctx, b)
				b.Reset()
			}
		}
		b.N = len(b.Vecs[0].I64)
		if b.N > 0 {
			sink.Consume(ctx, b)
		}
	}
	sink.Close()
	if sink.NumGroups() != len(refs) {
		t.Fatalf("groups: %d, want %d", sink.NumGroups(), len(refs))
	}
	// Drain the source and verify each group.
	src := sink.Source()
	ctx := &Ctx{Worker: 0, Workers: 1}
	checked := 0
	sinkOp := &funcOp{fn: func(b *Batch) {
		for i := 0; i < b.N; i++ {
			k := b.Vecs[0].I64[i]
			r := refs[k]
			if r == nil {
				t.Fatalf("phantom group %d", k)
			}
			if b.Vecs[1].I64[i] != r.count || b.Vecs[2].I64[i] != r.sum ||
				b.Vecs[3].I64[i] != r.min || b.Vecs[4].I64[i] != r.max {
				t.Fatalf("group %d aggregates wrong", k)
			}
			wantAvg := float64(r.sum) / float64(r.count)
			if diff := b.Vecs[5].F64[i] - wantAvg; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("group %d avg %f want %f", k, b.Vecs[5].F64[i], wantAvg)
			}
			if b.Vecs[6].I64[i] != int64(len(r.distinct)) {
				t.Fatalf("group %d distinct %d want %d", k, b.Vecs[6].I64[i], len(r.distinct))
			}
			checked++
		}
	}}
	for task := 0; task < src.Tasks(); task++ {
		src.Emit(ctx, task, sinkOp)
	}
	if checked != len(refs) {
		t.Fatalf("checked %d groups", checked)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	sink := &GroupBySink{Aggs: []AggSpec{{Kind: AggCount}, {Kind: AggSumI, Col: 0}}}
	sink.Open(1)
	sink.Close()
	if sink.NumGroups() != 1 {
		t.Fatalf("empty global aggregate produced %d rows", sink.NumGroups())
	}
	src := sink.Source()
	ctx := &Ctx{Worker: 0, Workers: 1}
	src.Emit(ctx, 0, &funcOp{fn: func(b *Batch) {
		if b.Vecs[0].I64[0] != 0 || b.Vecs[1].I64[0] != 0 {
			t.Fatal("defaults not zero")
		}
	}})
}

func TestGlobalFastPathMatchesGeneric(t *testing.T) {
	// Same data through the keyless fast path and the keyed path with a
	// constant key must agree.
	mk := func(keys []int) *GroupBySink {
		s := &GroupBySink{Aggs: []AggSpec{
			{Kind: AggCount}, {Kind: AggSumI, Col: 1}, {Kind: AggMinI, Col: 1}, {Kind: AggMaxI, Col: 1},
		}}
		if keys != nil {
			s.Keys = keys
			s.KeyTypes = []storage.Type{storage.Int64}
			s.KeyCaps = []int{0}
		}
		return s
	}
	fast := mk(nil)
	slow := mk([]int{0})
	fast.Open(1)
	slow.Open(1)
	ctx := &Ctx{Worker: 0, Workers: 1}
	b := NewBatch([]storage.Type{storage.Int64, storage.Int64}, nil)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		b.Vecs[0].I64 = append(b.Vecs[0].I64, 7) // constant key
		b.Vecs[1].I64 = append(b.Vecs[1].I64, rng.Int63n(100)-50)
	}
	b.N = 3000
	fast.Consume(ctx, b)
	slow.Consume(ctx, b)
	fast.Close()
	slow.Close()
	for ai := 0; ai < 4; ai++ {
		if fast.merged.aggI[ai][0] != slow.merged.aggI[ai][0] {
			t.Fatalf("agg %d: fast %d vs slow %d", ai, fast.merged.aggI[ai][0], slow.merged.aggI[ai][0])
		}
	}
}

// --- sort / collect ---

func TestSortSinkOrdersAndLimits(t *testing.T) {
	sink := &SortSink{
		Keys:  []SortKey{{Col: 0, Desc: true}, {Col: 1}},
		Limit: 5,
		Types: []storage.Type{storage.Int64, storage.String},
		Caps:  []int{0, 8},
	}
	sink.Open(2)
	rng := rand.New(rand.NewSource(5))
	for w := 0; w < 2; w++ {
		ctx := &Ctx{Worker: w, Workers: 2}
		b := NewBatch([]storage.Type{storage.Int64, storage.String}, []int{0, 8})
		for i := 0; i < 100; i++ {
			b.Vecs[0].I64 = append(b.Vecs[0].I64, rng.Int63n(10))
			b.Vecs[1].Str = append(b.Vecs[1].Str, []byte{byte('a' + rng.Intn(26))})
		}
		b.N = 100
		sink.Consume(ctx, b)
	}
	sink.Close()
	r := sink.Result()
	if r.NumRows() != 5 {
		t.Fatalf("limit: %d rows", r.NumRows())
	}
	for i := 1; i < 5; i++ {
		if r.Vecs[0].I64[i] > r.Vecs[0].I64[i-1] {
			t.Fatal("not descending on key 0")
		}
		if r.Vecs[0].I64[i] == r.Vecs[0].I64[i-1] &&
			string(r.Vecs[1].Str[i]) < string(r.Vecs[1].Str[i-1]) {
			t.Fatal("tie not broken ascending on key 1")
		}
	}
}

func TestResultSourceRoundTrip(t *testing.T) {
	r := NewResult([]storage.Type{storage.Int64}, nil)
	b := NewBatch([]storage.Type{storage.Int64}, nil)
	for i := 0; i < 2500; i++ {
		b.Vecs[0].I64 = append(b.Vecs[0].I64, int64(i))
	}
	b.N = 2500
	r.AppendBatch(b)
	src := &ResultSource{R: r, Ordered: true}
	var got []int64
	ctx := &Ctx{Worker: 0, Workers: 1}
	src.Emit(ctx, 0, &funcOp{fn: func(b *Batch) {
		got = append(got, b.Vecs[0].I64[:b.N]...)
	}})
	if len(got) != 2500 {
		t.Fatalf("round trip lost rows: %d", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// --- late load ---

func TestLateLoadGathers(t *testing.T) {
	tb := makeTestTable(100)
	got := map[int64]string{}
	sink := &funcOp{fn: func(b *Batch) {
		for i := 0; i < b.N; i++ {
			got[b.Vecs[0].I64[i]] = string(b.Vecs[1].Str[i])
		}
	}}
	op := NewLateLoadOp(sink, tb, 0, "s")
	ctx := &Ctx{Worker: 0, Workers: 1}
	b := NewBatch([]storage.Type{storage.Int64}, nil)
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 4, 7, 4)
	b.N = 3
	op.Process(ctx, b)
	if len(b.Vecs) != 1 {
		t.Fatal("late load leaked vectors into the batch")
	}
	if got[4] != "even" || got[7] != "odd" {
		t.Fatalf("late load fetched %v", got)
	}
}

// --- driver ---

// countSource emits one batch per task.
type countSource struct {
	tasks int
	seen  []atomic.Int32
}

func (s *countSource) Tasks() int { return s.tasks }
func (s *countSource) Emit(ctx *Ctx, task int, out Operator) {
	s.seen[task].Add(1)
	b := ctx.ScratchBatch([]storage.Type{storage.Int64}, nil)
	b.Reset()
	b.Vecs[0].I64 = append(b.Vecs[0].I64, int64(task))
	b.N = 1
	out.Process(ctx, b)
}

type countSink struct {
	total atomic.Int64
}

func (c *countSink) Open(workers int)           {}
func (c *countSink) Consume(ctx *Ctx, b *Batch) { c.total.Add(int64(b.N)) }
func (c *countSink) Close()                     {}

func TestDriverProcessesEveryTaskExactlyOnce(t *testing.T) {
	src := &countSource{tasks: 1000, seen: make([]atomic.Int32, 1000)}
	sink := &countSink{}
	d := NewDriver(4)
	if err := d.Run(context.Background(), &Pipeline{
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	}); err != nil {
		t.Fatal(err)
	}
	for i := range src.seen {
		if got := src.seen[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
	if sink.total.Load() != 1000 {
		t.Fatalf("sink saw %d rows", sink.total.Load())
	}
}
