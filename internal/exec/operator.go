package exec

import (
	"context"
	"sync/atomic"

	"partitionjoin/internal/meter"
	"partitionjoin/internal/storage"
)

// Ctx is the per-worker execution context. Every worker of a pipeline gets
// its own Ctx and its own operator chain, so operators keep worker-local
// state (staging buffers, write-combine buffers, scratch vectors) without
// synchronization — the same discipline the paper's morsel-driven system
// enforces.
type Ctx struct {
	Worker  int
	Workers int
	Meter   *meter.Meter

	// Query is the query-scoped context carrying cancellation and
	// deadlines into operators; long-running sources poll Err between
	// batches so a cancelled query stops mid-morsel, not just at the
	// next claim. Nil means "never cancelled" (tests building a Ctx by
	// hand).
	Query context.Context

	// SourceRows counts the tuples emitted at pipeline sources; the
	// TPC-H throughput metric of Section 5.3 is the sum of these counts
	// divided by the wall time.
	SourceRows *atomic.Int64

	// Keep is a shared scratch flag array for filters, sized to at least
	// the batch being filtered.
	Keep []bool

	// scanBatch is the worker's reusable source batch; a Ctx belongs to
	// exactly one pipeline, and a pipeline has exactly one source.
	scanBatch *Batch
}

// Err reports the query context's cancellation state; nil-context Ctxs are
// never cancelled.
func (c *Ctx) Err() error {
	if c.Query == nil {
		return nil
	}
	return c.Query.Err()
}

// KeepBuf returns the scratch keep buffer resized to n.
func (c *Ctx) KeepBuf(n int) []bool {
	if cap(c.Keep) < n {
		c.Keep = make([]bool, n)
	}
	c.Keep = c.Keep[:n]
	return c.Keep
}

// ScratchBatch returns the worker's reusable source batch, allocating it
// with the given shape on first use. Sources outside this package use it
// for their per-worker output batch.
func (c *Ctx) ScratchBatch(types []storage.Type, caps []int) *Batch {
	if c.scanBatch == nil {
		c.scanBatch = NewBatch(types, caps)
	}
	return c.scanBatch
}

// Operator is a node of a per-worker fused pipeline chain. Process consumes
// one batch and pushes derived batches to its successor; it may mutate the
// batch in place (filters compact, maps append vectors). Flush is called
// once per worker after the source is exhausted so buffering operators
// (ROF staging, write-combine buffers) can drain.
type Operator interface {
	Process(ctx *Ctx, b *Batch)
	Flush(ctx *Ctx)
}

// Sink is the shared pipeline-breaker state at the end of a pipeline: a
// hash-table build, a radix partitioner, an aggregation, a sort, or a
// result collector. Open is called once before the pipeline runs, Consume
// concurrently by all workers, and Close once after they finish.
type Sink interface {
	Open(workers int)
	Consume(ctx *Ctx, b *Batch)
	Close()
}

// SinkOp adapts a shared Sink to the end of a per-worker operator chain.
type SinkOp struct {
	S Sink
}

// Process implements Operator.
func (s *SinkOp) Process(ctx *Ctx, b *Batch) {
	if b.N > 0 {
		s.S.Consume(ctx, b)
	}
}

// Flush implements Operator. Sinks drain in Close, not per worker.
func (s *SinkOp) Flush(ctx *Ctx) {}

// Source produces the batches of a pipeline. Tasks returns the number of
// independent work units (morsels, partitions); Emit runs one unit, pushing
// every produced batch into the worker's chain. The driver hands out task
// indices through an atomic counter, which is exactly the work-stealing
// morsel dispatch of Leis et al.
type Source interface {
	Tasks() int
	Emit(ctx *Ctx, task int, out Operator)
}

// FilterOp compacts batches with a predicate closure that fills keep flags.
// The expression layer compiles predicate trees into these closures.
type FilterOp struct {
	Next Operator
	Pred func(ctx *Ctx, b *Batch, keep []bool)
}

// Process implements Operator.
func (f *FilterOp) Process(ctx *Ctx, b *Batch) {
	if b.N == 0 {
		return
	}
	keep := ctx.KeepBuf(b.N)
	f.Pred(ctx, b, keep)
	b.Compact(keep)
	if b.N > 0 {
		f.Next.Process(ctx, b)
	}
}

// Flush implements Operator.
func (f *FilterOp) Flush(ctx *Ctx) { f.Next.Flush(ctx) }

// MapOp appends computed vectors to the batch (projection extension).
type MapOp struct {
	Next Operator
	Fn   func(ctx *Ctx, b *Batch)
}

// Process implements Operator.
func (m *MapOp) Process(ctx *Ctx, b *Batch) {
	if b.N == 0 {
		return
	}
	m.Fn(ctx, b)
	m.Next.Process(ctx, b)
}

// Flush implements Operator.
func (m *MapOp) Flush(ctx *Ctx) { m.Next.Flush(ctx) }

// ProjectOp reorders/narrows the batch to the given vector indices.
type ProjectOp struct {
	Next Operator
	Idx  []int
	out  Batch
}

// Process implements Operator.
func (p *ProjectOp) Process(ctx *Ctx, b *Batch) {
	if b.N == 0 {
		return
	}
	if p.out.Vecs == nil {
		p.out.Vecs = make([]Vector, len(p.Idx))
	}
	for i, src := range p.Idx {
		p.out.Vecs[i] = b.Vecs[src]
	}
	p.out.N = b.N
	p.Next.Process(ctx, &p.out)
}

// Flush implements Operator.
func (p *ProjectOp) Flush(ctx *Ctx) { p.Next.Flush(ctx) }
