package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/storage"
)

// trackSink counts Open/Close calls and the worker count it was opened with.
type trackSink struct {
	opens      atomic.Int32
	closes     atomic.Int32
	openedWith int
	maxWorker  atomic.Int32
	rows       atomic.Int64
}

func (s *trackSink) Open(workers int) {
	s.opens.Add(1)
	s.openedWith = workers
}

func (s *trackSink) Consume(ctx *Ctx, b *Batch) {
	for {
		m := s.maxWorker.Load()
		if int32(ctx.Worker) <= m || s.maxWorker.CompareAndSwap(m, int32(ctx.Worker)) {
			break
		}
	}
	if ctx.Worker >= ctx.Workers {
		panic("ctx.Worker out of range of ctx.Workers")
	}
	s.rows.Add(int64(b.N))
}

func (s *trackSink) Close() { s.closes.Add(1) }

// waitForGoroutines retries until the goroutine count drops back to within
// slack of base (the runtime needs a moment to reap exited goroutines).
func waitForGoroutines(t *testing.T, base int, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDriverClampedWorkersFlowToSinkAndCtx covers the worker/context
// mismatch: with fewer tasks than driver workers, the clamped count must be
// what Sink.Open receives and what Ctx.Workers reports.
func TestDriverClampedWorkersFlowToSinkAndCtx(t *testing.T) {
	src := &countSource{tasks: 2, seen: make([]atomic.Int32, 2)}
	sink := &trackSink{}
	d := NewDriver(16)
	err := d.Run(context.Background(), &Pipeline{
		Name:     "clamp",
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.openedWith != 2 {
		t.Fatalf("sink opened with %d workers, want clamped 2", sink.openedWith)
	}
	if m := sink.maxWorker.Load(); m > 1 {
		t.Fatalf("worker id %d seen with only 2 tasks", m)
	}
	if sink.rows.Load() != 2 {
		t.Fatalf("rows = %d", sink.rows.Load())
	}
}

// TestDriverSinkWorkersOverride covers shared sinks: a pipeline whose own
// worker count clamps low must still open the sink at the configured
// capacity so sibling pipelines' workers fit.
func TestDriverSinkWorkersOverride(t *testing.T) {
	src := &countSource{tasks: 1, seen: make([]atomic.Int32, 1)}
	sink := &trackSink{}
	d := NewDriver(8)
	err := d.Run(context.Background(), &Pipeline{
		Source:      src,
		NewChain:    func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:        sink,
		SinkWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.openedWith != 8 {
		t.Fatalf("sink opened with %d, want SinkWorkers=8", sink.openedWith)
	}
}

// panicSource panics while emitting a chosen task.
type panicSource struct {
	tasks   int
	panicAt int
	payload any
	emitted atomic.Int64
}

func (s *panicSource) Tasks() int { return s.tasks }
func (s *panicSource) Emit(ctx *Ctx, task int, out Operator) {
	s.emitted.Add(1)
	if task == s.panicAt {
		panic(s.payload)
	}
	b := ctx.ScratchBatch([]storage.Type{storage.Int64}, nil)
	b.Reset()
	b.Vecs[0].I64 = append(b.Vecs[0].I64, int64(task))
	b.N = 1
	out.Process(ctx, b)
}

// TestDriverContainsWorkerPanic is the satellite table test: a panic in one
// worker mid-morsel must come back as an error naming the pipeline, every
// goroutine must exit, and the sink must be closed exactly once.
func TestDriverContainsWorkerPanic(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	cases := []struct {
		name    string
		payload any
		workers int
		wantIs  error // optional errors.Is target
	}{
		{name: "string panic single worker", payload: "kaboom", workers: 1},
		{name: "string panic many workers", payload: "kaboom", workers: 8},
		{name: "error panic wraps cause", payload: sentinel, workers: 4, wantIs: sentinel},
		{name: "non-error value", payload: 42, workers: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			src := &panicSource{tasks: 64, panicAt: 17, payload: tc.payload}
			sink := &trackSink{}
			d := NewDriver(tc.workers)
			err := d.Run(context.Background(), &Pipeline{
				Name:     "probe",
				Source:   src,
				NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
				Sink:     sink,
			})
			if err == nil {
				t.Fatal("worker panic did not surface as an error")
			}
			if !strings.Contains(err.Error(), `pipeline "probe"`) {
				t.Fatalf("error does not name the pipeline: %v", err)
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Fatalf("error chain lost the cause: %v", err)
			}
			if got := sink.opens.Load(); got != 1 {
				t.Fatalf("sink opened %d times", got)
			}
			if got := sink.closes.Load(); got != 1 {
				t.Fatalf("sink closed %d times, want exactly once", got)
			}
			waitForGoroutines(t, base, 2)
		})
	}
}

// TestDriverPanicCancelsSiblings checks that after one worker dies the
// remaining workers stop claiming morsels instead of draining the source.
func TestDriverPanicCancelsSiblings(t *testing.T) {
	src := &panicSource{tasks: 100000, panicAt: 0, payload: "die early"}
	sink := &trackSink{}
	d := NewDriver(4)
	err := d.Run(context.Background(), &Pipeline{
		Name:     "cancel-siblings",
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := src.emitted.Load(); n >= int64(src.tasks) {
		t.Fatalf("siblings drained the whole source (%d tasks) after panic", n)
	}
}

// TestDriverPreCancelledContext verifies an already-cancelled query context
// returns its cause before any task runs.
func TestDriverPreCancelledContext(t *testing.T) {
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	src := &countSource{tasks: 1000, seen: make([]atomic.Int32, 1000)}
	sink := &trackSink{}
	d := NewDriver(4)
	err := d.Run(ctx, &Pipeline{
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	})
	if !errors.Is(err, cause) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation cause", err)
	}
	var ran int
	for i := range src.seen {
		ran += int(src.seen[i].Load())
	}
	if ran != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", ran)
	}
	if sink.closes.Load() != 1 {
		t.Fatalf("sink closed %d times", sink.closes.Load())
	}
}

// TestFaultInjectionMorselPanicContained arms the driver's own fault site
// and checks containment end to end under concurrency and -count=2 reruns.
func TestFaultInjectionMorselPanicContained(t *testing.T) {
	faultinject.FailOnLeak(t)
	faultinject.Arm(t, MorselSite, faultinject.Fault{
		Kind: faultinject.Panic, After: 10, Message: "injected morsel fault", Once: true,
	})
	base := runtime.NumGoroutine()
	src := &countSource{tasks: 500, seen: make([]atomic.Int32, 500)}
	sink := &trackSink{}
	d := NewDriver(4)
	err := d.Run(context.Background(), &Pipeline{
		Name:     "faulted",
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	})
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != MorselSite {
		t.Fatalf("error %v does not carry the injected fault", err)
	}
	if !strings.Contains(err.Error(), `pipeline "faulted"`) {
		t.Fatalf("error does not name the pipeline: %v", err)
	}
	if sink.closes.Load() != 1 {
		t.Fatalf("sink closed %d times", sink.closes.Load())
	}
	waitForGoroutines(t, base, 2)
}

// TestFaultInjectionStallObeysDeadline stalls every morsel and checks a
// short deadline still terminates the run promptly via the claim boundary.
func TestFaultInjectionStallObeysDeadline(t *testing.T) {
	faultinject.FailOnLeak(t)
	faultinject.Arm(t, MorselSite, faultinject.Fault{
		Kind: faultinject.Stall, Stall: 2 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	src := &countSource{tasks: 100000, seen: make([]atomic.Int32, 100000)}
	sink := &trackSink{}
	d := NewDriver(2)
	start := time.Now()
	err := d.Run(ctx, &Pipeline{
		Source:   src,
		NewChain: func(ctx *Ctx) Operator { return &SinkOp{S: sink} },
		Sink:     sink,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline ignored for %v", d)
	}
}
