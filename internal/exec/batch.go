// Package exec implements the vectorized pipeline engine of the DBMS
// substrate: push-based operator chains over column batches, driven
// morsel-wise by a worker pool with work stealing (Sections 4.1-4.5 of the
// paper). Where Umbra compiles each pipeline to machine code, we build the
// fused operator chain as a per-worker object graph whose Process methods
// run tight per-batch loops — the relaxed-operator-fusion staging points of
// Menon et al. are batches, exactly as in the paper's BHJ.
package exec

import "partitionjoin/internal/storage"

// BatchSize is the number of tuples per vector batch. It matches the ROF
// staging buffer: large enough to amortize per-batch overhead, small enough
// that a batch of a few wide columns stays cache-resident.
const BatchSize = 1024

// Vector is one column's worth of a batch. All numeric logical types
// (Int64, Int32, Date, Bool) travel widened in the I64 lane; Float64 in
// F64; strings as byte-slice views into storage arenas. Width preserves the
// declared materialization width so a join packs Int32 columns into 4 bytes
// even though they travel as int64.
type Vector struct {
	T     storage.Type
	Width int // bytes when materialized into a row
	I64   []int64
	F64   []float64
	Str   [][]byte

	// shared marks the active lane as a zero-copy alias of immutable
	// storage (set by ShareI64/ShareF64 on the fully-kept scan fast path).
	// Readers never notice; every mutating method first falls back to the
	// vector's own buffers (ownI64/ownF64) so aliased storage is never
	// written through.
	shared bool
	ownI64 []int64
	ownF64 []float64
}

// ShareI64 aliases the vector's I64 lane to vals without copying. The
// caller promises vals is immutable for the batch's lifetime (storage
// column slices are). Reset, Resize, Compact and Gather transparently
// fall back to owned buffers, so downstream operators may mutate freely.
func (v *Vector) ShareI64(vals []int64) {
	if !v.shared {
		v.ownI64, v.ownF64 = v.I64[:0], v.F64[:0]
	}
	v.shared = true
	v.I64 = vals
}

// ShareF64 aliases the vector's F64 lane to vals without copying.
func (v *Vector) ShareF64(vals []float64) {
	if !v.shared {
		v.ownI64, v.ownF64 = v.I64[:0], v.F64[:0]
	}
	v.shared = true
	v.F64 = vals
}

// Shared reports whether the vector currently aliases storage.
func (v *Vector) Shared() bool { return v.shared }

// unshare drops a storage alias, restoring the vector's own (empty)
// buffers. Contents are discarded — callers that need them use
// materialize instead.
func (v *Vector) unshare() {
	if !v.shared {
		return
	}
	v.I64, v.F64 = v.ownI64[:0], v.ownF64[:0]
	v.ownI64, v.ownF64 = nil, nil
	v.shared = false
}

// materialize copies a storage alias into the vector's own buffers so it
// can be appended to or mutated in place.
func (v *Vector) materialize() {
	if !v.shared {
		return
	}
	s64, sF := v.I64, v.F64
	v.shared = false
	v.I64 = append(v.ownI64[:0], s64...)
	v.F64 = append(v.ownF64[:0], sF...)
	v.ownI64, v.ownF64 = nil, nil
}

// NewVector allocates a vector of logical type t with capacity BatchSize.
func NewVector(t storage.Type, strCap int) Vector {
	v := Vector{T: t, Width: t.Width(strCap)}
	switch t {
	case storage.Float64:
		v.F64 = make([]float64, 0, BatchSize)
	case storage.String:
		v.Str = make([][]byte, 0, BatchSize)
	default:
		v.I64 = make([]int64, 0, BatchSize)
	}
	return v
}

// Reset truncates the vector to length 0 (restoring owned buffers first
// when the vector aliases storage).
func (v *Vector) Reset() {
	v.unshare()
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// Resize sets the vector's length to n, growing capacity if needed.
func (v *Vector) Resize(n int) {
	v.unshare()
	switch v.T {
	case storage.Float64:
		if cap(v.F64) < n {
			v.F64 = make([]float64, n)
		}
		v.F64 = v.F64[:n]
	case storage.String:
		if cap(v.Str) < n {
			v.Str = make([][]byte, n)
		}
		v.Str = v.Str[:n]
	default:
		if cap(v.I64) < n {
			v.I64 = make([]int64, n)
		}
		v.I64 = v.I64[:n]
	}
}

// Len returns the vector's current length.
func (v *Vector) Len() int {
	switch v.T {
	case storage.Float64:
		return len(v.F64)
	case storage.String:
		return len(v.Str)
	default:
		return len(v.I64)
	}
}

// Compact keeps only the rows whose keep flag is set, preserving order.
// Filters compact batches in place rather than carrying selection vectors,
// which keeps every downstream kernel a dense loop.
func (v *Vector) Compact(keep []bool) {
	if v.shared {
		// Compact out-of-place: read the storage alias, write the owned
		// buffer. This is also where a filtered scan batch stops aliasing.
		s64, sF := v.I64, v.F64
		v.unshare()
		if len(sF) > 0 {
			out := v.F64
			for i, k := range keep {
				if k {
					out = append(out, sF[i])
				}
			}
			v.F64 = out
			return
		}
		out := v.I64
		for i, k := range keep {
			if k {
				out = append(out, s64[i])
			}
		}
		v.I64 = out
		return
	}
	switch v.T {
	case storage.Float64:
		out := v.F64[:0]
		for i, k := range keep {
			if k {
				out = append(out, v.F64[i])
			}
		}
		v.F64 = out
	case storage.String:
		out := v.Str[:0]
		for i, k := range keep {
			if k {
				out = append(out, v.Str[i])
			}
		}
		v.Str = out
	default:
		out := v.I64[:0]
		for i, k := range keep {
			if k {
				out = append(out, v.I64[i])
			}
		}
		v.I64 = out
	}
}

// CompactIdx keeps exactly the rows listed in idx (ascending row numbers):
// the index-list form of Compact. One bool pass per batch builds idx, and
// every vector then does len(idx) moves instead of a full-width flag walk —
// at low selectivity that is the difference between O(kept) and O(rows)
// per column. Shared vectors gather out-of-place into their own buffers.
func (v *Vector) CompactIdx(idx []int32) {
	if v.shared {
		s64, sF := v.I64, v.F64
		v.unshare()
		if v.T == storage.Float64 {
			out := v.F64
			for _, i := range idx {
				out = append(out, sF[i])
			}
			v.F64 = out
			return
		}
		out := v.I64
		for _, i := range idx {
			out = append(out, s64[i])
		}
		v.I64 = out
		return
	}
	switch v.T {
	case storage.Float64:
		a := v.F64
		for j, i := range idx {
			a[j] = a[i]
		}
		v.F64 = a[:len(idx)]
	case storage.String:
		a := v.Str
		for j, i := range idx {
			a[j] = a[i]
		}
		v.Str = a[:len(idx)]
	default:
		a := v.I64
		for j, i := range idx {
			a[j] = a[i]
		}
		v.I64 = a[:len(idx)]
	}
}

// Gather appends src[idx[i]] for each index to the vector.
func (v *Vector) Gather(src *Vector, idx []int32) {
	v.materialize()
	switch v.T {
	case storage.Float64:
		for _, i := range idx {
			v.F64 = append(v.F64, src.F64[i])
		}
	case storage.String:
		for _, i := range idx {
			v.Str = append(v.Str, src.Str[i])
		}
	default:
		for _, i := range idx {
			v.I64 = append(v.I64, src.I64[i])
		}
	}
}

// Batch is a set of equal-length vectors flowing through a pipeline.
type Batch struct {
	Vecs []Vector
	N    int

	// idx is the reusable selection-index scratch for Compact.
	idx []int32
}

// NewBatch allocates a batch with one vector per type.
func NewBatch(types []storage.Type, strCaps []int) *Batch {
	b := &Batch{Vecs: make([]Vector, len(types))}
	for i, t := range types {
		sc := 0
		if strCaps != nil {
			sc = strCaps[i]
		}
		b.Vecs[i] = NewVector(t, sc)
	}
	return b
}

// Reset truncates all vectors and the row count.
func (b *Batch) Reset() {
	for i := range b.Vecs {
		b.Vecs[i].Reset()
	}
	b.N = 0
}

// Compact keeps only the rows whose keep flag is set and fixes N. The
// flags are translated once into a selection-index list so each vector
// moves only the kept rows rather than re-walking the flag array.
func (b *Batch) Compact(keep []bool) {
	n := 0
	for _, k := range keep[:b.N] {
		if k {
			n++
		}
	}
	if n == b.N {
		return
	}
	if cap(b.idx) < n {
		b.idx = make([]int32, 0, len(keep))
	}
	idx := b.idx[:0]
	for i, k := range keep[:b.N] {
		if k {
			idx = append(idx, int32(i))
		}
	}
	b.idx = idx
	for i := range b.Vecs {
		b.Vecs[i].CompactIdx(idx)
	}
	b.N = n
}

// Types returns the logical types of the batch's vectors.
func (b *Batch) Types() []storage.Type {
	ts := make([]storage.Type, len(b.Vecs))
	for i := range b.Vecs {
		ts[i] = b.Vecs[i].T
	}
	return ts
}
