package exec

import (
	"bytes"
	"sort"
	"sync"

	"partitionjoin/internal/govern"
	"partitionjoin/internal/storage"
)

// SortKey orders by one column, ascending unless Desc.
type SortKey struct {
	Col  int
	Desc bool
}

// SortSink is the ORDER BY [LIMIT] pipeline breaker: it collects all input
// rows, sorts them at Close, and exposes the (optionally truncated) result
// as a Source and as a Result.
type SortSink struct {
	Keys  []SortKey
	Limit int // 0 = unlimited

	Types []storage.Type
	Caps  []int

	// Gov accounts collected bytes with the query's memory governor.
	Gov *govern.Governor

	mu     sync.Mutex
	locals []*Result
	out    *Result
}

// Open implements Sink.
func (s *SortSink) Open(workers int) {
	s.locals = make([]*Result, workers)
	s.out = nil
}

// Consume implements Sink.
func (s *SortSink) Consume(ctx *Ctx, b *Batch) {
	r := s.locals[ctx.Worker]
	if r == nil {
		r = NewResult(s.Types, s.Caps)
		s.locals[ctx.Worker] = r
	}
	s.Gov.MustGrant(int64(b.N) * 8 * int64(len(b.Vecs)))
	r.AppendBatch(b)
}

// Close implements Sink: concatenates, sorts, truncates.
func (s *SortSink) Close() {
	all := NewResult(s.Types, s.Caps)
	for _, r := range s.locals {
		if r != nil {
			all.AppendResult(r)
		}
	}
	n := all.NumRows()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return all.rowLess(int(idx[a]), int(idx[b]), s.Keys)
	})
	if s.Limit > 0 && s.Limit < n {
		idx = idx[:s.Limit]
	}
	out := NewResult(s.Types, s.Caps)
	out.AppendGather(all, idx)
	s.out = out
	s.locals = nil
}

// Result returns the sorted rows after Close.
func (s *SortSink) Result() *Result { return s.out }

// Source returns a source over the sorted result (single task to preserve
// order). The result is resolved lazily because the sink closes only after
// plan compilation.
func (s *SortSink) Source() *SortSource { return &SortSource{S: s} }

// SortSource replays a SortSink's output in order.
type SortSource struct {
	S *SortSink
}

// Tasks implements Source: one task, to preserve the sort order.
func (s *SortSource) Tasks() int { return 1 }

// Emit implements Source.
func (s *SortSource) Emit(ctx *Ctx, task int, out Operator) {
	rs := &ResultSource{R: s.S.Result(), Ordered: true}
	rs.Emit(ctx, 0, out)
}

// Result is a materialized row set: one vector per column, grown without
// bound. It backs sort sinks, collect sinks, and test assertions.
type Result struct {
	Vecs []Vector
	n    int
}

// NewResult allocates an empty result with the given column shape.
func NewResult(types []storage.Type, caps []int) *Result {
	r := &Result{Vecs: make([]Vector, len(types))}
	for i, t := range types {
		c := 0
		if caps != nil {
			c = caps[i]
		}
		r.Vecs[i] = NewVector(t, c)
	}
	return r
}

// NumRows returns the number of rows collected.
func (r *Result) NumRows() int { return r.n }

// AppendBatch copies a batch into the result. String bytes are copied since
// batch strings alias transient arenas.
func (r *Result) AppendBatch(b *Batch) {
	for i := range r.Vecs {
		v := &r.Vecs[i]
		sv := &b.Vecs[i]
		switch v.T {
		case storage.Float64:
			v.F64 = append(v.F64, sv.F64[:b.N]...)
		case storage.String:
			for _, s := range sv.Str[:b.N] {
				v.Str = append(v.Str, append([]byte(nil), s...))
			}
		default:
			v.I64 = append(v.I64, sv.I64[:b.N]...)
		}
	}
	r.n += b.N
}

// AppendResult concatenates another result of the same shape.
func (r *Result) AppendResult(o *Result) {
	for i := range r.Vecs {
		v := &r.Vecs[i]
		sv := &o.Vecs[i]
		switch v.T {
		case storage.Float64:
			v.F64 = append(v.F64, sv.F64...)
		case storage.String:
			v.Str = append(v.Str, sv.Str...)
		default:
			v.I64 = append(v.I64, sv.I64...)
		}
	}
	r.n += o.n
}

// AppendGather appends the rows of src selected by idx.
func (r *Result) AppendGather(src *Result, idx []int32) {
	for i := range r.Vecs {
		r.Vecs[i].Gather(&src.Vecs[i], idx)
	}
	r.n += len(idx)
}

// rowLess compares two rows under the sort keys.
func (r *Result) rowLess(a, b int, keys []SortKey) bool {
	for _, k := range keys {
		v := &r.Vecs[k.Col]
		var c int
		switch v.T {
		case storage.Float64:
			switch {
			case v.F64[a] < v.F64[b]:
				c = -1
			case v.F64[a] > v.F64[b]:
				c = 1
			}
		case storage.String:
			c = bytes.Compare(v.Str[a], v.Str[b])
		default:
			switch {
			case v.I64[a] < v.I64[b]:
				c = -1
			case v.I64[a] > v.I64[b]:
				c = 1
			}
		}
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// SortRows orders the entire result lexicographically by all columns;
// tests use it to compare parallel (unordered) results deterministically.
func (r *Result) SortRows() {
	keys := make([]SortKey, len(r.Vecs))
	for i := range keys {
		keys[i] = SortKey{Col: i}
	}
	idx := make([]int32, r.n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.rowLess(int(idx[a]), int(idx[b]), keys) })
	out := NewResult(r.types(), nil)
	out.AppendGather(r, idx)
	*r = *out
}

func (r *Result) types() []storage.Type {
	ts := make([]storage.Type, len(r.Vecs))
	for i := range r.Vecs {
		ts[i] = r.Vecs[i].T
	}
	return ts
}

// CollectSink gathers all rows of a pipeline into a Result (the final
// materialization point of a query).
type CollectSink struct {
	Types []storage.Type
	Caps  []int

	// Gov accounts collected bytes with the query's memory governor.
	Gov *govern.Governor

	locals []*Result
	out    *Result
}

// Open implements Sink.
func (c *CollectSink) Open(workers int) {
	c.locals = make([]*Result, workers)
	c.out = nil
}

// Consume implements Sink.
func (c *CollectSink) Consume(ctx *Ctx, b *Batch) {
	r := c.locals[ctx.Worker]
	if r == nil {
		r = NewResult(c.Types, c.Caps)
		c.locals[ctx.Worker] = r
	}
	c.Gov.MustGrant(int64(b.N) * 8 * int64(len(b.Vecs)))
	r.AppendBatch(b)
	ctx.Meter.AddWrite(int64(b.N) * 8 * int64(len(b.Vecs)))
}

// Close implements Sink.
func (c *CollectSink) Close() {
	out := NewResult(c.Types, c.Caps)
	for _, r := range c.locals {
		if r != nil {
			out.AppendResult(r)
		}
	}
	c.out = out
	c.locals = nil
}

// Result returns the collected rows after Close.
func (c *CollectSink) Result() *Result { return c.out }

// ResultSource replays a Result as a pipeline source. Ordered sources use a
// single task to preserve row order; unordered ones split into chunks.
type ResultSource struct {
	R       *Result
	Ordered bool
}

// Tasks implements Source.
func (s *ResultSource) Tasks() int {
	if s.Ordered {
		return 1
	}
	return (s.R.NumRows() + storage.MorselSize - 1) / storage.MorselSize
}

// Emit implements Source.
func (s *ResultSource) Emit(ctx *Ctx, task int, out Operator) {
	start := task * storage.MorselSize
	end := start + storage.MorselSize
	if s.Ordered {
		start, end = 0, s.R.NumRows()
	}
	if end > s.R.NumRows() {
		end = s.R.NumRows()
	}
	ts := s.R.types()
	if ctx.scanBatch == nil {
		ctx.scanBatch = NewBatch(ts, nil)
	}
	b := ctx.scanBatch
	for cur := start; cur < end; cur += BatchSize {
		stop := cur + BatchSize
		if stop > end {
			stop = end
		}
		b.Reset()
		for i := range b.Vecs {
			v := &b.Vecs[i]
			sv := &s.R.Vecs[i]
			switch v.T {
			case storage.Float64:
				v.F64 = append(v.F64, sv.F64[cur:stop]...)
			case storage.String:
				v.Str = append(v.Str, sv.Str[cur:stop]...)
			default:
				v.I64 = append(v.I64, sv.I64[cur:stop]...)
			}
		}
		b.N = stop - cur
		out.Process(ctx, b)
	}
	if ctx.SourceRows != nil {
		ctx.SourceRows.Add(int64(end - start))
	}
}
