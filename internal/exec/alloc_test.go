package exec

import (
	"testing"

	"partitionjoin/internal/storage"
)

// countOp discards batches, counting rows.
type countOp struct{ rows int }

func (o *countOp) Process(ctx *Ctx, b *Batch) { o.rows += b.N }
func (o *countOp) Flush(ctx *Ctx)             {}

// allocTable builds a two-column Int64 table for the steady-state tests.
func allocTable(rows int) *storage.Table {
	schema := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
	)
	t := storage.NewTable("alloctest", schema, rows)
	kc := t.Cols[0].(*storage.Int64Column)
	vc := t.Cols[1].(*storage.Int64Column)
	for i := 0; i < rows; i++ {
		kc.Values = append(kc.Values, int64(i))
		vc.Values = append(vc.Values, int64(i%7))
	}
	return t
}

// TestScanEmitAllocs pins the hot scan loop at zero steady-state
// allocations: after the first morsel warms the worker's reusable batch
// and keep buffer, emitting further morsels — zone-map full-match path,
// per-row filtered path, and unfiltered path — must not allocate. This is
// the per-morsel scratch contract the -gcflags=-m audit enforces.
func TestScanEmitAllocs(t *testing.T) {
	tbl := allocTable(4 * BatchSize)
	cases := []struct {
		name  string
		preds []ScanPred
	}{
		{"unpushed", nil},
		// Covers every row: the zone-map full-match fast path.
		{"fullmatch", []ScanPred{{Kind: ScanRangeI, Col: 0, Lo: -1, Hi: int64(4 * BatchSize)}}},
		// Keeps about half of each batch: the per-row kernel + gather path.
		{"filtered", []ScanPred{{Kind: ScanRangeI, Col: 0, Lo: 0, Hi: int64(2*BatchSize + 100)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := NewTableSource(tbl, "k", "v")
			if tc.preds != nil {
				src.SetPushed(tc.preds)
			}
			ctx := &Ctx{Workers: 1}
			out := &countOp{}
			for task := 0; task < src.Tasks(); task++ {
				src.Emit(ctx, task, out) // warm batch, keep buffer, widen caps
			}
			if n := testing.AllocsPerRun(10, func() {
				for task := 0; task < src.Tasks(); task++ {
					src.Emit(ctx, task, out)
				}
			}); n > 0 {
				t.Fatalf("steady-state Emit allocates %.1f times per run, want 0", n)
			}
		})
	}
}

// TestGroupByConsumeAllocs pins the keyed aggregation hot path at zero
// steady-state allocations: once the groups exist, Consume must reuse the
// table-held scratch key buffer instead of allocating one per batch.
func TestGroupByConsumeAllocs(t *testing.T) {
	g := &GroupBySink{
		Keys:     []int{0},
		Aggs:     []AggSpec{{Kind: AggSumI, Col: 1}},
		KeyTypes: []storage.Type{storage.Int64},
		KeyCaps:  []int{0},
	}
	g.Open(1)
	ctx := &Ctx{Workers: 1}
	b := NewBatch([]storage.Type{storage.Int64, storage.Int64}, []int{0, 0})
	for i := 0; i < BatchSize; i++ {
		b.Vecs[0].I64 = append(b.Vecs[0].I64, int64(i%16))
		b.Vecs[1].I64 = append(b.Vecs[1].I64, int64(i))
	}
	b.N = BatchSize
	g.Consume(ctx, b) // creates the 16 groups and the scratch buffer
	if n := testing.AllocsPerRun(10, func() {
		g.Consume(ctx, b)
	}); n > 0 {
		t.Fatalf("steady-state Consume allocates %.1f times per run, want 0", n)
	}
}
