package tpch

import (
	"fmt"

	"partitionjoin/internal/sql"
)

// ServeCatalog generates a TPC-H database at sf and wraps it as the SQL
// catalog the query service serves.
func ServeCatalog(sf float64) sql.Catalog {
	db := Generate(sf, 1)
	cat := sql.Catalog{}
	for _, t := range db.Tables() {
		cat[t.Name] = t
	}
	return cat
}

// ServeQueries is the mixed traffic of the query-service load generator: a
// join-heavy aggregate, two scan-shaped analytics (Q6- and Q1-style), and a
// grouped rollup. Every client cycles through all of them, so after one
// warm pass the plan cache should serve (nearly) every request.
func ServeQueries() []string {
	return []string{
		`SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey`,
		fmt.Sprintf(`SELECT sum(l_extendedprice) AS rev, count(*) AS n FROM lineitem
			WHERE l_shipdate BETWEEN %d AND %d AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
			Date(1994, 1, 1), Date(1994, 12, 31)),
		`SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty, count(*) AS n
			FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
		`SELECT o_orderpriority, count(*) AS n FROM orders
			GROUP BY o_orderpriority ORDER BY o_orderpriority`,
	}
}
