package tpch

import (
	"context"
	"fmt"
	"time"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/plan"
)

// Runner executes the (possibly multi-stage) plans of one query run and
// accumulates the throughput metric: source tuples and wall time summed
// over all stages (Section 5.3's "sum of all tuples counted at the
// pipeline sources").
type Runner struct {
	Opts plan.Options
	// LM enables the late-materialization variant where the query
	// supports one (Section 4.2).
	LM bool
	// Ctx, when set, bounds every stage (cancellation / deadline).
	Ctx context.Context

	Rows int64
	Dur  time.Duration
	// Err holds the first stage error. It is sticky, like
	// bufio.Scanner: once set, Run becomes a no-op returning an empty
	// result, so multi-stage queries fall through without executing
	// further stages and the caller checks Err (or uses RunQuery's
	// error return) once at the end.
	Err error
}

func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// fail records the first error of the run.
func (r *Runner) fail(err error) {
	if r.Err == nil {
		r.Err = err
	}
}

// emptyResult is what a failed or skipped stage returns: zero rows, but
// safe to pass to TableFromResult and NumRows.
func emptyResult() *plan.ExecResult {
	return &plan.ExecResult{Result: &exec.Result{}}
}

// Run executes one stage and accumulates its stats. After a stage error
// it short-circuits and returns an empty result.
func (r *Runner) Run(n plan.Node) *plan.ExecResult {
	if r.Err != nil {
		return emptyResult()
	}
	res, err := plan.ExecuteErr(r.ctx(), r.Opts, n)
	if err != nil {
		r.fail(err)
		return emptyResult()
	}
	r.Rows += res.SourceRows
	r.Dur += res.Duration
	return res
}

// Throughput returns accumulated source tuples per second.
func (r *Runner) Throughput() float64 {
	if r.Dur <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Dur.Seconds()
}

// Query is one TPC-H query: it runs its stages through the Runner and
// returns the final result.
type Query func(db *DB, r *Runner) *plan.ExecResult

// Queries maps query number to implementation for the 19 TPC-H queries
// containing joins (1, 6 and 13 have none / use a groupjoin, as in the
// paper's Figure 11).
var Queries = map[int]Query{
	2: Q2, 3: Q3, 4: Q4, 5: Q5, 7: Q7, 8: Q8, 9: Q9, 10: Q10,
	11: Q11, 12: Q12, 14: Q14, 15: Q15, 16: Q16, 17: Q17, 18: Q18,
	19: Q19, 20: Q20, 21: Q21, 22: Q22,
}

// QueryNumbers lists the implemented queries in order.
var QueryNumbers = []int{2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 14, 15, 16, 17, 18, 19, 20, 21, 22}

// JoinCounts gives the number of swappable equi-joins per query (the join
// IDs run 1..count), for the per-join analysis of Figure 12.
var JoinCounts = map[int]int{
	2: 8, 3: 2, 4: 1, 5: 5, 7: 5, 8: 7, 9: 5, 10: 3,
	11: 4, 12: 1, 14: 1, 15: 1, 16: 2, 17: 2, 18: 2,
	19: 1, 20: 4, 21: 5, 22: 1,
}

// rev is the revenue scalar used by most queries.
func rev() expr.Scalar { return expr.RevenueI("rev", "l_extendedprice", "l_discount") }

// euroSuppPS builds the region->nation->supplier->partsupp chain Q2 uses
// twice (once per stage); ids are the three join IDs, pay the partsupp and
// supplier payload carried up.
func euroSuppPS(db *DB, baseID int, supPay []string) plan.Node {
	j1 := &plan.JoinNode{
		ID: baseID, Kind: core.Inner,
		Build:     plan.Filter(plan.Scan(db.Region, "r_regionkey", "r_name"), expr.EqStr("r_name", "EUROPE")),
		Probe:     plan.Scan(db.Nation, "n_nationkey", "n_name", "n_regionkey"),
		BuildKeys: []string{"r_regionkey"}, ProbeKeys: []string{"n_regionkey"},
		ProbePay: []string{"n_nationkey", "n_name"},
	}
	supCols := append([]string{"s_suppkey", "s_nationkey"}, supPay...)
	j2 := &plan.JoinNode{
		ID: baseID + 1, Kind: core.Inner,
		Build:     j1,
		Probe:     plan.Scan(db.Supplier, supCols...),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"s_nationkey"},
		BuildPay: []string{"n_name"},
		ProbePay: append([]string{"s_suppkey"}, supPay...),
	}
	j3 := &plan.JoinNode{
		ID: baseID + 2, Kind: core.Inner,
		Build:     j2,
		Probe:     plan.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost"),
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"ps_suppkey"},
		BuildPay: append([]string{"n_name"}, supPay...),
		ProbePay: []string{"ps_partkey", "ps_supplycost"},
	}
	return j3
}

// Q2 finds the minimum-cost European supplier per brass part.
func Q2(db *DB, r *Runner) *plan.ExecResult {
	// Stage 1: per-part minimum supply cost among European suppliers.
	minStage := plan.GroupBy(euroSuppPS(db, 1, nil),
		[]string{"ps_partkey"},
		plan.AggExpr{Kind: exec.AggMinI, Col: "ps_supplycost", As: "min_cost"})
	minRes := r.Run(minStage)
	minTable := plan.TableFromResult("mincost", minRes.Cols, minRes.Result)

	// Stage 2: the main join tree over the filtered part relation.
	supPay := []string{"s_name", "s_acctbal", "s_address", "s_phone", "s_comment"}
	ps := euroSuppPS(db, 4, supPay)
	j7 := &plan.JoinNode{
		ID: 7, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_mfgr", "p_size", "p_type"),
			expr.And(expr.EqI("p_size", 15), expr.Like("p_type", "%BRASS"))),
		Probe:     ps,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"ps_partkey"},
		BuildPay: []string{"p_partkey", "p_mfgr"},
		ProbePay: append(append([]string{"n_name"}, supPay...), "ps_supplycost"),
	}
	j8 := &plan.JoinNode{
		ID: 8, Kind: core.Inner,
		Build:     plan.Scan(minTable, "ps_partkey", "min_cost"),
		Probe:     j7,
		BuildKeys: []string{"ps_partkey", "min_cost"},
		ProbeKeys: []string{"p_partkey", "ps_supplycost"},
		ProbePay: append([]string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
			"s_address", "s_phone"}, "s_comment"),
	}
	root := plan.OrderBy(j8, 100,
		plan.OrderKey{Col: "s_acctbal", Desc: true},
		plan.OrderKey{Col: "n_name"},
		plan.OrderKey{Col: "s_name"},
		plan.OrderKey{Col: "p_partkey"})
	return r.Run(root)
}

// Q3 reports unshipped high-revenue orders for one market segment.
func Q3(db *DB, r *Runner) *plan.ExecResult {
	cutoff := Date(1995, 3, 15)
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Customer, "c_custkey", "c_mktsegment"),
			expr.EqStr("c_mktsegment", "BUILDING")),
		Probe: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
			expr.LtI("o_orderdate", cutoff)),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		ProbePay: []string{"o_orderkey", "o_orderdate", "o_shippriority"},
	}
	var lineitem plan.Node
	if r.LM {
		lineitem = plan.Filter(plan.ScanRowID(db.Lineitem, "l_rid", "l_orderkey", "l_shipdate"),
			expr.GtI("l_shipdate", cutoff))
	} else {
		lineitem = plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"),
			expr.GtI("l_shipdate", cutoff))
	}
	probePay := []string{"l_extendedprice", "l_discount"}
	if r.LM {
		probePay = []string{"l_rid"}
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     j1,
		Probe:     lineitem,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"o_orderkey", "o_orderdate", "o_shippriority"},
		ProbePay: probePay,
	}
	var withRev plan.Node = j2
	if r.LM {
		withRev = plan.LateLoad(j2, db.Lineitem, "l_rid", "l_extendedprice", "l_discount")
	}
	root := plan.OrderBy(
		plan.GroupBy(plan.Map(withRev, rev()),
			[]string{"o_orderkey", "o_orderdate", "o_shippriority"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "revenue"}),
		10,
		plan.OrderKey{Col: "revenue", Desc: true},
		plan.OrderKey{Col: "o_orderdate"})
	return r.Run(root)
}

// Q4 counts orders with at least one late lineitem, per priority: a
// build-side semi join with the date-filtered orders as build (the paper's
// Q4 discussion).
func Q4(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1993, 7, 1)
	hi := Date(1993, 10, 1)
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.LeftSemi,
		Build: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_orderdate", "o_orderpriority"),
			expr.And(expr.GeI("o_orderdate", lo), expr.LtI("o_orderdate", hi))),
		Probe: plan.Filter(plan.Scan(db.Lineitem, "l_orderkey", "l_commitdate", "l_receiptdate"),
			expr.LtCols("l_commitdate", "l_receiptdate")),
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"o_orderpriority"},
	}
	root := plan.OrderBy(
		plan.GroupBy(j1, []string{"o_orderpriority"},
			plan.AggExpr{Kind: exec.AggCount, As: "order_count"}),
		0, plan.OrderKey{Col: "o_orderpriority"})
	return r.Run(root)
}

// Q5 computes local-supplier revenue per Asian nation. Join 4 probes the
// unfiltered lineitem relation (the 1:117 size ratio the paper highlights).
func Q5(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1994, 1, 1)
	hi := Date(1995, 1, 1)
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     plan.Filter(plan.Scan(db.Region, "r_regionkey", "r_name"), expr.EqStr("r_name", "ASIA")),
		Probe:     plan.Scan(db.Nation, "n_nationkey", "n_name", "n_regionkey"),
		BuildKeys: []string{"r_regionkey"}, ProbeKeys: []string{"n_regionkey"},
		ProbePay: []string{"n_nationkey", "n_name"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     j1,
		Probe:     plan.Scan(db.Customer, "c_custkey", "c_nationkey"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"c_nationkey"},
		BuildPay: []string{"n_name"},
		ProbePay: []string{"c_custkey", "c_nationkey"},
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Inner,
		Build: j2,
		Probe: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
			expr.And(expr.GeI("o_orderdate", lo), expr.LtI("o_orderdate", hi))),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildPay: []string{"n_name", "c_nationkey"},
		ProbePay: []string{"o_orderkey"},
	}
	var lineitem plan.Node
	probePay := []string{"l_suppkey", "l_extendedprice", "l_discount"}
	if r.LM {
		lineitem = plan.ScanRowID(db.Lineitem, "l_rid", "l_orderkey", "l_suppkey")
		probePay = []string{"l_suppkey", "l_rid"}
	} else {
		lineitem = plan.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.Inner,
		Build:     j3,
		Probe:     lineitem,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"n_name", "c_nationkey"},
		ProbePay: probePay,
	}
	j5Pay := []string{"n_name", "l_extendedprice", "l_discount"}
	if r.LM {
		j5Pay = []string{"n_name", "l_rid"}
	}
	j5 := &plan.JoinNode{
		ID: 5, Kind: core.Inner,
		Build:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		Probe:     j4,
		BuildKeys: []string{"s_suppkey", "s_nationkey"},
		ProbeKeys: []string{"l_suppkey", "c_nationkey"},
		ProbePay:  j5Pay,
	}
	var withRev plan.Node = j5
	if r.LM {
		withRev = plan.LateLoad(j5, db.Lineitem, "l_rid", "l_extendedprice", "l_discount")
	}
	root := plan.OrderBy(
		plan.GroupBy(plan.Map(withRev, rev()),
			[]string{"n_name"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "revenue"}),
		0, plan.OrderKey{Col: "revenue", Desc: true})
	return r.Run(root)
}

// Q7 computes shipping volume between France and Germany per year.
func Q7(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Rename(plan.Filter(plan.Scan(db.Nation, "n_nationkey", "n_name"),
			expr.InStr("n_name", "FRANCE", "GERMANY")), "n_nationkey", "n1_key", "n_name", "supp_nation"),
		Probe:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		BuildKeys: []string{"n1_key"}, ProbeKeys: []string{"s_nationkey"},
		BuildPay: []string{"supp_nation"},
		ProbePay: []string{"s_suppkey"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build: plan.Rename(plan.Filter(plan.Scan(db.Nation, "n_nationkey", "n_name"),
			expr.InStr("n_name", "FRANCE", "GERMANY")), "n_nationkey", "n2_key", "n_name", "cust_nation"),
		Probe:     plan.Scan(db.Customer, "c_custkey", "c_nationkey"),
		BuildKeys: []string{"n2_key"}, ProbeKeys: []string{"c_nationkey"},
		BuildPay: []string{"cust_nation"},
		ProbePay: []string{"c_custkey"},
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Inner,
		Build:     j2,
		Probe:     plan.Scan(db.Orders, "o_orderkey", "o_custkey"),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildPay: []string{"cust_nation"},
		ProbePay: []string{"o_orderkey"},
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.Inner,
		Build: j1,
		Probe: plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"),
			expr.BetweenI("l_shipdate", Date(1995, 1, 1), Date(1996, 12, 31))),
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"l_suppkey"},
		BuildPay: []string{"supp_nation"},
		ProbePay: []string{"l_orderkey", "l_shipdate", "l_extendedprice", "l_discount"},
	}
	j5 := &plan.JoinNode{
		ID: 5, Kind: core.Inner,
		Build:     j3,
		Probe:     j4,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"cust_nation"},
		ProbePay: []string{"supp_nation", "l_shipdate", "l_extendedprice", "l_discount"},
	}
	pairs := plan.Filter(j5, expr.Or(
		expr.And(expr.EqStr("supp_nation", "FRANCE"), expr.EqStr("cust_nation", "GERMANY")),
		expr.And(expr.EqStr("supp_nation", "GERMANY"), expr.EqStr("cust_nation", "FRANCE"))))
	root := plan.OrderBy(
		plan.GroupBy(plan.Map(pairs, expr.YearI("l_year", "l_shipdate"), rev()),
			[]string{"supp_nation", "cust_nation", "l_year"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "revenue"}),
		0,
		plan.OrderKey{Col: "supp_nation"},
		plan.OrderKey{Col: "cust_nation"},
		plan.OrderKey{Col: "l_year"})
	return r.Run(root)
}

// Q8 computes the Brazilian market share in America for one part type; its
// J2 probes the unfiltered lineitem with a tiny filtered part build side
// (the 60%-faster-BHJ case of Section 5.3.2).
func Q8(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     plan.Filter(plan.Scan(db.Region, "r_regionkey", "r_name"), expr.EqStr("r_name", "AMERICA")),
		Probe:     plan.Rename(plan.Scan(db.Nation, "n_nationkey", "n_regionkey"), "n_nationkey", "n1_key"),
		BuildKeys: []string{"r_regionkey"}, ProbeKeys: []string{"n_regionkey"},
		ProbePay: []string{"n1_key"},
	}
	var lineitem plan.Node
	probePay := []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}
	if r.LM {
		lineitem = plan.ScanRowID(db.Lineitem, "l_rid", "l_partkey", "l_orderkey", "l_suppkey")
		probePay = []string{"l_orderkey", "l_suppkey", "l_rid"}
	} else {
		lineitem = plan.Scan(db.Lineitem, "l_partkey", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_type"),
			expr.EqStr("p_type", "ECONOMY ANODIZED STEEL")),
		Probe:     lineitem,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		ProbePay: probePay,
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Inner,
		Build:     j1,
		Probe:     plan.Scan(db.Customer, "c_custkey", "c_nationkey"),
		BuildKeys: []string{"n1_key"}, ProbeKeys: []string{"c_nationkey"},
		ProbePay: []string{"c_custkey"},
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.Inner,
		Build: j3,
		Probe: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
			expr.BetweenI("o_orderdate", Date(1995, 1, 1), Date(1996, 12, 31))),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		ProbePay: []string{"o_orderkey", "o_orderdate"},
	}
	j5Pay := []string{"l_suppkey", "l_extendedprice", "l_discount"}
	if r.LM {
		j5Pay = []string{"l_suppkey", "l_rid"}
	}
	j5 := &plan.JoinNode{
		ID: 5, Kind: core.Inner,
		Build:     j4,
		Probe:     j2,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"o_orderdate"},
		ProbePay: j5Pay,
	}
	j6 := &plan.JoinNode{
		ID: 6, Kind: core.Inner,
		Build:     plan.Rename(plan.Scan(db.Nation, "n_nationkey", "n_name"), "n_nationkey", "n2_key", "n_name", "nation"),
		Probe:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		BuildKeys: []string{"n2_key"}, ProbeKeys: []string{"s_nationkey"},
		BuildPay: []string{"nation"},
		ProbePay: []string{"s_suppkey"},
	}
	j7Pay := []string{"o_orderdate", "l_extendedprice", "l_discount"}
	if r.LM {
		j7Pay = []string{"o_orderdate", "l_rid"}
	}
	j7 := &plan.JoinNode{
		ID: 7, Kind: core.Inner,
		Build:     j6,
		Probe:     j5,
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"l_suppkey"},
		BuildPay: []string{"nation"},
		ProbePay: j7Pay,
	}
	var withRev plan.Node = j7
	if r.LM {
		withRev = plan.LateLoad(j7, db.Lineitem, "l_rid", "l_extendedprice", "l_discount")
	}
	grouped := plan.GroupBy(
		plan.Map(withRev,
			expr.YearI("o_year", "o_orderdate"),
			rev(),
			expr.CaseI("brazil_rev", expr.EqStr("nation", "BRAZIL"), "rev")),
		[]string{"o_year"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "brazil_rev", As: "num"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "den"})
	root := plan.OrderBy(
		plan.Map(grouped, expr.RatioF("mkt_share", "num", "den", 1)),
		0, plan.OrderKey{Col: "o_year"})
	return r.Run(root)
}

// Q9 computes profit per nation and year over parts with green names.
func Q9(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_name"), expr.Like("p_name", "%green%")),
		Probe: plan.Scan(db.Lineitem, "l_partkey", "l_suppkey", "l_orderkey",
			"l_quantity", "l_extendedprice", "l_discount"),
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		ProbePay: []string{"l_partkey", "l_suppkey", "l_orderkey", "l_quantity",
			"l_extendedprice", "l_discount"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		Probe:     j1,
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"l_suppkey"},
		BuildPay: []string{"s_nationkey"},
		ProbePay: []string{"l_partkey", "l_suppkey", "l_orderkey", "l_quantity",
			"l_extendedprice", "l_discount"},
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Inner,
		Build:     plan.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost"),
		Probe:     j2,
		BuildKeys: []string{"ps_partkey", "ps_suppkey"}, ProbeKeys: []string{"l_partkey", "l_suppkey"},
		BuildPay: []string{"ps_supplycost"},
		ProbePay: []string{"s_nationkey", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount"},
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.Inner,
		Build:     plan.Scan(db.Nation, "n_nationkey", "n_name"),
		Probe:     j3,
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"s_nationkey"},
		BuildPay: []string{"n_name"},
		ProbePay: []string{"ps_supplycost", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount"},
	}
	j5 := &plan.JoinNode{
		ID: 5, Kind: core.Inner,
		Build:     plan.Scan(db.Orders, "o_orderkey", "o_orderdate"),
		Probe:     j4,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"o_orderdate"},
		ProbePay: []string{"n_name", "ps_supplycost", "l_quantity", "l_extendedprice", "l_discount"},
	}
	// amount = price*(100-disc) - 100*supplycost*qty, in 1e-4 dollars.
	amount := plan.Map(
		plan.Map(j5,
			rev(),
			expr.MulI("cost_qty", "ps_supplycost", "l_quantity"),
			expr.YearI("o_year", "o_orderdate")),
		expr.MulConstI("cost_scaled", "cost_qty", 100))
	profit := plan.Map(amount, expr.SubI("amount", "rev", "cost_scaled"))
	root := plan.OrderBy(
		plan.GroupBy(profit, []string{"n_name", "o_year"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "amount", As: "sum_profit"}),
		0,
		plan.OrderKey{Col: "n_name"},
		plan.OrderKey{Col: "o_year", Desc: true})
	return r.Run(root)
}

// Q10 reports customers who returned items in one quarter.
func Q10(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1993, 10, 1)
	hi := Date(1994, 1, 1)
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
			expr.And(expr.GeI("o_orderdate", lo), expr.LtI("o_orderdate", hi))),
		Probe: plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"),
			expr.EqStr("l_returnflag", "R")),
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay: []string{"o_custkey"},
		ProbePay: []string{"l_extendedprice", "l_discount"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build: plan.Scan(db.Nation, "n_nationkey", "n_name"),
		Probe: plan.Scan(db.Customer, "c_custkey", "c_name", "c_acctbal", "c_nationkey",
			"c_address", "c_phone", "c_comment"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"c_nationkey"},
		BuildPay: []string{"n_name"},
		ProbePay: []string{"c_custkey", "c_name", "c_acctbal", "c_address", "c_phone", "c_comment"},
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Inner,
		Build:     j2,
		Probe:     j1,
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildPay: []string{"c_custkey", "c_name", "c_acctbal", "n_name", "c_address", "c_phone", "c_comment"},
		ProbePay: []string{"l_extendedprice", "l_discount"},
	}
	root := plan.OrderBy(
		plan.GroupBy(plan.Map(j3, rev()),
			[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "revenue"}),
		20, plan.OrderKey{Col: "revenue", Desc: true})
	return r.Run(root)
}

// q11Chain is the nation->supplier->partsupp chain both Q11 stages share.
func q11Chain(db *DB, baseID int) plan.Node {
	j1 := &plan.JoinNode{
		ID: baseID, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Nation, "n_nationkey", "n_name"),
			expr.EqStr("n_name", "GERMANY")),
		Probe:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"s_nationkey"},
		ProbePay: []string{"s_suppkey"},
	}
	j2 := &plan.JoinNode{
		ID: baseID + 1, Kind: core.Inner,
		Build:     j1,
		Probe:     plan.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"ps_suppkey"},
		ProbePay: []string{"ps_partkey", "ps_availqty", "ps_supplycost"},
	}
	return plan.Map(j2, expr.MulI("value", "ps_supplycost", "ps_availqty"))
}

// Q11 lists the most valuable German stock positions above a global
// threshold — a two-stage query whose both stages run the same join chain,
// matching the paper's four Q11 joins (Figure 1's Q11-J2 and Q11-J4).
func Q11(db *DB, r *Runner) *plan.ExecResult {
	totalRes := r.Run(plan.GroupBy(q11Chain(db, 1), nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "value", As: "total"}))
	total, err := totalRes.ScalarI64()
	if err != nil {
		r.fail(fmt.Errorf("q11 stage 1: %w", err))
		return emptyResult()
	}
	threshold := total / 10000 // sum(value) * 0.0001

	grouped := plan.GroupBy(q11Chain(db, 3), []string{"ps_partkey"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "value", As: "value"})
	root := plan.OrderBy(
		plan.Filter(grouped, expr.GtI("value", threshold)),
		0, plan.OrderKey{Col: "value", Desc: true})
	return r.Run(root)
}

// Q12 counts late shipments by mode; the filtered lineitem is the build
// side (Section 5.3.1's Q12 discussion).
func Q12(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1994, 1, 1)
	hi := Date(1995, 1, 1)
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate"),
			expr.And(
				expr.InStr("l_shipmode", "MAIL", "SHIP"),
				expr.LtCols("l_commitdate", "l_receiptdate"),
				expr.LtCols("l_shipdate", "l_commitdate"),
				expr.GeI("l_receiptdate", lo),
				expr.LtI("l_receiptdate", hi))),
		Probe:     plan.Scan(db.Orders, "o_orderkey", "o_orderpriority"),
		BuildKeys: []string{"l_orderkey"}, ProbeKeys: []string{"o_orderkey"},
		BuildPay: []string{"l_shipmode"},
		ProbePay: []string{"o_orderpriority"},
	}
	cased := plan.Map(j1,
		expr.PredI("high", expr.InStr("o_orderpriority", "1-URGENT", "2-HIGH")),
		expr.PredI("low", expr.Not(expr.InStr("o_orderpriority", "1-URGENT", "2-HIGH"))))
	root := plan.OrderBy(
		plan.GroupBy(cased, []string{"l_shipmode"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "high", As: "high_line_count"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "low", As: "low_line_count"}),
		0, plan.OrderKey{Col: "l_shipmode"})
	return r.Run(root)
}
