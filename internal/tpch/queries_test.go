package tpch

import (
	"fmt"
	"testing"

	"partitionjoin/internal/plan"
)

// These tests validate selected queries against references computed
// directly from the generated arrays with plain Go loops — independent of
// the join, pipeline, and aggregation machinery.

func runForTest(q int, algo plan.JoinAlgo) *plan.ExecResult {
	opts := plan.DefaultOptions()
	opts.Algo = algo
	opts.Workers = 2
	opts.Core.CacheBudget = 16 << 10
	r := &Runner{Opts: opts}
	res := Queries[q](testDB, r)
	if r.Err != nil {
		panic(r.Err)
	}
	return res
}

func TestQ4AgainstDirectComputation(t *testing.T) {
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)
	late := map[int64]bool{}
	lOrder := testDB.Lineitem.Int64Col("l_orderkey")
	lCommit := testDB.Lineitem.Int64Col("l_commitdate")
	lReceipt := testDB.Lineitem.Int64Col("l_receiptdate")
	for i := range lOrder {
		if lCommit[i] < lReceipt[i] {
			late[lOrder[i]] = true
		}
	}
	want := map[string]int64{}
	oKey := testDB.Orders.Int64Col("o_orderkey")
	oDate := testDB.Orders.Int64Col("o_orderdate")
	oPrio := testDB.Orders.StringCol("o_orderpriority")
	for i := range oKey {
		if oDate[i] >= lo && oDate[i] < hi && late[oKey[i]] {
			want[string(oPrio.Value(i))]++
		}
	}
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
		res := runForTest(4, algo)
		if res.Result.NumRows() != len(want) {
			t.Fatalf("%v: %d priorities, want %d", algo, res.Result.NumRows(), len(want))
		}
		for i := 0; i < res.Result.NumRows(); i++ {
			prio := string(res.Result.Vecs[0].Str[i])
			if got := res.Result.Vecs[1].I64[i]; got != want[prio] {
				t.Fatalf("%v: priority %s count %d, want %d", algo, prio, got, want[prio])
			}
		}
	}
}

func TestQ12AgainstDirectComputation(t *testing.T) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	li := testDB.Lineitem
	lOrder := li.Int64Col("l_orderkey")
	lShip := li.Int64Col("l_shipdate")
	lCommit := li.Int64Col("l_commitdate")
	lReceipt := li.Int64Col("l_receiptdate")
	lMode := li.StringCol("l_shipmode")
	prioOf := map[int64]string{}
	oKey := testDB.Orders.Int64Col("o_orderkey")
	oPrio := testDB.Orders.StringCol("o_orderpriority")
	for i := range oKey {
		prioOf[oKey[i]] = string(oPrio.Value(i))
	}
	type counts struct{ high, low int64 }
	want := map[string]*counts{}
	for i := range lOrder {
		mode := string(lMode.Value(i))
		if mode != "MAIL" && mode != "SHIP" {
			continue
		}
		if !(lShip[i] < lCommit[i] && lCommit[i] < lReceipt[i] &&
			lReceipt[i] >= lo && lReceipt[i] < hi) {
			continue
		}
		p := prioOf[lOrder[i]]
		c := want[mode]
		if c == nil {
			c = &counts{}
			want[mode] = c
		}
		if p == "1-URGENT" || p == "2-HIGH" {
			c.high++
		} else {
			c.low++
		}
	}
	res := runForTest(12, plan.RJ)
	if res.Result.NumRows() != len(want) {
		t.Fatalf("%d ship modes, want %d", res.Result.NumRows(), len(want))
	}
	for i := 0; i < res.Result.NumRows(); i++ {
		mode := string(res.Result.Vecs[0].Str[i])
		w := want[mode]
		if res.Result.Vecs[1].I64[i] != w.high || res.Result.Vecs[2].I64[i] != w.low {
			t.Fatalf("mode %s: got (%d,%d), want (%d,%d)", mode,
				res.Result.Vecs[1].I64[i], res.Result.Vecs[2].I64[i], w.high, w.low)
		}
	}
}

func TestQ22AgainstDirectComputation(t *testing.T) {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true,
		"30": true, "18": true, "17": true}
	cKey := testDB.Customer.Int64Col("c_custkey")
	cPhone := testDB.Customer.StringCol("c_phone")
	cBal := testDB.Customer.Int64Col("c_acctbal")
	hasOrder := map[int64]bool{}
	for _, c := range testDB.Orders.Int64Col("o_custkey") {
		hasOrder[c] = true
	}
	var sum, cnt int64
	for i := range cKey {
		code := string(cPhone.Value(i)[:2])
		if codes[code] && cBal[i] > 0 {
			sum += cBal[i]
			cnt++
		}
	}
	type agg struct{ n, bal int64 }
	want := map[string]*agg{}
	for i := range cKey {
		code := string(cPhone.Value(i)[:2])
		if !codes[code] || hasOrder[cKey[i]] {
			continue
		}
		// c_acctbal > avg  <=>  c_acctbal * cnt > sum.
		if cBal[i]*cnt <= sum {
			continue
		}
		a := want[code]
		if a == nil {
			a = &agg{}
			want[code] = a
		}
		a.n++
		a.bal += cBal[i]
	}
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.BRJ} {
		res := runForTest(22, algo)
		if res.Result.NumRows() != len(want) {
			t.Fatalf("%v: %d country codes, want %d", algo, res.Result.NumRows(), len(want))
		}
		for i := 0; i < res.Result.NumRows(); i++ {
			code := string(res.Result.Vecs[0].Str[i])
			w := want[code]
			if w == nil || res.Result.Vecs[1].I64[i] != w.n || res.Result.Vecs[2].I64[i] != w.bal {
				t.Fatalf("%v code %s: got (%d,%d)", algo, code,
					res.Result.Vecs[1].I64[i], res.Result.Vecs[2].I64[i])
			}
		}
	}
}

func TestQ14AgainstDirectComputation(t *testing.T) {
	lo, hi := Date(1995, 9, 1), Date(1995, 10, 1)
	li := testDB.Lineitem
	lPart := li.Int64Col("l_partkey")
	lShip := li.Int64Col("l_shipdate")
	lPrice := li.Int64Col("l_extendedprice")
	lDisc := li.Int64Col("l_discount")
	pType := testDB.Part.StringCol("p_type")
	var num, den int64
	for i := range lPart {
		if lShip[i] < lo || lShip[i] >= hi {
			continue
		}
		rev := lPrice[i] * (100 - lDisc[i])
		den += rev
		typ := pType.Value(int(lPart[i] - 1)) // partkeys are dense from 1
		if len(typ) >= 5 && string(typ[:5]) == "PROMO" {
			num += rev
		}
	}
	want := 100 * float64(num) / float64(den)
	res := runForTest(14, plan.BRJ)
	// Output columns: num, den, promo_revenue.
	got := res.Result.Vecs[2].F64[0]
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("promo revenue %.9f, want %.9f", got, want)
	}
}

func TestQ11ThresholdSemantics(t *testing.T) {
	// Every returned value must exceed 0.0001 * total value.
	res := runForTest(11, plan.RJ)
	st := plan.NewStatsCollector()
	_ = st
	var total int64
	psCost := testDB.PartSupp.Int64Col("ps_supplycost")
	psQty := testDB.PartSupp.Int64Col("ps_availqty")
	psSupp := testDB.PartSupp.Int64Col("ps_suppkey")
	german := map[int64]bool{}
	sKey := testDB.Supplier.Int64Col("s_suppkey")
	sNat := testDB.Supplier.Int64Col("s_nationkey")
	nName := testDB.Nation.StringCol("n_name")
	for i := range sKey {
		if string(nName.Value(int(sNat[i]))) == "GERMANY" {
			german[sKey[i]] = true
		}
	}
	for i := range psCost {
		if german[psSupp[i]] {
			total += psCost[i] * psQty[i]
		}
	}
	threshold := total / 10000
	for i := 0; i < res.Result.NumRows(); i++ {
		if v := res.Result.Vecs[1].I64[i]; v <= threshold {
			t.Fatalf("row %d value %d below threshold %d", i, v, threshold)
		}
	}
	// Descending order.
	for i := 1; i < res.Result.NumRows(); i++ {
		if res.Result.Vecs[1].I64[i] > res.Result.Vecs[1].I64[i-1] {
			t.Fatal("values not descending")
		}
	}
}

func TestJoinStatsCollectedForEveryJoin(t *testing.T) {
	for _, q := range QueryNumbers {
		stats := plan.NewStatsCollector()
		opts := plan.DefaultOptions()
		opts.Stats = stats
		r := &Runner{Opts: opts}
		Queries[q](testDB, r)
		if r.Err != nil {
			t.Fatalf("Q%d: %v", q, r.Err)
		}
		joins := stats.Joins()
		if len(joins) != JoinCounts[q] {
			ids := make([]int, len(joins))
			for i, s := range joins {
				ids[i] = s.ID
			}
			t.Errorf("Q%d: collected %d join stats %v, JoinCounts says %d",
				q, len(joins), ids, JoinCounts[q])
		}
		for _, s := range joins {
			if s.BuildTupleBytes < 16 || s.ProbeTupleBytes < 16 {
				t.Errorf("Q%d join %d: implausible tuple widths %d/%d",
					q, s.ID, s.BuildTupleBytes, s.ProbeTupleBytes)
			}
		}
	}
}

func TestFig13ReportsFiveJoins(t *testing.T) {
	tab, err := Fig13(testDB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Q21 tree has %d joins, want 5", len(tab.Rows))
	}
	kinds := []string{"inner", "inner", "semi", "leftsemi", "leftanti"}
	for i, row := range tab.Rows {
		if row[1] != kinds[i] {
			t.Fatalf("join %d kind %s, want %s (row %v)", i+1, row[1], kinds[i], row)
		}
	}
}

func TestRunnerAccumulatesStages(t *testing.T) {
	opts := plan.DefaultOptions()
	r := &Runner{Opts: opts}
	Queries[11](testDB, r) // two-stage query
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Rows <= int64(testDB.PartSupp.NumRows()) {
		t.Fatalf("multi-stage source rows %d too low", r.Rows)
	}
}

func ExampleDate() {
	fmt.Println(Date(1970, 1, 1), Date(1992, 1, 1)-Date(1991, 12, 31))
	// Output: 0 1
}
