package tpch

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

// canonRows flattens a result into sorted, type-tagged row strings so two
// runs can be compared independently of output order. Floats are printed
// at a precision loose enough to absorb summation-order noise but tight
// enough to catch any real divergence.
func canonRows(res *plan.ExecResult) []string {
	n := res.Result.NumRows()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for c := range res.Result.Vecs {
			v := &res.Result.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Fprintf(&sb, "%.4f|", v.F64[i])
			case storage.String:
				sb.Write(v.Str[i])
				sb.WriteByte('|')
			default:
				fmt.Fprintf(&sb, "%d|", v.I64[i])
			}
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

// The SQL-level differential of the adaptation ladder: full TPC-H queries
// run with deliberately corrupted cardinality estimates under a tight
// budget, where mid-build migration, reservation revision, and spill all
// fire — and every answer must match the static (NoAdapt) plan's.
func TestQueriesAdaptiveMatchesStatic(t *testing.T) {
	queries := []int{3, 12, 18, 21}
	scales := []float64{1.0 / 16, 16}

	mkOpts := func() plan.Options {
		opts := plan.DefaultOptions()
		opts.Algo = plan.BHJ
		opts.Workers = 2
		// Tight enough that the larger build sides at sf 0.01 outgrow it
		// mid-build and migrate.
		opts.MemBudget = 64 << 10
		opts.SpillDir = t.TempDir()
		return opts
	}

	adapted := false
	for _, q := range queries {
		// The static reference ignores estimates entirely, so one run
		// serves every corruption factor.
		sopts := mkOpts()
		sopts.NoAdapt = true
		sr := &Runner{Opts: sopts}
		want := canonRows(Queries[q](testDB, sr))
		if sr.Err != nil {
			t.Fatalf("Q%d static: %v", q, sr.Err)
		}

		for _, scale := range scales {
			opts := mkOpts()
			opts.EstimateScale = scale
			r := &Runner{Opts: opts}
			res := Queries[q](testDB, r)
			if r.Err != nil {
				t.Fatalf("Q%d adaptive (estimates x%g): %v", q, scale, r.Err)
			}
			if res.Adapt.Any() {
				adapted = true
			}
			got := canonRows(res)
			if len(got) != len(want) {
				t.Fatalf("Q%d (estimates x%g): %d rows, want %d", q, scale, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Q%d (estimates x%g) row %d diverged:\n got %s\nwant %s",
						q, scale, i, got[i], want[i])
				}
			}
		}
	}
	if !adapted {
		t.Fatal("no query adapted under corrupted estimates and a 64 KiB budget; the differential exercised nothing")
	}
}
