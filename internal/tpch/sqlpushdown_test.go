package tpch

import (
	"fmt"
	"strings"
	"testing"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// sqlCatalog exposes the shared test database to the SQL layer.
func sqlCatalog() sql.Catalog {
	cat := sql.Catalog{}
	for _, t := range testDB.Tables() {
		cat[t.Name] = t
	}
	return cat
}

// renderResult flattens a result for exact comparison across plan variants.
func renderResult(res *plan.ExecResult) []string {
	out := make([]string, res.Result.NumRows())
	for i := range out {
		var sb strings.Builder
		for c := range res.Result.Vecs {
			v := &res.Result.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Fprintf(&sb, "%v|", v.F64[i])
			case storage.String:
				fmt.Fprintf(&sb, "%s|", v.Str[i])
			default:
				fmt.Fprintf(&sb, "%d|", v.I64[i])
			}
		}
		out[i] = sb.String()
	}
	return out
}

// TestSQLPushdownDifferential runs Q1/Q6/Q12-shaped SQL statements through
// the full stack twice — scan pushdown and dictionary codes enabled, then
// disabled — and requires exactly equal results. Dates are day numbers and
// money is int64 cents, so aggregates are exact and any divergence is a
// pushdown bug, not rounding.
func TestSQLPushdownDifferential(t *testing.T) {
	cat := sqlCatalog()
	// tpch.Generate dictionary-encodes low-cardinality lineitem columns;
	// the dictionary predicates below must exercise the coded path.
	if _, ok := testDB.Lineitem.ColByName("l_shipmode").(*storage.DictColumn); !ok {
		t.Fatal("l_shipmode should be dictionary-encoded after Generate")
	}
	queries := []struct {
		name string
		q    string
	}{
		{"q1-style", fmt.Sprintf(
			`SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty,
			        sum(l_extendedprice) AS price, count(*) AS n
			 FROM lineitem WHERE l_shipdate <= %d
			 GROUP BY l_returnflag, l_linestatus
			 ORDER BY l_returnflag, l_linestatus`, Date(1998, 9, 2))},
		{"q6-style", fmt.Sprintf(
			`SELECT sum(l_extendedprice) AS rev, count(*) AS n
			 FROM lineitem
			 WHERE l_shipdate BETWEEN %d AND %d
			   AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
			Date(1994, 1, 1), Date(1994, 12, 31))},
		{"q12-style", fmt.Sprintf(
			`SELECT l_shipmode, count(*) AS n
			 FROM lineitem
			 WHERE l_shipmode IN ('MAIL', 'SHIP')
			   AND l_receiptdate >= %d AND l_receiptdate <= %d
			 GROUP BY l_shipmode ORDER BY l_shipmode`,
			Date(1994, 1, 1), Date(1994, 12, 31))},
		{"dict-eq", `SELECT count(*) AS n FROM lineitem WHERE l_returnflag = 'R'`},
		{"dict-miss", `SELECT count(*) AS n FROM lineitem WHERE l_shipmode = 'TELEPORT'`},
	}
	for _, qc := range queries {
		t.Run(qc.name, func(t *testing.T) {
			opts := plan.DefaultOptions()
			pushed, err := sql.Run(cat, qc.q, opts)
			if err != nil {
				t.Fatalf("pushed: %v", err)
			}
			opts.NoScanPushdown = true
			opts.NoDictCodes = true
			plain, err := sql.Run(cat, qc.q, opts)
			if err != nil {
				t.Fatalf("unpushed: %v", err)
			}
			pr, ur := renderResult(pushed), renderResult(plain)
			if len(pr) != len(ur) {
				t.Fatalf("pushed %d rows, unpushed %d rows", len(pr), len(ur))
			}
			for i := range pr {
				if pr[i] != ur[i] {
					t.Fatalf("row %d differs\npushed:   %s\nunpushed: %s", i, pr[i], ur[i])
				}
			}
			if qc.name != "q1-style" && pushed.Scan.RowsPrefiltered == 0 &&
				pushed.Scan.BatchesPruned == 0 && pushed.Scan.MorselsPruned == 0 {
				t.Fatal("pushed plan shows no scan-layer activity")
			}
		})
	}
}
