package tpch

import "math/rand"

// Word pools for generated text. The part-name pool is the specification's
// color list (p_name is five distinct colors), which keeps Q9's
// "p_name LIKE '%green%'" filter meaningful.
var partNameWords = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
	"light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
	"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
	"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
	"red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
	"tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

// commentWords is a small corpus for comment columns; lengths are drawn
// per the specification's ranges so payload-size statistics (Figure 2)
// stay representative.
var commentWords = []string{
	"the", "furiously", "carefully", "express", "regular", "final", "ironic",
	"pending", "bold", "special", "quickly", "slyly", "blithely", "even",
	"requests", "deposits", "packages", "accounts", "instructions", "foxes",
	"ideas", "theodolites", "pinto", "beans", "platelets", "dependencies",
	"excuses", "asymptotes", "courts", "dolphins", "multipliers", "sauternes",
	"warthogs", "frets", "dinos", "attainments", "somas", "sheaves",
}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyllable1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyllable2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// nations lists the specification's 25 nations with their region keys.
var nations = []struct {
	Name      string
	RegionKey int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// comment appends a random comment of length in [lo, hi] bytes to buf and
// returns it; word-by-word so the text looks like dbgen's grammar output.
func comment(buf []byte, rng *rand.Rand, lo, hi int) []byte {
	want := lo + rng.Intn(hi-lo+1)
	for len(buf) < want {
		if len(buf) > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, commentWords[rng.Intn(len(commentWords))]...)
	}
	if len(buf) > want {
		buf = buf[:want]
	}
	return buf
}

// phone renders the spec's phone format CC-nnn-nnn-nnnn for a nation key.
func phone(buf []byte, rng *rand.Rand, nationKey int64) []byte {
	cc := 10 + nationKey
	buf = appendInt(buf, cc, 2)
	buf = append(buf, '-')
	buf = appendInt(buf, int64(100+rng.Intn(900)), 3)
	buf = append(buf, '-')
	buf = appendInt(buf, int64(100+rng.Intn(900)), 3)
	buf = append(buf, '-')
	buf = appendInt(buf, int64(1000+rng.Intn(9000)), 4)
	return buf
}

// appendInt renders v zero-padded to width digits.
func appendInt(buf []byte, v int64, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	if v == 0 {
		i--
		tmp[i] = '0'
	}
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	for len(tmp)-i < width {
		i--
		tmp[i] = '0'
	}
	return append(buf, tmp[i:]...)
}
