package tpch

import (
	"fmt"
	"strings"
	"testing"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

const testSF = 0.01

var testDB = Generate(testSF, 1)

func TestGenerateCardinalities(t *testing.T) {
	if got := testDB.Region.NumRows(); got != 5 {
		t.Fatalf("region: %d rows", got)
	}
	if got := testDB.Nation.NumRows(); got != 25 {
		t.Fatalf("nation: %d rows", got)
	}
	if got := testDB.Supplier.NumRows(); got != 100 {
		t.Fatalf("supplier: %d rows, want 100", got)
	}
	if got := testDB.Customer.NumRows(); got != 1500 {
		t.Fatalf("customer: %d rows, want 1500", got)
	}
	if got := testDB.Part.NumRows(); got != 2000 {
		t.Fatalf("part: %d rows, want 2000", got)
	}
	if got := testDB.PartSupp.NumRows(); got != 8000 {
		t.Fatalf("partsupp: %d rows, want 8000", got)
	}
	if got := testDB.Orders.NumRows(); got != 15000 {
		t.Fatalf("orders: %d rows, want 15000", got)
	}
	lines := testDB.Lineitem.NumRows()
	if lines < 15000 || lines > 15000*7 {
		t.Fatalf("lineitem: %d rows, want ~60000", lines)
	}
	for _, tbl := range testDB.Tables() {
		if err := tbl.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	other := Generate(testSF, 1)
	if other.Lineitem.NumRows() != testDB.Lineitem.NumRows() {
		t.Fatal("lineitem cardinality differs between runs")
	}
	a := testDB.Lineitem.Int64Col("l_extendedprice")
	b := other.Lineitem.Int64Col("l_extendedprice")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := testDB.Part.StringCol("p_name")
	d := other.Part.StringCol("p_name")
	for i := 0; i < c.Len(); i++ {
		if string(c.Value(i)) != string(d.Value(i)) {
			t.Fatalf("p_name %d differs", i)
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	// Every (l_partkey, l_suppkey) must exist in partsupp.
	ps := map[[2]int64]bool{}
	pk := testDB.PartSupp.Int64Col("ps_partkey")
	sk := testDB.PartSupp.Int64Col("ps_suppkey")
	for i := range pk {
		ps[[2]int64{pk[i], sk[i]}] = true
	}
	lp := testDB.Lineitem.Int64Col("l_partkey")
	ls := testDB.Lineitem.Int64Col("l_suppkey")
	for i := range lp {
		if !ps[[2]int64{lp[i], ls[i]}] {
			t.Fatalf("lineitem %d references missing partsupp (%d,%d)", i, lp[i], ls[i])
		}
	}
	// Customers divisible by 3 never place orders (Q22's anti join
	// depends on a populated complement).
	for i, c := range testDB.Orders.Int64Col("o_custkey") {
		if c%3 == 0 {
			t.Fatalf("order %d placed by custkey %d (divisible by 3)", i, c)
		}
		if c < 1 || c > int64(testDB.Customer.NumRows()) {
			t.Fatalf("order %d has out-of-range custkey %d", i, c)
		}
	}
	// Ship/commit/receipt ordering invariants.
	sd := testDB.Lineitem.Int64Col("l_shipdate")
	rd := testDB.Lineitem.Int64Col("l_receiptdate")
	od := map[int64]int64{}
	for i, k := range testDB.Orders.Int64Col("o_orderkey") {
		od[k] = testDB.Orders.Int64Col("o_orderdate")[i]
	}
	for i, k := range testDB.Lineitem.Int64Col("l_orderkey") {
		if sd[i] <= od[k] {
			t.Fatalf("lineitem %d shipped before its order date", i)
		}
		if rd[i] <= sd[i] {
			t.Fatalf("lineitem %d received before shipping", i)
		}
	}
}

// fingerprint renders a result as sorted text for cross-algorithm diffs.
func fingerprint(r *exec.Result) string {
	r.SortRows()
	var sb strings.Builder
	for i := 0; i < r.NumRows(); i++ {
		for c := range r.Vecs {
			v := &r.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Fprintf(&sb, "%.6f|", v.F64[i])
			case storage.String:
				fmt.Fprintf(&sb, "%s|", v.Str[i])
			default:
				fmt.Fprintf(&sb, "%d|", v.I64[i])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runQuery(q int, algo plan.JoinAlgo, workers int, lm bool) (string, int) {
	opts := plan.DefaultOptions()
	opts.Algo = algo
	opts.Workers = workers
	// Small cache budget so radix joins really partition at SF 0.01.
	opts.Core.CacheBudget = 16 << 10
	r := &Runner{Opts: opts, LM: lm}
	res := Queries[q](testDB, r)
	if r.Err != nil {
		panic(r.Err)
	}
	return fingerprint(res.Result), res.Result.NumRows()
}

func TestQueriesAgreeAcrossAlgorithms(t *testing.T) {
	for _, q := range QueryNumbers {
		q := q
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			ref, rows := runQuery(q, plan.BHJ, 1, false)
			for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
				for _, workers := range []int{1, 4} {
					got, grows := runQuery(q, algo, workers, false)
					if got != ref {
						t.Fatalf("Q%d %v w%d: result differs from BHJ/w1 (%d vs %d rows)",
							q, algo, workers, grows, rows)
					}
				}
			}
		})
	}
}

func TestQueriesAgreeWithLateMaterialization(t *testing.T) {
	// Queries with an LM variant must return identical results.
	for _, q := range []int{3, 5, 8, 14, 20} {
		q := q
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			ref, _ := runQuery(q, plan.BHJ, 2, false)
			for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
				got, _ := runQuery(q, algo, 2, true)
				if got != ref {
					t.Fatalf("Q%d %v LM: result differs from early materialization", q, algo)
				}
			}
		})
	}
}

func TestQueriesAgreeAcrossPerJoinSwaps(t *testing.T) {
	// The Figure 12 methodology: fix all joins to one algorithm, swap a
	// single join, and verify results never change.
	for _, q := range []int{5, 21, 22} {
		ref, _ := runQuery(q, plan.BHJ, 2, false)
		for j := 1; j <= JoinCounts[q]; j++ {
			opts := plan.DefaultOptions()
			opts.Algo = plan.BHJ
			opts.Workers = 2
			opts.Core.CacheBudget = 16 << 10
			opts.PerJoin = map[int]plan.JoinAlgo{j: plan.BRJ}
			r := &Runner{Opts: opts}
			res := Queries[q](testDB, r)
			if got := fingerprint(res.Result); got != ref {
				t.Fatalf("Q%d with join %d swapped to BRJ changed the result", q, j)
			}
		}
	}
}

func TestSelectedQueriesProduceRows(t *testing.T) {
	// Sanity: these queries must be non-empty even at SF 0.01 (Q19's
	// conjunctive selectivity ~1e-5 legitimately yields zero rows here).
	for _, q := range []int{3, 4, 5, 10, 11, 12, 14, 16, 22} {
		_, rows := runQuery(q, plan.BHJ, 2, false)
		if rows == 0 {
			t.Errorf("Q%d returned no rows at SF %v", q, testSF)
		}
	}
}

func TestThroughputMetricCountsSources(t *testing.T) {
	opts := plan.DefaultOptions()
	opts.Workers = 2
	r := &Runner{Opts: opts}
	Queries[14](testDB, r)
	// Q14 scans lineitem and part at least once each.
	min := int64(testDB.Lineitem.NumRows())
	if r.Rows < min {
		t.Fatalf("source rows %d below lineitem cardinality %d", r.Rows, min)
	}
	if r.Dur <= 0 {
		t.Fatal("no duration recorded")
	}
	if r.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}
