package tpch

import (
	"path/filepath"
	"testing"

	"partitionjoin/internal/plan"
)

// TestStoreRoundTripDifferential is the acceptance differential for the
// column store: every tier-1 TPC-H query must produce byte-identical rows
// whether it scans the RAM-resident tables or the mmap-backed store — with
// scan pushdown on and off — while a pool far smaller than the data forces
// continuous eviction and re-verification underneath.
func TestStoreRoundTripDifferential(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := WriteStore(dir, testDB, 1); err != nil {
		t.Fatal(err)
	}
	// ~1 MiB pool vs a multi-MiB sf-0.01 database: scans must run
	// out-of-core. (Pinned working sets may overshoot; the pool evicts
	// everything else.)
	diskDB, st, err := OpenStore(dir, testSF, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, tbl := range diskDB.Tables() {
		if tbl.Pager == nil {
			t.Fatalf("table %s has no pager", tbl.Name)
		}
	}

	poolReports := 0
	for _, pushdown := range []bool{true, false} {
		for _, q := range QueryNumbers {
			opts := plan.DefaultOptions()
			opts.Workers = 2
			opts.NoScanPushdown = !pushdown

			ramR := &Runner{Opts: opts}
			want := canonRows(Queries[q](testDB, ramR))
			if ramR.Err != nil {
				t.Fatalf("Q%d (pushdown=%v) RAM: %v", q, pushdown, ramR.Err)
			}

			diskR := &Runner{Opts: opts}
			res := Queries[q](diskDB, diskR)
			if diskR.Err != nil {
				t.Fatalf("Q%d (pushdown=%v) store: %v", q, pushdown, diskR.Err)
			}
			got := canonRows(res)
			if len(got) != len(want) {
				t.Fatalf("Q%d (pushdown=%v): store returned %d rows, RAM %d", q, pushdown, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Q%d (pushdown=%v) row %d diverged:\nstore %s\n  ram %s", q, pushdown, i, got[i], want[i])
				}
			}
			// Multi-stage queries return the last stage's result, which may
			// scan only RAM-resident intermediates — but any query whose
			// final stage touched a stored table must report pool activity.
			if res.Pool != nil && res.Pool.Pins == 0 {
				t.Fatalf("Q%d: disk-backed scan pinned nothing", q)
			}
			if res.Pool != nil {
				poolReports++
			}
		}
	}
	if poolReports == 0 {
		t.Fatal("no query reported buffer-pool stats")
	}
	stats := st.Pool().Stats()
	if stats.Evictions == 0 {
		t.Fatalf("pool never evicted across the full query suite (stats %+v); it was not under pressure", stats)
	}
	if stats.MaxResidentBytes < 1<<19 {
		t.Fatalf("suspiciously low high-water mark %d; pool accounting broken?", stats.MaxResidentBytes)
	}
}

// TestStoreLateMaterialization runs the late-materialization variants
// against the store: the deferred-column gather goes through Pager.PinRows
// (random access into evicted pages) and must still match the RAM answer.
func TestStoreLateMaterialization(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := WriteStore(dir, testDB, 1); err != nil {
		t.Fatal(err)
	}
	diskDB, st, err := OpenStore(dir, testSF, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, q := range []int{3, 5, 8} {
		opts := plan.DefaultOptions()
		opts.Workers = 2
		ramR := &Runner{Opts: opts, LM: true}
		want := canonRows(Queries[q](testDB, ramR))
		if ramR.Err != nil {
			t.Fatalf("Q%d LM RAM: %v", q, ramR.Err)
		}
		diskR := &Runner{Opts: opts, LM: true}
		got := canonRows(Queries[q](diskDB, diskR))
		if diskR.Err != nil {
			t.Fatalf("Q%d LM store: %v", q, diskR.Err)
		}
		if len(got) != len(want) {
			t.Fatalf("Q%d LM: store returned %d rows, RAM %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Q%d LM row %d diverged:\nstore %s\n  ram %s", q, i, got[i], want[i])
			}
		}
	}
}

// TestOpenOrGenerate pins the generate-once-then-open flow joind uses.
func TestOpenOrGenerate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")

	db, st, fromDisk, err := OpenOrGenerate(dir, testSF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk || st != nil {
		t.Fatal("cold boot claimed to open a store from an empty dir")
	}
	if err := WriteStore(dir, db, 1); err != nil {
		t.Fatal(err)
	}

	db2, st2, fromDisk, err := OpenOrGenerate(dir, testSF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk || st2 == nil {
		t.Fatal("warm boot regenerated instead of opening the store")
	}
	defer st2.Close()
	if db2.Lineitem.NumRows() != db.Lineitem.NumRows() {
		t.Fatalf("reopened lineitem has %d rows, want %d", db2.Lineitem.NumRows(), db.Lineitem.NumRows())
	}

	// A store for a different (sf, seed) must not be served.
	_, _, fromDisk, err = OpenOrGenerate(dir, testSF, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk {
		t.Fatal("store written for seed 1 was served for seed 2")
	}
}
