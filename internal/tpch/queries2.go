package tpch

import (
	"fmt"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/plan"
)

// Q14 computes the promotional revenue share for one month; lineitem's 1%
// filtered slice is the build side joined against the full part relation
// (Section 5.3.1's Q14 discussion).
func Q14(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1995, 9, 1)
	hi := Date(1995, 10, 1)
	var lineitem plan.Node
	buildPay := []string{"l_extendedprice", "l_discount"}
	if r.LM {
		// LM only trims 8 B off the build side here; the paper notes
		// the post-join random access outweighs that.
		lineitem = plan.Filter(
			plan.ScanRowID(db.Lineitem, "l_rid", "l_partkey", "l_shipdate"),
			expr.And(expr.GeI("l_shipdate", lo), expr.LtI("l_shipdate", hi)))
		buildPay = []string{"l_rid"}
	} else {
		lineitem = plan.Filter(
			plan.Scan(db.Lineitem, "l_partkey", "l_shipdate", "l_extendedprice", "l_discount"),
			expr.And(expr.GeI("l_shipdate", lo), expr.LtI("l_shipdate", hi)))
	}
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     lineitem,
		Probe:     plan.Scan(db.Part, "p_partkey", "p_type"),
		BuildKeys: []string{"l_partkey"}, ProbeKeys: []string{"p_partkey"},
		BuildPay: buildPay,
		ProbePay: []string{"p_type"},
	}
	var joined plan.Node = j1
	if r.LM {
		joined = plan.LateLoad(j1, db.Lineitem, "l_rid", "l_extendedprice", "l_discount")
	}
	grouped := plan.GroupBy(
		plan.Map(joined, rev(), expr.CaseI("promo", expr.PrefixStr("p_type", "PROMO"), "rev")),
		nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "promo", As: "num"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "den"})
	return r.Run(plan.Map(grouped, expr.RatioF("promo_revenue", "num", "den", 100)))
}

// Q15 finds the suppliers with the maximum quarterly revenue.
func Q15(db *DB, r *Runner) *plan.ExecResult {
	lo := Date(1996, 1, 1)
	hi := Date(1996, 4, 1)
	revenue := plan.GroupBy(
		plan.Map(plan.Filter(
			plan.Scan(db.Lineitem, "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"),
			expr.And(expr.GeI("l_shipdate", lo), expr.LtI("l_shipdate", hi))),
			rev()),
		[]string{"l_suppkey"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "total_revenue"})
	revRes := r.Run(revenue)
	revTable := plan.TableFromResult("revenue0", revRes.Cols, revRes.Result)

	maxRes := r.Run(plan.GroupBy(plan.Scan(revTable, "total_revenue"), nil,
		plan.AggExpr{Kind: exec.AggMaxI, Col: "total_revenue", As: "m"}))
	maxRev, err := maxRes.ScalarI64()
	if err != nil {
		r.fail(fmt.Errorf("q15 stage 2: %w", err))
		return emptyResult()
	}

	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(revTable, "l_suppkey", "total_revenue"),
			expr.EqI("total_revenue", maxRev)),
		Probe:     plan.Scan(db.Supplier, "s_suppkey", "s_name", "s_address", "s_phone"),
		BuildKeys: []string{"l_suppkey"}, ProbeKeys: []string{"s_suppkey"},
		BuildPay: []string{"total_revenue"},
		ProbePay: []string{"s_suppkey", "s_name", "s_address", "s_phone"},
	}
	return r.Run(plan.OrderBy(j1, 0, plan.OrderKey{Col: "s_suppkey"}))
}

// Q16 counts suppliers per part attribute triple, excluding complained-
// about suppliers via a probe-side anti join.
func Q16(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Anti,
		Build: plan.Filter(plan.Scan(db.Supplier, "s_suppkey", "s_comment"),
			expr.Like("s_comment", "%Customer%Complaints%")),
		Probe:     plan.Scan(db.PartSupp, "ps_partkey", "ps_suppkey"),
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"ps_suppkey"},
		ProbePay: []string{"ps_partkey", "ps_suppkey"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_brand", "p_type", "p_size"),
			expr.And(
				expr.NeStr("p_brand", "Brand#45"),
				expr.NotLike("p_type", "MEDIUM POLISHED%"),
				expr.InI("p_size", 49, 14, 23, 45, 19, 3, 36, 9))),
		Probe:     j1,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"ps_partkey"},
		BuildPay: []string{"p_brand", "p_type", "p_size"},
		ProbePay: []string{"ps_suppkey"},
	}
	root := plan.OrderBy(
		plan.GroupBy(j2, []string{"p_brand", "p_type", "p_size"},
			plan.AggExpr{Kind: exec.AggCountDistinctI, Col: "ps_suppkey", As: "supplier_cnt"}),
		0,
		plan.OrderKey{Col: "supplier_cnt", Desc: true},
		plan.OrderKey{Col: "p_brand"},
		plan.OrderKey{Col: "p_type"},
		plan.OrderKey{Col: "p_size"})
	return r.Run(root)
}

// Q17 averages the yearly revenue loss of small-quantity orders. The
// correlated average is unnested into a per-part aggregate; the quantity
// comparison 5*qty*cnt < sum(qty) stays in exact integers.
func Q17(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Semi,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_brand", "p_container"),
			expr.And(expr.EqStr("p_brand", "Brand#23"), expr.EqStr("p_container", "MED BOX"))),
		Probe:     plan.Scan(db.Lineitem, "l_partkey", "l_quantity", "l_extendedprice"),
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		ProbePay: []string{"l_partkey", "l_quantity", "l_extendedprice"},
	}
	liRes := r.Run(j1)
	li := plan.TableFromResult("q17li", liRes.Cols, liRes.Result)

	agg := plan.GroupBy(plan.Scan(li, "l_partkey", "l_quantity"),
		[]string{"l_partkey"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "l_quantity", As: "sumqty"},
		plan.AggExpr{Kind: exec.AggCount, As: "cnt"})
	aggRes := r.Run(agg)
	aggTable := plan.TableFromResult("q17agg", aggRes.Cols, aggRes.Result)

	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     plan.Scan(aggTable, "l_partkey", "sumqty", "cnt"),
		Probe:     plan.Rename(plan.Scan(li, "l_partkey", "l_quantity", "l_extendedprice"), "l_partkey", "li_partkey"),
		BuildKeys: []string{"l_partkey"}, ProbeKeys: []string{"li_partkey"},
		BuildPay: []string{"sumqty", "cnt"},
		ProbePay: []string{"l_quantity", "l_extendedprice"},
	}
	small := plan.Filter(
		plan.Map(plan.Map(j2, expr.MulI("qc", "l_quantity", "cnt")),
			expr.MulConstI("qc5", "qc", 5)),
		expr.LtCols("qc5", "sumqty"))
	grouped := plan.GroupBy(small, nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "l_extendedprice", As: "total"})
	// avg_yearly in dollars = sum(cents) / 7 / 100.
	return r.Run(plan.Map(grouped, expr.ScaleF("avg_yearly", "total", 1.0/700)))
}

// Q18 lists customers with very large orders.
func Q18(db *DB, r *Runner) *plan.ExecResult {
	bigRes := r.Run(plan.Filter(
		plan.GroupBy(plan.Scan(db.Lineitem, "l_orderkey", "l_quantity"),
			[]string{"l_orderkey"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "l_quantity", As: "sumqty"}),
		expr.GtI("sumqty", 300)))
	big := plan.TableFromResult("q18big", bigRes.Cols, bigRes.Result)

	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     plan.Scan(big, "l_orderkey", "sumqty"),
		Probe:     plan.Scan(db.Orders, "o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"),
		BuildKeys: []string{"l_orderkey"}, ProbeKeys: []string{"o_orderkey"},
		BuildPay: []string{"sumqty"},
		ProbePay: []string{"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     j1,
		Probe:     plan.Scan(db.Customer, "c_custkey", "c_name"),
		BuildKeys: []string{"o_custkey"}, ProbeKeys: []string{"c_custkey"},
		BuildPay: []string{"o_orderkey", "o_totalprice", "o_orderdate", "sumqty"},
		ProbePay: []string{"c_name", "c_custkey"},
	}
	root := plan.OrderBy(
		plan.GroupBy(j2,
			[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "sumqty", As: "sum_qty"}),
		100,
		plan.OrderKey{Col: "o_totalprice", Desc: true},
		plan.OrderKey{Col: "o_orderdate"})
	return r.Run(root)
}

// Q19 sums discounted revenue under three disjunctive brand/container/
// quantity branches; partial filters are pushed below the join and the
// full disjunction is evaluated after it.
func Q19(db *DB, r *Runner) *plan.ExecResult {
	part := plan.Filter(plan.Scan(db.Part, "p_partkey", "p_brand", "p_size", "p_container"),
		expr.And(
			expr.InStr("p_brand", "Brand#12", "Brand#23", "Brand#34"),
			expr.BetweenI("p_size", 1, 15)))
	line := plan.Filter(
		plan.Scan(db.Lineitem, "l_partkey", "l_quantity", "l_extendedprice", "l_discount",
			"l_shipinstruct", "l_shipmode"),
		expr.And(
			expr.InStr("l_shipmode", "AIR", "AIR REG"),
			expr.EqStr("l_shipinstruct", "DELIVER IN PERSON"),
			expr.BetweenI("l_quantity", 1, 30)))
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     part,
		Probe:     line,
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"l_partkey"},
		BuildPay: []string{"p_brand", "p_size", "p_container"},
		ProbePay: []string{"l_quantity", "l_extendedprice", "l_discount"},
	}
	branch := func(brand string, conts []string, qlo, qhi, smax int64) expr.Pred {
		return expr.And(
			expr.EqStr("p_brand", brand),
			expr.InStr("p_container", conts...),
			expr.BetweenI("l_quantity", qlo, qhi),
			expr.BetweenI("p_size", 1, smax))
	}
	filtered := plan.Filter(j1, expr.Or(
		branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
		branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15)))
	return r.Run(plan.GroupBy(plan.Map(filtered, rev()), nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "rev", As: "revenue"}))
}

// Q20 finds Canadian suppliers with excess stock of forest parts.
func Q20(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Semi,
		Build: plan.Filter(plan.Scan(db.Part, "p_partkey", "p_name"),
			expr.PrefixStr("p_name", "forest")),
		Probe:     plan.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty"),
		BuildKeys: []string{"p_partkey"}, ProbeKeys: []string{"ps_partkey"},
		ProbePay: []string{"ps_partkey", "ps_suppkey", "ps_availqty"},
	}
	shipped := plan.GroupBy(
		plan.Filter(plan.Scan(db.Lineitem, "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
			expr.And(expr.GeI("l_shipdate", Date(1994, 1, 1)), expr.LtI("l_shipdate", Date(1995, 1, 1)))),
		[]string{"l_partkey", "l_suppkey"},
		plan.AggExpr{Kind: exec.AggSumI, Col: "l_quantity", As: "sumqty"})
	shippedRes := r.Run(shipped)
	shippedTable := plan.TableFromResult("q20shipped", shippedRes.Cols, shippedRes.Result)

	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build:     plan.Scan(shippedTable, "l_partkey", "l_suppkey", "sumqty"),
		Probe:     j1,
		BuildKeys: []string{"l_partkey", "l_suppkey"},
		ProbeKeys: []string{"ps_partkey", "ps_suppkey"},
		BuildPay:  []string{"sumqty"},
		ProbePay:  []string{"ps_suppkey", "ps_availqty"},
	}
	excess := plan.Filter(plan.Map(j2, expr.MulConstI("avail2", "ps_availqty", 2)),
		expr.GtCols("avail2", "sumqty"))
	suppRes := r.Run(plan.GroupBy(excess, []string{"ps_suppkey"}))
	suppTable := plan.TableFromResult("q20supp", suppRes.Cols, suppRes.Result)

	var supplier plan.Node
	suppPay := []string{"s_name", "s_address", "s_nationkey"}
	if r.LM {
		supplier = plan.ScanRowID(db.Supplier, "s_rid", "s_suppkey", "s_nationkey")
		suppPay = []string{"s_rid", "s_nationkey"}
	} else {
		supplier = plan.Scan(db.Supplier, "s_suppkey", "s_name", "s_address", "s_nationkey")
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Semi,
		Build:     plan.Scan(suppTable, "ps_suppkey"),
		Probe:     supplier,
		BuildKeys: []string{"ps_suppkey"}, ProbeKeys: []string{"s_suppkey"},
		ProbePay: suppPay,
	}
	j4Pay := []string{"s_name", "s_address"}
	if r.LM {
		j4Pay = []string{"s_rid"}
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Nation, "n_nationkey", "n_name"),
			expr.EqStr("n_name", "CANADA")),
		Probe:     j3,
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"s_nationkey"},
		ProbePay: j4Pay,
	}
	var final plan.Node = j4
	if r.LM {
		// The paper's Q20 LM case: the two result text columns are
		// only touched after all joins, cutting the carried width.
		final = plan.LateLoad(j4, db.Supplier, "s_rid", "s_name", "s_address")
	}
	return r.Run(plan.OrderBy(final, 0, plan.OrderKey{Col: "s_name"}))
}

// Q21 counts suppliers whose deliveries were the sole blockers of
// multi-supplier orders — the left-deep five-join tree of Figure 13 with a
// build-side semi (join 4) and a build-side anti join (join 5).
func Q21(db *DB, r *Runner) *plan.ExecResult {
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build: plan.Filter(plan.Scan(db.Nation, "n_nationkey", "n_name"),
			expr.EqStr("n_name", "SAUDI ARABIA")),
		Probe:     plan.Scan(db.Supplier, "s_suppkey", "s_nationkey", "s_name"),
		BuildKeys: []string{"n_nationkey"}, ProbeKeys: []string{"s_nationkey"},
		ProbePay: []string{"s_suppkey", "s_name"},
	}
	j2 := &plan.JoinNode{
		ID: 2, Kind: core.Inner,
		Build: j1,
		Probe: plan.Rename(plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"),
			expr.GtCols("l_receiptdate", "l_commitdate")),
			"l_orderkey", "l1_orderkey", "l_suppkey", "l1_suppkey"),
		BuildKeys: []string{"s_suppkey"}, ProbeKeys: []string{"l1_suppkey"},
		BuildPay: []string{"s_name"},
		ProbePay: []string{"l1_orderkey", "l1_suppkey"},
	}
	j3 := &plan.JoinNode{
		ID: 3, Kind: core.Semi,
		Build: plan.Filter(plan.Scan(db.Orders, "o_orderkey", "o_orderstatus"),
			expr.EqStr("o_orderstatus", "F")),
		Probe:     j2,
		BuildKeys: []string{"o_orderkey"}, ProbeKeys: []string{"l1_orderkey"},
		ProbePay: []string{"s_name", "l1_orderkey", "l1_suppkey"},
	}
	j4 := &plan.JoinNode{
		ID: 4, Kind: core.LeftSemi,
		Build:     j3,
		Probe:     plan.Scan(db.Lineitem, "l_orderkey", "l_suppkey"),
		BuildKeys: []string{"l1_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay:   []string{"s_name", "l1_orderkey", "l1_suppkey"},
		ResidualNe: [][2]string{{"l1_suppkey", "l_suppkey"}},
	}
	j5 := &plan.JoinNode{
		ID: 5, Kind: core.LeftAnti,
		Build: j4,
		Probe: plan.Filter(
			plan.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"),
			expr.GtCols("l_receiptdate", "l_commitdate")),
		BuildKeys: []string{"l1_orderkey"}, ProbeKeys: []string{"l_orderkey"},
		BuildPay:   []string{"s_name"},
		ResidualNe: [][2]string{{"l1_suppkey", "l_suppkey"}},
	}
	root := plan.OrderBy(
		plan.GroupBy(j5, []string{"s_name"},
			plan.AggExpr{Kind: exec.AggCount, As: "numwait"}),
		100,
		plan.OrderKey{Col: "numwait", Desc: true},
		plan.OrderKey{Col: "s_name"})
	return r.Run(root)
}

// Q22 counts well-funded customers without orders per country code — the
// build-side anti join (customer build, unfiltered orders probe) where the
// BRJ achieves its single TPC-H win (Section 5.3.2).
func Q22(db *DB, r *Runner) *plan.ExecResult {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	withCode := func(n plan.Node) plan.Node {
		return plan.Filter(plan.Map(n, expr.SubStrI("cntrycode", "c_phone", 1, 2)),
			expr.InStr("cntrycode", codes...))
	}
	avgRes := r.Run(plan.GroupBy(
		plan.Filter(withCode(plan.Scan(db.Customer, "c_phone", "c_acctbal")),
			expr.GtI("c_acctbal", 0)),
		nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "c_acctbal", As: "s"},
		plan.AggExpr{Kind: exec.AggCount, As: "n"}))
	if r.Err != nil {
		return emptyResult()
	}
	sum := avgRes.Result.Vecs[0].I64[0]
	cnt := avgRes.Result.Vecs[1].I64[0]

	// c_acctbal > avg  <=>  c_acctbal * n > sum, exactly.
	rich := plan.Filter(
		plan.Map(withCode(plan.Scan(db.Customer, "c_custkey", "c_phone", "c_acctbal")),
			expr.MulConstI("baln", "c_acctbal", cnt)),
		expr.GtI("baln", sum))
	j1 := &plan.JoinNode{
		ID: 1, Kind: core.LeftAnti,
		Build:     rich,
		Probe:     plan.Scan(db.Orders, "o_custkey"),
		BuildKeys: []string{"c_custkey"}, ProbeKeys: []string{"o_custkey"},
		BuildPay: []string{"cntrycode", "c_acctbal"},
	}
	root := plan.OrderBy(
		plan.GroupBy(j1, []string{"cntrycode"},
			plan.AggExpr{Kind: exec.AggCount, As: "numcust"},
			plan.AggExpr{Kind: exec.AggSumI, Col: "c_acctbal", As: "totacctbal"}),
		0, plan.OrderKey{Col: "cntrycode"})
	return r.Run(root)
}
