// Package tpch implements the TPC-H substrate of the evaluation: a
// deterministic, scale-factor-parameterized data generator equivalent to
// dbgen (Section 5.1.2) and hand-built physical plans for the 19 TPC-H
// queries that contain joins, mirroring the plan shapes the paper reports
// (e.g. the Q21 join tree of Figure 13). Monetary values are stored as
// int64 cents and percentages as int64 hundredths so aggregates are exact
// and identical across join algorithms and worker counts.
package tpch

// Date returns days since the Unix epoch for a civil date, the storage
// representation of all TPC-H date columns (Howard Hinnant's
// days-from-civil).
func Date(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400
	var doy int64
	if m > 2 {
		doy = (153*int64(m-3) + 2) / 5
	} else {
		doy = (153*int64(m+9) + 2) / 5
	}
	doy += int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// TPC-H date constants.
var (
	// StartDate / EndDate bound o_orderdate per the specification.
	StartDate = Date(1992, 1, 1)
	EndDate   = Date(1998, 12, 31)
	// CurrentDate is the specification's "current date" 1995-06-17 that
	// determines return flags and line status.
	CurrentDate = Date(1995, 6, 17)
)
