package tpch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"partitionjoin/internal/colstore"
	"partitionjoin/internal/storage"
)

// dbManifestName is the store-level manifest recording what data a column
// store directory holds, so a warm boot can verify it serves the database
// the caller asked for instead of silently mixing scale factors.
const dbManifestName = "db.json"

// dbManifest is the content of dbManifestName.
type dbManifest struct {
	SF     float64  `json:"sf"`
	Seed   int64    `json:"seed"`
	Tables []string `json:"tables"`
}

// WriteStore persists db into a column store at dir: every relation as one
// table directory, then the database manifest as the commit record.
func WriteStore(dir string, db *DB, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	w := &colstore.Writer{Dir: dir}
	man := dbManifest{SF: db.SF, Seed: seed}
	for _, t := range db.Tables() {
		if err := w.WriteTable(t); err != nil {
			return err
		}
		man.Tables = append(man.Tables, t.Name)
	}
	body, err := json.Marshal(man)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, dbManifestName+".tmp")
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, dbManifestName))
}

// OpenStore opens a previously written column store and assembles a DB whose
// tables are disk-backed through the store's buffer pool. The caller owns
// the returned store's lifetime (Close unmaps everything).
func OpenStore(dir string, sf float64, seed int64, poolBytes int64) (*DB, *colstore.Store, error) {
	body, err := os.ReadFile(filepath.Join(dir, dbManifestName))
	if err != nil {
		return nil, nil, err
	}
	var man dbManifest
	if err := json.Unmarshal(body, &man); err != nil {
		return nil, nil, fmt.Errorf("tpch: %s: %w", filepath.Join(dir, dbManifestName), err)
	}
	if man.SF != sf || man.Seed != seed {
		return nil, nil, fmt.Errorf("tpch: store %s holds sf=%g seed=%d, want sf=%g seed=%d",
			dir, man.SF, man.Seed, sf, seed)
	}
	st, err := colstore.Open(dir, colstore.Options{PoolBytes: poolBytes})
	if err != nil {
		return nil, nil, err
	}
	db := &DB{SF: man.SF}
	for name, slot := range map[string]**storage.Table{
		"region": &db.Region, "nation": &db.Nation, "supplier": &db.Supplier,
		"customer": &db.Customer, "part": &db.Part, "partsupp": &db.PartSupp,
		"orders": &db.Orders, "lineitem": &db.Lineitem,
	} {
		t := st.Table(name)
		if t == nil {
			st.Close()
			return nil, nil, fmt.Errorf("tpch: store %s is missing table %s", dir, name)
		}
		*slot = t
	}
	return db, st, nil
}

// OpenOrGenerate opens the column store at dir when it already holds the
// requested (sf, seed) database, and otherwise generates the data in RAM.
// fromDisk reports which happened; when false the caller serves the RAM
// tables and may persist them with WriteStore for the next boot (the
// generate-once-then-open flow).
func OpenOrGenerate(dir string, sf float64, seed int64, poolBytes int64) (db *DB, st *colstore.Store, fromDisk bool, err error) {
	if _, serr := os.Stat(filepath.Join(dir, dbManifestName)); serr == nil {
		db, st, err = OpenStore(dir, sf, seed, poolBytes)
		if err == nil {
			return db, st, true, nil
		}
		// A store that exists but does not match (or is damaged) is not
		// fatal: regenerate and overwrite. Surface why via the error slot
		// only if the caller cares to log it.
		db, st = nil, nil
	}
	return Generate(sf, seed), nil, false, nil
}
