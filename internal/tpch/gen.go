package tpch

import (
	"math/rand"
	"sync"

	"partitionjoin/internal/storage"
)

// DB holds the eight generated TPC-H relations.
type DB struct {
	SF       float64
	Region   *storage.Table
	Nation   *storage.Table
	Supplier *storage.Table
	Customer *storage.Table
	Part     *storage.Table
	PartSupp *storage.Table
	Orders   *storage.Table
	Lineitem *storage.Table
}

// scaled returns the row count of a base cardinality at scale factor sf.
func scaled(n int, sf float64) int {
	v := int(float64(n) * sf)
	if v < 1 {
		v = 1
	}
	return v
}

func col(name string, t storage.Type, cap int) storage.ColumnDef {
	return storage.ColumnDef{Name: name, Type: t, StrCap: cap}
}

// retailPriceCents implements the specification's price formula in cents.
func retailPriceCents(pk int64) int64 {
	return 90000 + (pk/10)%20001 + 100*(pk%1000)
}

// partSupplier returns the i-th (0..3) supplier of part pk among s
// suppliers, the specification's formula; lineitem reuses it so every
// (l_partkey, l_suppkey) pair exists in partsupp.
func partSupplier(pk int64, i int64, s int64) int64 {
	return (pk+i*(s/4+(pk-1)/s))%s + 1
}

// Generate builds a deterministic TPC-H database at the given scale factor.
// Tables are generated concurrently, each from its own seeded generator, so
// the data is identical for a (sf, seed) pair regardless of parallelism.
func Generate(sf float64, seed int64) *DB {
	db := &DB{SF: sf}
	nSupp := scaled(10000, sf)
	nCust := scaled(150000, sf)
	nPart := scaled(200000, sf)
	nOrders := scaled(1500000, sf)

	var wg sync.WaitGroup
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	run(func() { db.Region = genRegion() })
	run(func() { db.Nation = genNation() })
	run(func() { db.Supplier = genSupplier(nSupp, seed+1) })
	run(func() { db.Customer = genCustomer(nCust, seed+2) })
	run(func() { db.Part = genPart(nPart, seed+3) })
	run(func() { db.PartSupp = genPartSupp(nPart, nSupp, seed+4) })
	run(func() { db.Orders, db.Lineitem = genOrdersLineitem(nOrders, nCust, nPart, nSupp, seed+5) })
	wg.Wait()
	// Dictionary-encode the low-cardinality string columns (flags, status
	// codes, modes, types, segments...) so scans compare codes instead of
	// bytes and joins pack 4-byte codes instead of padded strings. The
	// threshold admits every enumerated TPC-H domain (the largest, p_type,
	// has 150 values) while rejecting free-text and key-derived columns,
	// whose distinct scan aborts after dictMaxCard+1 values.
	const dictMaxCard = 512
	for _, t := range db.Tables() {
		t.DictEncode(dictMaxCard)
	}
	return db
}

// Tables returns all relations for iteration (stats, validation).
func (db *DB) Tables() []*storage.Table {
	return []*storage.Table{
		db.Region, db.Nation, db.Supplier, db.Customer,
		db.Part, db.PartSupp, db.Orders, db.Lineitem,
	}
}

func genRegion() *storage.Table {
	t := storage.NewTable("region", storage.NewSchema(
		col("r_regionkey", storage.Int64, 0),
		col("r_name", storage.String, 12),
		col("r_comment", storage.String, 80),
	), len(regions))
	rng := rand.New(rand.NewSource(77))
	key := t.Cols[0].(*storage.Int64Column)
	name := t.Cols[1].(*storage.StringColumn)
	cmt := t.Cols[2].(*storage.StringColumn)
	var buf []byte
	for i, r := range regions {
		key.Values = append(key.Values, int64(i))
		name.AppendString(r)
		buf = comment(buf[:0], rng, 30, 80)
		cmt.Append(buf)
	}
	return t
}

func genNation() *storage.Table {
	t := storage.NewTable("nation", storage.NewSchema(
		col("n_nationkey", storage.Int64, 0),
		col("n_name", storage.String, 25),
		col("n_regionkey", storage.Int64, 0),
		col("n_comment", storage.String, 80),
	), len(nations))
	rng := rand.New(rand.NewSource(78))
	key := t.Cols[0].(*storage.Int64Column)
	name := t.Cols[1].(*storage.StringColumn)
	region := t.Cols[2].(*storage.Int64Column)
	cmt := t.Cols[3].(*storage.StringColumn)
	var buf []byte
	for i, n := range nations {
		key.Values = append(key.Values, int64(i))
		name.AppendString(n.Name)
		region.Values = append(region.Values, n.RegionKey)
		buf = comment(buf[:0], rng, 30, 80)
		cmt.Append(buf)
	}
	return t
}

func genSupplier(n int, seed int64) *storage.Table {
	t := storage.NewTable("supplier", storage.NewSchema(
		col("s_suppkey", storage.Int64, 0),
		col("s_name", storage.String, 25),
		col("s_address", storage.String, 40),
		col("s_nationkey", storage.Int64, 0),
		col("s_phone", storage.String, 15),
		col("s_acctbal", storage.Int64, 0), // cents
		col("s_comment", storage.String, 101),
	), n)
	rng := rand.New(rand.NewSource(seed))
	key := t.Int64Col("s_suppkey")[:0]
	name := t.StringCol("s_name")
	addr := t.StringCol("s_address")
	nat := t.Int64Col("s_nationkey")[:0]
	ph := t.StringCol("s_phone")
	bal := t.Int64Col("s_acctbal")[:0]
	cmt := t.StringCol("s_comment")
	var buf []byte
	for i := 1; i <= n; i++ {
		key = append(key, int64(i))
		buf = append(buf[:0], "Supplier#"...)
		buf = appendInt(buf, int64(i), 9)
		name.Append(buf)
		buf = comment(buf[:0], rng, 10, 40)
		addr.Append(buf)
		nk := int64(rng.Intn(len(nations)))
		nat = append(nat, nk)
		buf = phone(buf[:0], rng, nk)
		ph.Append(buf)
		bal = append(bal, int64(rng.Intn(1099998))-99999) // -999.99 .. 9999.99
		buf = comment(buf[:0], rng, 25, 100)
		// The specification plants "Customer Complaints" into ~5
		// supplier comments per 10000 for Q16's NOT LIKE filter.
		if i%1987 == 0 {
			buf = append(buf[:0], "sly Customer frets Complaints sleep"...)
		}
		cmt.Append(buf)
	}
	t.ColByName("s_suppkey").(*storage.Int64Column).Values = key
	t.ColByName("s_nationkey").(*storage.Int64Column).Values = nat
	t.ColByName("s_acctbal").(*storage.Int64Column).Values = bal
	return t
}

func genCustomer(n int, seed int64) *storage.Table {
	t := storage.NewTable("customer", storage.NewSchema(
		col("c_custkey", storage.Int64, 0),
		col("c_name", storage.String, 25),
		col("c_address", storage.String, 40),
		col("c_nationkey", storage.Int64, 0),
		col("c_phone", storage.String, 15),
		col("c_acctbal", storage.Int64, 0),
		col("c_mktsegment", storage.String, 10),
		col("c_comment", storage.String, 117),
	), n)
	rng := rand.New(rand.NewSource(seed))
	key := t.Int64Col("c_custkey")[:0]
	name := t.StringCol("c_name")
	addr := t.StringCol("c_address")
	nat := t.Int64Col("c_nationkey")[:0]
	ph := t.StringCol("c_phone")
	bal := t.Int64Col("c_acctbal")[:0]
	seg := t.StringCol("c_mktsegment")
	cmt := t.StringCol("c_comment")
	var buf []byte
	for i := 1; i <= n; i++ {
		key = append(key, int64(i))
		buf = append(buf[:0], "Customer#"...)
		buf = appendInt(buf, int64(i), 9)
		name.Append(buf)
		buf = comment(buf[:0], rng, 10, 40)
		addr.Append(buf)
		nk := int64(rng.Intn(len(nations)))
		nat = append(nat, nk)
		buf = phone(buf[:0], rng, nk)
		ph.Append(buf)
		bal = append(bal, int64(rng.Intn(1099998))-99999)
		seg.AppendString(segments[rng.Intn(len(segments))])
		buf = comment(buf[:0], rng, 29, 116)
		cmt.Append(buf)
	}
	t.ColByName("c_custkey").(*storage.Int64Column).Values = key
	t.ColByName("c_nationkey").(*storage.Int64Column).Values = nat
	t.ColByName("c_acctbal").(*storage.Int64Column).Values = bal
	return t
}

func genPart(n int, seed int64) *storage.Table {
	t := storage.NewTable("part", storage.NewSchema(
		col("p_partkey", storage.Int64, 0),
		col("p_name", storage.String, 55),
		col("p_mfgr", storage.String, 25),
		col("p_brand", storage.String, 10),
		col("p_type", storage.String, 25),
		col("p_size", storage.Int64, 0),
		col("p_container", storage.String, 10),
		col("p_retailprice", storage.Int64, 0),
		col("p_comment", storage.String, 23),
	), n)
	rng := rand.New(rand.NewSource(seed))
	key := t.Int64Col("p_partkey")[:0]
	name := t.StringCol("p_name")
	mfgr := t.StringCol("p_mfgr")
	brand := t.StringCol("p_brand")
	typ := t.StringCol("p_type")
	size := t.Int64Col("p_size")[:0]
	cont := t.StringCol("p_container")
	price := t.Int64Col("p_retailprice")[:0]
	cmt := t.StringCol("p_comment")
	var buf []byte
	for i := 1; i <= n; i++ {
		key = append(key, int64(i))
		// p_name: five distinct colors.
		buf = buf[:0]
		perm := rng.Perm(len(partNameWords))[:5]
		for j, w := range perm {
			if j > 0 {
				buf = append(buf, ' ')
			}
			buf = append(buf, partNameWords[w]...)
		}
		name.Append(buf)
		m := 1 + rng.Intn(5)
		buf = append(buf[:0], "Manufacturer#"...)
		buf = appendInt(buf, int64(m), 1)
		mfgr.Append(buf)
		buf = append(buf[:0], "Brand#"...)
		buf = appendInt(buf, int64(m), 1)
		buf = appendInt(buf, int64(1+rng.Intn(5)), 1)
		brand.Append(buf)
		buf = append(buf[:0], typeSyllable1[rng.Intn(6)]...)
		buf = append(buf, ' ')
		buf = append(buf, typeSyllable2[rng.Intn(5)]...)
		buf = append(buf, ' ')
		buf = append(buf, typeSyllable3[rng.Intn(5)]...)
		typ.Append(buf)
		size = append(size, int64(1+rng.Intn(50)))
		buf = append(buf[:0], containerSyllable1[rng.Intn(5)]...)
		buf = append(buf, ' ')
		buf = append(buf, containerSyllable2[rng.Intn(8)]...)
		cont.Append(buf)
		price = append(price, retailPriceCents(int64(i)))
		buf = comment(buf[:0], rng, 5, 22)
		cmt.Append(buf)
	}
	t.ColByName("p_partkey").(*storage.Int64Column).Values = key
	t.ColByName("p_size").(*storage.Int64Column).Values = size
	t.ColByName("p_retailprice").(*storage.Int64Column).Values = price
	return t
}

func genPartSupp(nPart, nSupp int, seed int64) *storage.Table {
	t := storage.NewTable("partsupp", storage.NewSchema(
		col("ps_partkey", storage.Int64, 0),
		col("ps_suppkey", storage.Int64, 0),
		col("ps_availqty", storage.Int64, 0),
		col("ps_supplycost", storage.Int64, 0), // cents
		col("ps_comment", storage.String, 124),
	), nPart*4)
	rng := rand.New(rand.NewSource(seed))
	pk := t.Int64Col("ps_partkey")[:0]
	sk := t.Int64Col("ps_suppkey")[:0]
	qty := t.Int64Col("ps_availqty")[:0]
	cost := t.Int64Col("ps_supplycost")[:0]
	cmt := t.StringCol("ps_comment")
	var buf []byte
	for p := int64(1); p <= int64(nPart); p++ {
		for i := int64(0); i < 4; i++ {
			pk = append(pk, p)
			sk = append(sk, partSupplier(p, i, int64(nSupp)))
			qty = append(qty, int64(1+rng.Intn(9999)))
			cost = append(cost, int64(100+rng.Intn(99901)))
			buf = comment(buf[:0], rng, 20, 123)
			cmt.Append(buf)
		}
	}
	t.ColByName("ps_partkey").(*storage.Int64Column).Values = pk
	t.ColByName("ps_suppkey").(*storage.Int64Column).Values = sk
	t.ColByName("ps_availqty").(*storage.Int64Column).Values = qty
	t.ColByName("ps_supplycost").(*storage.Int64Column).Values = cost
	return t
}

func genOrdersLineitem(nOrders, nCust, nPart, nSupp int, seed int64) (*storage.Table, *storage.Table) {
	ot := storage.NewTable("orders", storage.NewSchema(
		col("o_orderkey", storage.Int64, 0),
		col("o_custkey", storage.Int64, 0),
		col("o_orderstatus", storage.String, 1),
		col("o_totalprice", storage.Int64, 0),
		col("o_orderdate", storage.Date, 0),
		col("o_orderpriority", storage.String, 15),
		col("o_clerk", storage.String, 15),
		col("o_shippriority", storage.Int64, 0),
		col("o_comment", storage.String, 79),
	), nOrders)
	nLines := nOrders * 4
	lt := storage.NewTable("lineitem", storage.NewSchema(
		col("l_orderkey", storage.Int64, 0),
		col("l_partkey", storage.Int64, 0),
		col("l_suppkey", storage.Int64, 0),
		col("l_linenumber", storage.Int64, 0),
		col("l_quantity", storage.Int64, 0),
		col("l_extendedprice", storage.Int64, 0), // cents
		col("l_discount", storage.Int64, 0),      // hundredths
		col("l_tax", storage.Int64, 0),           // hundredths
		col("l_returnflag", storage.String, 1),
		col("l_linestatus", storage.String, 1),
		col("l_shipdate", storage.Date, 0),
		col("l_commitdate", storage.Date, 0),
		col("l_receiptdate", storage.Date, 0),
		col("l_shipinstruct", storage.String, 25),
		col("l_shipmode", storage.String, 10),
		col("l_comment", storage.String, 44),
	), nLines)

	rng := rand.New(rand.NewSource(seed))
	oKey := ot.Int64Col("o_orderkey")[:0]
	oCust := ot.Int64Col("o_custkey")[:0]
	oStatus := ot.StringCol("o_orderstatus")
	oTotal := ot.Int64Col("o_totalprice")[:0]
	oDate := ot.Int64Col("o_orderdate")[:0]
	oPrio := ot.StringCol("o_orderpriority")
	oClerk := ot.StringCol("o_clerk")
	oShip := ot.Int64Col("o_shippriority")[:0]
	oCmt := ot.StringCol("o_comment")

	lOrder := lt.Int64Col("l_orderkey")[:0]
	lPart := lt.Int64Col("l_partkey")[:0]
	lSupp := lt.Int64Col("l_suppkey")[:0]
	lNum := lt.Int64Col("l_linenumber")[:0]
	lQty := lt.Int64Col("l_quantity")[:0]
	lPrice := lt.Int64Col("l_extendedprice")[:0]
	lDisc := lt.Int64Col("l_discount")[:0]
	lTax := lt.Int64Col("l_tax")[:0]
	lRet := lt.StringCol("l_returnflag")
	lStat := lt.StringCol("l_linestatus")
	lShipD := lt.Int64Col("l_shipdate")[:0]
	lCommD := lt.Int64Col("l_commitdate")[:0]
	lRecD := lt.Int64Col("l_receiptdate")[:0]
	lInstr := lt.StringCol("l_shipinstruct")
	lMode := lt.StringCol("l_shipmode")
	lCmt := lt.StringCol("l_comment")

	maxOrderDate := EndDate - 151
	nClerks := nOrders/1500 + 1
	var buf []byte
	for o := 1; o <= nOrders; o++ {
		oKey = append(oKey, int64(o))
		// Only customers with custkey % 3 != 0 place orders.
		c := int64(1 + rng.Intn(nCust))
		for c%3 == 0 {
			c = int64(1 + rng.Intn(nCust))
		}
		oCust = append(oCust, c)
		od := StartDate + int64(rng.Intn(int(maxOrderDate-StartDate+1)))
		oDate = append(oDate, od)
		oPrio.AppendString(priorities[rng.Intn(len(priorities))])
		buf = append(buf[:0], "Clerk#"...)
		buf = appendInt(buf, int64(1+rng.Intn(nClerks)), 9)
		oClerk.Append(buf)
		oShip = append(oShip, 0)
		buf = comment(buf[:0], rng, 19, 78)
		oCmt.Append(buf)

		lines := 1 + rng.Intn(7)
		var total int64
		allF, allO := true, true
		for ln := 1; ln <= lines; ln++ {
			pk := int64(1 + rng.Intn(nPart))
			lOrder = append(lOrder, int64(o))
			lPart = append(lPart, pk)
			lSupp = append(lSupp, partSupplier(pk, int64(rng.Intn(4)), int64(nSupp)))
			lNum = append(lNum, int64(ln))
			qty := int64(1 + rng.Intn(50))
			lQty = append(lQty, qty)
			// The spec's magnitude: extendedprice = qty * partprice.
			price := qty * retailPriceCents(pk)
			lPrice = append(lPrice, price)
			disc := int64(rng.Intn(11))
			tax := int64(rng.Intn(9))
			lDisc = append(lDisc, disc)
			lTax = append(lTax, tax)
			ship := od + 1 + int64(rng.Intn(121))
			commit := od + 30 + int64(rng.Intn(61))
			receipt := ship + 1 + int64(rng.Intn(30))
			lShipD = append(lShipD, ship)
			lCommD = append(lCommD, commit)
			lRecD = append(lRecD, receipt)
			if receipt <= CurrentDate {
				if rng.Intn(2) == 0 {
					lRet.AppendString("R")
				} else {
					lRet.AppendString("A")
				}
			} else {
				lRet.AppendString("N")
			}
			if ship > CurrentDate {
				lStat.AppendString("O")
				allF = false
			} else {
				lStat.AppendString("F")
				allO = false
			}
			lInstr.AppendString(shipInstructs[rng.Intn(len(shipInstructs))])
			lMode.AppendString(shipModes[rng.Intn(len(shipModes))])
			buf = comment(buf[:0], rng, 10, 43)
			lCmt.Append(buf)
			total += price * (100 - disc) * (100 + tax) / 10000
		}
		oTotal = append(oTotal, total)
		switch {
		case allF:
			oStatus.AppendString("F")
		case allO:
			oStatus.AppendString("O")
		default:
			oStatus.AppendString("P")
		}
	}
	ot.ColByName("o_orderkey").(*storage.Int64Column).Values = oKey
	ot.ColByName("o_custkey").(*storage.Int64Column).Values = oCust
	ot.ColByName("o_totalprice").(*storage.Int64Column).Values = oTotal
	ot.ColByName("o_orderdate").(*storage.Int64Column).Values = oDate
	ot.ColByName("o_shippriority").(*storage.Int64Column).Values = oShip
	lt.ColByName("l_orderkey").(*storage.Int64Column).Values = lOrder
	lt.ColByName("l_partkey").(*storage.Int64Column).Values = lPart
	lt.ColByName("l_suppkey").(*storage.Int64Column).Values = lSupp
	lt.ColByName("l_linenumber").(*storage.Int64Column).Values = lNum
	lt.ColByName("l_quantity").(*storage.Int64Column).Values = lQty
	lt.ColByName("l_extendedprice").(*storage.Int64Column).Values = lPrice
	lt.ColByName("l_discount").(*storage.Int64Column).Values = lDisc
	lt.ColByName("l_tax").(*storage.Int64Column).Values = lTax
	lt.ColByName("l_shipdate").(*storage.Int64Column).Values = lShipD
	lt.ColByName("l_commitdate").(*storage.Int64Column).Values = lCommD
	lt.ColByName("l_receiptdate").(*storage.Int64Column).Values = lRecD
	return ot, lt
}
