package tpch

import (
	"fmt"
	"sort"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/plan"
)

// RunOpts configures a TPC-H experiment run.
type RunOpts struct {
	Workers int
	Opts    plan.Options
}

func baseOptions(workers int, algo plan.JoinAlgo) plan.Options {
	o := plan.DefaultOptions()
	o.Workers = workers
	o.Algo = algo
	return o
}

// RunQuery executes one query and returns its runner (throughput metric),
// result, and the first stage error, if any.
func RunQuery(db *DB, q int, opts plan.Options, lm bool) (*Runner, *plan.ExecResult, error) {
	r := &Runner{Opts: opts, LM: lm}
	res := Queries[q](db, r)
	if r.Err != nil {
		return r, res, fmt.Errorf("tpch q%d: %w", q, r.Err)
	}
	return r, res, nil
}

// medianThroughput runs a query `runs` times and returns the median
// throughput (tuples at pipeline sources per second) and median duration
// in seconds.
func medianThroughput(db *DB, q int, opts plan.Options, lm bool, runs int) (tput, secs float64, err error) {
	var ts, ds []float64
	for i := 0; i < runs; i++ {
		r, _, err := RunQuery(db, q, opts, lm)
		if err != nil {
			return 0, 0, err
		}
		ts = append(ts, r.Throughput())
		ds = append(ds, r.Dur.Seconds())
	}
	sort.Float64s(ts)
	sort.Float64s(ds)
	return ts[len(ts)/2], ds[len(ds)/2], nil
}

// Fig11 measures every query under BHJ, BRJ and RJ, with and without late
// materialization (paper Figure 11, one scale factor per call).
func Fig11(db *DB, workers, runs int) (*bench.Table, error) {
	t := &bench.Table{
		Title:  fmt.Sprintf("Figure 11: TPC-H throughput at SF %g [tuples/s at sources]", db.SF),
		Header: []string{"query", "BHJ", "BRJ", "RJ", "BHJ (LM)", "BRJ (LM)", "RJ (LM)"},
	}
	for _, q := range QueryNumbers {
		row := []string{fmt.Sprintf("Q%d", q)}
		for _, lm := range []bool{false, true} {
			for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.BRJ, plan.RJ} {
				tput, _, err := medianThroughput(db, q, baseOptions(workers, algo), lm, runs)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.1fM", tput/1e6))
			}
		}
		t.Add(row...)
	}
	return t, nil
}

// JoinPoint is one join of Figure 1's scatter: its build/probe volumes and
// the relative BRJ-vs-BHJ performance when only this join is swapped.
type JoinPoint struct {
	Query      int
	JoinID     int
	BuildBytes int64
	ProbeBytes int64
	// RelPerf is (t_BHJ / t_BRJ - 1): positive means the BRJ is faster.
	RelPerf   float64
	MatchRate float64
	ProbeWid  int
}

// Fig1 produces the per-join scatter of Figure 1: for every join of every
// query, the end-to-end query time with all joins BHJ versus the same plan
// with exactly that join swapped to BRJ, plus the join's build/probe
// volumes from the stats collector.
func Fig1(db *DB, workers, runs int) ([]JoinPoint, error) {
	var points []JoinPoint
	for _, q := range QueryNumbers {
		// One stats run to size every join.
		stats := plan.NewStatsCollector()
		opts := baseOptions(workers, plan.BHJ)
		opts.Stats = stats
		if _, _, err := RunQuery(db, q, opts, false); err != nil {
			return nil, err
		}
		statByID := map[int]*plan.JoinStat{}
		for _, s := range stats.Joins() {
			statByID[s.ID] = s
		}
		_, base, err := medianThroughput(db, q, baseOptions(workers, plan.BHJ), false, runs)
		if err != nil {
			return nil, err
		}
		for j := 1; j <= JoinCounts[q]; j++ {
			s := statByID[j]
			if s == nil {
				continue
			}
			opts := baseOptions(workers, plan.BHJ)
			opts.PerJoin = map[int]plan.JoinAlgo{j: plan.BRJ}
			_, swapped, err := medianThroughput(db, q, opts, false, runs)
			if err != nil {
				return nil, err
			}
			rel := 0.0
			if swapped > 0 {
				rel = base/swapped - 1
			}
			points = append(points, JoinPoint{
				Query: q, JoinID: j,
				BuildBytes: s.BuildBytes(), ProbeBytes: s.ProbeBytes(),
				RelPerf: rel, MatchRate: s.MatchRate(), ProbeWid: s.ProbeTupleBytes,
			})
		}
	}
	return points, nil
}

// Fig1Table renders Figure 1's points as text.
func Fig1Table(points []JoinPoint, sf float64) *bench.Table {
	t := &bench.Table{
		Title:  fmt.Sprintf("Figure 1: BRJ vs BHJ per join, TPC-H SF %g (positive = BRJ faster)", sf),
		Header: []string{"join", "build side", "probe side", "BRJ vs BHJ", "partners"},
	}
	for _, p := range points {
		t.Add(fmt.Sprintf("Q%d-J%d", p.Query, p.JoinID),
			fmtBytes(p.BuildBytes), fmtBytes(p.ProbeBytes),
			fmt.Sprintf("%+.0f%%", p.RelPerf*100),
			fmt.Sprintf("%.0f%%", p.MatchRate*100))
	}
	return t
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// Fig2 computes the workload histograms of Figure 2: probe tuple widths
// and join-partner percentages over all TPC-H joins, next to the
// prior-work microbenchmark values (8-16 B tuples, 100% partners).
func Fig2(db *DB, workers int) (*bench.Table, error) {
	stats := plan.NewStatsCollector()
	opts := baseOptions(workers, plan.BHJ)
	opts.Stats = stats
	for _, q := range QueryNumbers {
		if _, _, err := RunQuery(db, q, opts, false); err != nil {
			return nil, err
		}
	}
	joins := stats.Joins()
	widthBuckets := map[int]int{}
	partnerBuckets := map[int]int{}
	for _, s := range joins {
		wb := s.ProbeTupleBytes / 16 * 16
		if wb > 96 {
			wb = 96
		}
		widthBuckets[wb]++
		pb := int(s.MatchRate()*100) / 20 * 20
		partnerBuckets[pb]++
	}
	t := &bench.Table{
		Title: fmt.Sprintf("Figure 2: tuple size and join partners, TPC-H SF %g vs prior work (%d joins)",
			db.SF, len(joins)),
		Header: []string{"bucket", "TPC-H payload size", "TPC-H join partners", "prior work"},
	}
	for b := 0; b <= 96; b += 16 {
		pw := "-"
		if b == 0 || b == 16 {
			pw = "payload 8-16 B"
		}
		t.Add(fmt.Sprintf("%d-%d B / %d-%d%%", b, b+15, b, b+19),
			fmt.Sprintf("%d joins", widthBuckets[b]),
			fmt.Sprintf("%d joins", partnerBuckets[min100(b)]),
			pw)
	}
	t.Add("100%", "-", fmt.Sprintf("%d joins", partnerBuckets[100]), "partners 100%")
	return t, nil
}

func min100(b int) int {
	if b > 100 {
		return 100
	}
	return b
}

// Fig12 reports the per-join BHJ-vs-BRJ impact for the paper's selected
// queries (Figure 12): fixing all joins to BHJ and swapping one at a time.
func Fig12(db *DB, workers, runs int, queries []int) (*bench.Table, error) {
	t := &bench.Table{
		Title:  fmt.Sprintf("Figure 12: relative per-join impact, BHJ vs BRJ, SF %g (negative = BRJ slower)", db.SF),
		Header: []string{"query", "join", "BHJ vs BRJ"},
	}
	for _, q := range queries {
		_, base, err := medianThroughput(db, q, baseOptions(workers, plan.BHJ), false, runs)
		if err != nil {
			return nil, err
		}
		for j := 1; j <= JoinCounts[q]; j++ {
			opts := baseOptions(workers, plan.BHJ)
			opts.PerJoin = map[int]plan.JoinAlgo{j: plan.BRJ}
			_, swapped, err := medianThroughput(db, q, opts, false, runs)
			if err != nil {
				return nil, err
			}
			rel := base/swapped - 1
			t.Add(fmt.Sprintf("Q%d", q), fmt.Sprintf("%d", j), fmt.Sprintf("%+.0f%%", rel*100))
		}
	}
	return t, nil
}

// Fig13 prints Q21's join tree annotated with measured build and probe
// volumes (paper Figure 13).
func Fig13(db *DB, workers int) (*bench.Table, error) {
	stats := plan.NewStatsCollector()
	opts := baseOptions(workers, plan.BHJ)
	opts.Stats = stats
	if _, _, err := RunQuery(db, 21, opts, false); err != nil {
		return nil, err
	}
	t := &bench.Table{
		Title:  fmt.Sprintf("Figure 13: Q21 join tree with build and probe sizes, SF %g", db.SF),
		Header: []string{"join", "kind", "build rows", "build size", "probe rows", "probe size"},
	}
	for _, s := range stats.Joins() {
		t.Add(fmt.Sprintf("%d", s.ID), s.Kind,
			fmt.Sprintf("%d", s.BuildRows), fmtBytes(s.BuildBytes()),
			fmt.Sprintf("%d", s.ProbeRows), fmtBytes(s.ProbeBytes()))
	}
	return t, nil
}

// Fig18TPCH reports the TPC-H half of Figure 18: per-query speedup of BRJ
// and BHJ over the RJ, and the medians.
func Fig18TPCH(db *DB, workers, runs int) (*bench.Table, error) {
	t := &bench.Table{
		Title:  fmt.Sprintf("Figure 18 (right): speedup over RJ across TPC-H, SF %g", db.SF),
		Header: []string{"query", "BRJ vs RJ", "BHJ vs RJ"},
	}
	var brjs, bhjs []float64
	for _, q := range QueryNumbers {
		_, rj, err := medianThroughput(db, q, baseOptions(workers, plan.RJ), false, runs)
		if err != nil {
			return nil, err
		}
		_, brj, err := medianThroughput(db, q, baseOptions(workers, plan.BRJ), false, runs)
		if err != nil {
			return nil, err
		}
		_, bhj, err := medianThroughput(db, q, baseOptions(workers, plan.BHJ), false, runs)
		if err != nil {
			return nil, err
		}
		sbrj := rj/brj - 1
		sbhj := rj/bhj - 1
		brjs = append(brjs, sbrj)
		bhjs = append(bhjs, sbhj)
		t.Add(fmt.Sprintf("Q%d", q), fmt.Sprintf("%+.0f%%", sbrj*100), fmt.Sprintf("%+.0f%%", sbhj*100))
	}
	sort.Float64s(brjs)
	sort.Float64s(bhjs)
	t.Add("median", fmt.Sprintf("%+.0f%%", brjs[len(brjs)/2]*100),
		fmt.Sprintf("%+.0f%%", bhjs[len(bhjs)/2]*100))
	return t, nil
}

// Table5 contrasts workload properties (paper Table 5) using measured
// TPC-H join statistics.
func Table5(db *DB, workers int) (*bench.Table, error) {
	stats := plan.NewStatsCollector()
	opts := baseOptions(workers, plan.BHJ)
	opts.Stats = stats
	for _, q := range QueryNumbers {
		if _, _, err := RunQuery(db, q, opts, false); err != nil {
			return nil, err
		}
	}
	joins := stats.Joins()
	var widths, rates []float64
	small := 0
	llc := int64(opts.Core.CacheBudget) * 32 // a typical LLC versus our partition budget
	for _, s := range joins {
		widths = append(widths, float64(s.ProbeTupleBytes))
		rates = append(rates, s.MatchRate())
		if s.BuildBytes() < llc {
			small++
		}
	}
	sort.Float64s(widths)
	sort.Float64s(rates)
	t := &bench.Table{
		Title:  fmt.Sprintf("Table 5: workload properties, measured over %d TPC-H joins at SF %g", len(joins), db.SF),
		Header: []string{"factor", "prior work", "TPC-H (measured)"},
	}
	t.Add("payload size", "8-16 B", fmt.Sprintf("median %.0f B", widths[len(widths)/2]))
	t.Add("selectivity", "100%", fmt.Sprintf("median %.0f%% partners", rates[len(rates)/2]*100))
	t.Add("skew (zipf)", "0-2", "none")
	t.Add("build size", ">> LLC", fmt.Sprintf("%d/%d builds below LLC", small, len(joins)))
	t.Add("pipeline depth", "1 join", "1-8 joins")
	return t, nil
}
