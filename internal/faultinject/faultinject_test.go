package faultinject

import (
	"errors"
	"testing"
	"time"
)

// The suite's synthetic sites, declared up front like production packages
// declare theirs.
var _ = Register("site.a", "site.once", "site.fail", "site.stall", "site.scoped")

func TestFaultInjectionPanicAfterN(t *testing.T) {
	FailOnLeak(t)
	Arm(t, "site.a", Fault{Kind: Panic, After: 2, Message: "boom"})
	Hit("site.a")
	Hit("site.a")
	panicked := func() (p any) {
		defer func() { p = recover() }()
		Hit("site.a")
		return nil
	}()
	inj, ok := panicked.(*Injected)
	if !ok {
		t.Fatalf("expected *Injected panic on 3rd visit, got %v", panicked)
	}
	if inj.Site != "site.a" || inj.Message != "boom" {
		t.Fatalf("wrong payload: %+v", inj)
	}
	if got := Triggers("site.a"); got != 1 {
		t.Fatalf("triggers = %d, want 1", got)
	}
}

func TestFaultInjectionOnceDisarms(t *testing.T) {
	FailOnLeak(t)
	Arm(t, "site.once", Fault{Kind: Fail, Once: true})
	if err := ErrAt("site.once"); err == nil {
		t.Fatal("first visit should fail")
	}
	if err := ErrAt("site.once"); err != nil {
		t.Fatalf("Once fault fired twice: %v", err)
	}
	if enabled.Load() {
		t.Fatal("fast-path flag still set after last fault disarmed")
	}
}

func TestFaultInjectionErrAtMatchesErrorsAs(t *testing.T) {
	FailOnLeak(t)
	Arm(t, "site.fail", Fault{Kind: Fail, Message: "no memory"})
	err := ErrAt("site.fail")
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if inj.Site != "site.fail" {
		t.Fatalf("wrong site %q", inj.Site)
	}
	// Panic faults must not leak through the error hook.
	Arm(t, "site.fail", Fault{Kind: Panic})
	if err := ErrAt("site.fail"); err != nil {
		t.Fatalf("panic fault returned error: %v", err)
	}
}

func TestFaultInjectionStallSleeps(t *testing.T) {
	FailOnLeak(t)
	Arm(t, "site.stall", Fault{Kind: Stall, Stall: 20 * time.Millisecond})
	start := time.Now()
	Hit("site.stall")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall returned after %v", d)
	}
}

func TestFaultInjectionDisableAndReset(t *testing.T) {
	defer Reset()
	Enable("site.x", Fault{Kind: Fail})
	Enable("site.y", Fault{Kind: Fail})
	Disable("site.x")
	if err := ErrAt("site.x"); err != nil {
		t.Fatal("disabled site still fires")
	}
	if err := ErrAt("site.y"); err == nil {
		t.Fatal("unrelated site disarmed by Disable")
	}
	Reset()
	if err := ErrAt("site.y"); err != nil {
		t.Fatal("Reset left site armed")
	}
	if enabled.Load() {
		t.Fatal("fast-path flag set after Reset")
	}
}

func TestFaultInjectionUnarmedIsFree(t *testing.T) {
	FailOnLeak(t)
	// No faults armed: hooks must be no-ops (this also guards -count=2
	// determinism — earlier tests disarm on exit).
	Hit("never.armed")
	if err := ErrAt("never.armed"); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestArmAutoDisarms(t *testing.T) {
	FailOnLeak(t)
	t.Run("inner", func(t *testing.T) {
		Arm(t, "site.scoped", Fault{Kind: Fail})
		if err := ErrAt("site.scoped"); err == nil {
			t.Fatal("armed fault did not fire")
		}
	})
	// The subtest's cleanup must have disarmed the site.
	if err := ErrAt("site.scoped"); err != nil {
		t.Fatalf("Arm leaked past its test scope: %v", err)
	}
	if got := Armed(); len(got) != 0 {
		t.Fatalf("armed sites after subtest: %v", got)
	}
}

// fakeTB records Errorf calls and runs cleanups on demand, standing in for
// a *testing.T that is ending.
type fakeTB struct {
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper()                           {}
func (f *fakeTB) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) { f.errors = append(f.errors, format) }
func (f *fakeTB) finish() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestFaultInjectionArmRejectsUnregisteredSite(t *testing.T) {
	FailOnLeak(t)
	tb := &fakeTB{}
	Arm(tb, "site.tpyo", Fault{Kind: Fail})
	if len(tb.errors) == 0 {
		t.Fatal("Arm accepted an unregistered site name")
	}
	if len(Armed()) != 0 {
		t.Fatalf("unregistered site was armed anyway: %v", Armed())
	}
	if err := ErrAt("site.tpyo"); err != nil {
		t.Fatalf("unregistered site fires: %v", err)
	}
	tb.finish()

	// Registration survives Reset: production registrations are made once
	// per process, but Reset runs between tests.
	Reset()
	if !Registered("site.a") {
		t.Fatal("Reset cleared the site registry")
	}
}

func TestFailOnLeakCatchesArmedFault(t *testing.T) {
	defer Reset()
	tb := &fakeTB{}
	FailOnLeak(tb)
	Enable("site.leak", Fault{Kind: Fail}) // deliberately not via Arm
	tb.finish()
	if len(tb.errors) == 0 {
		t.Fatal("FailOnLeak did not flag the armed fault")
	}
	if len(Armed()) != 0 {
		t.Fatal("FailOnLeak did not reset the leaked fault")
	}

	// A clean test must pass the leak check silently.
	tb = &fakeTB{}
	FailOnLeak(tb)
	tb.finish()
	if len(tb.errors) != 0 {
		t.Fatalf("leak check failed a clean test: %v", tb.errors)
	}
}
