package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFaultInjectionPanicAfterN(t *testing.T) {
	defer Reset()
	Enable("site.a", Fault{Kind: Panic, After: 2, Message: "boom"})
	Hit("site.a")
	Hit("site.a")
	panicked := func() (p any) {
		defer func() { p = recover() }()
		Hit("site.a")
		return nil
	}()
	inj, ok := panicked.(*Injected)
	if !ok {
		t.Fatalf("expected *Injected panic on 3rd visit, got %v", panicked)
	}
	if inj.Site != "site.a" || inj.Message != "boom" {
		t.Fatalf("wrong payload: %+v", inj)
	}
	if got := Triggers("site.a"); got != 1 {
		t.Fatalf("triggers = %d, want 1", got)
	}
}

func TestFaultInjectionOnceDisarms(t *testing.T) {
	defer Reset()
	Enable("site.once", Fault{Kind: Fail, Once: true})
	if err := ErrAt("site.once"); err == nil {
		t.Fatal("first visit should fail")
	}
	if err := ErrAt("site.once"); err != nil {
		t.Fatalf("Once fault fired twice: %v", err)
	}
	if enabled.Load() {
		t.Fatal("fast-path flag still set after last fault disarmed")
	}
}

func TestFaultInjectionErrAtMatchesErrorsAs(t *testing.T) {
	defer Reset()
	Enable("site.fail", Fault{Kind: Fail, Message: "no memory"})
	err := ErrAt("site.fail")
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if inj.Site != "site.fail" {
		t.Fatalf("wrong site %q", inj.Site)
	}
	// Panic faults must not leak through the error hook.
	Enable("site.fail", Fault{Kind: Panic})
	if err := ErrAt("site.fail"); err != nil {
		t.Fatalf("panic fault returned error: %v", err)
	}
}

func TestFaultInjectionStallSleeps(t *testing.T) {
	defer Reset()
	Enable("site.stall", Fault{Kind: Stall, Stall: 20 * time.Millisecond})
	start := time.Now()
	Hit("site.stall")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall returned after %v", d)
	}
}

func TestFaultInjectionDisableAndReset(t *testing.T) {
	defer Reset()
	Enable("site.x", Fault{Kind: Fail})
	Enable("site.y", Fault{Kind: Fail})
	Disable("site.x")
	if err := ErrAt("site.x"); err != nil {
		t.Fatal("disabled site still fires")
	}
	if err := ErrAt("site.y"); err == nil {
		t.Fatal("unrelated site disarmed by Disable")
	}
	Reset()
	if err := ErrAt("site.y"); err != nil {
		t.Fatal("Reset left site armed")
	}
	if enabled.Load() {
		t.Fatal("fast-path flag set after Reset")
	}
}

func TestFaultInjectionUnarmedIsFree(t *testing.T) {
	defer Reset()
	// No faults armed: hooks must be no-ops (this also guards -count=2
	// determinism — earlier tests Reset on exit).
	Hit("never.armed")
	if err := ErrAt("never.armed"); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
