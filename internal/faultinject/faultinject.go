// Package faultinject provides build-tag-free fault injection for the
// execution engine. Hot paths call Hit(site) or ErrAt(site); with no faults
// armed both compile down to one atomic load and return immediately, so the
// hooks can stay in production code. Tests arm faults against named call
// sites to provoke panics, allocation failures, and artificial stalls under
// real concurrent load, proving that cancellation, panic containment, and
// memory-governor degradation behave as designed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault does when it triggers.
type Kind int

const (
	// Panic makes Hit panic with an *Injected value.
	Panic Kind = iota
	// Stall makes Hit sleep for the configured duration, simulating a
	// stuck worker (used to exercise deadlines and cancellation).
	Stall
	// Fail makes ErrAt return an *Injected error, simulating an
	// allocation or resource failure at the site.
	Fail
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Fail:
		return "fail"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault describes one armed fault. The zero value triggers on the first
// visit to the site.
type Fault struct {
	Kind Kind
	// After skips the first After visits to the site before triggering,
	// giving deterministic mid-stream faults ("panic on the 3rd morsel").
	After int64
	// Prob, when > 0, triggers each visit independently with the given
	// probability instead of using the After counter.
	Prob float64
	// Stall is the sleep duration for Kind == Stall.
	Stall time.Duration
	// Message is carried inside the Injected value.
	Message string
	// Once disarms the fault after its first trigger.
	Once bool

	// visits and triggers are guarded by the package mutex; keeping them
	// non-atomic keeps Fault copyable for Enable's by-value API.
	visits   int64
	triggers int64
}

// Injected is the value Hit panics with and ErrAt returns. Containment
// layers can detect injected faults with errors.As.
type Injected struct {
	Site    string
	Message string
}

// Error implements error.
func (e *Injected) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("faultinject: injected fault at %s: %s", e.Site, e.Message)
	}
	return fmt.Sprintf("faultinject: injected fault at %s", e.Site)
}

var (
	// enabled is the fast-path guard: false means no faults are armed
	// anywhere and every hook returns after a single atomic load.
	enabled atomic.Bool

	mu    sync.Mutex
	sites map[string]*Fault
	// registry is the set of known site names, populated by the packages
	// that define them (Register). Arm refuses unregistered names so a
	// typo'd site fails the test instead of silently never firing.
	registry map[string]bool
	rng      = rand.New(rand.NewSource(1))
)

// Register declares site names that exist in production code. Packages
// defining fault sites call it from a package-level var so every name a
// test could arm is known before any test runs; Reset never clears the
// registry. The bool return allows `var _ = faultinject.Register(...)`.
func Register(names ...string) bool {
	mu.Lock()
	defer mu.Unlock()
	if registry == nil {
		registry = make(map[string]bool)
	}
	for _, n := range names {
		registry[n] = true
	}
	return true
}

// Registered reports whether the site name was declared via Register.
func Registered(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	return registry[site]
}

// Sites returns every registered site name, sorted — the authoritative list
// chaos tooling prints so scripts can't silently arm a typo.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Enable arms a fault at the named call site, replacing any existing fault
// for that site.
func Enable(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*Fault)
	}
	ff := f // private copy; counters start at zero
	sites[site] = &ff
	enabled.Store(true)
}

// Disable disarms the named site.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, site)
	if len(sites) == 0 {
		enabled.Store(false)
	}
}

// Reset disarms every site. Tests defer this so armed faults never leak
// into later tests (or later -count runs).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	enabled.Store(false)
	rng = rand.New(rand.NewSource(1))
}

// Armed returns the names of currently armed sites, sorted. An empty slice
// means every hook is on its single-atomic-load fast path.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TB is the subset of testing.TB the test helpers need; an interface keeps
// package testing out of production imports.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Arm is Enable for tests: it arms the fault and registers a t.Cleanup that
// disarms the site again, so a failing (or early-returning) test can never
// leak an armed fault into later tests. Arming an unregistered site name
// fails the test without arming anything — a misspelled site would
// otherwise just never fire and the test would silently stop testing what
// it claims to.
func Arm(t TB, site string, f Fault) {
	t.Helper()
	if !Registered(site) {
		t.Errorf("faultinject: Arm of unregistered site %q; production sites declare themselves with faultinject.Register", site)
		return
	}
	Enable(site, f)
	t.Cleanup(func() { Disable(site) })
}

// FailOnLeak registers a cleanup that fails the test if any site is still
// armed when it ends, then resets the registry so the leak cannot spread to
// later tests or -count repetitions.
func FailOnLeak(t TB) {
	t.Helper()
	t.Cleanup(func() {
		if armed := Armed(); len(armed) != 0 {
			t.Errorf("faultinject: test left faults armed at %v", armed)
			Reset()
		}
	})
}

// Triggers reports how many times the named site has fired.
func Triggers(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if f := sites[site]; f != nil {
		return f.triggers
	}
	return 0
}

// lookup returns the armed fault for site if its trigger condition holds on
// this visit.
func lookup(site string) *Fault {
	mu.Lock()
	f := sites[site]
	if f == nil {
		mu.Unlock()
		return nil
	}
	fire := false
	if f.Prob > 0 {
		fire = rng.Float64() < f.Prob
	} else {
		f.visits++
		fire = f.visits > f.After
	}
	if fire {
		f.triggers++
		if f.Once {
			delete(sites, site)
			if len(sites) == 0 {
				enabled.Store(false)
			}
		}
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	return f
}

// Hit is the hook for panic and stall faults. With nothing armed it costs
// one atomic load. If a Panic fault triggers, Hit panics with *Injected; a
// Stall fault sleeps; a Fail fault is ignored here (use ErrAt).
func Hit(site string) {
	if !enabled.Load() {
		return
	}
	f := lookup(site)
	if f == nil {
		return
	}
	switch f.Kind {
	case Panic:
		panic(&Injected{Site: site, Message: f.Message})
	case Stall:
		time.Sleep(f.Stall)
	}
}

// ErrAt is the hook for allocation-failure faults: it returns an *Injected
// error when a Fail fault triggers at the site, else nil.
func ErrAt(site string) error {
	if !enabled.Load() {
		return nil
	}
	f := lookup(site)
	if f == nil || f.Kind != Fail {
		return nil
	}
	return &Injected{Site: site, Message: f.Message}
}
