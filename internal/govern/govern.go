// Package govern implements the per-query memory governor: an atomic
// allocation accountant with a configurable budget. Operators Grant bytes
// before materializing partition pages, hash-table arenas, or group tables
// and Release them when the memory is dropped; planners consult the live
// account (WouldExceed) to degrade gracefully — the radix join sheds
// fan-out bits and, past a floor, the planner falls back to the
// non-partitioned BHJ, which is the paper's "do not partition" answer made
// operational.
//
// The budget steers decisions; it is deliberately not a hard kill switch.
// A query that degrades all the way to BHJ still runs to completion even
// if the budget was set below its working set — aborting would trade a
// correct (slower) answer for an error. Grant only fails when fault
// injection arms the "govern.grant" site, which is how tests simulate real
// allocation failure. A nil *Governor is valid, records nothing, and never
// degrades, following the meter.Meter convention.
package govern

import (
	"fmt"
	"sync"
	"sync/atomic"

	"partitionjoin/internal/faultinject"
)

// GrantSite is the fault-injection site checked by Grant; arming a Fail
// fault there simulates allocation failure.
const GrantSite = "govern.grant"

var _ = faultinject.Register(GrantSite)

// EventsHead and EventsTail bound the governor's own degradation log: the
// first EventsHead and last EventsTail events are kept verbatim, anything
// between is dropped and counted. A long spilling query can emit one event
// per evicted and reloaded partition; without the bound the governor — the
// component policing memory — would itself grow without limit.
const (
	EventsHead = 256
	EventsTail = 256
)

// Backing is a shared resource pool the governor can draw additional
// budget from before degrading. The admission broker's reservations
// implement it: TryGrow attempts to draw n more bytes and returns the
// bytes actually granted (zero when the pool has no headroom or other
// queries are waiting). Implementations must be safe for concurrent use.
type Backing interface {
	TryGrow(n int64) int64
}

// Governor tracks one query's materialized bytes against a budget. The
// budget is dynamic: when a Backing is attached (admission control), the
// governor grows it from the shared pool before taking a degradation
// decision, so those decisions consult the live reservation rather than a
// static number.
type Governor struct {
	budget  atomic.Int64
	used    atomic.Int64
	peak    atomic.Int64
	backing Backing // set once before execution, read-only afterwards

	mu      sync.Mutex
	head    []string // first EventsHead events
	tail    []string // ring of the last EventsTail events past the head
	tailPos int      // next overwrite position in tail once saturated
	dropped int64    // events evicted from the ring
}

// New returns a governor with the given budget in bytes; budget <= 0 means
// "account but never constrain" (WouldExceed always false).
func New(budget int64) *Governor {
	g := &Governor{}
	g.budget.Store(budget)
	return g
}

// SetBacking attaches the shared pool the governor may grow its budget
// from. Must be called before execution starts; it is not synchronized
// against concurrent WouldExceed.
func (g *Governor) SetBacking(b Backing) {
	if g != nil {
		g.backing = b
	}
}

// Budgeted reports whether a finite budget is set.
func (g *Governor) Budgeted() bool { return g != nil && g.budget.Load() > 0 }

// Budget returns the current budget (0 when unbudgeted or nil). With a
// backing attached it can grow during execution.
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget.Load()
}

// Grant accounts n bytes about to be materialized. It fails only under
// injected allocation faults; see the package comment for why the budget
// itself never rejects a grant.
func (g *Governor) Grant(n int64) error {
	if g == nil {
		return nil
	}
	if err := faultinject.ErrAt(GrantSite); err != nil {
		return fmt.Errorf("govern: allocation of %d bytes failed: %w", n, err)
	}
	used := g.used.Add(n)
	for {
		peak := g.peak.Load()
		if used <= peak || g.peak.CompareAndSwap(peak, used) {
			return nil
		}
	}
}

// MustGrant is Grant for call sites with no error path; an injected failure
// panics and is converted back to an error by the driver's containment.
func (g *Governor) MustGrant(n int64) {
	if err := g.Grant(n); err != nil {
		panic(err)
	}
}

// Release returns n bytes to the account.
func (g *Governor) Release(n int64) {
	if g == nil {
		return
	}
	g.used.Add(-n)
}

// Used returns the live accounted bytes.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak returns the high-water mark of accounted bytes.
func (g *Governor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// WouldExceed reports whether materializing extra more bytes would push the
// account past the budget. Unbudgeted (or nil) governors never constrain.
// With a backing attached, a prospective overrun first tries to grow the
// budget from the shared pool; only when the pool refuses does the caller
// see true and degrade. This is what makes a finishing query's memory
// immediately useful to its neighbours: the next WouldExceed draws it.
func (g *Governor) WouldExceed(extra int64) bool {
	if !g.Budgeted() {
		return false
	}
	over := g.used.Load() + extra - g.budget.Load()
	if over <= 0 {
		return false
	}
	if g.backing != nil {
		if got := g.backing.TryGrow(over); got > 0 {
			nb := g.budget.Add(got)
			g.Note("budget grown by %d B from the shared pool (now %d B)", got, nb)
			return g.used.Load()+extra > nb
		}
	}
	return true
}

// Shrinker is the optional Backing extension for returning budget: pools
// that support reclaiming unused reservation bytes implement TryShrink,
// which takes back up to n bytes and returns the bytes actually reclaimed.
type Shrinker interface {
	TryShrink(n int64) int64
}

// TryGrowBudget explicitly draws up to n more bytes from the backing pool
// and raises the budget by what it got, returning that amount. Unlike
// WouldExceed's implicit growth this is all-or-nothing at the pool's
// discretion; the adaptation controller uses it to revise a reservation up
// before degrading the join.
func (g *Governor) TryGrowBudget(n int64) int64 {
	if g == nil || n <= 0 || g.backing == nil {
		return 0
	}
	got := g.backing.TryGrow(n)
	if got > 0 {
		g.budget.Add(got)
	}
	return got
}

// TryShrinkBudget returns up to n unused budget bytes to the backing pool
// (when it supports reclaim), lowering the budget by the bytes the pool
// took back. The adaptation controller calls it once a join's true
// footprint is known, so queued neighbours admit against observed usage
// rather than the plan's estimate.
func (g *Governor) TryShrinkBudget(n int64) int64 {
	if g == nil || n <= 0 {
		return 0
	}
	sh, ok := g.backing.(Shrinker)
	if !ok {
		return 0
	}
	got := sh.TryShrink(n)
	if got > 0 {
		g.budget.Add(-got)
	}
	return got
}

// Note records a degradation decision (BHJ fallback, fan-out reduction,
// partition spill/reload) so explain output and tests can see what the
// governor did. The log is bounded: see EventsHead/EventsTail.
func (g *Governor) Note(format string, args ...any) {
	if g == nil {
		return
	}
	ev := fmt.Sprintf(format, args...)
	g.mu.Lock()
	switch {
	case len(g.head) < EventsHead:
		g.head = append(g.head, ev)
	case len(g.tail) < EventsTail:
		g.tail = append(g.tail, ev)
	default:
		g.tail[g.tailPos] = ev
		g.tailPos = (g.tailPos + 1) % EventsTail
		g.dropped++
	}
	g.mu.Unlock()
}

// Dropped returns how many events the bounded log evicted.
func (g *Governor) Dropped() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped
}

// Events returns the recorded degradation decisions in order. When the
// bounded log overflowed, a synthetic marker line reports how many events
// between the kept head and tail were dropped.
func (g *Governor) Events() []string {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.head)+len(g.tail)+1)
	out = append(out, g.head...)
	if g.dropped > 0 {
		out = append(out, fmt.Sprintf("... (%d earlier events dropped by the bounded log)", g.dropped))
	}
	out = append(out, g.tail[g.tailPos:]...)
	out = append(out, g.tail[:g.tailPos]...)
	return out
}
