package govern

import (
	"errors"
	"sync"
	"testing"

	"partitionjoin/internal/faultinject"
)

func TestNilGovernorIsSafe(t *testing.T) {
	var g *Governor
	if err := g.Grant(100); err != nil {
		t.Fatal(err)
	}
	g.MustGrant(100)
	g.Release(100)
	g.Note("x %d", 1)
	if g.Used() != 0 || g.Peak() != 0 || g.Budgeted() || g.WouldExceed(1) || g.Events() != nil {
		t.Fatal("nil governor should record nothing and never constrain")
	}
}

func TestAccountingAndPeak(t *testing.T) {
	g := New(1000)
	g.MustGrant(400)
	g.MustGrant(400)
	g.Release(300)
	if g.Used() != 500 {
		t.Fatalf("used = %d, want 500", g.Used())
	}
	if g.Peak() != 800 {
		t.Fatalf("peak = %d, want 800", g.Peak())
	}
	if g.WouldExceed(500) {
		t.Fatal("500 more fits exactly in budget")
	}
	if !g.WouldExceed(501) {
		t.Fatal("501 more exceeds budget")
	}
}

func TestUnbudgetedNeverConstrains(t *testing.T) {
	g := New(0)
	g.MustGrant(1 << 40)
	if g.Budgeted() || g.WouldExceed(1<<40) {
		t.Fatal("unbudgeted governor must not constrain")
	}
}

func TestConcurrentGrantRelease(t *testing.T) {
	g := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.MustGrant(7)
				g.Release(7)
			}
		}()
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Fatalf("used = %d after balanced grant/release", g.Used())
	}
	if g.Peak() < 7 {
		t.Fatalf("peak = %d, want >= 7", g.Peak())
	}
}

func TestNotesAndEvents(t *testing.T) {
	g := New(10)
	g.Note("join %s: fallback to BHJ", "j1")
	g.Note("join %s: fan-out reduced", "j2")
	ev := g.Events()
	if len(ev) != 2 || ev[0] != "join j1: fallback to BHJ" {
		t.Fatalf("events = %v", ev)
	}
}

func TestFaultInjectionGrantFails(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable(GrantSite, faultinject.Fault{Kind: faultinject.Fail, Message: "oom"})
	g := New(1 << 20)
	err := g.Grant(64)
	if err == nil {
		t.Fatal("expected injected allocation failure")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != GrantSite {
		t.Fatalf("error %v does not carry the injected fault", err)
	}
	// MustGrant must panic with the same error.
	defer func() {
		if recover() == nil {
			t.Fatal("MustGrant did not panic under injected failure")
		}
	}()
	g.MustGrant(64)
}
