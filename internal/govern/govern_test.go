package govern

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"partitionjoin/internal/faultinject"
)

func TestNilGovernorIsSafe(t *testing.T) {
	var g *Governor
	if err := g.Grant(100); err != nil {
		t.Fatal(err)
	}
	g.MustGrant(100)
	g.Release(100)
	g.Note("x %d", 1)
	if g.Used() != 0 || g.Peak() != 0 || g.Budgeted() || g.WouldExceed(1) || g.Events() != nil {
		t.Fatal("nil governor should record nothing and never constrain")
	}
}

func TestAccountingAndPeak(t *testing.T) {
	g := New(1000)
	g.MustGrant(400)
	g.MustGrant(400)
	g.Release(300)
	if g.Used() != 500 {
		t.Fatalf("used = %d, want 500", g.Used())
	}
	if g.Peak() != 800 {
		t.Fatalf("peak = %d, want 800", g.Peak())
	}
	if g.WouldExceed(500) {
		t.Fatal("500 more fits exactly in budget")
	}
	if !g.WouldExceed(501) {
		t.Fatal("501 more exceeds budget")
	}
}

func TestUnbudgetedNeverConstrains(t *testing.T) {
	g := New(0)
	g.MustGrant(1 << 40)
	if g.Budgeted() || g.WouldExceed(1<<40) {
		t.Fatal("unbudgeted governor must not constrain")
	}
}

// fakePool is a Backing with a fixed amount of spare bytes.
type fakePool struct {
	mu    sync.Mutex
	spare int64
	grown int64
}

func (p *fakePool) TryGrow(n int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.spare {
		return 0
	}
	p.spare -= n
	p.grown += n
	return n
}

func TestBackingGrowsBudgetBeforeDegrading(t *testing.T) {
	g := New(1000)
	pool := &fakePool{spare: 300}
	g.SetBacking(pool)
	g.MustGrant(900)
	// 200 over budget: the governor must draw the deficit from the pool
	// instead of reporting an overrun.
	if g.WouldExceed(300) {
		t.Fatal("governor degraded with pool headroom available")
	}
	if g.Budget() != 1200 {
		t.Fatalf("budget = %d after grow, want 1200", g.Budget())
	}
	if pool.grown != 200 {
		t.Fatalf("pool granted %d, want exactly the 200 B deficit", pool.grown)
	}
	var sawGrow bool
	for _, ev := range g.Events() {
		if strings.Contains(ev, "grown") {
			sawGrow = true
		}
	}
	if !sawGrow {
		t.Fatal("growth not recorded as a degradation event")
	}
	// Pool exhausted (100 left): a 200 B deficit must now degrade.
	if !g.WouldExceed(500) {
		t.Fatal("governor did not constrain once the pool ran dry")
	}
}

func TestBackingNotConsultedWithinBudget(t *testing.T) {
	g := New(1000)
	pool := &fakePool{spare: 1 << 30}
	g.SetBacking(pool)
	g.MustGrant(100)
	if g.WouldExceed(900) {
		t.Fatal("within-budget request constrained")
	}
	if pool.grown != 0 {
		t.Fatalf("pool consulted for a within-budget request (%d B drawn)", pool.grown)
	}
}

func TestConcurrentGrantRelease(t *testing.T) {
	g := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.MustGrant(7)
				g.Release(7)
			}
		}()
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Fatalf("used = %d after balanced grant/release", g.Used())
	}
	if g.Peak() < 7 {
		t.Fatalf("peak = %d, want >= 7", g.Peak())
	}
}

func TestNotesAndEvents(t *testing.T) {
	g := New(10)
	g.Note("join %s: fallback to BHJ", "j1")
	g.Note("join %s: fan-out reduced", "j2")
	ev := g.Events()
	if len(ev) != 2 || ev[0] != "join j1: fallback to BHJ" {
		t.Fatalf("events = %v", ev)
	}
}

func TestEventsRingBoundsMemory(t *testing.T) {
	g := New(10)
	total := EventsHead + EventsTail + 100
	for i := 0; i < total; i++ {
		g.Note("event %d", i)
	}
	ev := g.Events()
	wantLen := EventsHead + EventsTail + 1 // head + marker + tail
	if len(ev) != wantLen {
		t.Fatalf("len(events) = %d, want %d", len(ev), wantLen)
	}
	if g.Dropped() != 100 {
		t.Fatalf("dropped = %d, want 100", g.Dropped())
	}
	if ev[0] != "event 0" || ev[EventsHead-1] != fmt.Sprintf("event %d", EventsHead-1) {
		t.Fatalf("head not preserved: first=%q last=%q", ev[0], ev[EventsHead-1])
	}
	if !strings.Contains(ev[EventsHead], "100 earlier events dropped") {
		t.Fatalf("no drop marker after head: %q", ev[EventsHead])
	}
	if got, want := ev[len(ev)-1], fmt.Sprintf("event %d", total-1); got != want {
		t.Fatalf("last event = %q, want %q", got, want)
	}
	// The tail must be the contiguous most-recent window, in order.
	for i, e := range ev[EventsHead+1:] {
		if want := fmt.Sprintf("event %d", total-EventsTail+i); e != want {
			t.Fatalf("tail[%d] = %q, want %q", i, e, want)
		}
	}
}

func TestEventsBelowBoundKeptVerbatim(t *testing.T) {
	g := New(10)
	for i := 0; i < EventsHead+10; i++ {
		g.Note("event %d", i)
	}
	ev := g.Events()
	if len(ev) != EventsHead+10 || g.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want %d and 0", len(ev), g.Dropped(), EventsHead+10)
	}
	for i, e := range ev {
		if want := fmt.Sprintf("event %d", i); e != want {
			t.Fatalf("event[%d] = %q, want %q", i, e, want)
		}
	}
}

func TestFaultInjectionGrantFails(t *testing.T) {
	faultinject.FailOnLeak(t)
	faultinject.Arm(t, GrantSite, faultinject.Fault{Kind: faultinject.Fail, Message: "oom"})
	g := New(1 << 20)
	err := g.Grant(64)
	if err == nil {
		t.Fatal("expected injected allocation failure")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != GrantSite {
		t.Fatalf("error %v does not carry the injected fault", err)
	}
	// MustGrant must panic with the same error.
	defer func() {
		if recover() == nil {
			t.Fatal("MustGrant did not panic under injected failure")
		}
	}()
	g.MustGrant(64)
}
