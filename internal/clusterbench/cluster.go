// Package clusterbench holds the sharded-execution experiment. It lives
// outside internal/bench so that bench (imported by tpch, whose catalogs
// the cluster tests need) does not depend on internal/cluster.
package clusterbench

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/bench"
	"partitionjoin/internal/cluster"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
)

// ClusterConfig sizes the sharded-execution experiment.
type ClusterConfig struct {
	// Catalog is the full database the cluster partitions (tpch.ServeCatalog).
	Catalog sql.Catalog
	// Shards is the shard counts to sweep, e.g. {1, 2, 4}.
	Shards []int
	// Chaos adds the kill-and-restart variant on the largest shard count.
	Chaos bool
	// Core tunes shard-local execution.
	Core core.Config
}

// ClusterOutcome is the measured result, for harnesses that assert on it.
type ClusterOutcome struct {
	// CriticalSpeedup maps workload name -> critical-path speedup of the
	// largest shard count over one shard (max per-shard fragment time, the
	// number a real multi-machine deployment scales by).
	CriticalSpeedup map[string]float64
	// ChaosTypedErrors counts queries that failed with the typed retryable
	// ErrShardUnavailable while a shard was down.
	ChaosTypedErrors int
	// ChaosOK counts queries answered correctly during the chaos run
	// (before the kill, via retry, and after the restart).
	ChaosOK int
	// ChaosRecovered reports whether the cluster answered correctly after
	// the killed shard was restarted at a new address.
	ChaosRecovered bool
}

// clusterWorkloads is the scan/join mix the sweep measures. Shuffle is
// deliberately included without a scaling claim: its gather cost is the
// paper's partitioning question at cluster scale — moving rows is the price
// of misaligned keys, and the table shows it.
var clusterWorkloads = []struct {
	name  string
	query string
	// scales reports whether the workload's critical path shrinks with the
	// shard count (scans and co-located joins do; gather does not).
	scales bool
}{
	{"scan+agg", `SELECT l_returnflag, count(*) AS n, sum(l_quantity) AS sq, sum(l_extendedprice) AS se, avg(l_discount) AS ad FROM lineitem GROUP BY l_returnflag`, true},
	{"colocated join", `SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey`, true},
	{"broadcast join", `SELECT count(*) AS n FROM lineitem l, part p WHERE l.l_partkey = p.p_partkey`, true},
	{"shuffle join", `SELECT count(*) AS n FROM orders o, customer c WHERE o.o_custkey = c.c_custkey`, false},
}

// clusterHarness is one booted fleet: in-process shard servers behind real
// HTTP listeners and a coordinator over them.
type clusterFleet struct {
	coord  *cluster.Coordinator
	broker *admit.Broker
	parts  []sql.Catalog
	srvs   []*server.Server
	ts     []*httptest.Server
}

func bootFleet(cat sql.Catalog, spec cluster.Spec, n int, cfg core.Config) (*clusterFleet, error) {
	f := &clusterFleet{}
	ring := cluster.NewRing(n, 0)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		part := cluster.PartitionCatalog(cat, spec, ring, i)
		srv := server.New(server.Config{Workers: 1, Core: cfg}, part)
		ts := httptest.NewServer(srv)
		f.parts = append(f.parts, part)
		f.srvs = append(f.srvs, srv)
		f.ts = append(f.ts, ts)
		addrs[i] = ts.URL
	}
	f.broker = admit.NewBroker(admit.Config{GlobalMem: 256 << 20})
	coord, err := cluster.New(cluster.Config{
		Shards:        addrs,
		Spec:          spec,
		ProbeInterval: -1,
		MaxRetries:    3,
		RetryBase:     5 * time.Millisecond,
		RetryCap:      100 * time.Millisecond,
		Broker:        f.broker,
		MemBudget:     8 << 20,
		Workers:       1,
		Core:          cfg,
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.coord = coord
	return f, nil
}

func (f *clusterFleet) close() {
	if f.coord != nil {
		f.coord.Drain(10 * time.Second)
	}
	for _, ts := range f.ts {
		ts.Close()
	}
	for _, srv := range f.srvs {
		srv.Drain(10 * time.Second)
	}
	if f.broker != nil {
		f.broker.Close()
	}
}

// criticalPath times the query on every shard's partition directly (one
// worker each, exactly what the shard executes for this fragment shape) and
// returns the slowest shard — the wall clock a multi-machine cluster pays,
// where fragments genuinely overlap. On this harness's single host the
// fragments share the cores instead, so end-to-end time cannot show the
// overlap; the per-shard maximum can, honestly.
func criticalPath(parts []sql.Catalog, query string, opts plan.Options) (time.Duration, error) {
	var worst time.Duration
	for _, part := range parts {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < bench.Runs; r++ {
			start := time.Now()
			if _, err := sql.Run(part, query, opts); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst, nil
}

// Cluster runs the sharded-execution sweep: for each shard count, boot the
// fleet, route every workload through the coordinator (correctness and
// end-to-end fabric cost), and measure the critical path per workload. With
// Chaos it re-runs the largest fleet while killing and restarting a shard
// mid-stream.
func Cluster(cfg ClusterConfig) (*bench.Table, *ClusterOutcome, error) {
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4}
	}
	sort.Ints(cfg.Shards)
	spec, err := cluster.TPCHSpec(cfg.Catalog)
	if err != nil {
		return nil, nil, err
	}
	opts := plan.Options{Workers: 1, Algo: plan.BHJ, Core: cfg.Core}
	ctx := context.Background()

	tb := &bench.Table{
		Title: fmt.Sprintf("Sharded execution: TPC-H across %v joind shards (1 worker each, GOMAXPROCS=%d)",
			cfg.Shards, runtime.GOMAXPROCS(0)),
		Header: []string{"workload", "shards", "mode", "critical path", "speedup", "e2e via coordinator", "gathered rows"},
	}
	base := map[string]time.Duration{}
	out := &ClusterOutcome{CriticalSpeedup: map[string]float64{}}

	for _, n := range cfg.Shards {
		fleet, err := bootFleet(cfg.Catalog, spec, n, cfg.Core)
		if err != nil {
			return nil, nil, err
		}
		for _, w := range clusterWorkloads {
			// End-to-end through the real fabric: HTTP scatter, NDJSON
			// decode, merge (or gather). Single-host, so fragments serialize.
			var res *cluster.Result
			e2e := time.Duration(1<<62 - 1)
			for r := 0; r < bench.Runs; r++ {
				start := time.Now()
				res, err = fleet.coord.Query(ctx, w.query, "")
				if err != nil {
					fleet.close()
					return nil, nil, fmt.Errorf("bench cluster: %s on %d shards: %w", w.name, n, err)
				}
				if d := time.Since(start); d < e2e {
					e2e = d
				}
			}

			crit := e2e // gather executes on the coordinator; its critical path IS end-to-end
			if w.scales {
				crit, err = criticalPath(fleet.parts, w.query, opts)
				if err != nil {
					fleet.close()
					return nil, nil, err
				}
			}
			speedup := "-"
			if n == cfg.Shards[0] && base[w.name] == 0 {
				base[w.name] = crit
			} else if b := base[w.name]; b > 0 && crit > 0 {
				s := float64(b) / float64(crit)
				speedup = fmt.Sprintf("%.2fx", s)
				if n == cfg.Shards[len(cfg.Shards)-1] {
					out.CriticalSpeedup[w.name] = s
				}
			}
			gathered := "-"
			if res.Stats.GatheredRows > 0 {
				gathered = i64toa(res.Stats.GatheredRows)
			}
			tb.Add(w.name, itoa(n), string(res.Stats.Mode),
				fmt.Sprintf("%.2f ms", ms(crit)), speedup,
				fmt.Sprintf("%.2f ms", ms(e2e)), gathered)
		}
		fleet.close()
	}

	if cfg.Chaos {
		if err := clusterChaos(cfg, spec, tb, out); err != nil {
			return nil, nil, err
		}
	}
	return tb, out, nil
}

// clusterChaos kills a shard under live queries, counts the typed retryable
// failures, restarts the shard at a fresh address, and verifies the cluster
// answers correctly again with nothing leaked.
func clusterChaos(cfg ClusterConfig, spec cluster.Spec, tb *bench.Table, out *ClusterOutcome) error {
	n := cfg.Shards[len(cfg.Shards)-1]
	fleet, err := bootFleet(cfg.Catalog, spec, n, cfg.Core)
	if err != nil {
		return err
	}
	defer fleet.close()
	ctx := context.Background()
	query := clusterWorkloads[1].query // the co-located join touches every shard

	want, err := fleet.coord.Query(ctx, query, "chaos-ref")
	if err != nil {
		return fmt.Errorf("bench cluster chaos: reference: %w", err)
	}
	out.ChaosOK++

	// Kill shard n-1 abruptly: open connections reset, the address refuses.
	victim := n - 1
	fleet.ts[victim].CloseClientConnections()
	fleet.ts[victim].Close()
	fleet.srvs[victim].Drain(time.Second)

	for i := 0; i < 3; i++ {
		_, err := fleet.coord.Query(ctx, query, fmt.Sprintf("chaos-dead-%d", i))
		if errors.Is(err, cluster.ErrShardUnavailable) {
			out.ChaosTypedErrors++
		} else if err != nil {
			return fmt.Errorf("bench cluster chaos: untyped failure: %w", err)
		} else {
			out.ChaosOK++ // a retry inside the ladder won the race
		}
	}

	// Restart at a new address (a rescheduled pod lands elsewhere); the
	// coordinator is told, as a ring watcher would.
	part := fleet.parts[victim]
	srv := server.New(server.Config{Workers: 1, Core: cfg.Core}, part)
	ts := httptest.NewServer(srv)
	fleet.srvs[victim] = srv
	fleet.ts[victim] = ts
	if err := fleet.coord.SetShardAddr(victim, ts.URL); err != nil {
		return fmt.Errorf("bench cluster chaos: %w", err)
	}

	got, err := fleet.coord.Query(ctx, query, "chaos-after")
	if err != nil {
		return fmt.Errorf("bench cluster chaos: after restart: %w", err)
	}
	out.ChaosOK++
	out.ChaosRecovered = len(got.Rows) == len(want.Rows) &&
		fmt.Sprint(got.Rows) == fmt.Sprint(want.Rows)
	if !out.ChaosRecovered {
		return fmt.Errorf("bench cluster chaos: wrong answer after restart: %v vs %v", got.Rows, want.Rows)
	}
	if inUse := fleet.broker.InUse(); inUse != 0 {
		return fmt.Errorf("bench cluster chaos: %d reserved bytes leaked", inUse)
	}

	tb.Add("chaos kill+restart", itoa(n), "colocated",
		"-", "-",
		fmt.Sprintf("%d ok, %d typed retryable", out.ChaosOK, out.ChaosTypedErrors),
		"recovered")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func itoa(v int) string          { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string      { return fmt.Sprintf("%d", v) }
