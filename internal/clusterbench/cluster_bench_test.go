// Smoke of the sharded-execution experiment: the fleet boots, every
// workload answers through the coordinator, the chaos variant ends in a
// typed-error-then-recovery arc, and nothing leaks. External test package:
// clusterbench cannot be imported by bench/tpch, keeping the
// bench <- tpch <- cluster-test import chain acyclic.
package clusterbench_test

import (
	"testing"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/clusterbench"
	"partitionjoin/internal/core"
	"partitionjoin/internal/tpch"
)

func TestClusterExperimentSmoke(t *testing.T) {
	old := bench.Runs
	bench.Runs = 1
	defer func() { bench.Runs = old }()

	const workloads = 4 // scan, colocated, broadcast, shuffle
	tb, out, err := clusterbench.Cluster(clusterbench.ClusterConfig{
		Catalog: tpch.ServeCatalog(0.005),
		Shards:  []int{1, 2},
		Chaos:   true,
		Core:    core.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2*workloads+1 {
		t.Fatalf("table has %d rows, want %d workloads x 2 shard counts + chaos",
			len(tb.Rows), workloads)
	}
	if !out.ChaosRecovered {
		t.Fatal("chaos run did not recover after the shard restart")
	}
	if out.ChaosTypedErrors == 0 && out.ChaosOK < 5 {
		t.Fatalf("chaos outcome %+v: dead-shard queries neither failed typed nor succeeded via retry", out)
	}
	for _, name := range []string{"scan+agg", "colocated join", "broadcast join"} {
		if s, ok := out.CriticalSpeedup[name]; !ok || s <= 0 {
			t.Fatalf("no critical-path speedup recorded for %q (got %v)", name, out.CriticalSpeedup)
		}
	}
}

// Smoke of the failover-latency experiment: replicated fleet, mid-stream
// kill, zero client-visible errors, R restored.
func TestFailoverExperimentSmoke(t *testing.T) {
	tb, out, err := clusterbench.Failover(clusterbench.FailoverConfig{
		Catalog: tpch.ServeCatalog(0.005),
		Queries: 12,
		Core:    core.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty failover table")
	}
	if out.Errors != 0 {
		t.Fatalf("%d client-visible errors; transparent failover demands 0", out.Errors)
	}
	if out.OK != 12 {
		t.Fatalf("%d/12 queries ok", out.OK)
	}
	if out.Failovers == 0 {
		t.Fatal("no query crossed the fault; the experiment measured nothing")
	}
	if !out.RRestored {
		t.Fatalf("R not restored (%d re-replications)", out.Rereplications)
	}
}
