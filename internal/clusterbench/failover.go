package clusterbench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/bench"
	"partitionjoin/internal/cluster"
	"partitionjoin/internal/core"
	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
)

// The failover experiment measures what the replication ladder costs the
// client: a steady stream of partitioned joins, a node killed a third of the
// way through, and the latency of the queries that crossed the fault
// compared to the steady-state baseline. The contract under test is the
// tentpole's — zero client-visible errors, identical answers, R restored by
// re-replication — and the table reports the one number a capacity planner
// needs: added latency per failed-over query.

// FailoverConfig sizes the failover-latency experiment.
type FailoverConfig struct {
	// Catalog is the full database the fleet partitions.
	Catalog sql.Catalog
	// Nodes is the fleet size (default 3).
	Nodes int
	// Replication is the copies per partition (default 2).
	Replication int
	// Queries is the stream length; the kill lands a third of the way in
	// (default 30).
	Queries int
	// Core tunes shard-local execution.
	Core core.Config
}

// FailoverOutcome is the measured result, for harnesses that assert on it.
type FailoverOutcome struct {
	// OK counts queries that returned the correct rows (must be all).
	OK int
	// Failovers counts queries that crossed the fault and were served by a
	// replica.
	Failovers int
	// Errors counts client-visible failures (the contract demands 0).
	Errors int
	// BaselineMS and FailoverMS are the median latencies of unaffected and
	// failed-over queries; AddedMS is their difference — the transparent
	// failover's price.
	BaselineMS, FailoverMS, AddedMS float64
	// Rereplications counts slice transfers that restored R after the kill.
	Rereplications int64
	// RRestored reports whether every slice was back at R copies.
	RRestored bool
}

// failoverQueries is the Q3/Q12-shaped stream: partitioned co-located joins
// with grouping, the paper's "not to partition" regime where every shard's
// fragment matters and a dead shard would be client-visible without failover.
var failoverQueries = []string{
	`SELECT o_orderpriority, count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity < 30 GROUP BY o_orderpriority`,
	`SELECT l_shipmode, count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l_shipmode IN ('MAIL', 'SHIP') GROUP BY l_shipmode`,
}

// Failover boots a replicated fleet, streams partitioned joins through it,
// kills a node mid-stream, and reports the added latency per failed-over
// query plus the re-replication that restored R.
func Failover(cfg FailoverConfig) (*bench.Table, *FailoverOutcome, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 30
	}
	spec, err := cluster.TPCHSpec(cfg.Catalog)
	if err != nil {
		return nil, nil, err
	}

	nodes := make([]*cluster.Node, cfg.Nodes)
	tss := make([]*httptest.Server, cfg.Nodes)
	addrs := make([]string, cfg.Nodes)
	for i := range nodes {
		n, err := cluster.NewNode(cfg.Catalog, spec, cluster.NodeConfig{
			ShardID: i, ShardCount: cfg.Nodes, Replication: cfg.Replication,
			Server: server.Config{Workers: 1, Core: cfg.Core},
		})
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = n
		tss[i] = httptest.NewServer(n)
		addrs[i] = tss[i].URL
	}
	broker := admit.NewBroker(admit.Config{GlobalMem: 256 << 20})
	coord, err := cluster.New(cluster.Config{
		Shards:      addrs,
		Spec:        spec,
		Replication: cfg.Replication,
		// Fast detection, forgiving probe deadline: a dead node fails its
		// probe on connection refusal instantly; a busy one must not be
		// condemned by a short timeout.
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     2 * time.Second,
		DownAfter:        2,
		RereplicateAfter: 100 * time.Millisecond,
		MaxRetries:       1,
		RetryBase:        5 * time.Millisecond,
		RetryCap:         100 * time.Millisecond,
		Broker:           broker,
		MemBudget:        8 << 20,
		Workers:          1,
		Core:             cfg.Core,
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		coord.Drain(10 * time.Second)
		for _, ts := range tss {
			ts.Close()
		}
		for _, n := range nodes {
			n.Drain(10 * time.Second)
		}
		broker.Close()
	}()
	ctx := context.Background()

	want := make([]string, len(failoverQueries))
	for i, q := range failoverQueries {
		res, err := coord.Query(ctx, q, fmt.Sprintf("failover-ref-%d", i))
		if err != nil {
			return nil, nil, fmt.Errorf("bench failover: reference: %w", err)
		}
		want[i] = fmt.Sprint(res.Rows)
	}

	out := &FailoverOutcome{}
	victim := cfg.Nodes - 1
	killAt := cfg.Queries / 3
	var normal, crossed []time.Duration
	for i := 0; i < cfg.Queries; i++ {
		if i == killAt {
			// SIGKILL-equivalent: connections reset, the address refuses,
			// the coordinator learns only by failing.
			tss[victim].CloseClientConnections()
			tss[victim].Close()
			nodes[victim].Drain(time.Second)
		}
		qi := i % len(failoverQueries)
		start := time.Now()
		res, err := coord.Query(ctx, failoverQueries[qi], fmt.Sprintf("failover-%d", i))
		d := time.Since(start)
		if err != nil {
			out.Errors++
			return nil, nil, fmt.Errorf("bench failover: query %d client-visible error: %w", i, err)
		}
		if got := fmt.Sprint(res.Rows); got != want[qi] {
			return nil, nil, fmt.Errorf("bench failover: query %d wrong rows: %s vs %s", i, got, want[qi])
		}
		out.OK++
		if res.Stats.Failovers > 0 {
			out.Failovers++
			crossed = append(crossed, d)
		} else {
			normal = append(normal, d)
		}
	}

	// R restored: every slice the victim held (its primary plus its boot
	// replicas) must have been re-replicated onto survivors.
	lost := int64(cfg.Replication)
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := coord.Statsz()
		out.Rereplications = st.Rereplications
		if st.Rereplications >= lost {
			out.RRestored = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !out.RRestored {
		return nil, nil, fmt.Errorf("bench failover: only %d/%d re-replications; R not restored", out.Rereplications, lost)
	}
	if inUse := broker.InUse(); inUse != 0 {
		return nil, nil, fmt.Errorf("bench failover: %d reserved bytes leaked", inUse)
	}

	out.BaselineMS = ms(median(normal))
	out.FailoverMS = ms(median(crossed))
	out.AddedMS = out.FailoverMS - out.BaselineMS

	tb := &bench.Table{
		Title: fmt.Sprintf("Transparent failover: %d nodes, replication %d, node killed at query %d/%d",
			cfg.Nodes, cfg.Replication, killAt, cfg.Queries),
		Header: []string{"metric", "value"},
	}
	tb.Add("queries ok", itoa(out.OK))
	tb.Add("client-visible errors", itoa(out.Errors))
	tb.Add("queries failed over", itoa(out.Failovers))
	tb.Add("baseline latency (median)", fmt.Sprintf("%.2f ms", out.BaselineMS))
	tb.Add("failed-over latency (median)", fmt.Sprintf("%.2f ms", out.FailoverMS))
	tb.Add("added latency per failover", fmt.Sprintf("%.2f ms", out.AddedMS))
	tb.Add("re-replications (R restored)", i64toa(out.Rereplications))
	return tb, out, nil
}

// median returns the middle duration (0 for an empty set).
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}
