package hashx

import (
	"testing"
	"testing/quick"
)

func TestU64Deterministic(t *testing.T) {
	if U64(42) != U64(42) {
		t.Fatal("hash not deterministic")
	}
}

func TestU64NoTrivialCollisions(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 1<<16; i++ {
		h := U64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: U64(%d) == U64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestU64Avalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial number of output
	// bits on average; a weak mixer here would skew every radix
	// partition histogram in the join.
	var totalFlips, samples int
	for i := uint64(1); i < 1024; i++ {
		base := U64(i)
		for b := 0; b < 64; b++ {
			diff := base ^ U64(i^(1<<b))
			totalFlips += popcount(diff)
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.2f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestCombineOrderSensitive(t *testing.T) {
	a, b := U64(1), U64(2)
	if Combine(a, b) == Combine(b, a) {
		t.Fatal("Combine is symmetric; multi-column keys (x,y) and (y,x) would collide")
	}
}

func TestBytesMatchesContent(t *testing.T) {
	if Bytes([]byte("hello")) != Bytes([]byte("hello")) {
		t.Fatal("Bytes not deterministic")
	}
	if Bytes([]byte("hello")) == Bytes([]byte("hellp")) {
		t.Fatal("unexpected collision on near-identical strings")
	}
	if Bytes(nil) != Bytes([]byte{}) {
		t.Fatal("nil and empty slice should hash equally")
	}
}

func TestI64MatchesU64Property(t *testing.T) {
	f := func(x int64) bool { return I64(x) == U64(uint64(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64LowBitsUniform(t *testing.T) {
	// The radix partitioner uses the low 6 bits; sequential keys (the
	// TPC-H primary keys) must spread uniformly.
	const fanout = 64
	counts := make([]int, fanout)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		counts[U64(i)&(fanout-1)]++
	}
	want := n / fanout
	for p, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("partition %d has %d of expected %d", p, c, want)
		}
	}
}
