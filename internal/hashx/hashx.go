// Package hashx provides the 64-bit hash functions used throughout the join
// implementations. The paper stores an equally sized hash value with each
// tuple (Section 5.2); every component that partitions, builds hash tables,
// or probes Bloom filters derives its bits from the same hash so that radix
// bits, directory bits, and filter blocks stay consistent.
package hashx

import "math/bits"

// U64 mixes a 64-bit key into a well-distributed 64-bit hash. It is the
// finalizer of splitmix64, which passes the usual avalanche tests and is
// cheap enough to be recomputed per tuple like a code-generated hash.
func U64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// I64 hashes a signed 64-bit key.
func I64(x int64) uint64 { return U64(uint64(x)) }

// Combine folds a second hash into an existing one, for multi-column join
// keys. It is a Boost-style combiner strengthened with a rotation so that
// Combine(a, b) != Combine(b, a).
func Combine(h, h2 uint64) uint64 {
	h ^= h2 + 0x9e3779b97f4a7c15 + bits.RotateLeft64(h, 23) + (h >> 2)
	return U64(h)
}

// Bytes hashes a byte slice (FNV-1a core with a splitmix finalizer). String
// join keys and LIKE-filtered text columns use this path.
func Bytes(b []byte) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x00000100000001b3
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return U64(h)
}
