package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

// scanPruneTable builds an n-row table with an int64 key column k (0..n-1,
// clustered when sorted, permuted otherwise) and an int64 payload column v.
func scanPruneTable(name string, n int, sorted bool, seed int64) *storage.Table {
	schema := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
	)
	t := storage.NewTable(name, schema, n)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	if !sorted {
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	}
	kc := t.Cols[0].(*storage.Int64Column)
	vc := t.Cols[1].(*storage.Int64Column)
	kc.Values = keys
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	vc.Values = vals
	return t
}

// scanPruneResult is one timed scan measurement.
type scanPruneResult struct {
	Throughput float64
	Time       time.Duration
	Scan       meter.ScanStats
	Sum        int64
}

// scanPruneRun times SUM(v) over rows with k < cutoff, with or without the
// pushdown pass. It returns the result so callers can cross-check agreement.
func scanPruneRun(t *storage.Table, cutoff int64, pushdown bool, cfg core.Config) (scanPruneResult, error) {
	opts := plan.DefaultOptions()
	opts.Core = cfg
	opts.NoScanPushdown = !pushdown
	root := plan.GroupBy(
		plan.Filter(plan.Scan(t, "k", "v"), expr.LtI("k", cutoff)),
		nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "v", As: "sum_v"},
		plan.AggExpr{Kind: exec.AggCount, As: "n"},
	)
	res, err := plan.ExecuteErr(context.Background(), opts, root)
	if err != nil {
		return scanPruneResult{}, err
	}
	return scanPruneResult{
		Throughput: res.Throughput(),
		Time:       res.Duration,
		Scan:       res.Scan,
		Sum:        res.Result.Vecs[0].I64[0],
	}, nil
}

// ScanPrune sweeps range-scan selectivity over a clustered and a shuffled
// key column, with the scan pushdown (zone-map pruning + raw-storage
// prefiltering) on and off. On the clustered layout low selectivities skip
// nearly every morsel; on the shuffled layout every zone spans the full key
// range, pruning never fires, and the pushdown's win reduces to prefilter
// avoiding batch materialization — the table shows both, which is the point:
// zone maps buy exactly as much as the data's physical order allows.
func ScanPrune(rows int, sels []float64, cfg core.Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("scanprune: SUM over k<cutoff, %d rows", rows),
		Header: []string{"sel", "clustered pushed", "clustered filterop", "speedup",
			"shuffled pushed", "shuffled filterop", "morsels/batches pruned"},
	}
	clustered := scanPruneTable("clustered", rows, true, 1)
	shuffled := scanPruneTable("shuffled", rows, false, 1)
	for _, sel := range sels {
		cutoff := int64(float64(rows) * sel)
		var cells [4]scanPruneResult
		for i, cfgRun := range []struct {
			tbl  *storage.Table
			push bool
		}{{clustered, true}, {clustered, false}, {shuffled, true}, {shuffled, false}} {
			// Warm once, then take the best of 3 timed runs: scan
			// microbenchmarks are short enough for scheduling noise to
			// dominate single samples.
			if _, err := scanPruneRun(cfgRun.tbl, cutoff, cfgRun.push, cfg); err != nil {
				return nil, err
			}
			best := scanPruneResult{Time: time.Duration(1<<62 - 1)}
			for rep := 0; rep < 3; rep++ {
				r, err := scanPruneRun(cfgRun.tbl, cutoff, cfgRun.push, cfg)
				if err != nil {
					return nil, err
				}
				if r.Time < best.Time {
					best = r
				}
			}
			cells[i] = best
		}
		if cells[0].Sum != cells[1].Sum || cells[2].Sum != cells[3].Sum {
			return nil, fmt.Errorf("scanprune: pushed and unpushed sums disagree at sel %g", sel)
		}
		speedup := float64(cells[1].Time) / float64(cells[0].Time)
		t.Add(f2(sel), mt(cells[0].Throughput), mt(cells[1].Throughput), f2(speedup),
			mt(cells[2].Throughput), mt(cells[3].Throughput),
			fmt.Sprintf("%d/%d", cells[0].Scan.MorselsPruned, cells[0].Scan.BatchesPruned))
	}
	return t, nil
}
