package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"partitionjoin/internal/colstore"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

// coldScanTable builds an n-row table with a shuffled int64 key, an int64
// payload, and a ~48-byte string pad so the on-disk footprint is dominated
// by real column bytes rather than metadata.
func coldScanTable(n int) *storage.Table {
	schema := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
		storage.ColumnDef{Name: "pad", Type: storage.String, StrCap: 48},
	)
	t := storage.NewTable("coldscan", schema, n)
	r := rand.New(rand.NewSource(11))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	t.Cols[0].(*storage.Int64Column).Values = keys
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1009)
	}
	t.Cols[1].(*storage.Int64Column).Values = vals
	pad := t.Cols[2].(storage.StrCol)
	for i := 0; i < n; i++ {
		pad.AppendString(fmt.Sprintf("pad-%011d-%016x-%016x", i, r.Int63(), r.Int63()))
	}
	return t
}

// coldScanResult is one timed out-of-core scan.
type coldScanResult struct {
	Throughput float64
	Time       time.Duration
	Sum        int64
	Pool       *storage.PagerStats
}

// coldScanRun times SUM(v) + COUNT over all rows, scanning every column
// (the pad column rides along so string lanes pay their I/O too).
func coldScanRun(t *storage.Table, cfg core.Config) (coldScanResult, error) {
	opts := plan.DefaultOptions()
	opts.Core = cfg
	root := plan.GroupBy(
		plan.Filter(plan.Scan(t, "k", "v", "pad"), expr.LtI("k", int64(t.NumRows()))),
		nil,
		plan.AggExpr{Kind: exec.AggSumI, Col: "v", As: "sum_v"},
		plan.AggExpr{Kind: exec.AggCount, As: "n"},
	)
	res, err := plan.ExecuteErr(context.Background(), opts, root)
	if err != nil {
		return coldScanResult{}, err
	}
	return coldScanResult{
		Throughput: res.Throughput(),
		Time:       res.Duration,
		Sum:        res.Result.Vecs[0].I64[0],
		Pool:       res.Pool,
	}, nil
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return err
	})
	return total, err
}

// ColdScan measures out-of-core scans: the table is written to a column
// store, then scanned through buffer pools sized at the given fractions of
// its on-disk bytes (1 = everything fits; 1/4 and below force steady
// eviction). A RAM-resident scan is the baseline. Each pool size opens a
// fresh store, so the first run is genuinely cold (every page verifies in);
// the warm number is the best of 3 repeats. The sweep fails if any
// configuration's answer diverges from RAM or its high-water residency
// exceeds the budget plus the pinned-working-set slack — the benchmark is
// also the bounded-memory assertion.
func ColdScan(rows int, fracs []float64, cfg core.Config) (*Table, error) {
	dir, err := os.MkdirTemp("", "coldscan-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	tab := coldScanTable(rows)
	w := &colstore.Writer{Dir: dir}
	if err := w.WriteTable(tab); err != nil {
		return nil, err
	}
	storeBytes, err := dirBytes(filepath.Join(dir, tab.Name))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("coldscan: SUM over %d rows, %.1f MiB on disk", rows, float64(storeBytes)/(1<<20)),
		Header: []string{"pool", "budget MiB", "cold scan", "warm scan",
			"warm hit rate", "evictions", "max resident MiB"},
	}

	base, err := coldScanRun(tab, cfg)
	if err != nil {
		return nil, err
	}
	t.Add("ram", "-", "-", mt(base.Throughput), "-", "-", "-")

	// Pinned frames may overshoot the budget: each worker holds one
	// morsel's pages across the scanned lanes, and overshoot is by design
	// (the pool refuses to deadlock on its own budget).
	slack := int64(runtime.GOMAXPROCS(0)+1) * 8 * colstore.DefaultPageSize

	for _, frac := range fracs {
		budget := int64(float64(storeBytes) * frac)
		st, err := colstore.Open(dir, colstore.Options{PoolBytes: budget})
		if err != nil {
			return nil, err
		}
		dtab := st.Table(tab.Name)

		cold, err := coldScanRun(dtab, cfg)
		if err != nil {
			st.Close()
			return nil, err
		}
		warm := coldScanResult{Time: time.Duration(1<<62 - 1)}
		var warmHit float64
		for rep := 0; rep < 3; rep++ {
			r, err := coldScanRun(dtab, cfg)
			if err != nil {
				st.Close()
				return nil, err
			}
			if r.Time < warm.Time {
				warm = r
				if r.Pool != nil && r.Pool.Pins > 0 {
					warmHit = float64(r.Pool.Hits) / float64(r.Pool.Pins)
				}
			}
		}
		stats := st.Pool().Stats()
		st.Close()

		if cold.Sum != base.Sum || warm.Sum != base.Sum {
			return nil, fmt.Errorf("coldscan: pool %.3g answer diverged from RAM", frac)
		}
		if budget > 0 && stats.MaxResidentBytes > budget+slack {
			return nil, fmt.Errorf("coldscan: pool %.3g resident high-water %d exceeds budget %d + slack %d",
				frac, stats.MaxResidentBytes, budget, slack)
		}
		t.Add(fmt.Sprintf("%.3gx", frac), f2(float64(budget)/(1<<20)),
			mt(cold.Throughput), mt(warm.Throughput),
			f2(warmHit), fmt.Sprintf("%d", stats.Evictions),
			f2(float64(stats.MaxResidentBytes)/(1<<20)))
	}
	return t, nil
}
