package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"

	"partitionjoin/internal/core"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/plan"
)

// Table is a printable experiment result: a header row plus data rows, and
// optional notes carrying non-tabular context such as the memory governor's
// degradation events.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a data row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// NoteDegraded appends a result's degradation events (fan-out bits shed,
// BHJ fallbacks, partitions spilled and reloaded) to the table's notes,
// prefixed with the row they belong to. Long event lists are truncated.
func (t *Table) NoteDegraded(label string, r Result) {
	const max = 8
	for i, ev := range r.Degraded {
		if i == max {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: ... (%d more events)", label, len(r.Degraded)-max))
			break
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", label, ev))
	}
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func mt(v float64) string   { return fmt.Sprintf("%.1fM T/s", v/1e6) }
func mb(v int64) string     { return fmt.Sprintf("%.1f MiB", float64(v)/(1<<20)) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }

// Table1 reports the prior-work workloads (paper Table 1) at the given
// scale.
func Table1(scale float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 1: workloads from prior work (scale %g)", scale),
		Header: []string{"workload", "key/pay [B]", "build tuples", "probe tuples", "build size", "probe size"},
	}
	for _, s := range []Spec{WorkloadA(scale), WorkloadB(scale)} {
		t.Add(s.Name, fmt.Sprintf("%d/%d", s.keyWidth(), s.keyWidth()),
			itoa(s.BuildTuples), itoa(s.ProbeTuples), mb(s.BuildBytes()), mb(s.ProbeBytes()))
	}
	return t
}

// Fig8 sweeps thread counts for both workloads across the four join
// implementations (paper Figure 8; Figure 9 is the same sweep on another
// host, so the harness is shared).
func Fig8(scale float64, threads []int, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 8/9: scalability, workloads A and B (scale %g)", scale),
		Header: []string{"workload", "threads", "NPJ", "PRJ", "BHJ", "RJ"},
	}
	for _, spec := range []Spec{WorkloadA(scale), WorkloadB(scale)} {
		build, probe := spec.Tables()
		sbuild, sprobe := spec.Relations()
		for _, th := range threads {
			npj := RunStandalone(sbuild, sprobe, false, th, cfg.CacheBudget)
			prj := RunStandalone(sbuild, sprobe, true, th, cfg.CacheBudget)
			bhj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BHJ, Threads: th, Core: cfg})
			if err != nil {
				return nil, err
			}
			rj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.RJ, Threads: th, Core: cfg})
			if err != nil {
				return nil, err
			}
			if npj.Checksum != prj.Checksum || bhj.Checksum != rj.Checksum {
				return nil, errors.New("bench: join implementations disagree on match count")
			}
			t.Add(spec.Name, itoa(th), mt(npj.Throughput), mt(prj.Throughput),
				mt(bhj.Throughput), mt(rj.Throughput))
		}
	}
	return t, nil
}

// Fig10 runs the Section 5.4.2 payload query under the radix join with the
// traffic meter attached and reports the per-phase read/write volume and
// bandwidth timeline (paper Figure 10, PCM substitute).
func Fig10(scale float64, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	spec.PayloadCols = 1 // 24 B materialized rows before padding
	build, probe := spec.Tables()
	m := meter.New()
	opts := plan.Options{Workers: 0, Algo: plan.RJ, Core: cfg, Meter: m}
	if _, err := plan.ExecuteErr(context.Background(), opts, joinQuery(build, probe, spec.PayNames(), false)); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: memory traffic per RJ phase (scale %g, 24 B tuples)", scale),
		Header: []string{"phase", "start [ms]", "dur [ms]", "read", "written", "read BW", "write BW"},
	}
	for _, p := range m.Phases() {
		t.Add(p.Name,
			f1(float64(p.Start.Microseconds())/1000),
			f1(float64(p.Duration.Microseconds())/1000),
			mb(p.Read), mb(p.Written),
			fmt.Sprintf("%.2f GB/s", p.ReadBW/1e9),
			fmt.Sprintf("%.2f GB/s", p.WriteBW/1e9))
	}
	return t, nil
}

// Fig14 sweeps foreign-key selectivity (paper Figure 14): the Bloom
// reducer wins at low selectivity, loses past ~50%, and the adaptive
// variant switches itself off.
func Fig14(scale float64, sels []float64, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 14: impact of foreign-key selectivity, workload A4 (scale %g)", scale),
		Header: []string{"join partners [%]", "BRJ", "BHJ", "RJ", "BRJ (adaptive)"},
	}
	for _, sel := range sels {
		spec := WorkloadA(scale)
		spec.Selectivity = sel
		build, probe := spec.Tables()
		brj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BRJ, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		bhj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		rj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		acfg := cfg
		acfg.AdaptiveBloom = true
		abrj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BRJ, Threads: 0, Core: acfg})
		if err != nil {
			return nil, err
		}
		if brj.Checksum != bhj.Checksum || rj.Checksum != abrj.Checksum || brj.Checksum != rj.Checksum {
			return nil, fmt.Errorf("bench: selectivity sweep checksum mismatch at %g%% partners", sel*100)
		}
		t.Add(f1(sel*100), mt(brj.Throughput), mt(bhj.Throughput), mt(rj.Throughput), mt(abrj.Throughput))
	}
	return t, nil
}

// Fig15 sweeps the probe payload width (paper Figure 15) with and without
// late materialization at 100% selectivity.
func Fig15(scale float64, payloadCols []int, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 15: impact of payload size, workload A2 (scale %g)", scale),
		Header: []string{"probe tuple [B]", "BHJ", "BHJ (LM)", "RJ", "RJ (LM)"},
	}
	for _, pc := range payloadCols {
		spec := WorkloadA(scale)
		spec.PayloadCols = pc
		build, probe := spec.Tables()
		names := spec.PayNames()
		bhj, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		bhjLM, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg, LM: true})
		if err != nil {
			return nil, err
		}
		rj, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		rjLM, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg, LM: true})
		if err != nil {
			return nil, err
		}
		if bhj.Checksum != rj.Checksum || bhjLM.Checksum != rjLM.Checksum {
			return nil, fmt.Errorf("bench: payload sweep checksum mismatch at %d payload columns", pc)
		}
		// Materialized probe row: hash + key + payload columns.
		width := 16 + 8*pc
		t.Add(itoa(width), mt(bhj.Throughput), mt(bhjLM.Throughput), mt(rj.Throughput), mt(rjLM.Throughput))
	}
	return t, nil
}

// Fig16 sweeps the pipeline depth over a star schema (paper Figure 16).
func Fig16(scale float64, depths []int, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 16: impact of pipeline depth, workload A3 (scale %g)", scale),
		Header: []string{"pipeline depth", "BHJ [T/s per join]", "RJ [T/s per join]"},
	}
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	spec := WorkloadA(scale)
	dims, fact := StarTables(spec, maxDepth)
	for _, d := range depths {
		bhj, err := RunStar(dims, fact, d, plan.BHJ, 0, cfg)
		if err != nil {
			return nil, err
		}
		rj, err := RunStar(dims, fact, d, plan.RJ, 0, cfg)
		if err != nil {
			return nil, err
		}
		if bhj.Checksum != rj.Checksum {
			return nil, fmt.Errorf("bench: star schema checksum mismatch at depth %d", d)
		}
		t.Add(itoa(d), mt(bhj.Throughput), mt(rj.Throughput))
	}
	return t, nil
}

// Fig17 sweeps Zipf skew for both workloads across all four
// implementations (paper Figure 17).
func Fig17(scale float64, zipfs []float64, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 17: impact of skew (scale %g)", scale),
		Header: []string{"workload", "zipf", "NPJ", "PRJ", "BHJ", "RJ"},
	}
	for _, base := range []Spec{WorkloadA(scale), WorkloadB(scale)} {
		for _, z := range zipfs {
			spec := base
			spec.Zipf = z
			build, probe := spec.Tables()
			sbuild, sprobe := spec.Relations()
			npj := RunStandalone(sbuild, sprobe, false, benchThreads(), cfg.CacheBudget)
			prj := RunStandalone(sbuild, sprobe, true, benchThreads(), cfg.CacheBudget)
			bhj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg})
			if err != nil {
				return nil, err
			}
			rj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg})
			if err != nil {
				return nil, err
			}
			if bhj.Checksum != rj.Checksum {
				return nil, fmt.Errorf("bench: skew sweep checksum mismatch at zipf %g", z)
			}
			t.Add(spec.Name, f2(z), mt(npj.Throughput), mt(prj.Throughput),
				mt(bhj.Throughput), mt(rj.Throughput))
		}
	}
	return t, nil
}

// Table3 measures the combined selectivity+payload effect of late
// materialization (paper Table 3: 5% selectivity, four payload columns).
func Table3(scale float64, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	spec.Selectivity = 0.05
	spec.PayloadCols = 4
	build, probe := spec.Tables()
	names := spec.PayNames()
	t := &Table{
		Title:  fmt.Sprintf("Table 3: throughput with and without late materialization (scale %g)", scale),
		Header: []string{"join", "LM", "no LM", "benefit"},
	}
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.BRJ, plan.RJ} {
		lm, err := RunDBMS(build, probe, names, DBMSOpts{Algo: algo, Threads: 0, Core: cfg, LM: true})
		if err != nil {
			return nil, err
		}
		no, err := RunDBMS(build, probe, names, DBMSOpts{Algo: algo, Threads: 0, Core: cfg})
		if err != nil {
			return nil, err
		}
		if lm.Checksum != no.Checksum {
			return nil, fmt.Errorf("bench: late materialization changed the %v result", algo)
		}
		benefit := (lm.Throughput/no.Throughput - 1) * 100
		t.Add(algo.String(), mt(lm.Throughput), mt(no.Throughput), fmt.Sprintf("%+.0f%%", benefit))
	}
	return t, nil
}

// Fig18Micro reports the workload-A speedup of BRJ and BHJ over the RJ
// (left half of paper Figure 18; the TPC-H half lives in cmd/tpchbench).
func Fig18Micro(scale float64, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	build, probe := spec.Tables()
	rj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg})
	if err != nil {
		return nil, err
	}
	brj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BRJ, Threads: 0, Core: cfg})
	if err != nil {
		return nil, err
	}
	bhj, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 18 (left): speedup over optimized RJ, workload A (scale %g)", scale),
		Header: []string{"join", "speedup vs RJ"},
	}
	t.Add("BRJ", fmt.Sprintf("%+.0f%%", (brj.Throughput/rj.Throughput-1)*100))
	t.Add("BHJ", fmt.Sprintf("%+.0f%%", (bhj.Throughput/rj.Throughput-1)*100))
	return t, nil
}

// Table4 synthesizes the workable/beneficial ranges (paper Table 4) from
// quick parameter sweeps: "workable" is where the RJ stays within 20% of
// the BHJ, "beneficial" where it is at least 10% faster.
func Table4(scale float64, cfg core.Config) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 4: workload characteristics for partitioned joins (scale %g, measured)", scale),
		Header: []string{"factor", "workable (RJ >= 0.8x BHJ)", "beneficial (RJ >= 1.1x BHJ)"},
	}
	ratio := func(spec Spec, payload bool) (float64, error) {
		build, probe := spec.Tables()
		var names []string
		if payload {
			names = spec.PayNames()
		}
		rj, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.RJ, Threads: 0, Core: cfg})
		if err != nil {
			return 0, err
		}
		bhj, err := RunDBMS(build, probe, names, DBMSOpts{Algo: plan.BHJ, Threads: 0, Core: cfg})
		if err != nil {
			return 0, err
		}
		return rj.Throughput / bhj.Throughput, nil
	}
	var sweepErr error
	boundary := func(xs []float64, mk func(x float64) Spec, payload bool, threshold float64) string {
		last := "none"
		for _, x := range xs {
			r, err := ratio(mk(x), payload)
			if err != nil {
				if sweepErr == nil {
					sweepErr = err
				}
				return last
			}
			if r >= threshold {
				last = fmt.Sprintf("<= %g", x)
			}
		}
		return last
	}
	payXs := []float64{0, 1, 2, 4, 8}
	t.Add("payload columns (8 B each)",
		boundary(payXs, func(x float64) Spec {
			s := WorkloadA(scale)
			s.PayloadCols = int(x)
			return s
		}, true, 0.8),
		boundary(payXs, func(x float64) Spec {
			s := WorkloadA(scale)
			s.PayloadCols = int(x)
			return s
		}, true, 1.1))
	zipXs := []float64{0, 0.5, 1, 1.5, 2}
	t.Add("skew (zipf)",
		boundary(zipXs, func(x float64) Spec {
			s := WorkloadA(scale)
			s.Zipf = x
			return s
		}, false, 0.8),
		boundary(zipXs, func(x float64) Spec {
			s := WorkloadA(scale)
			s.Zipf = x
			return s
		}, false, 1.1))
	if sweepErr != nil {
		return nil, sweepErr
	}
	return t, nil
}

// Print renders a table with aligned columns through the given printf-like
// function.
func (t *Table) Print(printf func(format string, args ...any)) {
	printf("%s\n", t.Title)
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		line := "  "
		for c, cell := range r {
			line += fmt.Sprintf("%-*s  ", widths[c], cell)
		}
		printf("%s\n", line)
		if ri == 0 {
			sep := "  "
			for _, w := range widths {
				for i := 0; i < w; i++ {
					sep += "-"
				}
				sep += "  "
			}
			printf("%s\n", sep)
		}
	}
	for _, n := range t.Notes {
		printf("  note: %s\n", n)
	}
}

// JSON renders the table as an indented JSON object (title, header, rows,
// notes) for machine-readable benchmark output.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
}

// MemLadder sweeps the radix join of workload A down a shrinking memory
// budget, showing the degradation ladder in action: unconstrained, shed
// fan-out bits, BHJ fallback, and — once even the build side alone exceeds
// the budget — spill-to-disk. The table's notes carry the governor's
// degradation events for each rung; budget 0 means unbounded.
func MemLadder(scale float64, budgets []int64, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	build, probe := spec.Tables()
	t := &Table{
		Title:  fmt.Sprintf("Memory ladder: RJ under shrinking budgets, workload A (scale %g)", scale),
		Header: []string{"budget", "throughput", "degradation events"},
	}
	spillDir, err := os.MkdirTemp("", "bench-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)
	for _, b := range budgets {
		label := "unbounded"
		if b > 0 {
			label = mb(b)
		}
		r, err := RunDBMS(build, probe, nil, DBMSOpts{
			Algo: plan.RJ, Threads: 0, Core: cfg, MemBudget: b, SpillDir: spillDir,
		})
		if err != nil {
			return nil, err
		}
		t.Add(label, mt(r.Throughput), itoa(len(r.Degraded)))
		t.NoteDegraded("RJ @ "+label, r)
	}
	return t, nil
}

// benchThreads is the parallelism for standalone baselines when the DBMS
// side runs at GOMAXPROCS (Threads: 0).
func benchThreads() int { return runtime.GOMAXPROCS(0) }
