// The acceptance soak of the query service: 32 concurrent closed-loop
// clients over mixed TPC-H traffic against a deliberately tight broker, so
// shedding stays active throughout. Serve itself fails the run if the drain
// is unclean or the broker pool does not balance to zero; the assertions
// here cover completion, shedding, and the plan-cache hit rate. External
// test package: bench cannot import tpch (tpch's experiments import bench).
package bench_test

import (
	"runtime"
	"testing"

	"partitionjoin/internal/bench"
	"partitionjoin/internal/tpch"
)

func TestServeSoak32Clients(t *testing.T) {
	// Shedding needs requests to genuinely interleave: with a single P and
	// sub-millisecond queries, handler goroutines run back to back and no
	// arrival ever finds both admission slots busy. Two Ps timeshare even a
	// one-core host preemptively, which restores the overlap.
	if runtime.GOMAXPROCS(0) < 2 {
		old := runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	const clients, iters = 32, 5
	_, out, err := bench.Serve(bench.ServeConfig{
		Catalog: tpch.ServeCatalog(0.002),
		Queries: tpch.ServeQueries(),
		Clients: clients,
		Iters:   iters,
		// Two queries at a time with no queueing slack: any arrival that
		// cannot run immediately is shed, so a 32-client burst keeps
		// overload active and every shed client must recover by retrying
		// with the server's suggested backoff.
		GlobalMem:      32 << 20,
		MaxConcurrency: 2,
		MaxWait:        -1,
		// The soak is about admission under load: cached replays skip the
		// broker, so the result cache must be off for queries to contend.
		NoResultCache: true,
	})
	if err != nil {
		t.Fatalf("serve soak: %v", err)
	}
	if want := clients * iters; out.Completed != want {
		t.Fatalf("completed %d queries, want %d", out.Completed, want)
	}
	if out.Sheds == 0 {
		t.Fatal("no sheds: the soak did not exercise overload")
	}
	// The warmup pass primes every distinct statement, so the measured loop
	// must run almost entirely on cached plans.
	if out.HitRate <= 0.9 {
		t.Fatalf("plan-cache hit rate %.2f, want > 0.9", out.HitRate)
	}
	t.Logf("soak: %d completed, %d sheds (%d retries), %.1f QPS, p95 %v, hit rate %.1f%%",
		out.Completed, out.Sheds, out.Retries, out.QPS, out.P95, out.HitRate*100)
}
