package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
)

// ServeConfig sizes the query-service load experiment. The generator is
// workload-agnostic — callers (joinbench, tests) supply the catalog and the
// statement mix, typically TPC-H via tpch.ServeCatalog/ServeQueries.
type ServeConfig struct {
	// Catalog is the served database (in-process runs only; ignored when
	// Addr targets a running daemon).
	Catalog sql.Catalog
	// Queries is the statement mix every client cycles through. After the
	// warmup pass the plan cache should serve (nearly) every request.
	Queries []string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Iters is the number of queries each client issues.
	Iters int
	// Addr, when non-empty, targets a running joind (e.g.
	// "http://127.0.0.1:7432") instead of booting an in-process server.
	Addr string
	// GlobalMem sizes the in-process broker pool; <= 0 uses a pool tight
	// enough that admission queues under the client count.
	GlobalMem int64
	// MaxConcurrency caps concurrently running queries on the in-process
	// broker (0 = unlimited); soak tests use it to force queueing.
	MaxConcurrency int
	// QueueDepth bounds the in-process admission queue (0 = Clients).
	QueueDepth int
	// MaxWait bounds admission queue waits before shedding (0 = 250ms,
	// negative = shed whenever a query cannot be admitted on arrival);
	// soak tests use it to keep shedding active under load.
	MaxWait time.Duration
	// Core tunes the in-process server's radix joins.
	Core core.Config
	// NoResultCache disables the in-process server's result cache. The
	// overload soak sets it: cached replays bypass admission entirely, so
	// with the cache on a warmed workload never queues and never sheds.
	NoResultCache bool
	// ResultCacheBytes sizes the in-process server's result cache
	// (0 = the server default).
	ResultCacheBytes int64
}

// ServeOutcome is the measured result of a Serve run, for harnesses that
// assert on it (the Table form is for humans).
type ServeOutcome struct {
	Completed   int
	Sheds       int64
	Retries     int64
	QPS         float64
	P50, P95    time.Duration
	P99         time.Duration
	CacheHits   int64
	CacheMisses int64
	HitRate     float64
	WallClock   time.Duration
	// Result-cache view of the measured loop: a hit means the rows were
	// replayed from the server's result cache without planning or
	// execution; the hit rate is hits over cache-visible requests.
	ResultCacheHits   int64
	ResultCacheMisses int64
	ResultCacheRate   float64
	// Serve-process allocation costs of the measured loop (in-process runs
	// only; zero when Addr targets a remote daemon, where the client and
	// server heaps are different processes): heap objects and bytes
	// allocated per completed query, from runtime.MemStats deltas.
	AllocsPerQuery float64
	BytesPerQuery  float64
}

// Serve runs the closed-loop query-service load experiment: Clients
// concurrent clients, each looping Iters times over mixed TPC-H statements
// against the service, retrying with the server's suggested backoff when
// shed. It measures end-to-end QPS and p50/p95/p99 latency and reads the
// plan-cache hit rate from /statsz. With Addr empty it boots an in-process
// server over an httptest listener, warms the plan cache with one pass, and
// drains at the end (leak assertions belong to the test harness around it).
func Serve(cfg ServeConfig) (*Table, *ServeOutcome, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if len(cfg.Queries) == 0 {
		return nil, nil, fmt.Errorf("bench serve: no queries configured")
	}
	base := cfg.Addr
	var srv *server.Server
	var ts *httptest.Server
	var broker *admit.Broker
	if base == "" {
		if len(cfg.Catalog) == 0 {
			return nil, nil, fmt.Errorf("bench serve: in-process run needs a catalog")
		}
		pool := cfg.GlobalMem
		if pool <= 0 {
			// Tight enough that a fleet of concurrent queries queues (and
			// some shed under bursts), loose enough that progress is steady.
			pool = 64 << 20
		}
		queueDepth := cfg.QueueDepth
		if queueDepth <= 0 {
			queueDepth = cfg.Clients
		}
		maxWait := cfg.MaxWait
		if maxWait == 0 {
			maxWait = 250 * time.Millisecond
		}
		broker = admit.NewBroker(admit.Config{
			GlobalMem:       pool,
			PerQueryDefault: pool / int64(max(2, cfg.Clients/2)),
			MaxConcurrency:  cfg.MaxConcurrency,
			QueueDepth:      queueDepth,
			MaxWait:         maxWait,
			StallWindow:     30 * time.Second,
		})
		defer broker.Close()
		srv = server.New(server.Config{
			Algo:             plan.BHJ,
			Core:             cfg.Core,
			Broker:           broker,
			NoResultCache:    cfg.NoResultCache,
			ResultCacheBytes: cfg.ResultCacheBytes,
		}, cfg.Catalog)
		ts = httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
	}

	queries := cfg.Queries
	warm := &server.Client{Base: base}
	ctx := context.Background()
	for _, q := range queries {
		if _, err := warm.Query(ctx, q); err != nil {
			if re, ok := err.(*server.RemoteError); ok && re.Overloaded() {
				continue // warmup best-effort; the measured loop retries
			}
			return nil, nil, fmt.Errorf("bench serve: warmup %q: %w", q, err)
		}
	}

	type clientTally struct {
		latencies []time.Duration
		sheds     int64
		retries   int64
		hits      int64
		misses    int64
		rcHits    int64
		rcMisses  int64
		err       error
	}
	tallies := make([]clientTally, cfg.Clients)
	// Allocation baseline for the measured loop. Only meaningful for
	// in-process runs, where client and server share one heap; a GC first
	// so leftover warmup garbage does not inflate the deltas.
	var memBefore runtime.MemStats
	if srv != nil {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			t := &tallies[ci]
			cl := &server.Client{Base: base}
			for it := 0; it < cfg.Iters; it++ {
				q := queries[(ci+it)%len(queries)]
				qs := time.Now()
				for {
					res, err := cl.Query(ctx, q)
					if err != nil {
						if re, ok := err.(*server.RemoteError); ok && re.Overloaded() {
							t.sheds++
							t.retries++
							backoff := re.RetryAfter
							if backoff <= 0 {
								backoff = 10 * time.Millisecond
							}
							if backoff > time.Second {
								backoff = time.Second
							}
							time.Sleep(backoff)
							continue
						}
						t.err = fmt.Errorf("client %d iter %d: %w", ci, it, err)
						return
					}
					if res.CacheHit() {
						t.hits++
					} else {
						t.misses++
					}
					switch res.ResultCache {
					case "hit":
						t.rcHits++
					case "miss":
						t.rcMisses++
					}
					break
				}
				t.latencies = append(t.latencies, time.Since(qs))
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	out := &ServeOutcome{WallClock: wall}
	var all []time.Duration
	for i := range tallies {
		t := &tallies[i]
		if t.err != nil {
			return nil, nil, fmt.Errorf("bench serve: %w", t.err)
		}
		all = append(all, t.latencies...)
		out.Sheds += t.sheds
		out.Retries += t.retries
		out.CacheHits += t.hits
		out.CacheMisses += t.misses
		out.ResultCacheHits += t.rcHits
		out.ResultCacheMisses += t.rcMisses
	}
	out.Completed = len(all)
	if srv != nil && out.Completed > 0 {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		out.AllocsPerQuery = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(out.Completed)
		out.BytesPerQuery = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(out.Completed)
	}
	if out.Completed > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		out.P50 = all[out.Completed/2]
		out.P95 = all[out.Completed*95/100]
		out.P99 = all[out.Completed*99/100]
		out.QPS = float64(out.Completed) / wall.Seconds()
	}
	if hm := out.CacheHits + out.CacheMisses; hm > 0 {
		out.HitRate = float64(out.CacheHits) / float64(hm)
	}
	if rc := out.ResultCacheHits + out.ResultCacheMisses; rc > 0 {
		out.ResultCacheRate = float64(out.ResultCacheHits) / float64(rc)
	}

	// Server-side truth: the /statsz snapshot (covers warmup too).
	st, err := (&server.Client{Base: base}).Statsz(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("bench serve: statsz: %w", err)
	}

	if srv != nil {
		if clean := srv.Drain(10 * time.Second); !clean {
			return nil, nil, fmt.Errorf("bench serve: drain grace exceeded with idle clients")
		}
		if inUse := broker.InUse(); inUse != 0 {
			return nil, nil, fmt.Errorf("bench serve: broker leaked %d reserved bytes after drain", inUse)
		}
	}

	tb := &Table{
		Title: fmt.Sprintf("Query service: %d closed-loop clients x %d queries (mixed TPC-H traffic)",
			cfg.Clients, cfg.Iters),
		Header: []string{"metric", "value"},
	}
	tb.Add("completed", itoa(out.Completed))
	tb.Add("QPS", fmt.Sprintf("%.1f", out.QPS))
	tb.Add("p50 latency", fmt.Sprintf("%.2f ms", ms(out.P50)))
	tb.Add("p95 latency", fmt.Sprintf("%.2f ms", ms(out.P95)))
	tb.Add("p99 latency", fmt.Sprintf("%.2f ms", ms(out.P99)))
	tb.Add("shed then retried", i64toa(out.Sheds))
	tb.Add("plan cache hit rate (client view)", fmt.Sprintf("%.1f%%", out.HitRate*100))
	tb.Add("plan cache hit rate (server lifetime)", fmt.Sprintf("%.1f%%", st.PlanCache.HitRate*100))
	tb.Add("plan cache size", itoa(st.PlanCache.Size))
	tb.Add("result cache hit rate (client view)", fmt.Sprintf("%.1f%%", out.ResultCacheRate*100))
	if st.ResultCache != nil {
		tb.Add("result cache hit rate (server lifetime)", fmt.Sprintf("%.1f%%", st.ResultCache.HitRate*100))
		tb.Add("result cache occupancy", fmt.Sprintf("%d entries, %s B of %s B",
			st.ResultCache.Entries, i64toa(st.ResultCache.Bytes), i64toa(st.ResultCache.CapBytes)))
	}
	if out.AllocsPerQuery > 0 {
		tb.Add("allocs/query (serve process)", fmt.Sprintf("%.0f", out.AllocsPerQuery))
		tb.Add("B/query (serve process)", fmt.Sprintf("%.0f", out.BytesPerQuery))
	}
	if st.Broker != nil {
		tb.Add("admissions", i64toa(st.Broker.Admits))
		tb.Add("sheds (server)", i64toa(st.Broker.Sheds))
		tb.Add("stall kills", i64toa(st.Broker.StallKills))
		tb.Add("pool in use after run", i64toa(st.Broker.InUse)+" B")
	}
	tb.Add("rows returned", i64toa(st.Meters.RowsReturned))
	tb.Add("wall clock", fmt.Sprintf("%.2f s", wall.Seconds()))
	return tb, out, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
