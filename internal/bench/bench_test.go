package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

func TestWorkloadShapes(t *testing.T) {
	a := WorkloadA(1.0 / 1024)
	if a.KeyType != storage.Int64 || a.BuildTuples*16 != a.ProbeTuples {
		t.Fatalf("workload A shape: %+v", a)
	}
	b := WorkloadB(1.0 / 1024)
	if b.KeyType != storage.Int32 || b.BuildTuples != b.ProbeTuples {
		t.Fatalf("workload B shape: %+v", b)
	}
	if b.BuildBytes() != int64(b.BuildTuples)*8 {
		t.Fatalf("workload B bytes: %d", b.BuildBytes())
	}
}

func TestTablesSelectivityIsRespected(t *testing.T) {
	spec := WorkloadA(1.0 / 1024)
	spec.Selectivity = 0.25
	build, probe := spec.Tables()
	if build.NumRows() != spec.BuildTuples || probe.NumRows() != spec.ProbeTuples {
		t.Fatal("cardinalities wrong")
	}
	inDomain := 0
	for _, k := range probe.Int64Col("fk") {
		if k < int64(spec.BuildTuples) {
			inDomain++
		}
	}
	got := float64(inDomain) / float64(spec.ProbeTuples)
	if got < 0.24 || got > 0.26 {
		t.Fatalf("matching fraction %.3f, want 0.25", got)
	}
}

func TestTablesInt32Workload(t *testing.T) {
	spec := WorkloadB(1.0 / 4096)
	build, probe := spec.Tables()
	if _, ok := build.ColByName("key").(*storage.Int32Column); !ok {
		t.Fatal("workload B build key is not int32")
	}
	if _, ok := probe.ColByName("fk").(*storage.Int32Column); !ok {
		t.Fatal("workload B probe key is not int32")
	}
}

func TestRelationsMatchTables(t *testing.T) {
	// The standalone arrays and the stored tables of one spec must
	// produce identical match counts.
	spec := WorkloadA(1.0 / 1024)
	spec.Selectivity = 0.5
	build, probe := spec.Tables()
	rbuild, rprobe := spec.Relations()
	bkeys := map[int64]int64{}
	for _, k := range build.Int64Col("key") {
		bkeys[k]++
	}
	var wantTables int64
	for _, k := range probe.Int64Col("fk") {
		wantTables += bkeys[k]
	}
	Runs = 1
	sres := RunStandalone(rbuild, rprobe, false, 2, 1<<19)
	// The random draws differ between Tables and Relations (independent
	// streams), but the match totals must be statistically close and the
	// DBMS joins must agree with the reference exactly.
	dres, err := RunDBMS(build, probe, nil, DBMSOpts{Algo: plan.BHJ, Threads: 2, Core: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Checksum != wantTables {
		t.Fatalf("DBMS join count %d, reference %d", dres.Checksum, wantTables)
	}
	ratio := float64(sres.Checksum) / float64(wantTables)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("standalone count %d far from table count %d", sres.Checksum, wantTables)
	}
}

func TestAllAlgorithmsAgreeOnChecksum(t *testing.T) {
	Runs = 1
	spec := WorkloadA(1.0 / 2048)
	spec.Selectivity = 0.3
	spec.PayloadCols = 2
	build, probe := spec.Tables()
	names := spec.PayNames()
	var ref int64
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
		for _, lm := range []bool{false, true} {
			res, err := RunDBMS(build, probe, names, DBMSOpts{Algo: algo, Threads: 2, LM: lm, Core: core.DefaultConfig()})
			if err != nil {
				t.Fatal(err)
			}
			if ref == 0 {
				ref = res.Checksum
			} else if res.Checksum != ref {
				t.Fatalf("%v lm=%v checksum %d != %d", algo, lm, res.Checksum, ref)
			}
		}
	}
}

func TestStarTablesAndPlanAgree(t *testing.T) {
	Runs = 1
	spec := WorkloadA(1.0 / 4096)
	dims, fact := StarTables(spec, 3)
	if fact.NumRows() != spec.ProbeTuples {
		t.Fatal("fact cardinality wrong")
	}
	for _, c := range fact.Cols {
		for _, v := range c.(*storage.Int64Column).Values {
			if v < 0 || v >= int64(spec.BuildTuples) {
				t.Fatalf("fk %d outside dimension domain", v)
			}
		}
	}
	var ref int64
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ} {
		for depth := 1; depth <= 3; depth++ {
			res, err := RunStar(dims, fact, depth, algo, 2, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if depth == 1 {
				if algo == plan.BHJ {
					ref = res.Checksum
				} else if res.Checksum != ref {
					t.Fatalf("star depth 1: %v disagrees", algo)
				}
			}
			if res.Throughput <= 0 {
				t.Fatal("non-positive throughput")
			}
		}
	}
}

func TestTable1Renders(t *testing.T) {
	tab := Table1(1.0 / 1024)
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "A" || tab.Rows[1][0] != "B" {
		t.Fatalf("table 1: %+v", tab.Rows)
	}
	lines := 0
	tab.Print(func(format string, args ...any) { lines++ })
	if lines != 5 { // title, header, separator, two rows
		t.Fatalf("printed %d lines", lines)
	}
}

func TestFig10PhasesPresent(t *testing.T) {
	tab, err := Fig10(1.0/8192, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, row := range tab.Rows {
		found[row[0]] = true
	}
	for _, phase := range []string{
		"partition pass 1 (build)", "partition pass 2 (build)",
		"partition pass 1 (probe)", "partition pass 2 (probe)",
	} {
		if !found[phase] {
			t.Fatalf("phase %q missing from %v", phase, tab.Rows)
		}
	}
	joinSeen := false
	for name := range found {
		if len(name) >= 4 && name[:4] == "join" {
			joinSeen = true
		}
	}
	if !joinSeen {
		t.Fatal("join phase missing")
	}
}

func TestDegradedEventsReachResultAndTable(t *testing.T) {
	Runs = 1
	spec := WorkloadA(1.0 / 1024)
	build, probe := spec.Tables()
	// A budget far below the build side forces the spill rung; the
	// degradation events must travel Result -> Table.Notes -> JSON.
	res, err := RunDBMS(build, probe, nil, DBMSOpts{
		Algo: plan.RJ, Threads: 2, Core: core.DefaultConfig(),
		MemBudget: 32 << 10, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("budgeted run recorded no degradation events")
	}
	spilled := false
	for _, ev := range res.Degraded {
		if strings.Contains(ev, "spill") {
			spilled = true
		}
	}
	if !spilled {
		t.Fatalf("no spill event among degradations: %v", res.Degraded)
	}
	tab := &Table{Title: "t", Header: []string{"a"}}
	tab.Add("row")
	tab.NoteDegraded("RJ", res)
	if len(tab.Notes) == 0 {
		t.Fatal("NoteDegraded added nothing")
	}
	lines := 0
	tab.Print(func(format string, args ...any) { lines++ })
	if lines != 4+len(tab.Notes) { // title, header, separator, row + notes
		t.Fatalf("printed %d lines with %d notes", lines, len(tab.Notes))
	}
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Notes) != len(tab.Notes) {
		t.Fatalf("JSON carries %d notes, want %d", len(decoded.Notes), len(tab.Notes))
	}
}
