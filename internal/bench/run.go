package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/standalone"
	"partitionjoin/internal/storage"
)

// Result is one measured join execution.
type Result struct {
	Algo       string
	Threads    int
	Seconds    float64
	Tuples     int64 // build + probe cardinality
	Throughput float64
	Checksum   int64
	// Degraded carries the memory governor's degradation events of the
	// reported (median) run: fan-out bits shed, BHJ fallbacks, partitions
	// spilled and reloaded. Empty for unbudgeted runs.
	Degraded []string
	// Adapt is the runtime adaptation summary of the reported run:
	// mid-build migrations, partition splits, reservation revisions.
	Adapt adapt.Stats
	// MemPeak is the governor's high-water mark of the reported run.
	MemPeak int64
}

// Runs is the number of repetitions per measurement; the median is
// reported, as in the paper ("at least five times and reported median").
// The harness exposes it so quick runs can lower it.
var Runs = 3

// median runs f Runs times and returns the run with median duration; a
// failing repetition aborts the measurement.
func median(f func() (Result, error)) (Result, error) {
	rs := make([]Result, 0, Runs)
	for i := 0; i < Runs; i++ {
		r, err := f()
		if err != nil {
			return Result{}, err
		}
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Seconds < rs[j].Seconds })
	return rs[len(rs)/2], nil
}

// medianInfallible adapts median for measurements that cannot fail.
func medianInfallible(f func() Result) Result {
	r, _ := median(func() (Result, error) { return f(), nil })
	return r
}

// checksum extracts the single aggregate row's first value, the
// cross-implementation agreement probe.
func checksum(res *plan.ExecResult) (int64, error) {
	if res.Result.NumRows() != 1 || len(res.Result.Vecs) == 0 {
		return 0, fmt.Errorf("bench: aggregate returned %d rows", res.Result.NumRows())
	}
	return res.Result.Vecs[0].I64[0], nil
}

// DBMSOpts configures a DBMS-integrated join run.
type DBMSOpts struct {
	Algo    plan.JoinAlgo
	Threads int
	LM      bool
	Core    core.Config
	// MemBudget and SpillDir forward to plan.Options: a positive budget
	// arms the memory governor, and a spill directory arms the
	// spill-to-disk rung of the degradation ladder.
	MemBudget int64
	SpillDir  string
	// NoAdapt disables runtime adaptation; EstimateScale corrupts every
	// plan-time cardinality estimate by the given factor (the estimate-error
	// sweep's independent variable).
	NoAdapt       bool
	EstimateScale float64
}

// joinQuery builds the microbenchmark query: the paper's
// "SELECT count(*) FROM probe r, build s WHERE r.k = s.k" for zero payload
// columns, or "SELECT sum(p1), ..." carrying every payload column when the
// sweep widens the probe tuples.
func joinQuery(build, probe *storage.Table, payNames []string, lm bool) plan.Node {
	var probeScan plan.Node
	probePay := payNames
	if lm && len(payNames) > 0 {
		probeScan = plan.ScanRowID(probe, "rid", "fk")
		probePay = []string{"rid"}
	} else {
		probeScan = plan.Scan(probe, append([]string{"fk"}, payNames...)...)
	}
	j := &plan.JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     plan.Scan(build, "key"),
		Probe:     probeScan,
		BuildKeys: []string{"key"}, ProbeKeys: []string{"fk"},
		ProbePay: probePay,
	}
	var joined plan.Node = j
	if lm && len(payNames) > 0 {
		joined = plan.LateLoad(j, probe, "rid", payNames...)
	}
	var aggs []plan.AggExpr
	if len(payNames) == 0 {
		aggs = []plan.AggExpr{{Kind: exec.AggCount, As: "n"}}
	} else {
		for _, p := range payNames {
			aggs = append(aggs, plan.AggExpr{Kind: exec.AggSumI, Col: p, As: "sum_" + p})
		}
	}
	return plan.GroupBy(joined, nil, aggs...)
}

// RunDBMS measures one DBMS-integrated join over pre-built tables.
func RunDBMS(build, probe *storage.Table, payNames []string, o DBMSOpts) (Result, error) {
	return median(func() (Result, error) {
		opts := plan.Options{Workers: o.Threads, Algo: o.Algo, Core: o.Core,
			MemBudget: o.MemBudget, SpillDir: o.SpillDir,
			NoAdapt: o.NoAdapt, EstimateScale: o.EstimateScale}
		root := joinQuery(build, probe, payNames, o.LM)
		start := time.Now()
		res, err := plan.ExecuteErr(context.Background(), opts, root)
		if err != nil {
			return Result{}, fmt.Errorf("bench %v: %w", o.Algo, err)
		}
		secs := time.Since(start).Seconds()
		sum, err := checksum(res)
		if err != nil {
			return Result{}, err
		}
		tuples := int64(build.NumRows() + probe.NumRows())
		return Result{
			Algo:       o.Algo.String(),
			Threads:    o.Threads,
			Seconds:    secs,
			Tuples:     tuples,
			Throughput: float64(tuples) / secs,
			Checksum:   sum,
			Degraded:   res.Degraded,
			Adapt:      res.Adapt,
			MemPeak:    res.MemPeak,
		}, nil
	})
}

// RunStandalone measures a Balkesen-style baseline over pre-built arrays.
func RunStandalone(build, probe *standalone.Relation, prj bool, threads int, cacheBudget int) Result {
	name := "NPJ"
	if prj {
		name = "PRJ"
	}
	return medianInfallible(func() Result {
		start := time.Now()
		var matches int64
		if prj {
			matches = standalone.PRJ(build, probe, threads, cacheBudget)
		} else {
			matches = standalone.NPJ(build, probe, threads)
		}
		secs := time.Since(start).Seconds()
		tuples := int64(build.N + probe.N)
		return Result{
			Algo:       name,
			Threads:    threads,
			Seconds:    secs,
			Tuples:     tuples,
			Throughput: float64(tuples) / secs,
			Checksum:   matches,
		}
	})
}

// StarTables builds the Figure 16 star schema: one fact table whose fk_i
// columns each reference a full copy of the build relation ("we added
// multiple copies of our build side table containing randomly permutated
// rows", 100% selectivity).
func StarTables(spec Spec, depth int) (dims []*storage.Table, fact *storage.Table) {
	base, _ := spec.Tables()
	dims = make([]*storage.Table, depth)
	for d := range dims {
		dims[d] = base
	}
	cols := make([]storage.ColumnDef, depth)
	for d := 0; d < depth; d++ {
		cols[d] = storage.ColumnDef{Name: fkName(d), Type: storage.Int64}
	}
	fact = storage.NewTable("fact", storage.NewSchema(cols...), spec.ProbeTuples)
	rng := newSplitRand(spec.Seed + 99)
	for d := 0; d < depth; d++ {
		col := fact.Cols[d].(*storage.Int64Column)
		for i := 0; i < spec.ProbeTuples; i++ {
			col.Values = append(col.Values, int64(rng.next()%uint64(spec.BuildTuples)))
		}
	}
	return dims, fact
}

func fkName(d int) string { return "fk" + string(rune('1'+d)) }

// splitRand is a tiny splitmix64 stream for bulk column fills.
type splitRand struct{ s uint64 }

func newSplitRand(seed int64) *splitRand { return &splitRand{s: uint64(seed)} }

func (r *splitRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StarPlan chains depth joins through one pipeline (Figure 16): each join's
// build side is a dimension copy; payloads accumulate so radix joins have
// to materialize ever-wider tuples while the BHJ streams them.
func StarPlan(dims []*storage.Table, fact *storage.Table, depth int) plan.Node {
	var node plan.Node
	fks := make([]string, depth)
	for d := 0; d < depth; d++ {
		fks[d] = fkName(d)
	}
	node = plan.Scan(fact, fks...)
	var carried []string
	for d := 0; d < depth; d++ {
		vname := "v" + string(rune('1'+d))
		probePay := append(append([]string{}, fks[d+1:]...), carried...)
		node = &plan.JoinNode{
			ID: d + 1, Kind: core.Inner,
			Build:     plan.Rename(plan.Scan(dims[d], "key", "pay"), "key", "k"+vname, "pay", vname),
			Probe:     node,
			BuildKeys: []string{"k" + vname}, ProbeKeys: []string{fks[d]},
			BuildPay: []string{vname},
			ProbePay: probePay,
		}
		carried = append(carried, vname)
	}
	var aggs []plan.AggExpr
	for _, v := range carried {
		aggs = append(aggs, plan.AggExpr{Kind: exec.AggSumI, Col: v, As: "sum_" + v})
	}
	return plan.GroupBy(node, nil, aggs...)
}

// RunStar measures the pipeline-depth workload and reports per-join
// throughput.
func RunStar(dims []*storage.Table, fact *storage.Table, depth int, algo plan.JoinAlgo, threads int, cfg core.Config) (Result, error) {
	return median(func() (Result, error) {
		opts := plan.Options{Workers: threads, Algo: algo, Core: cfg}
		start := time.Now()
		res, err := plan.ExecuteErr(context.Background(), opts, StarPlan(dims, fact, depth))
		if err != nil {
			return Result{}, fmt.Errorf("bench star %v: %w", algo, err)
		}
		secs := time.Since(start).Seconds()
		sum, err := checksum(res)
		if err != nil {
			return Result{}, err
		}
		// Per-join throughput: every join processes the fact stream plus
		// one dimension, and the chain takes secs/depth per join. A
		// pipeline-friendly join keeps this constant as depth grows
		// (Figure 16's y-axis).
		perJoin := int64(fact.NumRows() + dims[0].NumRows())
		return Result{
			Algo:       algo.String(),
			Threads:    threads,
			Seconds:    secs,
			Tuples:     perJoin * int64(depth),
			Throughput: float64(perJoin) * float64(depth) / secs,
			Checksum:   sum,
		}, nil
	})
}
