package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
)

// Soak runs the multi-query admission-control experiment: `queries`
// concurrent radix joins of workload A, each with `workers` threads, share
// one broker whose pool is deliberately smaller than the combined working
// sets. The acceptance bar is binary — every query either completes with
// the reference checksum or is shed with a retryable ErrOverloaded; a
// wrong answer, an unexpected error, or a non-zero pool balance at exit
// fails the experiment.
func Soak(scale float64, queries, workers int, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	build, probe := spec.Tables()
	root := joinQuery(build, probe, nil, false)

	// Reference run without a broker.
	ref, err := plan.ExecuteErr(context.Background(), plan.Options{Workers: workers, Algo: plan.RJ, Core: cfg}, root)
	if err != nil {
		return nil, err
	}
	want, err := checksum(ref)
	if err != nil {
		return nil, err
	}

	// Size the pool below the combined demand: every query asks for the
	// build side's bytes, the pool holds roughly a quarter of the total
	// demand, so most of the fleet queues and the per-query governor has
	// to degrade or spill once admitted.
	perQuery := int64(spec.BuildBytes())
	if perQuery < 1<<20 {
		perQuery = 1 << 20
	}
	pool := perQuery * int64(queries) / 4
	if pool < perQuery {
		pool = perQuery
	}
	broker := admit.NewBroker(admit.Config{
		GlobalMem:       pool,
		QueueDepth:      queries / 2,
		MaxWait:         30 * time.Second,
		StallWindow:     30 * time.Second,
		PerQueryDefault: perQuery,
	})
	defer broker.Close()

	spillDir, err := os.MkdirTemp("", "bench-soak-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	type outcome struct {
		err  error
		sum  int64
		wait time.Duration
		secs float64
	}
	outcomes := make([]outcome, queries)
	start := time.Now()
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			opts := plan.Options{
				Workers: workers, Algo: plan.RJ, Core: cfg,
				MemBudget: perQuery, SpillDir: spillDir, Broker: broker,
			}
			qs := time.Now()
			res, err := plan.ExecuteErr(context.Background(), opts, root)
			o := outcome{err: err, secs: time.Since(qs).Seconds()}
			if err == nil {
				o.sum, o.err = checksum(res)
				o.wait = res.AdmitWait
			}
			outcomes[q] = o
		}(q)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var done, shed int
	var maxWait time.Duration
	for q, o := range outcomes {
		switch {
		case o.err == nil && o.sum == want:
			done++
			if o.wait > maxWait {
				maxWait = o.wait
			}
		case o.err == nil:
			return nil, fmt.Errorf("bench soak: query %d returned checksum %d, want %d", q, o.sum, want)
		case errors.Is(o.err, admit.ErrOverloaded):
			shed++
		default:
			return nil, fmt.Errorf("bench soak: query %d failed: %w", q, o.err)
		}
	}
	if done == 0 {
		return nil, errors.New("bench soak: every query was shed; nothing completed")
	}
	if inUse := broker.InUse(); inUse != 0 {
		return nil, fmt.Errorf("bench soak: broker leaked %d reserved bytes at exit", inUse)
	}

	t := &Table{
		Title: fmt.Sprintf("Concurrency soak: %d queries x %d workers, pool %s < demand %s (scale %g)",
			queries, workers, mb(pool), mb(perQuery*int64(queries)), scale),
		Header: []string{"metric", "value"},
	}
	t.Add("completed correctly", itoa(done))
	t.Add("shed (ErrOverloaded)", itoa(shed))
	t.Add("admissions", i64toa(broker.Admits()))
	t.Add("watchdog kills", i64toa(broker.StallKills()))
	t.Add("max admission wait", fmt.Sprintf("%.1f ms", float64(maxWait.Microseconds())/1000))
	t.Add("wall clock", fmt.Sprintf("%.2f s", wall))
	t.Add("pool balance at exit", mb(broker.InUse()))
	return t, nil
}
