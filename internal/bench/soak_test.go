package bench

import (
	"testing"

	"partitionjoin/internal/core"
)

// TestConcurrencySoak is the acceptance gate for multi-query admission:
// a small-scale fleet against an undersized pool, every query correct or
// shed, pool balanced at exit. Run under -race by the soak target.
func TestConcurrencySoak(t *testing.T) {
	saved := Runs
	Runs = 1
	defer func() { Runs = saved }()
	tbl, err := Soak(1.0/256, 8, 2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		t.Logf("%s: %s", row[0], row[1])
	}
}
