// Package bench builds the microbenchmark workloads of the evaluation
// (Section 5.1.2, Table 1) and runs the parameter sweeps behind every
// figure and table of the paper. Workloads derive from Balkesen et al.'s A
// (8 B/8 B, 16M ⋈ 256M) and B (4 B/4 B, 128M ⋈ 128M), altered one factor at
// a time: foreign-key selectivity (Fig. 14), payload width (Fig. 15),
// pipeline depth (Fig. 16), and Zipf skew (Fig. 17).
package bench

import (
	"math/rand"

	"partitionjoin/internal/standalone"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/zipf"
)

// Spec describes one microbenchmark workload instance.
type Spec struct {
	Name        string
	BuildTuples int
	ProbeTuples int
	// KeyType is Int64 (8 B, workload A) or Int32 (4 B, workload B).
	KeyType storage.Type
	// PayloadCols is the number of extra 8 B integer columns on the
	// probe side (Section 5.4.2's payload sweep).
	PayloadCols int
	// Selectivity is the fraction of probe tuples with a build partner;
	// non-matching tuples get keys outside the build domain so the probe
	// cardinality is preserved (Section 5.4.1).
	Selectivity float64
	// Zipf skews the matching probe keys over the build domain
	// (Section 5.4.5); 0 is uniform.
	Zipf float64
	Seed int64
}

// WorkloadA returns Balkesen et al.'s workload A scaled by scale
// (16M ⋈ 256M tuples at scale 1).
func WorkloadA(scale float64) Spec {
	return Spec{
		Name:        "A",
		BuildTuples: scaledTuples(16*1024*1024, scale),
		ProbeTuples: scaledTuples(256*1024*1024, scale),
		KeyType:     storage.Int64,
		Selectivity: 1,
		Seed:        1,
	}
}

// WorkloadB returns workload B scaled by scale (128M ⋈ 128M 4-byte tuples
// at scale 1).
func WorkloadB(scale float64) Spec {
	return Spec{
		Name:        "B",
		BuildTuples: scaledTuples(128_000_000, scale),
		ProbeTuples: scaledTuples(128_000_000, scale),
		KeyType:     storage.Int32,
		Selectivity: 1,
		Seed:        2,
	}
}

func scaledTuples(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1024 {
		v = 1024
	}
	return v
}

// BuildBytes returns the build relation's key+payload volume.
func (s Spec) BuildBytes() int64 {
	return int64(s.BuildTuples) * int64(2*s.keyWidth())
}

// ProbeBytes returns the probe relation's volume including payload columns.
func (s Spec) ProbeBytes() int64 {
	return int64(s.ProbeTuples) * int64(2*s.keyWidth()+8*s.PayloadCols)
}

func (s Spec) keyWidth() int {
	if s.KeyType == storage.Int32 {
		return 4
	}
	return 8
}

// Tables materializes the workload as stored relations, reproducing the
// paper's setup ("CREATE TABLE b(key BIGINT NOT NULL, pay BIGINT NOT
// NULL)", INT for workload B): a dense unique build side and a probe side
// drawn per Selectivity and Zipf.
func (s Spec) Tables() (build, probe *storage.Table) {
	rng := rand.New(rand.NewSource(s.Seed))

	bcols := []storage.ColumnDef{
		{Name: "key", Type: s.KeyType},
		{Name: "pay", Type: s.KeyType},
	}
	build = storage.NewTable("build", storage.NewSchema(bcols...), s.BuildTuples)
	appendKV(build, 0, s.BuildTuples, func(i int) (int64, int64) {
		return int64(i), int64(i)
	})

	pcols := []storage.ColumnDef{
		{Name: "fk", Type: s.KeyType},
		{Name: "pay", Type: s.KeyType},
	}
	for p := 0; p < s.PayloadCols; p++ {
		pcols = append(pcols, storage.ColumnDef{Name: payName(p), Type: storage.Int64})
	}
	probe = storage.NewTable("probe", storage.NewSchema(pcols...), s.ProbeTuples)

	var zg *zipf.Generator
	if s.Zipf > 0 {
		zg = zipf.New(s.BuildTuples, s.Zipf, s.Seed+7)
	}
	matchEvery := 1.0
	if s.Selectivity < 1 {
		matchEvery = s.Selectivity
	}
	acc := 0.0
	appendKV(probe, 0, s.ProbeTuples, func(i int) (int64, int64) {
		acc += matchEvery
		var k int64
		if acc >= 1 {
			acc -= 1
			if zg != nil {
				k = int64(zg.Next())
			} else {
				k = int64(rng.Intn(s.BuildTuples))
			}
		} else {
			// Outside the build domain: never matches, same width.
			k = int64(s.BuildTuples + rng.Intn(s.BuildTuples))
		}
		return k, int64(i)
	})
	for p := 0; p < s.PayloadCols; p++ {
		col := probe.ColByName(payName(p)).(*storage.Int64Column)
		for i := 0; i < s.ProbeTuples; i++ {
			col.Values = append(col.Values, rng.Int63())
		}
	}
	return build, probe
}

func payName(p int) string { return "p" + string(rune('1'+p)) }

// PayNames returns the payload column names of the spec.
func (s Spec) PayNames() []string {
	out := make([]string, s.PayloadCols)
	for p := range out {
		out[p] = payName(p)
	}
	return out
}

// appendKV fills the first two columns of a two-plus-column table.
func appendKV(t *storage.Table, lo, hi int, f func(i int) (int64, int64)) {
	switch kc := t.Cols[0].(type) {
	case *storage.Int64Column:
		pc := t.Cols[1].(*storage.Int64Column)
		for i := lo; i < hi; i++ {
			k, v := f(i)
			kc.Values = append(kc.Values, k)
			pc.Values = append(pc.Values, v)
		}
	case *storage.Int32Column:
		pc := t.Cols[1].(*storage.Int32Column)
		for i := lo; i < hi; i++ {
			k, v := f(i)
			kc.Values = append(kc.Values, int32(k))
			pc.Values = append(pc.Values, int32(v))
		}
	}
}

// Relations materializes the workload as standalone row arrays for the
// Balkesen baselines (PRJ/NPJ).
func (s Spec) Relations() (build, probe *standalone.Relation) {
	ts := 16
	if s.KeyType == storage.Int32 {
		ts = 8
	}
	rng := rand.New(rand.NewSource(s.Seed))
	build = standalone.NewRelation(s.BuildTuples, ts)
	for i := 0; i < s.BuildTuples; i++ {
		build.SetTuple(i, uint64(i), uint64(i))
	}
	probe = standalone.NewRelation(s.ProbeTuples, ts)
	var zg *zipf.Generator
	if s.Zipf > 0 {
		zg = zipf.New(s.BuildTuples, s.Zipf, s.Seed+7)
	}
	matchEvery := s.Selectivity
	acc := 0.0
	for i := 0; i < s.ProbeTuples; i++ {
		acc += matchEvery
		var k uint64
		if acc >= 1 {
			acc -= 1
			if zg != nil {
				k = uint64(zg.Next())
			} else {
				k = uint64(rng.Intn(s.BuildTuples))
			}
		} else {
			k = uint64(s.BuildTuples + rng.Intn(s.BuildTuples))
		}
		probe.SetTuple(i, k, uint64(i))
	}
	return build, probe
}
