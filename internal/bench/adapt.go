package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
)

// AdaptSweep is the estimate-error experiment behind `joinbench -exp adapt`:
// it corrupts every plan-time cardinality estimate by a factor (1/16x .. 16x)
// and measures how far the resulting runs drift from the correctly-planned
// oracle. The budget is sized so that at truth nothing fits resident — the
// oracle's correct answer is a radix join spilling to disk. Underestimates
// make the plan-time ladder fall back to the BHJ ("the build looks tiny, do
// not partition"); the adaptive run must then detect the overrun mid-build
// and migrate to radix partitions, while the static run blows straight past
// the budget — the cliff this experiment exists to show the absence of.
//
// Three runs per error factor: the oracle (true estimates, adaptation off),
// static (corrupted estimates, adaptation off), and adaptive (corrupted
// estimates, adaptation on). All three must agree on the checksum; the
// adaptive run is expected to stay within 1.5x of the oracle's wall clock
// and within the oracle's memory envelope, at every point of the sweep.
func AdaptSweep(scale float64, errs []float64, cfg core.Config) (*Table, error) {
	spec := WorkloadA(scale)
	build, probe := spec.Tables()
	// Half the raw build bytes: the planner's build-only projection (packed
	// rows, what a truthful estimate reports) is 2x this budget, so the
	// correctly-planned oracle partitions and spills — while a >=4x
	// underestimate shrinks the projection under the budget and sends the
	// static plan down the BHJ path, whose real footprint (rows + directory
	// + entries, ~6.8x the budget) blows straight past it.
	budget := spec.BuildBytes() / 2
	spillDir, err := os.MkdirTemp("", "bench-adapt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	t := &Table{
		Title: fmt.Sprintf("Adaptation: estimate-error sweep, workload A (scale %g, budget %s)",
			scale, mb(budget)),
		Header: []string{"estimate err", "oracle", "static", "adaptive",
			"adaptive/oracle", "static peak", "adaptive peak", "adaptations"},
	}

	oracle, err := RunDBMS(build, probe, nil, DBMSOpts{
		Algo: plan.RJ, Core: cfg, MemBudget: budget, SpillDir: spillDir, NoAdapt: true,
	})
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		static, err := RunDBMS(build, probe, nil, DBMSOpts{
			Algo: plan.RJ, Core: cfg, MemBudget: budget, SpillDir: spillDir,
			NoAdapt: true, EstimateScale: e,
		})
		if err != nil {
			return nil, err
		}
		adaptive, err := RunDBMS(build, probe, nil, DBMSOpts{
			Algo: plan.RJ, Core: cfg, MemBudget: budget, SpillDir: spillDir,
			EstimateScale: e,
		})
		if err != nil {
			return nil, err
		}
		if static.Checksum != oracle.Checksum || adaptive.Checksum != oracle.Checksum {
			return nil, fmt.Errorf("bench adapt: checksum diverged at estimate error %gx", e)
		}
		a := adaptive.Adapt
		t.Add(fmt.Sprintf("%gx", e),
			mt(oracle.Throughput), mt(static.Throughput), mt(adaptive.Throughput),
			f2(oracle.Throughput/adaptive.Throughput),
			mb(static.MemPeak), mb(adaptive.MemPeak),
			fmt.Sprintf("%dm/%ds/%dr", a.Migrations, a.Splits, a.Revisions()))
		for _, ev := range a.Events {
			t.Notes = append(t.Notes, fmt.Sprintf("%gx: %s", e, ev))
		}
	}
	return t, nil
}

// trajectoryEntry is one run appended to a BENCH_<exp>.json file.
type trajectoryEntry struct {
	WrittenAt string     `json:"written_at"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
}

// WriteTrajectory appends the table to dir/BENCH_<exp>.json, creating the
// file on first use. Each file holds a JSON array of timestamped runs, so
// successive joinbench invocations build a performance trajectory that diffs
// and plots cleanly across commits.
func WriteTrajectory(dir, exp string, t *Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	var entries []trajectoryEntry
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return "", fmt.Errorf("bench: corrupt trajectory %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return "", err
	}
	entries = append(entries, trajectoryEntry{
		WrittenAt: time.Now().UTC().Format(time.RFC3339),
		Title:     t.Title,
		Header:    t.Header,
		Rows:      t.Rows,
		Notes:     t.Notes,
	})
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
