package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partitionjoin/internal/hashx"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 1)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = hashx.U64(rng.Uint64())
		f.Insert(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for inserted key %x", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(seeds []uint64) bool {
		f := New(len(seeds), 1)
		for _, s := range seeds {
			f.Insert(hashx.U64(s))
		}
		for _, s := range seeds {
			if !f.MayContain(hashx.U64(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	const n = 1 << 16
	f := New(n, 1)
	for i := uint64(0); i < n; i++ {
		f.Insert(hashx.U64(i))
	}
	fp := 0
	const probes = 1 << 16
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(hashx.U64(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Register-blocked filters trade some precision for single-block
	// probes; at 8 bits/key the rate should still be low single digits.
	if rate > 0.08 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestMinBlocksRespected(t *testing.T) {
	f := New(1, 64)
	if f.Blocks() < 64 {
		t.Fatalf("got %d blocks, want >= 64", f.Blocks())
	}
	if f.Blocks()&(f.Blocks()-1) != 0 {
		t.Fatalf("block count %d not a power of two", f.Blocks())
	}
}

func TestPartitionDisjointBlocks(t *testing.T) {
	// The BRJ writes the filter from concurrent pass-2 tasks, one per
	// pre-partition p1 = h & (F1-1). Verify the block index preserves
	// that: keys of different pre-partitions map to different blocks.
	const f1 = 64
	f := New(1<<16, f1)
	for i := uint64(0); i < 1<<16; i++ {
		h := hashx.U64(i)
		block := h & uint64(f.Blocks()-1)
		if block&(f1-1) != h&(f1-1) {
			t.Fatalf("block %d of hash %x not aligned with pre-partition %d",
				block, h, h&(f1-1))
		}
	}
}

func TestEmptyFilterContainsNothingMuch(t *testing.T) {
	f := New(1024, 1)
	hits := 0
	for i := uint64(0); i < 1024; i++ {
		if f.MayContain(hashx.U64(i)) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty filter reported %d hits", hits)
	}
	if f.FillRatio() != 0 {
		t.Fatalf("empty filter fill ratio %f", f.FillRatio())
	}
}
