// Package bloom implements the register-blocked Bloom filter of Lang et al.
// used by the Bloom-filtered radix join (Section 4.7). The filter is split
// into register-sized 64-bit blocks; each probe touches exactly one block,
// so a membership check costs at most one cache miss. Because the block
// index is derived from the same low hash bits that select the radix
// partition, two partitions can never share a block, and the filter can be
// written during the partition pass without synchronization.
package bloom

import "math/bits"

// sectorBits is the number of bits set per inserted key. Lang et al. find
// k in the 4-8 range optimal for register-blocked filters at the false
// positive rates relevant to semi-join reduction.
const sectorBits = 4

// Filter is a register-blocked Bloom filter over 64-bit hashes.
type Filter struct {
	words    []uint64
	wordMask uint64
}

// New sizes a filter for n expected keys at roughly 8 bits per key, rounded
// up to a power-of-two number of 64-bit blocks (minimum 1 block). minBlocks
// forces at least that many blocks so that callers can guarantee
// partition-disjoint block ranges (blocks >= radix fan-out).
func New(n int, minBlocks int) *Filter {
	blocks := (n*8 + 63) / 64
	if blocks < minBlocks {
		blocks = minBlocks
	}
	if blocks < 1 {
		blocks = 1
	}
	// Round up to a power of two so the block index is a mask.
	if blocks&(blocks-1) != 0 {
		blocks = 1 << bits.Len(uint(blocks))
	}
	return &Filter{words: make([]uint64, blocks), wordMask: uint64(blocks - 1)}
}

// mask derives the in-block bit pattern from the upper hash bits: four
// 6-bit sectors select four of the 64 bit positions. The low bits are left
// to the block index (and the radix partitioner), keeping the two decisions
// independent.
func mask(h uint64) uint64 {
	h >>= 32
	m := uint64(1) << (h & 63)
	m |= uint64(1) << ((h >> 6) & 63)
	m |= uint64(1) << ((h >> 12) & 63)
	m |= uint64(1) << ((h >> 18) & 63)
	return m
}

// Insert adds a hash to the filter. Not safe for concurrent writers to the
// same block; the radix join guarantees block-disjoint writers instead of
// paying for atomics.
func (f *Filter) Insert(h uint64) {
	f.words[h&f.wordMask] |= mask(h)
}

// MayContain reports whether the hash may have been inserted. False
// positives are possible; false negatives are not.
func (f *Filter) MayContain(h uint64) bool {
	m := mask(h)
	return f.words[h&f.wordMask]&m == m
}

// Blocks returns the number of 64-bit blocks, for sizing diagnostics.
func (f *Filter) Blocks() int { return len(f.words) }

// SizeBytes returns the filter's memory footprint.
func (f *Filter) SizeBytes() int { return len(f.words) * 8 }

// FillRatio reports the fraction of set bits, a quick health check for the
// adaptive pass-rate logic and for tests.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.words)*64)
}
