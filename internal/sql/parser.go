package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AST types for the supported subset.

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   []Cond
	GroupBy []ColRefAST
	OrderBy []OrderItem
	Limit   int // 0 = none
}

// SelectItem is one output expression.
type SelectItem struct {
	Agg  string    // "", "count", "sum", "min", "max", "avg"
	Star bool      // count(*)
	Col  ColRefAST // aggregate argument or plain column
	As   string
}

// TableRef names a relation with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// ColRefAST is a possibly-qualified column reference.
type ColRefAST struct {
	Qualifier string
	Column    string
}

func (c ColRefAST) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}

// Cond is one conjunct of the WHERE clause.
type Cond struct {
	Left  ColRefAST
	Op    string // = < > <= >= <> like between in
	Right ColRefAST
	// IsJoin marks column-to-column conditions.
	IsJoin bool
	// Literal operands for filters.
	Num     int64
	Str     string
	IsStr   bool
	Num2    int64 // BETWEEN upper bound
	StrList []string
	NumList []int64
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRefAST
	Desc bool
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", strings.ToUpper(kw), p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.atKeyword("where") {
		p.pos++
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, c)
			if !p.atKeyword("and") {
				break
			}
			p.pos++
		}
	}
	if p.atKeyword("group") {
		p.pos++
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.atKeyword("order") {
		p.pos++
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.atKeyword("desc") {
				item.Desc = true
				p.pos++
			} else if p.atKeyword("asc") {
				p.pos++
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.atKeyword("limit") {
		p.pos++
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return SelectItem{}, fmt.Errorf("sql: expected select expression, got %q", t.text)
	}
	lower := strings.ToLower(t.text)
	switch lower {
	case "count", "sum", "min", "max", "avg":
		p.pos++
		if !p.acceptPunct("(") {
			return SelectItem{}, fmt.Errorf("sql: expected ( after %s", lower)
		}
		item := SelectItem{Agg: lower}
		if p.acceptPunct("*") {
			if lower != "count" {
				return SelectItem{}, fmt.Errorf("sql: %s(*) is not supported", lower)
			}
			item.Star = true
		} else {
			c, err := p.colRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = c
		}
		if !p.acceptPunct(")") {
			return SelectItem{}, fmt.Errorf("sql: expected ) in aggregate")
		}
		item.As = p.alias(defaultAggName(item))
		return item, nil
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c, As: p.alias(c.Column)}, nil
}

func defaultAggName(item SelectItem) string {
	if item.Star {
		return "count"
	}
	return item.Agg + "_" + item.Col.Column
}

// alias handles an optional AS name (or bare trailing identifier that is
// not a keyword).
func (p *parser) alias(def string) string {
	if p.atKeyword("as") {
		p.pos++
		return p.next().text
	}
	return def
}

func (p *parser) colRef() (ColRefAST, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColRefAST{}, fmt.Errorf("sql: expected column, got %q", t.text)
	}
	if p.acceptPunct(".") {
		c := p.next()
		if c.kind != tokIdent {
			return ColRefAST{}, fmt.Errorf("sql: expected column after %s., got %q", t.text, c.text)
		}
		return ColRefAST{Qualifier: t.text, Column: c.text}, nil
	}
	return ColRefAST{Column: t.text}, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name, got %q", t.text)
	}
	ref := TableRef{Table: t.text, Alias: t.text}
	if p.cur().kind == tokIdent && !isClauseKeyword(p.cur().text) {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "group", "order", "limit", "and", "on", "as":
		return true
	}
	return false
}

func (p *parser) cond() (Cond, error) {
	left, err := p.colRef()
	if err != nil {
		return Cond{}, err
	}
	if p.atKeyword("like") || p.atKeyword("not") {
		notLike := p.atKeyword("not")
		p.pos++
		if notLike {
			if err := p.expectKeyword("like"); err != nil {
				return Cond{}, err
			}
		}
		t := p.next()
		if t.kind != tokString {
			return Cond{}, fmt.Errorf("sql: LIKE needs a string pattern")
		}
		op := "like"
		if notLike {
			op = "notlike"
		}
		return Cond{Left: left, Op: op, Str: t.text, IsStr: true}, nil
	}
	if p.atKeyword("between") {
		p.pos++
		lo := p.next()
		if err := p.expectKeyword("and"); err != nil {
			return Cond{}, err
		}
		hi := p.next()
		nlo, err1 := strconv.ParseInt(lo.text, 10, 64)
		nhi, err2 := strconv.ParseInt(hi.text, 10, 64)
		if err1 != nil || err2 != nil {
			return Cond{}, fmt.Errorf("sql: BETWEEN needs integer bounds")
		}
		return Cond{Left: left, Op: "between", Num: nlo, Num2: nhi}, nil
	}
	if p.atKeyword("in") {
		p.pos++
		if !p.acceptPunct("(") {
			return Cond{}, fmt.Errorf("sql: IN needs a list")
		}
		c := Cond{Left: left, Op: "in"}
		for {
			t := p.next()
			switch t.kind {
			case tokString:
				c.StrList = append(c.StrList, t.text)
				c.IsStr = true
			case tokNumber:
				n, err := strconv.ParseInt(t.text, 10, 64)
				if err != nil {
					return Cond{}, err
				}
				c.NumList = append(c.NumList, n)
			default:
				return Cond{}, fmt.Errorf("sql: bad IN element %q", t.text)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(")") {
			return Cond{}, fmt.Errorf("sql: expected ) closing IN list")
		}
		return c, nil
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return Cond{}, fmt.Errorf("sql: expected operator, got %q", opTok.text)
	}
	t := p.cur()
	switch t.kind {
	case tokIdent:
		right, err := p.colRef()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Left: left, Op: opTok.text, Right: right, IsJoin: true}, nil
	case tokNumber:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Cond{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Cond{Left: left, Op: opTok.text, Num: n}, nil
	case tokString:
		p.pos++
		return Cond{Left: left, Op: opTok.text, Str: t.text, IsStr: true}, nil
	}
	return Cond{}, fmt.Errorf("sql: bad right-hand side %q", t.text)
}
