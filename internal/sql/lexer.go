// Package sql implements the SQL frontend subset of the DBMS substrate:
// enough of SELECT-FROM-WHERE-GROUP BY-ORDER BY-LIMIT to express the
// paper's microbenchmark statements ("SELECT count(*) FROM probe r, build s
// WHERE r.k = s.k", the payload-sum variants, and simple analytics). The
// planner lowers parsed queries onto the plan layer: filters are pushed
// into scans, cross-table equalities become hash-join keys with the later
// relation as build side, and aggregates map onto the vectorized sinks.
package sql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation: , ( ) * .
	tokOp    // = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input; keywords stay as idents (the parser matches
// case-insensitively).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' ||
				l.src[l.pos] == '.' || l.src[l.pos] == '-' && l.pos == start) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case c == '\'':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sql: unterminated string at %d", start)
			}
			l.toks = append(l.toks, token{tokString, l.src[start:l.pos], start})
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case strings.ContainsRune(",()*.", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		case c == '=':
			l.emit(tokOp, "=")
			l.pos++
		case c == '<':
			if l.peek(1) == '=' {
				l.emit(tokOp, "<=")
				l.pos += 2
			} else if l.peek(1) == '>' {
				l.emit(tokOp, "<>")
				l.pos += 2
			} else {
				l.emit(tokOp, "<")
				l.pos++
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit(tokOp, ">=")
				l.pos += 2
			} else {
				l.emit(tokOp, ">")
				l.pos++
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r', ';':
			l.pos++
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '@'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
