package sql

import (
	"testing"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

func testCatalog() Catalog {
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "pay", Type: storage.Int64},
		storage.ColumnDef{Name: "name", Type: storage.String, StrCap: 16},
	)
	build := storage.NewTable("build", bs, 100)
	bk := build.Cols[0].(*storage.Int64Column)
	bp := build.Cols[1].(*storage.Int64Column)
	bn := build.Cols[2].(*storage.StringColumn)
	for i := 0; i < 100; i++ {
		bk.Values = append(bk.Values, int64(i))
		bp.Values = append(bp.Values, int64(i)*10)
		if i%2 == 0 {
			bn.AppendString("even")
		} else {
			bn.AppendString("odd")
		}
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, 1000)
	pk := probe.Cols[0].(*storage.Int64Column)
	pv := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < 1000; i++ {
		pk.Values = append(pk.Values, int64(i%100))
		pv.Values = append(pv.Values, int64(i))
	}
	return Catalog{"build": build, "probe": probe}
}

func run(t *testing.T, q string) *plan.ExecResult {
	t.Helper()
	res, err := Run(testCatalog(), q, plan.DefaultOptions())
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestPaperCountQuery(t *testing.T) {
	// The exact statement of Section 5.2 (modulo identifiers).
	res := run(t, "SELECT count(*) FROM probe r, build s WHERE r.k = s.k")
	if got := res.MustScalarI64(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
}

func TestPaperSumQuery(t *testing.T) {
	res := run(t, "SELECT sum(s.pay) FROM probe r, build s WHERE r.k = s.k")
	var want int64
	for i := 0; i < 1000; i++ {
		want += int64(i%100) * 10
	}
	if got := res.MustScalarI64(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestFilterPushdown(t *testing.T) {
	res := run(t, "SELECT count(*) FROM probe r, build s WHERE r.k = s.k AND s.pay < 100")
	if got := res.MustScalarI64(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
}

func TestStringFilterAndLike(t *testing.T) {
	res := run(t, "SELECT count(*) FROM build WHERE name = 'even'")
	if got := res.MustScalarI64(); got != 50 {
		t.Fatalf("= filter: %d, want 50", got)
	}
	res = run(t, "SELECT count(*) FROM build WHERE name LIKE 'e%'")
	if got := res.MustScalarI64(); got != 50 {
		t.Fatalf("like: %d, want 50", got)
	}
	res = run(t, "SELECT count(*) FROM build WHERE name NOT LIKE '%dd'")
	if got := res.MustScalarI64(); got != 50 {
		t.Fatalf("not like: %d, want 50", got)
	}
}

func TestGroupByOrderLimit(t *testing.T) {
	res := run(t, "SELECT name, count(*) AS n, sum(pay) AS s FROM build GROUP BY name ORDER BY name LIMIT 1")
	if res.Result.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Result.NumRows())
	}
	if string(res.Result.Vecs[0].Str[0]) != "even" {
		t.Fatalf("first group = %q", res.Result.Vecs[0].Str[0])
	}
	if res.Result.Vecs[1].I64[0] != 50 {
		t.Fatalf("n = %d", res.Result.Vecs[1].I64[0])
	}
}

func TestBetweenAndIn(t *testing.T) {
	res := run(t, "SELECT count(*) FROM build WHERE k BETWEEN 10 AND 19")
	if got := res.MustScalarI64(); got != 10 {
		t.Fatalf("between: %d", got)
	}
	res = run(t, "SELECT count(*) FROM build WHERE k IN (1, 2, 3)")
	if got := res.MustScalarI64(); got != 3 {
		t.Fatalf("in: %d", got)
	}
	res = run(t, "SELECT count(*) FROM build WHERE name IN ('even')")
	if got := res.MustScalarI64(); got != 50 {
		t.Fatalf("in strings: %d", got)
	}
}

func TestPlainProjection(t *testing.T) {
	res := run(t, "SELECT pay, k FROM build WHERE k < 3 ORDER BY k")
	if res.Result.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Result.NumRows())
	}
	// Projection order: pay first.
	if res.Result.Vecs[0].I64[1] != 10 || res.Result.Vecs[1].I64[1] != 1 {
		t.Fatalf("row 1 = (%d,%d)", res.Result.Vecs[0].I64[1], res.Result.Vecs[1].I64[1])
	}
}

func TestJoinAlgoSelectableViaOptions(t *testing.T) {
	for _, algo := range []plan.JoinAlgo{plan.BHJ, plan.RJ, plan.BRJ} {
		opts := plan.DefaultOptions()
		opts.Algo = algo
		res, err := Run(testCatalog(), "SELECT count(*) FROM probe r, build s WHERE r.k = s.k", opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.MustScalarI64() != 1000 {
			t.Fatalf("%v: wrong count %d", algo, res.MustScalarI64())
		}
	}
}

func TestErrorMessages(t *testing.T) {
	cases := []string{
		"SELECT count(*) FROM nosuch",
		"SELECT count(*) FROM probe, build",                     // no join condition
		"SELECT count(*) FROM probe WHERE bogus = 1",            // unknown column
		"SELECT count(*) FROM probe r, build s WHERE r.k < s.k", // non-equi join
		"SELECT nope(*) FROM probe",
	}
	for _, q := range cases {
		if _, err := Run(testCatalog(), q, plan.DefaultOptions()); err == nil {
			t.Errorf("query %q should have failed", q)
		}
	}
}

func TestParserAliases(t *testing.T) {
	stmt, err := Parse("SELECT sum(v) AS total FROM probe p WHERE v > 5 GROUP BY k ORDER BY total DESC LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].As != "total" || stmt.From[0].Alias != "p" || stmt.Limit != 7 {
		t.Fatalf("parse: %+v", stmt)
	}
	if !stmt.OrderBy[0].Desc {
		t.Fatal("DESC not parsed")
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	// k exists in both tables.
	_, err := Run(testCatalog(), "SELECT count(*) FROM probe r, build s WHERE k = 1 AND r.k = s.k", plan.DefaultOptions())
	if err == nil {
		t.Fatal("ambiguous column accepted")
	}
}
