package sql

import (
	"context"
	"fmt"
	"strings"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

// Catalog resolves table names for the planner.
type Catalog map[string]*storage.Table

// Plan lowers a parsed statement onto the plan layer. Tables join in FROM
// order: the first relation streams through the pipeline and each further
// relation becomes the build side of one hash join, connected by the
// equality conditions of the WHERE clause — the shape the paper's
// microbenchmark statements assume.
func Plan(cat Catalog, stmt *SelectStmt) (plan.Node, error) {
	pl := &planner{cat: cat, stmt: stmt}
	return pl.plan()
}

// Run parses, plans, and executes a query.
func Run(cat Catalog, query string, opts plan.Options) (*plan.ExecResult, error) {
	return RunCtx(context.Background(), cat, query, opts)
}

// RunCtx is Run with a caller-supplied context, so queries can be cancelled
// or given deadlines (cmd/sqlrun's -timeout flag).
func RunCtx(ctx context.Context, cat Catalog, query string, opts plan.Options) (*plan.ExecResult, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	root, err := Plan(cat, stmt)
	if err != nil {
		return nil, err
	}
	return plan.ExecuteErr(ctx, opts, root)
}

// Prepare parses, plans, and compiles a query into a reusable plan: the
// expensive front half runs once and the returned Prepared executes many
// times, concurrently — the unit the query service's plan cache stores.
// Only the plan-shaping option gates (NoScanPushdown, NoDictCodes) matter
// here; execution-time options are supplied per ExecuteErr call.
func Prepare(cat Catalog, query string, opts plan.Options) (*plan.Prepared, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	root, err := Plan(cat, stmt)
	if err != nil {
		return nil, err
	}
	return plan.PrepareErr(opts, root)
}

type tableInfo struct {
	ref   TableRef
	table *storage.Table
	// cols are the storage columns this query touches.
	cols map[string]bool
	// filters are the single-table conjuncts pushed into the scan.
	filters []Cond
	joined  bool
}

type planner struct {
	cat    Catalog
	stmt   *SelectStmt
	tables []*tableInfo
}

// qname is the qualified internal column name "alias.col".
func qname(alias, col string) string { return alias + "." + col }

func (p *planner) plan() (plan.Node, error) {
	// Resolve FROM.
	for _, ref := range p.stmt.From {
		t, ok := p.cat[strings.ToLower(ref.Table)]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
		}
		p.tables = append(p.tables, &tableInfo{ref: ref, table: t, cols: map[string]bool{}})
	}

	// Resolve every column reference and collect per-table usage.
	need := func(c ColRefAST) (string, error) {
		ti, err := p.resolve(c)
		if err != nil {
			return "", err
		}
		ti.cols[c.Column] = true
		return qname(ti.ref.Alias, c.Column), nil
	}
	type resolvedCond struct {
		cond        Cond
		left, right string
		leftT       *tableInfo
		rightT      *tableInfo
	}
	var joins []resolvedCond
	for _, c := range p.stmt.Where {
		lt, err := p.resolve(c.Left)
		if err != nil {
			return nil, err
		}
		if c.IsJoin {
			rt, err := p.resolve(c.Right)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				// Same-table comparison: scan-level filter.
				lt.cols[c.Left.Column] = true
				lt.cols[c.Right.Column] = true
				lt.filters = append(lt.filters, c)
				continue
			}
			if c.Op != "=" {
				return nil, fmt.Errorf("sql: only equality joins are supported, got %q", c.Op)
			}
			lt.cols[c.Left.Column] = true
			rt.cols[c.Right.Column] = true
			joins = append(joins, resolvedCond{cond: c,
				left: qname(lt.ref.Alias, c.Left.Column), right: qname(rt.ref.Alias, c.Right.Column),
				leftT: lt, rightT: rt})
			continue
		}
		lt.cols[c.Left.Column] = true
		lt.filters = append(lt.filters, c)
	}
	for _, it := range p.stmt.Items {
		if it.Star {
			continue
		}
		if _, err := need(it.Col); err != nil {
			return nil, err
		}
	}
	for _, g := range p.stmt.GroupBy {
		if _, err := need(g); err != nil {
			return nil, err
		}
	}

	// Build one filtered, renamed scan per table.
	scans := make([]plan.Node, len(p.tables))
	for i, ti := range p.tables {
		var cols, renames []string
		for c := range ti.cols {
			cols = append(cols, c)
		}
		// Deterministic order.
		sortStrings(cols)
		node := plan.Node(plan.Scan(ti.table, cols...))
		for _, f := range ti.filters {
			pred, err := condPred(ti, f)
			if err != nil {
				return nil, err
			}
			node = plan.Filter(node, pred)
		}
		for _, c := range cols {
			renames = append(renames, c, qname(ti.ref.Alias, c))
		}
		node = plan.Rename(node, renames...)
		scans[i] = node
	}

	// Join in FROM order.
	cur := scans[0]
	p.tables[0].joined = true
	carried := colNames(cur.Columns())
	for i := 1; i < len(p.tables); i++ {
		ti := p.tables[i]
		var buildKeys, probeKeys []string
		for _, jc := range joins {
			switch {
			case jc.rightT == ti && jc.leftT.joined:
				buildKeys = append(buildKeys, jc.right)
				probeKeys = append(probeKeys, jc.left)
			case jc.leftT == ti && jc.rightT.joined:
				buildKeys = append(buildKeys, jc.left)
				probeKeys = append(probeKeys, jc.right)
			}
		}
		if len(buildKeys) == 0 {
			return nil, fmt.Errorf("sql: no join condition connects %s; cross products are not supported",
				ti.ref.Alias)
		}
		buildPay := remove(colNames(scans[i].Columns()), buildKeys)
		j := &plan.JoinNode{
			ID: i, Kind: core.Inner,
			Build: scans[i], Probe: cur,
			BuildKeys: buildKeys, ProbeKeys: probeKeys,
			BuildPay: buildPay,
			ProbePay: carried,
		}
		cur = j
		ti.joined = true
		carried = colNames(cur.Columns())
	}

	// Aggregation.
	hasAgg := false
	for _, it := range p.stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	var outNames []string
	if hasAgg || len(p.stmt.GroupBy) > 0 {
		var keys []string
		for _, g := range p.stmt.GroupBy {
			ti, _ := p.resolve(g)
			keys = append(keys, qname(ti.ref.Alias, g.Column))
		}
		var aggs []plan.AggExpr
		for _, it := range p.stmt.Items {
			if it.Agg == "" {
				// Must be a grouping key; emitted via keys.
				continue
			}
			spec := plan.AggExpr{As: it.As}
			var colType storage.Type
			if !it.Star {
				ti, _ := p.resolve(it.Col)
				spec.Col = qname(ti.ref.Alias, it.Col.Column)
				colType = colTypeOf(ti.table, it.Col.Column)
			}
			switch {
			case it.Agg == "count":
				spec.Kind = exec.AggCount
				spec.Col = ""
			case it.Agg == "sum" && colType == storage.Float64:
				spec.Kind = exec.AggSumF
			case it.Agg == "sum":
				spec.Kind = exec.AggSumI
			case it.Agg == "min" && colType == storage.Float64:
				spec.Kind = exec.AggMinF
			case it.Agg == "min" && colType == storage.String:
				spec.Kind = exec.AggMinStr
			case it.Agg == "min":
				spec.Kind = exec.AggMinI
			case it.Agg == "max" && colType == storage.Float64:
				spec.Kind = exec.AggMaxF
			case it.Agg == "max":
				spec.Kind = exec.AggMaxI
			case it.Agg == "avg":
				spec.Kind = exec.AggAvgF
			default:
				return nil, fmt.Errorf("sql: unsupported aggregate %s", it.Agg)
			}
			aggs = append(aggs, spec)
		}
		gb := plan.GroupBy(cur, keys, aggs...)
		// Rename outputs to their aliases.
		var renames []string
		ai := 0
		for _, it := range p.stmt.Items {
			if it.Agg == "" {
				ti, _ := p.resolve(it.Col)
				outNames = append(outNames, qname(ti.ref.Alias, it.Col.Column))
				continue
			}
			outNames = append(outNames, it.As)
			ai++
		}
		_ = renames
		cur = gb
	} else {
		for _, it := range p.stmt.Items {
			ti, _ := p.resolve(it.Col)
			outNames = append(outNames, qname(ti.ref.Alias, it.Col.Column))
		}
	}

	// Ordering.
	if len(p.stmt.OrderBy) > 0 || p.stmt.Limit > 0 {
		var keys []plan.OrderKey
		for _, o := range p.stmt.OrderBy {
			name := o.Col.Column
			if o.Col.Qualifier != "" {
				name = qname(o.Col.Qualifier, o.Col.Column)
			} else if !hasCol(cur.Columns(), name) {
				ti, err := p.resolve(o.Col)
				if err == nil {
					name = qname(ti.ref.Alias, o.Col.Column)
				}
			}
			keys = append(keys, plan.OrderKey{Col: name, Desc: o.Desc})
		}
		cur = plan.OrderBy(cur, p.stmt.Limit, keys...)
	}
	return plan.Project(cur, outNames...), nil
}

// resolve finds the table of a column reference.
func (p *planner) resolve(c ColRefAST) (*tableInfo, error) {
	if c.Qualifier != "" {
		for _, ti := range p.tables {
			if strings.EqualFold(ti.ref.Alias, c.Qualifier) {
				if ti.table.Schema.ColIndex(c.Column) < 0 {
					return nil, fmt.Errorf("sql: table %s has no column %q", ti.ref.Alias, c.Column)
				}
				return ti, nil
			}
		}
		return nil, fmt.Errorf("sql: unknown table alias %q", c.Qualifier)
	}
	var found *tableInfo
	for _, ti := range p.tables {
		if ti.table.Schema.ColIndex(c.Column) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("sql: column %q is ambiguous", c.Column)
			}
			found = ti
		}
	}
	if found == nil {
		return nil, fmt.Errorf("sql: unknown column %q", c.Column)
	}
	return found, nil
}

// condPred compiles a scan-level filter over unqualified column names.
func condPred(ti *tableInfo, c Cond) (expr.Pred, error) {
	col := c.Left.Column
	t := colTypeOf(ti.table, col)
	switch c.Op {
	case "like":
		return expr.Like(col, c.Str), nil
	case "notlike":
		return expr.NotLike(col, c.Str), nil
	case "between":
		return expr.BetweenI(col, c.Num, c.Num2), nil
	case "in":
		if c.IsStr {
			return expr.InStr(col, c.StrList...), nil
		}
		return expr.InI(col, c.NumList...), nil
	}
	if c.IsJoin {
		// Same-table column comparison.
		switch c.Op {
		case "=":
			return expr.EqCols(col, c.Right.Column), nil
		case "<":
			return expr.LtCols(col, c.Right.Column), nil
		case ">":
			return expr.GtCols(col, c.Right.Column), nil
		case "<>":
			return expr.NeCols(col, c.Right.Column), nil
		}
		return expr.Pred{}, fmt.Errorf("sql: unsupported column comparison %q", c.Op)
	}
	if c.IsStr {
		switch c.Op {
		case "=":
			return expr.EqStr(col, c.Str), nil
		case "<>":
			return expr.NeStr(col, c.Str), nil
		case "<":
			return expr.LtStr(col, c.Str), nil
		case "<=":
			return expr.LeStr(col, c.Str), nil
		case ">":
			return expr.GtStr(col, c.Str), nil
		case ">=":
			return expr.GeStr(col, c.Str), nil
		}
		return expr.Pred{}, fmt.Errorf("sql: unsupported string comparison %q", c.Op)
	}
	if t == storage.Float64 {
		if c.Op == ">" {
			return expr.GtFConst(col, float64(c.Num)), nil
		}
		return expr.Pred{}, fmt.Errorf("sql: unsupported float comparison %q", c.Op)
	}
	switch c.Op {
	case "=":
		return expr.EqI(col, c.Num), nil
	case "<>":
		return expr.NeI(col, c.Num), nil
	case "<":
		return expr.LtI(col, c.Num), nil
	case "<=":
		return expr.LeI(col, c.Num), nil
	case ">":
		return expr.GtI(col, c.Num), nil
	case ">=":
		return expr.GeI(col, c.Num), nil
	}
	return expr.Pred{}, fmt.Errorf("sql: unsupported operator %q", c.Op)
}

func colTypeOf(t *storage.Table, col string) storage.Type {
	return t.Schema.Cols[t.Schema.MustCol(col)].Type
}

func colNames(cols []plan.ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func remove(all, drop []string) []string {
	var out []string
	for _, a := range all {
		found := false
		for _, d := range drop {
			if a == d {
				found = true
				break
			}
		}
		if !found {
			out = append(out, a)
		}
	}
	return out
}

func hasCol(cols []plan.ColRef, name string) bool {
	for _, c := range cols {
		if c.Name == name {
			return true
		}
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
