package sql

import "strings"

// Normalize canonicalizes a query's text for use as a plan-cache key:
// whitespace collapses to single separators, identifiers and keywords fold
// to lower case, and string literals are preserved byte-for-byte inside
// their quotes. Two queries that normalize equally parse to the same AST,
// so a cache keyed on the normalized text can serve either from one
// prepared plan. Lexing errors surface so callers can reject the query
// before touching the cache.
//
// Constants deliberately remain part of the key: this engine bakes literals
// into the plan (scan predicates, dictionary code sets), so queries
// differing only in a constant are genuinely different plans.
func Normalize(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(src))
	prev := token{kind: tokEOF}
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if needSpace(prev, t) {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokIdent:
			b.WriteString(strings.ToLower(t.text))
		case tokString:
			b.WriteByte('\'')
			b.WriteString(t.text)
			b.WriteByte('\'')
		default:
			b.WriteString(t.text)
		}
		prev = t
	}
	return b.String(), nil
}

// needSpace keeps word-like tokens apart; punctuation and operators bind
// tight so "l.l_orderkey = o.o_orderkey" renders as "l.l_orderkey=o.o_orderkey"
// stably regardless of the input's spacing.
func needSpace(prev, cur token) bool {
	if prev.kind == tokEOF {
		return false
	}
	wordy := func(t token) bool {
		return t.kind == tokIdent || t.kind == tokNumber || t.kind == tokString
	}
	return wordy(prev) && wordy(cur)
}
