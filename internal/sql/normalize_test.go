package sql

import (
	"strings"
	"testing"
)

func TestNormalizeEquivalentSpellings(t *testing.T) {
	variants := []string{
		"SELECT count(*) FROM probe r, build s WHERE r.k = s.k",
		"select COUNT(*) from probe r, build s where r.k=s.k",
		"  SELECT\n\tcount( * )  FROM probe   r , build s\nWHERE r.k =\n s.k  ",
	}
	want, err := Normalize(variants[0])
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	for _, v := range variants[1:] {
		got, err := Normalize(v)
		if err != nil {
			t.Fatalf("normalize %q: %v", v, err)
		}
		if got != want {
			t.Fatalf("normalize %q = %q, want %q", v, got, want)
		}
	}
}

func TestNormalizeDistinguishes(t *testing.T) {
	pairs := [][2]string{
		// Constants are part of the key: they are baked into plans.
		{"SELECT count(*) FROM build WHERE pay < 24", "SELECT count(*) FROM build WHERE pay < 25"},
		// String literals keep their case even though identifiers fold.
		{"SELECT count(*) FROM build WHERE name = 'Even'", "SELECT count(*) FROM build WHERE name = 'even'"},
		// Different shapes, obviously.
		{"SELECT count(*) FROM build", "SELECT sum(pay) FROM build"},
	}
	for _, p := range pairs {
		a, err := Normalize(p[0])
		if err != nil {
			t.Fatalf("normalize %q: %v", p[0], err)
		}
		b, err := Normalize(p[1])
		if err != nil {
			t.Fatalf("normalize %q: %v", p[1], err)
		}
		if a == b {
			t.Fatalf("%q and %q normalize to the same key %q", p[0], p[1], a)
		}
	}
}

func TestNormalizePreservesLiteralCase(t *testing.T) {
	got, err := Normalize("SELECT count(*) FROM Build WHERE Name = 'MiXeD'")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if !strings.Contains(got, "'MiXeD'") {
		t.Fatalf("literal case not preserved: %q", got)
	}
	if strings.Contains(got, "Build") || strings.Contains(got, "Name") {
		t.Fatalf("identifiers not folded: %q", got)
	}
}

func TestNormalizeRejectsLexErrors(t *testing.T) {
	if _, err := Normalize("SELECT 'unterminated FROM t"); err == nil {
		t.Fatal("unterminated literal normalized without error")
	}
}
