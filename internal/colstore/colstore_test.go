package colstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/storage"
)

// testTable builds a table exercising every persistable column encoding:
// int64, int32, float64, plain string (high cardinality), and dictionary
// (low cardinality), with enough rows to span several small pages.
func testTable(t *testing.T, rows int) *storage.Table {
	t.Helper()
	schema := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "small", Type: storage.Int32},
		storage.ColumnDef{Name: "price", Type: storage.Float64},
		storage.ColumnDef{Name: "comment", Type: storage.String, StrCap: 40},
		storage.ColumnDef{Name: "flag", Type: storage.String, StrCap: 8},
	)
	tab := storage.NewTable("things", schema, rows)
	rng := rand.New(rand.NewSource(7))
	flags := []string{"RED", "GREEN", "BLUE"}
	for i := 0; i < rows; i++ {
		tab.Cols[0].(*storage.Int64Column).Values = append(tab.Cols[0].(*storage.Int64Column).Values, int64(i)*3)
		tab.Cols[1].(*storage.Int32Column).Values = append(tab.Cols[1].(*storage.Int32Column).Values, int32(rng.Intn(1000)))
		tab.Cols[2].(*storage.Float64Column).Values = append(tab.Cols[2].(*storage.Float64Column).Values, rng.Float64()*100)
		tab.Cols[3].(storage.StrCol).AppendString(fmt.Sprintf("comment-%d-%x", i, rng.Int63()))
		tab.Cols[4].(storage.StrCol).AppendString(flags[rng.Intn(len(flags))])
	}
	if enc := tab.DictEncode(16); len(enc) != 1 || enc[0] != "flag" {
		t.Fatalf("DictEncode picked %v, want [flag]", enc)
	}
	return tab
}

// smallWriter returns a writer with tiny pages so even small test tables
// span many frames.
func smallWriter(dir string) *Writer {
	return &Writer{Dir: dir, PageSize: laneAlign, ZoneBlock: 64}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 5000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	if got == nil {
		t.Fatalf("table not found; have %v", st.Tables())
	}
	if got.NumRows() != tab.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), tab.NumRows())
	}
	if _, ok := got.Cols[4].(*storage.DictColumn); !ok {
		t.Fatalf("flag column loaded as %T, want *DictColumn", got.Cols[4])
	}
	rel, err := got.Pager.PinRange([]int{0, 1, 2, 3, 4}, 0, got.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	for i := 0; i < tab.NumRows(); i++ {
		if a, b := tab.Int64Col("k")[i], got.Int64Col("k")[i]; a != b {
			t.Fatalf("k[%d] = %d, want %d", i, b, a)
		}
		if a, b := tab.Int32Col("small")[i], got.Int32Col("small")[i]; a != b {
			t.Fatalf("small[%d] = %d, want %d", i, b, a)
		}
		if a, b := tab.Float64Col("price")[i], got.Float64Col("price")[i]; a != b {
			t.Fatalf("price[%d] = %v, want %v", i, b, a)
		}
		if a, b := tab.StringCol("comment").Value(i), got.StringCol("comment").Value(i); !bytes.Equal(a, b) {
			t.Fatalf("comment[%d] = %q, want %q", i, b, a)
		}
		if a, b := tab.StringCol("flag").Value(i), got.StringCol("flag").Value(i); !bytes.Equal(a, b) {
			t.Fatalf("flag[%d] = %q, want %q", i, b, a)
		}
	}
}

func TestZoneBlockMatchesBatchSize(t *testing.T) {
	// internal/exec asserts the other half (BatchSize == 1024); together the
	// two pins keep the persisted zone maps usable by the scan pruner.
	if DefaultZoneBlock != 1024 {
		t.Fatalf("DefaultZoneBlock = %d; it must equal exec.BatchSize (1024)", DefaultZoneBlock)
	}
}

func TestPersistedZoneMapSeedsCache(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 2000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	zm := got.ZoneMap(0, 64) // k column, the writer's zone block
	if zm == nil {
		t.Fatal("no zone map for k")
	}
	if zm.MinI[0] != 0 || zm.MaxI[0] != 63*3 {
		t.Fatalf("block 0 = [%d,%d], want [0,189]", zm.MinI[0], zm.MaxI[0])
	}
	if n := st.Pool().Stats().ZoneMapRebuilds; n != 0 {
		t.Fatalf("fresh store rebuilt %d zone maps, want 0", n)
	}
}

// TestStaleZoneMapRebuilt is the red/green staleness pin: a persisted zone
// map whose stamp does not match the data stamp must be rebuilt from data,
// not trusted. Red half: seeding the tampered map directly would prune
// wrongly. Green half: the loader detects the stamp mismatch and rebuilds.
func TestStaleZoneMapRebuilt(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 2000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}

	// Tamper with the k segment: keep the (lying) zone map but break its
	// stamp linkage by rewriting the footer with ZoneStamp+1 and absurd
	// bounds that would prune every block if trusted.
	seg := filepath.Join(dir, "things", "k.seg")
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := f.Stat()
	foot, err := readFooter(f, seg, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	for i := range foot.Zone.MinI {
		foot.Zone.MinI[i], foot.Zone.MaxI[i] = 1<<40, 1<<40 // nothing overlaps
	}
	foot.ZoneStamp = foot.Stamp + 1 // stale: built from different data
	laneEnd := foot.Lanes[len(foot.Lanes)-1].Off + foot.Lanes[len(foot.Lanes)-1].Len
	tail, err := encodeFooter(foot)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(laneEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(tail, laneEnd); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	zm := got.ZoneMap(0, 64)
	if zm == nil {
		t.Fatal("no zone map for k after rebuild")
	}
	// Green: rebuilt bounds reflect the data, not the tampered map.
	if zm.MinI[0] != 0 || zm.MaxI[0] != 63*3 {
		t.Fatalf("block 0 = [%d,%d] after rebuild, want [0,189] — stale map was trusted", zm.MinI[0], zm.MaxI[0])
	}
	if n := st.Pool().Stats().ZoneMapRebuilds; n != 1 {
		t.Fatalf("zone_map_rebuilds = %d, want 1", n)
	}
}

func TestAtomicWriteReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 500)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	// Overwrite with more rows; the rename must replace the old version.
	tab2 := testTable(t, 800)
	if err := smallWriter(dir).WriteTable(tab2); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Table("things").NumRows(); got != 800 {
		t.Fatalf("rows = %d, want 800", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != "things" {
			t.Fatalf("leftover entry %s in store dir", e.Name())
		}
	}
}

// TestInterruptedWriteInvisibleAndSwept: a write that dies mid-flight leaves
// only an owner-marked temp directory — Open ignores it and the spill
// janitor reaps it once the owner is gone.
func TestInterruptedWriteInvisibleAndSwept(t *testing.T) {
	defer faultinject.FailOnLeak(t)
	dir := t.TempDir()
	tab := testTable(t, 500)
	faultinject.Arm(t, WriteSite, faultinject.Fault{Kind: faultinject.Fail, After: 3, Once: true})
	if err := smallWriter(dir).WriteTable(tab); err == nil {
		t.Fatal("write survived injected failure")
	}
	// The failed writer cleaned its own staging dir already; simulate a
	// crash (no cleanup, dead owner) by planting a staged dir by hand.
	tmp, err := spill.NewOwnedTempDir(dir, spill.CSTmpPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "owner.pid"), []byte("999999999"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "partial.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st.Tables()); n != 0 {
		t.Fatalf("open saw %d tables in a dir with only wreckage", n)
	}
	st.Close()

	removed, err := spill.Sweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("sweep removed %d dirs, want 1", len(removed))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("staged dir survived sweep: %v", err)
	}
}

// corruptOpen writes a table, then damages it via fn, then opens+scans and
// returns the error, asserting it is a typed *CorruptError.
func corruptOpen(t *testing.T, fn func(dir string)) {
	t.Helper()
	dir := t.TempDir()
	if err := smallWriter(dir).WriteTable(testTable(t, 2000)); err != nil {
		t.Fatal(err)
	}
	if fn != nil {
		fn(dir)
	}
	st, err := Open(dir, Options{})
	if err == nil {
		// Damage may be page-granular: surfaces at pin time, not open.
		tab := st.Table("things")
		var rel func()
		rel, err = tab.Pager.PinRange([]int{0, 1, 2, 3, 4}, 0, tab.NumRows())
		if err == nil {
			rel()
			st.Close()
			t.Fatal("corruption not detected")
		}
		st.Close()
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T) is not a *CorruptError", err, err)
	}
}

func TestCorruptionBitRot(t *testing.T) {
	// Injected at write: footer records the clean CRC, disk has a flipped
	// bit. Detection must happen at first pin.
	defer faultinject.FailOnLeak(t)
	dir := t.TempDir()
	faultinject.Arm(t, CorruptSite, faultinject.Fault{Kind: faultinject.Fail, After: 2, Once: true})
	if err := smallWriter(dir).WriteTable(testTable(t, 2000)); err != nil {
		t.Fatal(err)
	}
	corruptOpenDir(t, dir)
}

func corruptOpenDir(t *testing.T, dir string) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err == nil {
		tab := st.Table("things")
		var rel func()
		rel, err = tab.Pager.PinRange([]int{0, 1, 2, 3, 4}, 0, tab.NumRows())
		if err == nil {
			rel()
			st.Close()
			t.Fatal("corruption not detected")
		}
		st.Close()
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T) is not a *CorruptError", err, err)
	}
}

func TestCorruptionTornPage(t *testing.T) {
	// Physical damage: overwrite bytes in the middle of the first segment's
	// first lane, after the file is fully written.
	corruptOpen(t, func(dir string) {
		seg := filepath.Join(dir, "things", "k.seg")
		f, err := os.OpenFile(seg, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("torn!torn!torn!!"), 64); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
}

func TestCorruptionTruncatedFooter(t *testing.T) {
	corruptOpen(t, func(dir string) {
		seg := filepath.Join(dir, "things", "price.seg")
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-7); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptionInjectedReadFault(t *testing.T) {
	defer faultinject.FailOnLeak(t)
	faultinject.Arm(t, ReadSite, faultinject.Fault{Kind: faultinject.Fail, After: 1, Once: true})
	corruptOpen(t, nil)
}

func TestCorruptionInjectedFooterFault(t *testing.T) {
	defer faultinject.FailOnLeak(t)
	faultinject.Arm(t, FooterSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	corruptOpen(t, nil)
}

func TestPoolBoundedResidency(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 20000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	budget := int64(8 * laneAlign)
	st, err := Open(dir, Options{PoolBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	// Scan in morsels like the executor does; only a morsel's pages are
	// pinned at once, so eviction can always make room.
	const morsel = 256
	var sum int64
	for lo := 0; lo < got.NumRows(); lo += morsel {
		hi := lo + morsel
		if hi > got.NumRows() {
			hi = got.NumRows()
		}
		rel, err := got.Pager.PinRange([]int{0, 3}, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			sum += got.Int64Col("k")[i] + int64(len(got.StringCol("comment").Value(i)))
		}
		rel()
	}
	stats := st.Pool().Stats()
	// The dict arena pins at open can push past budget; beyond that the
	// high-water mark may exceed the budget only by one morsel's working
	// set (pinned frames are unevictable).
	slack := int64(6 * laneAlign)
	if stats.MaxResidentBytes > budget+slack {
		t.Fatalf("max resident %d exceeds budget %d + slack %d", stats.MaxResidentBytes, budget, slack)
	}
	if stats.Evictions == 0 {
		t.Fatal("scan 5x the budget evicted nothing")
	}
	if stats.Misses <= stats.Hits/100 {
		t.Logf("stats: %+v", stats)
	}
	if sum == 0 {
		t.Fatal("scan read nothing")
	}
}

// TestConcurrentScanVsEviction is the -race soak: many goroutines scan
// overlapping ranges through a pool far smaller than the data, so pins,
// verifications, and evictions interleave constantly.
func TestConcurrentScanVsEviction(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 20000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{PoolBytes: 8 * laneAlign})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	want := make([]int64, 0, got.NumRows())
	for i := 0; i < tab.NumRows(); i++ {
		want = append(want, tab.Int64Col("k")[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 60; iter++ {
				lo := rng.Intn(got.NumRows() - 512)
				hi := lo + 256 + rng.Intn(256)
				rel, err := got.Pager.PinRange([]int{0, 3, 4}, lo, hi)
				if err != nil {
					errs <- err
					return
				}
				for i := lo; i < hi; i++ {
					if got.Int64Col("k")[i] != want[i] {
						errs <- fmt.Errorf("row %d read %d want %d", i, got.Int64Col("k")[i], want[i])
						rel()
						return
					}
					_ = got.StringCol("comment").Value(i)
					_ = got.StringCol("flag").Value(i)
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := st.Pool().Stats()
	if stats.Evictions == 0 {
		t.Fatal("soak never evicted; pool not under pressure")
	}
}

func TestPinRowsGather(t *testing.T) {
	dir := t.TempDir()
	tab := testTable(t, 10000)
	if err := smallWriter(dir).WriteTable(tab); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{PoolBytes: 8 * laneAlign})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	rng := rand.New(rand.NewSource(3))
	ids := make([]int64, 200)
	for i := range ids {
		ids[i] = int64(rng.Intn(got.NumRows()))
	}
	rel, err := got.Pager.PinRows([]int{0, 3}, ids)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	for _, id := range ids {
		if a, b := tab.Int64Col("k")[id], got.Int64Col("k")[id]; a != b {
			t.Fatalf("k[%d] = %d, want %d", id, b, a)
		}
		if a, b := tab.StringCol("comment").Value(int(id)), got.StringCol("comment").Value(int(id)); !bytes.Equal(a, b) {
			t.Fatalf("comment[%d] = %q, want %q", id, b, a)
		}
	}
}

// TestNoPinnedLeakAfterError: a pin failure mid-range must unwind every pin
// it took, leaving the pool evictable down to zero.
func TestNoPinnedLeakAfterError(t *testing.T) {
	defer faultinject.FailOnLeak(t)
	dir := t.TempDir()
	if err := smallWriter(dir).WriteTable(testTable(t, 10000)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := st.Table("things")
	// Fail the 5th page verification of this range.
	faultinject.Arm(t, ReadSite, faultinject.Fault{Kind: faultinject.Fail, After: 4, Once: true})
	if _, err := got.Pager.PinRange([]int{0, 1, 2, 3}, 0, got.NumRows()); err == nil {
		t.Fatal("pin survived injected read fault")
	}
	// Every non-permanent pin must be gone: evicting to zero must succeed
	// except for the permanently pinned dictionary arena.
	st.Pool().mu.Lock()
	var pinnedBytes int64
	for _, f := range st.Pool().frames {
		if f.pins > 0 {
			pinnedBytes += int64(len(f.data))
		}
	}
	st.Pool().mu.Unlock()
	if pinnedBytes > 2*laneAlign {
		t.Fatalf("%d bytes still pinned after failed PinRange (want only the dict arena)", pinnedBytes)
	}
}
