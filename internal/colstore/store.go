package colstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"partitionjoin/internal/storage"
)

// Options configures Open.
type Options struct {
	// PoolBytes bounds the buffer pool's resident bytes across every table
	// of the store; <= 0 means unbounded (verify and account, never evict).
	PoolBytes int64
}

// Store is an open column store: every table directory under its root,
// mmap'd and served through one shared buffer pool.
type Store struct {
	dir    string
	pool   *Pool
	segs   []*segment
	tables map[string]*storage.Table
}

// segment is one open segment file.
type segment struct {
	path   string
	f      *os.File
	m      []byte
	foot   *segFooter
	frames [][]*frame // per lane, per logical page
}

// Open opens every committed table under dir (committed = has a manifest;
// staged temp directories and foreign files are ignored). The returned
// tables carry a storage.Pager wired to the store's buffer pool and their
// persisted zone maps, rebuilt from data when the stamp says they are stale.
func Open(dir string, opts Options) (*Store, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, pool: NewPool(opts.PoolBytes), tables: make(map[string]*storage.Table)}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, ent.Name(), ManifestName)); err != nil {
			continue
		}
		names = append(names, ent.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.openTable(name); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Pool returns the store's shared buffer pool.
func (s *Store) Pool() *Pool { return s.pool }

// Tables returns the open table names, sorted.
func (s *Store) Tables() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named open table, or nil.
func (s *Store) Table(name string) *storage.Table { return s.tables[name] }

// Close unmaps every segment and closes the files. Tables obtained from the
// store must not be used afterwards.
func (s *Store) Close() error {
	var first error
	for _, seg := range s.segs {
		if err := munmapFile(seg.m); err != nil && first == nil {
			first = err
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.tables = nil
	return first
}

// openTable opens one table directory: manifest, then one segment per
// column, reassembling ordinary storage columns over the mapped lanes.
func (s *Store) openTable(name string) error {
	tdir := filepath.Join(s.dir, name)
	body, err := os.ReadFile(filepath.Join(tdir, ManifestName))
	if err != nil {
		return err
	}
	var man Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return &CorruptError{Path: filepath.Join(tdir, ManifestName), Page: -1,
			Detail: "manifest decode failed", Err: err}
	}
	if man.Version != FormatVersion {
		return fmt.Errorf("colstore: %s: format version %d, want %d", tdir, man.Version, FormatVersion)
	}

	t := &storage.Table{Name: man.Table}
	pager := &tablePager{pool: s.pool}
	for _, mc := range man.Columns {
		typ, err := parseType(mc.Type)
		if err != nil {
			return err
		}
		t.Schema.Cols = append(t.Schema.Cols, storage.ColumnDef{Name: mc.Name, Type: typ, StrCap: mc.StrCap})
		seg, err := s.openSegment(filepath.Join(tdir, mc.Segment))
		if err != nil {
			return err
		}
		col, cp, err := assemble(seg, mc, man.Rows)
		if err != nil {
			return err
		}
		// Dictionary arenas stay pinned for the table's lifetime: plan-time
		// code lookups and decode paths touch them outside any morsel pin
		// window, and they are tiny next to the code lanes.
		if mc.Encoding == encDict {
			for _, li := range []int{laneDictOffs, laneDictBytes} {
				for _, fr := range seg.frames[li] {
					if err := s.pool.pin(fr); err != nil {
						return err
					}
				}
			}
		}
		t.Cols = append(t.Cols, col)
		pager.cols = append(pager.cols, cp)
		s.seedZones(t, len(t.Cols)-1, col, seg.foot)
	}
	t.Pager = pager
	s.tables[man.Table] = t
	return nil
}

// openSegment maps one segment file and registers its frames with the pool.
func (s *Store) openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	foot, err := readFooter(f, path, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	m, err := mmapFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segment{path: path, f: f, m: m, foot: foot}
	for _, l := range foot.Lanes {
		data := m[l.Off : l.Off+l.Len]
		fs := make([]*frame, len(l.PageCRCs))
		for p := range fs {
			start := p * foot.PageSize
			end := start + foot.PageSize
			if end > len(data) {
				end = len(data)
			}
			fs[p] = &frame{path: path, page: p, data: data[start:end], crc: l.PageCRCs[p]}
		}
		s.pool.register(fs)
		seg.frames = append(seg.frames, fs)
	}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// assemble reconstructs the in-memory column over the segment's mapped
// lanes and builds its pager entry. All casts are zero-copy: the column's
// backing slices alias the file mapping.
func assemble(seg *segment, mc ManifestCol, rows int) (storage.Column, *colPages, error) {
	foot := seg.foot
	malformed := func(detail string) error {
		return &CorruptError{Path: seg.path, Page: -1, Detail: detail}
	}
	if foot.Rows != rows {
		return nil, nil, malformed(fmt.Sprintf("segment has %d rows, manifest says %d", foot.Rows, rows))
	}
	if foot.Encoding != mc.Encoding {
		return nil, nil, malformed(fmt.Sprintf("segment encoding %s, manifest says %s", foot.Encoding, mc.Encoding))
	}
	if len(foot.Lanes) == 0 {
		return nil, nil, malformed("segment has no lanes")
	}
	lane := func(li int, wantLen int64) ([]byte, error) {
		if li >= len(foot.Lanes) {
			return nil, malformed(fmt.Sprintf("encoding %s needs lane %d, segment has %d", foot.Encoding, li, len(foot.Lanes)))
		}
		b := seg.m[foot.Lanes[li].Off : foot.Lanes[li].Off+foot.Lanes[li].Len]
		if wantLen >= 0 && int64(len(b)) != wantLen {
			return nil, malformed(fmt.Sprintf("lane %s is %d bytes, want %d", foot.Lanes[li].Name, len(b), wantLen))
		}
		return b, nil
	}
	cp := &colPages{pageSize: foot.PageSize, rowLane: seg.frames[laneValues]}
	switch foot.Encoding {
	case encI64, encF64:
		b, err := lane(laneValues, int64(rows)*8)
		if err != nil {
			return nil, nil, err
		}
		cp.width = 8
		if foot.Encoding == encI64 {
			return &storage.Int64Column{Values: castI64(b)}, cp, nil
		}
		return &storage.Float64Column{Values: castF64(b)}, cp, nil
	case encI32:
		b, err := lane(laneValues, int64(rows)*4)
		if err != nil {
			return nil, nil, err
		}
		cp.width = 4
		return &storage.Int32Column{Values: castI32(b)}, cp, nil
	case encStr:
		ob, err := lane(laneValues, int64(rows+1)*4)
		if err != nil {
			return nil, nil, err
		}
		bb, err := lane(laneStrBytes, -1)
		if err != nil {
			return nil, nil, err
		}
		offs := castI32(ob)
		if int64(offs[rows]) != int64(len(bb)) {
			return nil, nil, malformed(fmt.Sprintf("string arena is %d bytes, offsets end at %d", len(bb), offs[rows]))
		}
		cp.width = 4
		cp.offsetted = true
		cp.strOffs = offs
		cp.byteLane = seg.frames[laneStrBytes]
		return &storage.StringColumn{Offsets: offs, Bytes: bb}, cp, nil
	case encDict:
		cb, err := lane(laneValues, int64(rows)*4)
		if err != nil {
			return nil, nil, err
		}
		dob, err := lane(laneDictOffs, -1)
		if err != nil {
			return nil, nil, err
		}
		dbb, err := lane(laneDictBytes, -1)
		if err != nil {
			return nil, nil, err
		}
		if len(dob) < 4 || len(dob)%4 != 0 {
			return nil, nil, malformed(fmt.Sprintf("dictionary offsets lane is %d bytes", len(dob)))
		}
		doffs := castI32(dob)
		if int64(doffs[len(doffs)-1]) != int64(len(dbb)) {
			return nil, nil, malformed(fmt.Sprintf("dictionary arena is %d bytes, offsets end at %d", len(dbb), doffs[len(doffs)-1]))
		}
		cp.width = 4
		return &storage.DictColumn{Codes: castI32(cb), Offsets: doffs, Bytes: dbb}, cp, nil
	}
	return nil, nil, malformed(fmt.Sprintf("unknown encoding %q", foot.Encoding))
}

// seedZones installs the persisted zone map into the table's cache, or
// rebuilds it from data when its stamp no longer matches the segment's.
func (s *Store) seedZones(t *storage.Table, ci int, col storage.Column, foot *segFooter) {
	if foot.ZoneBlock <= 0 {
		return
	}
	if foot.Zone != nil && foot.ZoneStamp == foot.Stamp {
		t.SeedZoneMap(ci, foot.ZoneBlock, &storage.ZoneMap{
			Block: foot.ZoneBlock,
			MinI:  foot.Zone.MinI, MaxI: foot.Zone.MaxI,
			MinF: foot.Zone.MinF, MaxF: foot.Zone.MaxF,
		})
		return
	}
	// Stale (or missing) map under a zone-blocked segment: never prune with
	// it. Rebuild from the mapped data — an unpinned read, correct by the
	// pager contract — and seed the fresh map instead.
	if zm := storage.BuildZoneMap(col, foot.ZoneBlock); zm != nil {
		t.SeedZoneMap(ci, foot.ZoneBlock, zm)
		s.pool.noteZoneRebuild()
	}
}

// colPages is the pager's view of one table column: which frames back its
// row-indexed lane, and for plain string columns, how to chase row spans
// into the byte arena.
type colPages struct {
	width     int // bytes per row in the row-indexed lane
	pageSize  int
	rowLane   []*frame // frames of the row-indexed lane (values/offsets/codes)
	offsetted bool     // plain string column: chase offsets into byteLane
	strOffs   []int32
	byteLane  []*frame
}

// tablePager implements storage.StatsPager for one stored table against the
// store's shared pool.
type tablePager struct {
	pool *Pool
	cols []*colPages
}

// PagerStats implements storage.StatsPager.
func (p *tablePager) PagerStats() storage.PagerStats {
	st := p.pool.Stats()
	return storage.PagerStats{Pins: st.Pins, Hits: st.Hits, Misses: st.Misses,
		Evictions: st.Evictions, ResidentBytes: st.ResidentBytes}
}

// pinSpan pins the frames covering byte range [lo, hi) of a lane, recording
// them in *pinned. On error the caller unwinds via unpinAll(*pinned).
func (p *tablePager) pinSpan(fs []*frame, pageSize int, lo, hi int64, pinned *[]*frame) error {
	if lo >= hi {
		return nil
	}
	last := int((hi - 1) / int64(pageSize))
	if last >= len(fs) {
		last = len(fs) - 1
	}
	for pg := int(lo / int64(pageSize)); pg <= last; pg++ {
		if err := p.pool.pin(fs[pg]); err != nil {
			return err
		}
		*pinned = append(*pinned, fs[pg])
	}
	return nil
}

// unpinAll releases every frame pinned so far.
func (p *tablePager) unpinAll(pinned []*frame) {
	for _, f := range pinned {
		p.pool.unpin(f)
	}
}

// PinRange implements storage.Pager.
func (p *tablePager) PinRange(cols []int, start, end int) (func(), error) {
	var pinned []*frame
	for _, ci := range cols {
		cp := p.cols[ci]
		lo, hi := int64(start)*int64(cp.width), int64(end)*int64(cp.width)
		if cp.offsetted {
			hi += int64(cp.width) // rows [start,end) need offsets [start, end+1)
		}
		if err := p.pinSpan(cp.rowLane, cp.pageSize, lo, hi, &pinned); err != nil {
			p.unpinAll(pinned)
			return nil, err
		}
		if cp.offsetted && end > start {
			// The offsets just pinned are trustworthy; follow them into the
			// arena and pin the rows' byte span.
			blo, bhi := int64(cp.strOffs[start]), int64(cp.strOffs[end])
			if err := p.pinSpan(cp.byteLane, cp.pageSize, blo, bhi, &pinned); err != nil {
				p.unpinAll(pinned)
				return nil, err
			}
		}
	}
	return func() { p.unpinAll(pinned) }, nil
}

// PinRows implements storage.Pager.
func (p *tablePager) PinRows(cols []int, ids []int64) (func(), error) {
	var pinned []*frame
	pinPage := func(fs []*frame, pg int, seen map[int]bool) error {
		if seen[pg] || pg >= len(fs) {
			return nil
		}
		if err := p.pool.pin(fs[pg]); err != nil {
			return err
		}
		seen[pg] = true
		pinned = append(pinned, fs[pg])
		return nil
	}
	for _, ci := range cols {
		cp := p.cols[ci]
		rowSeen := make(map[int]bool)
		byteSeen := make(map[int]bool)
		for _, id := range ids {
			lo := id * int64(cp.width)
			if err := pinPage(cp.rowLane, int(lo/int64(cp.pageSize)), rowSeen); err != nil {
				p.unpinAll(pinned)
				return nil, err
			}
			if cp.offsetted {
				// One row's offsets pair may straddle a page boundary.
				if err := pinPage(cp.rowLane, int((lo+int64(cp.width))/int64(cp.pageSize)), rowSeen); err != nil {
					p.unpinAll(pinned)
					return nil, err
				}
				blo, bhi := int64(cp.strOffs[id]), int64(cp.strOffs[id+1])
				for pg := int(blo / int64(cp.pageSize)); pg <= int((bhi-1)/int64(cp.pageSize)) && bhi > blo; pg++ {
					if err := pinPage(cp.byteLane, pg, byteSeen); err != nil {
						p.unpinAll(pinned)
						return nil, err
					}
				}
			}
		}
	}
	return func() { p.unpinAll(pinned) }, nil
}
