package colstore

import "unsafe"

// Lane casts. A lane is one contiguous typed array stored as raw bytes;
// because every lane starts laneAlign-aligned in the file and mmap returns
// page-aligned bases, the byte spans are always aligned for their element
// type and the casts are plain reinterpretations — the loaded columns index
// the mapped file with zero copies, exactly like their RAM-resident twins.

func castI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesOfI64(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfI32(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

func bytesOfF64(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}
