// Package colstore is the persistent column store: an on-disk columnar
// table format plus a buffer pool that lets scans run out-of-core against
// data that does not fit in RAM — the storage-based join regime the NOCAP
// line of work targets, and the missing substrate under the memory
// governor's budgets (a budget over warm slices says little; a budget over
// genuinely cold pages is a real statement).
//
// # Format
//
// A table is a directory: one segment file per column plus a manifest.
// A segment lays its lanes (the column's value arrays: values, string
// offsets, string bytes, dictionary codes, dictionary arena) contiguously,
// each lane aligned to the OS page size. Page frames are logical: page p of
// a lane covers bytes [p*PageSize, min((p+1)*PageSize, laneLen)) and its
// CRC32 lives in the footer's segment directory, not interleaved with the
// data — so a lane is one contiguous, mmap-able array that casts directly
// to the []int64/[]int32/[]byte slices the in-memory column types already
// expose. Every scan kernel, zone map, and pushdown path runs unchanged and
// zero-copy on the mapped data.
//
// The footer (JSON, CRC-guarded, found via a fixed-size trailer at the end
// of the file) carries the lane directory, the per-page checksums, the
// serialized zone map, and two stamps: Stamp summarizes the segment's data
// (rows + page CRCs) and ZoneStamp records the data the zone map was built
// from. A mismatch means the persisted zone map is stale — the loader
// rebuilds it from data instead of pruning with lies.
//
// # Buffer pool
//
// Open mmaps each segment and registers its pages as frames in a
// bytes-bounded Pool. Pinning a non-resident frame verifies its checksum
// (faulting the bytes in), accounts it against the budget, and evicts
// unpinned frames CLOCK-wise — eviction madvises the span away, so the next
// pin re-reads from disk and re-verifies. Scans pin the pages behind each
// morsel through storage.Pager and release them when the morsel is done;
// resident bytes stay bounded by the budget plus the pinned working set.
//
// # Durability
//
// The writer stages a table into a spill.CSTmpPrefix temp directory
// carrying an owner.pid liveness marker and renames it into place only when
// complete; interrupted writes are reaped by the spill janitor
// (spill.Sweep). Damage — bit rot, torn pages, truncated footers — is
// detected by checksums at open or pin time and surfaced as a typed
// *CorruptError that fails the query; it can never produce wrong rows.
package colstore

import (
	"fmt"

	"partitionjoin/internal/faultinject"
)

// Format constants.
const (
	// magic tags segment files ("PCS1" little-endian).
	magic = 0x31534350
	// FormatVersion is bumped on incompatible layout changes; the loader
	// rejects mismatches rather than guessing.
	FormatVersion = 1
	// DefaultPageSize is the buffer-pool frame size. A multiple of the OS
	// page size so frames madvise cleanly, large enough that per-page CRC
	// verification amortizes, small enough that a tight pool still holds
	// many frames.
	DefaultPageSize = 256 << 10
	// DefaultZoneBlock is the persisted zone-map block size in rows. It
	// must equal exec.BatchSize so the scan pruner finds the seeded maps
	// at the block size it asks for (pinned by a test).
	DefaultZoneBlock = 1024
	// laneAlign aligns every lane's file offset so mmap'd lanes cast to
	// typed slices on any architecture and frames start madvise-aligned.
	laneAlign = 4096
	// ManifestName is the per-table manifest file.
	ManifestName = "manifest.json"
)

// Fault-injection sites of the column store.
const (
	// WriteSite fails a segment write with the injected error.
	WriteSite = "colstore.write"
	// ReadSite fails a page verification at pin time — the torn-page /
	// I/O-error case.
	ReadSite = "colstore.read"
	// CorruptSite flips one bit of a page as it is written while the
	// footer records the clean page's checksum, so the first pin of that
	// page fails verification (injected bit rot).
	CorruptSite = "colstore.corrupt"
	// FooterSite fails the footer read at segment open — the
	// truncated-footer case.
	FooterSite = "colstore.footer"
)

var _ = faultinject.Register(WriteSite, ReadSite, CorruptSite, FooterSite)

// CorruptError reports damaged on-disk state: a checksum mismatch, a torn
// page, a truncated or malformed footer. It is typed so tests and
// containment layers can errors.As for it; a corrupt segment fails queries,
// it never yields wrong rows.
type CorruptError struct {
	// Path is the damaged segment (or manifest) file.
	Path string
	// Page is the damaged page index within its lane, or -1 when the
	// damage is not page-granular (footer, manifest).
	Page int
	// Detail says what check failed.
	Detail string
	// Err is the underlying cause, when any (injected faults, I/O errors).
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Page >= 0 {
		return fmt.Sprintf("colstore: %s page %d: %s", e.Path, e.Page, e.Detail)
	}
	return fmt.Sprintf("colstore: %s: %s", e.Path, e.Detail)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }
