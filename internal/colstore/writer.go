package colstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/storage"
)

// Writer converts in-memory tables into persistent column-store tables.
type Writer struct {
	// Dir is the store directory; table t lands in Dir/<t.Name>/.
	Dir string
	// PageSize is the buffer-pool frame size; 0 means DefaultPageSize.
	// Must be a multiple of the OS page size for eviction to madvise
	// cleanly.
	PageSize int
	// ZoneBlock is the persisted zone-map block size in rows; 0 means
	// DefaultZoneBlock (= the executor batch size, the granularity the
	// scan pruner asks for).
	ZoneBlock int
}

// WriteTable persists t as Dir/<t.Name>/. The write is atomic: everything is
// staged into an owner-marked temp directory (reaped by spill.Sweep if this
// process dies mid-write), the manifest is written last as the commit
// record, and the staged directory is renamed over any previous version of
// the table only once fully durable.
func (w *Writer) WriteTable(t *storage.Table) (err error) {
	pageSize := w.PageSize
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize%laneAlign != 0 {
		return fmt.Errorf("colstore: page size %d is not a multiple of %d", pageSize, laneAlign)
	}
	zoneBlock := w.ZoneBlock
	if zoneBlock <= 0 {
		zoneBlock = DefaultZoneBlock
	}

	tmp, err := spill.NewOwnedTempDir(w.Dir, spill.CSTmpPrefix)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.RemoveAll(tmp)
		}
	}()

	man := &Manifest{Version: FormatVersion, Table: t.Name, Rows: t.NumRows()}
	for i, def := range t.Schema.Cols {
		seg := def.Name + ".seg"
		enc, werr := writeSegment(filepath.Join(tmp, seg), def.Name, t.Cols[i], pageSize, zoneBlock)
		if werr != nil {
			return werr
		}
		man.Columns = append(man.Columns, ManifestCol{
			Name: def.Name, Type: typeName(def.Type), StrCap: def.StrCap,
			Encoding: enc, Segment: seg,
		})
	}

	body, err := json.Marshal(man)
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(tmp, ManifestName), body); err != nil {
		return err
	}
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := spill.ReleaseOwnedTempDir(tmp); err != nil {
		return err
	}

	dest := filepath.Join(w.Dir, t.Name)
	if err := os.RemoveAll(dest); err != nil {
		return err
	}
	if err := os.Rename(tmp, dest); err != nil {
		return err
	}
	return syncDir(w.Dir)
}

// laneSrc is one lane's clean bytes about to be written.
type laneSrc struct {
	name string
	data []byte
}

// lanesOf decomposes a column into its encoding and lanes. Lane order must
// match the lane-index constants the loader uses.
func lanesOf(c storage.Column) (string, []laneSrc, error) {
	switch col := c.(type) {
	case *storage.Int64Column:
		return encI64, []laneSrc{{"values", bytesOfI64(col.Values)}}, nil
	case *storage.Int32Column:
		return encI32, []laneSrc{{"values", bytesOfI32(col.Values)}}, nil
	case *storage.Float64Column:
		return encF64, []laneSrc{{"values", bytesOfF64(col.Values)}}, nil
	case *storage.StringColumn:
		return encStr, []laneSrc{
			{"offsets", bytesOfI32(col.Offsets)},
			{"bytes", col.Bytes},
		}, nil
	case *storage.DictColumn:
		return encDict, []laneSrc{
			{"codes", bytesOfI32(col.Codes)},
			{"dictoffs", bytesOfI32(col.Offsets)},
			{"dictbytes", col.Bytes},
		}, nil
	}
	return "", nil, fmt.Errorf("colstore: cannot persist column type %T", c)
}

// writeSegment writes one column's segment file: aligned lanes, then the
// CRC-guarded footer and trailer, fsynced before return.
func writeSegment(path, name string, c storage.Column, pageSize, zoneBlock int) (string, error) {
	enc, lanes, err := lanesOf(c)
	if err != nil {
		return "", err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", err
	}
	defer f.Close()

	var off int64
	dirs := make([]laneDir, 0, len(lanes))
	for _, l := range lanes {
		if pad := int(-off & (laneAlign - 1)); pad > 0 {
			if _, err := f.Write(make([]byte, pad)); err != nil {
				return "", err
			}
			off += int64(pad)
		}
		d := laneDir{Name: l.name, Off: off, Len: int64(len(l.data))}
		for p := 0; p < len(l.data); p += pageSize {
			end := p + pageSize
			if end > len(l.data) {
				end = len(l.data)
			}
			page := l.data[p:end]
			if err := faultinject.ErrAt(WriteSite); err != nil {
				return "", err
			}
			d.PageCRCs = append(d.PageCRCs, crc32.ChecksumIEEE(page))
			if faultinject.ErrAt(CorruptSite) != nil {
				// Injected bit rot: the directory keeps the clean page's
				// checksum while one flipped bit reaches the disk, so the
				// first pin of this page must fail verification.
				rotted := append([]byte(nil), page...)
				rotted[len(rotted)/2] ^= 0x40
				page = rotted
			}
			if _, err := f.Write(page); err != nil {
				return "", err
			}
		}
		off += int64(len(l.data))
		dirs = append(dirs, d)
	}

	foot := &segFooter{
		Version: FormatVersion, Column: name, Encoding: enc,
		Rows: c.Len(), PageSize: pageSize, Lanes: dirs,
		Stamp: stampOf(c.Len(), dirs),
	}
	if zm := storage.BuildZoneMap(c, zoneBlock); zm != nil {
		foot.ZoneBlock = zoneBlock
		foot.ZoneStamp = foot.Stamp
		foot.Zone = &zonePersist{MinI: zm.MinI, MaxI: zm.MaxI, MinF: zm.MinF, MaxF: zm.MaxF}
	}
	tail, err := encodeFooter(foot)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(tail); err != nil {
		return "", err
	}
	if err := f.Sync(); err != nil {
		return "", err
	}
	return enc, f.Close()
}

// writeFileSync writes data to a new file and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable. Sync errors are ignored: some filesystems refuse directory
// fsync, and the data files themselves are already synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
