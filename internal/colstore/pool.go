package colstore

import (
	"hash/crc32"
	"sync"

	"partitionjoin/internal/faultinject"
)

// PoolStats is a snapshot of buffer-pool activity. Counters are cumulative
// since Open; ResidentBytes is the current verified-resident footprint and
// MaxResidentBytes its high-water mark.
type PoolStats struct {
	Pins             int64 `json:"pins"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Evictions        int64 `json:"evictions"`
	ResidentBytes    int64 `json:"resident_bytes"`
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	ZoneMapRebuilds  int64 `json:"zone_map_rebuilds"`
}

// HitRate is the fraction of pins served by already-resident frames.
func (s PoolStats) HitRate() float64 {
	if s.Pins == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Pins)
}

// frame is one logical page of one lane: a fixed-size span of the lane's
// mapping plus its expected checksum. Residency is the pool's notion — a
// frame counts against the budget from first verification until eviction.
// The kernel may cache more (read-ahead) or less (memory pressure) than the
// pool accounts; the pool's invariant is that every byte a scan reads under
// a pin has been checksum-verified since it last became resident.
type frame struct {
	path string // segment file, for error reports
	page int    // page index within its lane
	data []byte // the page's span of the mmap'd lane
	crc  uint32 // expected checksum from the segment footer

	pins     int  // active pins; >0 blocks eviction
	resident bool // verified and accounted against the budget
	loading  bool // a goroutine is verifying this frame outside the lock
	ref      bool // CLOCK reference bit, set on every pin
}

// Pool is the bytes-bounded buffer pool shared by every segment of a store.
// All state is guarded by mu; checksum verification — the expensive part
// that also faults pages in — runs outside the lock under the frame's
// loading flag, with waiters parked on cond.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64 // resident-bytes target; <=0 means unbounded
	frames []*frame
	hand   int // CLOCK hand over frames
	stats  PoolStats
}

// NewPool creates a pool that evicts toward budget bytes of resident data.
// A budget <= 0 disables eviction (the pool still verifies and accounts).
func NewPool(budget int64) *Pool {
	p := &Pool{budget: budget}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// register adds a lane's frames to the eviction ring.
func (p *Pool) register(fs []*frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = append(p.frames, fs...)
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// noteZoneRebuild counts a stale persisted zone map rebuilt at open.
func (p *Pool) noteZoneRebuild() {
	p.mu.Lock()
	p.stats.ZoneMapRebuilds++
	p.mu.Unlock()
}

// pin makes the frame resident-and-verified and blocks its eviction until
// the matching unpin. The first pin after eviction re-reads the page from
// disk and re-verifies its checksum; damage surfaces as *CorruptError.
func (p *Pool) pin(f *frame) error {
	p.mu.Lock()
	p.stats.Pins++
	for f.loading {
		p.cond.Wait()
	}
	if f.resident {
		f.pins++
		f.ref = true
		p.stats.Hits++
		p.mu.Unlock()
		return nil
	}
	p.stats.Misses++
	f.loading = true
	p.mu.Unlock()

	// Verify outside the lock: the checksum walk faults the page in, which
	// can block on I/O, and other frames' pins must not stall behind it.
	err := verifyFrame(f)

	p.mu.Lock()
	f.loading = false
	if err == nil {
		f.resident = true
		f.pins++
		f.ref = true
		p.stats.ResidentBytes += int64(len(f.data))
		if p.stats.ResidentBytes > p.stats.MaxResidentBytes {
			p.stats.MaxResidentBytes = p.stats.ResidentBytes
		}
		p.evictLocked()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}

// unpin releases one pin; the frame stays resident until evicted.
func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	f.pins--
	p.mu.Unlock()
}

// evictLocked sweeps the CLOCK hand until resident bytes fit the budget.
// Pinned and loading frames are skipped; a referenced frame gets a second
// chance. Eviction drops the span's OS pages, so the next pin re-reads and
// re-verifies from disk. Two full laps without progress means everything
// left is pinned — the pool overshoots rather than deadlocks.
func (p *Pool) evictLocked() {
	if p.budget <= 0 || len(p.frames) == 0 {
		return
	}
	scanned := 0
	for p.stats.ResidentBytes > p.budget && scanned < 2*len(p.frames) {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		scanned++
		if !f.resident || f.pins > 0 || f.loading {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		dropPages(f.data)
		f.resident = false
		p.stats.ResidentBytes -= int64(len(f.data))
		p.stats.Evictions++
	}
}

// verifyFrame checks the frame's bytes against its footer checksum.
func verifyFrame(f *frame) error {
	if err := faultinject.ErrAt(ReadSite); err != nil {
		return &CorruptError{Path: f.path, Page: f.page, Detail: "page read failed", Err: err}
	}
	if got := crc32.ChecksumIEEE(f.data); got != f.crc {
		return &CorruptError{Path: f.path, Page: f.page,
			Detail: "page checksum mismatch (torn page or bit rot)"}
	}
	return nil
}
