//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The mapping is shared: the file is
// immutable once written, so readers always see the committed bytes, and
// evicted pages refault from disk instead of swap.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping made by mmapFile.
func munmapFile(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}

// dropPages tells the kernel the span's pages are no longer needed — the
// eviction primitive. The address is frame-aligned by construction (lanes
// start laneAlign-aligned, frames are OS-page multiples); the kernel drops
// whole pages in the range, and any page touched again refaults cleanly
// from the immutable file. A failure is ignored: eviction is advisory, the
// worst case is that the page stays cached.
func dropPages(b []byte) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
}
