//go:build !unix

package colstore

import (
	"io"
	"os"
)

// mmapFile on platforms without mmap reads the whole file into memory: the
// store still works, it just is not out-of-core (eviction becomes a no-op
// on real residency; accounting still runs).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, err
	}
	return b, nil
}

// munmapFile matches mmapFile; heap buffers need no release.
func munmapFile(b []byte) error { return nil }

// dropPages is advisory and has no heap equivalent.
func dropPages(b []byte) {}
