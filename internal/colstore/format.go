package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/storage"
)

// Column encodings. The encoding is the physical representation the writer
// chose (it mirrors the in-memory column's concrete type); the logical
// schema type lives in the manifest.
const (
	encI64  = "i64"  // one values lane, 8 bytes per row
	encI32  = "i32"  // one values lane, 4 bytes per row
	encF64  = "f64"  // one values lane, 8 bytes per row
	encStr  = "str"  // offsets lane (4 bytes, rows+1 entries) + bytes lane
	encDict = "dict" // codes lane (4 bytes) + dict offsets + dict bytes lanes
)

// Lane indices per encoding. Fixed-width encodings use only laneValues;
// strings use laneValues (offsets) and laneStrBytes; dictionaries use
// laneValues (codes), laneDictOffs and laneDictBytes.
const (
	laneValues    = 0
	laneStrBytes  = 1
	laneDictOffs  = 1
	laneDictBytes = 2
)

// laneDir locates one lane inside a segment file. Pages are logical: page p
// covers [Off + p*PageSize, Off + min((p+1)*PageSize, Len)) and PageCRCs[p]
// is its checksum.
type laneDir struct {
	Name     string   `json:"name"`
	Off      int64    `json:"off"`
	Len      int64    `json:"len"`
	PageCRCs []uint32 `json:"page_crcs"`
}

// zonePersist is the serialized zone map of a segment (nil for plain string
// columns, which have no usable value order).
type zonePersist struct {
	MinI []int64   `json:"min_i,omitempty"`
	MaxI []int64   `json:"max_i,omitempty"`
	MinF []float64 `json:"min_f,omitempty"`
	MaxF []float64 `json:"max_f,omitempty"`
}

// segFooter is the segment directory, serialized as CRC-guarded JSON
// between the data lanes and the fixed trailer.
type segFooter struct {
	Version  int       `json:"version"`
	Column   string    `json:"column"`
	Encoding string    `json:"encoding"`
	Rows     int       `json:"rows"`
	PageSize int       `json:"page_size"`
	Lanes    []laneDir `json:"lanes"`
	// Stamp summarizes the segment's data: rows folded with every page
	// CRC. Any change to the persisted bytes changes it.
	Stamp uint32 `json:"stamp"`
	// ZoneBlock/ZoneStamp/Zone persist the zone map. ZoneStamp records the
	// Stamp of the data the map was built from; the loader trusts the map
	// only when ZoneStamp == Stamp and rebuilds it from data otherwise.
	ZoneBlock int          `json:"zone_block,omitempty"`
	ZoneStamp uint32       `json:"zone_stamp,omitempty"`
	Zone      *zonePersist `json:"zone,omitempty"`
}

// trailerSize is the fixed tail of every segment file:
// [u32 footerLen][u32 footerCRC][u32 magic].
const trailerSize = 12

// stampOf folds the row count and every lane's page checksums into the
// segment's data stamp.
func stampOf(rows int, lanes []laneDir) uint32 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(rows))
	s := crc32.ChecksumIEEE(buf[:])
	for _, l := range lanes {
		for _, c := range l.PageCRCs {
			binary.LittleEndian.PutUint32(buf[:4], c)
			s = crc32.Update(s, crc32.IEEETable, buf[:4])
		}
	}
	return s
}

// encodeFooter serializes the footer plus trailer.
func encodeFooter(f *segFooter) ([]byte, error) {
	body, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(body)+trailerSize)
	copy(out, body)
	binary.LittleEndian.PutUint32(out[len(body):], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[len(body)+4:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(out[len(body)+8:], magic)
	return out, nil
}

// readFooter locates, validates, and decodes the footer of an open segment
// file of the given size. Every malformation — short file, wrong magic,
// out-of-range length, checksum mismatch, bad JSON — is a *CorruptError.
func readFooter(f *os.File, path string, size int64) (*segFooter, error) {
	corrupt := func(detail string, err error) error {
		return &CorruptError{Path: path, Page: -1, Detail: detail, Err: err}
	}
	if err := faultinject.ErrAt(FooterSite); err != nil {
		return nil, corrupt("footer read failed", err)
	}
	if size < trailerSize {
		return nil, corrupt(fmt.Sprintf("file too short for trailer (%d bytes)", size), nil)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, corrupt("trailer read failed", err)
	}
	if got := binary.LittleEndian.Uint32(tr[8:]); got != magic {
		return nil, corrupt(fmt.Sprintf("bad magic %08x", got), nil)
	}
	flen := int64(binary.LittleEndian.Uint32(tr[0:]))
	want := binary.LittleEndian.Uint32(tr[4:])
	if flen <= 0 || flen > size-trailerSize {
		return nil, corrupt(fmt.Sprintf("footer length %d out of range (file %d bytes)", flen, size), nil)
	}
	body := make([]byte, flen)
	if _, err := f.ReadAt(body, size-trailerSize-flen); err != nil {
		return nil, corrupt("truncated footer", err)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, corrupt(fmt.Sprintf("footer checksum mismatch (stored %08x, computed %08x)", want, got), nil)
	}
	var foot segFooter
	if err := json.Unmarshal(body, &foot); err != nil {
		return nil, corrupt("footer decode failed", err)
	}
	if foot.Version != FormatVersion {
		return nil, fmt.Errorf("colstore: %s: format version %d, want %d", path, foot.Version, FormatVersion)
	}
	if foot.PageSize <= 0 || foot.Rows < 0 {
		return nil, corrupt(fmt.Sprintf("implausible footer (page_size %d, rows %d)", foot.PageSize, foot.Rows), nil)
	}
	for _, l := range foot.Lanes {
		if l.Off < 0 || l.Len < 0 || l.Off+l.Len > size-trailerSize-flen {
			return nil, corrupt(fmt.Sprintf("lane %s [%d,+%d) outside data region", l.Name, l.Off, l.Len), nil)
		}
		if want := int((l.Len + int64(foot.PageSize) - 1) / int64(foot.PageSize)); want != len(l.PageCRCs) {
			return nil, corrupt(fmt.Sprintf("lane %s has %d page checksums, want %d", l.Name, len(l.PageCRCs), want), nil)
		}
	}
	return &foot, nil
}

// Manifest describes one stored table: the schema and the segment file per
// column. It is written last, after every segment is durable, so its
// presence is the commit record of the table.
type Manifest struct {
	Version int           `json:"version"`
	Table   string        `json:"table"`
	Rows    int           `json:"rows"`
	Columns []ManifestCol `json:"columns"`
}

// ManifestCol is one column entry of a Manifest.
type ManifestCol struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // logical schema type (INT64, DATE, STRING...)
	StrCap   int    `json:"str_cap,omitempty"`
	Encoding string `json:"encoding"`
	Segment  string `json:"segment"` // file name within the table directory
}

// typeName maps a logical type to its manifest string.
func typeName(t storage.Type) string { return t.String() }

// parseType maps a manifest type string back to the logical type.
func parseType(s string) (storage.Type, error) {
	for _, t := range []storage.Type{storage.Int64, storage.Int32, storage.Float64,
		storage.String, storage.Date, storage.Bool} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("colstore: unknown column type %q", s)
}
