package plan

import (
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// matList assembles the materialization list of one join side: keys first
// (so layout key columns are 0..len(keys)-1), then payload, then residual
// columns, deduplicated.
func matList(keys, payload []string, residual []string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, k := range keys {
		add(k)
	}
	for _, p := range payload {
		add(p)
	}
	for _, r := range residual {
		add(r)
	}
	return out
}

// layoutFor builds the packed-row layout of a side from its column refs.
func layoutFor(cols []ColRef, mat []string, nkeys int) *core.Layout {
	types := make([]storage.Type, len(mat))
	widths := make([]int, len(mat))
	for i, name := range mat {
		ref := mustRef(cols, name)
		types[i] = ref.Type
		widths[i] = ref.Type.Width(ref.StrCap)
	}
	keyCols := make([]int, nkeys)
	for i := range keyCols {
		keyCols[i] = i
	}
	return core.NewLayout(types, widths, keyCols)
}

// positions maps names to their position within mat.
func positions(mat []string, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		for j, m := range mat {
			if m == n {
				out[i] = j
				break
			}
		}
	}
	return out
}

func (c *compiler) compileJoin(n *JoinNode) *pipe {
	algo := c.opts.algoFor(n.ID)
	if n.HasAlgo {
		algo = n.Algo
	}
	bp := c.compile(n.Build)
	pp := c.compile(n.Probe)

	var resBuild, resProbe []string
	for _, r := range n.ResidualNe {
		resBuild = append(resBuild, r[0])
		resProbe = append(resProbe, r[1])
	}

	buildMat := matList(n.BuildKeys, n.BuildPay, resBuild)
	buildLayout := layoutFor(bp.cols, buildMat, len(n.BuildKeys))
	buildCols := resolveAll(bp.cols, buildMat)
	buildKeyBatch := resolveAll(bp.cols, n.BuildKeys)
	buildOut := positions(buildMat, n.BuildPay)
	resBuildPos := positions(buildMat, resBuild)

	probeKeyBatch := resolveAll(pp.cols, n.ProbeKeys)

	// Probe-side materialization width, whether or not this algorithm
	// materializes it (the BHJ streams the probe side; stats report what
	// a radix join would write).
	probeMatAll := matList(n.ProbeKeys, n.ProbePay, resProbe)
	probeLayoutStat := layoutFor(pp.cols, probeMatAll, len(n.ProbeKeys))
	probeColsAll := resolveAll(pp.cols, probeMatAll)
	probeOutAll := positions(probeMatAll, n.ProbePay)
	resProbePos := positions(probeMatAll, resProbe)

	// Per-join runtime adaptation state (nil when disabled): the build side
	// feeds its key-correlation sketch, and divergence from these plan-time
	// estimates drives migration and reservation revision.
	st := c.adapt.Join(n.ID)
	bEst, pEst := c.scaled(estimateRows(n.Build)), c.scaled(estimateRows(n.Probe))
	if st != nil {
		var pBytes int64
		if pEst > 0 {
			pBytes = pEst * int64(probeLayoutStat.Size)
		}
		st.SetPlanEstimates(bEst, pBytes)
	}

	// mkRadix builds the radix join machinery shared by the static radix
	// branch and the adaptive BHJ's runtime escape hatch.
	mkRadix := func(bloom bool) *core.RadixJoin {
		cfg := c.opts.Core
		cfg.Bloom = bloom
		j := core.NewRadixJoin(cfg, n.Kind, c.opts.Meter,
			buildLayout, buildCols, buildKeyBatch, -1,
			probeLayoutStat, probeColsAll, probeKeyBatch, -1,
			buildOut, probeOutAll)
		j.Gov = c.gov
		j.Adapt = st
		if c.spillDir != nil {
			j.Spill = core.NewJoinSpill(c.spillDir, c.gov, c.opts.Meter, n.ID)
			c.spills = append(c.spills, j.Spill)
		}
		if len(n.ResidualNe) > 0 {
			bl, pl := buildLayout, probeLayoutStat
			bpos, ppos := resBuildPos, resProbePos
			j.Residual = func(brow, prow []byte) bool {
				for k, bc := range bpos {
					if bl.GetI64(brow, bc) == pl.GetI64(prow, ppos[k]) {
						return false
					}
				}
				return true
			}
		}
		return j
	}

	// Plan-time rung of the degradation ladder: when a budget is set and
	// the radix join's projected partition footprint (both sides fully
	// materialized into partitions, the paper's Section 4.5 memory shape)
	// cannot fit, answer the paper's question with "do not partition" and
	// fall back to the BHJ, which materializes only the build side. When
	// even the build side alone exceeds the budget the BHJ would blow it
	// too; with a spill directory configured, keep the radix join and let
	// it spill partitions to disk instead (the last rung).
	if algo != BHJ && c.gov.Budgeted() {
		bRows, pRows := bEst, pEst
		if bRows >= 0 && pRows >= 0 {
			projected := bRows*int64(buildLayout.Size) + pRows*int64(probeLayoutStat.Size)
			buildOnly := bRows * int64(buildLayout.Size)
			if c.gov.WouldExceed(projected) {
				if c.spillDir != nil && c.gov.WouldExceed(buildOnly) {
					c.gov.Note("join %d: build side alone (%d B) exceeds budget %d B; keeping radix join, spilling to disk",
						n.ID, buildOnly, c.gov.Budget())
				} else {
					c.gov.Note("join %d: projected radix footprint %d B exceeds budget %d B; falling back to BHJ",
						n.ID, projected, c.gov.Budget())
					algo = BHJ
				}
			}
		}
	}

	if algo == BHJ {
		j := &core.HashJoin{
			Kind:         n.Kind,
			Layout:       buildLayout,
			BuildCols:    buildCols,
			BuildKeyCols: buildKeyBatch,
			BuildHashCol: -1,
			ProbeKeyCols: probeKeyBatch,
			ProbeHashCol: -1,
			ProbeOut:     resolveAll(pp.cols, n.ProbePay),
			BuildOut:     buildOut,
			Meter:        c.opts.Meter,
			Gov:          c.gov,
			Stage:        c.opts.Core.ProbeStage,
		}
		if len(n.ResidualNe) > 0 {
			probeVecs := resolveAll(pp.cols, resProbe)
			bl := buildLayout
			bpos := resBuildPos
			j.Residual = func(brow []byte, b *exec.Batch, i int) bool {
				for k, bc := range bpos {
					if bl.GetI64(brow, bc) == b.Vecs[probeVecs[k]].I64[i] {
						return false
					}
				}
				return true
			}
		}
		// Runtime escape hatch: with adaptation on, a budget to respect, and
		// a spill directory to escape to, wire the BHJ through the adaptive
		// join so a build that outgrows the budget can migrate to radix
		// partitions mid-build instead of blowing past it. The radix twin
		// shares the build layout, so migration is a re-scatter of already
		// packed rows; its sinks are Quiet (they run inside the BHJ's
		// pipeline phases) and its join pipeline is a deferred sweep with
		// zero tasks unless the migration actually happened.
		var aj *core.AdaptiveJoin
		if st != nil && c.gov.Budgeted() && c.spillDir != nil {
			rj := mkRadix(false)
			rj.BuildSink.Quiet = true
			rj.ProbeSink.Quiet = true
			aj = &core.AdaptiveJoin{BHJ: j, RJ: rj, St: st, MaxWorkers: c.workers}
		}
		opIdx := len(pp.ops)
		if aj != nil {
			c.terminate(bp, aj.BuildSink(), "build")
			pp.ops = append(pp.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
				return aj.ProbeOp(next)
			})
		} else {
			c.terminate(bp, j.BuildSink(), "build")
			pp.ops = append(pp.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
				return j.ProbeOp(next)
			})
		}
		switch n.Kind {
		case core.LeftOuter:
			var pts []storage.Type
			for _, name := range n.ProbePay {
				pts = append(pts, mustRef(pp.cols, name).Type)
			}
			pp.sweeps = append(pp.sweeps, sweep{join: j, opIdx: opIdx + 1, probeTypes: pts})
		case core.LeftSemi:
			pp.sweeps = append(pp.sweeps, sweep{join: j, opIdx: opIdx + 1, wantMatched: true})
		case core.LeftAnti:
			pp.sweeps = append(pp.sweeps, sweep{join: j, opIdx: opIdx + 1})
		}
		if aj != nil {
			// The deferred radix join pipeline; the BHJ sweeps above remain
			// correct after a migration because the BHJ table stays empty.
			pp.sweeps = append(pp.sweeps, sweep{src: aj.JoinSource(), opIdx: opIdx + 1})
		}
		if c.opts.Stats != nil {
			stat := &JoinStat{ID: n.ID, Algo: BHJ, Kind: n.Kind.String(),
				BuildTupleBytes: buildLayout.Size, ProbeTupleBytes: probeLayoutStat.Size}
			c.harvests = append(c.harvests, func() {
				if aj != nil && aj.Migrated() {
					stat.Adapted = true
					stat.BuildRows = aj.RJ.BuildSink.Out.Rows
					stat.ProbeRows = aj.RJ.StatProbeRows.Load()
					stat.Matches = aj.RJ.StatMatches.Load()
				} else {
					stat.BuildRows = int64(j.NumBuildRows())
					stat.ProbeRows = j.StatProbeRows.Load()
					stat.Matches = j.StatMatches.Load()
				}
				c.opts.Stats.add(stat)
			})
		}
		pp.cols = n.Columns()
		return pp
	}

	// Radix joins: both sides are materialized into partitions.
	probeHash := -1
	j := mkRadix(algo == BRJ)
	c.terminate(bp, j.BuildSink, "")

	// The Bloom semi-join reducer may only drop probe tuples whose
	// absence cannot change the result: every kind except probe-side
	// anti/mark/right-outer, which must see unmatched probe tuples.
	bloomOK := n.Kind != core.Anti && n.Kind != core.Mark && n.Kind != core.RightOuter
	if algo == BRJ && !bloomOK {
		j.Cfg.Bloom = false
		j.BuildSink.Cfg.Bloom = false
		j.ProbeSink.Cfg.Bloom = false
	} else if algo == BRJ {
		// One shared hash computation feeds the pushed-down Bloom
		// reducer and the partitioner (Section 4.7).
		probeHash = len(pp.cols)
		keyCols := probeKeyBatch
		pp.ops = append(pp.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			return &core.HashOp{Next: next, KeyCols: keyCols}
		})
		pp.ops = append(pp.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			return &core.BloomProbeOp{Next: next, Join: j, HashCol: probeHash}
		})
		j.ProbeSink.HashCol = probeHash
	}
	c.terminate(pp, j.ProbeSink, "")

	if c.opts.Stats != nil {
		stat := &JoinStat{ID: n.ID, Algo: algo, Kind: n.Kind.String(),
			BuildTupleBytes: buildLayout.Size, ProbeTupleBytes: probeLayoutStat.Size}
		c.harvests = append(c.harvests, func() {
			stat.BuildRows = j.BuildSink.Out.Rows
			stat.ProbeRows = j.StatProbeRows.Load()
			stat.Matches = j.StatMatches.Load()
			c.opts.Stats.add(stat)
		})
	}
	return &pipe{source: j.JoinSource(), cols: n.Columns()}
}
