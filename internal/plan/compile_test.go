package plan

import (
	"testing"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/storage"
)

func TestProjectReordersColumns(t *testing.T) {
	build, _ := makeTables(50, 0, 100, 31)
	res := Execute(DefaultOptions(), Project(Scan(build, "key", "bval"), "bval", "key"))
	if len(res.Cols) != 2 || res.Cols[0].Name != "bval" || res.Cols[1].Name != "key" {
		t.Fatalf("projection schema: %+v", res.Cols)
	}
	for i := 0; i < res.Result.NumRows(); i++ {
		if res.Result.Vecs[0].I64[i] != build.Int64Col("bval")[i] {
			t.Fatal("projection scrambled values")
		}
	}
}

func TestTableFromResultRoundTrip(t *testing.T) {
	build, _ := makeTables(100, 0, 100, 32)
	res := Execute(DefaultOptions(), Scan(build, "key", "bval"))
	tbl := TableFromResult("copy", res.Cols, res.Result)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	res2 := Execute(DefaultOptions(), GroupBy(Scan(tbl, "bval"), nil,
		AggExpr{Kind: exec.AggSumI, Col: "bval", As: "s"}))
	var want int64
	for _, v := range build.Int64Col("bval") {
		want += v
	}
	if res2.MustScalarI64() != want {
		t.Fatalf("round-tripped sum %d, want %d", res2.MustScalarI64(), want)
	}
}

func TestTableFromResultWithStrings(t *testing.T) {
	sch := storage.NewSchema(storage.ColumnDef{Name: "s", Type: storage.String, StrCap: 8})
	src := storage.NewTable("src", sch, 2)
	sc := src.Cols[0].(*storage.StringColumn)
	sc.AppendString("aa")
	sc.AppendString("bb")
	res := Execute(DefaultOptions(), Scan(src, "s"))
	tbl := TableFromResult("copy", res.Cols, res.Result)
	res2 := Execute(DefaultOptions(), Filter(Scan(tbl, "s"), expr.EqStr("s", "bb")))
	if res2.Result.NumRows() != 1 {
		t.Fatalf("string table round trip: %d rows", res2.Result.NumRows())
	}
}

func TestSharedSinkOpensOnceClosesOnce(t *testing.T) {
	inner := &countingSink{}
	s := &sharedSink{S: inner, expected: 3}
	s.Open(2)
	s.Open(2)
	s.Open(2)
	if inner.opens != 1 {
		t.Fatalf("inner opened %d times", inner.opens)
	}
	s.Close()
	s.Close()
	if inner.closes != 0 {
		t.Fatal("closed early")
	}
	s.Close()
	if inner.closes != 1 {
		t.Fatalf("inner closed %d times", inner.closes)
	}
}

type countingSink struct{ opens, closes int }

func (c *countingSink) Open(workers int)                     { c.opens++ }
func (c *countingSink) Consume(ctx *exec.Ctx, b *exec.Batch) {}
func (c *countingSink) Close()                               { c.closes++ }

func TestStatsCollector(t *testing.T) {
	build, probe := makeTables(300, 2000, 400, 33)
	stats := NewStatsCollector()
	opts := DefaultOptions()
	opts.Algo = RJ
	opts.Stats = stats
	Execute(opts, joinPlan(build, probe, core.Inner))
	joins := stats.Joins()
	if len(joins) != 1 {
		t.Fatalf("collected %d stats", len(joins))
	}
	s := joins[0]
	if s.BuildRows != 300 || s.ProbeRows != 2000 {
		t.Fatalf("cardinalities: %d/%d", s.BuildRows, s.ProbeRows)
	}
	if s.Algo != RJ || s.Kind != "inner" {
		t.Fatalf("metadata: %+v", s)
	}
	// Build rows are [hash][key][bval] = 24 -> padded 32.
	if s.BuildTupleBytes != 32 {
		t.Fatalf("build tuple bytes %d", s.BuildTupleBytes)
	}
	if s.MatchRate() <= 0 || s.MatchRate() > 1 {
		t.Fatalf("match rate %f", s.MatchRate())
	}
	if s.BuildBytes() != 300*32 {
		t.Fatalf("build bytes %d", s.BuildBytes())
	}
}

func TestBloomDisabledForProbeAntiKinds(t *testing.T) {
	// BRJ on a probe-side anti join must not install the reducer (it
	// would drop result rows); verified behaviorally in plan_test, here
	// structurally: the join must report Bloom off.
	build, probe := makeTables(100, 500, 150, 34)
	for _, kind := range []core.JoinKind{core.Anti, core.Mark, core.RightOuter} {
		opts := DefaultOptions()
		opts.Algo = BRJ
		res := Execute(opts, joinPlan(build, probe, kind))
		want := refJoin(build, probe, kind)
		if res.Result.NumRows() != len(want) {
			t.Fatalf("%v: %d rows, want %d", kind, res.Result.NumRows(), len(want))
		}
	}
}

func TestMeterWiredThroughExecution(t *testing.T) {
	build, probe := makeTables(500, 5000, 600, 35)
	m := meter.New()
	opts := DefaultOptions()
	opts.Algo = RJ
	opts.Meter = m
	Execute(opts, joinPlan(build, probe, core.Inner))
	read, written := m.Totals()
	if read == 0 || written == 0 {
		t.Fatalf("meter recorded nothing: %d/%d", read, written)
	}
	phases := m.Phases()
	if len(phases) < 4 {
		t.Fatalf("only %d phases recorded", len(phases))
	}
}

func TestExecResultThroughput(t *testing.T) {
	build, _ := makeTables(1000, 0, 100, 36)
	res := Execute(DefaultOptions(), Scan(build, "key"))
	if res.SourceRows != 1000 {
		t.Fatalf("source rows %d", res.SourceRows)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}
