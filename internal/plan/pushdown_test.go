package plan

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/storage"
)

// pushdownTable builds a multi-morsel table exercising every pushable
// column kind: k (int64, clustered 0..n-1), d (int64, random in [0,1000)),
// f (float64), m (low-cardinality string, dictionary-encoded), s (plain
// high-cardinality string).
func pushdownTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	schema := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "d", Type: storage.Int64},
		storage.ColumnDef{Name: "f", Type: storage.Float64},
		storage.ColumnDef{Name: "m", Type: storage.String, StrCap: 8},
		storage.ColumnDef{Name: "s", Type: storage.String, StrCap: 8},
	)
	tb := storage.NewTable("pd", schema, n)
	rng := rand.New(rand.NewSource(11))
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	kc := tb.Cols[0].(*storage.Int64Column)
	dc := tb.Cols[1].(*storage.Int64Column)
	fc := tb.Cols[2].(*storage.Float64Column)
	for i := 0; i < n; i++ {
		kc.Values = append(kc.Values, int64(i))
		dc.Values = append(dc.Values, rng.Int63n(1000))
		fc.Values = append(fc.Values, rng.Float64())
		tb.StringCol("m").AppendString(modes[rng.Intn(len(modes))])
		tb.StringCol("s").AppendString(fmt.Sprintf("s%04d", rng.Intn(5000)))
	}
	converted := tb.DictEncode(64)
	if len(converted) != 1 || converted[0] != "m" {
		t.Fatalf("DictEncode converted %v, want [m]", converted)
	}
	return tb
}

// renderRows flattens a result into printable rows for exact comparison.
func renderRows(res *ExecResult) []string {
	n := res.Result.NumRows()
	out := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for c := range res.Result.Vecs {
			v := &res.Result.Vecs[c]
			switch v.T {
			case storage.Float64:
				fmt.Fprintf(&sb, "%v|", v.F64[i])
			case storage.String:
				fmt.Fprintf(&sb, "%s|", v.Str[i])
			default:
				fmt.Fprintf(&sb, "%d|", v.I64[i])
			}
		}
		out[i] = sb.String()
	}
	return out
}

// runDifferential executes the plan built by mk twice — pushdown enabled and
// disabled — single-threaded for deterministic row order, and requires
// byte-identical results. It returns the pushed run's result for counter
// assertions.
func runDifferential(t *testing.T, name string, mk func() Node) *ExecResult {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = 1
	pushed, err := ExecuteErr(context.Background(), opts, mk())
	if err != nil {
		t.Fatalf("%s pushed: %v", name, err)
	}
	opts.NoScanPushdown = true
	opts.NoDictCodes = true
	plain, err := ExecuteErr(context.Background(), opts, mk())
	if err != nil {
		t.Fatalf("%s unpushed: %v", name, err)
	}
	pr, ur := renderRows(pushed), renderRows(plain)
	if len(pr) != len(ur) {
		t.Fatalf("%s: pushed %d rows, unpushed %d rows", name, len(pr), len(ur))
	}
	for i := range pr {
		if pr[i] != ur[i] {
			t.Fatalf("%s: row %d differs\npushed:   %s\nunpushed: %s", name, i, pr[i], ur[i])
		}
	}
	return pushed
}

// TestPushdownDifferential covers every pushed predicate shape against the
// unpushed FilterOp plan: integer range/equality/IN, float range, dictionary
// equality/IN/range, plain-string equality/range, and a mix with an
// unpushable residual.
func TestPushdownDifferential(t *testing.T) {
	const n = 3*storage.MorselSize + 1234
	tb := pushdownTable(t, n)
	scan := func() Node { return Scan(tb, "k", "d", "f", "m", "s") }
	cases := []struct {
		name string
		pred func() expr.Pred
	}{
		{"range-1pct", func() expr.Pred { return expr.BetweenI("k", 1000, 1000+n/100) }},
		{"range-open", func() expr.Pred { return expr.GtI("k", int64(n-5000)) }},
		{"equality", func() expr.Pred { return expr.EqI("d", 5) }},
		{"in", func() expr.Pred { return expr.InI("d", 3, 77, 999) }},
		{"float-range", func() expr.Pred { return expr.GtFConst("f", 0.99) }},
		{"dict-eq", func() expr.Pred { return expr.EqStr("m", "MAIL") }},
		{"dict-in", func() expr.Pred { return expr.InStr("m", "AIR", "SHIP") }},
		{"dict-range", func() expr.Pred { return expr.BetweenStr("m", "B", "T") }},
		{"dict-range-open", func() expr.Pred { return expr.GtStr("m", "MAIL") }},
		{"dict-miss", func() expr.Pred { return expr.EqStr("m", "NOPE") }},
		{"str-eq", func() expr.Pred { return expr.EqStr("s", "s0123") }},
		{"str-range", func() expr.Pred { return expr.GeStr("s", "s4990") }},
		{"empty-range", func() expr.Pred { return expr.BetweenI("k", 100, 10) }},
		{"residual-mix", func() expr.Pred {
			return expr.And(
				expr.BetweenI("k", 0, int64(n/2)),
				expr.Or(expr.EqI("d", 1), expr.EqI("d", 2)),
				expr.Like("s", "s12%"),
			)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runDifferential(t, c.name, func() Node {
				return Filter(scan(), c.pred())
			})
		})
	}
}

// TestPushdownPrunesClusteredRange checks that the clustered 1% range scan
// actually skips morsels and that a dictionary miss prunes everything.
func TestPushdownPrunesClusteredRange(t *testing.T) {
	const n = 4 * storage.MorselSize
	tb := pushdownTable(t, n)
	res := runDifferential(t, "clustered-range", func() Node {
		return Filter(Scan(tb, "k", "d"), expr.BetweenI("k", 10, 500))
	})
	if res.Scan.MorselsPruned < 3 {
		t.Fatalf("clustered 1%% range pruned %d morsels, want >= 3", res.Scan.MorselsPruned)
	}
	res = runDifferential(t, "dict-miss", func() Node {
		return Filter(Scan(tb, "k", "m"), expr.EqStr("m", "ABSENT"))
	})
	if res.Result.NumRows() != 0 {
		t.Fatalf("dict miss returned %d rows", res.Result.NumRows())
	}
	if res.Scan.MorselsPruned != 4 {
		t.Fatalf("dict miss pruned %d morsels, want all 4", res.Scan.MorselsPruned)
	}
}

// TestPushdownWithRowIDScan exercises the pushed-predicate path through
// TableSourceWithRowID: rowids of surviving rows must match the unpushed
// plan's exactly.
func TestPushdownWithRowIDScan(t *testing.T) {
	const n = 2 * storage.MorselSize
	tb := pushdownTable(t, n)
	runDifferential(t, "rowid-scan", func() Node {
		return Filter(ScanRowID(tb, "rid", "k", "d"), expr.BetweenI("k", 5000, 9000))
	})
}

// TestPushdownAggregateConcurrent runs a Q6-style aggregate with full
// parallelism — order-independent totals let the differential run at real
// worker counts (the race detector sees the pruning paths under make race).
func TestPushdownAggregateConcurrent(t *testing.T) {
	const n = 3 * storage.MorselSize
	tb := pushdownTable(t, n)
	mk := func() Node {
		return GroupBy(
			Filter(Scan(tb, "k", "d", "f", "m"), expr.And(
				expr.BetweenI("k", 0, int64(n/4)),
				expr.InStr("m", "MAIL", "SHIP"),
				expr.GtFConst("f", 0.5),
			)),
			nil,
			AggExpr{Kind: exec.AggSumI, Col: "d", As: "sum_d"},
			AggExpr{Kind: exec.AggCount, As: "cnt"},
		)
	}
	opts := DefaultOptions()
	pushed, err := ExecuteErr(context.Background(), opts, mk())
	if err != nil {
		t.Fatal(err)
	}
	opts.NoScanPushdown = true
	opts.NoDictCodes = true
	plain, err := ExecuteErr(context.Background(), opts, mk())
	if err != nil {
		t.Fatal(err)
	}
	if ps, us := pushed.MustScalarI64(), plain.MustScalarI64(); ps != us {
		t.Fatalf("sum_d: pushed %d, unpushed %d", ps, us)
	}
	if pushed.Result.Vecs[1].I64[0] != plain.Result.Vecs[1].I64[0] {
		t.Fatalf("count: pushed %d, unpushed %d",
			pushed.Result.Vecs[1].I64[0], plain.Result.Vecs[1].I64[0])
	}
	if pushed.Scan.RowsPrefiltered == 0 {
		t.Fatal("expected pushed predicates to prefilter rows")
	}
	if plain.Scan.MorselsPruned != 0 || plain.Scan.RowsPrefiltered != 0 {
		t.Fatalf("unpushed plan recorded scan pruning: %+v", plain.Scan)
	}
}

// TestDictCodeJoinPacking checks the dictionary code-packing rewrite: a join
// carrying a dictionary payload through to a group-by must produce identical
// results with codes packed (4 bytes) and with decoded strings, and the
// packed build tuple must actually be narrower. The build payload carries an
// extra int64 so the 8-byte string-to-code saving crosses the layout's
// power-of-two padding boundary (hash+key+bval+mode: 36 B -> 64 B plain,
// 28 B -> 32 B coded) and shows up in BuildTupleBytes.
func TestDictCodeJoinPacking(t *testing.T) {
	const nb, np = 20_000, 60_000
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "key", Type: storage.Int64},
		storage.ColumnDef{Name: "bval", Type: storage.Int64},
		storage.ColumnDef{Name: "mode", Type: storage.String, StrCap: 8},
	)
	build := storage.NewTable("build", bs, nb)
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"}
	rng := rand.New(rand.NewSource(3))
	bkey := build.Cols[0].(*storage.Int64Column)
	bval := build.Cols[1].(*storage.Int64Column)
	for i := 0; i < nb; i++ {
		bkey.Values = append(bkey.Values, int64(i))
		bval.Values = append(bval.Values, int64(i)*3)
		build.StringCol("mode").AppendString(modes[rng.Intn(len(modes))])
	}
	if got := build.DictEncode(16); len(got) != 1 {
		t.Fatalf("DictEncode: %v", got)
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "fkey", Type: storage.Int64},
		storage.ColumnDef{Name: "pval", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, np)
	pkey := probe.Cols[0].(*storage.Int64Column)
	pval := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < np; i++ {
		pkey.Values = append(pkey.Values, rng.Int63n(nb))
		pval.Values = append(pval.Values, int64(i))
	}
	mk := func() Node {
		join := &JoinNode{
			Build: Scan(build, "key", "bval", "mode"), Probe: Scan(probe, "fkey", "pval"),
			BuildKeys: []string{"key"}, ProbeKeys: []string{"fkey"},
			BuildPay: []string{"bval", "mode"}, ProbePay: []string{"pval"},
		}
		return OrderBy(
			GroupBy(join, []string{"mode"},
				AggExpr{Kind: exec.AggSumI, Col: "pval", As: "sum"},
				AggExpr{Kind: exec.AggSumI, Col: "bval", As: "sum_b"},
				AggExpr{Kind: exec.AggCount, As: "cnt"}),
			0, OrderKey{Col: "mode"})
	}
	for _, algo := range []JoinAlgo{BHJ, RJ} {
		stats := NewStatsCollector()
		opts := DefaultOptions()
		opts.Algo = algo
		opts.Stats = stats
		coded, err := ExecuteErr(context.Background(), opts, mk())
		if err != nil {
			t.Fatalf("%v coded: %v", algo, err)
		}
		plainStats := NewStatsCollector()
		opts.NoDictCodes = true
		opts.Stats = plainStats
		plain, err := ExecuteErr(context.Background(), opts, mk())
		if err != nil {
			t.Fatalf("%v plain: %v", algo, err)
		}
		cr, pr := renderRows(coded), renderRows(plain)
		if len(cr) != len(pr) || len(cr) == 0 {
			t.Fatalf("%v: coded %d rows, plain %d rows", algo, len(cr), len(pr))
		}
		for i := range cr {
			if cr[i] != pr[i] {
				t.Fatalf("%v row %d: coded %s, plain %s", algo, i, cr[i], pr[i])
			}
		}
		cw := stats.Joins()[0].BuildTupleBytes
		pw := plainStats.Joins()[0].BuildTupleBytes
		if cw >= pw {
			t.Fatalf("%v: coded build tuple %d B, plain %d B — codes should be narrower", algo, cw, pw)
		}
	}
}

// TestEstimateRowsPrunedScan checks the estimate sharpening is active and
// sound: pushed scans estimate no more than the table and no fewer than the
// true match count; unpushed scans keep the selectivity-1 ceiling.
func TestEstimateRowsPrunedScan(t *testing.T) {
	const n = 4 * storage.MorselSize
	tb := pushdownTable(t, n)
	lo, hi := int64(100), int64(2000)
	root := pushdownFilters(Filter(Scan(tb, "k", "d"), expr.BetweenI("k", lo, hi)))
	sc, ok := root.(*ScanNode)
	if !ok {
		t.Fatalf("fully pushable filter should collapse into the scan, got %T", root)
	}
	if len(sc.Pushed) != 1 {
		t.Fatalf("pushed %d predicates, want 1", len(sc.Pushed))
	}
	est := estimateRows(sc)
	truth := hi - lo + 1 // k is 0..n-1, so the range matches exactly
	if est < truth {
		t.Fatalf("estimate %d under-estimates true cardinality %d", est, truth)
	}
	if est >= int64(n) {
		t.Fatalf("estimate %d not sharpened below table size %d", est, n)
	}
	if unpushed := estimateRows(Filter(Scan(tb, "k", "d"), expr.BetweenI("k", lo, hi))); unpushed != int64(n) {
		t.Fatalf("unpushed estimate %d, want table size %d", unpushed, n)
	}
	// A provably empty predicate estimates zero.
	if est := estimateRows(pushdownFilters(Filter(Scan(tb, "m"), expr.EqStr("m", "ABSENT")))); est != 0 {
		t.Fatalf("dictionary-miss estimate %d, want 0", est)
	}
}

// TestPushdownLeavesResidual checks the pass structure: partially pushable
// conjunctions keep a residual FilterNode, unpushable predicates stay put,
// and predicates above non-scan nodes are untouched.
func TestPushdownLeavesResidual(t *testing.T) {
	tb := pushdownTable(t, 1000)
	mixed := pushdownFilters(Filter(Scan(tb, "k", "s"),
		expr.And(expr.GtI("k", 10), expr.Like("s", "s1%"))))
	f, ok := mixed.(*FilterNode)
	if !ok {
		t.Fatalf("residual missing, got %T", mixed)
	}
	sc, ok := f.Child.(*FilterNode)
	if ok {
		t.Fatalf("double filter after pushdown: %T over %T", f, sc)
	}
	if s, ok := f.Child.(*ScanNode); !ok || len(s.Pushed) != 1 {
		t.Fatalf("expected scan with 1 pushed pred under residual, got %T", f.Child)
	}
	// Entirely unpushable: tree unchanged (same node pointers).
	orig := Filter(Scan(tb, "s"), expr.Like("s", "s1%"))
	if got := pushdownFilters(orig); got != Node(orig) {
		t.Fatal("unpushable filter should be returned unchanged")
	}
	// Column-column comparisons carry no atom.
	cc := pushdownFilters(Filter(Scan(tb, "k", "d"), expr.GtCols("k", "d")))
	if f, ok := cc.(*FilterNode); !ok {
		t.Fatalf("column comparison was pushed: %T", cc)
	} else if s := f.Child.(*ScanNode); len(s.Pushed) != 0 {
		t.Fatal("column comparison must not create scan predicates")
	}
}
