package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/storage"
)

// makeTables builds a build table (key, bval) and probe table (fkey, pval)
// with controllable match rate; keys are drawn from [0, keyRange).
func makeTables(nBuild, nProbe int, keyRange int64, seed int64) (*storage.Table, *storage.Table) {
	rng := rand.New(rand.NewSource(seed))
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "key", Type: storage.Int64},
		storage.ColumnDef{Name: "bval", Type: storage.Int64},
	)
	build := storage.NewTable("build", bs, nBuild)
	bkey := build.Cols[0].(*storage.Int64Column)
	bval := build.Cols[1].(*storage.Int64Column)
	for i := 0; i < nBuild; i++ {
		bkey.Values = append(bkey.Values, rng.Int63n(keyRange))
		bval.Values = append(bval.Values, int64(i)*3)
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "fkey", Type: storage.Int64},
		storage.ColumnDef{Name: "pval", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, nProbe)
	pkey := probe.Cols[0].(*storage.Int64Column)
	pval := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < nProbe; i++ {
		pkey.Values = append(pkey.Values, rng.Int63n(keyRange))
		pval.Values = append(pval.Values, int64(i)*7)
	}
	return build, probe
}

// refJoin computes the reference result with nested maps.
func refJoin(build, probe *storage.Table, kind core.JoinKind) [][]int64 {
	bkey := build.Int64Col("key")
	bval := build.Int64Col("bval")
	pkey := probe.Int64Col("fkey")
	pval := probe.Int64Col("pval")
	byKey := map[int64][]int{}
	for i, k := range bkey {
		byKey[k] = append(byKey[k], i)
	}
	var out [][]int64
	matched := make([]bool, len(bkey))
	for i, k := range pkey {
		hits := byKey[k]
		switch kind {
		case core.Inner, core.LeftOuter, core.RightOuter:
			for _, b := range hits {
				out = append(out, []int64{bval[b], pval[i]})
				matched[b] = true
			}
			if kind == core.RightOuter && len(hits) == 0 {
				out = append(out, []int64{0, pval[i]})
			}
		case core.Semi:
			if len(hits) > 0 {
				out = append(out, []int64{pval[i]})
			}
		case core.Anti:
			if len(hits) == 0 {
				out = append(out, []int64{pval[i]})
			}
		case core.Mark:
			m := int64(0)
			if len(hits) > 0 {
				m = 1
			}
			out = append(out, []int64{pval[i], m})
		}
	}
	if kind == core.LeftOuter {
		for b, m := range matched {
			if !m {
				out = append(out, []int64{bval[b], 0})
			}
		}
	}
	return out
}

func refBuildSide(build, probe *storage.Table, kind core.JoinKind) [][]int64 {
	bkey := build.Int64Col("key")
	bval := build.Int64Col("bval")
	probeKeys := map[int64]bool{}
	for _, k := range probe.Int64Col("fkey") {
		probeKeys[k] = true
	}
	var out [][]int64
	for i, k := range bkey {
		hit := probeKeys[k]
		if (kind == core.LeftSemi && hit) || (kind == core.LeftAnti && !hit) {
			out = append(out, []int64{bval[i]})
		}
	}
	return out
}

func TestBuildSideSemiAnti(t *testing.T) {
	for _, kind := range []core.JoinKind{core.LeftSemi, core.LeftAnti} {
		for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
			for _, workers := range []int{1, 3} {
				build, probe := makeTables(800, 4000, 1200, 13)
				want := refBuildSide(build, probe, kind)
				sortRows(want)
				j := &JoinNode{
					ID: 1, Kind: kind,
					Build:     Scan(build, "key", "bval"),
					Probe:     Scan(probe, "fkey"),
					BuildKeys: []string{"key"}, ProbeKeys: []string{"fkey"},
					BuildPay: []string{"bval"},
				}
				opts := DefaultOptions()
				opts.Algo = algo
				opts.Workers = workers
				opts.Core.CacheBudget = 1 << 10
				res := Execute(opts, j)
				got := resultRows(res.Result)
				sortRows(got)
				if !rowsEqual(got, want) {
					t.Fatalf("%v/%v/w%d: got %d rows, want %d", kind, algo, workers, len(got), len(want))
				}
			}
		}
	}
}

func TestBuildSemiWithResidual(t *testing.T) {
	// EXISTS with an inequality residual, the Q21 shape: build row
	// matches when some probe row shares the key but differs in value.
	build, probe := makeTables(300, 2000, 100, 17)
	bkey, bval := build.Int64Col("key"), build.Int64Col("bval")
	pkey, pval := probe.Int64Col("fkey"), probe.Int64Col("pval")
	byKey := map[int64][]int{}
	for i, k := range pkey {
		byKey[k] = append(byKey[k], i)
	}
	var want [][]int64
	for i, k := range bkey {
		hit := false
		for _, p := range byKey[k] {
			if pval[p] != bval[i] {
				hit = true
				break
			}
		}
		if hit {
			want = append(want, []int64{bval[i]})
		}
	}
	sortRows(want)
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		j := &JoinNode{
			ID: 1, Kind: core.LeftSemi,
			Build:     Scan(build, "key", "bval"),
			Probe:     Scan(probe, "fkey", "pval"),
			BuildKeys: []string{"key"}, ProbeKeys: []string{"fkey"},
			BuildPay:   []string{"bval"},
			ResidualNe: [][2]string{{"bval", "pval"}},
		}
		opts := DefaultOptions()
		opts.Algo = algo
		res := Execute(opts, j)
		got := resultRows(res.Result)
		sortRows(got)
		if !rowsEqual(got, want) {
			t.Fatalf("%v: got %d rows, want %d", algo, len(got), len(want))
		}
	}
}

func joinPlan(build, probe *storage.Table, kind core.JoinKind) Node {
	j := &JoinNode{
		ID:        1,
		Kind:      kind,
		Build:     Scan(build, "key", "bval"),
		Probe:     Scan(probe, "fkey", "pval"),
		BuildKeys: []string{"key"},
		ProbeKeys: []string{"fkey"},
		ProbePay:  []string{"pval"},
	}
	if kind == core.Inner || kind == core.LeftOuter || kind == core.RightOuter {
		j.BuildPay = []string{"bval"}
	}
	if kind == core.Mark {
		j.MarkName = "hit"
	}
	return j
}

func resultRows(r *exec.Result) [][]int64 {
	out := make([][]int64, r.NumRows())
	for i := range out {
		row := make([]int64, len(r.Vecs))
		for c := range r.Vecs {
			row[c] = r.Vecs[c].I64[i]
		}
		out[i] = row
	}
	return out
}

func sortRows(rows [][]int64) {
	less := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestJoinKindsAllAlgorithmsMatchReference(t *testing.T) {
	kinds := []core.JoinKind{core.Inner, core.Semi, core.Anti, core.Mark, core.LeftOuter, core.RightOuter}
	algos := []JoinAlgo{BHJ, RJ, BRJ}
	for _, kind := range kinds {
		for _, algo := range algos {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%v/%v/w%d", kind, algo, workers)
				t.Run(name, func(t *testing.T) {
					build, probe := makeTables(500, 3000, 700, 42)
					want := refJoin(build, probe, kind)
					sortRows(want)
					opts := DefaultOptions()
					opts.Algo = algo
					opts.Workers = workers
					// Force several radix partitions even at
					// this tiny scale.
					opts.Core.CacheBudget = 1 << 10
					res := Execute(opts, joinPlan(build, probe, kind))
					got := resultRows(res.Result)
					sortRows(got)
					if !rowsEqual(got, want) {
						t.Fatalf("%s: got %d rows, want %d rows", name, len(got), len(want))
					}
				})
			}
		}
	}
}

func TestJoinDuplicateKeysBothSides(t *testing.T) {
	// Many-to-many joins must produce the full cross product per key.
	build, probe := makeTables(200, 200, 10, 7) // heavy duplication
	want := refJoin(build, probe, core.Inner)
	sortRows(want)
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		opts := DefaultOptions()
		opts.Algo = algo
		opts.Workers = 2
		res := Execute(opts, joinPlan(build, probe, core.Inner))
		got := resultRows(res.Result)
		sortRows(got)
		if !rowsEqual(got, want) {
			t.Fatalf("%v: got %d rows, want %d", algo, len(got), len(want))
		}
	}
}

func TestJoinEmptyBuildSide(t *testing.T) {
	build, probe := makeTables(0, 100, 10, 1)
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		opts := DefaultOptions()
		opts.Algo = algo
		res := Execute(opts, joinPlan(build, probe, core.Inner))
		if res.Result.NumRows() != 0 {
			t.Fatalf("%v: inner join with empty build returned %d rows", algo, res.Result.NumRows())
		}
		res = Execute(opts, joinPlan(build, probe, core.Anti))
		if res.Result.NumRows() != 100 {
			t.Fatalf("%v: anti join with empty build returned %d rows, want 100", algo, res.Result.NumRows())
		}
	}
}

func TestJoinEmptyProbeSide(t *testing.T) {
	build, probe := makeTables(100, 0, 10, 1)
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		opts := DefaultOptions()
		opts.Algo = algo
		res := Execute(opts, joinPlan(build, probe, core.LeftOuter))
		if res.Result.NumRows() != 100 {
			t.Fatalf("%v: left outer with empty probe returned %d rows, want 100", algo, res.Result.NumRows())
		}
	}
}

func TestFilterGroupByOrderBy(t *testing.T) {
	build, _ := makeTables(1000, 0, 50, 3)
	root := OrderBy(
		GroupBy(
			Filter(Scan(build, "key", "bval"), expr.LtI("key", 10)),
			[]string{"key"},
			AggExpr{Kind: exec.AggCount, As: "n"},
			AggExpr{Kind: exec.AggSumI, Col: "bval", As: "s"},
		),
		0,
		OrderKey{Col: "key"},
	)
	res := Execute(DefaultOptions(), root)
	// Reference.
	counts := map[int64]int64{}
	sums := map[int64]int64{}
	for i, k := range build.Int64Col("key") {
		if k < 10 {
			counts[k]++
			sums[k] += build.Int64Col("bval")[i]
		}
	}
	if res.Result.NumRows() != len(counts) {
		t.Fatalf("got %d groups, want %d", res.Result.NumRows(), len(counts))
	}
	prev := int64(-1)
	for i := 0; i < res.Result.NumRows(); i++ {
		k := res.Result.Vecs[0].I64[i]
		if k <= prev {
			t.Fatalf("keys not ordered: %d after %d", k, prev)
		}
		prev = k
		if res.Result.Vecs[1].I64[i] != counts[k] || res.Result.Vecs[2].I64[i] != sums[k] {
			t.Fatalf("group %d: got (%d,%d), want (%d,%d)", k,
				res.Result.Vecs[1].I64[i], res.Result.Vecs[2].I64[i], counts[k], sums[k])
		}
	}
}

func TestPerJoinAlgoOverride(t *testing.T) {
	build, probe := makeTables(300, 2000, 400, 9)
	want := refJoin(build, probe, core.Inner)
	sortRows(want)
	opts := DefaultOptions()
	opts.Algo = BHJ
	opts.PerJoin = map[int]JoinAlgo{1: RJ}
	res := Execute(opts, joinPlan(build, probe, core.Inner))
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatal("per-join override changed the result")
	}
}

func TestResidualNotEqual(t *testing.T) {
	build, probe := makeTables(300, 1000, 50, 5)
	// Reference: inner join where bval != pval (never equal here by
	// construction except key 0 row 0) — use key cols as residual
	// instead: join on key, require bval != pval.
	bkey := build.Int64Col("key")
	bval := build.Int64Col("bval")
	pkey := probe.Int64Col("fkey")
	pval := probe.Int64Col("pval")
	byKey := map[int64][]int{}
	for i, k := range bkey {
		byKey[k] = append(byKey[k], i)
	}
	var want [][]int64
	for i, k := range pkey {
		for _, b := range byKey[k] {
			if bval[b] != pval[i] {
				want = append(want, []int64{bval[b], pval[i]})
			}
		}
	}
	sortRows(want)
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		j := &JoinNode{
			ID:         1,
			Kind:       core.Inner,
			Build:      Scan(build, "key", "bval"),
			Probe:      Scan(probe, "fkey", "pval"),
			BuildKeys:  []string{"key"},
			ProbeKeys:  []string{"fkey"},
			BuildPay:   []string{"bval"},
			ProbePay:   []string{"pval"},
			ResidualNe: [][2]string{{"bval", "pval"}},
		}
		opts := DefaultOptions()
		opts.Algo = algo
		res := Execute(opts, j)
		got := resultRows(res.Result)
		sortRows(got)
		if !rowsEqual(got, want) {
			t.Fatalf("%v: residual join got %d rows, want %d", algo, len(got), len(want))
		}
	}
}

func TestMapAndRename(t *testing.T) {
	build, _ := makeTables(100, 0, 20, 2)
	root := GroupBy(
		Map(Rename(Scan(build, "key", "bval"), "bval", "v"),
			expr.MulConstI("v2", "v", 2)),
		nil,
		AggExpr{Kind: exec.AggSumI, Col: "v2", As: "s"},
	)
	res := Execute(DefaultOptions(), root)
	var want int64
	for _, v := range build.Int64Col("bval") {
		want += 2 * v
	}
	if got := res.MustScalarI64(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestLateLoadMatchesEarly(t *testing.T) {
	build, probe := makeTables(200, 1500, 300, 11)
	// Early: payload carried through the join.
	early := GroupBy(joinPlan(build, probe, core.Inner), nil,
		AggExpr{Kind: exec.AggSumI, Col: "pval", As: "s"},
		AggExpr{Kind: exec.AggCount, As: "n"})
	// Late: probe carries only rowid; pval fetched after the join.
	late := GroupBy(
		LateLoad(&JoinNode{
			ID:        1,
			Kind:      core.Inner,
			Build:     Scan(build, "key", "bval"),
			Probe:     ScanRowID(probe, "rid", "fkey"),
			BuildKeys: []string{"key"},
			ProbeKeys: []string{"fkey"},
			BuildPay:  []string{"bval"},
			ProbePay:  []string{"rid"},
		}, probe, "rid", "pval"),
		nil,
		AggExpr{Kind: exec.AggSumI, Col: "pval", As: "s"},
		AggExpr{Kind: exec.AggCount, As: "n"})
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		opts := DefaultOptions()
		opts.Algo = algo
		e := Execute(opts, early)
		l := Execute(opts, late)
		if e.Result.Vecs[0].I64[0] != l.Result.Vecs[0].I64[0] ||
			e.Result.Vecs[1].I64[0] != l.Result.Vecs[1].I64[0] {
			t.Fatalf("%v: late materialization changed the result: early=(%d,%d) late=(%d,%d)",
				algo, e.Result.Vecs[0].I64[0], e.Result.Vecs[1].I64[0],
				l.Result.Vecs[0].I64[0], l.Result.Vecs[1].I64[0])
		}
	}
}

func TestChainedJoinsAcrossAlgorithms(t *testing.T) {
	// A two-join pipeline (star-schema shape): probe flows through both.
	dim1, fact := makeTables(100, 5000, 100, 21)
	dim2, _ := makeTables(100, 0, 100, 22)
	mk := func() Node {
		j1 := &JoinNode{
			ID: 1, Kind: core.Inner,
			Build:     Rename(Scan(dim1, "key", "bval"), "key", "k1", "bval", "v1"),
			Probe:     Scan(fact, "fkey", "pval"),
			BuildKeys: []string{"k1"}, ProbeKeys: []string{"fkey"},
			BuildPay: []string{"v1"}, ProbePay: []string{"fkey", "pval"},
		}
		j2 := &JoinNode{
			ID: 2, Kind: core.Inner,
			Build:     Rename(Scan(dim2, "key", "bval"), "key", "k2", "bval", "v2"),
			Probe:     j1,
			BuildKeys: []string{"k2"}, ProbeKeys: []string{"fkey"},
			BuildPay: []string{"v2"}, ProbePay: []string{"v1", "pval"},
		}
		return GroupBy(j2, nil,
			AggExpr{Kind: exec.AggSumI, Col: "v2", As: "s2"},
			AggExpr{Kind: exec.AggSumI, Col: "v1", As: "s1"},
			AggExpr{Kind: exec.AggSumI, Col: "pval", As: "sp"},
			AggExpr{Kind: exec.AggCount, As: "n"})
	}
	var ref []int64
	for _, algo := range []JoinAlgo{BHJ, RJ, BRJ} {
		opts := DefaultOptions()
		opts.Algo = algo
		opts.Workers = 3
		res := Execute(opts, mk())
		got := []int64{
			res.Result.Vecs[0].I64[0], res.Result.Vecs[1].I64[0],
			res.Result.Vecs[2].I64[0], res.Result.Vecs[3].I64[0],
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("%v disagrees with BHJ: got %v, want %v", algo, got, ref)
			}
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	build, _ := makeTables(1000, 0, 1000000, 4)
	root := OrderBy(Scan(build, "key", "bval"), 10, OrderKey{Col: "key", Desc: true})
	res := Execute(DefaultOptions(), root)
	if res.Result.NumRows() != 10 {
		t.Fatalf("limit: got %d rows", res.Result.NumRows())
	}
	for i := 1; i < 10; i++ {
		if res.Result.Vecs[0].I64[i] > res.Result.Vecs[0].I64[i-1] {
			t.Fatal("not sorted descending")
		}
	}
}
