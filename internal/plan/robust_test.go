package plan

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
)

// expectGoroutines waits until the live goroutine count falls back to the
// baseline captured before a cancelled or failed query, proving the driver
// does not leak workers.
func expectGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExecutePreCancelledContext(t *testing.T) {
	build, probe := makeTables(50000, 200000, 60000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	base := runtime.NumGoroutine()
	start := time.Now()
	res, err := ExecuteErr(ctx, DefaultOptions(), joinPlan(build, probe, core.Inner))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("pre-cancelled context: got result with %d rows, want error", res.Result.NumRows())
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled query still took %v", elapsed)
	}
	expectGoroutines(t, base)
}

func TestExecuteDeadlineExpiry(t *testing.T) {
	// A join large enough to outlive a 1ms deadline by a wide margin; the
	// workers must stop at a morsel boundary and return the deadline error
	// without leaking goroutines.
	build, probe := makeTables(100000, 800000, 120000, 5)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()

	base := runtime.NumGoroutine()
	start := time.Now()
	_, err := ExecuteErr(ctx, DefaultOptions(), joinPlan(build, probe, core.Inner))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadlined query still took %v", elapsed)
	}
	expectGoroutines(t, base)
}

func TestMemBudgetDegradesRadixToBHJ(t *testing.T) {
	build, probe := makeTables(4000, 20000, 5000, 7)
	node := joinPlan(build, probe, core.Inner)

	ref := Execute(optsWith(RJ), node)
	want := resultRows(ref.Result)
	sortRows(want)
	if len(ref.Degraded) != 0 {
		t.Fatalf("unbudgeted run recorded degradations: %v", ref.Degraded)
	}

	// A budget far below the projected two-sided partition footprint: the
	// planner must answer "do not partition" and fall back to the BHJ,
	// recording the decision, while the result stays exact.
	opts := optsWith(RJ)
	opts.MemBudget = 64 << 10
	res, err := ExecuteErr(context.Background(), opts, node)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("budgeted run recorded no degradation events")
	}
	found := false
	for _, ev := range res.Degraded {
		if strings.Contains(ev, "BHJ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no BHJ fallback among degradations: %v", res.Degraded)
	}
	if res.MemPeak <= 0 {
		t.Fatalf("governor recorded no peak usage (peak=%d)", res.MemPeak)
	}
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("degraded plan wrong: %d rows, want %d", len(got), len(want))
	}
}

// optsWith is a test shorthand: DefaultOptions with the algorithm set.
func optsWith(algo JoinAlgo) Options {
	o := DefaultOptions()
	o.Algo = algo
	return o
}

func TestFaultInjectionPanicNamesPipeline(t *testing.T) {
	faultinject.FailOnLeak(t)
	// Probe spans several 64Ki-row morsels so an After-skip lands the panic
	// mid-stream in the probe pipeline, not on the first claimed morsel.
	build, probe := makeTables(2000, 200000, 3000, 9)

	for _, algo := range []JoinAlgo{BHJ, RJ} {
		t.Run(algo.String(), func(t *testing.T) {
			faultinject.Arm(t, exec.MorselSite, faultinject.Fault{
				Kind: faultinject.Panic, After: 1, Message: "injected mid-query", Once: true,
			})
			_, err := ExecuteErr(context.Background(), optsWith(algo), joinPlan(build, probe, core.Inner))
			if err == nil {
				t.Fatal("injected panic did not surface")
			}
			var inj *faultinject.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("error %v does not wrap the injected fault", err)
			}
			if !strings.Contains(err.Error(), `pipeline "`) || !strings.Contains(err.Error(), "worker") {
				t.Fatalf("error does not name pipeline and worker: %v", err)
			}
		})
	}
}

func TestFaultInjectionGrantFailureIsContained(t *testing.T) {
	faultinject.FailOnLeak(t)
	build, probe := makeTables(2000, 10000, 3000, 11)

	faultinject.Arm(t, govern.GrantSite, faultinject.Fault{
		Kind: faultinject.Fail, Message: "allocation refused", Once: true,
	})
	opts := optsWith(RJ)
	opts.MemBudget = 1 << 30
	_, err := ExecuteErr(context.Background(), opts, joinPlan(build, probe, core.Inner))
	if err == nil {
		t.Fatal("injected grant failure did not surface")
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
}
