package plan

import "context"

// Prepared is a reusable compiled plan: the plan rewrites (filter pushdown
// into scans, dictionary code packing) run once at Prepare time, and the
// rewritten tree is executed many times — the parse+plan-once-execute-many
// contract behind the query service's plan cache. The rewrite passes copy
// nodes rather than mutating them and execution builds all per-query state
// (joins, pipelines, governors) inside the compiler, so one Prepared may be
// executed from many goroutines concurrently.
//
// Which rewrites ran is snapshotted from the Options given to Prepare; the
// NoScanPushdown/NoDictCodes gates of the per-execution Options are ignored
// (the tree is already rewritten). Everything else — workers, algorithm,
// memory budget, spill dir, broker or adopted reservation, meter — is an
// execution-time choice and may differ per call.
type Prepared struct {
	root Node
	cols []ColRef
	// snapshot of the plan-shaping gates at Prepare time
	scanPushdown bool
	dictCodes    bool
}

// Prepare applies the plan rewrites under the given options and returns the
// reusable plan. Malformed trees panic here (as Execute always has); callers
// wanting an error instead use PrepareErr.
func Prepare(opts Options, root Node) *Prepared {
	if !opts.NoScanPushdown {
		root = pushdownFilters(root)
	}
	if !opts.NoDictCodes {
		root = encodeDictCodes(root)
	}
	return &Prepared{
		root:         root,
		cols:         root.Columns(),
		scanPushdown: !opts.NoScanPushdown,
		dictCodes:    !opts.NoDictCodes,
	}
}

// PrepareErr is Prepare with compile-time panics (unknown columns, malformed
// trees) converted to errors — the form servers use, where a bad query must
// become a 4xx response rather than a crash.
func PrepareErr(opts Options, root Node) (p *Prepared, err error) {
	defer func() {
		var sink *ExecResult
		recoverToErr(&sink, &err)
	}()
	return Prepare(opts, root), nil
}

// Columns returns the output schema of the prepared plan.
func (p *Prepared) Columns() []ColRef { return p.cols }

// ScanPushdown reports whether the filter-into-scan rewrite ran at Prepare
// time; DictCodes likewise for dictionary code packing. The plan cache keys
// on these so an A/B-gated session never executes a differently-rewritten
// plan than it asked for.
func (p *Prepared) ScanPushdown() bool { return p.scanPushdown }

// DictCodes reports whether the dictionary code-packing rewrite ran.
func (p *Prepared) DictCodes() bool { return p.dictCodes }

// ExecuteErr runs the prepared plan once under ctx. It has exactly the
// semantics of the package-level ExecuteErr minus the rewrite passes:
// admission (Options.Broker) or an adopted reservation
// (Options.Reservation), governor, spill, cancellation, and panic
// containment all apply per execution.
func (p *Prepared) ExecuteErr(ctx context.Context, opts Options) (res *ExecResult, err error) {
	defer recoverToErr(&res, &err)
	return p.run(ctx, opts)
}
