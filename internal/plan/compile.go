package plan

import (
	"partitionjoin/internal/adapt"
	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/storage"
)

// Options configures plan execution.
type Options struct {
	// Workers is the pipeline parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// Algo is the default join implementation; PerJoin overrides it for
	// individual join IDs (the per-join swap of Section 5.3.2).
	Algo    JoinAlgo
	PerJoin map[int]JoinAlgo
	// Core tunes the radix joins.
	Core core.Config
	// Meter, when set, records per-phase memory traffic.
	Meter *meter.Meter
	// Stats, when set, collects per-join cardinalities and widths.
	Stats *StatsCollector
	// MemBudget, when > 0, is the query's memory budget in bytes. The
	// governor steers radix joins to degrade (reduced fan-out, BHJ
	// fallback) when their projected footprint would exceed it; it never
	// aborts a query. Degradations are reported in ExecResult.Degraded.
	MemBudget int64
	// SpillDir, when non-empty, arms the last rung of the degradation
	// ladder: radix joins may evict partitions to checksummed run files in
	// a query-private temp directory under this path, and reload them one
	// pair at a time in the join phase. The directory is removed when the
	// query ends, is cancelled, or panics. Only effective together with
	// MemBudget — without a budget nothing ever spills.
	SpillDir string
	// DataDir, when non-empty, is the column store directory the query's
	// tables were opened from. Its only planner-level effect is a default:
	// when SpillDir is empty, spills go to <DataDir>/spill, so a server
	// pointed at a data directory gets co-located spill space for free.
	// Buffer-pool counters flow through the scanned tables' pagers
	// regardless of this field (ExecResult.Pool).
	DataDir string
	// Broker, when set, routes the query through process-wide admission
	// control: ExecuteErr reserves MemBudget bytes (or the broker's
	// per-query default when MemBudget is 0) from the shared pool before
	// running and releases the reservation when done. The query may queue
	// for admission, be shed with admit.ErrOverloaded under overload, or
	// be cancelled by the stuck-query watchdog (admit.ErrStalled). The
	// governor's budget becomes the live reservation, growable from the
	// pool, so degradation and spill decisions consult it rather than the
	// static MemBudget.
	Broker *admit.Broker
	// Reservation, when set, is an admission already granted by the caller:
	// the executor uses it as the query's live budget (growable backing,
	// watchdog progress counter) but neither admits nor releases — the
	// caller owns the reservation's lifetime and must run the query under
	// the context Broker.Admit returned, so the watchdog's cancel reaches
	// the pipelines. This is how a server holds one reservation across
	// execution AND result streaming, releasing only when the client has
	// consumed (or abandoned) the rows. Takes precedence over Broker.
	Reservation *admit.Reservation
	// NoScanPushdown disables the filter-into-scan rewrite (zone-map
	// pruning and raw-storage prefiltering); used by differential tests and
	// A/B benchmarks. NoDictCodes likewise disables the dictionary
	// code-packing rewrite.
	NoScanPushdown bool
	NoDictCodes    bool
	// NoAdapt disables runtime adaptation (mid-build BHJ→radix migration,
	// sketch-driven fan-out, skewed-partition splits, reservation
	// revision), freezing every join decision at plan time — the A/B gate
	// for differential tests and the `-no-adapt` flags.
	NoAdapt bool
	// EstimateScale, when > 0 and != 1, multiplies every plan-time
	// cardinality estimate — a test and benchmark knob simulating optimizer
	// mis-estimation (16 = everything looks 16x bigger than it is). The
	// executed data is untouched; only the planner's beliefs are corrupted.
	EstimateScale float64
}

// DefaultOptions runs everything through the BHJ at full parallelism.
func DefaultOptions() Options {
	return Options{Algo: BHJ, Core: core.DefaultConfig()}
}

func (o Options) algoFor(id int) JoinAlgo {
	if a, ok := o.PerJoin[id]; ok {
		return a
	}
	return o.Algo
}

// opBuilder creates one per-worker operator feeding next.
type opBuilder func(ctx *exec.Ctx, next exec.Operator) exec.Operator

// sweep records a pending extra pipeline sharing the main pipeline's sink:
// a left-outer/semi/anti build sweep (join set), or any deferred source —
// e.g. an adaptive join's partition-pair pipeline, which has zero tasks
// unless the build migrated (src set). Rows flow through the chain suffix
// starting at opIdx into the pipeline's final sink.
type sweep struct {
	join        *core.HashJoin
	src         exec.Source // overrides join when set
	opIdx       int
	probeTypes  []storage.Type
	wantMatched bool
}

// pipe is a pipeline under construction.
type pipe struct {
	source exec.Source
	ops    []opBuilder
	cols   []ColRef
	sweeps []sweep
}

type compiler struct {
	opts      Options
	gov       *govern.Governor
	adapt     *adapt.Controller // nil when Options.NoAdapt
	spillDir  *spill.Dir        // non-nil when Options.SpillDir is set
	spills    []*core.JoinSpill
	workers   int // resolved driver parallelism (never <= 0)
	pipelines []*exec.Pipeline
	harvests  []func()
	// pagers are the distinct stats-capable pagers behind the plan's
	// scanned tables; the executor reports their counter deltas as the
	// query's buffer-pool activity (ExecResult.Pool).
	pagers []storage.StatsPager
}

// notePager records a scanned table's pager once, when it can report stats.
func (c *compiler) notePager(t *storage.Table) {
	sp, ok := t.Pager.(storage.StatsPager)
	if !ok {
		return
	}
	for _, p := range c.pagers {
		if p == sp {
			return
		}
	}
	c.pagers = append(c.pagers, sp)
}

// scaled applies the EstimateScale corruption knob to a cardinality
// estimate (negative estimates mean "unknown" and pass through).
func (c *compiler) scaled(rows int64) int64 {
	s := c.opts.EstimateScale
	if rows < 0 || s <= 0 || s == 1 {
		return rows
	}
	return int64(float64(rows) * s)
}

// terminate closes a pipe with a breaker sink, emitting its pipeline and
// any pending left-outer sweep pipelines that share the same sink.
func (c *compiler) terminate(p *pipe, sink exec.Sink, name string) {
	if _, ok := p.source.(*core.PartitionJoinSource); ok && name != "" {
		// The radix join phase runs fused with this pipeline; label it
		// so the Figure 10 phase breakdown shows it as the join.
		name = "join+" + name
	}
	shared := &sharedSink{S: sink, expected: 1 + len(p.sweeps)}
	mk := func(ops []opBuilder) func(ctx *exec.Ctx) exec.Operator {
		return func(ctx *exec.Ctx) exec.Operator {
			var op exec.Operator = &exec.SinkOp{S: shared}
			for i := len(ops) - 1; i >= 0; i-- {
				op = ops[i](ctx, op)
			}
			return op
		}
	}
	// Pipelines sharing one sink can have different clamped worker counts
	// (a sweep pipeline may have more tasks than the main pipeline); the
	// sink opens once at full driver capacity so every sharer's worker
	// ids fit its per-worker slots.
	c.pipelines = append(c.pipelines, &exec.Pipeline{
		Name:        name,
		Source:      p.source,
		NewChain:    mk(p.ops),
		Sink:        shared,
		SinkWorkers: c.workers,
	})
	for _, s := range p.sweeps {
		src := s.src
		if src == nil {
			src = &core.UnmatchedBuildSource{
				J: s.join, ProbeTypes: s.probeTypes, WantMatched: s.wantMatched,
			}
		}
		c.pipelines = append(c.pipelines, &exec.Pipeline{
			Source:      src,
			NewChain:    mk(p.ops[s.opIdx:]),
			Sink:        shared,
			SinkWorkers: c.workers,
		})
	}
}

// sharedSink lets several pipelines feed one sink: the underlying sink
// opens on the first Open and closes on the last Close.
type sharedSink struct {
	S        exec.Sink
	expected int
	opens    int
	closes   int
}

// Open implements exec.Sink.
func (s *sharedSink) Open(workers int) {
	s.opens++
	if s.opens == 1 {
		s.S.Open(workers)
	}
}

// Consume implements exec.Sink.
func (s *sharedSink) Consume(ctx *exec.Ctx, b *exec.Batch) { s.S.Consume(ctx, b) }

// Close implements exec.Sink.
func (s *sharedSink) Close() {
	s.closes++
	if s.closes == s.expected {
		s.S.Close()
	}
}

// vecTypes converts refs to vector type/cap slices.
func vecTypes(cols []ColRef) ([]storage.Type, []int) {
	ts := make([]storage.Type, len(cols))
	caps := make([]int, len(cols))
	for i, c := range cols {
		ts[i] = c.Type
		caps[i] = c.StrCap
	}
	return ts, caps
}

// compile lowers a node to a pipe, appending finished pipelines on the way.
func (c *compiler) compile(n Node) *pipe {
	switch n := n.(type) {
	case *ScanNode:
		c.notePager(n.Table)
		var src exec.Source
		var ts *exec.TableSource
		if n.RowID != "" {
			s := exec.NewTableSourceWithRowID(n.Table, n.Cols...)
			src, ts = s, &s.TableSource
		} else {
			s := exec.NewTableSource(n.Table, n.Cols...)
			src, ts = s, s
		}
		if len(n.Pushed) > 0 {
			ts.SetPushed(n.Pushed)
		}
		if len(n.CodeCols) > 0 {
			codes := make([]bool, len(n.Cols))
			for i, c := range n.Cols {
				codes[i] = n.CodeCols[c]
			}
			ts.SetCodeCols(codes)
		}
		return &pipe{source: src, cols: n.Columns()}

	case *FilterNode:
		p := c.compile(n.Child)
		ix := resolveAll(p.cols, n.Pred.Cols)
		pred := n.Pred
		p.ops = append(p.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			return &exec.FilterOp{Next: next, Pred: pred.Make(ix)}
		})
		return p

	case *MapNode:
		p := c.compile(n.Child)
		type compiled struct {
			ix []int
			e  int
		}
		// Expressions resolve sequentially: each sees the outputs of the
		// ones before it (the runtime appends vectors in the same order).
		var specs []compiled
		cols := append([]ColRef{}, p.cols...)
		for ei, e := range n.Exprs {
			specs = append(specs, compiled{ix: resolveAll(cols, e.Cols), e: ei})
			cols = append(cols, ColRef{Name: e.Name, Type: e.Type, StrCap: e.StrCap})
		}
		exprs := n.Exprs
		p.ops = append(p.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			op := &scalarOp{next: next}
			for _, s := range specs {
				e := exprs[s.e]
				op.fns = append(op.fns, e.Make(s.ix))
				op.vecs = append(op.vecs, exec.NewVector(e.Type, e.StrCap))
			}
			return op
		})
		p.cols = n.Columns()
		return p

	case *RenameNode:
		p := c.compile(n.Child)
		p.cols = renameCols(p.cols, n.From, n.To)
		return p

	case *ProjectNode:
		p := c.compile(n.Child)
		idx := resolveAll(p.cols, n.Cols)
		p.ops = append(p.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			return &exec.ProjectOp{Next: next, Idx: idx}
		})
		p.cols = n.Columns()
		return p

	case *LateLoadNode:
		p := c.compile(n.Child)
		rid := mustIdx(p.cols, n.RowID)
		tbl, colNames := n.Table, n.Cols
		p.ops = append(p.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
			return exec.NewLateLoadOp(next, tbl, rid, colNames...)
		})
		p.cols = n.Columns()
		return p

	case *JoinNode:
		return c.compileJoin(n)

	case *DecodeNode:
		p := c.compile(n.Child)
		type dspec struct {
			idx  int
			dict *storage.DictColumn
			cap  int
		}
		var specs []dspec
		decodeAll := len(n.Cols) == 0
		for i, ref := range p.cols {
			if ref.Dict != nil && (decodeAll || containsName(n.Cols, ref.Name)) {
				specs = append(specs, dspec{idx: i, dict: ref.Dict, cap: ref.StrCap})
			}
		}
		if len(specs) > 0 {
			p.ops = append(p.ops, func(ctx *exec.Ctx, next exec.Operator) exec.Operator {
				op := &decodeOp{next: next,
					vecs:  make([]exec.Vector, len(specs)),
					saved: make([]exec.Vector, len(specs))}
				for i, s := range specs {
					op.idx = append(op.idx, s.idx)
					op.dicts = append(op.dicts, s.dict)
					op.vecs[i] = exec.NewVector(storage.String, s.cap)
				}
				return op
			})
		}
		p.cols = n.Columns()
		return p

	case *GroupByNode:
		p := c.compile(n.Child)
		sink := &exec.GroupBySink{Gov: c.gov}
		kt := make([]storage.Type, len(n.Keys))
		kc := make([]int, len(n.Keys))
		for i, k := range n.Keys {
			ref := mustRef(p.cols, k)
			kt[i] = ref.Type
			kc[i] = ref.StrCap
			sink.Keys = append(sink.Keys, mustIdx(p.cols, k))
		}
		sink.KeyTypes, sink.KeyCaps = kt, kc
		for _, a := range n.Aggs {
			col := -1
			if a.Col != "" {
				col = mustIdx(p.cols, a.Col)
			}
			sink.Aggs = append(sink.Aggs, exec.AggSpec{Kind: a.Kind, Col: col})
		}
		c.terminate(p, sink, "aggregate")
		return &pipe{source: sink.Source(), cols: n.Columns()}

	case *OrderByNode:
		p := c.compile(n.Child)
		ts, caps := vecTypes(p.cols)
		sink := &exec.SortSink{Limit: n.Limit, Types: ts, Caps: caps, Gov: c.gov}
		for _, k := range n.Keys {
			sink.Keys = append(sink.Keys, exec.SortKey{Col: mustIdx(p.cols, k.Col), Desc: k.Desc})
		}
		c.terminate(p, sink, "sort")
		return &pipe{source: sink.Source(), cols: n.Columns()}
	}
	panic("plan: unknown node type")
}

// scalarOp evaluates compiled scalar expressions, temporarily extending the
// batch with the computed vectors.
type scalarOp struct {
	next exec.Operator
	fns  []func(b *exec.Batch, out *exec.Vector)
	vecs []exec.Vector
}

// Process implements exec.Operator.
func (o *scalarOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	if b.N == 0 {
		return
	}
	n := len(b.Vecs)
	for i, f := range o.fns {
		o.vecs[i].Reset()
		f(b, &o.vecs[i])
		b.Vecs = append(b.Vecs, o.vecs[i])
	}
	o.next.Process(ctx, b)
	copy(o.vecs, b.Vecs[n:])
	b.Vecs = b.Vecs[:n]
}

// Flush implements exec.Operator.
func (o *scalarOp) Flush(ctx *exec.Ctx) { o.next.Flush(ctx) }

func resolveAll(cols []ColRef, names []string) []int {
	ix := make([]int, len(names))
	for i, n := range names {
		ix[i] = mustIdx(cols, n)
	}
	return ix
}

func renameCols(cols []ColRef, from, to []string) []ColRef {
	out := append([]ColRef{}, cols...)
	for i, f := range from {
		out[mustIdx(out, f)].Name = to[i]
	}
	return out
}
