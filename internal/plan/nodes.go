// Package plan provides the physical plan layer of the DBMS substrate: a
// tree of relational operators compiled into exec pipelines following the
// produce/consume model (Section 4.1). Joins are full pipeline breakers
// when radix-partitioned and in-pipeline operators when non-partitioned,
// reproducing Figure 4; the compiler also implements the semi-join-reducer
// placement and the late-materialization rewrite hooks of Section 4.2.
package plan

import (
	"fmt"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/storage"
)

// JoinAlgo selects the join implementation under test (Section 5.1.1).
type JoinAlgo uint8

const (
	// BHJ is the buffered non-partitioned hash join.
	BHJ JoinAlgo = iota
	// RJ is the radix-partitioned join.
	RJ
	// BRJ is the Bloom-filtered radix-partitioned join.
	BRJ
)

// String implements fmt.Stringer.
func (a JoinAlgo) String() string {
	switch a {
	case BHJ:
		return "BHJ"
	case RJ:
		return "RJ"
	case BRJ:
		return "BRJ"
	}
	return "algo?"
}

// ColRef names one column of a dataflow edge.
type ColRef struct {
	Name   string
	Type   storage.Type
	StrCap int
	// Dict, when non-nil, marks a dictionary-encoded string column
	// travelling as its int32 code on the I64 lane (Type is Int32 then);
	// DecodeNode turns it back into bytes. StrCap keeps the decoded cap.
	Dict *storage.DictColumn
}

// Node is a physical plan operator.
type Node interface {
	// Columns returns the output schema of the node.
	Columns() []ColRef
}

// ScanNode reads a stored table (early materialization). If RowID is
// non-empty an Int64 tuple-id column of that name is appended — the handle
// late materialization joins carry instead of payload (Section 4.2).
type ScanNode struct {
	Table *storage.Table
	Cols  []string
	RowID string
	// Pushed holds predicate conjuncts moved into the scan by the pushdown
	// pass: evaluated on raw storage with zone-map morsel/batch skipping.
	Pushed []exec.ScanPred
	// CodeCols names dictionary-encoded columns to emit as int32 codes
	// rather than decoded strings (set by the dictionary code-packing
	// pass; a DecodeNode above restores the bytes).
	CodeCols map[string]bool
}

// Scan builds a table scan over the named columns.
func Scan(t *storage.Table, cols ...string) *ScanNode {
	return &ScanNode{Table: t, Cols: cols}
}

// ScanRowID builds a scan that additionally emits tuple ids named rowID.
func ScanRowID(t *storage.Table, rowID string, cols ...string) *ScanNode {
	return &ScanNode{Table: t, Cols: cols, RowID: rowID}
}

// Columns implements Node.
func (n *ScanNode) Columns() []ColRef {
	out := make([]ColRef, 0, len(n.Cols)+1)
	for _, c := range n.Cols {
		ci := n.Table.Schema.MustCol(c)
		def := n.Table.Schema.Cols[ci]
		ref := ColRef{Name: c, Type: def.Type, StrCap: def.StrCap}
		if n.CodeCols[c] {
			ref.Type = storage.Int32
			ref.Dict = n.Table.Cols[ci].(*storage.DictColumn)
		}
		out = append(out, ref)
	}
	if n.RowID != "" {
		out = append(out, ColRef{Name: n.RowID, Type: storage.Int64})
	}
	return out
}

// FilterNode applies a predicate.
type FilterNode struct {
	Child Node
	Pred  expr.Pred
}

// Filter builds a selection.
func Filter(child Node, pred expr.Pred) *FilterNode { return &FilterNode{Child: child, Pred: pred} }

// Columns implements Node.
func (n *FilterNode) Columns() []ColRef { return n.Child.Columns() }

// MapNode appends computed columns.
type MapNode struct {
	Child Node
	Exprs []expr.Scalar
}

// Map builds a projection extension.
func Map(child Node, exprs ...expr.Scalar) *MapNode { return &MapNode{Child: child, Exprs: exprs} }

// Columns implements Node.
func (n *MapNode) Columns() []ColRef {
	out := append([]ColRef{}, n.Child.Columns()...)
	for _, e := range n.Exprs {
		out = append(out, ColRef{Name: e.Name, Type: e.Type, StrCap: e.StrCap})
	}
	return out
}

// RenameNode renames columns (no runtime cost; resolves self-join
// ambiguity).
type RenameNode struct {
	Child Node
	From  []string
	To    []string
}

// Rename builds a renaming: pairs of from, to.
func Rename(child Node, fromTo ...string) *RenameNode {
	n := &RenameNode{Child: child}
	for i := 0; i+1 < len(fromTo); i += 2 {
		n.From = append(n.From, fromTo[i])
		n.To = append(n.To, fromTo[i+1])
	}
	return n
}

// Columns implements Node.
func (n *RenameNode) Columns() []ColRef {
	out := append([]ColRef{}, n.Child.Columns()...)
	for i, f := range n.From {
		found := false
		for j := range out {
			if out[j].Name == f {
				out[j].Name = n.To[i]
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("plan: rename of unknown column %q", f))
		}
	}
	return out
}

// JoinNode is an equi-join. Build is the left/materialized side, Probe the
// right/streamed side. Payload lists name the columns each side contributes
// to the output (keys are materialized implicitly but only output when
// listed). ID identifies the join for per-join algorithm swaps (Fig. 12);
// Algo < 0 defers to the executor's default.
type JoinNode struct {
	ID         int
	Kind       core.JoinKind
	Algo       JoinAlgo
	HasAlgo    bool
	Build      Node
	Probe      Node
	BuildKeys  []string
	ProbeKeys  []string
	BuildPay   []string
	ProbePay   []string
	MarkName   string
	ResidualNe [][2]string // (buildCol, probeCol) pairs that must differ
}

// Columns implements Node.
func (n *JoinNode) Columns() []ColRef {
	var out []ColRef
	if n.Kind.HasBuildCols() {
		bcols := n.Build.Columns()
		for _, name := range n.BuildPay {
			out = append(out, mustRef(bcols, name))
		}
	}
	if n.Kind.HasProbeCols() {
		pcols := n.Probe.Columns()
		for _, name := range n.ProbePay {
			out = append(out, mustRef(pcols, name))
		}
	}
	if n.Kind == core.Mark {
		out = append(out, ColRef{Name: n.MarkName, Type: storage.Bool})
	}
	return out
}

// LateLoadNode fetches deferred columns of a base table by tuple id.
type LateLoadNode struct {
	Child Node
	Table *storage.Table
	RowID string
	Cols  []string
}

// LateLoad builds a late materialization fetch.
func LateLoad(child Node, t *storage.Table, rowID string, cols ...string) *LateLoadNode {
	return &LateLoadNode{Child: child, Table: t, RowID: rowID, Cols: cols}
}

// Columns implements Node.
func (n *LateLoadNode) Columns() []ColRef {
	out := append([]ColRef{}, n.Child.Columns()...)
	for _, c := range n.Cols {
		def := n.Table.Schema.Cols[n.Table.Schema.MustCol(c)]
		out = append(out, ColRef{Name: c, Type: def.Type, StrCap: def.StrCap})
	}
	return out
}

// ProjectNode narrows/reorders the output columns.
type ProjectNode struct {
	Child Node
	Cols  []string
}

// Project builds a projection to the named columns, in order.
func Project(child Node, cols ...string) *ProjectNode {
	return &ProjectNode{Child: child, Cols: cols}
}

// Columns implements Node.
func (n *ProjectNode) Columns() []ColRef {
	ccols := n.Child.Columns()
	out := make([]ColRef, len(n.Cols))
	for i, c := range n.Cols {
		out[i] = mustRef(ccols, c)
	}
	return out
}

// AggExpr is one aggregate of a GroupByNode.
type AggExpr struct {
	Kind exec.AggKind
	Col  string // "" for COUNT(*)
	As   string
}

// GroupByNode hash-aggregates.
type GroupByNode struct {
	Child Node
	Keys  []string
	Aggs  []AggExpr
}

// GroupBy builds an aggregation.
func GroupBy(child Node, keys []string, aggs ...AggExpr) *GroupByNode {
	return &GroupByNode{Child: child, Keys: keys, Aggs: aggs}
}

// Columns implements Node.
func (n *GroupByNode) Columns() []ColRef {
	ccols := n.Child.Columns()
	var out []ColRef
	for _, k := range n.Keys {
		out = append(out, mustRef(ccols, k))
	}
	for _, a := range n.Aggs {
		spec := exec.AggSpec{Kind: a.Kind}
		out = append(out, ColRef{Name: a.As, Type: spec.OutType(), StrCap: 64})
	}
	return out
}

// OrderKey orders by one column.
type OrderKey struct {
	Col  string
	Desc bool
}

// OrderByNode sorts (and optionally truncates) the result.
type OrderByNode struct {
	Child Node
	Keys  []OrderKey
	Limit int
}

// OrderBy builds a sort.
func OrderBy(child Node, limit int, keys ...OrderKey) *OrderByNode {
	return &OrderByNode{Child: child, Keys: keys, Limit: limit}
}

// Columns implements Node.
func (n *OrderByNode) Columns() []ColRef { return n.Child.Columns() }

// DecodeNode restores dictionary code columns (ColRef.Dict != nil) to their
// string values. The dictionary code-packing pass wraps the plan root with
// one so results always surface decoded bytes; everything below it moved
// 4-byte codes instead of string payloads.
type DecodeNode struct {
	Child Node
	// Cols names the code columns to decode; empty means every code column
	// in the child's output.
	Cols []string
}

// Columns implements Node.
func (n *DecodeNode) Columns() []ColRef {
	out := append([]ColRef{}, n.Child.Columns()...)
	decodeAll := len(n.Cols) == 0
	for i := range out {
		if out[i].Dict == nil {
			continue
		}
		if decodeAll || containsName(n.Cols, out[i].Name) {
			out[i].Type = storage.String
			out[i].Dict = nil
		}
	}
	return out
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// mustRef finds a column by name.
func mustRef(cols []ColRef, name string) ColRef {
	for _, c := range cols {
		if c.Name == name {
			return c
		}
	}
	panic(fmt.Sprintf("plan: unknown column %q (have %v)", name, names(cols)))
}

func names(cols []ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func mustIdx(cols []ColRef, name string) int {
	for i, c := range cols {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("plan: unknown column %q (have %v)", name, names(cols)))
}
