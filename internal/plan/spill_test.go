package plan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"partitionjoin/internal/core"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/hashx"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/storage"
)

// spillOpts arms the spill rung: radix join, a small budget, and a spill
// directory under parent.
func spillOpts(budget int64, parent string) Options {
	o := optsWith(RJ)
	o.Workers = 4
	o.MemBudget = budget
	o.SpillDir = parent
	return o
}

func requireEmptyDir(t *testing.T, parent string) {
	t.Helper()
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill parent dir not empty: %v", ents)
	}
}

// The acceptance test of the spill rung: a join whose build side alone is
// several times the budget completes with the exact in-memory answer, the
// governor's peak stays within budget plus one reload working set, and no
// spill file survives the query.
func TestSpillJoinBeyondBudgetIsExact(t *testing.T) {
	// 60000 build rows x 24 B/row ≈ 1.4 MiB ≈ 5.6x the 256 KiB budget;
	// the probe side is ~2.8 MiB. keyRange keeps the join result small so
	// the collected output does not dominate the governor's account.
	build, probe := makeTables(60000, 120000, 2_000_000, 21)
	node := joinPlan(build, probe, core.Inner)

	ref := Execute(optsWith(RJ), node)
	want := resultRows(ref.Result)
	sortRows(want)
	if len(want) == 0 {
		t.Fatal("reference join is empty; the correctness check would be vacuous")
	}

	parent := t.TempDir()
	const budget = 256 << 10
	res, err := ExecuteErr(context.Background(), spillOpts(budget, parent), node)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("spilled join wrong: %d rows, want %d", len(got), len(want))
	}

	if res.Spill.Partitions == 0 {
		t.Fatal("nothing spilled although the build side exceeds the budget several times over")
	}
	if res.Spill.SpilledBytes == 0 || res.Spill.ReloadedBytes == 0 {
		t.Fatalf("spill byte counters empty: %+v", res.Spill)
	}
	if res.Spill.MaxReloadBytes > budget {
		t.Fatalf("a single reload working set (%d B) exceeded the budget (%d B)",
			res.Spill.MaxReloadBytes, budget)
	}
	// Peak bound: budget + one reload working set + slack for per-worker
	// write-combine buffers and the collected result rows.
	slack := int64(256 << 10)
	if limit := budget + res.Spill.MaxReloadBytes + slack; res.MemPeak > limit {
		t.Fatalf("governor peak %d B exceeds budget+reload+slack %d B (reload %d B)",
			res.MemPeak, limit, res.Spill.MaxReloadBytes)
	}
	spilled := false
	for _, ev := range res.Degraded {
		if strings.Contains(ev, "spilled to disk") {
			spilled = true
		}
	}
	if !spilled {
		t.Fatalf("no spill event among degradations: %v", res.Degraded)
	}
	requireEmptyDir(t, parent)
}

// skewTables builds a pathological pair: every key lands in one pass-1
// partition (its low 6 hash bits are zero), so that single partition holds
// the whole build side and must recursively re-partition on reload.
func skewTables(t *testing.T, nKeys, nProbe int) (*storage.Table, *storage.Table) {
	t.Helper()
	keys := make([]int64, 0, nKeys)
	for k := int64(0); len(keys) < nKeys; k++ {
		if hashx.I64(k)&63 == 0 {
			keys = append(keys, k)
		}
	}
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "key", Type: storage.Int64},
		storage.ColumnDef{Name: "bval", Type: storage.Int64},
	)
	build := storage.NewTable("build", bs, nKeys)
	bkey := build.Cols[0].(*storage.Int64Column)
	bval := build.Cols[1].(*storage.Int64Column)
	for i, k := range keys {
		bkey.Values = append(bkey.Values, k)
		bval.Values = append(bval.Values, int64(i))
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "fkey", Type: storage.Int64},
		storage.ColumnDef{Name: "pval", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, nProbe)
	pkey := probe.Cols[0].(*storage.Int64Column)
	pval := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < nProbe; i++ {
		pkey.Values = append(pkey.Values, keys[i%len(keys)])
		pval.Values = append(pval.Values, int64(i)*7)
	}
	return build, probe
}

// A spilled partition that alone exceeds the budget must recursively
// re-partition on finer hash bits instead of blowing the budget on reload.
func TestSpillRecursesOnSkewedPartition(t *testing.T) {
	build, probe := skewTables(t, 8000, 16000)
	node := joinPlan(build, probe, core.Inner)

	ref := Execute(optsWith(RJ), node)
	want := resultRows(ref.Result)
	sortRows(want)

	parent := t.TempDir()
	res, err := ExecuteErr(context.Background(), spillOpts(96<<10, parent), node)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("skewed spilled join wrong: %d rows, want %d", len(got), len(want))
	}
	if res.Spill.Partitions == 0 {
		t.Fatal("the hot partition never spilled")
	}
	if res.Spill.Recursed == 0 {
		t.Fatalf("over-budget partition was not re-partitioned: %+v", res.Spill)
	}
	requireEmptyDir(t, parent)
}

// Injected disk faults on the spill path must fail the query with an error
// naming the damage — never return a wrong answer — and must leave no spill
// files behind.
func TestSpillInjectedFaultsFailCleanly(t *testing.T) {
	build, probe := makeTables(60000, 120000, 2_000_000, 23)
	node := joinPlan(build, probe, core.Inner)

	cases := []struct {
		name     string
		site     string
		fault    faultinject.Fault
		contains []string
		injected bool
	}{
		{
			name:     "write failure",
			site:     spill.WriteSite,
			fault:    faultinject.Fault{Kind: faultinject.Fail, Message: "disk full"},
			contains: []string{"spill: write", "disk full"},
			injected: true,
		},
		{
			name:     "short read",
			site:     spill.ReadSite,
			fault:    faultinject.Fault{Kind: faultinject.Fail, Message: "io error", Once: true},
			contains: []string{"short read", "frame"},
			injected: true,
		},
		{
			name:     "frame corruption",
			site:     spill.CorruptSite,
			fault:    faultinject.Fault{Kind: faultinject.Fail, Once: true},
			contains: []string{"checksum mismatch", "frame"},
		},
		{
			name:     "panic during reload",
			site:     core.ReloadSite,
			fault:    faultinject.Fault{Kind: faultinject.Panic, Message: "reload blew up", Once: true},
			contains: []string{"reload blew up"},
			injected: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.FailOnLeak(t)
			faultinject.Arm(t, tc.site, tc.fault)
			parent := t.TempDir()
			res, err := ExecuteErr(context.Background(), spillOpts(256<<10, parent), node)
			if err == nil {
				t.Fatalf("query succeeded (%d rows) despite injected %s",
					res.Result.NumRows(), tc.name)
			}
			for _, want := range tc.contains {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not contain %q", err, want)
				}
			}
			if tc.injected {
				var inj *faultinject.Injected
				if !errors.As(err, &inj) || inj.Site != tc.site {
					t.Fatalf("error %v does not carry the injected fault at %s", err, tc.site)
				}
			}
			requireEmptyDir(t, parent)
		})
	}
}

// A deadline expiring mid-spill must surface the context error promptly and
// leave the spill directory empty: the reload path polls cancellation and
// the executor's deferred cleanup removes the files.
func TestSpillCancellationMidReload(t *testing.T) {
	faultinject.FailOnLeak(t)
	build, probe := makeTables(60000, 120000, 2_000_000, 29)
	node := joinPlan(build, probe, core.Inner)

	// Stall the first reload long enough for the deadline to expire while
	// spill files exist on disk.
	faultinject.Arm(t, core.ReloadSite, faultinject.Fault{
		Kind: faultinject.Stall, Stall: 300 * time.Millisecond, Once: true,
	})
	parent := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	base := runtime.NumGoroutine()
	start := time.Now()
	_, err := ExecuteErr(ctx, spillOpts(256<<10, parent), node)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled spilling query still took %v", elapsed)
	}
	requireEmptyDir(t, parent)
	expectGoroutines(t, base)
}

// Regression: a spilled probe side whose layout carries string columns must
// yield rows whose string bytes stay intact. The partition join emits
// strings as zero-copy slices into the probe chunk, and the spill reader
// reuses its frame buffer between frames — without a defensive copy,
// reloaded rows' names are overwritten by the next frame and end up
// attached to the wrong tuples. The name encodes the row's pval, so any
// cross-tuple scramble is detected row by row.
func TestSpillStringProbePayloadStable(t *testing.T) {
	const nBuild, nProbe = 20000, 40000
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "key", Type: storage.Int64},
		storage.ColumnDef{Name: "bval", Type: storage.Int64},
	)
	build := storage.NewTable("build", bs, nBuild)
	bkey := build.Cols[0].(*storage.Int64Column)
	bval := build.Cols[1].(*storage.Int64Column)
	for i := 0; i < nBuild; i++ {
		bkey.Values = append(bkey.Values, int64(i%8000))
		bval.Values = append(bval.Values, int64(i))
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "fkey", Type: storage.Int64},
		storage.ColumnDef{Name: "pname", Type: storage.String, StrCap: 12},
		storage.ColumnDef{Name: "pval", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, nProbe)
	pkey := probe.Cols[0].(*storage.Int64Column)
	pname := probe.Cols[1].(*storage.StringColumn)
	pval := probe.Cols[2].(*storage.Int64Column)
	for i := 0; i < nProbe; i++ {
		pkey.Values = append(pkey.Values, int64((i*7)%8000))
		pname.AppendString(fmt.Sprintf("name-%06d", i))
		pval.Values = append(pval.Values, int64(i))
	}

	node := &JoinNode{
		ID: 1, Kind: core.Inner,
		Build:     Scan(build, "key", "bval"),
		Probe:     Scan(probe, "fkey", "pname", "pval"),
		BuildKeys: []string{"key"}, ProbeKeys: []string{"fkey"},
		BuildPay: []string{"bval"},
		ProbePay: []string{"pname", "pval"},
	}
	parent := t.TempDir()
	res, err := ExecuteErr(context.Background(), spillOpts(96<<10, parent), node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spill.Partitions == 0 {
		t.Fatal("workload did not spill; the test exercised nothing")
	}
	names, vals := res.Result.Vecs[1], res.Result.Vecs[2]
	for i := 0; i < res.Result.NumRows(); i++ {
		want := fmt.Sprintf("name-%06d", vals.I64[i])
		if got := string(names.Str[i]); got != want {
			t.Fatalf("row %d: string payload %q detached from its tuple (pval %d)", i, got, vals.I64[i])
		}
	}
	requireEmptyDir(t, parent)
}
