package plan

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
)

// brokerBalanced asserts no reservation leaked out of a finished workload.
func brokerBalanced(t *testing.T, b *admit.Broker) {
	t.Helper()
	if got := b.InUse(); got != 0 {
		t.Fatalf("broker imbalance after all queries finished: %d bytes still reserved", got)
	}
	if b.Pool() > 0 && b.Free() != b.Pool() {
		t.Fatalf("broker free %d != pool %d", b.Free(), b.Pool())
	}
}

func TestBrokerAdmissionRoundTrip(t *testing.T) {
	build, probe := makeTables(4000, 20000, 5000, 7)
	node := joinPlan(build, probe, core.Inner)
	want := resultRows(Execute(DefaultOptions(), node).Result)
	sortRows(want)

	broker := admit.NewBroker(admit.Config{GlobalMem: 64 << 20})
	defer broker.Close()
	opts := optsWith(RJ)
	opts.MemBudget = 32 << 20
	opts.Broker = broker
	res, err := ExecuteErr(context.Background(), opts, node)
	if err != nil {
		t.Fatal(err)
	}
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatal("admitted query returned a different result")
	}
	if res.Reserved != 32<<20 {
		t.Fatalf("ExecResult.Reserved = %d, want the 32 MiB reservation", res.Reserved)
	}
	brokerBalanced(t, broker)
}

func TestBrokerShedSurfacesOverloaded(t *testing.T) {
	build, probe := makeTables(2000, 10000, 3000, 11)
	// MaxWait < 0: anything that cannot be admitted on arrival is shed.
	broker := admit.NewBroker(admit.Config{GlobalMem: 1 << 20, MaxWait: -1})
	defer broker.Close()
	hold, _, err := broker.Admit(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	opts := optsWith(RJ)
	opts.MemBudget = 1 << 20
	opts.Broker = broker
	_, err = ExecuteErr(context.Background(), opts, joinPlan(build, probe, core.Inner))
	if !errors.Is(err, admit.ErrOverloaded) {
		t.Fatalf("exhausted pool returned %v, want ErrOverloaded", err)
	}
	var oe *admit.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error carries no backoff: %v", err)
	}
	hold.Release()
	brokerBalanced(t, broker)
}

// TestConcurrentExecuteSharedBroker is the in-package half of the
// concurrency soak: N queries share one broker whose pool is smaller than
// their combined working sets, with spill armed, one query cancelled
// mid-run, and one worker panic injected. Every query must end in exactly
// one of: correct result, ErrOverloaded, its own cancellation, or the
// injected panic — and the panic must not poison its neighbours. Runs
// under -race in the soak gate.
func TestConcurrentExecuteSharedBroker(t *testing.T) {
	faultinject.FailOnLeak(t)
	build, probe := makeTables(30000, 120000, 1_000_000, 13)
	node := joinPlan(build, probe, core.Inner)
	want := resultRows(Execute(DefaultOptions(), node).Result)
	sortRows(want)

	const queries = 8
	// Per-query budget 256 KiB against a ~720 KiB build side: every
	// admitted query has to degrade or spill. Pool of 1 MiB admits ~4 at
	// a time; the rest queue.
	broker := admit.NewBroker(admit.Config{GlobalMem: 1 << 20, QueueDepth: queries, MaxWait: 30 * time.Second})
	defer broker.Close()
	spillParent := t.TempDir()

	// Exactly one worker somewhere gets a mid-stream panic.
	faultinject.Arm(t, exec.MorselSite, faultinject.Fault{
		Kind: faultinject.Panic, After: 5, Message: "injected neighbour panic", Once: true,
	})

	cancelCtx, cancelOne := context.WithCancel(context.Background())
	defer cancelOne()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancelOne()
	}()

	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var correct, overloaded, cancelled, panicked int
	var unexpected []error
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			opts := optsWith(RJ)
			opts.Workers = 2
			opts.MemBudget = 256 << 10
			opts.SpillDir = spillParent
			opts.Broker = broker
			ctx := context.Background()
			if q == 0 {
				ctx = cancelCtx
			}
			res, err := ExecuteErr(ctx, opts, node)
			mu.Lock()
			defer mu.Unlock()
			var inj *faultinject.Injected
			switch {
			case err == nil:
				got := resultRows(res.Result)
				sortRows(got)
				if !rowsEqual(got, want) {
					unexpected = append(unexpected, errors.New("wrong answer under concurrency"))
					return
				}
				correct++
			case errors.Is(err, admit.ErrOverloaded):
				overloaded++
			case q == 0 && errors.Is(err, context.Canceled):
				cancelled++
			case errors.As(err, &inj):
				panicked++
			default:
				unexpected = append(unexpected, err)
			}
		}(q)
	}
	wg.Wait()

	for _, err := range unexpected {
		t.Errorf("unexpected outcome: %v", err)
	}
	if panicked > 1 {
		t.Fatalf("one injected panic poisoned %d queries", panicked)
	}
	if correct == 0 {
		t.Fatal("no query completed correctly under shared admission")
	}
	if correct+overloaded+cancelled+panicked != queries {
		t.Fatalf("outcomes %d correct + %d overloaded + %d cancelled + %d panicked != %d queries",
			correct, overloaded, cancelled, panicked, queries)
	}
	brokerBalanced(t, broker)
	requireEmptyDir(t, spillParent)
	expectGoroutines(t, base)
}

// TestWatchdogCancelsStalledQuery stalls one worker mid-morsel far longer
// than the stall window; the broker's watchdog must cancel the query with
// ErrStalled and reclaim its reservation while the worker is still asleep.
func TestWatchdogCancelsStalledQuery(t *testing.T) {
	faultinject.FailOnLeak(t)
	build, probe := makeTables(2000, 200000, 3000, 9)
	broker := admit.NewBroker(admit.Config{
		GlobalMem: 64 << 20, StallWindow: 40 * time.Millisecond, WatchdogInterval: 10 * time.Millisecond,
	})
	defer broker.Close()
	faultinject.Arm(t, exec.MorselSite, faultinject.Fault{
		Kind: faultinject.Stall, Stall: 600 * time.Millisecond, After: 1, Once: true,
	})

	opts := optsWith(BHJ)
	opts.MemBudget = 1 << 20
	opts.Broker = broker
	start := time.Now()
	_, err := ExecuteErr(context.Background(), opts, joinPlan(build, probe, core.Inner))
	if !errors.Is(err, admit.ErrStalled) {
		t.Fatalf("stalled query returned %v, want ErrStalled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled query took %v to be cancelled", elapsed)
	}
	if broker.StallKills() == 0 {
		t.Fatal("watchdog recorded no kill")
	}
	brokerBalanced(t, broker)
}

// TestBrokerGrowsReservationBeforeDegrading: with the pool otherwise idle,
// a query whose initial reservation is too small for the radix join draws
// the deficit from the pool instead of falling back to BHJ.
func TestBrokerGrowsReservationBeforeDegrading(t *testing.T) {
	build, probe := makeTables(30000, 120000, 1_000_000, 13)
	node := joinPlan(build, probe, core.Inner)
	broker := admit.NewBroker(admit.Config{GlobalMem: 256 << 20})
	defer broker.Close()
	opts := optsWith(RJ)
	opts.MemBudget = 256 << 10 // far below the radix working set
	opts.Broker = broker
	res, err := ExecuteErr(context.Background(), opts, node)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reserved <= 256<<10 {
		t.Fatalf("reservation did not grow: %d B", res.Reserved)
	}
	for _, ev := range res.Degraded {
		t.Logf("event: %s", ev)
	}
	brokerBalanced(t, broker)
}
