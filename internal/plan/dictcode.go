package plan

import (
	"sort"

	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// encodeDictCodes rewrites the plan so dictionary-encoded string columns
// travel as their 4-byte codes wherever that is provably transparent, and
// wraps the root in a DecodeNode restoring the bytes. Because the dictionary
// is sorted, codes preserve equality (GROUP BY keys), order (ORDER BY keys)
// and join-payload identity — so a column may stay encoded through those. It
// must be decoded at the scan instead when anything looks at the bytes or
// fabricates values the dictionary cannot explain:
//
//   - residual filter predicates and scalar expressions (they read Str),
//   - aggregate inputs (min/max over strings read Str),
//   - join KEYS (the other side's values are not codes of this dictionary),
//   - any non-inner join (unmatched-row sweeps emit zero codes, which would
//     decode to dictionary entry 0 instead of an empty string),
//   - late loads (they fetch by rowid into plain Str vectors).
//
// The payoff is the paper's payload-size factor (Figure 10): join build rows
// pack 4 bytes per dictionary column instead of the padded string width.
func encodeDictCodes(root Node) Node {
	a := &dictAnalysis{unsafe: map[dictOrigin]bool{}}
	top := a.walk(root)
	var decode []string
	for name, o := range top {
		if !a.unsafe[o] {
			decode = append(decode, name)
		}
	}
	if len(decode) == 0 {
		return root
	}
	sort.Strings(decode)
	return &DecodeNode{Child: a.rewrite(root), Cols: decode}
}

// dictOrigin identifies one dictionary column at its scan; tracking origins
// (not names) survives renames and self-joins scanning the same table twice.
type dictOrigin struct {
	scan *ScanNode
	col  string
}

type dictAnalysis struct {
	unsafe map[dictOrigin]bool
}

func (a *dictAnalysis) mark(m map[string]dictOrigin, name string) {
	if o, ok := m[name]; ok {
		a.unsafe[o] = true
	}
}

func (a *dictAnalysis) markAll(m map[string]dictOrigin) {
	for _, o := range m {
		a.unsafe[o] = true
	}
}

// walk returns, for each output column name of n that traces back to a
// dictionary column at a scan, its origin — marking origins unsafe where
// the tree consumes string bytes.
func (a *dictAnalysis) walk(n Node) map[string]dictOrigin {
	switch n := n.(type) {
	case *ScanNode:
		m := map[string]dictOrigin{}
		for _, c := range n.Cols {
			if _, ok := n.Table.Cols[n.Table.Schema.MustCol(c)].(*storage.DictColumn); ok {
				m[c] = dictOrigin{scan: n, col: c}
			}
		}
		return m
	case *FilterNode:
		m := a.walk(n.Child)
		// Residual predicates compare decoded bytes.
		for _, c := range n.Pred.Cols {
			a.mark(m, c)
		}
		return m
	case *MapNode:
		m := a.walk(n.Child)
		for _, e := range n.Exprs {
			for _, c := range e.Cols {
				a.mark(m, c)
			}
			// A computed column shadowing a tracked name unlinks it.
			delete(m, e.Name)
		}
		return m
	case *RenameNode:
		m := a.walk(n.Child)
		for i, f := range n.From {
			if o, ok := m[f]; ok {
				delete(m, f)
				m[n.To[i]] = o
			}
		}
		return m
	case *ProjectNode:
		m := a.walk(n.Child)
		out := map[string]dictOrigin{}
		for _, c := range n.Cols {
			if o, ok := m[c]; ok {
				out[c] = o
			}
		}
		return out
	case *LateLoadNode:
		// Late-loaded columns arrive decoded; pass the child's map through.
		return a.walk(n.Child)
	case *GroupByNode:
		m := a.walk(n.Child)
		for _, g := range n.Aggs {
			if g.Col != "" {
				a.mark(m, g.Col)
			}
		}
		out := map[string]dictOrigin{}
		for _, k := range n.Keys {
			if o, ok := m[k]; ok {
				out[k] = o
			}
		}
		return out
	case *OrderByNode:
		// Sorted dictionary: ordering by codes equals ordering by bytes.
		return a.walk(n.Child)
	case *DecodeNode:
		m := a.walk(n.Child)
		a.markAll(m)
		return m
	case *JoinNode:
		bm := a.walk(n.Build)
		pm := a.walk(n.Probe)
		if n.Kind != core.Inner {
			// Outer/semi/anti/mark joins fabricate or drop rows; unmatched
			// sweeps emit zeroed payloads that must not decode to entry 0.
			a.markAll(bm)
			a.markAll(pm)
		}
		for _, k := range n.BuildKeys {
			a.mark(bm, k)
		}
		for _, k := range n.ProbeKeys {
			a.mark(pm, k)
		}
		for _, r := range n.ResidualNe {
			a.mark(bm, r[0])
			a.mark(pm, r[1])
		}
		out := map[string]dictOrigin{}
		if n.Kind.HasBuildCols() {
			for _, name := range n.BuildPay {
				if o, ok := bm[name]; ok {
					out[name] = o
				}
			}
		}
		if n.Kind.HasProbeCols() {
			for _, name := range n.ProbePay {
				if o, ok := pm[name]; ok {
					out[name] = o
				}
			}
		}
		return out
	}
	return map[string]dictOrigin{}
}

// rewrite copies the tree, adding CodeCols to scans whose dictionary columns
// survived the analysis as safe.
func (a *dictAnalysis) rewrite(n Node) Node {
	switch n := n.(type) {
	case *ScanNode:
		var safe map[string]bool
		for _, c := range n.Cols {
			o := dictOrigin{scan: n, col: c}
			if _, ok := n.Table.Cols[n.Table.Schema.MustCol(c)].(*storage.DictColumn); ok && !a.unsafe[o] {
				if safe == nil {
					safe = map[string]bool{}
				}
				safe[c] = true
			}
		}
		if safe == nil {
			return n
		}
		cp := *n
		cp.CodeCols = safe
		return &cp
	case *FilterNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *MapNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *RenameNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *ProjectNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *LateLoadNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *GroupByNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *OrderByNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *DecodeNode:
		return rewrap(n, &n.Child, a.rewrite(n.Child), func() Node { cp := *n; return &cp })
	case *JoinNode:
		build := a.rewrite(n.Build)
		probe := a.rewrite(n.Probe)
		if build == n.Build && probe == n.Probe {
			return n
		}
		cp := *n
		cp.Build, cp.Probe = build, probe
		return &cp
	}
	return n
}

// rewrap in pushdown.go handles the single-child copies for both passes.

// decodeOp swaps dictionary code vectors for decoded string vectors while
// the batch flows to the next operator, then restores them — the same
// borrow-and-return protocol scalarOp uses.
type decodeOp struct {
	next  exec.Operator
	idx   []int
	dicts []*storage.DictColumn
	vecs  []exec.Vector
	saved []exec.Vector
}

// Process implements exec.Operator.
func (o *decodeOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	if b.N == 0 {
		return
	}
	for i, vi := range o.idx {
		codes := b.Vecs[vi].I64
		v := &o.vecs[i]
		v.Reset()
		for _, c := range codes[:b.N] {
			v.Str = append(v.Str, o.dicts[i].DictValue(int32(c)))
		}
		o.saved[i] = b.Vecs[vi]
		b.Vecs[vi] = *v
	}
	o.next.Process(ctx, b)
	for i, vi := range o.idx {
		o.vecs[i] = b.Vecs[vi]
		b.Vecs[vi] = o.saved[i]
	}
}

// Flush implements exec.Operator.
func (o *decodeOp) Flush(ctx *exec.Ctx) { o.next.Flush(ctx) }
