package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/storage"
)

// adaptOpts arms the runtime escape hatch: a BHJ plan under a budget with a
// spill directory to migrate into. (Mirrors spillOpts, which arms the
// static spill rung with a radix plan instead.)
func adaptOpts(budget int64, parent string) Options {
	o := optsWith(BHJ)
	o.Workers = 4
	o.MemBudget = budget
	o.SpillDir = parent
	return o
}

// allKinds is every join kind the engine implements; the differential
// tests pin adaptive == static for each one.
var allKinds = []core.JoinKind{
	core.Inner, core.Semi, core.Anti, core.Mark,
	core.LeftOuter, core.RightOuter, core.LeftSemi, core.LeftAnti,
}

// hotTables builds a join input with key-multiplicity skew: one hot key
// carries nHot build rows, the rest are distinct. Unlike skewTables (whose
// pass-1 skew the second partitioning pass spreads right back out), a hot
// KEY cannot be spread by more fan-out bits — every copy hashes
// identically — so the resident partition holding it stays oversized and
// the join-time split trigger fires.
func hotTables(nHot, nCold, hotProbes int) (*storage.Table, *storage.Table) {
	const hotKey = int64(7)
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "key", Type: storage.Int64},
		storage.ColumnDef{Name: "bval", Type: storage.Int64},
	)
	build := storage.NewTable("build", bs, nHot+nCold)
	bkey := build.Cols[0].(*storage.Int64Column)
	bval := build.Cols[1].(*storage.Int64Column)
	for i := 0; i < nHot; i++ {
		bkey.Values = append(bkey.Values, hotKey)
		bval.Values = append(bval.Values, int64(i)*3)
	}
	for i := 0; i < nCold; i++ {
		bkey.Values = append(bkey.Values, hotKey+1+int64(i))
		bval.Values = append(bval.Values, int64(nHot+i)*3)
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "fkey", Type: storage.Int64},
		storage.ColumnDef{Name: "pval", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, nCold+hotProbes)
	pkey := probe.Cols[0].(*storage.Int64Column)
	pval := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < hotProbes; i++ {
		pkey.Values = append(pkey.Values, hotKey)
		pval.Values = append(pval.Values, int64(i)*7)
	}
	for i := 0; i < nCold; i++ {
		pkey.Values = append(pkey.Values, hotKey+1+int64(i))
		pval.Values = append(pval.Values, int64(hotProbes+i)*7)
	}
	return build, probe
}

// staticRows runs the plan with adaptation off and returns its sorted rows
// — the reference side of every differential below.
func staticRows(t *testing.T, opts Options, node Node) [][]int64 {
	t.Helper()
	opts.NoAdapt = true
	res, err := ExecuteErr(context.Background(), opts, node)
	if err != nil {
		t.Fatalf("static run failed: %v", err)
	}
	if res.Adapt.Any() {
		t.Fatalf("NoAdapt run still adapted: %+v", res.Adapt)
	}
	rows := resultRows(res.Result)
	sortRows(rows)
	return rows
}

// Differential over every join kind for the first trigger path: a BHJ
// build that outgrows its budget mid-build migrates to radix partitions
// and must produce the static plan's rows bit-for-bit.
func TestAdaptiveMigrationMatchesStatic(t *testing.T) {
	// 60000 build rows x 24 B packed ≈ 1.4 MiB ≈ 5.6x the 256 KiB budget:
	// the projected close-time footprint crosses the budget a few morsels
	// into the build, well before it completes.
	build, probe := makeTables(60000, 120000, 2_000_000, 21)
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			node := joinPlan(build, probe, kind)
			want := staticRows(t, optsWith(BHJ), node)

			parent := t.TempDir()
			opts := adaptOpts(256<<10, parent)
			opts.Stats = NewStatsCollector()
			res, err := ExecuteErr(context.Background(), opts, node)
			if err != nil {
				t.Fatalf("adaptive run failed: %v", err)
			}
			if res.Adapt.Migrations == 0 {
				t.Fatalf("build 5.6x over budget did not migrate: %+v", res.Adapt)
			}
			got := resultRows(res.Result)
			sortRows(got)
			if !rowsEqual(got, want) {
				t.Fatalf("adaptive result diverged from static: %d rows, want %d", len(got), len(want))
			}
			joins := opts.Stats.Joins()
			if len(joins) != 1 || !joins[0].Adapted {
				t.Fatalf("JoinStat.Adapted not set after migration: %+v", joins)
			}
			requireEmptyDir(t, parent)
		})
	}
}

// Differential for the second trigger path: key-multiplicity skew makes
// one resident partition dwarf the cache budget, so the join phase
// re-partitions it on further bits. An unbudgeted radix join must split
// without recording any degradation event — splitting is a locality
// decision, not a memory concession.
func TestAdaptiveSkewSplitMatchesStatic(t *testing.T) {
	// 20000 copies of the hot key x 24 B ≈ 480 KiB in one resident
	// partition vs a 4x32 KiB split threshold.
	build, probe := hotTables(20000, 40000, 4)
	for _, kind := range []core.JoinKind{core.Inner, core.LeftOuter, core.Mark} {
		t.Run(kind.String(), func(t *testing.T) {
			node := joinPlan(build, probe, kind)
			want := staticRows(t, optsWith(RJ), node)

			opts := optsWith(RJ)
			opts.Workers = 4
			opts.Core.CacheBudget = 8 << 10
			res, err := ExecuteErr(context.Background(), opts, node)
			if err != nil {
				t.Fatalf("adaptive run failed: %v", err)
			}
			if res.Adapt.Splits == 0 {
				t.Fatalf("hot partition 15x over split threshold did not split: %+v", res.Adapt)
			}
			if len(res.Degraded) != 0 {
				t.Fatalf("unbudgeted split recorded degradation events: %v", res.Degraded)
			}
			got := resultRows(res.Result)
			sortRows(got)
			if !rowsEqual(got, want) {
				t.Fatalf("adaptive result diverged from static: %d rows, want %d", len(got), len(want))
			}
		})
	}
}

// Differential for the third trigger path: the migrated radix twin itself
// outgrows the budget and spills partitions to disk — migration and spill
// compose, the answer stays exact, and no spill file survives the query.
func TestAdaptiveSpillUnderMigration(t *testing.T) {
	build, probe := makeTables(60000, 120000, 2_000_000, 21)
	node := joinPlan(build, probe, core.Inner)
	want := staticRows(t, optsWith(BHJ), node)

	parent := t.TempDir()
	// 128 KiB: tight enough that after the BHJ→radix migration the
	// partition pages of both sides cannot stay resident either.
	res, err := ExecuteErr(context.Background(), adaptOpts(128<<10, parent), node)
	if err != nil {
		t.Fatalf("adaptive run failed: %v", err)
	}
	if res.Adapt.Migrations == 0 {
		t.Fatalf("build did not migrate: %+v", res.Adapt)
	}
	if res.Spill.Partitions == 0 {
		t.Fatal("migrated join under a 128 KiB budget never spilled")
	}
	got := resultRows(res.Result)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("adaptive+spill result diverged from static: %d rows, want %d", len(got), len(want))
	}
	requireEmptyDir(t, parent)
}

// Every adaptation fault site fires under its natural trigger scenario: a
// zero-duration Stall fault is a pure trigger counter, so this asserts the
// sites sit on the real decision paths without perturbing them.
func TestFaultInjectionAdaptSitesFire(t *testing.T) {
	faultinject.FailOnLeak(t)
	sites := []string{
		adapt.ReserveGrowSite, adapt.ReserveDenySite, adapt.MigrateSite,
		adapt.SplitSite, adapt.ReserveShrinkSite,
	}
	for _, site := range sites {
		faultinject.Arm(t, site, faultinject.Fault{Kind: faultinject.Stall})
	}

	// Scenario 1: build overruns a budget with no shared pool behind it —
	// grow is attempted, denied, and the build migrates.
	build, probe := makeTables(60000, 120000, 2_000_000, 21)
	if _, err := ExecuteErr(context.Background(),
		adaptOpts(256<<10, t.TempDir()), joinPlan(build, probe, core.Inner)); err != nil {
		t.Fatal(err)
	}

	// Scenario 2: key-multiplicity skew splits a resident partition.
	hb, hp := hotTables(20000, 40000, 4)
	opts := optsWith(RJ)
	opts.Core.CacheBudget = 8 << 10
	if _, err := ExecuteErr(context.Background(), opts, joinPlan(hb, hp, core.Inner)); err != nil {
		t.Fatal(err)
	}

	// Scenario 3: a small build under a huge budget shrinks its
	// reservation after the build closes. (The shrink site fires before
	// the pool transfer, so no broker is needed.)
	sb, sp := makeTables(2000, 4000, 3000, 5)
	if _, err := ExecuteErr(context.Background(),
		adaptOpts(64<<20, t.TempDir()), joinPlan(sb, sp, core.Inner)); err != nil {
		t.Fatal(err)
	}

	for _, site := range sites {
		if n := faultinject.Triggers(site); n == 0 {
			t.Errorf("site %s never fired", site)
		}
	}
}

// A mid-migration crash must be contained: the error names the injected
// fault, the spill parent is empty, the admission reservation is returned
// to the pool in full, and no pipeline worker survives the query.
func TestFaultInjectionAdaptMigrationFailsCleanly(t *testing.T) {
	faultinject.FailOnLeak(t)
	faultinject.Arm(t, adapt.MigrateSite,
		faultinject.Fault{Kind: faultinject.Panic, Message: "migration blew up", Once: true})

	build, probe := makeTables(60000, 120000, 2_000_000, 21)
	// The pool admits the 256 KiB reservation but is too small to cover the
	// ~1.4 MiB observed build, so the grow rung is denied and the build
	// migrates — straight into the armed fault.
	broker := admit.NewBroker(admit.Config{GlobalMem: 512 << 10})
	defer broker.Close()
	parent := t.TempDir()
	opts := adaptOpts(256<<10, parent)
	opts.Broker = broker

	base := runtime.NumGoroutine()
	res, err := ExecuteErr(context.Background(), opts, joinPlan(build, probe, core.Inner))
	if err == nil {
		t.Fatalf("injected migration panic returned success: %v rows", res.Result.NumRows())
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != adapt.MigrateSite {
		t.Fatalf("error does not carry the injected fault: %v", err)
	}
	requireEmptyDir(t, parent)
	brokerBalanced(t, broker)
	expectGoroutines(t, base)
}

// Soak: concurrent queries whose estimates are corrupted in both
// directions, under admission control. Every query either completes with
// the exact static answer or is shed with an overload error; the pool is
// balanced afterwards and no spill file survives.
func TestAdaptSoakCorruptedEstimates(t *testing.T) {
	build, probe := makeTables(20000, 40000, 500_000, 11)
	node := joinPlan(build, probe, core.Inner)
	want := staticRows(t, optsWith(BHJ), node)

	broker := admit.NewBroker(admit.Config{GlobalMem: 16 << 20, MaxConcurrency: 4})
	defer broker.Close()
	parent := t.TempDir()

	scales := []float64{1.0 / 16, 1.0 / 4, 4, 16}
	algos := []JoinAlgo{BHJ, RJ}
	var wg sync.WaitGroup
	errs := make(chan error, len(scales)*len(algos)*2)
	var ok int64
	var okMu sync.Mutex
	for round := 0; round < 2; round++ {
		for _, scale := range scales {
			for _, algo := range algos {
				wg.Add(1)
				go func(scale float64, algo JoinAlgo) {
					defer wg.Done()
					opts := optsWith(algo)
					opts.Workers = 2
					opts.MemBudget = 1 << 20
					opts.SpillDir = parent
					opts.Broker = broker
					opts.EstimateScale = scale
					res, err := ExecuteErr(context.Background(), opts, node)
					if err != nil {
						var oe *admit.OverloadError
						if !errors.As(err, &oe) {
							errs <- fmt.Errorf("estimate x%g %v: %w", scale, algo, err)
						}
						return
					}
					got := resultRows(res.Result)
					sortRows(got)
					if !rowsEqual(got, want) {
						errs <- fmt.Errorf("estimate x%g %v: result diverged (%d rows, want %d)",
							scale, algo, len(got), len(want))
						return
					}
					okMu.Lock()
					ok++
					okMu.Unlock()
				}(scale, algo)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if ok == 0 {
		t.Fatal("every corrupted-estimate query was shed; soak exercised nothing")
	}
	brokerBalanced(t, broker)
	requireEmptyDir(t, parent)
}
