package plan

import (
	"sort"
	"sync"
)

// JoinStat describes one executed join for the per-join analysis: build and
// probe cardinalities and materialized tuple widths give the axes of
// Figure 1, the probe width and match rate feed the workload histograms of
// Figure 2, and Q21's annotated tree (Figure 13) prints straight from it.
type JoinStat struct {
	ID   int
	Algo JoinAlgo
	Kind string

	BuildRows int64
	ProbeRows int64
	Matches   int64

	// Adapted reports that this join changed its plan-time decision at
	// runtime (a BHJ build migrated to radix partitions mid-build).
	Adapted bool

	// Tuple widths of the materialized row layouts (the BHJ streams its
	// probe side, so ProbeTupleBytes reports what a radix join would
	// have to materialize).
	BuildTupleBytes int
	ProbeTupleBytes int
}

// BuildBytes returns the materialized build-side volume.
func (s *JoinStat) BuildBytes() int64 { return s.BuildRows * int64(s.BuildTupleBytes) }

// ProbeBytes returns the probe-side volume at the join's tuple width.
func (s *JoinStat) ProbeBytes() int64 { return s.ProbeRows * int64(s.ProbeTupleBytes) }

// MatchRate returns matches per probe tuple (the "join partner %" of
// Figure 2, capped at 1 for many-to-many joins).
func (s *JoinStat) MatchRate() float64 {
	if s.ProbeRows == 0 {
		return 0
	}
	r := float64(s.Matches) / float64(s.ProbeRows)
	if r > 1 {
		r = 1
	}
	return r
}

// StatsCollector gathers JoinStats across the (possibly multi-stage)
// execution of a query. Safe for concurrent use.
type StatsCollector struct {
	mu    sync.Mutex
	stats []*JoinStat
}

// NewStatsCollector returns an empty collector; attach it via Options.Stats.
func NewStatsCollector() *StatsCollector { return &StatsCollector{} }

func (c *StatsCollector) add(s *JoinStat) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = append(c.stats, s)
}

// Joins returns the collected stats ordered by join ID.
func (c *StatsCollector) Joins() []*JoinStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]*JoinStat{}, c.stats...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
