package plan

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/spill"
	"partitionjoin/internal/storage"
)

// ExecResult is the outcome of executing a plan.
type ExecResult struct {
	Result *exec.Result
	Cols   []ColRef
	// SourceRows is the number of tuples emitted at pipeline sources;
	// the TPC-H throughput metric divides it by Duration (Section 5.3).
	SourceRows int64
	Duration   time.Duration
	// Degraded lists the memory governor's degradation decisions (BHJ
	// fallbacks, fan-out reductions, partition spills and reloads) taken
	// while executing this plan.
	Degraded []string
	// MemPeak is the high-water mark of governor-accounted bytes.
	MemPeak int64
	// DroppedEvents is how many degradation events the governor's bounded
	// log evicted; Degraded holds head and tail, this is the gap.
	DroppedEvents int64
	// Spill aggregates the spill-to-disk activity of all joins (zero when
	// nothing spilled or no spill directory was configured).
	Spill core.SpillStats
	// Reserved is the final admission reservation in bytes (initial grant
	// plus pool growth); zero when no broker was configured.
	Reserved int64
	// AdmitWait is how long the query queued for admission.
	AdmitWait time.Duration
	// Scan aggregates the scan layer's zone-map pruning and pushed-predicate
	// prefiltering counters for this query.
	Scan meter.ScanStats
	// Adapt is the runtime adaptation summary: mid-build migrations,
	// partition splits, reservation revisions, and the decision event log.
	// Zero when nothing adapted or Options.NoAdapt was set.
	Adapt adapt.Stats
	// Pool is the buffer-pool activity observed while this query ran, for
	// plans that scanned disk-backed tables; nil for RAM-resident plans.
	// Counters are deltas over the query (the pool is shared, so they
	// include any concurrent traffic); ResidentBytes is the pool's
	// residency as the query finished.
	Pool *storage.PagerStats
}

// Throughput returns source tuples per second.
func (r *ExecResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.SourceRows) / r.Duration.Seconds()
}

// ExecuteErr compiles and runs a plan tree under the given context,
// collecting the root's output. Cancellation and deadline expiry surface as
// the context's error; worker panics are contained by the driver and
// surface as errors naming the pipeline; compile-time panics (unknown
// columns, malformed trees) are converted to errors too. A positive
// Options.MemBudget arms the memory governor, which degrades radix joins
// rather than failing the query (see internal/govern). With Options.Broker
// set, the query first passes admission control: it may queue for pool
// memory, be shed with admit.ErrOverloaded, or later be cancelled by the
// stuck-query watchdog; the reservation is released when the query ends on
// any path.
func ExecuteErr(ctx context.Context, opts Options, root Node) (res *ExecResult, err error) {
	defer recoverToErr(&res, &err)
	p := Prepare(opts, root)
	return p.run(ctx, opts)
}

// recoverToErr converts compile-time panics (unknown columns, malformed
// trees) into errors; runtime worker panics are already contained by the
// driver.
func recoverToErr(res **ExecResult, err *error) {
	if r := recover(); r != nil {
		*res = nil
		if e, ok := r.(error); ok {
			*err = fmt.Errorf("plan: %w", e)
		} else {
			*err = fmt.Errorf("plan: %v", r)
		}
	}
}

// run admits (or adopts the caller's reservation) and executes the prepared
// tree. It is the shared core of ExecuteErr and Prepared.ExecuteErr; callers
// must have a recoverToErr deferred.
func (p *Prepared) run(ctx context.Context, opts Options) (*ExecResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.SpillDir == "" && opts.DataDir != "" {
		opts.SpillDir = filepath.Join(opts.DataDir, "spill")
	}
	rsv := opts.Reservation
	budget := opts.MemBudget
	switch {
	case rsv != nil:
		// The caller admitted and keeps the reservation across whatever
		// follows execution (e.g. streaming rows to a client); it runs us
		// under the admitted context and releases when done.
		budget = rsv.Bytes()
	case opts.Broker != nil:
		r, actx, aerr := opts.Broker.Admit(ctx, opts.MemBudget)
		if aerr != nil {
			return nil, fmt.Errorf("plan: %w", aerr)
		}
		// Released on success, error, cancellation, and contained panic
		// alike — the pool must balance to zero whatever the query does.
		defer r.Release()
		rsv, ctx = r, actx
		budget = r.Bytes()
	}
	gov := govern.New(budget)
	if rsv != nil {
		gov.SetBacking(rsv)
	}
	// The scan counters live on the meter; give the query a private one when
	// the caller didn't ask for metering so ExecResult.Scan is always real.
	if opts.Meter == nil {
		opts.Meter = meter.New()
	}
	root := p.root
	c := &compiler{opts: opts, gov: gov, workers: workers}
	if !opts.NoAdapt {
		c.adapt = adapt.NewController(adapt.Config{}, gov, opts.Meter)
	}
	if opts.SpillDir != "" {
		dir, derr := spill.NewDir(opts.SpillDir)
		if derr != nil {
			return nil, fmt.Errorf("plan: %w", derr)
		}
		// Deferred cleanup runs on success, error, cancellation, and panic
		// alike: no spill file survives the query.
		defer dir.Cleanup()
		c.spillDir = dir
	}
	pp := c.compile(root)
	ts, caps := vecTypes(pp.cols)
	sink := &exec.CollectSink{Types: ts, Caps: caps, Gov: gov}
	c.terminate(pp, sink, "collect")
	poolPre := sumPagerStats(c.pagers)

	d := exec.NewDriver(workers)
	d.Meter = opts.Meter
	d.Progress = rsv.ProgressCounter()
	start := time.Now()
	if err := d.RunAll(ctx, c.pipelines); err != nil {
		return nil, err
	}
	for _, h := range c.harvests {
		h()
	}
	var spst core.SpillStats
	for _, sp := range c.spills {
		spst.Add(sp.Stats())
	}
	var pool *storage.PagerStats
	if len(c.pagers) > 0 {
		post := sumPagerStats(c.pagers)
		pool = &storage.PagerStats{
			Pins:          post.Pins - poolPre.Pins,
			Hits:          post.Hits - poolPre.Hits,
			Misses:        post.Misses - poolPre.Misses,
			Evictions:     post.Evictions - poolPre.Evictions,
			ResidentBytes: post.ResidentBytes,
		}
	}
	return &ExecResult{
		Pool:          pool,
		Result:        sink.Result(),
		Cols:          pp.cols,
		SourceRows:    d.SourceRows.Load(),
		Duration:      time.Since(start),
		Degraded:      gov.Events(),
		MemPeak:       gov.Peak(),
		DroppedEvents: gov.Dropped(),
		Spill:         spst,
		Reserved:      rsv.Bytes(),
		AdmitWait:     rsv.Waited(),
		Scan:          opts.Meter.Scan(),
		Adapt:         c.adapt.Stats(),
	}, nil
}

// sumPagerStats adds up counter snapshots across the plan's distinct pagers.
func sumPagerStats(pagers []storage.StatsPager) storage.PagerStats {
	var s storage.PagerStats
	for _, p := range pagers {
		st := p.PagerStats()
		s.Pins += st.Pins
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.Evictions += st.Evictions
		s.ResidentBytes = st.ResidentBytes // shared pool: same value, not a sum
	}
	return s
}

// Execute is the historical API: ExecuteErr with a background context,
// panicking on failure.
func Execute(opts Options, root Node) *ExecResult {
	res, err := ExecuteErr(context.Background(), opts, root)
	if err != nil {
		panic(err)
	}
	return res
}

// TableFromResult materializes an executed result as a stored table so a
// later stage of a multi-stage query (scalar subqueries, HAVING thresholds)
// can scan and join it.
func TableFromResult(name string, cols []ColRef, r *exec.Result) *storage.Table {
	defs := make([]storage.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = storage.ColumnDef{Name: c.Name, Type: c.Type, StrCap: c.StrCap}
	}
	t := storage.NewTable(name, storage.NewSchema(defs...), r.NumRows())
	for ci := range cols {
		v := &r.Vecs[ci]
		switch col := t.Cols[ci].(type) {
		case *storage.Int64Column:
			col.Values = append(col.Values, v.I64...)
		case *storage.Float64Column:
			col.Values = append(col.Values, v.F64...)
		case *storage.StringColumn:
			for _, s := range v.Str {
				col.Append(s)
			}
		}
	}
	return t
}

// ScalarI64 returns the single int64 value of a 1x1 result (scalar
// subqueries of the TPC-H rewrites).
func (r *ExecResult) ScalarI64() (int64, error) {
	if n := r.Result.NumRows(); n != 1 {
		return 0, fmt.Errorf("plan: scalar result has %d rows, want exactly 1", n)
	}
	return r.Result.Vecs[0].I64[0], nil
}

// ScalarF64 returns the single float64 value of a 1x1 result.
func (r *ExecResult) ScalarF64() (float64, error) {
	if n := r.Result.NumRows(); n != 1 {
		return 0, fmt.Errorf("plan: scalar result has %d rows, want exactly 1", n)
	}
	return r.Result.Vecs[0].F64[0], nil
}

// MustScalarI64 is ScalarI64 panicking on malformed results (tests).
func (r *ExecResult) MustScalarI64() int64 {
	v, err := r.ScalarI64()
	if err != nil {
		panic(err)
	}
	return v
}

// MustScalarF64 is ScalarF64 panicking on malformed results (tests).
func (r *ExecResult) MustScalarF64() float64 {
	v, err := r.ScalarF64()
	if err != nil {
		panic(err)
	}
	return v
}
