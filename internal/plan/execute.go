package plan

import (
	"time"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// ExecResult is the outcome of executing a plan.
type ExecResult struct {
	Result *exec.Result
	Cols   []ColRef
	// SourceRows is the number of tuples emitted at pipeline sources;
	// the TPC-H throughput metric divides it by Duration (Section 5.3).
	SourceRows int64
	Duration   time.Duration
}

// Throughput returns source tuples per second.
func (r *ExecResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.SourceRows) / r.Duration.Seconds()
}

// Execute compiles and runs a plan tree, collecting the root's output.
func Execute(opts Options, root Node) *ExecResult {
	c := &compiler{opts: opts}
	p := c.compile(root)
	ts, caps := vecTypes(p.cols)
	sink := &exec.CollectSink{Types: ts, Caps: caps}
	c.terminate(p, sink, "collect")

	d := exec.NewDriver(opts.Workers)
	d.Meter = opts.Meter
	start := time.Now()
	d.RunAll(c.pipelines)
	for _, h := range c.harvests {
		h()
	}
	return &ExecResult{
		Result:     sink.Result(),
		Cols:       p.cols,
		SourceRows: d.SourceRows.Load(),
		Duration:   time.Since(start),
	}
}

// TableFromResult materializes an executed result as a stored table so a
// later stage of a multi-stage query (scalar subqueries, HAVING thresholds)
// can scan and join it.
func TableFromResult(name string, cols []ColRef, r *exec.Result) *storage.Table {
	defs := make([]storage.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = storage.ColumnDef{Name: c.Name, Type: c.Type, StrCap: c.StrCap}
	}
	t := storage.NewTable(name, storage.NewSchema(defs...), r.NumRows())
	for ci := range cols {
		v := &r.Vecs[ci]
		switch col := t.Cols[ci].(type) {
		case *storage.Int64Column:
			col.Values = append(col.Values, v.I64...)
		case *storage.Float64Column:
			col.Values = append(col.Values, v.F64...)
		case *storage.StringColumn:
			for _, s := range v.Str {
				col.Append(s)
			}
		}
	}
	return t
}

// ScalarI64 returns the single int64 value of a 1x1 result (scalar
// subqueries of the TPC-H rewrites).
func (r *ExecResult) ScalarI64() int64 {
	if r.Result.NumRows() != 1 {
		panic("plan: scalar result does not have exactly one row")
	}
	return r.Result.Vecs[0].I64[0]
}

// ScalarF64 returns the single float64 value of a 1x1 result.
func (r *ExecResult) ScalarF64() float64 {
	if r.Result.NumRows() != 1 {
		panic("plan: scalar result does not have exactly one row")
	}
	return r.Result.Vecs[0].F64[0]
}
