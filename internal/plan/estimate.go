package plan

import "partitionjoin/internal/exec"

// estimateRows gives an upper-bound cardinality estimate for a plan subtree,
// used by the governor's plan-time partition-or-not decision: the radix
// join's projected footprint is both sides' estimated rows times their
// packed-row widths. Filters and joins are treated as selectivity 1 — the
// governor wants a conservative ceiling, not a precise optimizer estimate,
// because under-estimating footprint defeats the budget. Returns -1 when
// the cardinality cannot be bounded.
//
// The one sharpening is zone-map pruning: for a scan with pushed predicates,
// rows in blocks whose min/max range provably misses a pushed conjunct are
// subtracted. This cannot under-estimate the radix footprint — a pruned
// block's bounds exclude every one of its rows from a conjunct of the
// predicate, so those rows cannot reach the join no matter what the data
// looks like; all other rows still count at selectivity 1.
func estimateRows(n Node) int64 {
	switch n := n.(type) {
	case *ScanNode:
		rows := int64(n.Table.NumRows())
		if len(n.Pushed) > 0 {
			rows -= exec.PrunedRows(n.Table, n.Pushed)
		}
		return rows
	case *FilterNode:
		return estimateRows(n.Child)
	case *MapNode:
		return estimateRows(n.Child)
	case *RenameNode:
		return estimateRows(n.Child)
	case *ProjectNode:
		return estimateRows(n.Child)
	case *LateLoadNode:
		return estimateRows(n.Child)
	case *DecodeNode:
		return estimateRows(n.Child)
	case *GroupByNode:
		return estimateRows(n.Child)
	case *OrderByNode:
		if r := estimateRows(n.Child); n.Limit > 0 && (r < 0 || int64(n.Limit) < r) {
			return int64(n.Limit)
		} else {
			return r
		}
	case *JoinNode:
		// For key/foreign-key joins (every join in the paper's workloads)
		// the output is bounded by the probe side.
		return estimateRows(n.Probe)
	}
	return -1
}
