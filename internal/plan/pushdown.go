package plan

import (
	"math"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/expr"
	"partitionjoin/internal/storage"
)

// pushdownFilters rewrites the plan so that pushable predicate conjuncts of
// FilterNodes sitting directly on ScanNodes move into the scan, where they
// run on raw storage slices behind zone-map morsel/batch skipping. Conjuncts
// that cannot be pushed (disjunctions, column-column comparisons, LIKE,
// computed columns) stay behind as a residual FilterNode; when everything
// pushes, the FilterNode disappears. The rewrite copies nodes — shared
// subtrees are never mutated.
func pushdownFilters(n Node) Node {
	switch n := n.(type) {
	case *ScanNode:
		return n
	case *FilterNode:
		child := pushdownFilters(n.Child)
		scan, ok := child.(*ScanNode)
		if !ok {
			if child == n.Child {
				return n
			}
			return &FilterNode{Child: child, Pred: n.Pred}
		}
		var pushed []exec.ScanPred
		var residual []expr.Pred
		for _, conj := range n.Pred.Conjuncts() {
			if sp, ok := translateAtom(scan.Table, conj.Atom); ok {
				pushed = append(pushed, sp)
			} else {
				residual = append(residual, conj)
			}
		}
		if len(pushed) == 0 {
			if child == n.Child {
				return n
			}
			return &FilterNode{Child: child, Pred: n.Pred}
		}
		sc := *scan
		sc.Pushed = append(append([]exec.ScanPred{}, scan.Pushed...), pushed...)
		var out Node = &sc
		switch len(residual) {
		case 0:
		case 1:
			out = &FilterNode{Child: out, Pred: residual[0]}
		default:
			out = &FilterNode{Child: out, Pred: expr.And(residual...)}
		}
		return out
	case *MapNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *RenameNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *ProjectNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *LateLoadNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *GroupByNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *OrderByNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *DecodeNode:
		return rewrap(n, &n.Child, pushdownFilters(n.Child), func() Node { cp := *n; return &cp })
	case *JoinNode:
		build := pushdownFilters(n.Build)
		probe := pushdownFilters(n.Probe)
		if build == n.Build && probe == n.Probe {
			return n
		}
		cp := *n
		cp.Build, cp.Probe = build, probe
		return &cp
	}
	return n
}

// rewrap returns orig unchanged when its child did not change, otherwise a
// copy (built by cp) with the child pointer swapped.
func rewrap(orig Node, childField *Node, newChild Node, cp func() Node) Node {
	if newChild == *childField {
		return orig
	}
	out := cp()
	switch out := out.(type) {
	case *FilterNode:
		out.Child = newChild
	case *MapNode:
		out.Child = newChild
	case *RenameNode:
		out.Child = newChild
	case *ProjectNode:
		out.Child = newChild
	case *LateLoadNode:
		out.Child = newChild
	case *GroupByNode:
		out.Child = newChild
	case *OrderByNode:
		out.Child = newChild
	case *DecodeNode:
		out.Child = newChild
	default:
		panic("plan: rewrap on unexpected node type")
	}
	return out
}

// translateAtom lowers a declarative predicate atom to a scan predicate
// against the physical column representation, or reports it unpushable.
// Dictionary columns turn string predicates into code predicates here —
// equality via binary search, ranges via LowerBound — so the scan never
// touches string bytes for them.
func translateAtom(t *storage.Table, a *expr.Atom) (exec.ScanPred, bool) {
	if a == nil {
		return exec.ScanPred{}, false
	}
	ci := t.Schema.ColIndex(a.Col)
	if ci < 0 {
		// The filter references a renamed or computed column; not this
		// table's storage.
		return exec.ScanPred{}, false
	}
	col := t.Cols[ci]
	switch a.Kind {
	case expr.AtomRangeI:
		switch col.(type) {
		case *storage.Int64Column, *storage.Int32Column:
		default:
			return exec.ScanPred{}, false
		}
		if a.Lo > a.Hi {
			return exec.ScanPred{Kind: exec.ScanNever, Col: ci}, true
		}
		return exec.ScanPred{Kind: exec.ScanRangeI, Col: ci, Lo: a.Lo, Hi: a.Hi}, true

	case expr.AtomInI:
		switch col.(type) {
		case *storage.Int64Column, *storage.Int32Column:
		default:
			return exec.ScanPred{}, false
		}
		if len(a.Set) == 0 {
			return exec.ScanPred{Kind: exec.ScanNever, Col: ci}, true
		}
		set := make(map[int64]struct{}, len(a.Set))
		for _, v := range a.Set {
			set[v] = struct{}{}
		}
		return exec.ScanPred{Kind: exec.ScanInI, Col: ci, Set: set, Lo: a.Lo, Hi: a.Hi}, true

	case expr.AtomRangeF:
		if _, ok := col.(*storage.Float64Column); !ok {
			return exec.ScanPred{}, false
		}
		return exec.ScanPred{
			Kind: exec.ScanRangeF, Col: ci,
			FLo: a.FLo, FHi: a.FHi, FLoOpen: a.FLoOpen, FHiOpen: a.FHiOpen,
		}, true

	case expr.AtomEqStr:
		switch col := col.(type) {
		case *storage.StringColumn:
			strs := make([][]byte, len(a.Strs))
			for i, s := range a.Strs {
				strs[i] = []byte(s)
			}
			return exec.ScanPred{Kind: exec.ScanEqStr, Col: ci, Strs: strs}, true
		case *storage.DictColumn:
			// Equality against the dictionary: values absent from the
			// dictionary match nothing, so a full miss proves emptiness.
			set := make(map[int64]struct{}, len(a.Strs))
			lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
			for _, s := range a.Strs {
				if code, ok := col.Code([]byte(s)); ok {
					v := int64(code)
					set[v] = struct{}{}
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			if len(set) == 0 {
				return exec.ScanPred{Kind: exec.ScanNever, Col: ci}, true
			}
			if len(set) == 1 {
				return exec.ScanPred{Kind: exec.ScanRangeI, Col: ci, Lo: lo, Hi: hi}, true
			}
			return exec.ScanPred{Kind: exec.ScanInI, Col: ci, Set: set, Lo: lo, Hi: hi}, true
		}
		return exec.ScanPred{}, false

	case expr.AtomRangeStr:
		switch col := col.(type) {
		case *storage.StringColumn:
			sp := exec.ScanPred{Kind: exec.ScanRangeStr, Col: ci,
				StrLoOpen: a.StrLoOpen, StrHiOpen: a.StrHiOpen}
			if a.HasStrLo {
				sp.StrLo = []byte(a.StrLo)
			}
			if a.HasStrHi {
				sp.StrHi = []byte(a.StrHi)
			}
			return sp, true
		case *storage.DictColumn:
			// Sorted dictionary: a string interval maps to a code interval.
			lo := int64(0)
			if a.HasStrLo {
				c := col.LowerBound([]byte(a.StrLo))
				lo = int64(c)
				if a.StrLoOpen && int(c) < col.Card() &&
					string(col.DictValue(c)) == a.StrLo {
					lo++
				}
			}
			hi := int64(col.Card()) - 1
			if a.HasStrHi {
				c := col.LowerBound([]byte(a.StrHi))
				if int(c) < col.Card() && !a.StrHiOpen &&
					string(col.DictValue(c)) == a.StrHi {
					hi = int64(c)
				} else {
					hi = int64(c) - 1
				}
			}
			if lo > hi {
				return exec.ScanPred{Kind: exec.ScanNever, Col: ci}, true
			}
			return exec.ScanPred{Kind: exec.ScanRangeI, Col: ci, Lo: lo, Hi: hi}, true
		}
		return exec.ScanPred{}, false
	}
	return exec.ScanPred{}, false
}
