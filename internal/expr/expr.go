// Package expr provides the scalar expression layer of the DBMS substrate.
// Expressions are declared against column names and compiled, once the plan
// layer has resolved names to batch vector positions, into closures that run
// tight per-batch loops — the interpreted stand-in for Umbra's generated
// code. Predicates fill keep-flag arrays consumed by exec.FilterOp; scalars
// fill an output vector appended by exec.MapOp.
package expr

import (
	"math"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// PredFn is a compiled predicate: fills keep[0:b.N].
type PredFn func(ctx *exec.Ctx, b *exec.Batch, keep []bool)

// Pred is a named predicate over columns; Make receives the resolved vector
// index of each column in Cols order.
type Pred struct {
	Cols []string
	Make func(ix []int) PredFn
	// Atom, when non-nil, is the declarative single-column description of
	// this predicate, enabling the plan layer to push it into the scan.
	// Combinators other than And clear it.
	Atom *Atom
	// Conj lists the operands of an And; empty for leaves. Conjuncts()
	// flattens nested Ands for the pushdown pass.
	Conj []Pred
}

// Scalar is a named computed column.
type Scalar struct {
	Name   string
	Type   storage.Type
	StrCap int
	Cols   []string
	Make   func(ix []int) func(b *exec.Batch, out *exec.Vector)
}

// --- integer predicates (Int64 lane: ints, dates, bools, scaled decimals) ---

// cmpI remains the generic per-row fallback for callers building custom
// integer predicates; the named constructors below compile direct
// compare loops instead (no inner closure call per row).
func cmpI(col string, f func(v int64) bool) Pred {
	return Pred{Cols: []string{col}, Make: func(ix []int) PredFn {
		c := ix[0]
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			v := b.Vecs[c].I64
			for i := 0; i < b.N; i++ {
				keep[i] = f(v[i])
			}
		}
	}}
}

// predI builds a single-column Int64-lane predicate whose compiled form
// runs loop (a tight monomorphic kernel) over the resolved vector.
func predI(col string, loop func(v []int64, keep []bool)) Pred {
	return Pred{Cols: []string{col}, Make: func(ix []int) PredFn {
		c := ix[0]
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			loop(b.Vecs[c].I64[:b.N], keep[:b.N])
		}
	}}
}

// EqI keeps rows where col == x.
func EqI(col string, x int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val == x
		}
	}), rangeAtom(col, x, x))
}

// NeI keeps rows where col != x.
func NeI(col string, x int64) Pred {
	return predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val != x
		}
	})
}

// LtI keeps rows where col < x.
func LtI(col string, x int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val < x
		}
	}), ltAtom(col, x))
}

// LeI keeps rows where col <= x.
func LeI(col string, x int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val <= x
		}
	}), rangeAtom(col, math.MinInt64, x))
}

// GtI keeps rows where col > x.
func GtI(col string, x int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val > x
		}
	}), gtAtom(col, x))
}

// GeI keeps rows where col >= x.
func GeI(col string, x int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val >= x
		}
	}), rangeAtom(col, x, math.MaxInt64))
}

// BetweenI keeps rows where lo <= col <= hi.
func BetweenI(col string, lo, hi int64) Pred {
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			keep[i] = val >= lo && val <= hi
		}
	}), rangeAtom(col, lo, hi))
}

// InI keeps rows whose col value is one of xs.
func InI(col string, xs ...int64) Pred {
	set := make(map[int64]struct{}, len(xs))
	for _, x := range xs {
		set[x] = struct{}{}
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return withAtom(predI(col, func(v []int64, keep []bool) {
		for i, val := range v {
			_, ok := set[val]
			keep[i] = ok
		}
	}), Atom{Kind: AtomInI, Col: col, Set: append([]int64(nil), xs...), Lo: lo, Hi: hi})
}

// EqCols keeps rows where a == b (both Int64-lane columns).
func EqCols(a, b string) Pred {
	return Pred{Cols: []string{a, b}, Make: func(ix []int) PredFn {
		ca, cb := ix[0], ix[1]
		return func(ctx *exec.Ctx, batch *exec.Batch, keep []bool) {
			va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
			for i := 0; i < batch.N; i++ {
				keep[i] = va[i] == vb[i]
			}
		}
	}}
}

// GtCols keeps rows where a > b (both Int64-lane columns).
func GtCols(a, b string) Pred {
	return Pred{Cols: []string{a, b}, Make: func(ix []int) PredFn {
		ca, cb := ix[0], ix[1]
		return func(ctx *exec.Ctx, batch *exec.Batch, keep []bool) {
			va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
			for i := 0; i < batch.N; i++ {
				keep[i] = va[i] > vb[i]
			}
		}
	}}
}

// LtCols keeps rows where a < b.
func LtCols(a, b string) Pred {
	return Pred{Cols: []string{a, b}, Make: func(ix []int) PredFn {
		ca, cb := ix[0], ix[1]
		return func(ctx *exec.Ctx, batch *exec.Batch, keep []bool) {
			va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
			for i := 0; i < batch.N; i++ {
				keep[i] = va[i] < vb[i]
			}
		}
	}}
}

// NeCols keeps rows where a != b.
func NeCols(a, b string) Pred {
	return Pred{Cols: []string{a, b}, Make: func(ix []int) PredFn {
		ca, cb := ix[0], ix[1]
		return func(ctx *exec.Ctx, batch *exec.Batch, keep []bool) {
			va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
			for i := 0; i < batch.N; i++ {
				keep[i] = va[i] != vb[i]
			}
		}
	}}
}

// GtFConst keeps rows where a float64 column exceeds x.
func GtFConst(col string, x float64) Pred {
	return withAtom(gtFConst(col, x),
		Atom{Kind: AtomRangeF, Col: col, FLo: x, FLoOpen: true, FHi: math.Inf(1)})
}

func gtFConst(col string, x float64) Pred {
	return Pred{Cols: []string{col}, Make: func(ix []int) PredFn {
		c := ix[0]
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			v := b.Vecs[c].F64
			for i := 0; i < b.N; i++ {
				keep[i] = v[i] > x
			}
		}
	}}
}

// --- string predicates ---

func cmpStr(col string, f func(v []byte) bool) Pred {
	return Pred{Cols: []string{col}, Make: func(ix []int) PredFn {
		c := ix[0]
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			v := b.Vecs[c].Str
			for i := 0; i < b.N; i++ {
				keep[i] = f(v[i])
			}
		}
	}}
}

// EqStr keeps rows where col == s.
func EqStr(col, s string) Pred {
	return withAtom(cmpStr(col, func(v []byte) bool { return string(v) == s }),
		Atom{Kind: AtomEqStr, Col: col, Strs: []string{s}})
}

// NeStr keeps rows where col != s.
func NeStr(col, s string) Pred { return cmpStr(col, func(v []byte) bool { return string(v) != s }) }

// InStr keeps rows whose col value is one of ss.
func InStr(col string, ss ...string) Pred {
	set := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		set[s] = struct{}{}
	}
	return withAtom(cmpStr(col, func(v []byte) bool { _, ok := set[string(v)]; return ok }),
		Atom{Kind: AtomEqStr, Col: col, Strs: append([]string(nil), ss...)})
}

// PrefixStr keeps rows where col starts with p.
func PrefixStr(col, p string) Pred {
	return cmpStr(col, func(v []byte) bool {
		return len(v) >= len(p) && string(v[:len(p)]) == p
	})
}

// SuffixStr keeps rows where col ends with p.
func SuffixStr(col, p string) Pred {
	return cmpStr(col, func(v []byte) bool {
		return len(v) >= len(p) && string(v[len(v)-len(p):]) == p
	})
}

// Like keeps rows matching a SQL LIKE pattern with % and _.
func Like(col, pattern string) Pred {
	return cmpStr(col, func(v []byte) bool { return LikeMatch(v, pattern) })
}

// NotLike keeps rows not matching the pattern.
func NotLike(col, pattern string) Pred {
	return cmpStr(col, func(v []byte) bool { return !LikeMatch(v, pattern) })
}

// LikeMatch implements SQL LIKE semantics: '%' matches any run, '_' any
// single byte (TPC-H text is ASCII, so byte and character positions
// coincide). Iterative two-pointer algorithm with backtracking to the
// last '%'.
func LikeMatch(s []byte, pattern string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		// The wildcard case must precede the literal case: an input byte
		// that happens to be '%' must not consume the pattern wildcard.
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// --- combinators ---

// And conjoins predicates. The operands are retained in Conj so the
// pushdown pass can split pushable conjuncts from the residual.
func And(ps ...Pred) Pred {
	var cols []string
	for _, p := range ps {
		cols = append(cols, p.Cols...)
	}
	return Pred{Cols: cols, Conj: append([]Pred(nil), ps...), Make: func(ix []int) PredFn {
		fns := make([]PredFn, len(ps))
		off := 0
		for i, p := range ps {
			fns[i] = p.Make(ix[off : off+len(p.Cols)])
			off += len(p.Cols)
		}
		var scratch []bool
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			fns[0](ctx, b, keep)
			if cap(scratch) < b.N {
				scratch = make([]bool, b.N)
			}
			s := scratch[:b.N]
			for _, f := range fns[1:] {
				f(ctx, b, s)
				for i := 0; i < b.N; i++ {
					keep[i] = keep[i] && s[i]
				}
			}
		}
	}}
}

// Or disjoins predicates.
func Or(ps ...Pred) Pred {
	var cols []string
	for _, p := range ps {
		cols = append(cols, p.Cols...)
	}
	return Pred{Cols: cols, Make: func(ix []int) PredFn {
		fns := make([]PredFn, len(ps))
		off := 0
		for i, p := range ps {
			fns[i] = p.Make(ix[off : off+len(p.Cols)])
			off += len(p.Cols)
		}
		var scratch []bool
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			fns[0](ctx, b, keep)
			if cap(scratch) < b.N {
				scratch = make([]bool, b.N)
			}
			s := scratch[:b.N]
			for _, f := range fns[1:] {
				f(ctx, b, s)
				for i := 0; i < b.N; i++ {
					keep[i] = keep[i] || s[i]
				}
			}
		}
	}}
}

// Not negates a predicate.
func Not(p Pred) Pred {
	return Pred{Cols: p.Cols, Make: func(ix []int) PredFn {
		f := p.Make(ix)
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			f(ctx, b, keep)
			for i := 0; i < b.N; i++ {
				keep[i] = !keep[i]
			}
		}
	}}
}

// True keeps everything (placeholder for unfiltered scans in generic code).
func True() Pred {
	return Pred{Make: func(ix []int) PredFn {
		return func(ctx *exec.Ctx, b *exec.Batch, keep []bool) {
			for i := 0; i < b.N; i++ {
				keep[i] = true
			}
		}
	}}
}
