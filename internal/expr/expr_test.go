package expr

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// makeBatch builds a batch with an int64 column "v" and a string column "s".
func makeBatch(ints []int64, strs []string) *exec.Batch {
	b := exec.NewBatch([]storage.Type{storage.Int64, storage.String}, []int{0, 32})
	b.Vecs[0].I64 = append(b.Vecs[0].I64, ints...)
	for _, s := range strs {
		b.Vecs[1].Str = append(b.Vecs[1].Str, []byte(s))
	}
	b.N = len(ints)
	return b
}

// eval runs a predicate over the batch with the given column index binding.
func eval(p Pred, b *exec.Batch, binding map[string]int) []bool {
	ix := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		ix[i] = binding[c]
	}
	keep := make([]bool, b.N)
	p.Make(ix)(nil, b, keep)
	return keep
}

var binding = map[string]int{"v": 0, "s": 1}

func TestIntPredicates(t *testing.T) {
	b := makeBatch([]int64{1, 5, 10, -3}, []string{"a", "b", "c", "d"})
	cases := []struct {
		name string
		p    Pred
		want []bool
	}{
		{"EqI", EqI("v", 5), []bool{false, true, false, false}},
		{"NeI", NeI("v", 5), []bool{true, false, true, true}},
		{"LtI", LtI("v", 5), []bool{true, false, false, true}},
		{"LeI", LeI("v", 5), []bool{true, true, false, true}},
		{"GtI", GtI("v", 1), []bool{false, true, true, false}},
		{"GeI", GeI("v", 1), []bool{true, true, true, false}},
		{"BetweenI", BetweenI("v", 1, 5), []bool{true, true, false, false}},
		{"InI", InI("v", 1, 10), []bool{true, false, true, false}},
	}
	for _, c := range cases {
		got := eval(c.p, b, binding)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s row %d: got %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

func TestStringPredicates(t *testing.T) {
	b := makeBatch([]int64{0, 0, 0}, []string{"BRASS", "STEEL BRASS", "steel"})
	if got := eval(EqStr("s", "BRASS"), b, binding); !got[0] || got[1] || got[2] {
		t.Fatalf("EqStr: %v", got)
	}
	if got := eval(SuffixStr("s", "BRASS"), b, binding); !got[0] || !got[1] || got[2] {
		t.Fatalf("SuffixStr: %v", got)
	}
	if got := eval(PrefixStr("s", "STEEL"), b, binding); got[0] || !got[1] || got[2] {
		t.Fatalf("PrefixStr: %v", got)
	}
	if got := eval(InStr("s", "steel", "BRASS"), b, binding); !got[0] || got[1] || !got[2] {
		t.Fatalf("InStr: %v", got)
	}
}

func TestCombinators(t *testing.T) {
	b := makeBatch([]int64{1, 2, 3, 4}, []string{"x", "y", "x", "y"})
	and := eval(And(GtI("v", 1), EqStr("s", "x")), b, binding)
	if and[0] || and[1] || !and[2] || and[3] {
		t.Fatalf("And: %v", and)
	}
	or := eval(Or(EqI("v", 1), EqStr("s", "y")), b, binding)
	if !or[0] || !or[1] || or[2] || !or[3] {
		t.Fatalf("Or: %v", or)
	}
	not := eval(Not(EqI("v", 1)), b, binding)
	if not[0] || !not[1] {
		t.Fatalf("Not: %v", not)
	}
}

// TestLikeMatchesRegexp checks LIKE semantics against a regexp translation
// on random inputs.
func TestLikeMatchesRegexp(t *testing.T) {
	patterns := []string{"%green%", "PROMO%", "%BRASS", "a_c", "%Customer%Complaints%", "", "%", "__", "a%b%c"}
	for _, pat := range patterns {
		re := likeToRegexp(pat)
		// '_' matches one byte (TPC-H text is ASCII), regexp '.' one
		// rune — constrain the property to ASCII inputs.
		check := func(raw []byte) bool {
			s := make([]byte, len(raw))
			for i, c := range raw {
				s[i] = c & 0x7f
			}
			return LikeMatch(s, pat) == re.MatchString(string(s))
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("pattern %q: %v", pat, err)
		}
		// Plus targeted inputs built from pattern fragments.
		for _, s := range []string{"", "green", "a green one", "PROMO X", "xBRASS", "abc", "aXc",
			"Customer something Complaints here", "ab", "a1b2c"} {
			if LikeMatch([]byte(s), pat) != re.MatchString(s) {
				t.Fatalf("pattern %q input %q: like=%v regexp=%v",
					pat, s, LikeMatch([]byte(s), pat), re.MatchString(s))
			}
		}
	}
}

func likeToRegexp(pat string) *regexp.Regexp {
	var sb strings.Builder
	sb.WriteString("^")
	for _, r := range pat {
		switch r {
		case '%':
			sb.WriteString("(?s).*")
		case '_':
			sb.WriteString("(?s).")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	return regexp.MustCompile(sb.String())
}

func TestScalars(t *testing.T) {
	b := makeBatch([]int64{2, 3}, []string{"PROMO A", "STANDARD"})
	run := func(s Scalar) *exec.Vector {
		ix := make([]int, len(s.Cols))
		for i, c := range s.Cols {
			ix[i] = binding[c]
		}
		out := exec.NewVector(s.Type, s.StrCap)
		s.Make(ix)(b, &out)
		return &out
	}
	if v := run(MulConstI("x", "v", 10)); v.I64[0] != 20 || v.I64[1] != 30 {
		t.Fatalf("MulConstI: %v", v.I64)
	}
	if v := run(CaseI("x", PrefixStr("s", "PROMO"), "v")); v.I64[0] != 2 || v.I64[1] != 0 {
		t.Fatalf("CaseI: %v", v.I64)
	}
	if v := run(PredI("x", GtI("v", 2))); v.I64[0] != 0 || v.I64[1] != 1 {
		t.Fatalf("PredI: %v", v.I64)
	}
	if v := run(SubStrI("x", "s", 1, 5)); string(v.Str[0]) != "PROMO" {
		t.Fatalf("SubStrI: %q", v.Str[0])
	}
}

func TestRevenueIExact(t *testing.T) {
	b := exec.NewBatch([]storage.Type{storage.Int64, storage.Int64}, nil)
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 10000) // $100.00
	b.Vecs[1].I64 = append(b.Vecs[1].I64, 5)     // 5%
	b.N = 1
	out := exec.NewVector(storage.Int64, 0)
	RevenueI("r", "p", "d").Make([]int{0, 1})(b, &out)
	if out.I64[0] != 10000*95 {
		t.Fatalf("revenue = %d", out.I64[0])
	}
}

// TestYearOfDaysMatchesTimePackage cross-checks the civil-year extraction
// against the standard library over a wide date range.
func TestYearOfDaysMatchesTimePackage(t *testing.T) {
	for days := int64(-20000); days < 30000; days += 17 {
		want := time.Unix(days*86400, 0).UTC().Year()
		if got := YearOfDays(days); got != int64(want) {
			t.Fatalf("YearOfDays(%d) = %d, want %d", days, got, want)
		}
	}
}

func TestRatioAndScale(t *testing.T) {
	b := exec.NewBatch([]storage.Type{storage.Int64, storage.Int64}, nil)
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 1, 0)
	b.Vecs[1].I64 = append(b.Vecs[1].I64, 4, 0)
	b.N = 2
	out := exec.NewVector(storage.Float64, 0)
	RatioF("r", "n", "d", 100).Make([]int{0, 1})(b, &out)
	if out.F64[0] != 25 {
		t.Fatalf("ratio = %v", out.F64[0])
	}
	if out.F64[1] != 0 {
		t.Fatalf("zero denominator should yield 0, got %v", out.F64[1])
	}
	out2 := exec.NewVector(storage.Float64, 0)
	ScaleF("s", "n", 0.5).Make([]int{0})(b, &out2)
	if out2.F64[0] != 0.5 {
		t.Fatalf("scale = %v", out2.F64[0])
	}
}
