package expr

import "math"

// AtomKind enumerates the pushable predicate shapes the plan layer can move
// from a FilterNode into the scan.
type AtomKind uint8

const (
	// AtomRangeI is Lo <= col <= Hi on the integer lane (ints, dates,
	// bools, scaled decimals). Lo > Hi encodes a provably empty range.
	AtomRangeI AtomKind = iota
	// AtomInI is col IN Set on the integer lane.
	AtomInI
	// AtomRangeF is a float64 interval with optionally strict bounds.
	AtomRangeF
	// AtomEqStr is col equal to any of Strs (one entry for =, several for IN).
	AtomEqStr
	// AtomRangeStr is a string interval; HasStrLo/HasStrHi mark which bounds
	// exist (the empty string is a valid bound) and the Open flags make a
	// bound strict.
	AtomRangeStr
)

// Atom is the structural description of a single-column predicate leaf. The
// closure in Pred.Make stays the source of truth for evaluation; the atom is
// a parallel, declarative view that the plan layer's pushdown pass can
// translate into a scan-level predicate. Predicates built from combinators
// other than And, or comparing two columns, carry no atom and stay residual.
type Atom struct {
	Kind AtomKind
	Col  string

	Lo, Hi int64
	Set    []int64

	FLo, FHi float64
	FLoOpen  bool
	FHiOpen  bool

	Strs         []string
	StrLo, StrHi string
	HasStrLo     bool
	HasStrHi     bool
	StrLoOpen    bool
	StrHiOpen    bool
}

func withAtom(p Pred, a Atom) Pred {
	p.Atom = &a
	return p
}

func rangeAtom(col string, lo, hi int64) Atom {
	return Atom{Kind: AtomRangeI, Col: col, Lo: lo, Hi: hi}
}

// emptyRangeAtom encodes a range no value satisfies (overflowed bound).
func emptyRangeAtom(col string) Atom { return rangeAtom(col, 1, 0) }

// --- string range predicates (lexicographic byte order) ---

func cmpStrAtom(col string, f func(v []byte) bool, a Atom) Pred {
	return withAtom(cmpStr(col, f), a)
}

// LtStr keeps rows where col < s.
func LtStr(col, s string) Pred {
	return cmpStrAtom(col, func(v []byte) bool { return string(v) < s },
		Atom{Kind: AtomRangeStr, Col: col, StrHi: s, HasStrHi: true, StrHiOpen: true})
}

// LeStr keeps rows where col <= s.
func LeStr(col, s string) Pred {
	return cmpStrAtom(col, func(v []byte) bool { return string(v) <= s },
		Atom{Kind: AtomRangeStr, Col: col, StrHi: s, HasStrHi: true})
}

// GtStr keeps rows where col > s.
func GtStr(col, s string) Pred {
	return cmpStrAtom(col, func(v []byte) bool { return string(v) > s },
		Atom{Kind: AtomRangeStr, Col: col, StrLo: s, HasStrLo: true, StrLoOpen: true})
}

// GeStr keeps rows where col >= s.
func GeStr(col, s string) Pred {
	return cmpStrAtom(col, func(v []byte) bool { return string(v) >= s },
		Atom{Kind: AtomRangeStr, Col: col, StrLo: s, HasStrLo: true})
}

// BetweenStr keeps rows where lo <= col <= hi.
func BetweenStr(col, lo, hi string) Pred {
	return cmpStrAtom(col, func(v []byte) bool { return string(v) >= lo && string(v) <= hi },
		Atom{Kind: AtomRangeStr, Col: col,
			StrLo: lo, HasStrLo: true, StrHi: hi, HasStrHi: true})
}

// Conjuncts returns the flattened conjunct list of a predicate: the And-tree
// leaves in evaluation order, or the predicate itself when it is not an And.
func (p Pred) Conjuncts() []Pred {
	if len(p.Conj) == 0 {
		return []Pred{p}
	}
	var out []Pred
	for _, c := range p.Conj {
		out = append(out, c.Conjuncts()...)
	}
	return out
}

// predAtom helpers used by the integer/float constructors in expr.go. Bounds
// that would overflow int64 collapse to an empty range rather than wrapping.

func ltAtom(col string, x int64) Atom {
	if x == math.MinInt64 {
		return emptyRangeAtom(col)
	}
	return rangeAtom(col, math.MinInt64, x-1)
}

func gtAtom(col string, x int64) Atom {
	if x == math.MaxInt64 {
		return emptyRangeAtom(col)
	}
	return rangeAtom(col, x+1, math.MaxInt64)
}
