package expr

import (
	"partitionjoin/internal/exec"
	"partitionjoin/internal/storage"
)

// ConstI produces a constant int64 column.
func ConstI(name string, x int64) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
		return func(b *exec.Batch, out *exec.Vector) {
			for i := 0; i < b.N; i++ {
				out.I64 = append(out.I64, x)
			}
		}
	}}
}

// MulI computes a*b over two Int64-lane columns.
func MulI(name, a, b string) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: []string{a, b},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			ca, cb := ix[0], ix[1]
			return func(batch *exec.Batch, out *exec.Vector) {
				va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
				for i := 0; i < batch.N; i++ {
					out.I64 = append(out.I64, va[i]*vb[i])
				}
			}
		}}
}

// SubI computes a-b.
func SubI(name, a, b string) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: []string{a, b},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			ca, cb := ix[0], ix[1]
			return func(batch *exec.Batch, out *exec.Vector) {
				va, vb := batch.Vecs[ca].I64, batch.Vecs[cb].I64
				for i := 0; i < batch.N; i++ {
					out.I64 = append(out.I64, va[i]-vb[i])
				}
			}
		}}
}

// MulConstI computes col*c.
func MulConstI(name, col string, c int64) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: []string{col},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			cc := ix[0]
			return func(batch *exec.Batch, out *exec.Vector) {
				v := batch.Vecs[cc].I64
				for i := 0; i < batch.N; i++ {
					out.I64 = append(out.I64, v[i]*c)
				}
			}
		}}
}

// RevenueI computes the TPC-H revenue term price*(100-disc) where price is
// in cents and disc in hundredths; the result is exact in 10^-4 dollars, so
// parallel summation order cannot perturb results.
func RevenueI(name, price, disc string) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: []string{price, disc},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			cp, cd := ix[0], ix[1]
			return func(batch *exec.Batch, out *exec.Vector) {
				vp, vd := batch.Vecs[cp].I64, batch.Vecs[cd].I64
				for i := 0; i < batch.N; i++ {
					out.I64 = append(out.I64, vp[i]*(100-vd[i]))
				}
			}
		}}
}

// CaseI computes CASE WHEN pred THEN thenCol ELSE 0 END.
func CaseI(name string, pred Pred, thenCol string) Scalar {
	cols := append(append([]string{}, pred.Cols...), thenCol)
	return Scalar{Name: name, Type: storage.Int64, Cols: cols,
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			f := pred.Make(ix[:len(ix)-1])
			ct := ix[len(ix)-1]
			var keep []bool
			return func(batch *exec.Batch, out *exec.Vector) {
				if cap(keep) < batch.N {
					keep = make([]bool, batch.N)
				}
				k := keep[:batch.N]
				f(nil, batch, k)
				v := batch.Vecs[ct].I64
				for i := 0; i < batch.N; i++ {
					if k[i] {
						out.I64 = append(out.I64, v[i])
					} else {
						out.I64 = append(out.I64, 0)
					}
				}
			}
		}}
}

// PredI computes CASE WHEN pred THEN 1 ELSE 0 END.
func PredI(name string, pred Pred) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: pred.Cols,
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			f := pred.Make(ix)
			var keep []bool
			return func(batch *exec.Batch, out *exec.Vector) {
				if cap(keep) < batch.N {
					keep = make([]bool, batch.N)
				}
				k := keep[:batch.N]
				f(nil, batch, k)
				for i := 0; i < batch.N; i++ {
					if k[i] {
						out.I64 = append(out.I64, 1)
					} else {
						out.I64 = append(out.I64, 0)
					}
				}
			}
		}}
}

// YearI extracts the civil year from a date column (days since the Unix
// epoch), using the days-from-civil inverse of Howard Hinnant's algorithm.
func YearI(name, col string) Scalar {
	return Scalar{Name: name, Type: storage.Int64, Cols: []string{col},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			c := ix[0]
			return func(batch *exec.Batch, out *exec.Vector) {
				v := batch.Vecs[c].I64
				for i := 0; i < batch.N; i++ {
					out.I64 = append(out.I64, YearOfDays(v[i]))
				}
			}
		}}
}

// YearOfDays converts days-since-epoch to the civil year.
func YearOfDays(days int64) int64 {
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	if mp >= 10 {
		y++
	}
	return y
}

// RatioF divides two Int64-lane columns into a float64 (report-time shares
// like Q8's market share or Q14's promo percentage).
func RatioF(name, num, den string, scale float64) Scalar {
	return Scalar{Name: name, Type: storage.Float64, Cols: []string{num, den},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			cn, cd := ix[0], ix[1]
			return func(batch *exec.Batch, out *exec.Vector) {
				vn, vd := batch.Vecs[cn].I64, batch.Vecs[cd].I64
				for i := 0; i < batch.N; i++ {
					if vd[i] == 0 {
						out.F64 = append(out.F64, 0)
						continue
					}
					out.F64 = append(out.F64, scale*float64(vn[i])/float64(vd[i]))
				}
			}
		}}
}

// ScaleF converts an Int64-lane column to float64 times a factor (e.g.
// cents to dollars, or Q17's sum/7.0).
func ScaleF(name, col string, factor float64) Scalar {
	return Scalar{Name: name, Type: storage.Float64, Cols: []string{col},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			c := ix[0]
			return func(batch *exec.Batch, out *exec.Vector) {
				v := batch.Vecs[c].I64
				for i := 0; i < batch.N; i++ {
					out.F64 = append(out.F64, float64(v[i])*factor)
				}
			}
		}}
}

// SubStrI extracts a fixed byte range [from, from+n) of a string column as
// a small string (TPC-H Q22's substring(c_phone, 1, 2)).
func SubStrI(name, col string, from, n int) Scalar {
	return Scalar{Name: name, Type: storage.String, StrCap: n, Cols: []string{col},
		Make: func(ix []int) func(*exec.Batch, *exec.Vector) {
			c := ix[0]
			return func(batch *exec.Batch, out *exec.Vector) {
				v := batch.Vecs[c].Str
				for i := 0; i < batch.N; i++ {
					s := v[i]
					lo := from - 1
					hi := lo + n
					if lo > len(s) {
						lo = len(s)
					}
					if hi > len(s) {
						hi = len(s)
					}
					out.Str = append(out.Str, s[lo:hi])
				}
			}
		}}
}
