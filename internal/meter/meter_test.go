package meter

import (
	"sync"
	"testing"
	"time"
)

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.AddRead(10)
	m.AddWrite(10)
	m.BeginPhase("x")
	m.EndPhase()
	if ph := m.Phases(); ph != nil {
		t.Fatal("nil meter returned phases")
	}
	if r, w := m.Totals(); r != 0 || w != 0 {
		t.Fatal("nil meter returned totals")
	}
}

func TestPhaseAttribution(t *testing.T) {
	m := New()
	m.BeginPhase("a")
	m.AddRead(100)
	m.AddWrite(50)
	time.Sleep(time.Millisecond)
	m.EndPhase()
	m.BeginPhase("b")
	m.AddRead(7)
	time.Sleep(time.Millisecond)
	m.EndPhase()

	ph := m.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %d", len(ph))
	}
	if ph[0].Name != "a" || ph[0].Read != 100 || ph[0].Written != 50 {
		t.Fatalf("phase a: %+v", ph[0])
	}
	if ph[1].Read != 7 || ph[1].Written != 0 {
		t.Fatalf("phase b: %+v", ph[1])
	}
	if ph[0].Duration <= 0 || ph[0].ReadBW <= 0 {
		t.Fatalf("phase a bandwidth: %+v", ph[0])
	}
	if ph[1].Start < ph[0].End {
		t.Fatal("phases overlap")
	}
	if r, w := m.Totals(); r != 107 || w != 50 {
		t.Fatalf("totals = %d/%d", r, w)
	}
}

func TestConcurrentCounters(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddRead(1)
				m.AddWrite(2)
			}
		}()
	}
	wg.Wait()
	if r, w := m.Totals(); r != 8000 || w != 16000 {
		t.Fatalf("totals = %d/%d", r, w)
	}
}

func TestEndPhaseWithoutBegin(t *testing.T) {
	m := New()
	m.EndPhase() // must not panic
	if len(m.Phases()) != 0 {
		t.Fatal("phantom phase recorded")
	}
}

func TestSpillCountersSeparateFromMemory(t *testing.T) {
	m := New()
	m.AddRead(100)
	m.AddWrite(200)
	m.AddSpillWrite(50)
	m.AddSpillWrite(25)
	m.AddSpillRead(75)
	if r, w := m.Totals(); r != 100 || w != 200 {
		t.Fatalf("memory totals polluted by spill: %d/%d", r, w)
	}
	if r, w := m.SpillTotals(); r != 75 || w != 50+25 {
		t.Fatalf("spill totals = %d/%d, want 75/75", r, w)
	}
	var nilM *Meter
	nilM.AddSpillRead(1)
	nilM.AddSpillWrite(1)
	if r, w := nilM.SpillTotals(); r != 0 || w != 0 {
		t.Fatal("nil meter recorded spill bytes")
	}
}
