// Package meter accounts memory traffic per execution phase. It stands in
// for the Intel PCM counters the paper uses for Figure 10: every partition,
// build, scan, and join phase reports how many bytes it read and wrote, and
// the meter keeps a timeline of phase transitions so the harness can print
// the same read/write bandwidth-over-time series the paper plots.
package meter

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates read/write byte counts and phase boundaries. A nil
// *Meter is valid and records nothing, so hot paths guard with one nil check.
type Meter struct {
	read    atomic.Int64
	written atomic.Int64

	// Spill traffic is counted separately from memory traffic: disk frames
	// written during partition eviction and read back during reload. The
	// bandwidth timeline keeps showing memory bytes only, as the paper's
	// PCM counters would.
	spillRead    atomic.Int64
	spillWritten atomic.Int64

	// Scan pruning counters (see ScanStats).
	morselsPruned   atomic.Int64
	batchesPruned   atomic.Int64
	rowsPrefiltered atomic.Int64
	batchesAllKept  atomic.Int64

	// Runtime adaptation counters (see AdaptStats).
	adaptMigrations atomic.Int64
	adaptSplits     atomic.Int64
	adaptRevisions  atomic.Int64

	mu     sync.Mutex
	start  time.Time
	phases []Phase
}

// Phase is one closed interval of execution with its byte counts.
type Phase struct {
	Name     string
	Start    time.Duration // offset from meter start
	End      time.Duration
	Read     int64
	Written  int64
	ReadBW   float64 // bytes/second
	WriteBW  float64
	TotalBW  float64
	Duration time.Duration
}

// New returns a running meter with its clock started.
func New() *Meter {
	return &Meter{start: time.Now()}
}

// AddRead records n bytes read.
func (m *Meter) AddRead(n int64) {
	if m == nil {
		return
	}
	m.read.Add(n)
}

// AddWrite records n bytes written.
func (m *Meter) AddWrite(n int64) {
	if m == nil {
		return
	}
	m.written.Add(n)
}

// AddSpillWrite records n bytes of partition data written to spill files.
func (m *Meter) AddSpillWrite(n int64) {
	if m == nil {
		return
	}
	m.spillWritten.Add(n)
}

// AddSpillRead records n bytes of partition data reloaded from spill files.
func (m *Meter) AddSpillRead(n int64) {
	if m == nil {
		return
	}
	m.spillRead.Add(n)
}

// SpillTotals returns cumulative spill-file read and written bytes.
func (m *Meter) SpillTotals() (read, written int64) {
	if m == nil {
		return 0, 0
	}
	return m.spillRead.Load(), m.spillWritten.Load()
}

// BeginPhase opens a named phase; EndPhase closes it and snapshots the byte
// deltas attributed to it. Phases are coarse (one per join stage) and are
// opened from the coordinating goroutine only.
func (m *Meter) BeginPhase(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.phases = append(m.phases, Phase{
		Name:    name,
		Start:   time.Since(m.start),
		Read:    m.read.Load(),
		Written: m.written.Load(),
	})
}

// EndPhase closes the most recently opened phase.
func (m *Meter) EndPhase() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.phases) == 0 {
		return
	}
	p := &m.phases[len(m.phases)-1]
	p.End = time.Since(m.start)
	p.Read = m.read.Load() - p.Read
	p.Written = m.written.Load() - p.Written
	p.Duration = p.End - p.Start
	if secs := p.Duration.Seconds(); secs > 0 {
		p.ReadBW = float64(p.Read) / secs
		p.WriteBW = float64(p.Written) / secs
		p.TotalBW = p.ReadBW + p.WriteBW
	}
}

// Phases returns the closed phases recorded so far.
func (m *Meter) Phases() []Phase {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Phase, len(m.phases))
	copy(out, m.phases)
	return out
}

// Totals returns cumulative read and written bytes.
func (m *Meter) Totals() (read, written int64) {
	if m == nil {
		return 0, 0
	}
	return m.read.Load(), m.written.Load()
}

// ScanStats aggregates the scan layer's pruning counters: work the scans
// avoided (skipped morsels/batches) and rows removed by pushed predicates
// before widening into batch vectors.
type ScanStats struct {
	// MorselsPruned counts whole morsels skipped via zone maps.
	MorselsPruned int64
	// BatchesPruned counts batch-sized blocks skipped via zone maps inside
	// morsels that were not skipped outright.
	BatchesPruned int64
	// RowsPrefiltered counts rows eliminated by pushed predicates evaluated
	// on raw storage (rows in pruned morsels/batches are not included).
	RowsPrefiltered int64
	// BatchesFullMatch counts batches whose zone blocks proved every row
	// satisfies every pushed predicate, skipping per-row evaluation — the
	// dual of BatchesPruned.
	BatchesFullMatch int64
}

// Scan counters follow the read/write counters' pattern: nil-safe atomics
// incremented from scan workers, read once when the query finishes.

// AddMorselsPruned records n whole morsels skipped via zone maps.
func (m *Meter) AddMorselsPruned(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.morselsPruned.Add(n)
}

// AddBatchesPruned records n batches skipped via zone maps.
func (m *Meter) AddBatchesPruned(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.batchesPruned.Add(n)
}

// AddBatchesFullMatch records n batches whose zone maps proved every row
// matches, skipping per-row predicate evaluation.
func (m *Meter) AddBatchesFullMatch(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.batchesAllKept.Add(n)
}

// AddRowsPrefiltered records n rows removed by pushed predicates.
func (m *Meter) AddRowsPrefiltered(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.rowsPrefiltered.Add(n)
}

// Scan returns the cumulative scan pruning counters.
func (m *Meter) Scan() ScanStats {
	if m == nil {
		return ScanStats{}
	}
	return ScanStats{
		MorselsPruned:    m.morselsPruned.Load(),
		BatchesPruned:    m.batchesPruned.Load(),
		RowsPrefiltered:  m.rowsPrefiltered.Load(),
		BatchesFullMatch: m.batchesAllKept.Load(),
	}
}

// AdaptStats aggregates the runtime adaptation counters: how often the
// self-correcting join machinery actually fired.
type AdaptStats struct {
	// Migrations counts BHJ builds converted to radix partitions mid-build.
	Migrations int64
	// PartitionSplits counts skewed resident partitions re-partitioned at
	// join time.
	PartitionSplits int64
	// ReservationRevisions counts grow/deny/shrink revisions of admission
	// reservations driven by observed usage.
	ReservationRevisions int64
}

// AddAdaptMigration records n mid-build BHJ→radix migrations.
func (m *Meter) AddAdaptMigration(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.adaptMigrations.Add(n)
}

// AddAdaptSplit records n join-time partition splits.
func (m *Meter) AddAdaptSplit(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.adaptSplits.Add(n)
}

// AddAdaptRevision records n reservation revisions.
func (m *Meter) AddAdaptRevision(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.adaptRevisions.Add(n)
}

// Adapt returns the cumulative runtime adaptation counters.
func (m *Meter) Adapt() AdaptStats {
	if m == nil {
		return AdaptStats{}
	}
	return AdaptStats{
		Migrations:           m.adaptMigrations.Load(),
		PartitionSplits:      m.adaptSplits.Load(),
		ReservationRevisions: m.adaptRevisions.Load(),
	}
}
