// Package adapt implements the runtime adaptation controller that makes the
// partition-or-not decision self-correcting. The paper answers the join
// question at plan time from cardinality estimates; "Design Trade-offs for a
// Robust Dynamic Hybrid Hash Join" shows the join itself should revisit the
// answer mid-flight, and NOCAP shows the partitioning fan-out should follow
// the observed key distribution rather than a static cache formula. The
// controller observes the build side at morsel-granularity checkpoints and
// drives three recoveries:
//
//   - migrate: a BHJ whose build outgrows the memory budget converts its
//     in-progress build into radix partition pages (no restart) so the join
//     can proceed partition-at-a-time within the budget, spilling the
//     overflow (core.AdaptiveJoin).
//   - split: a final partition the sampled-hash sketch flagged as skewed is
//     re-partitioned on further hash bits at join time, instead of paying
//     one oversized hash table for everyone's sins
//     (core.PartitionJoinSource).
//   - revise: the admission reservation is grown before degrading and
//     shrunk once the build's true size is known, so the broker arbitrates
//     observed bytes rather than the plan's guess (govern/admit).
//
// The ladder is observe → grow reservation → migrate → split → spill; every
// rung fires a fault-injection site so tests can provoke failure at each
// decision point. A nil *Controller (adaptation disabled) is valid, records
// nothing, and never adapts, following the meter.Meter convention.
package adapt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
)

// Fault-injection sites of the adaptation decision points.
const (
	// MigrateSite fires when a BHJ build starts migrating into radix
	// partition pages (before any row moves).
	MigrateSite = "adapt.migrate"
	// SplitSite fires when a skewed resident partition is about to be
	// re-partitioned at join time.
	SplitSite = "adapt.split"
	// ReserveGrowSite fires before the controller asks the pool to grow
	// the reservation; ReserveDenySite fires when the pool refused and the
	// controller falls through to migration.
	ReserveGrowSite = "adapt.reserve.grow"
	ReserveDenySite = "adapt.reserve.deny"
	// ReserveShrinkSite fires before unused reservation bytes are returned
	// to the pool.
	ReserveShrinkSite = "adapt.reserve.shrink"
)

var _ = faultinject.Register(MigrateSite, SplitSite, ReserveGrowSite, ReserveDenySite, ReserveShrinkSite)

// Config tunes the controller. The zero value selects the defaults below.
type Config struct {
	// SampleEvery is the hash sampling stride of the key-correlation
	// sketch: roughly one in SampleEvery build rows contributes a sample.
	SampleEvery int
	// SketchBits sizes the sketch histogram at 1<<SketchBits counters.
	SketchBits int
	// MinSamples is the sample count below which the sketch abstains from
	// fan-out decisions.
	MinSamples int64
	// SplitFactor: a resident partition whose build side exceeds
	// SplitFactor×CacheBudget bytes is re-partitioned at join time.
	SplitFactor float64
	// ShrinkSlack is the safety factor kept over observed need when
	// revising a reservation down; MinShrink is the smallest byte count
	// worth returning to the pool.
	ShrinkSlack float64
	MinShrink   int64
	// MaxEvents bounds the controller's own event log.
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.SketchBits <= 0 {
		c.SketchBits = 12
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 256
	}
	if c.SplitFactor <= 0 {
		c.SplitFactor = 4
	}
	if c.ShrinkSlack <= 0 {
		c.ShrinkSlack = 1.5
	}
	if c.MinShrink <= 0 {
		c.MinShrink = 1 << 20
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 64
	}
	return c
}

// Stats is the per-query adaptation summary surfaced through
// plan.ExecResult.Adapt, the sqlrun summary line, and the joind stats
// trailer.
type Stats struct {
	// Checkpoints counts build-side observation points (one per consumed
	// batch on adaptively-wired joins).
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// Migrations counts BHJ builds converted into radix partitions.
	Migrations int64 `json:"migrations,omitempty"`
	// Splits counts skewed resident partitions re-partitioned at join time.
	Splits int64 `json:"partition_splits,omitempty"`
	// SketchBits counts extra second-pass fan-out bits the key-correlation
	// sketch added over the static cache formula.
	SketchBits int64 `json:"sketch_bits_added,omitempty"`
	// Reservation revisions: grows granted, grows denied by the pool, and
	// shrinks returned to it, with the byte volumes moved.
	ResGrows    int64 `json:"reservation_grows,omitempty"`
	ResDenies   int64 `json:"reservation_denies,omitempty"`
	ResShrinks  int64 `json:"reservation_shrinks,omitempty"`
	GrownBytes  int64 `json:"grown_bytes,omitempty"`
	ShrunkBytes int64 `json:"shrunk_bytes,omitempty"`
	// Events is the bounded decision log; DroppedEvents counts evictions.
	Events        []string `json:"events,omitempty"`
	DroppedEvents int64    `json:"dropped_events,omitempty"`
}

// Any reports whether any adaptation decision was taken.
func (s Stats) Any() bool {
	return s.Migrations+s.Splits+s.SketchBits+s.ResGrows+s.ResDenies+s.ResShrinks > 0
}

// Revisions returns the total reservation revision count (grows, denies,
// and shrinks), the number the /statsz meters aggregate.
func (s Stats) Revisions() int64 { return s.ResGrows + s.ResDenies + s.ResShrinks }

// Add folds another query's stats into s (server lifetime aggregation).
func (s *Stats) Add(o Stats) {
	s.Checkpoints += o.Checkpoints
	s.Migrations += o.Migrations
	s.Splits += o.Splits
	s.SketchBits += o.SketchBits
	s.ResGrows += o.ResGrows
	s.ResDenies += o.ResDenies
	s.ResShrinks += o.ResShrinks
	s.GrownBytes += o.GrownBytes
	s.ShrunkBytes += o.ShrunkBytes
}

// Controller is one query's adaptation state: shared counters, the bounded
// event log, and a handle to the governor whose reservation it revises.
// Methods are safe for concurrent use from pipeline workers.
type Controller struct {
	cfg Config
	gov *govern.Governor
	m   *meter.Meter

	checkpoints atomic.Int64
	migrations  atomic.Int64
	splits      atomic.Int64
	sketchBits  atomic.Int64
	resGrows    atomic.Int64
	resDenies   atomic.Int64
	resShrinks  atomic.Int64
	grownBytes  atomic.Int64
	shrunkBytes atomic.Int64

	mu      sync.Mutex
	events  []string
	dropped int64
}

// NewController builds the query's adaptation controller. gov may be nil or
// unbudgeted (migration and reservation revision then never trigger; the
// sketch and split paths still work).
func NewController(cfg Config, gov *govern.Governor, m *meter.Meter) *Controller {
	return &Controller{cfg: cfg.withDefaults(), gov: gov, m: m}
}

// Join creates the per-join adaptation state (sketch, migration trigger,
// plan estimates). Nil-safe: a nil controller yields a nil state, and every
// JoinState method tolerates a nil receiver.
func (c *Controller) Join(id int) *JoinState {
	if c == nil {
		return nil
	}
	return &JoinState{c: c, id: id, sketch: make([]int64, 1<<c.cfg.SketchBits)}
}

// Stats snapshots the controller (zero value for nil).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	events := append([]string(nil), c.events...)
	dropped := c.dropped
	c.mu.Unlock()
	return Stats{
		Checkpoints:   c.checkpoints.Load(),
		Migrations:    c.migrations.Load(),
		Splits:        c.splits.Load(),
		SketchBits:    c.sketchBits.Load(),
		ResGrows:      c.resGrows.Load(),
		ResDenies:     c.resDenies.Load(),
		ResShrinks:    c.resShrinks.Load(),
		GrownBytes:    c.grownBytes.Load(),
		ShrunkBytes:   c.shrunkBytes.Load(),
		Events:        events,
		DroppedEvents: dropped,
	}
}

// event appends to the bounded decision log.
func (c *Controller) event(format string, args ...any) {
	c.mu.Lock()
	if len(c.events) < c.cfg.MaxEvents {
		c.events = append(c.events, fmt.Sprintf(format, args...))
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// JoinState is one join's adaptation state. The zero of everything (a nil
// pointer) disables adaptation for the join.
type JoinState struct {
	c  *Controller
	id int

	// Plan-time estimates, for divergence reporting and shrink targets.
	estBuildRows  int64
	estProbeBytes int64

	// sketch is the NOCAP-style histogram over sampled build hashes:
	// counter i accumulates samples whose hash has low bits i, so the
	// estimated load of final partition p under fan-out F (a power of two
	// ≤ len(sketch)) is the sum of counters ≡ p (mod F).
	sketch  []int64
	samples atomic.Int64

	migrating atomic.Bool
}

// SetPlanEstimates records what the planner believed: build cardinality and
// the probe side's projected materialization bytes (0 when the probe side
// streams). Observed divergence is reported against these.
func (js *JoinState) SetPlanEstimates(buildRows, probeBytes int64) {
	if js == nil {
		return
	}
	js.estBuildRows = buildRows
	js.estProbeBytes = probeBytes
}

// EstProbeBytes returns the planner's probe-side materialization estimate.
func (js *JoinState) EstProbeBytes() int64 {
	if js == nil {
		return 0
	}
	return js.estProbeBytes
}

// SampleEvery returns the sketch sampling stride (0 disables sampling).
func (js *JoinState) SampleEvery() int {
	if js == nil {
		return 0
	}
	return js.c.cfg.SampleEvery
}

// Sample feeds one build-row hash into the key-correlation sketch.
func (js *JoinState) Sample(h uint64) {
	if js == nil {
		return
	}
	atomic.AddInt64(&js.sketch[h&uint64(len(js.sketch)-1)], 1)
	js.samples.Add(1)
}

// Checkpoint counts one build-side observation point.
func (js *JoinState) Checkpoint() {
	if js == nil {
		return
	}
	js.c.checkpoints.Add(1)
}

// ShouldMigrate is the morsel-granularity migration trigger: given the
// projected additional bytes the BHJ still needs to finish its build
// (row copy, directory, entry array — beyond what is already granted), it
// reports whether the build should convert to radix partitions. The first
// rung is reservation revision: if the shared pool covers the projected
// overrun, the budget grows and the BHJ carries on. Only when the pool
// refuses (or there is none) does the controller order the migration.
func (js *JoinState) ShouldMigrate(projectedExtra int64) bool {
	if js == nil {
		return false
	}
	if js.migrating.Load() {
		return true
	}
	c := js.c
	g := c.gov
	if !g.Budgeted() {
		return false
	}
	over := g.Used() + projectedExtra - g.Budget()
	if over <= 0 {
		return false
	}
	faultinject.Hit(ReserveGrowSite)
	if got := g.TryGrowBudget(over); got >= over {
		c.resGrows.Add(1)
		c.grownBytes.Add(got)
		c.m.AddAdaptRevision(1)
		c.event("join %d: reservation grown by %d B to cover observed build (budget now %d B)", js.id, got, g.Budget())
		g.Note("adapt: join %d reservation grown by %d B (observed build exceeds estimate)", js.id, got)
		return false
	}
	if !js.migrating.CompareAndSwap(false, true) {
		return true
	}
	faultinject.Hit(ReserveDenySite)
	c.resDenies.Add(1)
	c.m.AddAdaptRevision(1)
	c.event("join %d: pool denied %d B growth; migrating build", js.id, over)
	return true
}

// BeginMigration marks the staged BHJ→radix conversion; called once by the
// adaptive build sink before any row moves. rows is the build cardinality
// observed so far.
func (js *JoinState) BeginMigration(rows int64) {
	if js == nil {
		return
	}
	faultinject.Hit(MigrateSite)
	c := js.c
	c.migrations.Add(1)
	c.m.AddAdaptMigration(1)
	c.event("join %d: BHJ build migrated to radix partitions at %d rows (plan estimated %d)",
		js.id, rows, js.estBuildRows)
	c.gov.Note("adapt: join %d BHJ build migrated to radix partitions at %d rows (plan estimated %d)",
		js.id, rows, js.estBuildRows)
}

// SplitThreshold returns the resident-partition byte size above which the
// join phase re-partitions (0 disables splitting).
func (js *JoinState) SplitThreshold(cacheBudget int) int64 {
	if js == nil || cacheBudget <= 0 {
		return 0
	}
	return int64(js.c.cfg.SplitFactor * float64(cacheBudget))
}

// BeginSplit marks one skewed-partition re-partitioning at join time.
func (js *JoinState) BeginSplit(pid int, rows int64, subBits int) {
	if js == nil {
		return
	}
	faultinject.Hit(SplitSite)
	c := js.c
	c.splits.Add(1)
	c.m.AddAdaptSplit(1)
	c.event("join %d: skewed partition %d (%d rows) split on %d further bits at join time",
		js.id, pid, rows, subBits)
}

// ChooseBits widens the second-pass fan-out beyond the static cache formula
// when the sketch shows the *largest* final partition would still overflow
// the cache budget — correlation-aware sizing in the NOCAP sense: the
// static formula divides total bytes by the fan-out, which under skew makes
// every partition pay for the average while the hot one still misses cache.
// Widening stops when it no longer shrinks the estimated maximum (a single
// hot key that further bits cannot spread). It never narrows below the
// static choice, so uniform workloads keep the paper's behavior bit-for-bit.
func (js *JoinState) ChooseBits(staticB2, b1, maxB2, rowSize int, totalRows int64, cacheBudget int) int {
	if js == nil || cacheBudget <= 0 || totalRows <= 0 {
		return staticB2
	}
	samples := js.samples.Load()
	if samples < js.c.cfg.MinSamples {
		return staticB2
	}
	scale := float64(totalRows) / float64(samples)
	maxLoad := func(b2 int) int64 {
		f := 1 << (b1 + b2)
		loads := make([]int64, f)
		mask := f - 1
		for b := range js.sketch {
			loads[b&mask] += atomic.LoadInt64(&js.sketch[b])
		}
		var m int64
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	b2 := staticB2
	for b2 < maxB2 {
		f := 1 << (b1 + b2)
		// Abstain when the sketch cannot resolve this fan-out or the
		// per-partition sample mass is too thin to tell skew from Poisson
		// noise; and only widen on a real skew signal — the hot partition
		// must both overflow the cache budget and hold well over its fair
		// share, so uniform workloads never drift from the static choice.
		if f*2 > len(js.sketch) || samples < 8*int64(f) {
			break
		}
		prev := maxLoad(b2)
		fair := samples / int64(f)
		if float64(prev)*scale*float64(rowSize) <= float64(cacheBudget) || prev < 4*fair {
			break
		}
		next := maxLoad(b2 + 1)
		if float64(next) > 0.75*float64(prev) {
			break // further bits no longer spread the load: hot key(s)
		}
		b2++
	}
	if b2 > staticB2 {
		c := js.c
		c.sketchBits.Add(int64(b2 - staticB2))
		c.event("join %d: sketch widened second-pass fan-out from %d to %d bits (skewed key distribution, %d samples)",
			js.id, staticB2, b2, samples)
	}
	return b2
}

// ShrinkAfterBuild revises the reservation down once the build side closed
// and the query's dominant footprint is known. remaining is the projected
// materialization still to come (the probe side of a partitioned join; 0
// when the probe streams). The controller keeps ShrinkSlack headroom over
// max(peak, used+remaining) and returns the rest to the pool, so queued
// neighbours admit against observed truth instead of the plan's guess.
func (js *JoinState) ShrinkAfterBuild(remaining int64) {
	if js == nil {
		return
	}
	c := js.c
	g := c.gov
	if !g.Budgeted() {
		return
	}
	need := g.Used() + remaining
	if p := g.Peak(); p > need {
		need = p
	}
	target := int64(float64(need) * c.cfg.ShrinkSlack)
	excess := g.Budget() - target
	if excess < c.cfg.MinShrink {
		return
	}
	faultinject.Hit(ReserveShrinkSite)
	got := g.TryShrinkBudget(excess)
	if got <= 0 {
		return
	}
	c.resShrinks.Add(1)
	c.shrunkBytes.Add(got)
	c.m.AddAdaptRevision(1)
	c.event("join %d: reservation shrunk by %d B after build (observed need %d B, budget now %d B)",
		js.id, got, need, g.Budget())
	g.Note("adapt: join %d reservation shrunk by %d B, returned to the pool", js.id, got)
}
