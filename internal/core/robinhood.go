package core

// rhTable is the per-partition hash table of the radix join's final phase:
// open addressing with robin-hood displacement, which Richter et al. found
// the most robust choice for thread-local workloads (Section 4.6). It
// stores only (hash, row index) — "since moving tuples is expensive, we
// only store pointers" — in one contiguous entry array so a probe touches
// a single cache line per slot. The table is sized once per partition
// (cardinality is known after partitioning) and its memory is reused
// across partitions to avoid reallocation.
type rhTable struct {
	entries []rhEntry
	mask    uint32
}

// rhEntry packs hash and row index into 16 bytes; idx < 0 marks empty.
type rhEntry struct {
	hash uint64
	idx  int32
}

// reset prepares the table for n entries, reusing memory when the existing
// capacity suffices ("we reuse the hash table's memory segment"; only
// significant skew forces a reallocation).
func (t *rhTable) reset(n int) {
	need := 8
	for need*7 < n*10 { // load factor ~0.7
		need <<= 1
	}
	if need > len(t.entries) {
		t.entries = make([]rhEntry, need)
		t.mask = uint32(need - 1)
	}
	es := t.entries[:t.mask+1]
	for i := range es {
		es[i].idx = -1
	}
}

// rhSlot derives the table slot from hash bits disjoint from the radix
// bits: within one partition every tuple shares the low B1+B2 bits (at
// most 14 with the default config), so slotting on them would collapse
// the whole partition onto a handful of slots with long linear-probe
// runs. Balkesen et al.'s join phase uses the next bit group for exactly
// this reason.
func rhSlot(h uint64) uint32 { return uint32(h >> 20) }

// insert places (h, idx), displacing richer entries as it goes.
func (t *rhTable) insert(h uint64, idx int32) {
	slot := rhSlot(h) & t.mask
	dist := uint32(0)
	for {
		e := &t.entries[slot]
		if e.idx < 0 {
			e.hash = h
			e.idx = idx
			return
		}
		occDist := (slot - rhSlot(e.hash)) & t.mask
		if occDist < dist {
			e.hash, h = h, e.hash
			e.idx, idx = idx, e.idx
			dist = occDist
		}
		slot = (slot + 1) & t.mask
		dist++
	}
}

// probe calls visit for every entry whose hash equals h. The robin-hood
// invariant bounds the scan: once an occupant sits closer to its ideal
// slot than our probe distance, h cannot appear further on. The radix
// join's hot loop inlines this logic; this method serves the tests and
// non-critical callers.
func (t *rhTable) probe(h uint64, visit func(idx int32)) {
	slot := rhSlot(h) & t.mask
	dist := uint32(0)
	for {
		e := &t.entries[slot]
		if e.idx < 0 {
			return
		}
		occDist := (slot - rhSlot(e.hash)) & t.mask
		if occDist < dist {
			return
		}
		if e.hash == h {
			visit(e.idx)
		}
		slot = (slot + 1) & t.mask
		dist++
	}
}
