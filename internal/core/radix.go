package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/hashx"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/storage"
)

// Fault-injection sites of the radix partitioning passes.
const (
	Pass1Site = "core.radix.pass1"
	Pass2Site = "core.radix.pass2"
)

// Partitions is the contiguous output of the two partitioning passes: one
// byte buffer holding all packed rows, with per-partition offset fences.
// Partition id of a row is (hash & (F1*F2-1)): the first pass splits on the
// low B1 bits, the second on the next B2 bits.
//
// Rows counts every row the sink consumed, including rows evicted to spill
// files; Data holds only the resident ones (they are equal unless the
// memory governor forced a spill).
type Partitions struct {
	Layout *Layout
	Data   []byte
	Off    []int64 // len NumParts()+1, byte offsets into Data
	B1, B2 int
	Rows   int64
}

// NumParts returns the final fan-out.
func (p *Partitions) NumParts() int { return 1 << (p.B1 + p.B2) }

// Part returns the packed rows of partition pid.
func (p *Partitions) Part(pid int) []byte { return p.Data[p.Off[pid]:p.Off[pid+1]] }

// Count returns the number of rows in partition pid.
func (p *Partitions) Count(pid int) int {
	return int(p.Off[pid+1]-p.Off[pid]) / p.Layout.Size
}

// pass1Worker is one worker's private partitioning state: a set of
// write-combine buffers and one paged temporary partition per first-pass
// output. No other worker ever touches it (Section 4.5: "all workers are
// writing to either local or dedicated memory areas").
type pass1Worker struct {
	swwcb *swwcbSet
	parts []pagedPart
	cols  [][]int64
}

// RadixSink is the pipeline breaker that materializes one join side into
// radix partitions. Consume runs partitioning pass 1 morsel-wise; Close
// runs the histogram scan, the exchange step, and partitioning pass 2
// (Figure 6), leaving the final contiguous partitions in Out.
type RadixSink struct {
	Cfg     Config
	Layout  *Layout
	Cols    []int // batch vector indices to materialize, layout order
	KeyCols []int // batch vector indices of the join key
	HashCol int   // batch vector index of a precomputed hash, or -1
	Side    string
	Join    *RadixJoin
	Meter   *meter.Meter
	// Quiet suppresses the meter phase markers. An adaptively-wired radix
	// sink sits inside (or alongside) another pipeline's phases; letting it
	// push its own would corrupt the phase stack.
	Quiet bool

	workers []*pass1Worker
	Out     *Partitions
}

// beginPhase / endPhase gate the meter phase markers behind Quiet.
func (s *RadixSink) beginPhase(name string) {
	if !s.Quiet {
		s.Meter.BeginPhase(name)
	}
}

func (s *RadixSink) endPhase() {
	if !s.Quiet {
		s.Meter.EndPhase()
	}
}

// gov returns the owning join's memory governor (nil-safe).
func (s *RadixSink) gov() *govern.Governor {
	if s.Join == nil {
		return nil
	}
	return s.Join.Gov
}

// spillState returns the owning join's spill coordinator (nil when the
// query has no spill directory).
func (s *RadixSink) spillState() *JoinSpill {
	if s.Join == nil {
		return nil
	}
	return s.Join.Spill
}

// maybeEvict is the spill rung of the degradation ladder during
// partitioning: called before a worker grants need more bytes, it evicts
// the worker's own partitions' pages to spill runs until the grant fits the
// budget (largest first, preferring partitions that already spilled so the
// spilled set stays small). Without a spill directory it does nothing and
// the governor's account simply runs past the budget as before.
func (s *RadixSink) maybeEvict(w *pass1Worker, need int64) {
	sp := s.spillState()
	if sp == nil {
		return
	}
	gov := s.gov()
	for gov.WouldExceed(need) {
		p1 := s.pickVictim(w)
		if p1 < 0 {
			return
		}
		s.spillPartition(w, p1)
	}
}

// pickVictim chooses the worker-local partition to evict: any partition
// that is already (globally) spilled beats one that is not, then more
// resident bytes beat fewer. Returns -1 when the worker holds no pages.
func (s *RadixSink) pickVictim(w *pass1Worker) int {
	sp := s.spillState()
	best, bestBytes := -1, int64(0)
	bestSpilled := false
	for p1 := range w.parts {
		b := w.parts[p1].rows * int64(s.Layout.Size)
		if b == 0 {
			continue
		}
		spd := sp.isSpilled(p1)
		if (spd && !bestSpilled) || (spd == bestSpilled && b > bestBytes) {
			best, bestBytes, bestSpilled = p1, b, spd
		}
	}
	return best
}

// spillPartition appends one worker's resident pages of pass-1 partition p1
// to the partition's spill run and releases their budget. A write failure
// panics and is converted to a query error by the driver's containment.
func (s *RadixSink) spillPartition(w *pass1Worker, p1 int) {
	part := &w.parts[p1]
	if part.rows == 0 {
		return
	}
	sp := s.spillState()
	f, err := sp.file(p1, s.Side)
	if err != nil {
		panic(fmt.Errorf("core: spill of partition %d (%s): %w", p1, s.Side, err))
	}
	rowSize := s.Layout.Size
	var bytes int64
	for _, pg := range part.pages {
		if len(pg) == 0 {
			continue
		}
		if err := f.Append(pg, len(pg)/rowSize); err != nil {
			panic(fmt.Errorf("core: spill of partition %d (%s): %w", p1, s.Side, err))
		}
		bytes += int64(len(pg))
	}
	sp.recordSpill(p1, s.Side, part.rows, bytes)
	s.gov().Release(bytes)
	*part = pagedPart{}
}

// Open implements exec.Sink.
func (s *RadixSink) Open(workers int) {
	s.workers = make([]*pass1Worker, workers)
	s.Out = nil
	s.beginPhase("partition pass 1 (" + s.Side + ")")
}

func (s *RadixSink) worker(ctx *exec.Ctx) *pass1Worker {
	w := s.workers[ctx.Worker]
	if w == nil {
		w = &pass1Worker{
			swwcb: newSWWCBSet(1<<s.Cfg.Pass1Bits, s.swwcbBytes(), s.Layout.Size),
			parts: make([]pagedPart, 1<<s.Cfg.Pass1Bits),
		}
		s.gov().MustGrant(int64(len(w.swwcb.buf)))
		s.workers[ctx.Worker] = w
	}
	return w
}

// swwcbBytes returns the effective write-combine buffer size: wide rows
// bypass buffering (buffer of exactly one row).
func (s *RadixSink) swwcbBytes() int {
	if !s.Layout.Buffered {
		return s.Layout.Size
	}
	return s.Cfg.SWWCBBytes
}

// Consume implements exec.Sink: partitioning pass 1. Each tuple is hashed,
// packed into the write-combine buffer of partition (hash & (F1-1)), and
// streamed to the worker-local paged partition when the buffer fills.
func (s *RadixSink) Consume(ctx *exec.Ctx, b *exec.Batch) {
	faultinject.Hit(Pass1Site)
	if st := s.adaptState(); st != nil {
		s.sampleBatch(st, b)
	}
	w := s.worker(ctx)
	gov := s.gov()
	mask := uint64(1)<<s.Cfg.Pass1Bits - 1
	rowSize := s.Layout.Size
	pageBytes := s.Cfg.PageBytes
	flush := func(p int, data []byte) {
		s.maybeEvict(w, int64(len(data)))
		gov.MustGrant(int64(len(data)))
		w.parts[p].write(data, rowSize, pageBytes)
	}
	var hcol []int64
	if s.HashCol >= 0 {
		hcol = b.Vecs[s.HashCol].I64
	}
	// Fast path: all-integer layouts with a single 8-byte key — the
	// common case (every TPC-H key, both prior-work workloads) packs in
	// one tight loop without per-column dispatch.
	if s.Layout.AllI64 {
		var keys []int64
		if hcol == nil && s.Layout.KeyI64 {
			kv := &b.Vecs[s.KeyCols[0]]
			if kv.T != storage.Float64 && kv.T != storage.String {
				keys = kv.I64
			}
		}
		if hcol != nil || keys != nil {
			cols := w.cols[:0]
			for _, src := range s.Cols {
				cols = append(cols, b.Vecs[src].I64)
			}
			w.cols = cols
			for i := 0; i < b.N; i++ {
				var h uint64
				if hcol != nil {
					h = uint64(hcol[i])
				} else {
					h = hashx.I64(keys[i])
				}
				p := int(h & mask)
				dst := w.swwcb.slot(p, flush)
				binary.LittleEndian.PutUint64(dst, h)
				off := 8
				for _, cv := range cols {
					binary.LittleEndian.PutUint64(dst[off:], uint64(cv[i]))
					off += 8
				}
			}
			s.Meter.AddWrite(int64(b.N) * int64(rowSize))
			return
		}
	}
	for i := 0; i < b.N; i++ {
		var h uint64
		if hcol != nil {
			h = uint64(hcol[i])
		} else {
			h = HashKeys(b, s.KeyCols, i)
		}
		p := int(h & mask)
		dst := w.swwcb.tryslot(p)
		if dst == nil {
			dst = w.swwcb.flushSlot(p, flush)
		}
		s.Layout.PackRow(dst, h, b, s.Cols, i)
	}
	s.Meter.AddWrite(int64(b.N) * int64(rowSize))
}

// adaptState returns the key-correlation sketch this side feeds: the build
// side of an adaptively-governed join, nil otherwise.
func (s *RadixSink) adaptState() *adapt.JoinState {
	if s.Join == nil || s.Join.Adapt == nil || s != s.Join.BuildSink {
		return nil
	}
	return s.Join.Adapt
}

// sampleBatch feeds a strided sample of the batch's key hashes into the
// sketch. The duplicate hash work is bounded by the stride (~1/64 rows), a
// price the fan-out decision pays for seeing the real distribution.
func (s *RadixSink) sampleBatch(st *adapt.JoinState, b *exec.Batch) {
	stride := st.SampleEvery()
	if stride <= 0 {
		return
	}
	var hcol []int64
	if s.HashCol >= 0 {
		hcol = b.Vecs[s.HashCol].I64
	}
	for i := 0; i < b.N; i += stride {
		if hcol != nil {
			st.Sample(uint64(hcol[i]))
		} else {
			st.Sample(HashKeys(b, s.KeyCols, i))
		}
	}
}

// ConsumePacked ingests already-packed rows — the BHJ build arenas during
// an adaptive migration. Every packed row carries its hash at offset 0, so
// the rows re-scatter into pass-1 partitions without touching the key
// columns or re-hashing, which is what makes the mid-build migration a
// memory move rather than a restart.
func (s *RadixSink) ConsumePacked(ctx *exec.Ctx, data []byte) {
	w := s.worker(ctx)
	gov := s.gov()
	mask := uint64(1)<<s.Cfg.Pass1Bits - 1
	rowSize := s.Layout.Size
	pageBytes := s.Cfg.PageBytes
	flush := func(p int, d []byte) {
		s.maybeEvict(w, int64(len(d)))
		gov.MustGrant(int64(len(d)))
		w.parts[p].write(d, rowSize, pageBytes)
	}
	for off := 0; off+rowSize <= len(data); off += rowSize {
		row := data[off : off+rowSize]
		h := s.Layout.Hash(row)
		p := int(h & mask)
		dst := w.swwcb.tryslot(p)
		if dst == nil {
			dst = w.swwcb.flushSlot(p, flush)
		}
		copy(dst, row)
	}
	s.Meter.AddWrite(int64(len(data)))
}

// Close implements exec.Sink: drains the buffers, builds the histograms
// (the "scan" phase of Figure 10), computes the exchange prefix sums, and
// runs partitioning pass 2 into the final contiguous buffer. The build side
// additionally decides the second-pass fan-out from its materialized size
// and, for the BRJ, fills the Bloom filter while scattering.
func (s *RadixSink) Close() {
	cfg := s.Cfg
	f1 := 1 << cfg.Pass1Bits
	rowSize := s.Layout.Size

	// Drain pass-1 buffers.
	gov := s.gov()
	live := s.workers[:0]
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		wp := w.parts
		w.swwcb.drain(func(p int, data []byte) {
			gov.MustGrant(int64(len(data)))
			wp[p].write(data, rowSize, cfg.PageBytes)
		})
		live = append(live, w)
	}
	s.endPhase()

	// Spilled pre-partitions flush their remaining resident pages before
	// the histogram so they contribute nothing to pass 2: a partition is
	// joined either fully resident or fully through its spill run, never
	// half and half (a split would lose matches).
	sp := s.spillState()
	if sp != nil {
		for _, p1 := range sp.spilledList() {
			for _, w := range live {
				s.spillPartition(w, p1)
			}
		}
	}
	var residentRows int64
	for _, w := range live {
		for p := range w.parts {
			residentRows += w.parts[p].rows
		}
	}

	b2 := s.Join.decideBits(s, residentRows, maxInt(len(live), 1))
	f2 := 1 << b2
	maskF1 := uint64(f1 - 1)
	maskF2 := uint64(f2 - 1)
	shift := uint(cfg.Pass1Bits)

	// Histogram scan: per pre-partition, count rows per second-pass
	// target. One task per pre-partition keeps the counters private.
	hist := make([][]int64, f1)
	if f2 > 1 {
		s.beginPhase("scan (" + s.Side + ")")
		workers := len(live)
		parallelFor(f1, maxInt(workers, 1), func(p1 int) {
			h := make([]int64, f2)
			for _, w := range live {
				for _, pg := range w.parts[p1].pages {
					for off := 0; off < len(pg); off += rowSize {
						hv := s.Layout.Hash(pg[off:])
						h[(hv>>shift)&maskF2]++
					}
				}
			}
			hist[p1] = h
		})
		s.Meter.AddRead(residentRows * 8)
		s.endPhase()
	} else {
		for p1 := 0; p1 < f1; p1++ {
			h := make([]int64, 1)
			for _, w := range live {
				h[0] += w.parts[p1].rows
			}
			hist[p1] = h
		}
	}

	// Close-time eviction: pass 2 briefly holds the pages and the final
	// contiguous buffer at once, so this is the last moment partitions can
	// still go to disk page by page. Evict the largest resident
	// pre-partitions until granting the buffer fits the budget.
	bytesP1 := make([]int64, f1)
	var acc int64
	for p1 := 0; p1 < f1; p1++ {
		var n int64
		for _, c := range hist[p1] {
			n += c
		}
		bytesP1[p1] = n * int64(rowSize)
		acc += bytesP1[p1]
	}
	if sp != nil {
		for gov.WouldExceed(acc) {
			victim := -1
			for p1, b := range bytesP1 {
				if b > 0 && (victim < 0 || b > bytesP1[victim]) {
					victim = p1
				}
			}
			if victim < 0 {
				break
			}
			for _, w := range live {
				s.spillPartition(w, victim)
			}
			acc -= bytesP1[victim]
			bytesP1[victim] = 0
			for p2 := range hist[victim] {
				hist[victim][p2] = 0
			}
			residentRows = acc / int64(rowSize)
		}
	}

	// Exchange: prefix sums over the histograms fence the final buffer.
	nparts := f1 * f2
	out := &Partitions{Layout: s.Layout, B1: cfg.Pass1Bits, B2: b2, Rows: residentRows}
	out.Off = make([]int64, nparts+1)
	var off int64
	for pid := 0; pid < nparts; pid++ {
		out.Off[pid] = off
		p1 := pid & int(maskF1)
		p2 := pid >> shift
		off += hist[p1][p2] * int64(rowSize)
	}
	out.Off[nparts] = off
	gov.MustGrant(off)
	out.Data = make([]byte, off)

	// Pass 2: one task per pre-partition; every final partition is
	// written by exactly one task, so no synchronization is needed. The
	// BRJ fills the Bloom filter here: the filter's block index shares
	// the partition's low bits, so tasks touch disjoint blocks.
	s.beginPhase("partition pass 2 (" + s.Side + ")")
	filter := s.Join.buildFilter(s, residentRows)
	parallelFor(f1, maxInt(len(live), 1), func(p1 int) {
		faultinject.Hit(Pass2Site)
		cursors := make([]int64, f2)
		for p2 := 0; p2 < f2; p2++ {
			cursors[p2] = out.Off[p1|p2<<shift]
		}
		flush := func(p2 int, data []byte) {
			copy(out.Data[cursors[p2]:], data)
			cursors[p2] += int64(len(data))
		}
		sw := newSWWCBSet(f2, s.swwcbBytes(), rowSize)
		gov.MustGrant(int64(len(sw.buf)))
		defer gov.Release(int64(len(sw.buf)))
		for _, w := range live {
			for _, pg := range w.parts[p1].pages {
				for off := 0; off < len(pg); off += rowSize {
					row := pg[off : off+rowSize]
					hv := s.Layout.Hash(row)
					if filter != nil {
						filter.Insert(hv)
					}
					p2 := int((hv >> shift) & maskF2)
					dst := sw.tryslot(p2)
					if dst == nil {
						dst = sw.flushSlot(p2, flush)
					}
					copy(dst, row)
				}
			}
			// Pages of this pre-partition are dead after the scan.
			gov.Release(w.parts[p1].rows * int64(rowSize))
			w.parts[p1] = pagedPart{}
		}
		sw.drain(flush)
	})
	s.Meter.AddRead(residentRows * int64(rowSize))
	s.Meter.AddWrite(residentRows * int64(rowSize))
	s.endPhase()

	for _, w := range live {
		gov.Release(int64(len(w.swwcb.buf)))
	}
	if sp != nil {
		out.Rows += sp.spilledRowsTotal(s.Side)
	}
	s.Out = out
	s.workers = nil
}

// totalBitsFor sizes the fan-out so one build partition fits the cache
// budget: ceil(log2(buildBytes / CacheBudget)), floored and capped.
func totalBitsFor(cfg Config, buildBytes int64) int {
	total := cfg.MinTotalBits
	if buildBytes > int64(cfg.CacheBudget) {
		need := (buildBytes + int64(cfg.CacheBudget) - 1) / int64(cfg.CacheBudget)
		b := bits.Len64(uint64(need - 1))
		if b > total {
			total = b
		}
	}
	if maxTotal := cfg.Pass1Bits + cfg.MaxPass2Bits; total > maxTotal {
		total = maxTotal
	}
	return total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
