package core

import (
	"strings"
	"testing"

	"partitionjoin/internal/govern"
)

// TestGovernorShedsFanoutBits exercises the runtime rung of the degradation
// ladder: with a memory budget too tight for the cache-optimal second-pass
// fan-out, decideBits must shed bits (recording the decision) while the
// partitioning stays a correct multiset with matching build/probe fan-outs.
func TestGovernorShedsFanoutBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBudget = 1 << 10 // tiny cache => large cache-optimal fan-out
	const n = 20000

	ref := testJoinPair(cfg)
	driveSink(ref.BuildSink, n, 2, func(i int) int64 { return int64(i) })
	wantB2 := ref.BuildSink.Out.B2
	if wantB2 < 2 {
		t.Fatalf("cache-optimal fan-out too small to degrade (b2=%d)", wantB2)
	}

	j := testJoinPair(cfg)
	// Roughly: both passes hold the materialized rows once each, and the
	// slack is too small for the full fan-out's write-combine buffers and
	// histogram, so at least one second-pass bit must go.
	rowBytes := 2 * int64(n) * int64(j.BuildSink.Layout.Size)
	gov := govern.New(rowBytes + 4096)
	j.Gov = gov
	driveSink(j.BuildSink, n, 2, func(i int) int64 { return int64(i) })

	if j.DegradedBits == 0 {
		t.Fatalf("governor shed no bits (b2=%d, budget %d B)", j.BuildSink.Out.B2, gov.Budget())
	}
	if got := j.BuildSink.Out.B2; got != wantB2-j.DegradedBits {
		t.Fatalf("b2=%d, want %d-%d", got, wantB2, j.DegradedBits)
	}
	degradeNoted := false
	for _, ev := range gov.Events() {
		if strings.Contains(ev, "fan-out reduced") {
			degradeNoted = true
		}
	}
	if !degradeNoted {
		t.Fatalf("no fan-out event recorded: %v", gov.Events())
	}

	// The probe side must reuse the degraded decision so partition pairs
	// still line up.
	driveSink(j.ProbeSink, n, 2, func(i int) int64 { return int64(n - 1 - i) })
	if j.ProbeSink.Out.B2 != j.BuildSink.Out.B2 {
		t.Fatalf("probe b2=%d, build b2=%d", j.ProbeSink.Out.B2, j.BuildSink.Out.B2)
	}

	// Degraded partitioning must still be a correct partitioned multiset.
	for _, out := range []*Partitions{j.BuildSink.Out, j.ProbeSink.Out} {
		if out.Rows != n {
			t.Fatalf("degraded partitioning lost rows: %d of %d", out.Rows, n)
		}
		mask := uint64(out.NumParts() - 1)
		seen := map[int64]bool{}
		for pid := 0; pid < out.NumParts(); pid++ {
			part := out.Part(pid)
			for off := 0; off < len(part); off += out.Layout.Size {
				if h := out.Layout.Hash(part[off:]); h&mask != uint64(pid) {
					t.Fatalf("row with hash %x in wrong partition %d", h, pid)
				}
				pay := out.Layout.GetI64(part[off:], 1)
				if seen[pay] {
					t.Fatalf("payload %d duplicated", pay)
				}
				seen[pay] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("multiset not preserved: %d of %d", len(seen), n)
		}
	}
	if gov.Peak() <= 0 {
		t.Fatal("governor recorded no usage")
	}
}
