package core

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/hashx"
	"partitionjoin/internal/storage"
)

// --- layout ---

func TestLayoutPackUnpackRoundTrip(t *testing.T) {
	types := []storage.Type{storage.Int64, storage.Int32, storage.Float64, storage.String}
	widths := []int{8, 4, 8, storage.String.Width(10)}
	l := NewLayout(types, widths, []int{0})
	b := exec.NewBatch(types, []int{0, 0, 0, 10})
	b.Vecs[0].I64 = append(b.Vecs[0].I64, 42, -7)
	b.Vecs[1].I64 = append(b.Vecs[1].I64, -123456, 7)
	b.Vecs[1].Width = 4
	b.Vecs[2].F64 = append(b.Vecs[2].F64, 3.25, -0.5)
	b.Vecs[3].Str = append(b.Vecs[3].Str, []byte("hello"), []byte(""))
	b.N = 2

	row := make([]byte, l.Size)
	for i := 0; i < 2; i++ {
		h := hashx.I64(b.Vecs[0].I64[i])
		l.PackRow(row, h, b, []int{0, 1, 2, 3}, i)
		if l.Hash(row) != h {
			t.Fatal("hash round trip failed")
		}
		var out exec.Batch
		out.Vecs = make([]exec.Vector, 4)
		for c := range out.Vecs {
			out.Vecs[c] = exec.NewVector(types[c], 10)
			l.AppendCol(&out.Vecs[c], row, c)
		}
		if out.Vecs[0].I64[0] != b.Vecs[0].I64[i] ||
			out.Vecs[1].I64[0] != b.Vecs[1].I64[i] ||
			out.Vecs[2].F64[0] != b.Vecs[2].F64[i] ||
			string(out.Vecs[3].Str[0]) != string(b.Vecs[3].Str[i]) {
			t.Fatalf("row %d did not round trip", i)
		}
	}
}

func TestLayoutPadding(t *testing.T) {
	// hash(8) + key(8) = 16 -> power of two, buffered.
	l := NewLayout([]storage.Type{storage.Int64}, []int{8}, []int{0})
	if l.Size != 16 || !l.Buffered || !l.AllI64 || !l.KeyI64 {
		t.Fatalf("16B layout: %+v", l)
	}
	// hash + 3 cols = 32; +1 col = 40 -> pads to 64 (still buffered).
	l = NewLayout([]storage.Type{storage.Int64, storage.Int64, storage.Int64, storage.Int64},
		[]int{8, 8, 8, 8}, []int{0})
	if l.Size != 64 || !l.Buffered {
		t.Fatalf("40B layout: size=%d buffered=%v", l.Size, l.Buffered)
	}
	// hash + 8 cols = 72 -> too wide to buffer, padded to 8 only.
	cols := make([]storage.Type, 8)
	ws := make([]int, 8)
	for i := range cols {
		cols[i] = storage.Int64
		ws[i] = 8
	}
	l = NewLayout(cols, ws, []int{0})
	if l.Size != 72 || l.Buffered {
		t.Fatalf("72B layout: size=%d buffered=%v", l.Size, l.Buffered)
	}
	// String layouts are not AllI64.
	l = NewLayout([]storage.Type{storage.Int64, storage.String}, []int{8, 12}, []int{0})
	if l.AllI64 {
		t.Fatal("string layout claims AllI64")
	}
}

func TestKeyEqualAcrossLayouts(t *testing.T) {
	// Same key value packed at different offsets/widths must compare
	// equal across an int64 and an int32 layout.
	la := NewLayout([]storage.Type{storage.Int64, storage.Int64}, []int{8, 8}, []int{0})
	lb := NewLayout([]storage.Type{storage.Int32}, []int{4}, []int{0})
	ba := exec.NewBatch([]storage.Type{storage.Int64, storage.Int64}, nil)
	ba.Vecs[0].I64 = append(ba.Vecs[0].I64, 77)
	ba.Vecs[1].I64 = append(ba.Vecs[1].I64, 1)
	ba.N = 1
	bb := exec.NewBatch([]storage.Type{storage.Int32}, nil)
	bb.Vecs[0].I64 = append(bb.Vecs[0].I64, 77)
	bb.Vecs[0].Width = 4
	bb.N = 1
	rowA := make([]byte, la.Size)
	rowB := make([]byte, lb.Size)
	la.PackRow(rowA, 1, ba, []int{0, 1}, 0)
	lb.PackRow(rowB, 1, bb, []int{0}, 0)
	if !la.KeyEqual(rowA, lb, rowB) {
		t.Fatal("equal keys compared unequal across widths")
	}
	if !la.KeyEqualBatch(rowA, bb, []int{0}, 0) {
		t.Fatal("KeyEqualBatch failed")
	}
	binary.LittleEndian.PutUint32(rowB[lb.Offs[0]:], 78)
	if la.KeyEqual(rowA, lb, rowB) {
		t.Fatal("different keys compared equal")
	}
}

// --- paged partitions & write-combine buffers ---

func TestPagedPartPreservesRowsAcrossPages(t *testing.T) {
	const rowSize = 24
	var p pagedPart
	var want []byte
	// Write in odd-sized chunks so rows straddle flush boundaries.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 500; n++ {
		rows := 1 + rng.Intn(7)
		chunk := make([]byte, rows*rowSize)
		rng.Read(chunk)
		want = append(want, chunk...)
		p.write(chunk, rowSize, 128)
	}
	var got []byte
	for _, pg := range p.pages {
		if len(pg)%rowSize != 0 {
			t.Fatalf("page holds partial rows: %d bytes", len(pg))
		}
		got = append(got, pg...)
	}
	if string(got) != string(want) {
		t.Fatalf("pages lost or reordered data: %d vs %d bytes", len(got), len(want))
	}
	if p.rows != int64(len(want)/rowSize) {
		t.Fatalf("row count %d, want %d", p.rows, len(want)/rowSize)
	}
}

func TestSWWCBSetFlushesWholeRows(t *testing.T) {
	const rowSize, fanout = 16, 8
	sw := newSWWCBSet(fanout, 64, rowSize)
	got := make(map[int][]byte)
	flush := func(p int, data []byte) {
		if len(data)%rowSize != 0 {
			t.Fatalf("flush of partial rows: %d bytes", len(data))
		}
		got[p] = append(got[p], data...)
	}
	want := make(map[int][]byte)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		p := rng.Intn(fanout)
		row := make([]byte, rowSize)
		rng.Read(row)
		want[p] = append(want[p], row...)
		copy(sw.slot(p, flush), row)
	}
	sw.drain(flush)
	for p := range want {
		if string(got[p]) != string(want[p]) {
			t.Fatalf("partition %d corrupted", p)
		}
	}
}

func TestSWWCBWideRowsDegradeToDirect(t *testing.T) {
	sw := newSWWCBSet(4, 64, 100) // row wider than buffer
	flushed := 0
	flush := func(p int, data []byte) { flushed++ }
	copy(sw.slot(0, flush), make([]byte, 100))
	copy(sw.slot(0, flush), make([]byte, 100))
	// Second slot must have flushed the first row immediately.
	if flushed != 1 {
		t.Fatalf("wide rows buffered: %d flushes", flushed)
	}
}

// --- robin-hood table ---

func TestRHTableMatchesMapReference(t *testing.T) {
	check := func(keys []uint16) bool {
		var ht rhTable
		ht.reset(len(keys))
		ref := map[uint64][]int32{}
		for i, k := range keys {
			h := hashx.U64(uint64(k))
			ht.insert(h, int32(i))
			ref[h] = append(ref[h], int32(i))
		}
		for _, k := range keys {
			h := hashx.U64(uint64(k))
			var got []int32
			ht.probe(h, func(idx int32) { got = append(got, idx) })
			if len(got) != len(ref[h]) {
				return false
			}
		}
		// A key never inserted must not be found.
		miss := 0
		ht.probe(hashx.U64(1<<40), func(int32) { miss++ })
		return miss == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRHTableReuseAcrossPartitions(t *testing.T) {
	var ht rhTable
	for round := 0; round < 5; round++ {
		n := 100 * (round + 1)
		ht.reset(n)
		for i := 0; i < n; i++ {
			ht.insert(hashx.U64(uint64(round*10000+i)), int32(i))
		}
		found := 0
		for i := 0; i < n; i++ {
			ht.probe(hashx.U64(uint64(round*10000+i)), func(int32) { found++ })
		}
		if found != n {
			t.Fatalf("round %d: found %d of %d", round, found, n)
		}
		// Previous round's keys must be gone.
		if round > 0 {
			stale := 0
			ht.probe(hashx.U64(uint64((round-1)*10000)), func(int32) { stale++ })
			if stale != 0 {
				t.Fatal("stale entries survived reset")
			}
		}
	}
}

// TestRHSlotAvoidsRadixBits verifies the slot bits are disjoint from the
// partitioning bits: keys sharing low radix bits must not collide into the
// same slot neighborhood.
func TestRHSlotAvoidsRadixBits(t *testing.T) {
	const samePartition = 0x2a // all keys share these low bits
	slots := map[uint32]bool{}
	for i := 0; i < 256; i++ {
		h := (hashx.U64(uint64(i)) &^ 0x3fff) | samePartition
		slots[rhSlot(h)&255] = true
	}
	if len(slots) < 100 {
		t.Fatalf("only %d distinct slots for 256 same-partition hashes", len(slots))
	}
}

// --- radix partitioning end to end ---

// driveSink pushes n synthetic (key, payload) tuples through a RadixSink
// using the given worker count.
func driveSink(s *RadixSink, n, workers int, keyOf func(i int) int64) {
	s.Open(workers)
	perWorker := (n + workers - 1) / workers
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			ctx := &exec.Ctx{Worker: w, Workers: workers}
			b := exec.NewBatch([]storage.Type{storage.Int64, storage.Int64}, nil)
			lo, hi := w*perWorker, (w+1)*perWorker
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if b.N == exec.BatchSize {
					s.Consume(ctx, b)
					b.Reset()
				}
				b.Vecs[0].I64 = append(b.Vecs[0].I64, keyOf(i))
				b.Vecs[1].I64 = append(b.Vecs[1].I64, int64(i))
				b.N++
			}
			if b.N > 0 {
				s.Consume(ctx, b)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	s.Close()
}

func testJoinPair(cfg Config) *RadixJoin {
	layout := NewLayout([]storage.Type{storage.Int64, storage.Int64}, []int{8, 8}, []int{0})
	probeLayout := NewLayout([]storage.Type{storage.Int64, storage.Int64}, []int{8, 8}, []int{0})
	return NewRadixJoin(cfg, Inner, nil,
		layout, []int{0, 1}, []int{0}, -1,
		probeLayout, []int{0, 1}, []int{0}, -1,
		[]int{1}, []int{1})
}

func TestRadixPartitioningInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBudget = 1 << 10 // force a second pass
	j := testJoinPair(cfg)
	const n = 20000
	driveSink(j.BuildSink, n, 3, func(i int) int64 { return int64(i) })

	out := j.BuildSink.Out
	if out.Rows != n {
		t.Fatalf("partitioning lost rows: %d of %d", out.Rows, n)
	}
	if out.B2 == 0 {
		t.Fatalf("expected a second pass with tiny cache budget (b2=%d)", out.B2)
	}
	mask := uint64(out.NumParts() - 1)
	seen := map[int64]bool{}
	for pid := 0; pid < out.NumParts(); pid++ {
		part := out.Part(pid)
		for off := 0; off < len(part); off += out.Layout.Size {
			h := out.Layout.Hash(part[off:])
			if h&mask != uint64(pid) {
				t.Fatalf("row with hash %x in wrong partition %d", h, pid)
			}
			key := out.Layout.GetI64(part[off:], 0)
			if h != hashx.I64(key) {
				t.Fatalf("stored hash does not match key %d", key)
			}
			pay := out.Layout.GetI64(part[off:], 1)
			if seen[pay] {
				t.Fatalf("payload %d duplicated", pay)
			}
			seen[pay] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("multiset not preserved: %d of %d", len(seen), n)
	}
}

func TestProbeBeforeBuildPanics(t *testing.T) {
	j := testJoinPair(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("probe-before-build did not panic")
		}
	}()
	driveSink(j.ProbeSink, 100, 1, func(i int) int64 { return int64(i) })
}

func TestBloomBuiltDuringPass2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bloom = true
	cfg.CacheBudget = 1 << 10
	j := testJoinPair(cfg)
	const n = 5000
	driveSink(j.BuildSink, n, 2, func(i int) int64 { return int64(i) })
	f := j.Filter()
	if f == nil {
		t.Fatal("no Bloom filter built")
	}
	for i := 0; i < n; i++ {
		if !f.MayContain(hashx.I64(int64(i))) {
			t.Fatalf("false negative for build key %d", i)
		}
	}
	fp := 0
	for i := n; i < 2*n; i++ {
		if f.MayContain(hashx.I64(int64(i))) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.15 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
	if f.Blocks() < 1<<(j.Cfg.Pass1Bits+j.b2) {
		t.Fatal("filter smaller than fan-out: concurrent pass-2 tasks would share blocks")
	}
}

func TestTotalBitsFor(t *testing.T) {
	cfg := DefaultConfig()
	if got := totalBitsFor(cfg, 0); got != cfg.MinTotalBits {
		t.Fatalf("empty build: %d bits", got)
	}
	if got := totalBitsFor(cfg, int64(cfg.CacheBudget)); got != cfg.MinTotalBits {
		t.Fatalf("cache-resident build: %d bits", got)
	}
	if got := totalBitsFor(cfg, int64(cfg.CacheBudget)*8); got != 3 {
		t.Fatalf("8x budget: %d bits, want 3", got)
	}
	if got := totalBitsFor(cfg, 1<<40); got != cfg.Pass1Bits+cfg.MaxPass2Bits {
		t.Fatalf("huge build not capped: %d bits", got)
	}
}

func TestTagBitDisjointFromDirectoryBits(t *testing.T) {
	// Directory slots use low bits; the tag must live in the top 16.
	for i := 0; i < 1000; i++ {
		h := hashx.U64(uint64(i))
		tb := tagBit(h)
		if tb&((1<<48)-1) != 0 {
			t.Fatalf("tag bit %x overlaps the index bits", tb)
		}
	}
}

func TestMarkBitConcurrent(t *testing.T) {
	bits := make([]uint32, 4)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := int32(0); i < 128; i++ {
				markBit(bits, i)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	for i, w := range bits {
		if w != ^uint32(0) {
			t.Fatalf("word %d = %x", i, w)
		}
	}
}
