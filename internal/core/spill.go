package core

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/spill"
)

// ReloadSite is the fault-injection site visited once per spilled partition
// (or recursion sub-partition) processed in the join phase.
const ReloadSite = "core.spill.reload"

const (
	// spillSubBits is the fan-out (in bits) of one recursive re-partition
	// step applied to a spilled partition that alone exceeds the budget.
	spillSubBits = 4
	// spillMaxDepth caps recursion: past it the partition is joined in
	// memory regardless (a single over-weight key cannot be split by more
	// hash bits, and refusing would trade a slow correct answer for none).
	spillMaxDepth = 3
	// spillStageBytes is the per-sub-partition staging buffer of a
	// recursive re-partition pass.
	spillStageBytes = 32 << 10
)

// SpillStats summarizes what a join's spill escape hatch did; aggregated
// into plan.ExecResult so callers can see how a run completed.
type SpillStats struct {
	// Partitions is the number of distinct pass-1 partitions spilled.
	Partitions int
	// SpilledBytes / ReloadedBytes are payload bytes written to and read
	// back from spill files (recursion re-writes count again).
	SpilledBytes  int64
	ReloadedBytes int64
	// Recursed counts recursive re-partition passes (skew overflow).
	Recursed int
	// MaxReloadBytes is the largest single working-set grant of the
	// reload path: the bound by which governor peak may exceed the budget.
	MaxReloadBytes int64
}

// Add accumulates other into s (per-join stats into per-query stats).
func (s *SpillStats) Add(o SpillStats) {
	s.Partitions += o.Partitions
	s.SpilledBytes += o.SpilledBytes
	s.ReloadedBytes += o.ReloadedBytes
	s.Recursed += o.Recursed
	if o.MaxReloadBytes > s.MaxReloadBytes {
		s.MaxReloadBytes = o.MaxReloadBytes
	}
}

// JoinSpill coordinates the grace-hash escape hatch of one radix join: the
// shared set of spilled pass-1 partitions, their run files in the query's
// spill directory, and the serialized reload path of the join phase. Both
// sides of a partition id spill together (the probe sink routes every
// partition the build side spilled to disk too), so the join stays
// partition-local. A nil *JoinSpill disables spilling.
type JoinSpill struct {
	dir    *spill.Dir
	gov    *govern.Governor
	meter  *meter.Meter
	joinID int

	mu      sync.Mutex
	spilled map[int]bool // pass-1 partition ids, both sides
	rows    map[string]int64
	stats   SpillStats

	// reloadMu serializes spilled-partition processing in the join phase
	// so at most one partition's reload working set is in memory at a
	// time — the "budget plus one reload" peak guarantee.
	reloadMu sync.Mutex
}

// NewJoinSpill wires the spill escape hatch for one join. dir is the
// query-scoped spill directory (owned and cleaned up by the executor).
func NewJoinSpill(dir *spill.Dir, gov *govern.Governor, m *meter.Meter, joinID int) *JoinSpill {
	return &JoinSpill{
		dir: dir, gov: gov, meter: m, joinID: joinID,
		spilled: make(map[int]bool), rows: make(map[string]int64),
	}
}

// Stats returns a snapshot of the spill counters.
func (sp *JoinSpill) Stats() SpillStats {
	if sp == nil {
		return SpillStats{}
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.stats
}

// isSpilled reports whether pass-1 partition p1 has spilled (either side).
func (sp *JoinSpill) isSpilled(p1 int) bool {
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.spilled[p1]
}

// numSpilled returns the count of spilled pass-1 partitions.
func (sp *JoinSpill) numSpilled() int {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.spilled)
}

// spilledList returns the spilled pass-1 partition ids in ascending order,
// the deterministic task list of the join phase's spilled pass.
func (sp *JoinSpill) spilledList() []int {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]int, 0, len(sp.spilled))
	for p1 := range sp.spilled {
		out = append(out, p1)
	}
	// Insertion sort: the list is small (≤ 2^Pass1Bits).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runName names a spill run file: join id, partition, side, and for
// recursion sub-runs the depth and sub index.
func (sp *JoinSpill) runName(p1 int, side string, depth, sub int) string {
	if depth == 0 {
		return fmt.Sprintf("j%d-p%03d.%s", sp.joinID, p1, side)
	}
	return fmt.Sprintf("j%d-p%03d-d%d-%02d.%s", sp.joinID, p1, depth, sub, side)
}

// file returns the run file for (p1, side) at recursion depth 0, creating
// it on first use.
func (sp *JoinSpill) file(p1 int, side string) (*spill.File, error) {
	return sp.dir.File(sp.runName(p1, side, 0, 0))
}

// lookup returns the depth-0 run file if it exists (nil when that side of
// the partition never spilled any rows).
func (sp *JoinSpill) lookup(p1 int, side string) *spill.File {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if !sp.spilled[p1] {
		return nil
	}
	f, _ := sp.dir.File(sp.runName(p1, side, 0, 0))
	return f
}

// recordSpill accounts one eviction of a partition's pages to disk and
// marks the partition spilled. The first spill of each partition id is
// noted in the governor's degradation log.
func (sp *JoinSpill) recordSpill(p1 int, side string, rows, bytes int64) {
	sp.meter.AddSpillWrite(bytes)
	sp.mu.Lock()
	first := !sp.spilled[p1]
	sp.spilled[p1] = true
	if first {
		sp.stats.Partitions++
	}
	sp.rows[sideKey(p1, side)] += rows
	sp.stats.SpilledBytes += bytes
	sp.mu.Unlock()
	if first {
		sp.gov.Note("join %d: partition %d spilled to disk (%s side first, %d B)",
			sp.joinID, p1, side, bytes)
	}
}

// spilledRows returns how many rows of the given side spilled for p1.
func (sp *JoinSpill) spilledRows(p1 int, side string) int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.rows[sideKey(p1, side)]
}

// spilledRowsTotal returns all spilled rows of one side across partitions.
func (sp *JoinSpill) spilledRowsTotal(side string) int64 {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var n int64
	for p1 := range sp.spilled {
		n += sp.rows[sideKey(p1, side)]
	}
	return n
}

func sideKey(p1 int, side string) string { return fmt.Sprintf("%d/%s", p1, side) }

// grantReload accounts a reload working set and tracks the peak-overshoot
// bound reported in SpillStats.
func (sp *JoinSpill) grantReload(n int64) {
	sp.gov.MustGrant(n)
	sp.mu.Lock()
	if n > sp.stats.MaxReloadBytes {
		sp.stats.MaxReloadBytes = n
	}
	sp.mu.Unlock()
}

// spillSrc is one side of a spilled partition pair: an on-disk run (nil
// when that side never spilled) plus any resident final sub-partitions
// (non-empty when only the other side of the pair spilled).
type spillSrc struct {
	file     *spill.File
	resident [][]byte
	rowSize  int
	// copyFrames makes each hand out a private copy of every reloaded
	// frame. Required on a probe side whose layout carries string columns:
	// probe rows stream straight into the partition join, which emits
	// string columns as zero-copy slices into the chunk — and the spill
	// reader reuses its frame buffer, so an aliased string would be
	// overwritten by the next frame. Numeric columns are decoded by value
	// and build sides are always copied into a contiguous buffer first, so
	// neither needs this.
	copyFrames bool
}

// bytes returns the side's total payload bytes.
func (s *spillSrc) bytes() int64 {
	var n int64
	if s.file != nil {
		n = s.file.Bytes()
	}
	for _, part := range s.resident {
		n += int64(len(part))
	}
	return n
}

// rows returns the side's total row count.
func (s *spillSrc) rows() int64 {
	var n int64
	if s.file != nil {
		n = s.file.Rows()
	}
	for _, part := range s.resident {
		n += int64(len(part) / s.rowSize)
	}
	return n
}

// maxChunk returns the largest contiguous chunk each will yield.
func (s *spillSrc) maxChunk() int64 {
	var n int64
	if s.file != nil {
		n = int64(s.file.MaxFrame())
	}
	for _, part := range s.resident {
		if int64(len(part)) > n {
			n = int64(len(part))
		}
	}
	return n
}

// each yields the side's rows in chunks of whole packed rows: resident
// sub-partitions first, then spill frames. A read failure (short read,
// checksum mismatch) is returned verbatim — it already names the file and
// frame. Iteration stops early when the query context is cancelled.
func (s *spillSrc) each(ctx *exec.Ctx, fn func(chunk []byte)) error {
	for _, part := range s.resident {
		if ctx.Err() != nil {
			return nil
		}
		if len(part) > 0 {
			fn(part)
		}
	}
	if s.file == nil {
		return nil
	}
	rd := s.file.NewReader()
	for {
		if ctx.Err() != nil {
			return nil
		}
		chunk, err := rd.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if len(chunk) > 0 {
			if s.copyFrames {
				chunk = append(make([]byte, 0, len(chunk)), chunk...)
			}
			fn(chunk)
		}
	}
}

// residentSubParts gathers the resident final sub-partitions of pass-1
// partition p1 (pids congruent to p1 modulo the pass-1 fan-out).
func residentSubParts(out *Partitions, p1 int) [][]byte {
	var parts [][]byte
	f1 := 1 << out.B1
	for pid := p1; pid < out.NumParts(); pid += f1 {
		if part := out.Part(pid); len(part) > 0 {
			parts = append(parts, part)
		}
	}
	return parts
}

// rhBytes estimates the robin-hood table footprint for n build rows: the
// entry array is sized to the next power of two above n/0.7, 16 B each.
func rhBytes(n int64) int64 {
	need := int64(8)
	for need*7 < n*10 {
		need <<= 1
	}
	return need * 16
}

// emitSpilled joins one spilled pass-1 partition pair. Spilled pairs are
// processed one at a time (reloadMu) so the governor's peak stays within
// the budget plus a single reload working set.
func (s *PartitionJoinSource) emitSpilled(ctx *exec.Ctx, p1 int, out exec.Operator) {
	j := s.J
	sp := j.Spill
	sp.reloadMu.Lock()
	defer sp.reloadMu.Unlock()
	if ctx.Err() != nil {
		return
	}
	bsrc := &spillSrc{
		file:     sp.lookup(p1, j.BuildSink.Side),
		resident: residentSubParts(j.BuildSink.Out, p1),
		rowSize:  j.BuildSink.Layout.Size,
	}
	psrc := &spillSrc{
		file:       sp.lookup(p1, j.ProbeSink.Side),
		resident:   residentSubParts(j.ProbeSink.Out, p1),
		rowSize:    j.ProbeSink.Layout.Size,
		copyFrames: j.ProbeSink.Layout.HasStringCols(),
	}
	s.joinSpilledPair(ctx, out, p1, 0, bsrc, psrc)
}

// joinSpilledPair processes one (sub-)partition pair: reload-and-join when
// the build side fits the budget, recursive re-partition when it alone
// exceeds it (skew overflow), capped at spillMaxDepth.
func (s *PartitionJoinSource) joinSpilledPair(ctx *exec.Ctx, out exec.Operator, p1, depth int, bsrc, psrc *spillSrc) {
	if ctx.Err() != nil {
		return
	}
	faultinject.Hit(ReloadSite)
	j := s.J
	sp := j.Spill
	bBytes := bsrc.bytes()
	if bBytes == 0 && psrc.bytes() == 0 {
		return
	}
	working := bBytes + rhBytes(bsrc.rows()) + psrc.maxChunk()
	if depth < spillMaxDepth && sp.gov.Budgeted() && working > sp.gov.Budget() {
		s.recurseSpilled(ctx, out, p1, depth, bsrc, psrc)
		return
	}
	if depth >= spillMaxDepth && sp.gov.Budgeted() && working > sp.gov.Budget() {
		sp.gov.Note("join %d: partition %d depth %d still exceeds budget (%d B); joining in memory (skewed key)",
			sp.joinID, p1, depth, working)
	}

	sp.grantReload(working)
	defer sp.gov.Release(working)

	// Reload the build side into one contiguous buffer.
	buf := make([]byte, 0, bBytes)
	if err := bsrc.each(ctx, func(chunk []byte) {
		buf = append(buf, chunk...)
	}); err != nil {
		panic(fmt.Errorf("core: reload of join %d partition %d build side: %w", sp.joinID, p1, err))
	}
	if ctx.Err() != nil {
		return
	}
	sp.meter.AddSpillRead(fileBytes(bsrc.file))
	sp.mu.Lock()
	sp.stats.ReloadedBytes += bBytes
	sp.mu.Unlock()

	// Stream the probe side through the partition join one chunk at a
	// time; probe frames never need to be resident together.
	var probeErr error
	s.joinPartition(ctx, out, buf, func(yield func(ppart []byte)) {
		probeErr = psrc.each(ctx, yield)
	})
	if probeErr != nil {
		panic(fmt.Errorf("core: reload of join %d partition %d probe side: %w", sp.joinID, p1, probeErr))
	}
	sp.meter.AddSpillRead(fileBytes(psrc.file))
	sp.mu.Lock()
	sp.stats.ReloadedBytes += psrc.bytes()
	sp.mu.Unlock()
	if depth == 0 {
		sp.gov.Note("join %d: partition %d reloaded from spill and joined (%d B build, %d B probe)",
			sp.joinID, p1, bBytes, psrc.bytes())
	}
}

func fileBytes(f *spill.File) int64 {
	if f == nil {
		return 0
	}
	return f.Bytes()
}

// recurseSpilled re-partitions both sides of an over-budget spilled
// partition on the next spillSubBits hash bits, writing sub-runs to disk,
// then joins each sub-pair under the budget. The parent runs are deleted
// once scattered.
func (s *PartitionJoinSource) recurseSpilled(ctx *exec.Ctx, out exec.Operator, p1, depth int, bsrc, psrc *spillSrc) {
	j := s.J
	sp := j.Spill
	sp.mu.Lock()
	sp.stats.Recursed++
	sp.mu.Unlock()
	sp.gov.Note("join %d: partition %d build side (%d B) exceeds budget alone; re-partitioning at depth %d",
		sp.joinID, p1, bsrc.bytes(), depth+1)

	nsub := 1 << spillSubBits
	shift := uint(j.Cfg.Pass1Bits + depth*spillSubBits)
	scatter := func(src *spillSrc, side string, layout *Layout) []*spill.File {
		files := make([]*spill.File, nsub)
		stage := make([][]byte, nsub)
		stageCap := spillStageBytes / layout.Size * layout.Size
		if stageCap < layout.Size {
			stageCap = layout.Size
		}
		sp.grantReload(int64(nsub * stageCap))
		defer sp.gov.Release(int64(nsub * stageCap))
		flush := func(sub int) {
			if len(stage[sub]) == 0 {
				return
			}
			f := files[sub]
			if f == nil {
				var err error
				f, err = sp.dir.File(sp.runName(p1, side, depth+1, sub))
				if err != nil {
					panic(fmt.Errorf("core: re-partition of join %d partition %d: %w", sp.joinID, p1, err))
				}
				files[sub] = f
			}
			if err := f.Append(stage[sub], len(stage[sub])/layout.Size); err != nil {
				panic(fmt.Errorf("core: re-partition of join %d partition %d: %w", sp.joinID, p1, err))
			}
			sp.meter.AddSpillWrite(int64(len(stage[sub])))
			stage[sub] = stage[sub][:0]
		}
		err := src.each(ctx, func(chunk []byte) {
			for off := 0; off < len(chunk); off += layout.Size {
				row := chunk[off : off+layout.Size]
				sub := int(layout.Hash(row)>>shift) & (nsub - 1)
				if stage[sub] == nil {
					stage[sub] = make([]byte, 0, stageCap)
				}
				stage[sub] = append(stage[sub], row...)
				if len(stage[sub]) >= stageCap {
					flush(sub)
				}
			}
		})
		if err != nil {
			panic(fmt.Errorf("core: re-partition of join %d partition %d (%s): %w", sp.joinID, p1, side, err))
		}
		for sub := 0; sub < nsub; sub++ {
			flush(sub)
		}
		return files
	}

	bsub := scatter(bsrc, j.BuildSink.Side, j.BuildSink.Layout)
	if ctx.Err() != nil {
		return
	}
	psub := scatter(psrc, j.ProbeSink.Side, j.ProbeSink.Layout)
	// The parent runs are fully scattered; free the disk space before
	// descending (resident slices, if any, were scattered too and stay
	// owned by Partitions).
	if bsrc.file != nil {
		_ = bsrc.file.Remove()
	}
	if psrc.file != nil {
		_ = psrc.file.Remove()
	}
	for sub := 0; sub < nsub; sub++ {
		if ctx.Err() != nil {
			return
		}
		s.joinSpilledPair(ctx, out, p1, depth+1,
			&spillSrc{file: bsub[sub], rowSize: j.BuildSink.Layout.Size},
			&spillSrc{file: psub[sub], rowSize: j.ProbeSink.Layout.Size,
				copyFrames: j.ProbeSink.Layout.HasStringCols()})
	}
}
