// Package core implements the three joins under test (Section 5.1.1):
//
//   - RJ: the radix-partitioned join with two-pass morsel-driven
//     partitioning, software write-combine buffers, worker-local output,
//     per-partition robin-hood hash tables, and work stealing.
//   - BRJ: the radix join with the register-blocked Bloom-filter semi-join
//     reducer built during the build side's second partitioning pass and
//     probed in the pipeline before the probe side is partitioned.
//   - BHJ: the buffered non-partitioned hash join with a global chaining
//     hash table, tagged-pointer semi-join reduction, and relaxed-operator-
//     fusion batch staging.
//
// All three operate on the same packed row representation and plug into the
// pipeline engine of internal/exec, so a query plan can swap one for another
// exactly as the paper's system does.
package core

// Config tunes the radix joins. The defaults mirror the paper's setup
// scaled to the partition-fits-in-cache invariant.
type Config struct {
	// CacheBudget is the target size of one build-side partition: the
	// total radix fan-out is chosen so a partition's hash table fits in
	// this many bytes (Section 3: "each partition is sized so that the
	// hash table fits in the cache").
	CacheBudget int

	// Pass1Bits is the fan-out of the first partitioning pass in bits.
	// It caps the number of streams written concurrently per worker at
	// 2^Pass1Bits, the TLB-entry limit radix partitioning exists to
	// respect (Boncz et al.).
	Pass1Bits int

	// MaxPass2Bits caps the second pass fan-out for the same reason.
	MaxPass2Bits int

	// MinTotalBits floors the total fan-out; the paper's RJ always
	// partitions, which is exactly why it loses on cache-resident builds.
	MinTotalBits int

	// SWWCBBytes is the size of one software write-combine buffer. Must
	// be a multiple of 64 (a cache line); tuples wider than the buffer
	// are written directly, matching the paper's "no buffers for tuples
	// larger than 64 B" rule scaled to the buffer size.
	SWWCBBytes int

	// PageBytes is the initial size of a partition page; pages grow
	// geometrically as in Section 4.5 ("whenever a page is full, a
	// larger page is prepended").
	PageBytes int

	// Bloom enables the semi-join reducer (turns RJ into BRJ).
	Bloom bool

	// AdaptiveBloom samples the filter pass rate and disables the filter
	// when almost all tuples pass (Section 5.4.1).
	AdaptiveBloom bool

	// BloomSample is the number of probe tuples sampled per worker
	// before the adaptive decision.
	BloomSample int

	// BloomDisableRate is the pass-rate threshold above which the
	// adaptive filter switches off.
	BloomDisableRate float64

	// ProbeStage is the software prefetch-distance of the join-phase
	// probe loop: probe rows are hashed in groups of this size and each
	// group's first hash-table entry is loaded before any row's probe
	// walk starts, so the random cache misses of a group overlap instead
	// of serializing (group prefetching in the AMAC/NOCAP sense — Go has
	// no prefetch intrinsic, so the staged loads themselves provide the
	// memory-level parallelism). 0 picks the default; 1 disables staging.
	ProbeStage int
}

// probeStageMax bounds the staging group so its buffers stay register/L1
// resident (3 small arrays per worker).
const probeStageMax = 64

// probeStage clamps the configured probe staging distance.
func (c *Config) probeStage() int {
	s := c.ProbeStage
	if s <= 0 {
		s = 16
	}
	if s > probeStageMax {
		s = probeStageMax
	}
	return s
}

// DefaultConfig returns the tuning used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		CacheBudget:      512 << 10,
		Pass1Bits:        6,
		MaxPass2Bits:     8,
		MinTotalBits:     2,
		SWWCBBytes:       256,
		PageBytes:        64 << 10,
		Bloom:            false,
		AdaptiveBloom:    false,
		BloomSample:      4096,
		BloomDisableRate: 0.9,
	}
}

// JoinKind enumerates the equi-join variants every implementation supports
// (Section 1: "including outer-, mark-, semi-, and anti-joins").
type JoinKind uint8

const (
	// Inner emits the concatenation of matching build and probe tuples.
	Inner JoinKind = iota
	// Semi emits each probe tuple that has at least one build match.
	Semi
	// Anti emits each probe tuple that has no build match.
	Anti
	// Mark emits every probe tuple extended with a 0/1 match flag.
	Mark
	// LeftOuter emits Inner plus each unmatched build tuple padded with
	// zero probe columns.
	LeftOuter
	// RightOuter emits Inner plus each unmatched probe tuple padded with
	// zero build columns.
	RightOuter
	// LeftSemi emits each build tuple with at least one probe match,
	// exactly once (EXISTS rewrites with the small side as build, e.g.
	// TPC-H Q4 and Q21 join 4).
	LeftSemi
	// LeftAnti emits each build tuple with no probe match (NOT EXISTS
	// rewrites, e.g. Q21 join 5 and Q22's anti join).
	LeftAnti
)

// String implements fmt.Stringer.
func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "inner"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	case Mark:
		return "mark"
	case LeftOuter:
		return "leftouter"
	case RightOuter:
		return "rightouter"
	case LeftSemi:
		return "leftsemi"
	case LeftAnti:
		return "leftanti"
	}
	return "join?"
}
