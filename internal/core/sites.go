package core

import "partitionjoin/internal/faultinject"

// The join engine's fault-injection sites, declared with the registry so a
// test arming a misspelled name fails instead of silently never firing.
var _ = faultinject.Register(BuildSite, Pass1Site, Pass2Site, JoinEmitSite, ReloadSite)
