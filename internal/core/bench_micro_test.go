package core

import (
	"encoding/binary"
	"testing"

	"partitionjoin/internal/hashx"
)

// --- probe microbenchmark: the radix join's staged robin-hood probe ---

// probeBuildN/probeN size the probe microbenchmark: a table comfortably
// larger than L2 so the staged directory loads have misses to overlap.
const (
	probeBuildN = 1 << 16
	probeN      = 1 << 20
)

// probeTable builds an rhTable over probeBuildN distinct keys plus the
// probe-side hash stream (every probe hits exactly one build key).
func probeTable() (*rhTable, []uint64) {
	t := &rhTable{}
	t.reset(probeBuildN)
	for i := 0; i < probeBuildN; i++ {
		t.insert(hashx.I64(int64(i)), int32(i))
	}
	hashes := make([]uint64, probeN)
	for i := range hashes {
		hashes[i] = hashx.I64(int64((i * 7) % probeBuildN))
	}
	return t, hashes
}

// probeStaged mirrors joinPartition's group-staged probe loop: hash a group
// of rows and load each one's first table entry before walking any probe
// chain, so the random entry-array misses overlap instead of serializing.
// stage = 1 degenerates to the unstaged one-at-a-time loop.
func probeStaged(t *rhTable, hashes []uint64, stage int) int {
	entries := t.entries[:t.mask+1]
	mask := t.mask
	matches := 0
	var stSlot [probeStageMax]uint32
	var stEnt [probeStageMax]rhEntry
	for base := 0; base < len(hashes); base += stage {
		g := stage
		if base+g > len(hashes) {
			g = len(hashes) - base
		}
		for k := 0; k < g; k++ {
			slot := rhSlot(hashes[base+k]) & mask
			stSlot[k] = slot
			stEnt[k] = entries[slot]
		}
		for k := 0; k < g; k++ {
			h := hashes[base+k]
			slot := stSlot[k]
			e := stEnt[k]
			dist := uint32(0)
			for e.idx >= 0 {
				if occ := (slot - rhSlot(e.hash)) & mask; occ < dist {
					break
				}
				if e.hash == h {
					matches++
				}
				slot = (slot + 1) & mask
				dist++
				e = entries[slot]
			}
		}
	}
	return matches
}

func benchProbe(b *testing.B, stage int) {
	t, hashes := probeTable()
	b.ReportAllocs()
	b.SetBytes(probeN * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := probeStaged(t, hashes, stage); got != probeN {
			b.Fatalf("matches = %d, want %d", got, probeN)
		}
	}
}

// BenchmarkProbeRH measures the staged robin-hood probe at the default
// prefetch distance (Config.ProbeStage zero value).
func BenchmarkProbeRH(b *testing.B) { benchProbe(b, (&Config{}).probeStage()) }

// BenchmarkProbeRHUnstaged is the one-row-at-a-time baseline the staging
// is measured against.
func BenchmarkProbeRHUnstaged(b *testing.B) { benchProbe(b, 1) }

// TestProbeStagedAllocs pins the staged probe loop at zero allocations per
// run: the stage arrays must stay on the stack.
func TestProbeStagedAllocs(t *testing.T) {
	tbl, hashes := probeTable()
	sink := 0
	if n := testing.AllocsPerRun(5, func() {
		sink += probeStaged(tbl, hashes[:1<<14], 16)
	}); n > 0 {
		t.Fatalf("probeStaged allocates %.1f times per run, want 0", n)
	}
	_ = sink
}

// --- scatter microbenchmark: the SWWCB-buffered partitioning pass ---

const (
	scatterRows    = 1 << 19
	scatterFanout  = 512
	scatterRowSize = 16
)

// scatterOnce runs one buffered scatter of scatterRows packed rows into
// fanout partitions — the shape of the radix sink's first pass with the
// AllI64 fast path — flushing full write-combine buffers into slabs.
func scatterOnce(sw *swwcbSet, hashes []uint64, slabs [][]byte) {
	flush := func(p int, data []byte) { slabs[p] = append(slabs[p], data...) }
	for i, h := range hashes {
		p := int(h & (scatterFanout - 1))
		dst := sw.tryslot(p)
		if dst == nil {
			dst = sw.flushSlot(p, flush)
		}
		binary.LittleEndian.PutUint64(dst, h)
		binary.LittleEndian.PutUint64(dst[8:], uint64(i))
	}
	sw.drain(flush)
}

func scatterFixture() (*swwcbSet, []uint64, [][]byte) {
	hashes := make([]uint64, scatterRows)
	for i := range hashes {
		hashes[i] = hashx.I64(int64(i))
	}
	sw := newSWWCBSet(scatterFanout, 2048, scatterRowSize)
	slabs := make([][]byte, scatterFanout)
	for p := range slabs {
		// 2x the uniform share so a skewed hash never reallocates.
		slabs[p] = make([]byte, 0, scatterRows/scatterFanout*scatterRowSize*2)
	}
	return sw, hashes, slabs
}

// BenchmarkScatterSWWCB measures the write-combine-buffered scatter with
// the inlined tryslot fast path.
func BenchmarkScatterSWWCB(b *testing.B) {
	sw, hashes, slabs := scatterFixture()
	b.ReportAllocs()
	b.SetBytes(scatterRows * scatterRowSize)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for p := range slabs {
			slabs[p] = slabs[p][:0]
		}
		scatterOnce(sw, hashes, slabs)
	}
	b.StopTimer()
	var rows int
	for p := range slabs {
		rows += len(slabs[p]) / scatterRowSize
	}
	if rows != scatterRows {
		b.Fatalf("scattered %d rows, want %d", rows, scatterRows)
	}
}

// TestScatterAllocs pins the steady-state scatter loop at zero allocations
// per run: buffers and slabs are preallocated, and the tryslot/flushSlot
// split must not force the flush closure or row slices to escape per row.
func TestScatterAllocs(t *testing.T) {
	sw, hashes, slabs := scatterFixture()
	scatterOnce(sw, hashes, slabs) // warm slab capacities
	if n := testing.AllocsPerRun(5, func() {
		for p := range slabs {
			slabs[p] = slabs[p][:0]
		}
		scatterOnce(sw, hashes, slabs)
	}); n > 0 {
		t.Fatalf("scatterOnce allocates %.1f times per run, want 0", n)
	}
}
