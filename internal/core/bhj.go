package core

import (
	"sync/atomic"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/storage"
)

// BuildSite is the fault-injection site visited once per batch consumed by
// the BHJ build sink.
const BuildSite = "core.bhj.build"

// HashJoin is the buffered non-partitioned hash join (BHJ, Section 4.3): a
// global chaining hash table over the materialized build side, probed
// in-pipeline so the probe side is never written out (Figure 4). The
// directory words carry a 16-bit Bloom tag next to the 48-bit chain head —
// the tagged-pointer semi-join reducer of Leis et al. — so most probe
// misses cost a single load. Probing happens batch-at-a-time (relaxed
// operator fusion): the staged hash vector lets the CPU overlap the cache
// misses of independent lookups, the software-prefetching analog available
// without intrinsics.
type HashJoin struct {
	Kind   JoinKind
	Layout *Layout // build row layout

	// Build-pipeline wiring: batch vector indices.
	BuildCols    []int
	BuildKeyCols []int
	BuildHashCol int

	// Probe-pipeline wiring: batch vector indices.
	ProbeKeyCols []int
	ProbeHashCol int
	ProbeOut     []int

	// BuildOut are layout column indices emitted into the result.
	BuildOut []int

	// Residual, when non-nil, must also hold for a key-equal pair to
	// match; it sees the packed build row and the probe batch row.
	Residual func(brow []byte, b *exec.Batch, i int) bool

	Meter *meter.Meter

	// Gov is the query's memory governor; build arenas, the directory,
	// and the entry array are accounted against it. Nil means ungoverned.
	Gov *govern.Governor

	// Stage is the probe staging group size (Config.ProbeStage); 0 picks
	// the default. Directory words for a group of probe hashes are loaded
	// before any row's chain walk so their cache misses overlap.
	Stage int

	// StatProbeRows and StatMatches count probe tuples and key matches
	// for the per-join analysis (Figures 1, 2 and 13).
	StatProbeRows atomic.Int64
	StatMatches   atomic.Int64

	dir     []uint64
	entries []bhjEntry
	rows    []byte
	n       int
	matched []uint32 // atomic bitset, LeftOuter only
}

type bhjEntry struct {
	hash uint64
	next int32
}

const (
	bhjIdxMask = (1 << 48) - 1
	bhjTagBits = 16
)

// tagBit derives the directory tag from high hash bits, disjoint from the
// directory index bits (low) and the Bloom/radix bits.
func tagBit(h uint64) uint64 { return 1 << (48 + ((h >> 40) & 15)) }

// BuildSink returns the pipeline breaker that materializes the build side.
func (j *HashJoin) BuildSink() *HashBuildSink { return &HashBuildSink{J: j} }

// HashBuildSink materializes build tuples into worker-local arenas and
// assembles the global table at Close.
type HashBuildSink struct {
	J      *HashJoin
	arenas [][]byte
}

// Open implements exec.Sink.
func (s *HashBuildSink) Open(workers int) { s.arenas = make([][]byte, workers) }

// Consume implements exec.Sink.
func (s *HashBuildSink) Consume(ctx *exec.Ctx, b *exec.Batch) {
	j := s.J
	size := j.Layout.Size
	a := s.arenas[ctx.Worker]
	var hcol []int64
	if j.BuildHashCol >= 0 {
		hcol = b.Vecs[j.BuildHashCol].I64
	}
	faultinject.Hit(BuildSite)
	for i := 0; i < b.N; i++ {
		var h uint64
		if hcol != nil {
			h = uint64(hcol[i])
		} else {
			h = HashKeys(b, j.BuildKeyCols, i)
		}
		off := len(a)
		if cap(a) < off+size {
			newCap := maxInt(2*cap(a), 64*size)
			j.Gov.MustGrant(int64(newCap - cap(a)))
			grown := make([]byte, off, newCap)
			copy(grown, a)
			a = grown
		}
		a = a[:off+size]
		j.Layout.PackRow(a[off:], h, b, j.BuildCols, i)
	}
	s.arenas[ctx.Worker] = a
	j.Meter.AddWrite(int64(b.N) * int64(size))
}

// Close implements exec.Sink: concatenates the arenas and builds the
// chaining directory in parallel with CAS inserts; each insert also ORs its
// Bloom tag into the directory word.
func (s *HashBuildSink) Close() {
	j := s.J
	size := j.Layout.Size
	total := 0
	offs := make([]int, len(s.arenas)+1)
	for i, a := range s.arenas {
		offs[i] = total
		total += len(a)
	}
	offs[len(s.arenas)] = total
	j.Gov.MustGrant(int64(total))
	j.rows = make([]byte, total)
	parallelFor(len(s.arenas), len(s.arenas), func(i int) {
		copy(j.rows[offs[i]:], s.arenas[i])
	})
	// The worker arenas die here; return their capacity to the governor.
	for _, a := range s.arenas {
		j.Gov.Release(int64(cap(a)))
	}
	j.n = total / size
	j.Meter.AddWrite(int64(total))

	dirSize := 8
	for dirSize < 2*j.n {
		dirSize <<= 1
	}
	j.Gov.MustGrant(int64(dirSize)*8 + int64(j.n)*16)
	j.dir = make([]uint64, dirSize)
	j.entries = make([]bhjEntry, j.n)
	mask := uint64(dirSize - 1)
	chunks := (j.n + storage.MorselSize - 1) / storage.MorselSize
	parallelFor(chunks, maxInt(len(s.arenas), 1), func(c int) {
		start := c * storage.MorselSize
		end := minInt(start+storage.MorselSize, j.n)
		for i := start; i < end; i++ {
			h := j.Layout.Hash(j.rows[i*size:])
			j.entries[i].hash = h
			slot := &j.dir[h&mask]
			for {
				old := atomic.LoadUint64(slot)
				j.entries[i].next = int32(old&bhjIdxMask) - 1
				word := (old &^ bhjIdxMask) | tagBit(h) | uint64(i+1)
				if atomic.CompareAndSwapUint64(slot, old, word) {
					break
				}
			}
		}
	})
	j.Meter.AddWrite(int64(dirSize)*8 + int64(j.n)*16)
	if j.Kind.needsMatchedFlags() {
		j.matched = make([]uint32, (j.n+31)/32)
	}
	s.arenas = nil
}

// NumBuildRows reports the build-side cardinality after the build closed.
func (j *HashJoin) NumBuildRows() int { return j.n }

// ProbeOp returns a per-worker probe operator feeding next.
func (j *HashJoin) ProbeOp(next exec.Operator) *HashProbeOp {
	return &HashProbeOp{J: j, Next: next}
}

// HashProbeOp probes the global table batch-at-a-time within the probe
// pipeline; the probe side is never materialized (operator fusion with ROF
// staging).
type HashProbeOp struct {
	J    *HashJoin
	Next exec.Operator
	out  *exec.Batch
}

// initOut lazily shapes the output batch: build columns from the layout,
// probe columns copied from the incoming batch's shape.
func (o *HashProbeOp) initOut(b *exec.Batch) {
	j := o.J
	var ts []storage.Type
	var widths []int
	withBuild := j.Kind == Inner || j.Kind == LeftOuter || j.Kind == RightOuter
	if withBuild {
		for _, c := range j.BuildOut {
			ts = append(ts, j.Layout.Types[c])
			widths = append(widths, j.Layout.Widths[c])
		}
	}
	for _, c := range j.ProbeOut {
		ts = append(ts, b.Vecs[c].T)
		widths = append(widths, b.Vecs[c].Width)
	}
	if j.Kind == Mark {
		ts = append(ts, storage.Bool)
		widths = append(widths, 8)
	}
	o.out = exec.NewBatch(ts, nil)
	for i := range o.out.Vecs {
		o.out.Vecs[i].Width = widths[i]
	}
}

// appendProbe copies probe row i's output columns into the result batch at
// vector offset v0.
func (o *HashProbeOp) appendProbe(b *exec.Batch, i, v0 int) {
	for k, c := range o.J.ProbeOut {
		src := &b.Vecs[c]
		dst := &o.out.Vecs[v0+k]
		switch src.T {
		case storage.Float64:
			dst.F64 = append(dst.F64, src.F64[i])
		case storage.String:
			dst.Str = append(dst.Str, src.Str[i])
		default:
			dst.I64 = append(dst.I64, src.I64[i])
		}
	}
}

// appendZeroProbe pads probe columns for unmatched build rows (LeftOuter
// sweep uses the same shape).
func appendZeroProbe(out *exec.Batch, types []storage.Type, v0 int) {
	for k, t := range types {
		dst := &out.Vecs[v0+k]
		switch t {
		case storage.Float64:
			dst.F64 = append(dst.F64, 0)
		case storage.String:
			dst.Str = append(dst.Str, nil)
		default:
			dst.I64 = append(dst.I64, 0)
		}
	}
}

// Process implements exec.Operator.
func (o *HashProbeOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	j := o.J
	if o.out == nil {
		o.initOut(b)
	}
	withBuild := j.Kind.HasBuildCols() && j.Kind != LeftSemi && j.Kind != LeftAnti
	nbuild := 0
	if withBuild {
		nbuild = len(j.BuildOut)
	}
	size := j.Layout.Size
	mask := uint64(len(j.dir) - 1)
	var hcol []int64
	if j.ProbeHashCol >= 0 {
		hcol = b.Vecs[j.ProbeHashCol].I64
	}
	flush := func() {
		if o.out.N > 0 {
			o.Next.Process(ctx, o.out)
			o.out.Reset()
		}
	}
	emit := func(brow []byte, i int, markHit int) {
		v := 0
		if withBuild {
			for _, c := range j.BuildOut {
				if brow != nil {
					j.Layout.AppendCol(&o.out.Vecs[v], brow, c)
				} else {
					j.Layout.AppendZeroCol(&o.out.Vecs[v], c)
				}
				v++
			}
		}
		o.appendProbe(b, i, nbuild)
		if j.Kind == Mark {
			mv := &o.out.Vecs[nbuild+len(j.ProbeOut)]
			mv.I64 = append(mv.I64, int64(markHit))
		}
		o.out.N++
		if o.out.N >= exec.BatchSize {
			flush()
		}
	}
	j.StatProbeRows.Add(int64(b.N))
	var matches int64
	// Stage the directory words for a group of rows before walking any
	// chains: the group's loads are independent, so their cache misses
	// overlap (Config.ProbeStage, same scheme as the radix join phase).
	stage := j.Stage
	if stage <= 0 {
		stage = 16
	}
	if stage > probeStageMax {
		stage = probeStageMax
	}
	var stH [probeStageMax]uint64
	var stWord [probeStageMax]uint64
	for base := 0; base < b.N; base += stage {
		g := stage
		if base+g > b.N {
			g = b.N - base
		}
		if hcol != nil {
			for k := 0; k < g; k++ {
				h := uint64(hcol[base+k])
				stH[k] = h
				stWord[k] = j.dir[h&mask]
			}
		} else {
			for k := 0; k < g; k++ {
				h := HashKeys(b, j.ProbeKeyCols, base+k)
				stH[k] = h
				stWord[k] = j.dir[h&mask]
			}
		}
		for k := 0; k < g; k++ {
			i := base + k
			h := stH[k]
			word := stWord[k]
			hit := false
			if word&tagBit(h) != 0 {
				idx := int32(word&bhjIdxMask) - 1
				for idx >= 0 {
					e := &j.entries[idx]
					if e.hash == h {
						brow := j.rows[int(idx)*size : (int(idx)+1)*size]
						if j.Layout.KeyEqualBatch(brow, b, j.ProbeKeyCols, i) &&
							(j.Residual == nil || j.Residual(brow, b, i)) {
							hit = true
							matches++
							switch j.Kind {
							case Inner, RightOuter:
								emit(brow, i, 1)
							case LeftOuter:
								markBit(j.matched, idx)
								emit(brow, i, 1)
							case LeftSemi, LeftAnti:
								markBit(j.matched, idx)
							}
						}
					}
					idx = e.next
				}
			}
			switch j.Kind {
			case Semi:
				if hit {
					emit(nil, i, 1)
				}
			case Anti:
				if !hit {
					emit(nil, i, 0)
				}
			case Mark:
				emit(nil, i, boolToInt(hit))
			case RightOuter:
				if !hit {
					emit(nil, i, 0)
				}
			}
		}
	}
	j.StatMatches.Add(matches)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Flush implements exec.Operator.
func (o *HashProbeOp) Flush(ctx *exec.Ctx) {
	if o.out != nil && o.out.N > 0 {
		o.Next.Process(ctx, o.out)
		o.out.Reset()
	}
	o.Next.Flush(ctx)
}

// markBit sets bit idx of an atomic bitset.
func markBit(bits []uint32, idx int32) {
	word := &bits[idx/32]
	mask := uint32(1) << (idx % 32)
	for {
		old := atomic.LoadUint32(word)
		if old&mask != 0 || atomic.CompareAndSwapUint32(word, old, old|mask) {
			return
		}
	}
}

// UnmatchedBuildSource emits the build rows of a BHJ selected by their
// match flag, once the probe phase completed: unmatched rows for LeftOuter
// (padded with zero probe columns) and LeftAnti, matched rows for LeftSemi
// (WantMatched). The plan runs it as an extra pipeline into the same
// consumer after the probe pipeline closes.
type UnmatchedBuildSource struct {
	J *HashJoin
	// ProbeTypes, when non-nil, pads each row with zero probe columns
	// (LeftOuter); LeftSemi/LeftAnti emit build columns only.
	ProbeTypes  []storage.Type
	WantMatched bool
}

// Tasks implements exec.Source.
func (s *UnmatchedBuildSource) Tasks() int {
	return (s.J.n + storage.MorselSize - 1) / storage.MorselSize
}

// Emit implements exec.Source.
func (s *UnmatchedBuildSource) Emit(ctx *exec.Ctx, task int, out exec.Operator) {
	j := s.J
	size := j.Layout.Size
	start := task * storage.MorselSize
	end := minInt(start+storage.MorselSize, j.n)
	var ts []storage.Type
	for _, c := range j.BuildOut {
		ts = append(ts, j.Layout.Types[c])
	}
	ts = append(ts, s.ProbeTypes...)
	b := ctx.ScratchBatch(ts, nil)
	b.Reset()
	for i := start; i < end; i++ {
		matched := j.matched[i/32]&(1<<(i%32)) != 0
		if matched != s.WantMatched {
			continue
		}
		row := j.rows[i*size : (i+1)*size]
		for k, c := range j.BuildOut {
			j.Layout.AppendCol(&b.Vecs[k], row, c)
		}
		if s.ProbeTypes != nil {
			appendZeroProbe(b, s.ProbeTypes, len(j.BuildOut))
		}
		b.N++
		if b.N >= exec.BatchSize {
			out.Process(ctx, b)
			b.Reset()
		}
	}
	if b.N > 0 {
		out.Process(ctx, b)
		b.Reset()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
