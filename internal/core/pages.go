package core

import (
	"sync"
	"sync/atomic"
)

// pagedPart is one temporary partition of the first pass: a linked list of
// pages owned by a single worker (Section 4.5: "each temporary partition is
// implemented as a linked list of pages. Whenever a page is full, a larger
// page is prepended"). Pages hold whole packed rows only.
type pagedPart struct {
	pages [][]byte // len = bytes used; cap = allocated
	rows  int64
}

// maxPageBytes caps the geometric page growth.
const maxPageBytes = 4 << 20

// write appends packed rows (len(data) is a multiple of rowSize), splitting
// across page boundaries on row boundaries.
func (p *pagedPart) write(data []byte, rowSize, firstPageBytes int) {
	p.rows += int64(len(data) / rowSize)
	for len(data) > 0 {
		if len(p.pages) == 0 || len(p.last())+rowSize > cap(p.last()) {
			p.grow(rowSize, firstPageBytes)
		}
		pg := p.last()
		space := (cap(pg) - len(pg)) / rowSize * rowSize
		n := len(data)
		if n > space {
			n = space
		}
		p.pages[len(p.pages)-1] = append(pg, data[:n]...)
		data = data[n:]
	}
}

func (p *pagedPart) last() []byte { return p.pages[len(p.pages)-1] }

func (p *pagedPart) grow(rowSize, firstPageBytes int) {
	size := firstPageBytes
	if n := len(p.pages); n > 0 {
		size = cap(p.pages[n-1]) * 2
		if size > maxPageBytes {
			size = maxPageBytes
		}
	}
	if size < rowSize {
		size = rowSize
	}
	// Keep capacity a multiple of the row size so rows never split.
	size = size / rowSize * rowSize
	p.pages = append(p.pages, make([]byte, 0, size))
}

// swwcbSet is a worker-local set of software write-combine buffers, one per
// output partition (Section 3.3). Rows are staged in a buffer and flushed
// in one contiguous write when it fills, reducing the number of distinct
// write streams from the fan-out to one.
type swwcbSet struct {
	buf      []byte
	used     []int32
	capBytes int
	rowSize  int
	fanout   int
}

// newSWWCBSet sizes buffers to bufBytes rounded down to whole rows; if a
// row exceeds bufBytes the set degenerates to one-row buffers, i.e. direct
// writes, matching the paper's unbuffered mode for wide tuples.
func newSWWCBSet(fanout, bufBytes, rowSize int) *swwcbSet {
	capBytes := bufBytes / rowSize * rowSize
	if capBytes < rowSize {
		capBytes = rowSize
	}
	return &swwcbSet{
		buf:      make([]byte, fanout*capBytes),
		used:     make([]int32, fanout),
		capBytes: capBytes,
		rowSize:  rowSize,
		fanout:   fanout,
	}
}

// tryslot returns the staging area for the next row of partition p, or
// nil when the buffer is full and must be flushed first (flushSlot). The
// split keeps the common path free of the flush-closure argument so it
// inlines into the scatter loops; the caller packs the row directly into
// the returned slice.
func (s *swwcbSet) tryslot(p int) []byte {
	u := s.used[p]
	if int(u)+s.rowSize > s.capBytes {
		return nil
	}
	s.used[p] = u + int32(s.rowSize)
	base := p*s.capBytes + int(u)
	return s.buf[base : base+s.rowSize]
}

// flushSlot is tryslot's slow path: flushes partition p's full buffer
// through flush(p, data) and returns a fresh staging area.
func (s *swwcbSet) flushSlot(p int, flush func(p int, data []byte)) []byte {
	base := p * s.capBytes
	flush(p, s.buf[base:base+int(s.used[p])])
	s.used[p] = int32(s.rowSize)
	return s.buf[base : base+s.rowSize]
}

// slot returns the staging area for the next row of partition p, flushing
// when the buffer is full — the fused form for non-critical callers.
func (s *swwcbSet) slot(p int, flush func(p int, data []byte)) []byte {
	if dst := s.tryslot(p); dst != nil {
		return dst
	}
	return s.flushSlot(p, flush)
}

// drain flushes every non-empty buffer.
func (s *swwcbSet) drain(flush func(p int, data []byte)) {
	for p := 0; p < s.fanout; p++ {
		if u := s.used[p]; u > 0 {
			base := p * s.capBytes
			flush(p, s.buf[base:base+int(u)])
			s.used[p] = 0
		}
	}
}

// parallelFor runs fn(task) for tasks [0,n) on up to workers goroutines,
// handing out tasks through an atomic cursor — the same work-stealing
// discipline the morsel driver uses, reused for the partitioning passes
// and the in-sink scans. A panic in any task stops the remaining workers
// and is re-raised on the calling goroutine, so sink-internal parallelism
// stays inside the driver's containment instead of killing the process.
func parallelFor(n, workers int, fn func(task int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			fn(t)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var firstPanic atomic.Pointer[any]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					firstPanic.CompareAndSwap(nil, &r)
				}
			}()
			for firstPanic.Load() == nil {
				t := int(cursor.Add(1)) - 1
				if t >= n {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(*p)
	}
}
