package core

import (
	"encoding/binary"
	"math"

	"partitionjoin/internal/exec"
	"partitionjoin/internal/hashx"
	"partitionjoin/internal/storage"
)

// Layout describes the packed row format a join materializes tuples into:
//
//	[ hash u64 | col0 | col1 | ... | padding ]
//
// Numeric columns occupy their declared width (4 or 8 bytes), strings an
// inline slot of one length byte plus their declared capacity. The row is
// padded to the next power of two when that keeps it within the write-
// combine buffer, exactly the padding trade-off Figure 10 discusses; wider
// rows are padded to 8 bytes and written unbuffered.
type Layout struct {
	Types  []storage.Type
	Widths []int // materialized width per column
	Offs   []int // byte offset per column (after the 8-byte hash)
	// KeyCols are the columns forming the join key, in key order.
	KeyCols []int
	// Size is the padded row size; Buffered reports whether rows go
	// through SWWCBs.
	Size     int
	Buffered bool
	// AllI64 marks layouts whose columns are all 8-byte integer-lane
	// values; packing and unpacking take tight fast paths then.
	AllI64 bool
	// KeyI64 marks single-column 8-byte integer join keys.
	KeyI64 bool
}

// maxBufferedRow is the largest padded row that still uses write-combine
// buffers (Section 5.4.2: "We do not use buffers for tuples larger than
// 64 B").
const maxBufferedRow = 64

// NewLayout builds a layout for the given column shapes and key columns.
func NewLayout(types []storage.Type, widths []int, keyCols []int) *Layout {
	l := &Layout{Types: types, Widths: widths, KeyCols: keyCols}
	off := 8 // hash
	l.Offs = make([]int, len(types))
	for i, w := range widths {
		l.Offs[i] = off
		off += w
	}
	size := (off + 7) &^ 7
	// Pad to the next power of two while that keeps the row buffered.
	p2 := 8
	for p2 < size {
		p2 <<= 1
	}
	if p2 <= maxBufferedRow {
		l.Size = p2
		l.Buffered = true
	} else {
		l.Size = size
		l.Buffered = false
	}
	l.AllI64 = true
	for i, t := range types {
		if t == storage.String || t == storage.Float64 || widths[i] != 8 {
			l.AllI64 = false
			break
		}
	}
	l.KeyI64 = len(keyCols) == 1 && keyCols[0] < len(types) &&
		types[keyCols[0]] != storage.String && types[keyCols[0]] != storage.Float64 &&
		widths[keyCols[0]] == 8
	return l
}

// LayoutFor derives a layout from batch vectors: cols selects the vectors
// to materialize, keyCols indexes into cols.
func LayoutFor(b *exec.Batch, cols []int, keyCols []int) *Layout {
	types := make([]storage.Type, len(cols))
	widths := make([]int, len(cols))
	for i, c := range cols {
		types[i] = b.Vecs[c].T
		widths[i] = b.Vecs[c].Width
	}
	return NewLayout(types, widths, keyCols)
}

// Hash returns the row's stored hash.
func (l *Layout) Hash(row []byte) uint64 {
	return binary.LittleEndian.Uint64(row)
}

// HasStringCols reports whether any materialized column is a string —
// i.e. whether vectors decoded from this layout alias the row buffer
// (AppendCol slices string bytes in place instead of copying).
func (l *Layout) HasStringCols() bool {
	for _, t := range l.Types {
		if t == storage.String {
			return true
		}
	}
	return false
}

// PackRow serializes row i of the selected batch vectors into dst
// (len >= l.Size), including the hash. Padding bytes are left untouched:
// key comparison extracts column values, never raw row bytes.
func (l *Layout) PackRow(dst []byte, h uint64, b *exec.Batch, cols []int, i int) {
	binary.LittleEndian.PutUint64(dst, h)
	for c, src := range cols {
		v := &b.Vecs[src]
		off := l.Offs[c]
		switch {
		case v.T == storage.Float64:
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v.F64[i]))
		case v.T == storage.String:
			s := v.Str[i]
			if len(s) > l.Widths[c]-1 {
				s = s[:l.Widths[c]-1]
			}
			dst[off] = byte(len(s))
			copy(dst[off+1:], s)
		case l.Widths[c] == 4:
			binary.LittleEndian.PutUint32(dst[off:], uint32(v.I64[i]))
		default:
			binary.LittleEndian.PutUint64(dst[off:], uint64(v.I64[i]))
		}
	}
}

// AppendCol appends the value of column c in row to the vector.
func (l *Layout) AppendCol(v *exec.Vector, row []byte, c int) {
	off := l.Offs[c]
	switch {
	case l.Types[c] == storage.Float64:
		v.F64 = append(v.F64, math.Float64frombits(binary.LittleEndian.Uint64(row[off:])))
	case l.Types[c] == storage.String:
		n := int(row[off])
		v.Str = append(v.Str, row[off+1:off+1+n])
	case l.Widths[c] == 4:
		v.I64 = append(v.I64, int64(int32(binary.LittleEndian.Uint32(row[off:]))))
	default:
		v.I64 = append(v.I64, int64(binary.LittleEndian.Uint64(row[off:])))
	}
}

// AppendZeroCol appends a zero/empty value of column c's type (outer-join
// padding).
func (l *Layout) AppendZeroCol(v *exec.Vector, c int) {
	switch l.Types[c] {
	case storage.Float64:
		v.F64 = append(v.F64, 0)
	case storage.String:
		v.Str = append(v.Str, nil)
	default:
		v.I64 = append(v.I64, 0)
	}
}

// KeyEqual compares the join keys of a row in this layout against a row in
// layout other. Both layouts list their key columns in the same key order.
func (l *Layout) KeyEqual(row []byte, other *Layout, orow []byte) bool {
	if l.KeyI64 && other.KeyI64 {
		return binary.LittleEndian.Uint64(row[l.Offs[l.KeyCols[0]]:]) ==
			binary.LittleEndian.Uint64(orow[other.Offs[other.KeyCols[0]]:])
	}
	for k, c := range l.KeyCols {
		oc := other.KeyCols[k]
		off, ooff := l.Offs[c], other.Offs[oc]
		if l.Types[c] == storage.String {
			n, on := int(row[off]), int(orow[ooff])
			if n != on || string(row[off+1:off+1+n]) != string(orow[ooff+1:ooff+1+on]) {
				return false
			}
			continue
		}
		var a, b int64
		if l.Widths[c] == 4 {
			a = int64(int32(binary.LittleEndian.Uint32(row[off:])))
		} else {
			a = int64(binary.LittleEndian.Uint64(row[off:]))
		}
		if other.Widths[oc] == 4 {
			b = int64(int32(binary.LittleEndian.Uint32(orow[ooff:])))
		} else {
			b = int64(binary.LittleEndian.Uint64(orow[ooff:]))
		}
		if a != b {
			return false
		}
	}
	return true
}

// GetI64 extracts column c of a packed row as int64 (residual predicates).
func (l *Layout) GetI64(row []byte, c int) int64 {
	off := l.Offs[c]
	if l.Widths[c] == 4 {
		return int64(int32(binary.LittleEndian.Uint32(row[off:])))
	}
	return int64(binary.LittleEndian.Uint64(row[off:]))
}

// KeyEqualBatch compares the join key of a packed row against row i of a
// batch whose key vector indices are keyCols (the BHJ's in-pipeline probe:
// the probe side is never packed).
func (l *Layout) KeyEqualBatch(row []byte, b *exec.Batch, keyCols []int, i int) bool {
	for k, c := range l.KeyCols {
		v := &b.Vecs[keyCols[k]]
		off := l.Offs[c]
		switch {
		case l.Types[c] == storage.String:
			n := int(row[off])
			if string(row[off+1:off+1+n]) != string(v.Str[i]) {
				return false
			}
		case l.Types[c] == storage.Float64:
			if binary.LittleEndian.Uint64(row[off:]) != math.Float64bits(v.F64[i]) {
				return false
			}
		case l.Widths[c] == 4:
			if int64(int32(binary.LittleEndian.Uint32(row[off:]))) != v.I64[i] {
				return false
			}
		default:
			if int64(binary.LittleEndian.Uint64(row[off:])) != v.I64[i] {
				return false
			}
		}
	}
	return true
}

// HashKeys computes the join hash for row i of a batch given the key vector
// indices; multi-column keys are combined.
func HashKeys(b *exec.Batch, keyCols []int, i int) uint64 {
	var h uint64
	for k, kc := range keyCols {
		v := &b.Vecs[kc]
		var hk uint64
		switch v.T {
		case storage.Float64:
			hk = hashx.U64(math.Float64bits(v.F64[i]))
		case storage.String:
			hk = hashx.Bytes(v.Str[i])
		default:
			hk = hashx.I64(v.I64[i])
		}
		if k == 0 {
			h = hk
		} else {
			h = hashx.Combine(h, hk)
		}
	}
	return h
}

// HashOp appends a hash vector computed over the key columns to each batch,
// so the Bloom filter probe and the partitioner share one hash computation
// (the paper stores the hash with each tuple for the same reason).
type HashOp struct {
	Next    exec.Operator
	KeyCols []int
	vec     exec.Vector
}

// Process implements exec.Operator.
func (h *HashOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	h.vec.T = storage.Int64
	h.vec.Width = 8
	h.vec.I64 = h.vec.I64[:0]
	for i := 0; i < b.N; i++ {
		h.vec.I64 = append(h.vec.I64, int64(HashKeys(b, h.KeyCols, i)))
	}
	b.Vecs = append(b.Vecs, h.vec)
	h.Next.Process(ctx, b)
	h.vec = b.Vecs[len(b.Vecs)-1]
	b.Vecs = b.Vecs[:len(b.Vecs)-1]
}

// Flush implements exec.Operator.
func (h *HashOp) Flush(ctx *exec.Ctx) { h.Next.Flush(ctx) }
