package core

import (
	"sync"
	"sync/atomic"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/exec"
)

// AdaptiveJoin makes the paper's partition-or-not answer revisable at
// runtime: the join starts as the BHJ the planner picked, and if the
// observed build outgrows the memory budget mid-build, it converts the
// in-progress build into radix partition pages and finishes as a
// (spillable) radix join — a staged migration, not a restart. The packed
// row format is what makes this cheap: every arena row already carries its
// hash at offset 0, so migration is a re-scatter, never a re-hash or a
// re-scan of the input.
//
// Exactly one of the two underlying joins ever runs its probe/join phase;
// the migration decision is made (and frozen) while the build pipeline is
// still running, so the probe pipeline always sees a stable choice.
type AdaptiveJoin struct {
	BHJ *HashJoin
	RJ  *RadixJoin
	St  *adapt.JoinState
	// MaxWorkers is the driver's full parallelism. The radix sinks open at
	// this width so any pipeline's worker ids fit their per-worker slots.
	MaxWorkers int

	migrated    atomic.Bool
	migrateOnce sync.Once
	buildRows   atomic.Int64
}

// Migrated reports whether the build converted to radix partitions.
func (a *AdaptiveJoin) Migrated() bool { return a.migrated.Load() }

// projectedExtra returns the bytes HashBuildSink.Close would still grant on
// top of the current account if the build ended at n rows: the contiguous
// row copy, the directory, and the entry array. (The worker arenas are
// released only after the copy, so the close-time peak holds both; this is
// exactly the grant sequence of HashBuildSink.Close.)
func (a *AdaptiveJoin) projectedExtra(n int64) int64 {
	dirSize := int64(8)
	for dirSize < 2*n {
		dirSize <<= 1
	}
	return n*int64(a.BHJ.Layout.Size) + dirSize*8 + n*16
}

// BuildSink returns the adaptive pipeline breaker for the build side.
func (a *AdaptiveJoin) BuildSink() *AdaptiveBuildSink {
	return &AdaptiveBuildSink{A: a, hs: a.BHJ.BuildSink()}
}

// AdaptiveBuildSink wraps the BHJ build sink with a morsel-granularity
// checkpoint: after each consumed batch it projects the close-time memory
// need from the observed cardinality and asks the controller whether to
// keep going (possibly with a grown reservation) or migrate. After the
// switch, each worker lazily re-scatters its own arena into the radix
// sink's partition pages and new batches partition directly.
type AdaptiveBuildSink struct {
	A       *AdaptiveJoin
	hs      *HashBuildSink
	drained []bool
}

// Open implements exec.Sink.
func (s *AdaptiveBuildSink) Open(workers int) {
	s.hs.Open(workers)
	s.drained = make([]bool, workers)
}

// Consume implements exec.Sink.
func (s *AdaptiveBuildSink) Consume(ctx *exec.Ctx, b *exec.Batch) {
	a := s.A
	if a.migrated.Load() {
		s.drainWorker(ctx)
		a.RJ.BuildSink.Consume(ctx, b)
		a.buildRows.Add(int64(b.N))
		return
	}
	before := len(s.hs.arenas[ctx.Worker])
	s.hs.Consume(ctx, b)
	s.sampleArena(s.hs.arenas[ctx.Worker][before:])
	rows := a.buildRows.Add(int64(b.N))
	a.St.Checkpoint()
	if a.St.ShouldMigrate(a.projectedExtra(rows)) {
		s.migrate(ctx)
	}
}

// sampleArena feeds a strided sample of freshly packed rows' hashes into
// the key-correlation sketch, so a later migration (or split decision) can
// size the fan-out from the distribution actually seen.
func (s *AdaptiveBuildSink) sampleArena(data []byte) {
	st := s.A.St
	stride := st.SampleEvery()
	if stride <= 0 {
		return
	}
	l := s.A.BHJ.Layout
	step := stride * l.Size
	for off := 0; off+l.Size <= len(data); off += step {
		st.Sample(l.Hash(data[off:]))
	}
}

// migrate flips the join to radix mode exactly once (sync.Once blocks the
// other workers until the sinks are open) and re-scatters the calling
// worker's arena.
func (s *AdaptiveBuildSink) migrate(ctx *exec.Ctx) {
	a := s.A
	a.migrateOnce.Do(func() {
		a.St.BeginMigration(a.buildRows.Load())
		a.RJ.BuildSink.Open(a.MaxWorkers)
		a.RJ.ProbeSink.Open(a.MaxWorkers)
		a.migrated.Store(true)
	})
	s.drainWorker(ctx)
}

// drainWorker re-scatters one worker's BHJ arena into the radix sink's
// pages and returns the arena's budget. Each worker drains its own arena
// on its next Consume after the switch; Close drains the stragglers.
func (s *AdaptiveBuildSink) drainWorker(ctx *exec.Ctx) {
	w := ctx.Worker
	if s.drained[w] {
		return
	}
	s.drained[w] = true
	a := s.A
	arena := s.hs.arenas[w]
	if len(arena) > 0 {
		a.RJ.BuildSink.ConsumePacked(ctx, arena)
	}
	a.BHJ.Gov.Release(int64(cap(arena)))
	s.hs.arenas[w] = nil
}

// Close implements exec.Sink: either the BHJ finishes its table as planned
// (and the reservation shrinks to observed truth), or the migrated radix
// build drains the remaining arenas and closes its partitioning passes.
func (s *AdaptiveBuildSink) Close() {
	a := s.A
	if !a.migrated.Load() {
		s.hs.Close()
		a.St.ShrinkAfterBuild(0)
		return
	}
	for w := range s.hs.arenas {
		if !s.drained[w] {
			s.drainWorker(&exec.Ctx{Worker: w, Workers: a.MaxWorkers})
		}
	}
	a.RJ.BuildSink.Close()
	a.St.ShrinkAfterBuild(a.St.EstProbeBytes())
}

// ProbeOp returns the adaptive probe operator feeding next. Pre-migration
// it is the BHJ's in-pipeline probe; post-migration it materializes probe
// tuples into the radix probe sink and emits nothing downstream — the join
// results then come from the deferred JoinSource pipeline instead. Both
// shapes produce the same output schema, so downstream operators never
// notice which path ran.
func (a *AdaptiveJoin) ProbeOp(next exec.Operator) *AdaptiveProbeOp {
	return &AdaptiveProbeOp{A: a, inner: a.BHJ.ProbeOp(next)}
}

// AdaptiveProbeOp routes probe batches to whichever join won the build.
type AdaptiveProbeOp struct {
	A     *AdaptiveJoin
	inner *HashProbeOp
}

// Process implements exec.Operator.
func (o *AdaptiveProbeOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	if o.A.migrated.Load() {
		o.A.RJ.ProbeSink.Consume(ctx, b)
		return
	}
	o.inner.Process(ctx, b)
}

// Flush implements exec.Operator.
func (o *AdaptiveProbeOp) Flush(ctx *exec.Ctx) { o.inner.Flush(ctx) }

// JoinSource returns the deferred join pipeline source: zero tasks when the
// BHJ kept the build (its probe already streamed the results), the radix
// join's partition pairs after a migration. Closing the probe sink happens
// here because in adaptive wiring the radix probe sink sits mid-pipeline
// rather than terminating one.
func (a *AdaptiveJoin) JoinSource() *AdaptiveJoinSource {
	return &AdaptiveJoinSource{A: a}
}

// AdaptiveJoinSource implements exec.Source.
type AdaptiveJoinSource struct {
	A   *AdaptiveJoin
	src *PartitionJoinSource
}

// Tasks implements exec.Source.
func (s *AdaptiveJoinSource) Tasks() int {
	if !s.A.migrated.Load() {
		return 0
	}
	s.A.RJ.ProbeSink.Close()
	s.src = s.A.RJ.JoinSource()
	return s.src.Tasks()
}

// Emit implements exec.Source.
func (s *AdaptiveJoinSource) Emit(ctx *exec.Ctx, task int, out exec.Operator) {
	s.src.Emit(ctx, task, out)
}

// emitSplit re-partitions one skewed resident partition pair on the next k
// hash bits at join time and joins the sub-pairs separately — the
// incremental-fan-out recovery: only the partition that actually overflowed
// pays for finer partitioning, everyone else keeps the original layout.
// Correctness is inherited from the radix invariant: a probe row's
// potential matches share all hash bits used for partitioning, so key
// matches never cross sub-partitions, and each build row lands in exactly
// one sub-partition so matched-flag kinds (outer/semi/anti) stay exact.
func (s *PartitionJoinSource) emitSplit(ctx *exec.Ctx, out exec.Operator, pid int, bpart, ppart []byte) {
	j := s.J
	bl, pl := j.BuildSink.Layout, j.ProbeSink.Layout
	target := int64(j.Cfg.CacheBudget)
	k := 1
	for int64(len(bpart))>>k > target && k < 6 {
		k++
	}
	j.Adapt.BeginSplit(pid, int64(len(bpart)/bl.Size), k)
	shift := uint(j.Cfg.Pass1Bits + j.b2)
	nsub := 1 << k
	gov := j.Gov
	gov.MustGrant(int64(len(bpart) + len(ppart)))
	defer gov.Release(int64(len(bpart) + len(ppart)))
	bsub := scatterSub(bl, bpart, shift, nsub)
	psub := scatterSub(pl, ppart, shift, nsub)
	for i := 0; i < nsub; i++ {
		sb, sp := bsub.part(i), psub.part(i)
		if len(sb) == 0 && len(sp) == 0 {
			continue
		}
		s.joinPartition(ctx, out, sb, func(yield func(ppart []byte)) {
			if len(sp) > 0 {
				yield(sp)
			}
		})
	}
}

// subParts is a contiguous scatter of one partition onto further hash bits.
type subParts struct {
	data []byte
	off  []int
}

func (s subParts) part(i int) []byte { return s.data[s.off[i]:s.off[i+1]] }

// scatterSub counts, fences, and scatters one partition's packed rows by
// hash bits shift..shift+log2(nsub)-1.
func scatterSub(l *Layout, part []byte, shift uint, nsub int) subParts {
	rowSize := l.Size
	mask := uint64(nsub - 1)
	counts := make([]int, nsub)
	for off := 0; off < len(part); off += rowSize {
		counts[int(l.Hash(part[off:])>>shift)&int(mask)]++
	}
	offs := make([]int, nsub+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c*rowSize
	}
	data := make([]byte, len(part))
	cur := make([]int, nsub)
	copy(cur, offs[:nsub])
	for off := 0; off < len(part); off += rowSize {
		row := part[off : off+rowSize]
		p := int(l.Hash(row)>>shift) & int(mask)
		copy(data[cur[p]:], row)
		cur[p] += rowSize
	}
	return subParts{data: data, off: offs}
}
