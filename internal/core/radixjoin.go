package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/bloom"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/govern"
	"partitionjoin/internal/meter"
	"partitionjoin/internal/storage"
)

// JoinEmitSite is the fault-injection site visited once per partition pair
// in the join phase.
const JoinEmitSite = "core.join.emit"

// RadixJoin couples the two radix sinks of a partitioned join with the
// final join phase (Algorithm 1): the plan runs the build pipeline into
// BuildSink, then the probe pipeline into ProbeSink (optionally through a
// BloomProbeOp), then the join pipeline from JoinSource. The join is a full
// pipeline breaker and a pipeline starter (Figure 4).
type RadixJoin struct {
	Cfg  Config
	Kind JoinKind

	BuildSink *RadixSink
	ProbeSink *RadixSink

	// BuildOut / ProbeOut are the layout column indices each side
	// contributes to the join result, in output order (build columns
	// first, as in t_build ∘ t_probe of Algorithm 2).
	BuildOut []int
	ProbeOut []int

	// Residual, when non-nil, must also hold for a key-equal pair to
	// match (e.g. Q21's l2.l_suppkey <> l1.l_suppkey).
	Residual func(brow, prow []byte) bool

	Meter *meter.Meter

	// Gov is the query's memory governor; partition pages, write-combine
	// buffers, and the final partition buffers are accounted against it,
	// and decideBits consults it to shed fan-out bits under pressure.
	// Nil means ungoverned. Set before the build pipeline runs.
	Gov *govern.Governor

	// Spill, when non-nil, arms the grace-hash escape hatch: partitions
	// evict to checksummed run files when a grant would exceed the budget,
	// and the join phase reloads them pair by pair. Set with Gov before the
	// build pipeline runs; nil keeps the in-memory-only behavior.
	Spill *JoinSpill

	// Adapt, when non-nil, is this join's runtime adaptation state: the
	// build sink feeds its key-correlation sketch, decideBits consults the
	// sketch to widen the fan-out under observed skew, and the join phase
	// re-partitions resident partitions past its split threshold. Nil keeps
	// the static plan-time behavior exactly.
	Adapt *adapt.JoinState

	// StatProbeRows and StatMatches count probe tuples entering the
	// join phase and key-matched pairs, for the per-join analysis
	// (Figures 1, 2 and 13).
	StatProbeRows atomic.Int64
	StatMatches   atomic.Int64

	// DegradedBits reports how many second-pass fan-out bits the memory
	// governor shed relative to the cache-optimal choice (0 = none).
	DegradedBits int

	filter        *bloom.Filter
	bloomDisabled atomic.Bool
	b2            int
	b2Decided     bool
}

// NewRadixJoin wires a radix join. buildLayout/probeLayout describe the
// materialized rows of each side; buildCols/probeCols map layout columns to
// batch vector indices of the respective input pipelines; keyCols give the
// key vector indices, hashCol an optional precomputed-hash vector (-1 to
// hash in the sink).
func NewRadixJoin(cfg Config, kind JoinKind, m *meter.Meter,
	buildLayout *Layout, buildCols, buildKeyCols []int, buildHashCol int,
	probeLayout *Layout, probeCols, probeKeyCols []int, probeHashCol int,
	buildOut, probeOut []int,
) *RadixJoin {
	j := &RadixJoin{Cfg: cfg, Kind: kind, Meter: m, BuildOut: buildOut, ProbeOut: probeOut}
	j.BuildSink = &RadixSink{Cfg: cfg, Layout: buildLayout, Cols: buildCols,
		KeyCols: buildKeyCols, HashCol: buildHashCol, Side: "build", Join: j, Meter: m}
	j.ProbeSink = &RadixSink{Cfg: cfg, Layout: probeLayout, Cols: probeCols,
		KeyCols: probeKeyCols, HashCol: probeHashCol, Side: "probe", Join: j, Meter: m}
	return j
}

// decideBits fixes the second-pass fan-out. The build side decides from its
// own materialized size (the partition-fits-in-cache invariant); the probe
// side reuses the build's decision so partition pairs line up. workers is
// the number of workers that materialized the side (it scales the projected
// write-combine overhead of pass 2).
//
// When a memory budget is set, the cache-optimal fan-out is walked down one
// bit at a time while the projected pass-2 footprint — the contiguous
// output buffer plus per-worker write-combine buffers plus the histogram —
// still exceeds what remains of the budget. This is the first rung of the
// degradation ladder; the planner's BHJ fallback (plan.compileJoin) is the
// second. A reduced fan-out trades cache locality for memory, which the
// paper's sensitivity results show is the right direction: a slightly
// coarser partitioning degrades throughput gently, while an OOM kill does
// not degrade at all.
func (j *RadixJoin) decideBits(s *RadixSink, totalRows int64, workers int) int {
	if s == j.BuildSink {
		total := totalBitsFor(j.Cfg, totalRows*int64(s.Layout.Size))
		b2 := total - j.Cfg.Pass1Bits
		if b2 < 0 {
			b2 = 0
		}
		if b2 > j.Cfg.MaxPass2Bits {
			b2 = j.Cfg.MaxPass2Bits
		}
		// Correlation-aware widening: the static formula divides total
		// bytes by the fan-out, which under skew leaves the hot partition
		// over the cache budget. The sketch sees the real distribution and
		// only ever widens, so uniform workloads keep the static choice.
		b2 = j.Adapt.ChooseBits(b2, j.Cfg.Pass1Bits, j.Cfg.MaxPass2Bits,
			s.Layout.Size, totalRows, j.Cfg.CacheBudget)
		if g := j.Gov; g.Budgeted() {
			rowBytes := totalRows * int64(s.Layout.Size)
			overhead := func(b2 int) int64 {
				f2 := int64(1) << b2
				swwcb := int64(workers) * f2 * int64(s.swwcbBytes())
				hist := int64(1) << uint(j.Cfg.Pass1Bits+b2) * 8
				return rowBytes + swwcb + hist
			}
			want := b2
			for b2 > 0 && g.WouldExceed(overhead(b2)) {
				b2--
			}
			if b2 < want {
				j.DegradedBits = want - b2
				g.Note("radix join: fan-out reduced from %d to %d second-pass bits (budget %d B, used %d B)",
					want, b2, g.Budget(), g.Used())
			}
		}
		j.b2 = b2
		j.b2Decided = true
		return b2
	}
	if !j.b2Decided {
		panic("core: probe side partitioned before build side")
	}
	return j.b2
}

// buildFilter allocates the Bloom filter when this is the build side of a
// BRJ; pass 2 fills it. Blocks >= fan-out guarantees partition-disjoint
// writes. When any build rows spilled, the filter is disabled: spilled keys
// would be absent from it and the probe reducer would wrongly drop their
// matches.
func (j *RadixJoin) buildFilter(s *RadixSink, totalRows int64) *bloom.Filter {
	if !j.Cfg.Bloom || s != j.BuildSink {
		return nil
	}
	if sp := j.Spill; sp != nil && sp.spilledRowsTotal(s.Side) > 0 {
		j.bloomDisabled.Store(true)
		j.Gov.Note("radix join: Bloom filter disabled, build side spilled")
		return nil
	}
	j.filter = bloom.New(int(totalRows), 1<<(j.Cfg.Pass1Bits+j.b2))
	return j.filter
}

// Filter exposes the built Bloom filter (nil before the build side closed
// or when Bloom is off).
func (j *RadixJoin) Filter() *bloom.Filter { return j.filter }

// BloomDisabled reports whether the adaptive logic switched the filter off.
func (j *RadixJoin) BloomDisabled() bool { return j.bloomDisabled.Load() }

// BloomProbeOp is the semi-join reducer in the probe pipeline: it drops
// tuples whose hash cannot be in the build side before they are
// materialized into partitions (Figure 7). With AdaptiveBloom it samples
// the pass rate and disables itself when almost every tuple passes, since
// then the extra block load cannot pay for itself (Section 5.4.1).
type BloomProbeOp struct {
	Next    exec.Operator
	Join    *RadixJoin
	HashCol int

	sampled int
	passed  int
}

// Process implements exec.Operator.
func (o *BloomProbeOp) Process(ctx *exec.Ctx, b *exec.Batch) {
	j := o.Join
	f := j.filter
	if f == nil || j.bloomDisabled.Load() {
		o.Next.Process(ctx, b)
		return
	}
	keep := ctx.KeepBuf(b.N)
	h := b.Vecs[o.HashCol].I64
	pass := 0
	for i := 0; i < b.N; i++ {
		ok := f.MayContain(uint64(h[i]))
		keep[i] = ok
		if ok {
			pass++
		}
	}
	if j.Cfg.AdaptiveBloom && o.sampled < j.Cfg.BloomSample {
		o.sampled += b.N
		o.passed += pass
		if o.sampled >= j.Cfg.BloomSample &&
			float64(o.passed) >= j.Cfg.BloomDisableRate*float64(o.sampled) {
			j.bloomDisabled.Store(true)
		}
	}
	b.Compact(keep)
	if b.N > 0 {
		o.Next.Process(ctx, b)
	}
}

// Flush implements exec.Operator.
func (o *BloomProbeOp) Flush(ctx *exec.Ctx) { o.Next.Flush(ctx) }

// HasBuildCols reports whether the join kind emits build-side columns.
func (k JoinKind) HasBuildCols() bool {
	switch k {
	case Inner, LeftOuter, RightOuter, LeftSemi, LeftAnti:
		return true
	}
	return false
}

// HasProbeCols reports whether the join kind emits probe-side columns.
func (k JoinKind) HasProbeCols() bool {
	switch k {
	case Inner, LeftOuter, RightOuter, Semi, Anti, Mark:
		return true
	}
	return false
}

// needsMatchedFlags reports whether the kind tracks per-build-row matches.
func (k JoinKind) needsMatchedFlags() bool {
	return k == LeftOuter || k == LeftSemi || k == LeftAnti
}

// OutTypes returns the vector types and widths of the join's output
// batches: build columns, then probe columns, then the mark flag if any.
func (j *RadixJoin) OutTypes() ([]storage.Type, []int) {
	var ts []storage.Type
	var caps []int
	bl, pl := j.BuildSink.Layout, j.ProbeSink.Layout
	if j.Kind.HasBuildCols() {
		for _, c := range j.BuildOut {
			ts = append(ts, bl.Types[c])
			caps = append(caps, bl.Widths[c])
		}
	}
	if j.Kind.HasProbeCols() {
		for _, c := range j.ProbeOut {
			ts = append(ts, pl.Types[c])
			caps = append(caps, pl.Widths[c])
		}
	}
	if j.Kind == Mark {
		ts = append(ts, storage.Bool)
		caps = append(caps, 0)
	}
	return ts, caps
}

// JoinSource returns the source of the join pipeline: one task per final
// partition pair, claimed through the driver's work-stealing cursor so
// skewed partitions balance across workers (Section 4.5, step 8).
func (j *RadixJoin) JoinSource() *PartitionJoinSource {
	return &PartitionJoinSource{J: j}
}

// PartitionJoinSource joins partition pairs and emits result batches
// (Algorithm 2). Per-worker state (hash table, output batch) lives in the
// Ctx-indexed scratch so partitions can be processed without locks.
type PartitionJoinSource struct {
	J       *RadixJoin
	once    sync.Once
	scratch []*joinScratch
}

type joinScratch struct {
	ht      rhTable
	out     *exec.Batch
	matched []bool
}

// Tasks implements exec.Source: one task per resident partition pair plus
// one per spilled pass-1 partition (processed serially under reloadMu).
func (s *PartitionJoinSource) Tasks() int {
	return s.J.BuildSink.Out.NumParts() + s.J.Spill.numSpilled()
}

func (s *PartitionJoinSource) worker(ctx *exec.Ctx) *joinScratch {
	s.once.Do(func() { s.scratch = make([]*joinScratch, ctx.Workers) })
	w := s.scratch[ctx.Worker]
	if w == nil {
		ts, widths := s.J.OutTypes()
		b := exec.NewBatch(ts, nil)
		// Width metadata must survive into downstream materialization.
		for i := range b.Vecs {
			if widths[i] > 0 {
				b.Vecs[i].Width = widths[i]
			}
		}
		w = &joinScratch{out: b}
		s.scratch[ctx.Worker] = w
	}
	return w
}

// Emit implements exec.Source: joins one partition pair. Task ids past the
// resident partitions index into the spilled-partition list; a resident
// task whose pass-1 partition spilled is a no-op (its rows — both sides —
// are joined by the spilled task so each build row is seen exactly once).
func (s *PartitionJoinSource) Emit(ctx *exec.Ctx, pid int, out exec.Operator) {
	faultinject.Hit(JoinEmitSite)
	j := s.J
	nres := j.BuildSink.Out.NumParts()
	if pid >= nres {
		s.emitSpilled(ctx, j.Spill.spilledList()[pid-nres], out)
		return
	}
	if j.Spill.isSpilled(pid & (1<<j.Cfg.Pass1Bits - 1)) {
		return
	}
	bpart := j.BuildSink.Out.Part(pid)
	ppart := j.ProbeSink.Out.Part(pid)
	if thr := j.Adapt.SplitThreshold(j.Cfg.CacheBudget); thr > 0 && int64(len(bpart)) > thr {
		s.emitSplit(ctx, out, pid, bpart, ppart)
		return
	}
	s.joinPartition(ctx, out, bpart, func(yield func(ppart []byte)) {
		if len(ppart) > 0 {
			yield(ppart)
		}
	})
}

// joinPartition builds the hash table over one contiguous build partition
// and probes it with the chunks the probe callback yields — a single
// resident partition, or a stream of reloaded spill frames (Algorithm 2
// either way). Chunks must hold whole packed probe rows.
func (s *PartitionJoinSource) joinPartition(ctx *exec.Ctx, out exec.Operator, bpart []byte, probe func(yield func(ppart []byte))) {
	j := s.J
	w := s.worker(ctx)
	bl, pl := j.BuildSink.Layout, j.ProbeSink.Layout
	nb := len(bpart) / bl.Size
	ctx.Meter.AddRead(int64(len(bpart)))

	// Build the per-partition hash table on the fly.
	w.ht.reset(nb)
	for i := 0; i < nb; i++ {
		row := bpart[i*bl.Size:]
		w.ht.insert(bl.Hash(row), int32(i))
	}

	withBuildCols := j.Kind.HasBuildCols()
	withProbeCols := j.Kind.HasProbeCols()
	if j.Kind.needsMatchedFlags() {
		if cap(w.matched) < nb {
			w.matched = make([]bool, nb)
		}
		w.matched = w.matched[:nb]
		for i := range w.matched {
			w.matched[i] = false
		}
	}

	flush := func() {
		if w.out.N > 0 {
			out.Process(ctx, w.out)
			w.out.Reset()
		}
	}
	emitPair := func(brow, prow []byte) {
		v := 0
		if withBuildCols {
			for _, c := range j.BuildOut {
				if brow != nil {
					bl.AppendCol(&w.out.Vecs[v], brow, c)
				} else {
					bl.AppendZeroCol(&w.out.Vecs[v], c)
				}
				v++
			}
		}
		if withProbeCols {
			for _, c := range j.ProbeOut {
				if prow != nil {
					pl.AppendCol(&w.out.Vecs[v], prow, c)
				} else {
					pl.AppendZeroCol(&w.out.Vecs[v], c)
				}
				v++
			}
		}
		w.out.N++
		if w.out.N >= exec.BatchSize {
			flush()
		}
	}
	emitMark := func(prow []byte, hit bool) {
		v := 0
		for _, c := range j.ProbeOut {
			pl.AppendCol(&w.out.Vecs[v], prow, c)
			v++
		}
		flag := int64(0)
		if hit {
			flag = 1
		}
		w.out.Vecs[v].I64 = append(w.out.Vecs[v].I64, flag)
		w.out.N++
		if w.out.N >= exec.BatchSize {
			flush()
		}
	}

	var matches int64
	ht := &w.ht
	entries := ht.entries
	mask := ht.mask
	// Single 8-byte integer keys (every TPC-H and prior-work key) compare
	// with two direct loads instead of the generic per-column path.
	fastKey := bl.KeyI64 && pl.KeyI64 && j.Residual == nil
	bKeyOff := bl.Offs[bl.KeyCols[0]]
	pKeyOff := pl.Offs[pl.KeyCols[0]]
	cancelled := false
	// Prefetch-distance staging (Cfg.ProbeStage): hash a group of probe
	// rows and load each one's first hash-table entry before any row's
	// probe walk begins. The staged loads are independent, so the group's
	// random cache misses overlap — software memory-level parallelism in
	// place of a prefetch intrinsic — and the walk then starts from the
	// already-resident staged entry.
	stage := j.Cfg.probeStage()
	var stHash [probeStageMax]uint64
	var stSlot [probeStageMax]uint32
	var stEnt [probeStageMax]rhEntry
	probe(func(ppart []byte) {
		if cancelled {
			return
		}
		np := len(ppart) / pl.Size
		j.StatProbeRows.Add(int64(np))
		ctx.Meter.AddRead(int64(len(ppart)))
		for base := 0; base < np; base += stage {
			g := stage
			if base+g > np {
				g = np - base
			}
			for k := 0; k < g; k++ {
				h := pl.Hash(ppart[(base+k)*pl.Size:])
				slot := rhSlot(h) & mask
				stHash[k], stSlot[k] = h, slot
				stEnt[k] = entries[slot]
			}
			for k := 0; k < g; k++ {
				i := base + k
				prow := ppart[i*pl.Size : (i+1)*pl.Size]
				h := stHash[k]
				hit := false
				// Inlined robin-hood probe: the displacement invariant
				// bounds the scan (see rhTable.probe); candidates verify
				// key and residual before counting as matches.
				slot := stSlot[k]
				e := stEnt[k]
				dist := uint32(0)
				for {
					idx := e.idx
					if idx < 0 {
						break
					}
					occDist := (slot - rhSlot(e.hash)) & mask
					if occDist < dist {
						break
					}
					if e.hash == h {
						brow := bpart[int(idx)*bl.Size : (int(idx)+1)*bl.Size]
						var ok bool
						if fastKey {
							ok = binary.LittleEndian.Uint64(brow[bKeyOff:]) ==
								binary.LittleEndian.Uint64(prow[pKeyOff:])
						} else {
							ok = bl.KeyEqual(brow, pl, prow) &&
								(j.Residual == nil || j.Residual(brow, prow))
						}
						if ok {
							hit = true
							matches++
							switch j.Kind {
							case Inner, RightOuter:
								emitPair(brow, prow)
							case LeftOuter:
								w.matched[idx] = true
								emitPair(brow, prow)
							case LeftSemi, LeftAnti:
								w.matched[idx] = true
							case Semi, Anti, Mark:
								// Presence is all that matters.
							}
						}
					}
					slot = (slot + 1) & mask
					dist++
					e = entries[slot]
				}
				switch j.Kind {
				case Semi:
					if hit {
						emitPair(nil, prow)
					}
				case Anti:
					if !hit {
						emitPair(nil, prow)
					}
				case Mark:
					emitMark(prow, hit)
				case RightOuter:
					if !hit {
						emitPair(nil, prow)
					}
				}
			}
			// Poll cancellation roughly every 8K probe rows so a huge
			// skewed partition cannot pin a worker past a deadline.
			if base&^8191 != (base+g)&^8191 && ctx.Err() != nil {
				cancelled = true
				return
			}
		}
	})
	if cancelled {
		return
	}
	switch j.Kind {
	case LeftOuter, LeftAnti:
		for i := 0; i < nb; i++ {
			if !w.matched[i] {
				emitPair(bpart[i*bl.Size:(i+1)*bl.Size], nil)
			}
		}
	case LeftSemi:
		for i := 0; i < nb; i++ {
			if w.matched[i] {
				emitPair(bpart[i*bl.Size:(i+1)*bl.Size], nil)
			}
		}
	}
	j.StatMatches.Add(matches)
	flush()
}
