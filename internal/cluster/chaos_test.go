package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/server"
)

const chaosQuery = `SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey`

// TestConnectFaultRetriesAndSucceeds: a refused connection on the first
// attempt is retried with backoff and the query still answers correctly.
func TestConnectFaultRetriesAndSucceeds(t *testing.T) {
	faultinject.FailOnLeak(t)
	h := newCluster(t, 3, nil)
	faultinject.Arm(t, "cluster.fragment.connect", faultinject.Fault{
		Kind: faultinject.Fail, Once: true, Message: "connection refused",
	})
	res, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("query with connect fault: %v", err)
	}
	if res.Stats.Retries < 1 {
		t.Fatalf("stats = %+v, want at least one retry", res.Stats)
	}
	want := singleNode(t, chaosQuery)
	rowsMatch(t, res.Rows, want.Rows)
}

// TestMidStreamFaultRetriesAndSucceeds: a hangup in the middle of the row
// stream discards the partial rows and re-dispatches the fragment.
func TestMidStreamFaultRetriesAndSucceeds(t *testing.T) {
	faultinject.FailOnLeak(t)
	h := newCluster(t, 3, nil)
	faultinject.Arm(t, "cluster.fragment.stream", faultinject.Fault{
		Kind: faultinject.Fail, Once: true, Message: "connection reset mid-stream",
	})
	// A plain select wide enough that fragments stream many rows.
	q := `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 10`
	res, err := h.coord.Query(context.Background(), q, "")
	if err != nil {
		t.Fatalf("query with stream fault: %v", err)
	}
	if res.Stats.Retries < 1 {
		t.Fatalf("stats = %+v, want at least one retry", res.Stats)
	}
	want := singleNode(t, q)
	sortRows(res.Rows)
	sortRows(want.Rows)
	rowsMatch(t, res.Rows, want.Rows)
}

// TestSlowShardTripsFragmentDeadline: a stalled shard exhausts the fragment
// deadline; one stall is absorbed by a retry, a persistent stall surfaces
// the typed unavailability error.
func TestSlowShardTripsFragmentDeadline(t *testing.T) {
	faultinject.FailOnLeak(t)
	h := newCluster(t, 2, func(c *Config) {
		c.FragmentTimeout = 100 * time.Millisecond
		c.MaxRetries = 1
	})
	// One stall: the retry answers.
	faultinject.Arm(t, "cluster.fragment.slow", faultinject.Fault{
		Kind: faultinject.Stall, Stall: 300 * time.Millisecond, Once: true,
	})
	res, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("query with one stall: %v", err)
	}
	if res.Stats.Retries < 1 {
		t.Fatalf("stats = %+v, want a retry after the deadline trip", res.Stats)
	}

	// Persistent stall: retries exhaust into ErrShardUnavailable.
	faultinject.Arm(t, "cluster.fragment.slow", faultinject.Fault{
		Kind: faultinject.Stall, Stall: 300 * time.Millisecond,
	})
	_, err = h.coord.Query(context.Background(), chaosQuery, "")
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("persistent stall: err = %v, want ErrShardUnavailable", err)
	}
	faultinject.Disable("cluster.fragment.slow")
}

// TestShardDeathSurfacesTypedRetryableError: killing a shard makes queries
// that need it fail with the typed, retryable error — and queries that
// don't need it still succeed.
func TestShardDeathSurfacesTypedRetryableError(t *testing.T) {
	h := newCluster(t, 3, func(c *Config) {
		c.MaxRetries = 1
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 100 * time.Millisecond
		c.DownAfter = 2
	})
	h.killShard(1)

	_, err := h.coord.Query(context.Background(), chaosQuery, "")
	var se *ShardUnavailableError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardUnavailableError", err)
	}
	if se.Shard != 1 || !se.Retryable() || se.RetryAfter <= 0 {
		t.Fatalf("error detail = %+v", se)
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatal("errors.Is(ErrShardUnavailable) = false")
	}

	// Once the prober marks the shard Down, replicated-only queries route
	// around the corpse.
	deadline := time.Now().Add(5 * time.Second)
	for h.coord.shards[1].State() != Down {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never went Down, state = %v", h.coord.shards[1].State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if _, err := h.coord.Query(context.Background(),
			`SELECT count(*) AS n FROM nation`, ""); err != nil {
			t.Fatalf("replicated query after shard death: %v", err)
		}
	}
}

// TestShardDeathOverHTTPIs503WithRetryAfter: the same failure through the
// HTTP front is a 503 with Retry-After — the contract sqlrun's auto-retry
// honors.
func TestShardDeathOverHTTPIs503WithRetryAfter(t *testing.T) {
	h := newCluster(t, 3, func(c *Config) { c.MaxRetries = 0 })
	ts := httptest.NewServer(h.coord)
	defer ts.Close()
	h.killShard(0)

	cl := &server.Client{Base: ts.URL}
	_, err := cl.Query(context.Background(), chaosQuery)
	var re *server.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if re.Status != 503 || !re.Overloaded() || re.RetryAfter <= 0 {
		t.Fatalf("remote error = %+v, want 503 with Retry-After", re)
	}
}

// TestShardRestartRecovers: the chaos acceptance path — kill a shard
// mid-workload, watch typed failures, restart it elsewhere, watch the
// cluster answer again with no residue.
func TestShardRestartRecovers(t *testing.T) {
	h := newCluster(t, 3, func(c *Config) { c.MaxRetries = 1 })
	if _, err := h.coord.Query(context.Background(), chaosQuery, ""); err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	h.killShard(2)
	if _, err := h.coord.Query(context.Background(), chaosQuery, ""); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("dead-shard query: err = %v, want ErrShardUnavailable", err)
	}
	h.restartShard(t, 2)
	res, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	want := singleNode(t, chaosQuery)
	rowsMatch(t, res.Rows, want.Rows)
}

// TestStaleRingFaultRecoversViaRetry: a router acting on a pre-rebalance
// ring dispatches to the shard's old (dead) address; the retry ladder
// re-resolves and completes.
func TestStaleRingFaultRecoversViaRetry(t *testing.T) {
	faultinject.FailOnLeak(t)
	// One shard, so the Once fault deterministically hits a fragment whose
	// shard actually has a previous (now dead) address.
	h := newCluster(t, 1, nil)
	v := h.coord.Ring().Version()
	h.killShard(0)
	h.restartShard(t, 0) // SetShardAddr: old address retained as prevAddr
	if h.coord.Ring().Version() != v+1 {
		t.Fatal("SetShardAddr did not bump the ring version")
	}
	faultinject.Arm(t, "cluster.ring.stale", faultinject.Fault{
		Kind: faultinject.Fail, Once: true,
	})
	res, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("query with stale ring: %v", err)
	}
	if res.Stats.Retries < 1 {
		t.Fatalf("stats = %+v, want a retry off the stale address", res.Stats)
	}
	want := singleNode(t, chaosQuery)
	rowsMatch(t, res.Rows, want.Rows)
}

// TestBreakerUnit: threshold trips it, cooloff half-opens it, success
// closes it, and a half-open failure re-opens immediately.
func TestBreakerUnit(t *testing.T) {
	b := &breaker{threshold: 3, cooloff: 50 * time.Millisecond}
	now := time.Now()
	for i := 0; i < 2; i++ {
		b.fail(now)
		if !b.allow(now) {
			t.Fatalf("open after %d failures, threshold 3", i+1)
		}
	}
	b.fail(now)
	if b.allow(now) {
		t.Fatal("still closed at threshold")
	}
	half := now.Add(60 * time.Millisecond)
	if !b.allow(half) {
		t.Fatal("not half-open after cooloff")
	}
	b.fail(half) // half-open probe fails: re-open from one strike
	if b.allow(half) {
		t.Fatal("half-open failure did not re-open")
	}
	again := half.Add(60 * time.Millisecond)
	if !b.allow(again) {
		t.Fatal("not half-open after second cooloff")
	}
	b.ok()
	if !b.allow(again) || b.open(again) {
		t.Fatal("success did not close the breaker")
	}
	b.mu.Lock()
	trips := b.trips
	b.mu.Unlock()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
}

// TestBreakerFailsFastOnDeadShard: after enough failures the breaker opens
// and further fragments fail immediately instead of burning their retry
// budget against the corpse.
func TestBreakerFailsFastOnDeadShard(t *testing.T) {
	h := newCluster(t, 2, func(c *Config) {
		c.MaxRetries = 0
		c.BreakerThreshold = 2
		c.BreakerCooloff = 10 * time.Second
	})
	h.killShard(1)
	for i := 0; i < 2; i++ {
		if _, err := h.coord.Query(context.Background(), chaosQuery, ""); err == nil {
			t.Fatal("query against dead shard succeeded")
		}
	}
	before := h.coord.shards[1].fragments.Load()
	_, err := h.coord.Query(context.Background(), chaosQuery, "")
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if after := h.coord.shards[1].fragments.Load(); after != before {
		t.Fatalf("breaker open but %d fragment attempts still dispatched", after-before)
	}
}

// TestProberDrivesStateMachine: the prober walks a shard down through
// degraded as probes fail, and back up after a restart.
func TestProberDrivesStateMachine(t *testing.T) {
	h := newCluster(t, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 100 * time.Millisecond
		c.DownAfter = 3
	})
	waitState := func(want HealthState) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for h.coord.shards[1].State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("shard 1 state = %v, want %v", h.coord.shards[1].State(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitState(Up)
	h.killShard(1)
	waitState(Down)
	// While down, partitioned queries fail fast without dialing the corpse.
	if _, err := h.coord.Query(context.Background(), chaosQuery, ""); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	h.restartShard(t, 1)
	waitState(Up)
	if _, err := h.coord.Query(context.Background(), chaosQuery, ""); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestCoordinatorDrainCleanAndDirty: a drain with room finishes in-flight
// queries cleanly; a drain with no grace cancels them with ErrDraining.
func TestCoordinatorDrainCleanAndDirty(t *testing.T) {
	faultinject.FailOnLeak(t)

	t.Run("clean", func(t *testing.T) {
		h := newCluster(t, 2, nil)
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := h.coord.Query(context.Background(), chaosQuery, "")
			errCh <- err
		}()
		time.Sleep(20 * time.Millisecond)
		if !h.coord.Drain(10 * time.Second) {
			t.Error("drain was not clean")
		}
		wg.Wait()
		if err := <-errCh; err != nil {
			t.Errorf("in-flight query during clean drain: %v", err)
		}
	})

	t.Run("dirty", func(t *testing.T) {
		h := newCluster(t, 2, func(c *Config) {
			c.FragmentTimeout = 30 * time.Second
		})
		faultinject.Arm(t, "cluster.fragment.slow", faultinject.Fault{
			Kind: faultinject.Stall, Stall: 400 * time.Millisecond,
		})
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := h.coord.Query(context.Background(), chaosQuery, "")
			errCh <- err
		}()
		time.Sleep(20 * time.Millisecond)
		if h.coord.Drain(10 * time.Millisecond) {
			t.Error("drain reported clean despite a stalled query")
		}
		wg.Wait()
		if err := <-errCh; !errors.Is(err, ErrDraining) {
			t.Errorf("cancelled query err = %v, want ErrDraining", err)
		}
	})
}

// TestDrainingCoordinatorRefusesQueries: after Drain starts, the HTTP front
// answers 503 and /healthz flips.
func TestDrainingCoordinatorRefusesQueries(t *testing.T) {
	h := newCluster(t, 2, nil)
	ts := httptest.NewServer(h.coord)
	defer ts.Close()
	h.coord.Drain(time.Second)

	cl := &server.Client{Base: ts.URL}
	_, err := cl.Query(context.Background(), chaosQuery)
	var re *server.RemoteError
	if !errors.As(err, &re) || re.Status != 503 {
		t.Fatalf("query on draining coordinator: %v, want 503", err)
	}
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("healthz ok on draining coordinator")
	}
}

// TestNoReservationLeaks: with admission control on, every path — success,
// gather, shard death, drain — returns the pool to empty.
func TestNoReservationLeaks(t *testing.T) {
	broker := admit.NewBroker(admit.Config{GlobalMem: 64 << 20})
	defer broker.Close()
	h := newCluster(t, 3, func(c *Config) {
		c.Broker = broker
		c.MemBudget = 1 << 20
		c.MaxRetries = 0
	})
	queries := []string{
		chaosQuery,
		`SELECT o_orderpriority, count(*) AS n FROM orders o, customer c WHERE o.o_custkey = c.c_custkey GROUP BY o_orderpriority`,
	}
	for _, q := range queries {
		if _, err := h.coord.Query(context.Background(), q, ""); err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
	}
	h.killShard(0)
	if _, err := h.coord.Query(context.Background(), chaosQuery, ""); err == nil {
		t.Fatal("dead-shard query succeeded")
	}
	if inUse := broker.InUse(); inUse != 0 {
		t.Fatalf("reservation leak: %d bytes still admitted", inUse)
	}
}

// TestMidQueryCancellationPropagates: cancelling the caller's context stops
// the scatter promptly with the context's cause and leaks nothing (the
// harness cleanup asserts that).
func TestMidQueryCancellationPropagates(t *testing.T) {
	faultinject.FailOnLeak(t)
	h := newCluster(t, 2, func(c *Config) {
		c.FragmentTimeout = 30 * time.Second
	})
	faultinject.Arm(t, "cluster.fragment.slow", faultinject.Fault{
		Kind: faultinject.Stall, Stall: 300 * time.Millisecond,
	})
	cause := errors.New("caller gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel(cause)
	}()
	_, err := h.coord.Query(ctx, chaosQuery, "")
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
	cancel(nil)
}

// TestQueryIDPropagatesToShards: the coordinator threads its query id into
// per-fragment ids so shard logs correlate; the shard echoes it back.
func TestQueryIDPropagatesToShards(t *testing.T) {
	h := newCluster(t, 2, nil)
	res, err := h.coord.Query(context.Background(), chaosQuery, "trace-42")
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID != "trace-42" {
		t.Fatalf("QueryID = %q, want trace-42", res.QueryID)
	}
	// The fragment ids derive from the query id (qid.fN.sK.aM); the format
	// is pinned here because operators grep shard logs by prefix.
	aqid := fmt.Sprintf("%s.f%d.s%d.a%d", "trace-42", 0, 0, 0)
	if !strings.HasPrefix(aqid, "trace-42.") {
		t.Fatal("fragment id does not extend the query id")
	}
}
