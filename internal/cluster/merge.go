package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// mergeKind says how one output column combines across fragments.
type mergeKind int

const (
	mergeKey   mergeKind = iota // grouping key / plain column: values must agree
	mergeCount                  // add
	mergeSum                    // add (int or float by wire type)
	mergeMin                    // keep the smaller
	mergeMax                    // keep the larger
	mergeAvg                    // fragments carry sums; divide by the merged count
)

// errNotMergeable marks a statement whose fragments cannot be combined by
// the coordinator (e.g. ORDER BY a column absent from the output). The
// query falls back to the gather path, which executes it whole.
var errNotMergeable = errors.New("cluster: statement not mergeable from fragments")

// mergePlan is the compiled recipe for combining fragment results.
type mergePlan struct {
	fragSQL string
	hasAgg  bool
	grouped bool
	kinds   []mergeKind // one per output column
	keyIdx  []int       // output columns that identify a group
	cntIdx  int         // fragment index of __cluster_cnt; -1 when absent
	order   []orderKey
	limit   int
}

// orderKey is one resolved ORDER BY term.
type orderKey struct {
	idx  int
	desc bool
}

// buildMerge compiles the statement into its fragment SQL and merge recipe.
func buildMerge(stmt *sql.SelectStmt) (*mergePlan, error) {
	mp := &mergePlan{cntIdx: -1, limit: stmt.Limit}
	mp.grouped = len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Agg != "" {
			mp.hasAgg = true
		}
	}
	if mp.hasAgg || mp.grouped {
		if mp.hasAgg && !mp.grouped {
			for _, it := range stmt.Items {
				if it.Agg == "" {
					return nil, errNotMergeable // bare column in a global aggregate
				}
			}
		}
		for i, it := range stmt.Items {
			switch it.Agg {
			case "":
				mp.kinds = append(mp.kinds, mergeKey)
				mp.keyIdx = append(mp.keyIdx, i)
			case "count":
				mp.kinds = append(mp.kinds, mergeCount)
			case "sum":
				mp.kinds = append(mp.kinds, mergeSum)
			case "min":
				mp.kinds = append(mp.kinds, mergeMin)
			case "max":
				mp.kinds = append(mp.kinds, mergeMax)
			case "avg":
				mp.kinds = append(mp.kinds, mergeAvg)
			default:
				return nil, errNotMergeable
			}
		}
		// Fragments do the grouping but never order or limit — a per-shard
		// LIMIT would drop groups the merge still needs.
		mp.fragSQL = printStmt(stmt, fragOpts{
			stripLimit: true, stripOrder: true,
			avgToSum: true, forceCnt: mp.hasAgg,
		})
		if mp.hasAgg {
			mp.cntIdx = len(stmt.Items)
		}
	} else {
		// Plain select: rows concatenate. The fragment keeps ORDER BY and
		// LIMIT — each shard's top-k is a superset of its contribution to
		// the global top-k — and the coordinator re-sorts and re-cuts.
		for range stmt.Items {
			mp.kinds = append(mp.kinds, mergeKey)
		}
		mp.fragSQL = printStmt(stmt, fragOpts{})
	}
	for _, oi := range stmt.OrderBy {
		idx := findOutCol(stmt, oi.Col)
		if idx < 0 {
			return nil, errNotMergeable // ordered by a column we don't see
		}
		mp.order = append(mp.order, orderKey{idx: idx, desc: oi.Desc})
	}
	return mp, nil
}

// findOutCol locates an ORDER BY reference among the SELECT items: by alias,
// or by (qualified) column identity.
func findOutCol(stmt *sql.SelectStmt, c sql.ColRefAST) int {
	for i, it := range stmt.Items {
		if c.Qualifier == "" && it.As != "" && it.As == c.Column {
			return i
		}
		if it.Agg == "" && !it.Star && it.Col.Column == c.Column &&
			(c.Qualifier == "" || c.Qualifier == it.Col.Qualifier) {
			return i
		}
	}
	return -1
}

// merge combines the fragment results into the final rows.
func (mp *mergePlan) merge(frags []*fragResult) (*Result, error) {
	if len(frags) == 0 {
		return nil, errors.New("cluster: no fragments to merge")
	}
	n := len(mp.kinds)
	base := frags[0]
	if len(base.cols) < n {
		return nil, fmt.Errorf("cluster: fragment returned %d columns, want >= %d", len(base.cols), n)
	}
	cols := make([]ColMeta, n)
	for i, cm := range base.cols[:n] {
		cols[i] = ColMeta{Name: cm.Name, Type: cm.Type}
		if mp.kinds[i] == mergeAvg {
			// Fragments ship sums (possibly integer); the quotient is float.
			cols[i].Type = storage.Float64.String()
		}
	}

	var rows [][]any
	if !mp.hasAgg && !mp.grouped {
		for _, fr := range frags {
			rows = append(rows, fr.rows...)
		}
	} else {
		var err error
		rows, err = mp.mergeGroups(frags, base)
		if err != nil {
			return nil, err
		}
	}

	if len(mp.order) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for _, ok := range mp.order {
				va, vb := rows[a][ok.idx], rows[b][ok.idx]
				if valEq(va, vb) {
					continue
				}
				less := valLess(va, vb)
				if ok.desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if mp.limit > 0 && len(rows) > mp.limit {
		rows = rows[:mp.limit]
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

// groupAcc accumulates one group across fragments.
type groupAcc struct {
	row []any
	cnt int64
}

// mergeGroups folds every fragment row into its group accumulator and
// finalizes avg columns.
func (mp *mergePlan) mergeGroups(frags []*fragResult, base *fragResult) ([][]any, error) {
	n := len(mp.kinds)
	accs := make(map[string]*groupAcc)
	var order []string
	for _, fr := range frags {
		for _, row := range fr.rows {
			var cnt int64
			if mp.cntIdx >= 0 {
				c, ok := row[mp.cntIdx].(int64)
				if !ok {
					return nil, fmt.Errorf("cluster: bad %s value %v", avgCntAlias, row[mp.cntIdx])
				}
				if c == 0 {
					// A global aggregate's default row from a shard whose
					// partition matched nothing: its sentinels carry no data.
					continue
				}
				cnt = c
			}
			key := groupKeyOf(row, mp.keyIdx)
			a := accs[key]
			if a == nil {
				accs[key] = &groupAcc{row: append([]any(nil), row[:n]...), cnt: cnt}
				order = append(order, key)
				continue
			}
			a.cnt += cnt
			for i, k := range mp.kinds {
				switch k {
				case mergeCount, mergeSum, mergeAvg:
					a.row[i] = valAdd(a.row[i], row[i])
				case mergeMin:
					if valLess(row[i], a.row[i]) {
						a.row[i] = row[i]
					}
				case mergeMax:
					if valLess(a.row[i], row[i]) {
						a.row[i] = row[i]
					}
				}
			}
		}
	}
	if len(accs) == 0 && mp.hasAgg && !mp.grouped && len(base.rows) > 0 {
		// Every shard matched nothing; the merged answer is the same default
		// row a single node yields on empty input.
		accs[""] = &groupAcc{row: append([]any(nil), base.rows[0][:n]...)}
		order = append(order, "")
	}
	rows := make([][]any, 0, len(accs))
	for _, key := range order {
		a := accs[key]
		for i, k := range mp.kinds {
			if k == mergeAvg {
				if a.cnt == 0 {
					a.row[i] = float64(0)
				} else {
					a.row[i] = valFloat(a.row[i]) / float64(a.cnt)
				}
			}
		}
		rows = append(rows, a.row)
	}
	return rows, nil
}

// groupKeyOf builds the map key of a row's grouping-column values.
func groupKeyOf(row []any, keyIdx []int) string {
	if len(keyIdx) == 0 {
		return ""
	}
	var b strings.Builder
	for _, i := range keyIdx {
		fmt.Fprintf(&b, "%v\x00", row[i])
	}
	return b.String()
}

// valAdd sums two wire values of the same column.
func valAdd(a, b any) any {
	switch x := a.(type) {
	case int64:
		return x + b.(int64)
	case float64:
		return x + b.(float64)
	}
	return a
}

// valLess orders two wire values of the same column.
func valLess(a, b any) bool {
	switch x := a.(type) {
	case int64:
		return x < b.(int64)
	case float64:
		return x < b.(float64)
	case string:
		return x < b.(string)
	}
	return false
}

// valEq compares two wire values of the same column.
func valEq(a, b any) bool { return a == b }

// valFloat widens a wire value to float64 for the avg quotient.
func valFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}
