package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/server"
)

// repHarness is a replicated cluster: N Nodes (each serving its primary
// slice plus boot replicas) and a coordinator with matching Replication.
type repHarness struct {
	coord *Coordinator
	spec  Spec
	nodes []*Node
	ts    []*httptest.Server
	repl  int
}

// newRepCluster boots nShards Nodes under replication factor repl. The
// default coordinator config disables the prober and uses fast retries;
// mut overrides it.
func newRepCluster(t *testing.T, nShards, repl int, mut func(*Config)) *repHarness {
	t.Helper()
	baseline := runtime.NumGoroutine()
	cat := testCat()
	spec, err := TPCHSpec(cat)
	if err != nil {
		t.Fatalf("TPCHSpec: %v", err)
	}
	h := &repHarness{spec: spec, repl: repl}
	addrs := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		node, err := NewNode(cat, spec, NodeConfig{
			ShardID: i, ShardCount: nShards, Replication: repl,
			Server: server.Config{Workers: 1},
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
		ts := httptest.NewServer(node)
		h.nodes = append(h.nodes, node)
		h.ts = append(h.ts, ts)
		addrs[i] = ts.URL
	}
	cfg := Config{
		Shards: addrs, Spec: spec, Replication: repl,
		ProbeInterval:   -1,
		FragmentTimeout: 10 * time.Second,
		MaxRetries:      2,
		RetryBase:       time.Millisecond,
		RetryCap:        20 * time.Millisecond,
		BreakerCooloff:  100 * time.Millisecond,
		Workers:         1,
	}
	if mut != nil {
		mut(&cfg)
	}
	h.coord, err = New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		h.coord.Drain(10 * time.Second)
		for _, ts := range h.ts {
			ts.Close()
		}
		for _, n := range h.nodes {
			n.Drain(10 * time.Second)
		}
		waitGoroutines(t, baseline)
	})
	return h
}

// killNode stops node i abruptly: open connections reset, the address
// refuses. The coordinator is not told — failover must discover it.
func (h *repHarness) killNode(i int) {
	h.ts[i].CloseClientConnections()
	h.ts[i].Close()
	h.nodes[i].Drain(5 * time.Second)
}

// restartNode boots a fresh Node for shard i (rebuilding its primary and
// boot-replica catalogs from deterministic placement, as a rescheduled
// process would) at a new address and repoints the coordinator.
func (h *repHarness) restartNode(t *testing.T, i int) {
	t.Helper()
	node, err := NewNode(testCat(), h.spec, NodeConfig{
		ShardID: i, ShardCount: len(h.ts), Replication: h.repl,
		Server: server.Config{Workers: 1},
	})
	if err != nil {
		t.Fatalf("NewNode(%d): %v", i, err)
	}
	ts := httptest.NewServer(node)
	h.nodes[i], h.ts[i] = node, ts
	if err := h.coord.SetShardAddr(i, ts.URL); err != nil {
		t.Fatalf("SetShardAddr: %v", err)
	}
}

// TestReplicaChainPlacement pins the deterministic placement algebra every
// node and coordinator must agree on.
func TestReplicaChainPlacement(t *testing.T) {
	for _, tc := range []struct {
		p, r, n int
		want    []int
	}{
		{0, 2, 3, []int{0, 1}},
		{2, 2, 3, []int{2, 0}},
		{1, 3, 4, []int{1, 2, 3}},
		{0, 1, 3, []int{0}},
		{0, 5, 3, []int{0, 1, 2}}, // r clamps to n
		{2, 0, 3, []int{2}},       // r floors at 1
	} {
		got := ReplicaChain(tc.p, tc.r, tc.n)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("ReplicaChain(%d,%d,%d) = %v, want %v", tc.p, tc.r, tc.n, got, tc.want)
		}
	}
	// Every shard replicates exactly r-1 foreign slices, and the sets are
	// the inverse of the chains.
	for _, r := range []int{1, 2, 3} {
		n := 5
		for s := 0; s < n; s++ {
			boot := BootReplicaPrimaries(s, r, n)
			if len(boot) != r-1 {
				t.Fatalf("BootReplicaPrimaries(%d,%d,%d) = %v, want %d entries", s, r, n, boot, r-1)
			}
			for _, p := range boot {
				chain := ReplicaChain(p, r, n)
				found := false
				for _, m := range chain[1:] {
					found = found || m == s
				}
				if !found {
					t.Fatalf("shard %d claims replica of %d but chain %v omits it", s, p, chain)
				}
			}
		}
	}
}

// TestNodeMountsBootReplicas: every node serves its boot replica slices at
// /replica/<p>/query with exactly the rows the primary slice holds.
func TestNodeMountsBootReplicas(t *testing.T) {
	h := newRepCluster(t, 3, 2, nil)
	ctx := context.Background()
	const q = `SELECT count(*) AS n FROM lineitem`
	for i, node := range h.nodes {
		boot := BootReplicaPrimaries(i, 2, 3)
		if fmt.Sprint(node.ReplicaPrimaries()) != fmt.Sprint(boot) {
			t.Fatalf("node %d mounts %v, want %v", i, node.ReplicaPrimaries(), boot)
		}
		for _, p := range boot {
			_, prim, err := fetchNDJSON(ctx, http.DefaultClient, h.ts[p].URL+"/query", q)
			if err != nil {
				t.Fatalf("primary %d: %v", p, err)
			}
			_, repl, err := fetchNDJSON(ctx, http.DefaultClient,
				fmt.Sprintf("%s/replica/%d/query", h.ts[i].URL, p), q)
			if err != nil {
				t.Fatalf("replica %d on node %d: %v", p, i, err)
			}
			if fmt.Sprint(prim) != fmt.Sprint(repl) {
				t.Fatalf("replica %d on node %d: rows %v, primary has %v", p, i, repl, prim)
			}
		}
	}
	// An unmounted replica id answers 404 — the skip-holder signal.
	resp, err := http.Post(h.ts[0].URL+"/replica/0/query", "application/json",
		nil)
	if err != nil {
		t.Fatalf("unmounted replica: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted replica: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestTransparentFailoverOnNodeDeath is the tentpole contract: kill a node,
// partitioned queries still answer — identically — with failovers recorded
// and no error surfacing to the client.
func TestTransparentFailoverOnNodeDeath(t *testing.T) {
	h := newRepCluster(t, 3, 2, func(c *Config) { c.MaxRetries = 1 })
	ctx := context.Background()
	queries := []string{
		chaosQuery,
		`SELECT l_returnflag, count(*) AS n, sum(l_quantity) AS q FROM lineitem GROUP BY l_returnflag`,
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := h.coord.Query(ctx, q, "")
		if err != nil {
			t.Fatalf("healthy %q: %v", q, err)
		}
		want[i] = res
	}

	h.killNode(2)

	for i, q := range queries {
		res, err := h.coord.Query(ctx, q, "")
		if err != nil {
			t.Fatalf("post-kill %q: %v", q, err)
		}
		if res.Stats.Failovers == 0 {
			t.Fatalf("post-kill %q: no failovers recorded (stats %+v)", q, res.Stats)
		}
		sortRows(res.Rows)
		sortRows(want[i].Rows)
		rowsMatch(t, res.Rows, want[i].Rows)
	}
	if h.coord.failoverSuccess.Load() == 0 || h.coord.failoverAttempts.Load() == 0 {
		t.Fatalf("failover counters not exported: attempts=%d success=%d",
			h.coord.failoverAttempts.Load(), h.coord.failoverSuccess.Load())
	}
}

// TestMidStreamDeathFailsOver: a fragment stream that dies mid-flight (rows
// already received, no trailer) is discarded whole and re-executed on the
// next holder — no double counting, no retry on the dead holder needed.
func TestMidStreamDeathFailsOver(t *testing.T) {
	faultinject.FailOnLeak(t)
	h := newRepCluster(t, 3, 2, func(c *Config) { c.MaxRetries = -1 }) // no same-holder retries
	// A plain select wide enough that fragments stream many rows (the stream
	// fault site fires per 64-row batch).
	const q = `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 10`
	want, err := h.coord.Query(context.Background(), q, "")
	if err != nil {
		t.Fatalf("healthy: %v", err)
	}
	faultinject.Arm(t, "cluster.fragment.stream", faultinject.Fault{Kind: faultinject.Fail, Once: true})
	got, err := h.coord.Query(context.Background(), q, "")
	if err != nil {
		t.Fatalf("mid-stream death: %v", err)
	}
	if got.Stats.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1 (stats %+v)", got.Stats.Failovers, got.Stats)
	}
	sortRows(got.Rows)
	sortRows(want.Rows)
	rowsMatch(t, got.Rows, want.Rows)
}

// TestDoubleFaultIsTypedWithHonestRetryAfter: primary and every replica
// down is the contract's floor — a typed ShardUnavailableError whose
// Retry-After reflects when the prober could actually re-admit a shard.
func TestDoubleFaultIsTypedWithHonestRetryAfter(t *testing.T) {
	const probeInterval = 50 * time.Millisecond
	const probeTimeout = 25 * time.Millisecond
	h := newRepCluster(t, 3, 2, func(c *Config) {
		c.ProbeInterval = probeInterval
		c.ProbeTimeout = probeTimeout
		c.DownAfter = 2
	})
	h.killNode(0)
	h.killNode(1)
	deadline := time.Now().Add(5 * time.Second)
	for h.coord.shards[0].State() != Down || h.coord.shards[1].State() != Down {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked both shards Down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := h.coord.Query(context.Background(), chaosQuery, "")
	var se *ShardUnavailableError
	if !errors.As(err, &se) {
		t.Fatalf("double fault: got %v, want ShardUnavailableError", err)
	}
	if !errors.Is(err, ErrShardUnavailable) || !se.Retryable() {
		t.Fatalf("double fault not typed retryable: %v", err)
	}
	if se.Replicas != 1 {
		t.Fatalf("Replicas = %d, want 1 (the exhausted chain must be visible)", se.Replicas)
	}
	if want := probeInterval + probeTimeout; se.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want the prober recheck horizon %v", se.RetryAfter, want)
	}
}

// TestRereplicationRestoresR: a shard Down past the grace window loses its
// chain memberships to new holders (streamed partition transfer), restoring
// R; its rejoin dismantles exactly the compensating mounts.
func TestRereplicationRestoresR(t *testing.T) {
	h := newRepCluster(t, 3, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 2 * time.Second // condemn on refusal, not on busy
		c.DownAfter = 2
		c.RereplicateAfter = 30 * time.Millisecond
	})
	ctx := context.Background()
	want, err := h.coord.Query(ctx, chaosQuery, "")
	if err != nil {
		t.Fatalf("healthy: %v", err)
	}
	v0 := h.coord.ring.Version()

	// Shard 1 held primary slice 1 and the replica of slice 0; both must
	// move (slice 0's replica to shard 2, slice 1's data to shard 0).
	h.killNode(1)
	waitFor(t, 10*time.Second, "re-replication to restore R", func() bool {
		return h.coord.rereplications.Load() >= 2
	})
	if got := h.coord.ring.Version(); got <= v0 {
		t.Fatalf("ring version %d not bumped past %d by re-replication", got, v0)
	}
	mounted := func(node *Node, p int) bool {
		for _, m := range node.ReplicaPrimaries() {
			if m == p {
				return true
			}
		}
		return false
	}
	if !mounted(h.nodes[2], 0) || !mounted(h.nodes[0], 1) {
		t.Fatalf("compensating mounts missing: node2=%v node0=%v",
			h.nodes[2].ReplicaPrimaries(), h.nodes[0].ReplicaPrimaries())
	}
	res, err := h.coord.Query(ctx, chaosQuery, "")
	if err != nil {
		t.Fatalf("with R restored: %v", err)
	}
	rowsMatch(t, res.Rows, want.Rows)

	// Rejoin: the shard comes back (fresh boot, new address); the extras
	// are dismantled and placement returns to the boot layout.
	h.restartNode(t, 1)
	waitFor(t, 10*time.Second, "rejoin to dismantle compensating mounts", func() bool {
		return h.coord.restores.Load() >= 2
	})
	h.coord.placementMu.Lock()
	nExtras := len(h.coord.extras)
	h.coord.placementMu.Unlock()
	if nExtras != 0 {
		t.Fatalf("%d extras left after rejoin", nExtras)
	}
	if mounted(h.nodes[2], 0) || mounted(h.nodes[0], 1) {
		t.Fatalf("compensating mounts not unmounted: node2=%v node0=%v",
			h.nodes[2].ReplicaPrimaries(), h.nodes[0].ReplicaPrimaries())
	}
	res, err = h.coord.Query(ctx, chaosQuery, "")
	if err != nil {
		t.Fatalf("after rejoin: %v", err)
	}
	rowsMatch(t, res.Rows, want.Rows)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainDuringFailover: coordinator Drain while a fragment is mid-reroute
// must finish the rerouted fragment or cancel cleanly — no stuck enter()
// reservations, no leaked admission bytes (run under -race in CI).
func TestDrainDuringFailover(t *testing.T) {
	faultinject.FailOnLeak(t)
	broker := admit.NewBroker(admit.Config{GlobalMem: 64 << 20})
	defer broker.Close()
	h := newRepCluster(t, 2, 2, func(c *Config) {
		c.MaxRetries = -1
		c.Broker = broker
		c.MemBudget = 1 << 20
	})
	// The primary's attempt fails once; the failover attempt stalls long
	// enough for Drain's grace to expire mid-reroute.
	faultinject.Arm(t, "cluster.fragment.connect", faultinject.Fault{Kind: faultinject.Fail, Once: true})
	faultinject.Arm(t, "cluster.fragment.slow", faultinject.Fault{Kind: faultinject.Stall, Stall: 400 * time.Millisecond, After: 1})

	done := make(chan error, 1)
	go func() {
		_, err := h.coord.Query(context.Background(),
			`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 777`, "drain-fo")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the query reach the rerouted attempt
	h.coord.Drain(30 * time.Millisecond)

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Fatalf("drain during failover: got %v, want nil or ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query stuck after drain: enter() reservation never released")
	}
	if inUse := broker.InUse(); inUse != 0 {
		t.Fatalf("%d admission bytes leaked across drain", inUse)
	}
	faultinject.Disable("cluster.fragment.connect")
	faultinject.Disable("cluster.fragment.slow")
}

// TestStaleRingVersionRedirected: a node that has seen a newer placement
// rejects the coordinator's stale version with 409; the coordinator adopts
// the version and the retry succeeds — no wrong-slice read, no client error.
func TestStaleRingVersionRedirected(t *testing.T) {
	h := newRepCluster(t, 2, 2, func(c *Config) { c.MaxRetries = 3 })
	want, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("healthy: %v", err)
	}
	newer := h.coord.ring.Version() + 3
	h.nodes[0].BumpRingVersion(newer)
	res, err := h.coord.Query(context.Background(), chaosQuery, "")
	if err != nil {
		t.Fatalf("stale ring: %v", err)
	}
	if got := h.coord.ring.Version(); got < newer {
		t.Fatalf("coordinator kept stale version %d, node is at %d", got, newer)
	}
	rowsMatch(t, res.Rows, want.Rows)
	if res.Stats.Retries == 0 {
		t.Fatalf("409 redirect should surface as a retry (stats %+v)", res.Stats)
	}
}

// TestChaosGateKillMidQueryStream is the acceptance gate: with R=2, a node
// SIGKILLed in the middle of a stream of partitioned TPC-H queries
// (Q3/Q12-shaped) yields zero client-visible errors, results bit-identical
// to the healthy run, re-replication restores R, and nothing leaks.
func TestChaosGateKillMidQueryStream(t *testing.T) {
	broker := admit.NewBroker(admit.Config{GlobalMem: 256 << 20})
	defer broker.Close()
	h := newRepCluster(t, 3, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		// Generous probe timeout: a healthy-but-busy node under -race must
		// not be condemned; dead-shard detection rides the fast connection
		// refusal, not the timeout.
		c.ProbeTimeout = 2 * time.Second
		c.DownAfter = 2
		c.RereplicateAfter = 50 * time.Millisecond
		c.MaxRetries = 1
		c.Broker = broker
		c.MemBudget = 1 << 20
	})
	ctx := context.Background()
	queries := []string{
		// Q3-shaped: colocated join, group on the orders side.
		`SELECT o_orderpriority, count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity < 30 GROUP BY o_orderpriority`,
		// Q12-shaped: colocated join, shipmode filter, group on lineitem.
		`SELECT l_shipmode, count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l_shipmode IN ('MAIL', 'SHIP') GROUP BY l_shipmode`,
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := h.coord.Query(ctx, q, "")
		if err != nil {
			t.Fatalf("healthy %q: %v", q, err)
		}
		sortRows(res.Rows)
		want[q] = fmt.Sprint(res.Rows)
	}

	const workers = 4
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var ok, failedOver int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				res, err := h.coord.Query(ctx, q, fmt.Sprintf("chaos.w%d.i%d", w, i))
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				sortRows(res.Rows)
				if got := fmt.Sprint(res.Rows); got != want[q] {
					errCh <- fmt.Errorf("worker %d query %d: rows diverged: %s vs %s", w, i, got, want[q])
					return
				}
				mu.Lock()
				ok++
				if res.Stats.Failovers > 0 {
					failedOver++
				}
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond) // let the stream establish
	h.killNode(1)                      // SIGKILL-equivalent: conns reset, addr refuses
	time.Sleep(1 * time.Second)        // stream continues across the fault
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("client-visible error during chaos: %v", err)
	default:
	}
	if ok == 0 || failedOver == 0 {
		t.Fatalf("chaos stream too quiet: %d ok, %d failed over", ok, failedOver)
	}
	waitFor(t, 10*time.Second, "R restored after kill", func() bool {
		return h.coord.rereplications.Load() >= 2
	})
	if inUse := broker.InUse(); inUse != 0 {
		t.Fatalf("%d admission bytes leaked", inUse)
	}
	t.Logf("chaos gate: %d queries ok, %d failed over transparently, %d re-replications",
		ok, failedOver, h.coord.rereplications.Load())
}
