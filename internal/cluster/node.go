package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// Node is one replicated shard process: a primary server over this shard's
// own slice of the partitioned catalog, plus one replica server per foreign
// primary slice the replication chain assigns here. Replica catalogs are
// built at boot from the same deterministic placement every other node
// computes, so a fresh fleet needs no data movement; /replicate is the
// online path — a streamed partition transfer over the ordinary /query
// NDJSON fabric — used when re-replication must restore R after a shard
// stays down.
//
// Routes, on top of everything the wrapped servers serve:
//
//	POST /replica/<p>/query   fragment against primary p's replica slice
//	GET  /replicas            {shard, replication, primaries, ring_version}
//	POST /replicate           {"primary":p,"from":url,"version":v} — fetch and mount
//	DELETE /replica/<p>       unmount a transferred replica (rejoin cleanup)
//
// Fragment requests may carry X-Ring-Version; a request older than the
// node's current version is redirected with 409 + the node's version, so a
// coordinator acting on a pre-re-replication ring re-resolves instead of
// reading a slice that may have moved.
type Node struct {
	shard, nshards, repl int
	spec                 Spec
	scfg                 server.Config
	httpc                *http.Client

	primary    *server.Server
	primaryCat sql.Catalog

	mu       sync.Mutex
	replicas map[int]*server.Server
	draining bool

	version atomic.Int64

	transfersIn  atomic.Int64 // replicas mounted via /replicate
	transferRows atomic.Int64 // rows received across all transfers
}

// NodeConfig sizes a Node.
type NodeConfig struct {
	// ShardID / ShardCount / Replication place this node in the fleet.
	ShardID, ShardCount, Replication int
	// Vnodes is the ring's virtual-node count (0 = default).
	Vnodes int
	// Server configures every wrapped query server (primary and replicas).
	Server server.Config
	// HTTP is the transfer-fetch transport (nil uses a dedicated client).
	HTTP *http.Client
}

// NewNode partitions the full catalog into this shard's primary slice and
// its boot-time replica slices and wraps each in a query server.
func NewNode(cat sql.Catalog, spec Spec, cfg NodeConfig) (*Node, error) {
	if cfg.ShardID < 0 || cfg.ShardID >= cfg.ShardCount {
		return nil, fmt.Errorf("cluster: shard %d out of range for %d shards", cfg.ShardID, cfg.ShardCount)
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	ring := NewRing(cfg.ShardCount, cfg.Vnodes)
	n := &Node{
		shard: cfg.ShardID, nshards: cfg.ShardCount, repl: cfg.Replication,
		spec: spec, scfg: cfg.Server, httpc: cfg.HTTP,
		replicas: make(map[int]*server.Server),
	}
	n.primaryCat = PartitionCatalog(cat, spec, ring, cfg.ShardID)
	n.primary = server.New(cfg.Server, n.primaryCat)
	for _, p := range BootReplicaPrimaries(cfg.ShardID, cfg.Replication, cfg.ShardCount) {
		n.replicas[p] = server.New(cfg.Server, PartitionCatalog(cat, spec, ring, p))
	}
	return n, nil
}

// Shard returns this node's shard id.
func (n *Node) Shard() int { return n.shard }

// ReplicaPrimaries lists the primary slices currently mounted as replicas,
// sorted.
func (n *Node) ReplicaPrimaries() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]int, 0, len(n.replicas))
	for p := range n.replicas {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// RingVersion returns the newest placement version this node has seen.
func (n *Node) RingVersion() int64 { return n.version.Load() }

// BumpRingVersion raises the node's placement version (chaos harnesses use
// it to fabricate a coordinator that missed a re-replication).
func (n *Node) BumpRingVersion(v int64) {
	for {
		cur := n.version.Load()
		if v <= cur || n.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Drain gracefully stops the primary and every replica server.
func (n *Node) Drain(grace time.Duration) bool {
	n.mu.Lock()
	n.draining = true
	reps := make([]*server.Server, 0, len(n.replicas))
	for _, s := range n.replicas {
		reps = append(reps, s)
	}
	n.mu.Unlock()
	clean := n.primary.Drain(grace)
	for _, s := range reps {
		clean = s.Drain(grace) && clean
	}
	return clean
}

// nodeError writes the servers' JSON error envelope shape.
func nodeError(w http.ResponseWriter, status int, msg string, version int64) {
	w.Header().Set("Content-Type", "application/json")
	if version > 0 {
		w.Header().Set("X-Ring-Version", strconv.FormatInt(version, 10))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error       string `json:"error"`
		RingVersion int64  `json:"ring_version,omitempty"`
	}{msg, version})
}

// staleVersion reports whether the request carries a placement version older
// than the node's; such a request must be redirected (409) rather than
// served, because the sender may be routing a slice that has since moved.
func (n *Node) staleVersion(r *http.Request) bool {
	h := r.Header.Get("X-Ring-Version")
	if h == "" {
		return false
	}
	v, err := strconv.ParseInt(h, 10, 64)
	return err == nil && v < n.version.Load()
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/replicas":
		n.handleReplicas(w, r)
	case r.URL.Path == "/replicate":
		n.handleReplicate(w, r)
	case strings.HasPrefix(r.URL.Path, "/replica/"):
		n.handleReplicaPath(w, r)
	default:
		if r.URL.Path == "/query" && n.staleVersion(r) {
			nodeError(w, http.StatusConflict, "cluster: stale ring version", n.version.Load())
			return
		}
		n.primary.ServeHTTP(w, r)
	}
}

// handleReplicaPath routes /replica/<p>/... to the mounted replica server
// for primary p (DELETE /replica/<p> unmounts it).
func (n *Node) handleReplicaPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/replica/")
	pstr, sub, _ := strings.Cut(rest, "/")
	p, err := strconv.Atoi(pstr)
	if err != nil {
		nodeError(w, http.StatusBadRequest, "cluster: bad replica id "+pstr, 0)
		return
	}
	if r.Method == http.MethodDelete && sub == "" {
		n.unmount(w, p)
		return
	}
	n.mu.Lock()
	srv := n.replicas[p]
	n.mu.Unlock()
	if srv == nil {
		// Not mounted here. 404 tells the coordinator "try the next holder"
		// — the chain may be mid-re-replication, or the caller is stale.
		nodeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: replica %d not mounted on shard %d", p, n.shard), n.version.Load())
		return
	}
	if sub == "query" && n.staleVersion(r) {
		nodeError(w, http.StatusConflict, "cluster: stale ring version", n.version.Load())
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	srv.ServeHTTP(w, r2)
}

// unmount drains and drops a transferred replica — the rejoin cleanup that
// restores exact-R placement once the original holder is back.
func (n *Node) unmount(w http.ResponseWriter, p int) {
	n.mu.Lock()
	srv := n.replicas[p]
	delete(n.replicas, p)
	n.mu.Unlock()
	if srv == nil {
		nodeError(w, http.StatusNotFound,
			fmt.Sprintf("cluster: replica %d not mounted on shard %d", p, n.shard), 0)
		return
	}
	srv.Drain(5 * time.Second)
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicas reports the node's placement view.
func (n *Node) handleReplicas(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Shard        int    `json:"shard"`
		Replication  int    `json:"replication"`
		Primaries    []int  `json:"primaries"`
		RingVersion  int64  `json:"ring_version"`
		TransfersIn  int64  `json:"transfers_in"`
		TransferRows int64  `json:"transfer_rows"`
		Draining     bool   `json:"draining"`
		State        string `json:"state"`
	}{n.shard, n.repl, n.ReplicaPrimaries(), n.version.Load(),
		n.transfersIn.Load(), n.transferRows.Load(), n.isDraining(), "ok"})
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// replicateRequest is the re-replication control message: mount primary
// slice p here, fetching its rows from a live holder at From.
type replicateRequest struct {
	Primary int    `json:"primary"`
	From    string `json:"from"` // base URL incl. donor path, e.g. http://host or http://host/replica/2
	Version int64  `json:"version,omitempty"`
}

// handleReplicate performs an online partition transfer: every partitioned
// table's slice for the requested primary streams in over the ordinary
// /query NDJSON fabric and is rebuilt into a fresh catalog (replicated
// tables are shared from the node's own copy — they are identical
// everywhere). Idempotent: re-replicating an already-mounted primary
// answers 200 without refetching.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		nodeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		nodeError(w, http.StatusBadRequest, "bad replicate body: "+err.Error(), 0)
		return
	}
	if req.Primary < 0 || req.Primary >= n.nshards {
		nodeError(w, http.StatusBadRequest, fmt.Sprintf("cluster: no primary %d", req.Primary), 0)
		return
	}
	if n.isDraining() {
		nodeError(w, http.StatusServiceUnavailable, "cluster: node draining", 0)
		return
	}
	if req.Version > 0 {
		n.BumpRingVersion(req.Version)
	}
	n.mu.Lock()
	_, mounted := n.replicas[req.Primary]
	n.mu.Unlock()
	if mounted || req.Primary == n.shard {
		n.writeReplicateOK(w, req.Primary, 0)
		return
	}

	cat := make(sql.Catalog, len(n.spec))
	var rows int64
	for name, d := range n.spec {
		if d.Replicated() {
			cat[name] = n.primaryCat[name]
			continue
		}
		t, fetched, err := n.fetchSlice(r.Context(), req.From, name, d)
		if err != nil {
			nodeError(w, http.StatusBadGateway,
				fmt.Sprintf("cluster: transfer %s from %s: %v", name, req.From, err), 0)
			return
		}
		cat[name] = t
		rows += fetched
	}
	srv := server.New(n.scfg, cat)
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		srv.Drain(time.Second)
		nodeError(w, http.StatusServiceUnavailable, "cluster: node draining", 0)
		return
	}
	if _, raced := n.replicas[req.Primary]; raced {
		n.mu.Unlock()
		srv.Drain(time.Second)
		n.writeReplicateOK(w, req.Primary, 0)
		return
	}
	n.replicas[req.Primary] = srv
	n.mu.Unlock()
	n.transfersIn.Add(1)
	n.transferRows.Add(rows)
	n.writeReplicateOK(w, req.Primary, rows)
}

func (n *Node) writeReplicateOK(w http.ResponseWriter, primary int, rows int64) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Primary     int   `json:"primary"`
		Rows        int64 `json:"rows_transferred"`
		RingVersion int64 `json:"ring_version"`
	}{primary, rows, n.version.Load()})
}

// fetchSlice streams one partitioned table's slice from the donor and
// rebuilds it as a storage table.
func (n *Node) fetchSlice(ctx context.Context, from, table string, d TableDist) (*storage.Table, int64, error) {
	fsql := "SELECT " + strings.Join(d.Cols, ", ") + " FROM " + table
	cols, raw, err := fetchNDJSON(ctx, n.client(), from+"/query", fsql)
	if err != nil {
		return nil, 0, err
	}
	tb, err := rebuildTable(table, []*fragResult{{cols: cols, rows: raw, tries: 1}})
	if err != nil {
		return nil, 0, err
	}
	return tb, int64(len(raw)), nil
}

func (n *Node) client() *http.Client {
	if n.httpc != nil {
		return n.httpc
	}
	return http.DefaultClient
}

// fetchNDJSON posts one streamed query and collects the typed rows — the
// node-side twin of the coordinator's attemptFragment, shared by partition
// transfer. The trailer is required: a stream that ends without it cannot
// be trusted complete.
func fetchNDJSON(ctx context.Context, hc *http.Client, url, fsql string) ([]colMeta, [][]any, error) {
	body, _ := json.Marshal(fragmentRequest{SQL: fsql, Stream: true})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := bufio.NewReader(resp.Body).ReadString('\n')
		return nil, nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("empty stream: %w", sc.Err())
	}
	var hdr struct {
		Cols []colMeta `json:"cols"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, fmt.Errorf("bad stream header: %w", err)
	}
	var rows [][]any
	sawTrailer := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '{' {
			sawTrailer = true
			break
		}
		row, err := decodeRow(line, hdr.Cols)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("mid-stream: %w", err)
	}
	if !sawTrailer {
		return nil, nil, errors.New("stream ended without trailer")
	}
	return hdr.Cols, rows, nil
}
