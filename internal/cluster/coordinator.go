package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/core"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/sql"
)

// Config sizes a Coordinator. Zero values select the documented defaults.
type Config struct {
	// Shards are the shard node base URLs, indexed by shard id. Shard i
	// must serve the catalog PartitionCatalog builds for id i under the
	// same Spec and shard count.
	Shards []string
	// Spec is the cluster's partitioning scheme (BuildSpec/TPCHSpec).
	Spec Spec
	// Vnodes is the ring's virtual-node count per shard (0 = default).
	Vnodes int
	// HTTP is the fabric transport (nil uses a dedicated client).
	HTTP *http.Client

	// FragmentTimeout bounds one fragment attempt; a query deadline
	// tighter than this wins, because the attempt context descends from
	// the query context (0 = 30s).
	FragmentTimeout time.Duration
	// MaxRetries is how many times an idempotent fragment is re-dispatched
	// after its first failure (0 = 3; negative = no retries).
	MaxRetries int
	// RetryBase/RetryCap shape the jittered exponential backoff between
	// attempts (0 = 25ms base, 1s cap).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold consecutive fragment failures open a shard's
	// circuit breaker for BreakerCooloff (0 = 3 failures, 2s).
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// ProbeInterval is the health prober period (0 = 500ms; negative
	// disables the prober — tests drive states directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (0 = 500ms).
	ProbeTimeout time.Duration
	// DownAfter consecutive failed probes mark a shard Down (0 = 3).
	DownAfter int

	// Replication is the partition placement factor R: each primary slice
	// is also held by its R-1 id-successor shards, and fragments fail over
	// down that chain transparently (0 or 1 = single-owner placement, no
	// failover). The shard fleet must be booted with the same factor
	// (cluster.NewNode / joind -replication).
	Replication int
	// RereplicateAfter is the grace window after which a shard still Down
	// has its primary slices re-replicated onto new holders to restore R
	// (0 = never; requires the prober and Replication > 1).
	RereplicateAfter time.Duration

	// Broker, when set, admits queries before any fragment is dispatched;
	// the reservation is held until the merged result is delivered. The
	// coordinator does not close it.
	Broker *admit.Broker
	// MemBudget is the default admission request in bytes.
	MemBudget int64
	// Timeout is the default per-query deadline (0 = none).
	Timeout time.Duration
	// Workers/Core/SpillDir configure local execution of the gather
	// (shuffle) path, which joins fetched rows on the coordinator.
	Workers  int
	Core     core.Config
	SpillDir string
}

func (cfg *Config) applyDefaults() {
	if cfg.FragmentTimeout == 0 {
		cfg.FragmentTimeout = 30 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooloff <= 0 {
		cfg.BreakerCooloff = 2 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Shards) {
		cfg.Replication = len(cfg.Shards)
	}
	if cfg.Core == (core.Config{}) {
		cfg.Core = core.DefaultConfig()
	}
}

// Mode classifies how a query was executed across the cluster.
type Mode string

const (
	// ModeReplicated: every table is replicated; one healthy shard runs
	// the whole query.
	ModeReplicated Mode = "replicated"
	// ModeColocated: every partitioned table hashes on the join key (or
	// only one partitioned table is involved); the query scatters as-is
	// and partials merge. Replicated sides join broadcast-style in place.
	ModeColocated Mode = "colocated"
	// ModeRouted: co-located plus a partition-key point/range predicate —
	// the router pruned the scatter to the owning shard subset.
	ModeRouted Mode = "routed"
	// ModeGather: the shuffle regime — misaligned partitioned sides are
	// fetched to the coordinator, which pays the network cost the paper's
	// partitioning question becomes at cluster scale, and joined locally.
	ModeGather Mode = "gather"
)

// ErrDraining is the cancel cause installed when the coordinator's drain
// grace expires with queries still running.
var ErrDraining = errors.New("cluster: coordinator draining")

// Coordinator plans and executes distributed queries over the shard fleet.
// Construct with New, serve it as an http.Handler (or call Query directly),
// end it with Drain.
type Coordinator struct {
	cfg    Config
	shards []*shard
	ring   *Ring
	mux    *http.ServeMux

	mu        sync.Mutex
	draining  bool
	inflightN int
	idleCh    chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	bg         sync.WaitGroup

	queryID  atomic.Int64
	counters struct {
		Total       atomic.Int64
		OK          atomic.Int64
		BadRequest  atomic.Int64
		Unavailable atomic.Int64
		Overloaded  atomic.Int64
		Timeout     atomic.Int64
		Canceled    atomic.Int64
		Internal    atomic.Int64
	}
	retries      atomic.Int64
	gatheredRows atomic.Int64
	modeCounts   [4]atomic.Int64 // replicated, colocated, routed, gather

	failoverAttempts atomic.Int64 // fragments moved to a later chain holder
	failoverSuccess  atomic.Int64 // fragments completed on a non-primary holder
	reroutes         atomic.Int64 // holders skipped without an attempt (Down/breaker/unmounted)
	rereplications   atomic.Int64 // slices moved to new holders to restore R
	restores         atomic.Int64 // compensating mounts dismantled after a rejoin

	// placementMu guards extras: per primary slice, the re-replicated
	// holders appended to the base chain, each tagged with the dead shard
	// it compensates so a rejoin can dismantle exactly its mounts.
	placementMu sync.Mutex
	extras      map[int][]extraReplica
}

// extraReplica is one re-replicated mount: primary slice data held by a
// shard outside the base chain, compensating for a dead chain member.
type extraReplica struct {
	shard    int // the holder
	forShard int // the Down chain member it stands in for
}

// New builds a coordinator over the configured shard fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	if len(cfg.Spec) == 0 {
		return nil, errors.New("cluster: no partitioning spec configured")
	}
	cfg.applyDefaults()
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(len(cfg.Shards), cfg.Vnodes),
		idleCh: make(chan struct{}),
		extras: make(map[int][]extraReplica),
	}
	for i, addr := range cfg.Shards {
		sh := &shard{id: i, addr: addr}
		sh.breaker.threshold = cfg.BreakerThreshold
		sh.breaker.cooloff = cfg.BreakerCooloff
		c.shards = append(c.shards, sh)
	}
	c.baseCtx, c.baseCancel = context.WithCancelCause(context.Background())
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/query", c.handleQuery)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/statsz", c.handleStatsz)
	if cfg.ProbeInterval > 0 {
		c.bg.Add(1)
		go c.prober()
	}
	return c, nil
}

func (c *Coordinator) httpClient() *http.Client {
	if c.cfg.HTTP != nil {
		return c.cfg.HTTP
	}
	return http.DefaultClient
}

// Ring exposes the router for harnesses asserting rebalance behaviour.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Broker exposes the admission broker (nil when unarbitrated).
func (c *Coordinator) Broker() *admit.Broker { return c.cfg.Broker }

// Drain gracefully stops the coordinator exactly like server.Drain: refuse
// new queries, give in-flight ones the grace window, cancel-cause the
// stragglers, stop the prober, and return whether the drain was clean.
func (c *Coordinator) Drain(grace time.Duration) bool {
	c.mu.Lock()
	alreadyIdle := false
	if !c.draining {
		c.draining = true
		if c.inflightN == 0 {
			close(c.idleCh)
			alreadyIdle = true
		}
	}
	c.mu.Unlock()

	clean := true
	if !alreadyIdle {
		timer := time.NewTimer(grace)
		select {
		case <-c.idleCh:
			timer.Stop()
		case <-timer.C:
			clean = false
			c.baseCancel(ErrDraining)
			<-c.idleCh
		}
	}
	c.baseCancel(ErrDraining)
	c.bg.Wait()
	return clean
}

// enter registers an in-flight query; it fails while draining.
func (c *Coordinator) enter() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return false
	}
	c.inflightN++
	return true
}

// leave balances enter and wakes Drain when the last query ends.
func (c *Coordinator) leave() {
	c.mu.Lock()
	c.inflightN--
	if c.draining && c.inflightN == 0 {
		close(c.idleCh)
	}
	c.mu.Unlock()
}

// Stats is one query's distributed-execution summary.
type Stats struct {
	Mode         Mode          `json:"mode"`
	Shards       int           `json:"shards"`
	Fragments    int           `json:"fragments"`
	Retries      int           `json:"retries"`
	Failovers    int           `json:"failovers,omitempty"`
	GatheredRows int64         `json:"gathered_rows,omitempty"`
	Duration     time.Duration `json:"-"`
	DurationMS   float64       `json:"duration_ms"`
}

// ColMeta describes one result column.
type ColMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Result is a merged distributed query result. Row values are int64,
// float64, or string by column type.
type Result struct {
	QueryID string
	Cols    []ColMeta
	Rows    [][]any
	Stats   Stats
}

// aliasInfo resolves one FROM entry against the spec.
type aliasInfo struct {
	alias string
	table string
	dist  TableDist
}

// resolveAliases maps the statement's FROM list onto the spec.
func (c *Coordinator) resolveAliases(stmt *sql.SelectStmt) (map[string]*aliasInfo, []*aliasInfo, error) {
	byAlias := make(map[string]*aliasInfo, len(stmt.From))
	var order []*aliasInfo
	for _, f := range stmt.From {
		d, ok := c.cfg.Spec[f.Table]
		if !ok {
			return nil, nil, fmt.Errorf("cluster: unknown table %q", f.Table)
		}
		ai := &aliasInfo{alias: f.Alias, table: f.Table, dist: d}
		if _, dup := byAlias[f.Alias]; dup {
			return nil, nil, fmt.Errorf("cluster: duplicate alias %q", f.Alias)
		}
		byAlias[f.Alias] = ai
		order = append(order, ai)
	}
	return byAlias, order, nil
}

// resolveQualifier finds the alias a column reference belongs to: its
// explicit qualifier, or the unique table whose schema carries the column.
func resolveQualifier(col sql.ColRefAST, byAlias map[string]*aliasInfo) (*aliasInfo, error) {
	if col.Qualifier != "" {
		ai := byAlias[col.Qualifier]
		if ai == nil {
			return nil, fmt.Errorf("cluster: unknown alias %q", col.Qualifier)
		}
		return ai, nil
	}
	var found *aliasInfo
	for _, ai := range byAlias {
		for _, cn := range ai.dist.Cols {
			if cn == col.Column {
				if found != nil && found != ai {
					return nil, fmt.Errorf("cluster: ambiguous column %q", col.Column)
				}
				found = ai
			}
		}
	}
	if found == nil {
		return nil, fmt.Errorf("cluster: unknown column %q", col.Column)
	}
	return found, nil
}

// chainFor builds a fragment's failover chain for one primary slice: the
// primary itself (served at its node's root /query), the R-1 ring-successor
// replicas (served under /replica/<p>), then any re-replicated extras.
func (c *Coordinator) chainFor(primary int) fragTarget {
	base := ReplicaChain(primary, c.cfg.Replication, len(c.shards))
	ft := fragTarget{primary: primary, holders: make([]holder, 0, len(base))}
	for _, s := range base {
		path := ""
		if s != primary {
			path = fmt.Sprintf("/replica/%d", primary)
		}
		ft.holders = append(ft.holders, holder{sh: c.shards[s], path: path})
	}
	c.placementMu.Lock()
	for _, e := range c.extras[primary] {
		ft.holders = append(ft.holders, holder{sh: c.shards[e.shard], path: fmt.Sprintf("/replica/%d", primary)})
	}
	c.placementMu.Unlock()
	return ft
}

// allTargets is the partitioned scatter set: one failover chain per primary
// slice. Liveness is the chain's problem now, not routing's — a scatter
// always covers every slice, and a slice with no live holder surfaces the
// typed double-fault.
func (c *Coordinator) allTargets() []fragTarget {
	out := make([]fragTarget, len(c.shards))
	for i := range c.shards {
		out[i] = c.chainFor(i)
	}
	return out
}

// replicatedTarget builds the chain of a replicated-only query: every shard
// holds the full tables, so the preferred healthy pick leads and every
// other shard is a fallback at its root path.
func (c *Coordinator) replicatedTarget() fragTarget {
	ft := fragTarget{primary: -1}
	first := c.pickHealthy()
	if first != nil {
		ft.primary = first.id
		ft.holders = append(ft.holders, holder{sh: first})
	}
	for _, sh := range c.shards {
		if first == nil || sh.id != first.id {
			ft.holders = append(ft.holders, holder{sh: sh})
		}
	}
	if ft.primary < 0 && len(ft.holders) > 0 {
		ft.primary = ft.holders[0].sh.id
	}
	return ft
}

// classify decides the distributed execution mode and, for scatter modes,
// the per-slice failover chains to touch.
func (c *Coordinator) classify(stmt *sql.SelectStmt) (Mode, []fragTarget, error) {
	byAlias, order, err := c.resolveAliases(stmt)
	if err != nil {
		return "", nil, err
	}
	var parts []*aliasInfo
	for _, ai := range order {
		if !ai.dist.Replicated() {
			parts = append(parts, ai)
		}
	}
	if len(parts) == 0 {
		ft := c.replicatedTarget()
		if len(ft.holders) == 0 {
			return ModeReplicated, nil, c.noShardErr()
		}
		return ModeReplicated, []fragTarget{ft}, nil
	}

	// Co-location: every partitioned alias's partition key must sit in one
	// equivalence class of the equality join conditions. A single
	// partitioned alias is trivially co-located; replicated sides join
	// broadcast-style wherever the scatter lands.
	if len(parts) > 1 {
		uf := newUnionFind()
		for _, cond := range stmt.Where {
			if !cond.IsJoin || cond.Op != "=" {
				continue
			}
			l, lerr := resolveQualifier(cond.Left, byAlias)
			r, rerr := resolveQualifier(cond.Right, byAlias)
			if lerr != nil || rerr != nil {
				continue
			}
			uf.union(l.alias+"."+cond.Left.Column, r.alias+"."+cond.Right.Column)
		}
		root := uf.find(parts[0].alias + "." + parts[0].dist.Key)
		for _, ai := range parts[1:] {
			if uf.find(ai.alias+"."+ai.dist.Key) != root {
				return ModeGather, nil, nil // misaligned: the shuffle regime
			}
		}
	}

	// Partition-key routing: an equality (or, for range-partitioned
	// tables, a range) predicate on a partition key prunes the scatter.
	targets := c.allTargets()
	mode := ModeColocated
	if sub := c.routedSubset(stmt, byAlias, parts); sub != nil {
		targets = sub
		mode = ModeRouted
	}
	if len(targets) == 0 {
		return mode, nil, c.noShardErr()
	}
	return mode, targets, nil
}

// routedSubset returns the slice subset a partition-key predicate pins the
// query to, or nil when no such predicate exists.
func (c *Coordinator) routedSubset(stmt *sql.SelectStmt, byAlias map[string]*aliasInfo, parts []*aliasInfo) []fragTarget {
	for _, cond := range stmt.Where {
		if cond.IsJoin || cond.IsStr {
			continue
		}
		ai, err := resolveQualifier(cond.Left, byAlias)
		if err != nil || ai.dist.Replicated() || cond.Left.Column != ai.dist.Key {
			continue
		}
		switch cond.Op {
		case "=":
			var id int
			if len(ai.dist.Bounds) > 0 {
				id = NewRangeRouter(ai.dist.Bounds).Owner(cond.Num)
			} else {
				id = c.ring.OwnerKey(cond.Num)
			}
			return []fragTarget{c.chainFor(id)}
		case "between":
			if len(ai.dist.Bounds) == 0 {
				continue // hash placement cannot prune a range
			}
			ids := NewRangeRouter(ai.dist.Bounds).Owners(cond.Num, cond.Num2)
			out := make([]fragTarget, len(ids))
			for i, id := range ids {
				out[i] = c.chainFor(id)
			}
			return out
		}
	}
	return nil
}

// pickHealthy chooses one shard for a replicated-only query, preferring Up
// over Degraded and spreading load round-robin.
func (c *Coordinator) pickHealthy() *shard {
	now := time.Now()
	start := int(c.queryID.Load())
	var degraded *shard
	for i := 0; i < len(c.shards); i++ {
		sh := c.shards[(start+i)%len(c.shards)]
		if !sh.available(now) {
			continue
		}
		if sh.State() == Up {
			return sh
		}
		if degraded == nil {
			degraded = sh
		}
	}
	return degraded
}

// noShardErr is the typed failure when routing finds no usable shard.
func (c *Coordinator) noShardErr() error {
	return &ShardUnavailableError{
		Shard: -1, Addr: "(none)", RetryAfter: c.unavailableRetryAfter(),
		Err: errors.New("no healthy shard"),
	}
}

// unavailableRetryAfter is the honest Retry-After of a double-fault: with
// the prober running, a recovered shard is re-marked reachable within one
// probe round plus its timeout — any sooner retry would hit the same Down
// verdict. Without a prober the breaker cooloff is the recheck horizon.
func (c *Coordinator) unavailableRetryAfter() time.Duration {
	if c.cfg.ProbeInterval > 0 {
		return c.cfg.ProbeInterval + c.cfg.ProbeTimeout
	}
	return c.cfg.BreakerCooloff
}

// Query plans and executes one distributed query. qid may be empty (one is
// generated); it is propagated to every fragment for cross-node log
// correlation. Admission, when configured, spans the whole distributed
// execution.
func (c *Coordinator) Query(ctx context.Context, sqlText, qid string) (*Result, error) {
	// Drain participation lives here, not only in the HTTP handler, so
	// embedded (in-process) callers are counted in-flight and cancelled by
	// an unclean drain too.
	if !c.enter() {
		return nil, ErrDraining
	}
	defer c.leave()
	qctx, qcancel := context.WithCancelCause(ctx)
	defer qcancel(nil)
	stop := context.AfterFunc(c.baseCtx, func() { qcancel(context.Cause(c.baseCtx)) })
	defer stop()
	ctx = qctx

	if qid == "" {
		qid = fmt.Sprintf("c%d", c.queryID.Add(1))
	} else {
		c.queryID.Add(1)
	}
	start := time.Now()

	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}

	var rsv *admit.Reservation
	if c.cfg.Broker != nil {
		var actx context.Context
		rsv, actx, err = c.cfg.Broker.Admit(ctx, c.cfg.MemBudget)
		if err != nil {
			return nil, err
		}
		defer rsv.Release()
		ctx = actx
	}

	mode, targets, err := c.classify(stmt)
	if err != nil {
		return nil, err
	}
	var res *Result
	switch {
	case mode == ModeGather:
		res, err = c.gatherExecute(ctx, stmt, qid, rsv)
	case len(targets) == 1:
		// One shard holds everything the query needs (all-replicated, or
		// routed to the partition key's owner): run it whole, no merge.
		res, err = c.passthrough(ctx, stmt, targets[0], qid)
	default:
		res, err = c.scatterMerge(ctx, stmt, targets, qid)
		if errors.Is(err, errNotMergeable) {
			// A shape the merge cannot reassemble (e.g. ORDER BY a column
			// outside the output): fall back to fetching rows and executing
			// locally, which supports everything single-node SQL does.
			mode = ModeGather
			res, err = c.gatherExecute(ctx, stmt, qid, rsv)
		}
	}
	if err != nil {
		return nil, err
	}
	res.QueryID = qid
	res.Stats.Mode = mode
	res.Stats.Duration = time.Since(start)
	res.Stats.DurationMS = float64(res.Stats.Duration.Microseconds()) / 1000
	c.modeCounts[modeIndex(mode)].Add(1)
	return res, nil
}

func modeIndex(m Mode) int {
	switch m {
	case ModeReplicated:
		return 0
	case ModeColocated:
		return 1
	case ModeRouted:
		return 2
	}
	return 3
}

// scatterMerge runs the co-located/broadcast/routed path: the (possibly
// avg-rewritten) fragment statement goes to every target slice's chain and
// the partial results merge on the coordinator.
func (c *Coordinator) scatterMerge(ctx context.Context, stmt *sql.SelectStmt, targets []fragTarget, qid string) (*Result, error) {
	mp, err := buildMerge(stmt)
	if err != nil {
		return nil, err
	}
	frags, err := c.scatter(ctx, targets, mp.fragSQL, qid)
	if err != nil {
		return nil, err
	}
	res, err := mp.merge(frags)
	if err != nil {
		return nil, err
	}
	res.Stats.Shards = len(targets)
	for _, fr := range frags {
		res.Stats.Fragments += fr.tries
		res.Stats.Retries += fr.tries - 1
		if fr.failedOver {
			res.Stats.Failovers++
		}
	}
	return res, nil
}

// passthrough runs the whole statement on one slice's chain and returns its
// rows unmerged — correct whenever that slice holds every row the query can
// touch. Printing from the AST (rather than echoing the client's text)
// keeps the fragment layer the single wire entry point.
func (c *Coordinator) passthrough(ctx context.Context, stmt *sql.SelectStmt, ft fragTarget, qid string) (*Result, error) {
	fr, err := c.runFragment(ctx, ft, printStmt(stmt, fragOpts{}), qid)
	if err != nil {
		return nil, err
	}
	cols := make([]ColMeta, len(fr.cols))
	for i, cm := range fr.cols {
		cols[i] = ColMeta{Name: cm.Name, Type: cm.Type}
	}
	st := Stats{Shards: 1, Fragments: fr.tries, Retries: fr.tries - 1}
	if fr.failedOver {
		st.Failovers = 1
	}
	return &Result{Cols: cols, Rows: fr.rows, Stats: st}, nil
}

// unionFind is a tiny union-find over qualified column names.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// execOpts builds the local-execution options of the gather path.
func (c *Coordinator) execOpts(rsv *admit.Reservation) plan.Options {
	return plan.Options{
		Workers: c.cfg.Workers, Algo: plan.BHJ, Core: c.cfg.Core,
		MemBudget: c.cfg.MemBudget, SpillDir: c.cfg.SpillDir,
		Reservation: rsv,
	}
}

// shardIDs names a target set for stats/logs.
func shardIDs(targets []fragTarget) []int {
	out := make([]int, len(targets))
	for i, ft := range targets {
		out[i] = ft.primary
	}
	sort.Ints(out)
	return out
}
