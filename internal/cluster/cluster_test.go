package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/tpch"
)

// testCat is the shared TPC-H corpus (sf 0.01: 60k lineitem, 15k orders).
var testCat = sync.OnceValue(func() sql.Catalog { return tpch.ServeCatalog(0.01) })

// clusterHarness is a full local cluster: N shard servers, each holding its
// partition of the TPC-H catalog, and a coordinator over them. Every test
// drains everything and checks for leaked goroutines.
type clusterHarness struct {
	coord *Coordinator
	spec  Spec
	srvs  []*server.Server
	ts    []*httptest.Server
}

// newCluster boots the harness. mut, when non-nil, adjusts the coordinator
// config before New (the default disables the prober and uses fast retries).
func newCluster(t *testing.T, nShards int, mut func(*Config)) *clusterHarness {
	t.Helper()
	baseline := runtime.NumGoroutine()
	cat := testCat()
	spec, err := TPCHSpec(cat)
	if err != nil {
		t.Fatalf("TPCHSpec: %v", err)
	}
	ring := NewRing(nShards, 0)
	h := &clusterHarness{spec: spec}
	addrs := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		scat := PartitionCatalog(cat, spec, ring, i)
		srv := server.New(server.Config{Workers: 1}, scat)
		ts := httptest.NewServer(srv)
		h.srvs = append(h.srvs, srv)
		h.ts = append(h.ts, ts)
		addrs[i] = ts.URL
	}
	cfg := Config{
		Shards: addrs, Spec: spec,
		ProbeInterval:   -1, // tests drive health directly unless overridden
		FragmentTimeout: 10 * time.Second,
		MaxRetries:      3,
		RetryBase:       time.Millisecond,
		RetryCap:        20 * time.Millisecond,
		BreakerCooloff:  100 * time.Millisecond,
		Workers:         1,
	}
	if mut != nil {
		mut(&cfg)
	}
	h.coord, err = New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		h.coord.Drain(10 * time.Second)
		for _, ts := range h.ts {
			ts.Close()
		}
		for _, srv := range h.srvs {
			srv.Drain(10 * time.Second)
		}
		waitGoroutines(t, baseline)
	})
	return h
}

// killShard stops shard i's server without telling the coordinator.
func (h *clusterHarness) killShard(i int) {
	h.ts[i].CloseClientConnections()
	h.ts[i].Close()
	h.srvs[i].Drain(5 * time.Second)
}

// restartShard boots a fresh server for shard i's partition on a new port
// and repoints the coordinator at it.
func (h *clusterHarness) restartShard(t *testing.T, i int) {
	t.Helper()
	cat := testCat()
	ring := NewRing(len(h.ts), 0)
	srv := server.New(server.Config{Workers: 1}, PartitionCatalog(cat, h.spec, ring, i))
	ts := httptest.NewServer(srv)
	h.srvs[i], h.ts[i] = srv, ts
	if err := h.coord.SetShardAddr(i, ts.URL); err != nil {
		t.Fatalf("SetShardAddr: %v", err)
	}
}

// waitGoroutines polls until the goroutine count returns to the baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// singleNode runs the query on the undivided catalog — the reference result.
func singleNode(t *testing.T, query string) *Result {
	t.Helper()
	res, err := sql.Run(testCat(), query, plan.Options{Workers: 1})
	if err != nil {
		t.Fatalf("single-node %q: %v", query, err)
	}
	return execToResult(res)
}

// sortRows orders a row set canonically for comparison.
func sortRows(rows [][]any) {
	sort.Slice(rows, func(a, b int) bool {
		return fmt.Sprint(rows[a]) < fmt.Sprint(rows[b])
	})
}

// rowsMatch compares two row sets value-by-value with float tolerance (the
// merged partial sums add in a different order than a single node's).
func rowsMatch(t *testing.T, got, want [][]any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width: got %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			wf, wok := want[i][j].(float64)
			gf, gok := got[i][j].(float64)
			if wok && gok {
				if diff := math.Abs(wf - gf); diff > 1e-6*math.Max(1, math.Abs(wf)) {
					t.Fatalf("row %d col %d: got %v, want %v", i, j, gf, wf)
				}
				continue
			}
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d: got %#v, want %#v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestRingDeterministicAndBalanced: independently built rings agree on every
// placement (that is what lets shards partition without coordination), and
// no shard owns a wildly outsized key share.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := NewRing(4, 0), NewRing(4, 0)
	counts := make([]int, 4)
	for k := int64(0); k < 20000; k++ {
		oa, ob := a.OwnerKey(k), b.OwnerKey(k)
		if oa != ob {
			t.Fatalf("rings disagree on key %d: %d vs %d", k, oa, ob)
		}
		counts[oa]++
	}
	for s, n := range counts {
		if n < 2500 || n > 8000 {
			t.Fatalf("shard %d owns %d of 20000 keys — ring badly imbalanced %v", s, n, counts)
		}
	}
}

// TestRingRebalance: adding and removing shards bumps the version and only
// reroutes a bounded share of the key space.
func TestRingRebalance(t *testing.T) {
	r := NewRing(3, 0)
	before := make(map[int64]int)
	for k := int64(0); k < 5000; k++ {
		before[k] = r.OwnerKey(k)
	}
	v := r.Version()
	r.Add(3)
	if r.Version() != v+1 {
		t.Fatalf("Add did not bump version")
	}
	moved := 0
	for k := int64(0); k < 5000; k++ {
		if r.OwnerKey(k) != before[k] {
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of keys to the new shard, not ~3/4.
	if moved == 0 || moved > 2500 {
		t.Fatalf("rebalance moved %d of 5000 keys", moved)
	}
	r.Remove(3)
	for k := int64(0); k < 5000; k++ {
		if r.OwnerKey(k) != before[k] {
			t.Fatalf("remove did not restore key %d", k)
		}
	}
	if got := r.Shards(); len(got) != 3 {
		t.Fatalf("shards after remove: %v", got)
	}
}

// TestRangeRouter: bounds routing, clamping, and range pruning.
func TestRangeRouter(t *testing.T) {
	rr := NewRangeRouter([]int64{100, 200, 300})
	cases := map[int64]int{50: 0, 100: 0, 101: 1, 200: 1, 250: 2, 300: 2, 999: 2}
	for k, want := range cases {
		if got := rr.Owner(k); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", k, got, want)
		}
	}
	if got := rr.Owners(120, 260); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Owners(120,260) = %v", got)
	}
	if got := rr.Owners(50, 999); len(got) != 3 {
		t.Fatalf("Owners(50,999) = %v", got)
	}
}

// TestPartitionCoversEveryRowOnce: the shard partitions of a table are
// disjoint and their union is the table.
func TestPartitionCoversEveryRowOnce(t *testing.T) {
	cat := testCat()
	spec, err := TPCHSpec(cat)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(4, 0)
	for _, name := range []string{"lineitem", "orders", "customer"} {
		src := cat[name]
		total := 0
		keys := map[int64]int{}
		keyCol := spec[name].Key
		for s := 0; s < 4; s++ {
			part := PartitionTable(src, spec[name], ring, s)
			total += part.NumRows()
			for _, k := range part.Int64Col(keyCol) {
				if owner, seen := keys[k]; seen && owner != s {
					t.Fatalf("%s key %d on both shard %d and %d", name, k, owner, s)
				}
				keys[k] = s
			}
		}
		if total != src.NumRows() {
			t.Fatalf("%s: partitions hold %d rows, table has %d", name, total, src.NumRows())
		}
	}
	// Replicated tables are shared whole.
	if got := PartitionTable(cat["nation"], spec["nation"], ring, 2); got != cat["nation"] {
		t.Fatal("replicated table was copied, not shared")
	}
}

// TestPrintStmtRoundTrip: regenerated SQL re-parses to the same regenerated
// SQL — the fragment fabric depends on it.
func TestPrintStmtRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT count(*) AS n FROM lineitem`,
		`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 5 LIMIT 10`,
		`SELECT l_returnflag, sum(l_quantity) AS q, avg(l_extendedprice) AS a FROM lineitem GROUP BY l_returnflag ORDER BY q DESC LIMIT 2`,
		`SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND o.o_orderstatus = 'F'`,
		`SELECT o_orderpriority, count(*) AS n FROM orders WHERE o_orderpriority LIKE '1%' GROUP BY o_orderpriority`,
		`SELECT count(*) AS n FROM lineitem WHERE l_shipmode IN ('AIR', 'RAIL') AND l_quantity BETWEEN 10 AND 20`,
	}
	for _, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		printed := printStmt(stmt, fragOpts{})
		stmt2, err := sql.Parse(printed)
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		if again := printStmt(stmt2, fragOpts{}); again != printed {
			t.Fatalf("round trip diverged:\n  first:  %s\n  second: %s", printed, again)
		}
	}
}

// differentialQueries cover every distributed mode and merge shape.
var differentialQueries = []struct {
	name, query string
	mode        Mode
}{
	{"global_count", `SELECT count(*) AS n FROM lineitem`, ModeColocated},
	{"filtered_sums", `SELECT sum(l_extendedprice) AS rev, count(*) AS n FROM lineitem WHERE l_quantity < 24`, ModeColocated},
	{"min_max_avg", `SELECT min(l_quantity) AS mn, max(l_quantity) AS mx, avg(l_extendedprice) AS av FROM lineitem`, ModeColocated},
	{"grouped_avg", `SELECT l_returnflag, count(*) AS n, sum(l_quantity) AS qty, avg(l_quantity) AS aq FROM lineitem GROUP BY l_returnflag`, ModeColocated},
	{"colocated_join", `SELECT count(*) AS n FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey`, ModeColocated},
	{"broadcast_join", `SELECT count(*) AS n FROM lineitem l, part p WHERE l.l_partkey = p.p_partkey`, ModeColocated},
	{"shuffle_join", `SELECT o_orderpriority, count(*) AS n FROM orders o, customer c WHERE o.o_custkey = c.c_custkey GROUP BY o_orderpriority`, ModeGather},
	{"replicated_only", `SELECT n_name, count(*) AS n FROM supplier s, nation n WHERE s.s_nationkey = n.n_nationkey GROUP BY n_name`, ModeReplicated},
	{"routed_point", `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 777`, ModeRouted},
	{"order_by_alias", `SELECT l_returnflag, sum(l_quantity) AS q FROM lineitem GROUP BY l_returnflag ORDER BY q DESC LIMIT 2`, ModeColocated},
	{"plain_topk", `SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 50000 ORDER BY o_orderkey LIMIT 50`, ModeColocated},
	{"empty_global_agg", `SELECT count(*) AS n, min(l_shipmode) AS m, max(l_quantity) AS mx FROM lineitem WHERE l_orderkey = -5`, ModeRouted},
	{"empty_grouped", `SELECT l_returnflag, count(*) AS n FROM lineitem WHERE l_quantity < 0 GROUP BY l_returnflag`, ModeColocated},
	{"three_way_colocated", `SELECT count(*) AS n FROM lineitem l, orders o, part p WHERE l.l_orderkey = o.o_orderkey AND l.l_partkey = p.p_partkey`, ModeColocated},
	{"shuffle_select", `SELECT c_name, o_totalprice FROM orders o, customer c WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 400000`, ModeGather},
}

// TestDistributedMatchesSingleNode is the core differential: every query, on
// a 4-shard cluster, must produce exactly the rows the undivided catalog
// produces — and through the planned mode.
func TestDistributedMatchesSingleNode(t *testing.T) {
	h := newCluster(t, 4, nil)
	for _, tc := range differentialQueries {
		t.Run(tc.name, func(t *testing.T) {
			res, err := h.coord.Query(context.Background(), tc.query, "")
			if err != nil {
				t.Fatalf("cluster query: %v", err)
			}
			if res.Stats.Mode != tc.mode {
				t.Errorf("mode = %s, want %s", res.Stats.Mode, tc.mode)
			}
			want := singleNode(t, tc.query)
			got := res.Rows
			sortRows(got)
			sortRows(want.Rows)
			rowsMatch(t, got, want.Rows)
		})
	}
}

// TestDistributedOnOneShard: a single-shard "cluster" must also agree — the
// degenerate ring places everything on shard 0.
func TestDistributedOnOneShard(t *testing.T) {
	h := newCluster(t, 1, nil)
	for _, tc := range differentialQueries[:6] {
		res, err := h.coord.Query(context.Background(), tc.query, "")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := singleNode(t, tc.query)
		sortRows(res.Rows)
		sortRows(want.Rows)
		rowsMatch(t, res.Rows, want.Rows)
	}
}

// TestRoutedQueryTouchesOneShard: a partition-key point query must dispatch
// exactly one fragment.
func TestRoutedQueryTouchesOneShard(t *testing.T) {
	h := newCluster(t, 4, nil)
	res, err := h.coord.Query(context.Background(),
		`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 1234`, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != ModeRouted || res.Stats.Shards != 1 || res.Stats.Fragments != 1 {
		t.Fatalf("stats = %+v, want routed single-shard single-fragment", res.Stats)
	}
	want := singleNode(t, `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 1234`)
	sortRows(res.Rows)
	sortRows(want.Rows)
	rowsMatch(t, res.Rows, want.Rows)
}

// TestBadStatementIs400: statement errors come back as 400s through the
// HTTP front, not as internal errors.
func TestBadStatementIs400(t *testing.T) {
	h := newCluster(t, 2, nil)
	ts := httptest.NewServer(h.coord)
	defer ts.Close()
	cl := &server.Client{Base: ts.URL}
	for _, q := range []string{"SELEC nonsense", "SELECT count(*) AS n FROM nosuch"} {
		_, err := cl.Query(context.Background(), q)
		var re *server.RemoteError
		if !errors.As(err, &re) || re.Status != 400 {
			t.Fatalf("query %q: err = %v, want HTTP 400", q, err)
		}
	}
}

// TestWireCompatibleWithServerClient: the coordinator speaks the server's
// dialect — the stock client runs plain and streamed queries against it.
func TestWireCompatibleWithServerClient(t *testing.T) {
	h := newCluster(t, 3, nil)
	ts := httptest.NewServer(h.coord)
	defer ts.Close()
	cl := &server.Client{Base: ts.URL}

	qr, err := cl.Query(context.Background(), `SELECT count(*) AS n FROM lineitem`)
	if err != nil {
		t.Fatalf("client query: %v", err)
	}
	want := singleNode(t, `SELECT count(*) AS n FROM lineitem`)
	if len(qr.Rows) != 1 || fmt.Sprint(qr.Rows[0][0]) != fmt.Sprint(want.Rows[0][0]) {
		t.Fatalf("rows = %v, want %v", qr.Rows, want.Rows)
	}
	if qr.QueryID == "" {
		t.Fatal("no query id")
	}

	var streamed int
	tr, err := cl.QueryStream(context.Background(),
		`SELECT l_orderkey FROM lineitem WHERE l_quantity < 3`,
		func(row []any) error { streamed++; return nil })
	if err != nil {
		t.Fatalf("client stream: %v", err)
	}
	if tr.RowCount != streamed {
		t.Fatalf("trailer row_count %d, streamed %d", tr.RowCount, streamed)
	}
	if err := cl.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
}

// TestMergeSkipsEmptyShardSentinels: a unit check that the merge drops the
// default rows of shards whose partition matched nothing (their min/max
// sentinels must not leak into the answer).
func TestMergeSkipsEmptyShardSentinels(t *testing.T) {
	stmt, err := sql.Parse(`SELECT count(*) AS n, min(l_quantity) AS mn, max(l_quantity) AS mx, avg(l_quantity) AS av FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := buildMerge(stmt)
	if err != nil {
		t.Fatal(err)
	}
	cols := []colMeta{{"n", "INT64"}, {"mn", "INT64"}, {"mx", "INT64"}, {"av", "INT64"}, {avgCntAlias, "INT64"}}
	frags := []*fragResult{
		{cols: cols, rows: [][]any{{int64(2), int64(5), int64(9), int64(14), int64(2)}}, tries: 1},
		// Empty shard: count 0, sentinel min/max.
		{cols: cols, rows: [][]any{{int64(0), int64(math.MaxInt64), int64(math.MinInt64), int64(0), int64(0)}}, tries: 1},
		{cols: cols, rows: [][]any{{int64(1), int64(7), int64(7), int64(7), int64(1)}}, tries: 1},
	}
	res, err := mp.merge(frags)
	if err != nil {
		t.Fatal(err)
	}
	wantRow := []any{int64(3), int64(5), int64(9), float64(7)}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	rowsMatch(t, res.Rows, [][]any{wantRow})
	if res.Cols[3].Type != storage.Float64.String() {
		t.Fatalf("avg column type = %s, want FLOAT64", res.Cols[3].Type)
	}
}
