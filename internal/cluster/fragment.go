package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/storage"
)

// Fault sites of the inter-node fabric, armable by tests and by joind
// -inject: a refused connection, a mid-stream hangup, a shard slow enough
// to trip the fragment deadline, and a router acting on a stale ring after
// a rebalance.
var _ = faultinject.Register(
	"cluster.fragment.connect",
	"cluster.fragment.stream",
	"cluster.fragment.slow",
	"cluster.ring.stale",
)

// colMeta mirrors the server's column descriptor on the wire.
type colMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// fragResult is one fragment's fully collected rows. Values are decoded by
// declared column type: INT64/INT32/DATE/BOOL → int64, FLOAT64 → float64,
// STRING → string (json.Number parsing, so 64-bit keys survive).
type fragResult struct {
	shard      *shard
	cols       []colMeta
	rows       [][]any
	tries      int
	failedOver bool // completed on a holder other than the primary
}

// holder is one place a fragment's rows can be read: a shard plus the URL
// path prefix selecting the right catalog on it — "" for the shard's own
// primary slice, "/replica/<p>" for a replica it hosts.
type holder struct {
	sh   *shard
	path string
}

// fragTarget is one fragment's full failover chain: the primary slice id
// and every holder that can serve it, in preference order (primary first,
// then ring-successor replicas, then any re-replicated extras). Fragments
// are idempotent reads keyed by the primary slice id, so re-executing on a
// later holder after discarding a partial stream cannot double-count rows —
// exactly one holder's complete row set ever reaches the merge.
type fragTarget struct {
	primary int
	holders []holder
}

// retryableStatus reports whether an HTTP status is worth another attempt:
// overload and drain (429/503) clear with backoff, timeouts (408) may be
// transient load, and 5xx may be a shard mid-crash. 4xx means the fragment
// itself is wrong and retrying cannot help.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusRequestTimeout ||
		code >= 500
}

// fragError is an attempt failure plus its retry classification.
type fragError struct {
	err        error
	retryable  bool
	retryAfter time.Duration // server-suggested backoff floor, if any
	skipHolder bool          // replica not mounted here: move down the chain, no breaker penalty
	staleRing  bool          // node rejected our ring version as stale (409)
	ringVer    int64         // the node's newer version, when staleRing
}

func (e *fragError) Error() string { return e.err.Error() }

// fragmentRequest mirrors the server's queryRequest body.
type fragmentRequest struct {
	SQL    string `json:"sql"`
	Stream bool   `json:"stream"`
}

// attemptFragment issues one fragment RPC against a holder (base address +
// replica path) and streams the NDJSON response into memory. ctx must
// already carry the fragment deadline. The error, when non-nil, is always a
// *fragError.
func (c *Coordinator) attemptFragment(ctx context.Context, addr, path, fsql, qid string) ([]colMeta, [][]any, error) {
	if err := faultinject.ErrAt("cluster.fragment.connect"); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("connect %s: %w", addr, err), retryable: true}
	}
	faultinject.Hit("cluster.fragment.slow")
	body, _ := json.Marshal(fragmentRequest{SQL: fsql, Stream: true})
	url := addr + path + "/query"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, &fragError{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	req.Header.Set("X-Query-ID", qid)
	req.Header.Set("X-Ring-Version", strconv.FormatInt(c.ring.Version(), 10))
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport-level failure: refused, reset, or the fragment
		// deadline. The parent query context deciding it is different —
		// the caller checks that before classifying.
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", url, err), retryable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		fe := &fragError{
			err:       fmt.Errorf("fragment %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg)),
			retryable: retryableStatus(resp.StatusCode),
		}
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
			fe.retryAfter = time.Duration(secs) * time.Second
		}
		switch resp.StatusCode {
		case http.StatusNotFound:
			if path != "" {
				// The replica is not mounted on this node — the chain is
				// mid-re-replication or our view is behind. Not the shard's
				// fault; skip down the chain without a breaker penalty.
				fe.skipHolder = true
			}
		case http.StatusConflict:
			// The node has seen a newer placement than the version we sent.
			// Adopt it and retry immediately: the re-resolved chain is valid.
			fe.retryable = true
			fe.staleRing = true
			var envelope struct {
				RingVersion int64 `json:"ring_version"`
			}
			if json.Unmarshal(msg, &envelope) == nil {
				fe.ringVer = envelope.RingVersion
			}
		}
		return nil, nil, fe
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: empty stream: %w", url, sc.Err()), retryable: true}
	}
	var hdr struct {
		Cols []colMeta `json:"cols"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: bad stream header: %w", url, err)}
	}
	var rows [][]any
	sawTrailer := false
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '{' {
			sawTrailer = true
			break
		}
		n++
		if n%64 == 0 {
			if err := faultinject.ErrAt("cluster.fragment.stream"); err != nil {
				return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", url, err), retryable: true}
			}
		}
		row, err := decodeRow(line, hdr.Cols)
		if err != nil {
			return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", url, err)}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: mid-stream: %w", url, err), retryable: true}
	}
	if !sawTrailer {
		// The shard died between the last row and the trailer; without the
		// trailer the row set cannot be trusted complete.
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: stream ended without trailer", url), retryable: true}
	}
	return hdr.Cols, rows, nil
}

// decodeRow parses one NDJSON row array into typed values.
func decodeRow(line []byte, cols []colMeta) ([]any, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var raw []any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("bad stream row: %w", err)
	}
	if len(raw) != len(cols) {
		return nil, fmt.Errorf("row has %d values, want %d", len(raw), len(cols))
	}
	row := make([]any, len(raw))
	for i, v := range raw {
		cv, err := coerce(v, cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", cols[i].Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// coerce converts a decoded JSON value to the column's Go representation.
func coerce(v any, typ string) (any, error) {
	switch typ {
	case storage.Float64.String():
		switch n := v.(type) {
		case json.Number:
			return n.Float64()
		case float64:
			return n, nil
		}
	case storage.String.String():
		if s, ok := v.(string); ok {
			return s, nil
		}
	default: // INT64, INT32, DATE, BOOL
		switch n := v.(type) {
		case json.Number:
			return n.Int64()
		case float64:
			return int64(n), nil
		}
	}
	return nil, fmt.Errorf("unexpected %T for %s", v, typ)
}

// runFragment executes one fragment with the full robustness ladder across
// its holder chain: per-attempt deadline, jittered exponential backoff, and
// breaker consultation at each holder; when a holder is condemned (prober
// Down, breaker open, replica unmounted) or exhausts its retry budget, the
// partial stream is discarded and the fragment re-executes whole on the
// next holder — transparent failover. Fragments are read-only and therefore
// always idempotent; exactly one holder's complete rows are returned, so a
// mid-stream death can never double-count. A nil error means the rows are
// complete; the typed alternative is *ShardUnavailableError — every holder
// down, the double-fault — or the parent context's cause.
func (c *Coordinator) runFragment(ctx context.Context, ft fragTarget, fsql, qid string) (*fragResult, error) {
	var lastErr error
	tries := 0
	for hi, h := range ft.holders {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		sh := h.sh
		if hi > 0 {
			c.failoverAttempts.Add(1)
		}
		if sh.State() == Down || !sh.breaker.allow(time.Now()) {
			// Fail-fast reroute: the prober or breaker already condemned
			// this holder; don't burn the retry budget proving it again.
			sh.failures.Add(1)
			c.reroutes.Add(1)
			if lastErr == nil {
				lastErr = fmt.Errorf("shard %d %s, breaker open", sh.id, sh.State())
			}
			continue
		}
		fr, err := c.holderAttempts(ctx, sh, h.path, fsql, qid, &tries)
		if err == nil {
			fr.tries = tries
			if hi > 0 {
				c.failoverSuccess.Add(1)
				sh.failoversServed.Add(1)
				fr.failedOver = true
			}
			return fr, nil
		}
		var fe *fragError
		if !errors.As(err, &fe) {
			// Parent context cause (client gone, drain, deadline) — not a
			// holder failure; no further holder can help.
			return nil, err
		}
		lastErr = fe.err
		if fe.skipHolder {
			// Replica not mounted here: reroute down the chain, the holder
			// itself is healthy.
			c.reroutes.Add(1)
			continue
		}
		if !fe.retryable {
			sh.failures.Add(1)
			return nil, fe.err
		}
		sh.failures.Add(1) // this holder exhausted its budget; fail over
	}
	return nil, &ShardUnavailableError{
		Shard: ft.primary, Addr: c.shards[ft.primary].Addr(),
		Attempts: tries, Replicas: len(ft.holders) - 1,
		RetryAfter: c.unavailableRetryAfter(), Err: lastErr,
	}
}

// holderAttempts runs the per-holder retry ladder: up to MaxRetries
// re-dispatches with jittered backoff against one holder. The returned
// error is a *fragError when the holder failed (retryable = budget
// exhausted on transient errors; skipHolder = replica unmounted) and the
// parent context's cause when the query itself died.
func (c *Coordinator) holderAttempts(ctx context.Context, sh *shard, path, fsql, qid string, tries *int) (*fragResult, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		if attempt > 0 && (sh.State() == Down || !sh.breaker.allow(time.Now())) {
			// The holder was condemned mid-ladder; hand the fragment back so
			// the chain can move on instead of sleeping out the budget here.
			break
		}
		addr := sh.Addr()
		if faultinject.ErrAt("cluster.ring.stale") != nil {
			// A router that missed a rebalance dispatches to the shard's
			// previous address; the retry ladder re-resolves and recovers.
			sh.mu.Lock()
			if sh.prevAddr != "" {
				addr = sh.prevAddr
			}
			sh.mu.Unlock()
		}
		sh.fragments.Add(1)
		*tries++
		if attempt > 0 {
			sh.retries.Add(1)
			c.retries.Add(1)
		}
		actx := ctx
		var cancel context.CancelFunc
		if c.cfg.FragmentTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.cfg.FragmentTimeout)
		}
		aqid := fmt.Sprintf("%s.s%d.a%d", qid, sh.id, attempt)
		cols, rows, err := c.attemptFragment(actx, addr, path, fsql, aqid)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			sh.breaker.ok()
			return &fragResult{shard: sh, cols: cols, rows: rows}, nil
		}
		if perr := context.Cause(ctx); perr != nil {
			// The parent query died — not the shard's fault; don't punish
			// the breaker.
			return nil, perr
		}
		fe := &fragError{err: err}
		errors.As(err, &fe)
		lastErr = fe.err
		if fe.skipHolder {
			return nil, fe
		}
		if fe.staleRing && fe.ringVer > 0 {
			// Adopt the node's newer placement so the next attempt (and
			// every later fragment) carries a current version.
			c.ring.BumpTo(fe.ringVer)
		}
		sh.breaker.fail(time.Now())
		if !fe.retryable {
			return nil, fe
		}
		if attempt == c.cfg.MaxRetries {
			break
		}
		if !c.sleepBackoff(ctx, attempt, fe.retryAfter) {
			return nil, context.Cause(ctx)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard %d %s, breaker open", sh.id, sh.State())
	}
	return nil, &fragError{err: lastErr, retryable: true}
}

// sleepBackoff waits base·2^attempt with ±50% jitter (capped, floored at a
// server-suggested Retry-After). Returns false if the context died first.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int, floor time.Duration) bool {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// scatter runs the same fragment on every listed target concurrently, each
// walking its own failover chain. The first fatal error cancel-causes the
// rest; the goroutines are always joined before return, so a failed scatter
// leaks nothing.
func (c *Coordinator) scatter(ctx context.Context, targets []fragTarget, fsql, qid string) ([]*fragResult, error) {
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	results := make([]*fragResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, ft := range targets {
		wg.Add(1)
		go func(i int, ft fragTarget) {
			defer wg.Done()
			fr, err := c.runFragment(sctx, ft, fsql, fmt.Sprintf("%s.f%d", qid, i))
			if err != nil {
				errs[i] = err
				cancel(err)
				return
			}
			results[i] = fr
		}(i, ft)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A sibling may have been cancelled by the parent between our checks.
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	return results, nil
}
