package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/storage"
)

// Fault sites of the inter-node fabric, armable by tests and by joind
// -inject: a refused connection, a mid-stream hangup, a shard slow enough
// to trip the fragment deadline, and a router acting on a stale ring after
// a rebalance.
var _ = faultinject.Register(
	"cluster.fragment.connect",
	"cluster.fragment.stream",
	"cluster.fragment.slow",
	"cluster.ring.stale",
)

// colMeta mirrors the server's column descriptor on the wire.
type colMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// fragResult is one fragment's fully collected rows. Values are decoded by
// declared column type: INT64/INT32/DATE/BOOL → int64, FLOAT64 → float64,
// STRING → string (json.Number parsing, so 64-bit keys survive).
type fragResult struct {
	shard *shard
	cols  []colMeta
	rows  [][]any
	tries int
}

// retryableStatus reports whether an HTTP status is worth another attempt:
// overload and drain (429/503) clear with backoff, timeouts (408) may be
// transient load, and 5xx may be a shard mid-crash. 4xx means the fragment
// itself is wrong and retrying cannot help.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusRequestTimeout ||
		code >= 500
}

// fragError is an attempt failure plus its retry classification.
type fragError struct {
	err        error
	retryable  bool
	retryAfter time.Duration // server-suggested backoff floor, if any
}

func (e *fragError) Error() string { return e.err.Error() }

// fragmentRequest mirrors the server's queryRequest body.
type fragmentRequest struct {
	SQL    string `json:"sql"`
	Stream bool   `json:"stream"`
}

// attemptFragment issues one fragment RPC against addr and streams the
// NDJSON response into memory. ctx must already carry the fragment
// deadline. The error, when non-nil, is always a *fragError.
func (c *Coordinator) attemptFragment(ctx context.Context, addr, fsql, qid string) ([]colMeta, [][]any, error) {
	if err := faultinject.ErrAt("cluster.fragment.connect"); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("connect %s: %w", addr, err), retryable: true}
	}
	faultinject.Hit("cluster.fragment.slow")
	body, _ := json.Marshal(fragmentRequest{SQL: fsql, Stream: true})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, nil, &fragError{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	req.Header.Set("X-Query-ID", qid)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport-level failure: refused, reset, or the fragment
		// deadline. The parent query context deciding it is different —
		// the caller checks that before classifying.
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", addr, err), retryable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		fe := &fragError{
			err:       fmt.Errorf("fragment %s: HTTP %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg)),
			retryable: retryableStatus(resp.StatusCode),
		}
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
			fe.retryAfter = time.Duration(secs) * time.Second
		}
		return nil, nil, fe
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: empty stream: %w", addr, sc.Err()), retryable: true}
	}
	var hdr struct {
		Cols []colMeta `json:"cols"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: bad stream header: %w", addr, err)}
	}
	var rows [][]any
	sawTrailer := false
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '{' {
			sawTrailer = true
			break
		}
		n++
		if n%64 == 0 {
			if err := faultinject.ErrAt("cluster.fragment.stream"); err != nil {
				return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", addr, err), retryable: true}
			}
		}
		row, err := decodeRow(line, hdr.Cols)
		if err != nil {
			return nil, nil, &fragError{err: fmt.Errorf("fragment %s: %w", addr, err)}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: mid-stream: %w", addr, err), retryable: true}
	}
	if !sawTrailer {
		// The shard died between the last row and the trailer; without the
		// trailer the row set cannot be trusted complete.
		return nil, nil, &fragError{err: fmt.Errorf("fragment %s: stream ended without trailer", addr), retryable: true}
	}
	return hdr.Cols, rows, nil
}

// decodeRow parses one NDJSON row array into typed values.
func decodeRow(line []byte, cols []colMeta) ([]any, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var raw []any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("bad stream row: %w", err)
	}
	if len(raw) != len(cols) {
		return nil, fmt.Errorf("row has %d values, want %d", len(raw), len(cols))
	}
	row := make([]any, len(raw))
	for i, v := range raw {
		cv, err := coerce(v, cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", cols[i].Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// coerce converts a decoded JSON value to the column's Go representation.
func coerce(v any, typ string) (any, error) {
	switch typ {
	case storage.Float64.String():
		switch n := v.(type) {
		case json.Number:
			return n.Float64()
		case float64:
			return n, nil
		}
	case storage.String.String():
		if s, ok := v.(string); ok {
			return s, nil
		}
	default: // INT64, INT32, DATE, BOOL
		switch n := v.(type) {
		case json.Number:
			return n.Int64()
		case float64:
			return int64(n), nil
		}
	}
	return nil, fmt.Errorf("unexpected %T for %s", v, typ)
}

// runFragment executes one fragment against its shard with the full
// robustness ladder: per-attempt deadline, jittered exponential backoff,
// breaker consultation, and health-state fail-fast. Fragments are read-only
// and therefore always idempotent — every retryable failure may re-dispatch.
// A nil error means the rows are complete; the typed alternative is
// *ShardUnavailableError (or the parent context's cause).
func (c *Coordinator) runFragment(ctx context.Context, sh *shard, fsql, qid string) (*fragResult, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		now := time.Now()
		if sh.State() == Down || !sh.breaker.allow(now) {
			sh.failures.Add(1)
			if lastErr == nil {
				lastErr = fmt.Errorf("shard %s, breaker open", sh.State())
			}
			return nil, &ShardUnavailableError{
				Shard: sh.id, Addr: sh.Addr(), Attempts: attempt,
				RetryAfter: c.cfg.BreakerCooloff, Err: lastErr,
			}
		}
		addr := sh.Addr()
		if faultinject.ErrAt("cluster.ring.stale") != nil {
			// A router that missed a rebalance dispatches to the shard's
			// previous address; the retry ladder re-resolves and recovers.
			sh.mu.Lock()
			if sh.prevAddr != "" {
				addr = sh.prevAddr
			}
			sh.mu.Unlock()
		}
		sh.fragments.Add(1)
		if attempt > 0 {
			sh.retries.Add(1)
			c.retries.Add(1)
		}
		actx := ctx
		var cancel context.CancelFunc
		if c.cfg.FragmentTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.cfg.FragmentTimeout)
		}
		aqid := fmt.Sprintf("%s.s%d.a%d", qid, sh.id, attempt)
		cols, rows, err := c.attemptFragment(actx, addr, fsql, aqid)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			sh.breaker.ok()
			return &fragResult{shard: sh, cols: cols, rows: rows, tries: attempt + 1}, nil
		}
		if perr := context.Cause(ctx); perr != nil {
			// The parent query died (client gone, drain, deadline) — not
			// the shard's fault; don't punish the breaker.
			return nil, perr
		}
		fe := &fragError{err: err}
		errors.As(err, &fe)
		lastErr = fe.err
		sh.breaker.fail(time.Now())
		if !fe.retryable {
			sh.failures.Add(1)
			return nil, fe.err
		}
		if attempt == c.cfg.MaxRetries {
			break
		}
		if !c.sleepBackoff(ctx, attempt, fe.retryAfter) {
			return nil, context.Cause(ctx)
		}
	}
	sh.failures.Add(1)
	return nil, &ShardUnavailableError{
		Shard: sh.id, Addr: sh.Addr(), Attempts: c.cfg.MaxRetries + 1,
		RetryAfter: c.cfg.BreakerCooloff, Err: lastErr,
	}
}

// sleepBackoff waits base·2^attempt with ±50% jitter (capped, floored at a
// server-suggested Retry-After). Returns false if the context died first.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int, floor time.Duration) bool {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d < floor {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// scatter runs the same fragment on every listed shard concurrently. The
// first fatal error cancel-causes the rest; the goroutines are always
// joined before return, so a failed scatter leaks nothing.
func (c *Coordinator) scatter(ctx context.Context, shards []*shard, fsql, qid string) ([]*fragResult, error) {
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	results := make([]*fragResult, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			fr, err := c.runFragment(sctx, sh, fsql, fmt.Sprintf("%s.f%d", qid, i))
			if err != nil {
				errs[i] = err
				cancel(err)
				return
			}
			results[i] = fr
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A sibling may have been cancelled by the parent between our checks.
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	return results, nil
}
