package cluster

import (
	"fmt"

	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// TableDist says how one table is distributed across the shards.
type TableDist struct {
	// Key is the hash-partition column; empty means the table is fully
	// replicated on every shard (the broadcast side of joins).
	Key string
	// Bounds, when non-empty, switches the table to range partitioning:
	// shard i holds keys in (Bounds[i-1], Bounds[i]]. Range-partitioned
	// tables let the router prune whole shards on partition-key range
	// predicates.
	Bounds []int64
	// Cols is the table's full column list in schema order; the gather
	// (shuffle) path needs it to fetch whole rows over the SQL fabric.
	Cols []string
}

// Replicated reports whether every shard holds the full table.
func (d TableDist) Replicated() bool { return d.Key == "" }

// Spec is the cluster's partitioning scheme: table name → distribution.
// Every node (shards and coordinator) must hold the same spec; it plays the
// role a catalog service would in a full system.
type Spec map[string]TableDist

// TPCHDist is the default TPC-H distribution: the two big join sides
// (lineitem, orders) hash on the order key so their join is co-located;
// customer hashes on its own key, which makes orders⨝customer deliberately
// misaligned — the shuffle regime; everything else is replicated and joins
// as a broadcast build side.
func TPCHDist() map[string]TableDist {
	return map[string]TableDist{
		"lineitem": {Key: "l_orderkey"},
		"orders":   {Key: "o_orderkey"},
		"customer": {Key: "c_custkey"},
		"part":     {},
		"partsupp": {},
		"supplier": {},
		"nation":   {},
		"region":   {},
	}
}

// BuildSpec completes a distribution map into a Spec by filling each
// table's column list from the catalog. Tables in the catalog but not in
// dist default to replicated.
func BuildSpec(cat sql.Catalog, dist map[string]TableDist) (Spec, error) {
	spec := make(Spec, len(cat))
	for name, t := range cat {
		d := dist[name]
		cols := make([]string, len(t.Schema.Cols))
		for i, c := range t.Schema.Cols {
			cols[i] = c.Name
		}
		d.Cols = cols
		if d.Key != "" && t.Schema.ColIndex(d.Key) < 0 {
			return nil, fmt.Errorf("cluster: table %s has no partition key column %s", name, d.Key)
		}
		spec[name] = d
	}
	return spec, nil
}

// TPCHSpec is BuildSpec over the default TPC-H distribution.
func TPCHSpec(cat sql.Catalog) (Spec, error) { return BuildSpec(cat, TPCHDist()) }

// keyOwner routes one partition-key value under the table's distribution.
func (d TableDist) keyOwner(ring *Ring, rr *RangeRouter, key int64) int {
	if len(d.Bounds) > 0 {
		return rr.Owner(key)
	}
	return ring.OwnerKey(key)
}

// PartitionTable carves out shard `shard`'s slice of a table: the rows
// whose partition key the ring (or the range bounds) assigns to it. The
// result is a fresh table with the same name and schema. Replicated tables
// are returned as-is (shared by pointer — they are immutable once built).
func PartitionTable(t *storage.Table, d TableDist, ring *Ring, shard int) *storage.Table {
	if d.Replicated() {
		return t
	}
	keys := t.Int64Col(d.Key)
	var rr *RangeRouter
	if len(d.Bounds) > 0 {
		rr = NewRangeRouter(d.Bounds)
	}
	n := t.NumRows()
	out := storage.NewTable(t.Name, t.Schema, n/max(1, len(ring.Shards())))
	for i := 0; i < n; i++ {
		if d.keyOwner(ring, rr, keys[i]) != shard {
			continue
		}
		for c := range t.Cols {
			out.Cols[c].AppendFrom(t.Cols[c], i)
		}
	}
	// A partitioned slice of a dictionary-encoded column materializes as a
	// plain string column; re-encode so shard scans keep comparing codes.
	maxCard := 0
	for _, c := range t.Cols {
		if dc, ok := c.(*storage.DictColumn); ok && dc.Card() > maxCard {
			maxCard = dc.Card()
		}
	}
	if maxCard > 0 {
		out.DictEncode(maxCard)
	}
	return out
}

// PartitionCatalog builds shard `shard`'s catalog: partitioned tables are
// sliced, replicated ones shared. Every shard calling this over the same
// source catalog and shard count reconstructs the same global placement —
// no coordination needed at load time.
func PartitionCatalog(cat sql.Catalog, spec Spec, ring *Ring, shard int) sql.Catalog {
	out := make(sql.Catalog, len(cat))
	for name, t := range cat {
		out[name] = PartitionTable(t, spec[name], ring, shard)
	}
	return out
}
