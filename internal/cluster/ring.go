// Package cluster turns the single-process query service into a sharded
// system: a shard router partitions TPC-H tables across N joind nodes, and a
// coordinator plans distributed joins over the existing HTTP + NDJSON fabric
// — co-located scatter when every partitioned side hashes on the join key,
// broadcast against replicated dimensions, and a gather-side shuffle
// otherwise. Robustness is the core of the design: every fragment RPC
// carries a deadline, idempotent fragments retry with jittered exponential
// backoff behind a per-shard circuit breaker, a health prober drives an
// up→degraded→down shard state machine that feeds routing, and mid-stream
// shard death either re-dispatches the fragment or surfaces a typed,
// retryable ErrShardUnavailable with no leaked goroutines or reservations.
package cluster

import (
	"sort"
	"sync"

	"partitionjoin/internal/hashx"
)

// DefaultVnodes is the number of virtual nodes each shard contributes to
// the ring. More vnodes smooth the key distribution; 64 keeps the maximum
// shard imbalance under a few percent for small clusters.
const DefaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over shard ids. It is deterministic: every
// process that builds a ring over the same shard set routes identically,
// which is what lets N independently booted joind shards agree on row
// placement without talking to each other. Add/Remove rebalance the ring and
// bump its version so routers can detect (and tests can inject) staleness.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint
	present map[int]bool
	version int64
}

// NewRing builds a ring over shards 0..n-1 with the given virtual-node
// count per shard (<= 0 uses DefaultVnodes).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes, present: make(map[int]bool, n)}
	for s := 0; s < n; s++ {
		r.addLocked(s)
	}
	r.sortLocked()
	return r
}

// vnodeHash places virtual node v of a shard on the circle. The double mix
// keeps vnode points of one shard spread rather than clustered.
func vnodeHash(shard, v int) uint64 {
	return hashx.Combine(hashx.I64(int64(shard)+1), hashx.I64(int64(v)*0x9e3779b9+7))
}

func (r *Ring) addLocked(shard int) {
	if r.present[shard] {
		return
	}
	r.present[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(shard, v), shard: shard})
	}
}

func (r *Ring) sortLocked() {
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Add joins a shard to the ring (rebalance: ~1/n of the key space moves to
// it). No-op if already present.
func (r *Ring) Add(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.present[shard] {
		return
	}
	r.addLocked(shard)
	r.sortLocked()
	r.version++
}

// Remove drops a shard from the ring; its key ranges fall to the ring
// successors.
func (r *Ring) Remove(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.present[shard] {
		return
	}
	delete(r.present, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.version++
}

// Version counts rebalances; a router holding a routing decision across a
// version bump is stale and must re-resolve.
func (r *Ring) Version() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// BumpTo raises the version to at least v — adopting a newer placement
// learned from a node's stale-ring redirect. No-op when already newer.
func (r *Ring) BumpTo(v int64) {
	r.mu.Lock()
	if v > r.version {
		r.version = v
	}
	r.mu.Unlock()
}

// Bump increments the version by one and returns the new value — the local
// rebalance marker used when the coordinator itself changes placement.
func (r *Ring) Bump() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	return r.version
}

// Shards returns the member shard ids, sorted.
func (r *Ring) Shards() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.present))
	for s := range r.present {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Owner maps a key hash to the shard owning it: the first virtual node at
// or clockwise after the hash.
func (r *Ring) Owner(h uint64) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// OwnerKey routes an integer partition key (order keys, customer keys —
// every TPC-H partition key is an int64).
func (r *Ring) OwnerKey(key int64) int { return r.Owner(hashx.I64(key)) }

// ReplicaChain lists the shards holding primary slice p under replication
// factor r in failover-preference order: the primary first, then its r-1
// id-successors. The replication unit is the whole primary slice (the union
// of a shard's ring ranges), not an individual vnode range, so the successor
// walk is over shard ids rather than ring points — every node and the
// coordinator compute the same chain from (p, r, n) alone, which is what
// lets replica catalogs load at shard boot with no catalog service. r is
// clamped to the shard count; r <= 1 degenerates to single-owner placement.
func ReplicaChain(primary, r, n int) []int {
	if n <= 0 {
		return nil
	}
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	chain := make([]int, r)
	for i := range chain {
		chain[i] = (primary + i) % n
	}
	return chain
}

// BootReplicaPrimaries lists the primaries whose slices shard `shard` must
// hold as replicas at boot: every p != shard whose ReplicaChain includes it.
func BootReplicaPrimaries(shard, r, n int) []int {
	var out []int
	for p := 0; p < n; p++ {
		if p == shard {
			continue
		}
		for _, s := range ReplicaChain(p, r, n)[1:] {
			if s == shard {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// RangeRouter routes by key range instead of by hash: shard i owns keys in
// (bounds[i-1], bounds[i]]. Range partitioning keeps key-adjacent rows on
// one shard, so a range predicate on the partition key touches only the
// overlapping shards — the router prunes fragments the way zone maps prune
// morsels. The last bound is an inclusive maximum; keys above it still route
// to the last shard (routing must be total).
type RangeRouter struct {
	bounds []int64 // inclusive upper bound per shard, ascending
}

// NewRangeRouter builds a range router from per-shard inclusive upper
// bounds (ascending, one per shard).
func NewRangeRouter(bounds []int64) *RangeRouter {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &RangeRouter{bounds: b}
}

// Shards returns the shard count.
func (r *RangeRouter) Shards() int { return len(r.bounds) }

// Owner returns the shard owning key k.
func (r *RangeRouter) Owner(k int64) int {
	i := sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] >= k })
	if i == len(r.bounds) {
		i = len(r.bounds) - 1
	}
	return i
}

// Owners returns the shards overlapping the inclusive key range [lo, hi] in
// ascending order — the scatter set of a range predicate on the partition
// key.
func (r *RangeRouter) Owners(lo, hi int64) []int {
	if hi < lo || len(r.bounds) == 0 {
		return nil
	}
	first, last := r.Owner(lo), r.Owner(hi)
	out := make([]int, 0, last-first+1)
	for s := first; s <= last; s++ {
		out = append(out, s)
	}
	return out
}
