package cluster

import (
	"context"
	"fmt"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// The gather path is the cluster's shuffle regime: when the join keys do not
// line up with the partitioning keys, rows must move. Rather than an N×N
// repartitioning network, the coordinator fetches each table's (filtered)
// rows over the same fragment fabric, rebuilds in-memory tables, and runs
// the whole query locally — the paper's "to partition" cost made explicit as
// network transfer, with every fabric robustness guarantee (retries,
// breakers, typed unavailability) applying to the fetches.

// gatherExecute fetches the base tables and executes the statement on the
// coordinator, under the admission reservation held by Query.
func (c *Coordinator) gatherExecute(ctx context.Context, stmt *sql.SelectStmt, qid string, rsv *admit.Reservation) (*Result, error) {
	_, order, err := c.resolveAliases(stmt)
	if err != nil {
		return nil, err
	}
	// One fetch per table; a table referenced by several aliases is fetched
	// once, unfiltered (its per-alias filters re-apply in local execution —
	// they always do; pushing them into the fetch is only a size optimization).
	aliasesOf := map[string][]*aliasInfo{}
	var tables []string
	for _, ai := range order {
		if len(aliasesOf[ai.table]) == 0 {
			tables = append(tables, ai.table)
		}
		aliasesOf[ai.table] = append(aliasesOf[ai.table], ai)
	}

	cat := make(sql.Catalog, len(tables))
	st := Stats{Shards: len(c.shards)}
	for _, name := range tables {
		ais := aliasesOf[name]
		fsql := fetchSQL(stmt, ais)
		var targets []fragTarget
		if ais[0].dist.Replicated() {
			ft := c.replicatedTarget()
			if len(ft.holders) == 0 {
				return nil, c.noShardErr()
			}
			targets = []fragTarget{ft}
		} else {
			targets = c.allTargets()
		}
		frags, err := c.scatter(ctx, targets, fsql, fmt.Sprintf("%s.g.%s", qid, name))
		if err != nil {
			return nil, err
		}
		t, err := rebuildTable(name, frags)
		if err != nil {
			return nil, err
		}
		cat[name] = t
		for _, fr := range frags {
			st.Fragments += fr.tries
			st.Retries += fr.tries - 1
			st.GatheredRows += int64(len(fr.rows))
			if fr.failedOver {
				st.Failovers++
			}
		}
	}
	c.gatheredRows.Add(st.GatheredRows)

	res, err := sql.RunCtx(ctx, cat, printStmt(stmt, fragOpts{}), c.execOpts(rsv))
	if err != nil {
		return nil, err
	}
	out := execToResult(res)
	out.Stats = st
	return out, nil
}

// fetchSQL builds the per-table fetch statement: every column, the alias's
// own filters when it is the table's only use.
func fetchSQL(stmt *sql.SelectStmt, ais []*aliasInfo) string {
	ai := ais[0]
	fetch := &sql.SelectStmt{From: []sql.TableRef{{Table: ai.table, Alias: ai.alias}}}
	for _, col := range ai.dist.Cols {
		fetch.Items = append(fetch.Items, sql.SelectItem{
			Col: sql.ColRefAST{Qualifier: ai.alias, Column: col},
		})
	}
	if len(ais) == 1 {
		for _, cond := range stmt.Where {
			if ownsCond(ai, cond) {
				fetch.Where = append(fetch.Where, cond)
			}
		}
	}
	return printStmt(fetch, fragOpts{})
}

// ownsCond reports whether a WHERE conjunct touches only this alias (by
// explicit qualifier — unqualified references are left to local execution).
func ownsCond(ai *aliasInfo, cond sql.Cond) bool {
	if cond.Left.Qualifier != ai.alias {
		return false
	}
	return !cond.IsJoin || cond.Right.Qualifier == ai.alias
}

// typeFromString parses a wire column type back into a storage type.
func typeFromString(s string) (storage.Type, error) {
	for _, t := range []storage.Type{
		storage.Int64, storage.Int32, storage.Float64,
		storage.String, storage.Date, storage.Bool,
	} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown column type %q", s)
}

// rebuildTable reassembles a storage table from its fetched fragments. The
// fragment columns arrive in the table's schema order (fetchSQL lists them
// that way), so the reconstruction preserves the original layout.
func rebuildTable(name string, frags []*fragResult) (*storage.Table, error) {
	if len(frags) == 0 {
		return nil, fmt.Errorf("cluster: no fragments for table %s", name)
	}
	defs := make([]storage.ColumnDef, len(frags[0].cols))
	for i, cm := range frags[0].cols {
		t, err := typeFromString(cm.Type)
		if err != nil {
			return nil, err
		}
		// Fetch items print as "alias.col"; the rebuilt schema wants the
		// bare column name.
		colName := cm.Name
		if dot := lastDot(colName); dot >= 0 {
			colName = colName[dot+1:]
		}
		defs[i] = storage.ColumnDef{Name: colName, Type: t}
	}
	// StrCap is the declared maximum byte length; join tuple layouts
	// truncate to it, so derive it from the actual fetched values.
	for i, def := range defs {
		if def.Type != storage.String {
			continue
		}
		maxLen := 1
		for _, fr := range frags {
			for _, row := range fr.rows {
				if s, ok := row[i].(string); ok && len(s) > maxLen {
					maxLen = len(s)
				}
			}
		}
		defs[i].StrCap = maxLen
	}
	total := 0
	for _, fr := range frags {
		total += len(fr.rows)
	}
	t := storage.NewTable(name, storage.NewSchema(defs...), total)
	for _, fr := range frags {
		for _, row := range fr.rows {
			for ci, v := range row {
				if err := appendValue(t.Cols[ci], v); err != nil {
					return nil, fmt.Errorf("cluster: table %s column %s: %w", name, defs[ci].Name, err)
				}
			}
		}
	}
	return t, nil
}

// lastDot finds the final '.' of a qualified column name.
func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// appendValue pushes one decoded wire value onto a storage column.
func appendValue(col storage.Column, v any) error {
	switch c := col.(type) {
	case *storage.Int64Column:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("got %T, want int64", v)
		}
		c.Values = append(c.Values, n)
	case *storage.Int32Column:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("got %T, want int64", v)
		}
		c.Values = append(c.Values, int32(n))
	case *storage.Float64Column:
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("got %T, want float64", v)
		}
		c.Values = append(c.Values, f)
	case *storage.StringColumn:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("got %T, want string", v)
		}
		c.AppendString(s)
	default:
		return fmt.Errorf("unsupported column type %T", col)
	}
	return nil
}
