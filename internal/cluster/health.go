package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HealthState is the shard state machine the prober drives. Fragments still
// try a Degraded shard (it may only have dropped one probe); a Down shard is
// skipped outright and partitioned fragments against it fail fast with
// ErrShardUnavailable.
type HealthState int32

const (
	// Up: last probe succeeded.
	Up HealthState = iota
	// Degraded: at least one recent probe failed, but fewer than the
	// down threshold — the shard gets traffic but routing prefers others
	// where a choice exists.
	Degraded
	// Down: consecutive probe failures reached the threshold. No traffic
	// until a probe succeeds again.
	Down
)

// String names the state for /statsz and logs.
func (s HealthState) String() string {
	switch s {
	case Up:
		return "up"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	}
	return fmt.Sprintf("HealthState(%d)", int32(s))
}

// ErrShardUnavailable is the sentinel for errors.Is: a shard could not serve
// a fragment and retrying the whole query after a backoff is the contract
// (the HTTP layer maps it to 503 + Retry-After).
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// ShardUnavailableError is the typed, retryable failure of a fragment whose
// owning shard is dead, unreachable, persistently slow, or circuit-broken —
// and, under replication, so is every replica in its chain (the
// double-fault).
type ShardUnavailableError struct {
	Shard    int
	Addr     string
	Attempts int
	// Replicas is how many fallback holders the failover chain offered
	// beyond the primary; > 0 means the whole chain was exhausted.
	Replicas int
	// RetryAfter is the suggested client backoff before resubmitting the
	// query. It is honest: with the prober running it is the time by which
	// a recovered shard would be re-marked reachable (one probe round plus
	// its timeout); otherwise the breaker cooloff.
	RetryAfter time.Duration
	Err        error
}

// Error implements error.
func (e *ShardUnavailableError) Error() string {
	if e.Replicas > 0 {
		return fmt.Sprintf("cluster: shard %d (%s) and all %d replicas unavailable after %d attempts: %v",
			e.Shard, e.Addr, e.Replicas, e.Attempts, e.Err)
	}
	return fmt.Sprintf("cluster: shard %d (%s) unavailable after %d attempts: %v",
		e.Shard, e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the last underlying failure.
func (e *ShardUnavailableError) Unwrap() error { return e.Err }

// Is matches the ErrShardUnavailable sentinel.
func (e *ShardUnavailableError) Is(target error) bool { return target == ErrShardUnavailable }

// Retryable reports that resubmitting the query after RetryAfter is safe:
// fragments are read-only and idempotent.
func (e *ShardUnavailableError) Retryable() bool { return true }

// breaker is a per-shard circuit breaker. Threshold consecutive fragment
// failures open it for Cooloff; while open, fragments fail fast instead of
// burning their retry budget against a dead shard. After the cooloff one
// attempt is let through (half-open); success closes the breaker.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooloff     time.Duration
	consecFails int
	openUntil   time.Time
	trips       int64
}

// allow reports whether an attempt may proceed now.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.After(b.openUntil)
}

// fail records a fragment failure, tripping the breaker at the threshold.
func (b *breaker) fail(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.consecFails >= b.threshold {
		b.openUntil = now.Add(b.cooloff)
		b.trips++
		// Half-open: the cooloff expiry admits one probe attempt; a
		// further failure re-opens from here rather than needing a full
		// threshold run.
		b.consecFails = b.threshold - 1
	}
}

// ok records a success, closing the breaker.
func (b *breaker) ok() {
	b.mu.Lock()
	b.consecFails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// open reports whether the breaker currently blocks attempts.
func (b *breaker) open(now time.Time) bool { return !b.allow(now) }

// shard is the coordinator's view of one node: its address (mutable — a
// restarted shard comes back elsewhere), health, breaker, and counters.
type shard struct {
	id int

	mu       sync.Mutex
	addr     string
	prevAddr string // the address before the last SetShardAddr; stale-ring faults route here

	state      atomic.Int32 // HealthState
	probeFails int          // consecutive, prober-owned
	downSince  time.Time    // when the prober marked it Down; zero while reachable

	breaker breaker

	fragments       atomic.Int64 // attempts issued
	retries         atomic.Int64 // attempts beyond the first
	failures        atomic.Int64 // fragments that exhausted retries
	failoversServed atomic.Int64 // fragments served here after another holder failed
}

// Addr returns the shard's current address.
func (s *shard) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// State returns the prober's current verdict.
func (s *shard) State() HealthState { return HealthState(s.state.Load()) }

// available reports whether the router may send fragments here.
func (s *shard) available(now time.Time) bool {
	return s.State() != Down && !s.breaker.open(now)
}

// SetShardAddr moves a shard to a new address — the rebalance/restart path.
// The health state resets to Degraded (unproven), the breaker closes so the
// new address gets a fair first attempt, and the ring version bumps so
// staleness is observable.
func (c *Coordinator) SetShardAddr(id int, addr string) error {
	if id < 0 || id >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	sh := c.shards[id]
	sh.mu.Lock()
	sh.prevAddr = sh.addr
	sh.addr = addr
	sh.probeFails = 0
	sh.downSince = time.Time{}
	sh.mu.Unlock()
	sh.state.Store(int32(Degraded))
	sh.breaker.ok()
	c.ring.mu.Lock()
	c.ring.version++
	c.ring.mu.Unlock()
	return nil
}

// probe checks one shard's /healthz once and advances its state machine.
func (c *Coordinator) probe(ctx context.Context, sh *shard) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.Addr()+"/healthz", nil)
	healthy := false
	if err == nil {
		resp, rerr := c.httpClient().Do(req)
		if rerr == nil {
			resp.Body.Close()
			healthy = resp.StatusCode == http.StatusOK
		}
	}
	sh.mu.Lock()
	if healthy {
		sh.probeFails = 0
	} else {
		sh.probeFails++
	}
	fails := sh.probeFails
	switch {
	case fails == 0:
		sh.downSince = time.Time{}
		sh.mu.Unlock()
		sh.state.Store(int32(Up))
	case fails >= c.cfg.DownAfter:
		if sh.downSince.IsZero() {
			sh.downSince = time.Now()
		}
		sh.mu.Unlock()
		sh.state.Store(int32(Down))
	default:
		sh.mu.Unlock()
		sh.state.Store(int32(Degraded))
	}
}

// prober drives all shard state machines until the coordinator drains.
func (c *Coordinator) prober() {
	defer c.bg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, sh := range c.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				c.probe(c.baseCtx, sh)
			}(sh)
		}
		wg.Wait()
		// Membership follow-up rides the probe round: a shard Down past the
		// grace window loses its replicas to new holders (restoring R); one
		// back Up gets the compensating mounts dismantled.
		c.rereplicateCheck(c.baseCtx)
		c.restoreCheck(c.baseCtx)
	}
}
