package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/storage"
)

// The coordinator speaks the exact wire dialect of internal/server — the
// same /query request body, NDJSON stream shape, and error envelope — so
// server.Client, sqlrun, and joinbench drive a coordinator and a single
// node interchangeably.

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// StatusClientClosedRequest mirrors the server's nginx-style 499.
const StatusClientClosedRequest = 499

// coordRequest is the accepted subset of the server's query body.
type coordRequest struct {
	SQL    string `json:"sql"`
	Stream bool   `json:"stream,omitempty"`
}

// coordErrorBody mirrors the server's error envelope.
type coordErrorBody struct {
	Error        string `json:"error"`
	QueryID      string `json:"query_id,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeError emits the JSON error envelope, with Retry-After for the
// retryable statuses, and counts it.
func (c *Coordinator) writeError(w http.ResponseWriter, qid string, status int, err error) {
	body := coordErrorBody{Error: err.Error(), QueryID: qid}
	var retryAfter int64
	var se *ShardUnavailableError
	var oe *admit.OverloadError
	switch {
	case errors.As(err, &se):
		retryAfter = se.RetryAfter.Milliseconds()
	case errors.As(err, &oe):
		retryAfter = oe.RetryAfter.Milliseconds()
	}
	if retryAfter > 0 {
		body.RetryAfterMS = retryAfter
		secs := (retryAfter + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	switch status {
	case http.StatusBadRequest:
		c.counters.BadRequest.Add(1)
	case http.StatusTooManyRequests:
		c.counters.Overloaded.Add(1)
	case http.StatusServiceUnavailable:
		c.counters.Unavailable.Add(1)
	case http.StatusRequestTimeout:
		c.counters.Timeout.Add(1)
	case StatusClientClosedRequest:
		c.counters.Canceled.Add(1)
	default:
		c.counters.Internal.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// coordStatus maps a distributed execution error onto its HTTP status.
func coordStatus(err error, reqDone bool) int {
	switch {
	case errors.Is(err, ErrShardUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, admit.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		if reqDone {
			return StatusClientClosedRequest
		}
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// sanitizeQID keeps a caller-supplied query id loggable: printable ASCII,
// bounded length.
func sanitizeQID(s string) string {
	if len(s) > 64 {
		s = s[:64]
	}
	var b strings.Builder
	for _, r := range s {
		if r > 0x20 && r < 0x7f {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// handleQuery is POST /query on the coordinator.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !c.enter() {
		w.Header().Set("Retry-After", "1")
		c.writeError(w, "", http.StatusServiceUnavailable, errors.New("coordinator is draining"))
		return
	}
	defer c.leave()
	c.counters.Total.Add(1)

	qid := sanitizeQID(r.Header.Get("X-Query-ID"))
	if qid == "" {
		qid = fmt.Sprintf("c%d", c.queryID.Add(1))
	}
	w.Header().Set("X-Query-ID", qid)

	var req coordRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		c.writeError(w, qid, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		c.writeError(w, qid, http.StatusBadRequest, errors.New("empty sql"))
		return
	}
	stream := req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")

	qctx, qcancel := context.WithCancelCause(r.Context())
	defer qcancel(nil)
	stopDrainWatch := context.AfterFunc(c.baseCtx, func() {
		qcancel(context.Cause(c.baseCtx))
	})
	defer stopDrainWatch()

	res, err := c.Query(qctx, req.SQL, qid)
	if err != nil {
		status := coordStatus(err, r.Context().Err() != nil)
		if isBadQuery(err) {
			status = http.StatusBadRequest
		}
		c.writeError(w, qid, status, err)
		return
	}
	c.counters.OK.Add(1)
	if stream {
		c.streamResult(w, res)
	} else {
		c.writeResult(w, res)
	}
}

// isBadQuery detects statement errors (parse failures, unknown tables or
// columns) that no retry will fix.
func isBadQuery(err error) bool {
	msg := err.Error()
	return strings.HasPrefix(msg, "sql:") ||
		strings.HasPrefix(msg, "cluster: unknown table") ||
		strings.HasPrefix(msg, "cluster: unknown column") ||
		strings.HasPrefix(msg, "cluster: unknown alias") ||
		strings.HasPrefix(msg, "cluster: ambiguous column") ||
		strings.HasPrefix(msg, "cluster: duplicate alias")
}

// writeResult delivers the merged result as one JSON document, in the
// server's response shape with the cluster stats block.
func (c *Coordinator) writeResult(w http.ResponseWriter, res *Result) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		QueryID  string    `json:"query_id"`
		Cols     []ColMeta `json:"cols"`
		Rows     [][]any   `json:"rows"`
		RowCount int       `json:"row_count"`
		Stats    Stats     `json:"stats"`
	}{res.QueryID, res.Cols, res.Rows, len(res.Rows), res.Stats})
}

// streamResult delivers the merged result as NDJSON: header, rows, trailer.
func (c *Coordinator) streamResult(w http.ResponseWriter, res *Result) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		QueryID string    `json:"query_id"`
		Cols    []ColMeta `json:"cols"`
	}{res.QueryID, res.Cols}); err != nil {
		return
	}
	for _, row := range res.Rows {
		if err := enc.Encode(row); err != nil {
			return
		}
	}
	enc.Encode(struct {
		QueryID  string `json:"query_id"`
		RowCount int    `json:"row_count"`
		Stats    Stats  `json:"stats"`
	}{res.QueryID, len(res.Rows), res.Stats})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleHealthz reports liveness; like the server's, it flips to 503 the
// moment a drain starts. The body carries the shard fleet's health.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	states := make([]string, len(c.shards))
	for i, sh := range c.shards {
		states[i] = sh.State().String()
	}
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if draining {
		status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Status string   `json:"status"`
		Shards []string `json:"shards"`
	}{status, states})
}

// ShardStats is one shard's /statsz block: routing counters plus the live
// breaker and prober verdicts, so an operator (or sqlrun -retry) can see
// exactly why fragments are avoiding a shard.
type ShardStats struct {
	Addr            string `json:"addr"`
	State           string `json:"state"`
	BreakerOpen     bool   `json:"breaker_open"`
	ProbeFails      int    `json:"probe_fails"`
	Fragments       int64  `json:"fragments"`
	Retries         int64  `json:"retries"`
	Failures        int64  `json:"failures"`
	Trips           int64  `json:"breaker_trips"`
	FailoversServed int64  `json:"failovers_served"`
}

// CoordStats is the /statsz snapshot.
type CoordStats struct {
	Queries          int64            `json:"queries"`
	OK               int64            `json:"ok"`
	BadRequest       int64            `json:"bad_request"`
	Unavailable      int64            `json:"unavailable"`
	Overloaded       int64            `json:"overloaded"`
	Timeout          int64            `json:"timeout"`
	Canceled         int64            `json:"canceled"`
	Internal         int64            `json:"internal"`
	Retries          int64            `json:"fragment_retries"`
	GatheredRows     int64            `json:"gathered_rows"`
	RingVersion      int64            `json:"ring_version"`
	Replication      int              `json:"replication"`
	FailoverAttempts int64            `json:"failover_attempts"`
	FailoverSuccess  int64            `json:"failover_success"`
	Reroutes         int64            `json:"reroutes"`
	Rereplications   int64            `json:"rereplications"`
	Restores         int64            `json:"restores"`
	Modes            map[string]int64 `json:"modes"`
	Shards           []ShardStats     `json:"shards"`
}

// handleStatsz exports the coordinator counters.
func (c *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := c.Statsz()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Statsz snapshots the coordinator counters — the same picture /statsz
// serves, for in-process harnesses.
func (c *Coordinator) Statsz() CoordStats {
	st := CoordStats{
		Queries:          c.counters.Total.Load(),
		OK:               c.counters.OK.Load(),
		BadRequest:       c.counters.BadRequest.Load(),
		Unavailable:      c.counters.Unavailable.Load(),
		Overloaded:       c.counters.Overloaded.Load(),
		Timeout:          c.counters.Timeout.Load(),
		Canceled:         c.counters.Canceled.Load(),
		Internal:         c.counters.Internal.Load(),
		Retries:          c.retries.Load(),
		GatheredRows:     c.gatheredRows.Load(),
		RingVersion:      c.ring.Version(),
		Replication:      c.cfg.Replication,
		FailoverAttempts: c.failoverAttempts.Load(),
		FailoverSuccess:  c.failoverSuccess.Load(),
		Reroutes:         c.reroutes.Load(),
		Rereplications:   c.rereplications.Load(),
		Restores:         c.restores.Load(),
		Modes: map[string]int64{
			string(ModeReplicated): c.modeCounts[0].Load(),
			string(ModeColocated):  c.modeCounts[1].Load(),
			string(ModeRouted):     c.modeCounts[2].Load(),
			string(ModeGather):     c.modeCounts[3].Load(),
		},
	}
	now := time.Now()
	for _, sh := range c.shards {
		sh.breaker.mu.Lock()
		trips := sh.breaker.trips
		sh.breaker.mu.Unlock()
		sh.mu.Lock()
		probeFails := sh.probeFails
		sh.mu.Unlock()
		st.Shards = append(st.Shards, ShardStats{
			Addr: sh.Addr(), State: sh.State().String(),
			BreakerOpen: sh.breaker.open(now), ProbeFails: probeFails,
			Fragments: sh.fragments.Load(), Retries: sh.retries.Load(),
			Failures: sh.failures.Load(), Trips: trips,
			FailoversServed: sh.failoversServed.Load(),
		})
	}
	return st
}

// execToResult converts a local ExecResult (the gather path's output) into
// the coordinator's result shape.
func execToResult(res *plan.ExecResult) *Result {
	n := res.Result.NumRows()
	out := &Result{
		Cols: make([]ColMeta, len(res.Cols)),
		Rows: make([][]any, n),
	}
	for i, cr := range res.Cols {
		out.Cols[i] = ColMeta{Name: cr.Name, Type: res.Result.Vecs[i].T.String()}
	}
	for i := 0; i < n; i++ {
		row := make([]any, len(res.Result.Vecs))
		for ci := range res.Result.Vecs {
			row[ci] = vecValue(&res.Result.Vecs[ci], i)
		}
		out.Rows[i] = row
	}
	return out
}

// vecValue extracts row i of a vector as a wire value.
func vecValue(v *exec.Vector, i int) any {
	switch v.T {
	case storage.Float64:
		return v.F64[i]
	case storage.String:
		return string(v.Str[i])
	default:
		return v.I64[i]
	}
}
