package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Membership-change handling: the prober calls rereplicateCheck after every
// round. A shard Down past the RereplicateAfter grace window has each of
// its chain memberships re-replicated — a live holder of the slice streams
// a partition transfer to a live shard outside the chain — so the fleet is
// back at R copies of every slice and can absorb the *next* fault. The
// grace window is what separates a crash from a blip: re-replicating on the
// first failed probe would thrash data around every GC pause.
//
// When the dead shard rejoins (same address recovering or SetShardAddr to a
// new one) and probes back to Up, restoreCheck dismantles exactly the
// compensating mounts, returning to the boot placement. The rejoining node
// itself rebuilds its catalogs at boot (deterministic placement), so no
// transfer back is needed; only the extras are garbage.

// rereplicateCheck restores R for every slice that lost a chain member to a
// shard Down past the grace window.
func (c *Coordinator) rereplicateCheck(ctx context.Context) {
	if c.cfg.RereplicateAfter <= 0 || c.cfg.Replication <= 1 {
		return
	}
	now := time.Now()
	for _, sh := range c.shards {
		if sh.State() != Down {
			continue
		}
		sh.mu.Lock()
		ds := sh.downSince
		sh.mu.Unlock()
		if ds.IsZero() || now.Sub(ds) < c.cfg.RereplicateAfter {
			continue
		}
		c.rereplicateAround(ctx, sh.id)
	}
}

// rereplicateAround moves every chain membership of the dead shard to a new
// holder: for each primary slice p whose chain includes dead, a live holder
// donates the slice to the first live shard outside p's chain. Idempotent
// per (p, dead) — an already-recorded compensation is skipped, so repeated
// probe rounds don't re-transfer.
func (c *Coordinator) rereplicateAround(ctx context.Context, dead int) {
	n := len(c.shards)
	for p := 0; p < n; p++ {
		chain := ReplicaChain(p, c.cfg.Replication, n)
		inChain := false
		for _, s := range chain {
			if s == dead {
				inChain = true
				break
			}
		}
		if !inChain || c.hasCompensation(p, dead) {
			continue
		}
		donor := c.pickDonor(p, chain, dead)
		target := c.pickTarget(p, chain)
		if donor == nil || target < 0 {
			continue // no live donor or no spare shard; retry next round
		}
		version := c.ring.Bump()
		if err := c.postReplicate(ctx, target, p, donor, version); err != nil {
			continue // transfer failed; retry next round
		}
		c.placementMu.Lock()
		c.extras[p] = append(c.extras[p], extraReplica{shard: target, forShard: dead})
		c.placementMu.Unlock()
		c.rereplications.Add(1)
	}
}

// hasCompensation reports whether slice p already has an extra standing in
// for the dead shard.
func (c *Coordinator) hasCompensation(p, dead int) bool {
	c.placementMu.Lock()
	defer c.placementMu.Unlock()
	for _, e := range c.extras[p] {
		if e.forShard == dead {
			return true
		}
	}
	return false
}

// pickDonor finds a live holder of slice p to stream the transfer from,
// returning its full base URL (address + replica path).
func (c *Coordinator) pickDonor(p int, chain []int, dead int) *string {
	now := time.Now()
	try := func(s int, path string) *string {
		sh := c.shards[s]
		if s == dead || !sh.available(now) {
			return nil
		}
		u := sh.Addr() + path
		return &u
	}
	for _, s := range chain {
		path := ""
		if s != p {
			path = fmt.Sprintf("/replica/%d", p)
		}
		if u := try(s, path); u != nil {
			return u
		}
	}
	// Extras already standing in for another dead chain member can donate too.
	c.placementMu.Lock()
	extras := append([]extraReplica(nil), c.extras[p]...)
	c.placementMu.Unlock()
	for _, e := range extras {
		if u := try(e.shard, fmt.Sprintf("/replica/%d", p)); u != nil {
			return u
		}
	}
	return nil
}

// pickTarget finds the first live shard not already holding slice p,
// walking id-successors from the slice's primary — the same order boot
// placement uses, so the compensated layout stays balanced.
func (c *Coordinator) pickTarget(p int, chain []int) int {
	holds := make(map[int]bool, len(chain))
	for _, s := range chain {
		holds[s] = true
	}
	c.placementMu.Lock()
	for _, e := range c.extras[p] {
		holds[e.shard] = true
	}
	c.placementMu.Unlock()
	now := time.Now()
	n := len(c.shards)
	for i := 1; i < n; i++ {
		s := (p + i) % n
		if !holds[s] && c.shards[s].available(now) && c.shards[s].State() == Up {
			return s
		}
	}
	return -1
}

// postReplicate asks the target node to mount slice p, streaming from the
// donor. Bounded by the fragment timeout — a transfer is a fragment-sized
// unit of work on these catalogs.
func (c *Coordinator) postReplicate(ctx context.Context, target, p int, donor *string, version int64) error {
	timeout := c.cfg.FragmentTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	body, _ := json.Marshal(replicateRequest{Primary: p, From: *donor, Version: version})
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.shards[target].Addr()+"/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("cluster: replicate %d onto shard %d: HTTP %d: %s",
			p, target, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// restoreCheck dismantles compensating mounts whose dead shard is back Up:
// the rejoined node rebuilt its own catalogs at boot, so the extras are now
// over-replication. Unmount failures are retried next round; the extra is
// only forgotten once the holder confirms.
func (c *Coordinator) restoreCheck(ctx context.Context) {
	c.placementMu.Lock()
	type pending struct {
		p     int
		extra extraReplica
	}
	var todo []pending
	for p, list := range c.extras {
		for _, e := range list {
			if c.shards[e.forShard].State() == Up {
				todo = append(todo, pending{p, e})
			}
		}
	}
	c.placementMu.Unlock()
	if len(todo) == 0 {
		return
	}
	bumped := false
	for _, t := range todo {
		if err := c.deleteReplica(ctx, t.extra.shard, t.p); err != nil {
			continue
		}
		c.placementMu.Lock()
		list := c.extras[t.p]
		kept := list[:0]
		for _, e := range list {
			if e != t.extra {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(c.extras, t.p)
		} else {
			c.extras[t.p] = kept
		}
		c.placementMu.Unlock()
		c.restores.Add(1)
		bumped = true
	}
	if bumped {
		c.ring.Bump()
	}
}

// deleteReplica unmounts slice p from a holder (404 counts as done — the
// holder restarted without it).
func (c *Coordinator) deleteReplica(ctx context.Context, holder, p int) error {
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodDelete,
		fmt.Sprintf("%s/replica/%d", c.shards[holder].Addr(), p), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("cluster: unmount replica %d from shard %d: HTTP %d", p, holder, resp.StatusCode)
	}
	return nil
}
