package cluster

import (
	"strconv"
	"strings"

	"partitionjoin/internal/sql"
)

// fragOpts shape the fragment statement generated from a parsed query.
type fragOpts struct {
	// stripLimit removes LIMIT — a per-shard limit under aggregation or
	// grouping would drop groups the merge still needs.
	stripLimit bool
	// stripOrder removes ORDER BY — useless work in fragments whose rows
	// the coordinator re-aggregates anyway.
	stripOrder bool
	// avgToSum replaces avg(x) with sum(x) (same alias) and appends one
	// `count(*) AS __cluster_cnt` item, because averages of averages are
	// wrong; the coordinator divides the merged sums by the merged count.
	avgToSum bool
	// forceCnt appends the count item even without an avg: the merge uses
	// it to ignore a global aggregate's default row from shards whose
	// partition matched nothing (their min/max sentinels must not win).
	forceCnt bool
}

// avgCntAlias is the helper column avg-rewritten fragments append; the
// merge strips it from the final result.
const avgCntAlias = "__cluster_cnt"

// printStmt regenerates SQL for the supported subset from its AST, applying
// the fragment rewrites. The output must re-parse to an equivalent
// statement on the shard — round-trip tests pin that.
func printStmt(stmt *sql.SelectStmt, o fragOpts) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	needCnt := o.forceCnt
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		agg := it.Agg
		if o.avgToSum && agg == "avg" {
			agg = "sum"
			needCnt = true
		}
		switch {
		case it.Star:
			b.WriteString("count(*)")
		case agg != "":
			b.WriteString(agg)
			b.WriteString("(")
			b.WriteString(it.Col.String())
			b.WriteString(")")
		default:
			b.WriteString(it.Col.String())
		}
		if it.As != "" {
			b.WriteString(" AS ")
			b.WriteString(it.As)
		}
	}
	if needCnt {
		b.WriteString(", count(*) AS ")
		b.WriteString(avgCntAlias)
	}
	b.WriteString(" FROM ")
	for i, t := range stmt.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteString(" ")
			b.WriteString(t.Alias)
		}
	}
	if len(stmt.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range stmt.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			printCond(&b, c)
		}
	}
	if len(stmt.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range stmt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(stmt.OrderBy) > 0 && !o.stripOrder {
		b.WriteString(" ORDER BY ")
		for i, oi := range stmt.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(oi.Col.String())
			if oi.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if stmt.Limit > 0 && !o.stripLimit {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(stmt.Limit))
	}
	return b.String()
}

// printCond renders one WHERE conjunct.
func printCond(b *strings.Builder, c sql.Cond) {
	b.WriteString(c.Left.String())
	switch c.Op {
	case "like":
		b.WriteString(" LIKE ")
		printStr(b, c.Str)
	case "notlike":
		b.WriteString(" NOT LIKE ")
		printStr(b, c.Str)
	case "between":
		b.WriteString(" BETWEEN ")
		b.WriteString(strconv.FormatInt(c.Num, 10))
		b.WriteString(" AND ")
		b.WriteString(strconv.FormatInt(c.Num2, 10))
	case "in":
		b.WriteString(" IN (")
		if c.IsStr {
			for i, s := range c.StrList {
				if i > 0 {
					b.WriteString(", ")
				}
				printStr(b, s)
			}
		} else {
			for i, n := range c.NumList {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(strconv.FormatInt(n, 10))
			}
		}
		b.WriteString(")")
	default: // comparison operators
		b.WriteString(" ")
		b.WriteString(c.Op)
		b.WriteString(" ")
		switch {
		case c.IsJoin:
			b.WriteString(c.Right.String())
		case c.IsStr:
			printStr(b, c.Str)
		default:
			b.WriteString(strconv.FormatInt(c.Num, 10))
		}
	}
}

// printStr renders a single-quoted SQL string literal.
func printStr(b *strings.Builder, s string) {
	b.WriteString("'")
	b.WriteString(strings.ReplaceAll(s, "'", "''"))
	b.WriteString("'")
}
