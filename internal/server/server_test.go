// Black-box tests of the query service: sessions, plan-cache behavior,
// streaming, typed error mapping, drain semantics, and — under -race — a
// concurrent-session soak exercising shedding, mid-stream disconnects, and
// watchdog kills against one shared broker.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"partitionjoin/internal/admit"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/faultinject"
	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// testCatalog is the small two-table join corpus shared by most tests.
func testCatalog() sql.Catalog {
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "pay", Type: storage.Int64},
	)
	build := storage.NewTable("build", bs, 100)
	bk := build.Cols[0].(*storage.Int64Column)
	bp := build.Cols[1].(*storage.Int64Column)
	for i := 0; i < 100; i++ {
		bk.Values = append(bk.Values, int64(i))
		bp.Values = append(bp.Values, int64(i)*10)
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, 1000)
	pk := probe.Cols[0].(*storage.Int64Column)
	pv := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < 1000; i++ {
		pk.Values = append(pk.Values, int64(i%100))
		pv.Values = append(pv.Values, int64(i))
	}
	return sql.Catalog{"build": build, "probe": probe}
}

// wideCatalog returns a table big enough that a streamed response overflows
// the kernel socket buffers, so the server measurably blocks on a client
// that stops reading.
func wideCatalog() sql.Catalog {
	s := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "pad", Type: storage.String, StrCap: 96},
	)
	t := storage.NewTable("wide", s, 1<<16)
	k := t.Cols[0].(*storage.Int64Column)
	pad := t.Cols[1].(*storage.StringColumn)
	filler := bytes.Repeat([]byte("x"), 90)
	for i := 0; i < 1<<16; i++ {
		k.Values = append(k.Values, int64(i))
		pad.AppendString(string(filler))
	}
	return sql.Catalog{"wide": t}
}

// slowCatalog returns a join large enough that, executed with one worker,
// the query reliably outlives watchdog ticks and short drain grace windows.
var slowCatalogOnce = sync.OnceValue(func() sql.Catalog {
	const n = 4 << 20
	bs := storage.NewSchema(storage.ColumnDef{Name: "k", Type: storage.Int64})
	build := storage.NewTable("build", bs, 1024)
	bk := build.Cols[0].(*storage.Int64Column)
	for i := 0; i < 1024; i++ {
		bk.Values = append(bk.Values, int64(i))
	}
	ps := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "v", Type: storage.Int64},
	)
	probe := storage.NewTable("probe", ps, n)
	pk := probe.Cols[0].(*storage.Int64Column)
	pv := probe.Cols[1].(*storage.Int64Column)
	for i := 0; i < n; i++ {
		pk.Values = append(pk.Values, int64(i%1024))
		pv.Values = append(pv.Values, int64(i))
	}
	return sql.Catalog{"build": build, "probe": probe}
})

// harness boots a server over an httptest listener and checks for goroutine
// leaks once the test has drained it.
type harness struct {
	srv  *server.Server
	ts   *httptest.Server
	base string
}

func newHarness(t *testing.T, cfg server.Config, cat sql.Catalog) *harness {
	t.Helper()
	baseline := runtime.NumGoroutine()
	srv := server.New(cfg, cat)
	ts := httptest.NewServer(srv)
	h := &harness{srv: srv, ts: ts, base: ts.URL}
	t.Cleanup(func() {
		srv.Drain(10 * time.Second)
		ts.Close()
		waitGoroutines(t, baseline)
	})
	return h
}

func (h *harness) client() *server.Client {
	return &server.Client{Base: h.base, HTTP: h.ts.Client()}
}

// waitGoroutines polls until the goroutine count returns to the baseline;
// a count still above it after the deadline is a leak.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// rawQuery posts an arbitrary request body to /query and decodes the
// response, for tests exercising per-request overrides the typed client
// does not expose.
func rawQuery(t *testing.T, h *harness, body map[string]any) (int, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := h.ts.Client().Post(h.base+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("post /query: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /query response: %v", err)
	}
	return resp.StatusCode, doc
}

const joinCount = "SELECT count(*) AS n FROM probe r, build s WHERE r.k = s.k"

func TestQueryAndPlanCacheDifferential(t *testing.T) {
	// The result cache sits above the plan cache and would satisfy the
	// repeats before planning; disable it so this test exercises the
	// plan-cache layer itself.
	h := newHarness(t, server.Config{NoResultCache: true}, testCatalog())
	cl := h.client()
	ctx := context.Background()

	fresh, err := cl.Query(ctx, joinCount)
	if err != nil {
		t.Fatalf("fresh query: %v", err)
	}
	if fresh.CacheHit() {
		t.Fatal("first execution reported a plan-cache hit")
	}
	// Same statement, different whitespace and case: must normalize onto the
	// same cache key and return a byte-identical result set.
	cached, err := cl.Query(ctx, "select COUNT(*) as N  from probe r, build s where r.k = s.k")
	if err != nil {
		t.Fatalf("cached query: %v", err)
	}
	if !cached.CacheHit() {
		t.Fatal("re-execution missed the plan cache")
	}
	if !reflect.DeepEqual(fresh.Rows, cached.Rows) {
		t.Fatalf("cached execution differs from fresh: %v vs %v", cached.Rows, fresh.Rows)
	}
	if fresh.Rows[0][0].(float64) != 1000 {
		t.Fatalf("count = %v, want 1000", fresh.Rows[0][0])
	}

	// A second client (new connection, no session) shares the same plan.
	if res, err := h.client().Query(ctx, joinCount); err != nil || !res.CacheHit() {
		t.Fatalf("cross-client reuse: err=%v hit=%v", err, res != nil && res.CacheHit())
	}

	st := h.srv.Stats()
	if st.PlanCache.Hits < 2 || st.PlanCache.Size != 1 {
		t.Fatalf("cache stats = %+v, want >=2 hits over 1 entry", st.PlanCache)
	}
}

func TestPlanCacheInvalidationOnRegisterTable(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	cl := h.client()
	ctx := context.Background()

	before, err := cl.Query(ctx, "SELECT sum(pay) AS s FROM build")
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	// Reload "build" with doubled payloads; the cached plan must not serve
	// the old storage generation.
	bs := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "pay", Type: storage.Int64},
	)
	nb := storage.NewTable("build", bs, 100)
	nk := nb.Cols[0].(*storage.Int64Column)
	np := nb.Cols[1].(*storage.Int64Column)
	for i := 0; i < 100; i++ {
		nk.Values = append(nk.Values, int64(i))
		np.Values = append(np.Values, int64(i)*20)
	}
	h.srv.RegisterTable(nb)

	after, err := cl.Query(ctx, "SELECT sum(pay) AS s FROM build")
	if err != nil {
		t.Fatalf("query after reload: %v", err)
	}
	if after.CacheHit() {
		t.Fatal("query after table re-registration hit a stale cached plan")
	}
	if b, a := before.Rows[0][0].(float64), after.Rows[0][0].(float64); a != 2*b {
		t.Fatalf("sum after reload = %v, want %v", a, 2*b)
	}
	if h.srv.Stats().PlanCache.Size != 1 {
		t.Fatalf("cache size = %d after purge+refill, want 1", h.srv.Stats().PlanCache.Size)
	}
}

func TestSessionDefaultsAndPlanSharing(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	ctx := context.Background()

	// Sessions differing only in execution-time knobs share one plan.
	a, b := h.client(), h.client()
	if _, err := a.NewSession(ctx, server.SessionDefaults{Algo: "bhj"}); err != nil {
		t.Fatalf("session a: %v", err)
	}
	if _, err := b.NewSession(ctx, server.SessionDefaults{Algo: "rj", MemBudget: 8 << 20}); err != nil {
		t.Fatalf("session b: %v", err)
	}
	if res, err := a.Query(ctx, joinCount); err != nil || res.CacheHit() {
		t.Fatalf("session a first query: err=%v hit=%v", err, res != nil && res.CacheHit())
	}
	res, err := b.Query(ctx, joinCount)
	if err != nil || !res.CacheHit() {
		t.Fatalf("algorithms must share plans: err=%v hit=%v", err, res != nil && res.CacheHit())
	}
	if res.Rows[0][0].(float64) != 1000 {
		t.Fatalf("rj session count = %v, want 1000", res.Rows[0][0])
	}

	// A/B rewrite gates shape the prepared tree, so they fork the cache key.
	c := h.client()
	if _, err := c.NewSession(ctx, server.SessionDefaults{NoScanPushdown: true, NoDictCodes: true}); err != nil {
		t.Fatalf("session c: %v", err)
	}
	gated, err := c.Query(ctx, joinCount)
	if err != nil || gated.CacheHit() {
		t.Fatalf("gated session must compile its own plan: err=%v hit=%v", err, gated != nil && gated.CacheHit())
	}
	if !reflect.DeepEqual(gated.Rows, res.Rows) {
		t.Fatalf("gated plan answers differently: %v vs %v", gated.Rows, res.Rows)
	}

	stale := c.Session
	if err := c.EndSession(ctx); err != nil {
		t.Fatalf("end session: %v", err)
	}
	c.Session = stale
	if _, err := c.Query(ctx, joinCount); err == nil {
		t.Fatal("query on deleted session succeeded")
	}

	// An unknown algorithm is rejected at session creation.
	if _, err := h.client().NewSession(ctx, server.SessionDefaults{Algo: "nested-loops"}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestSessionExpiry(t *testing.T) {
	h := newHarness(t, server.Config{
		SessionTTL:      50 * time.Millisecond,
		JanitorInterval: 10 * time.Millisecond,
	}, testCatalog())
	cl := h.client()
	ctx := context.Background()
	id, err := cl.NewSession(ctx, server.SessionDefaults{})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.srv.Stats().SessionsExpired == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session %s not expired after idle TTL", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cl.Query(ctx, joinCount); err == nil {
		t.Fatal("query on expired session succeeded")
	}
}

// TestResultCacheHeader asserts the X-Result-Cache response header at the
// HTTP layer: "miss" on the filling execution, "hit" on the replay, absent
// when the server runs without a result cache.
func TestResultCacheHeader(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	post := func(base string) *http.Response {
		t.Helper()
		body := strings.NewReader(`{"sql": "SELECT count(*) AS n FROM probe"}`)
		resp, err := http.Post(base+"/query", "application/json", body)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		return resp
	}
	if got := post(h.base).Header.Get("X-Result-Cache"); got != "miss" {
		t.Fatalf("first execution X-Result-Cache = %q, want miss", got)
	}
	if got := post(h.base).Header.Get("X-Result-Cache"); got != "hit" {
		t.Fatalf("repeat X-Result-Cache = %q, want hit", got)
	}

	off := newHarness(t, server.Config{NoResultCache: true}, testCatalog())
	if got, ok := post(off.base).Header["X-Result-Cache"]; ok {
		t.Fatalf("cache-disabled server sent X-Result-Cache %v, want absent", got)
	}
}

func TestStreamingMatchesCollected(t *testing.T) {
	h := newHarness(t, server.Config{StreamChunk: 64}, testCatalog())
	cl := h.client()
	ctx := context.Background()

	collected, err := cl.Query(ctx, "SELECT k, v FROM probe")
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	var streamed [][]any
	tr, err := cl.QueryStream(ctx, "SELECT k, v FROM probe", func(row []any) error {
		streamed = append(streamed, row)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if tr.RowCount != collected.RowCount || len(streamed) != collected.RowCount {
		t.Fatalf("streamed %d rows, trailer says %d, collected %d",
			len(streamed), tr.RowCount, collected.RowCount)
	}
	if !reflect.DeepEqual(streamed, collected.Rows) {
		t.Fatal("streamed rows differ from collected rows")
	}
	if tr.Stats.PlanCache != "hit" {
		t.Fatalf("stream trailer plan_cache = %q, want hit", tr.Stats.PlanCache)
	}
}

func TestMidStreamDisconnectReleasesReservation(t *testing.T) {
	broker := admit.NewBroker(admit.Config{GlobalMem: 64 << 20})
	defer broker.Close()
	h := newHarness(t, server.Config{Broker: broker, StreamChunk: 16}, wideCatalog())
	cl := h.client()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	_, err := cl.QueryStream(ctx, "SELECT k, pad FROM wide", func(row []any) error {
		rows++
		if rows == 8 {
			// Stop reading and kill the connection: the server must notice
			// within one chunk and unwind, releasing the reservation.
			cancel()
			return errors.New("client walked away")
		}
		return nil
	})
	if err == nil {
		t.Fatal("abandoned stream reported success")
	}

	deadline := time.Now().Add(5 * time.Second)
	for broker.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reservation not released after mid-stream disconnect: %d bytes still held",
				broker.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShedMapsTo429WithRetryAfter(t *testing.T) {
	// MaxWait < 0 sheds on arrival whenever the pool cannot admit, making
	// the overload deterministic: the test itself holds the whole pool.
	broker := admit.NewBroker(admit.Config{
		GlobalMem:       1 << 20,
		PerQueryDefault: 1 << 20,
		MaxWait:         -1,
	})
	defer broker.Close()
	h := newHarness(t, server.Config{Broker: broker}, testCatalog())

	rsv, _, err := broker.Admit(context.Background(), 1<<20)
	if err != nil {
		t.Fatalf("hold pool: %v", err)
	}
	_, qerr := h.client().Query(context.Background(), joinCount)
	rsv.Release()
	var re *server.RemoteError
	if !errors.As(qerr, &re) {
		t.Fatalf("want RemoteError, got %v", qerr)
	}
	if re.Status != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", re.Status)
	}
	if !re.Overloaded() || re.RetryAfter <= 0 {
		t.Fatalf("shed response carries no backoff: %+v", re)
	}
	if st := h.srv.Stats(); st.Queries.Overloaded != 1 || st.Broker.Sheds != 1 {
		t.Fatalf("shed counters = %+v / broker %+v", st.Queries, st.Broker)
	}

	// With the pool free again the same statement succeeds.
	if _, err := h.client().Query(context.Background(), joinCount); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

func TestWatchdogKillMapsTo500(t *testing.T) {
	faultinject.FailOnLeak(t)
	broker := admit.NewBroker(admit.Config{
		GlobalMem:        64 << 20,
		StallWindow:      50 * time.Millisecond,
		WatchdogInterval: 5 * time.Millisecond,
	})
	defer broker.Close()
	h := newHarness(t, server.Config{Broker: broker, Workers: 1}, testCatalog())
	// Wedge the single worker at its first morsel claim — right after the
	// progress tick — for far longer than the stall window, so the genuine
	// no-progress detection (not an injected watchdog error) kills the query.
	faultinject.Arm(t, exec.MorselSite, faultinject.Fault{Kind: faultinject.Stall, Stall: 400 * time.Millisecond, Once: true})

	_, err := h.client().Query(context.Background(), joinCount)
	var re *server.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Status != http.StatusInternalServerError {
		t.Fatalf("watchdog kill status = %d, want 500", re.Status)
	}
	st := h.srv.Stats()
	if st.Queries.Stalled != 1 || st.Broker.StallKills != 1 {
		t.Fatalf("stall counters = %+v / broker %+v", st.Queries, st.Broker)
	}
	if broker.InUse() != 0 {
		t.Fatalf("killed query leaked %d reserved bytes", broker.InUse())
	}
}

func TestTimeoutMapsTo408(t *testing.T) {
	h := newHarness(t, server.Config{Workers: 1}, slowCatalogOnce())
	status, doc := rawQuery(t, h, map[string]any{"sql": joinCount, "timeout_ms": 1})
	if status != http.StatusRequestTimeout {
		t.Fatalf("timeout status = %d (%v), want 408", status, doc)
	}
	if h.srv.Stats().Queries.Timeout != 1 {
		t.Fatalf("timeout counter = %d, want 1", h.srv.Stats().Queries.Timeout)
	}
}

func TestBadRequestsMapTo400(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	for _, body := range []map[string]any{
		{"sql": ""},
		{"sql": "SELEC nonsense"},
		{"sql": "SELECT count(*) FROM nosuchtable"},
		{"sql": joinCount, "session": "s-unknown"},
	} {
		status, doc := rawQuery(t, h, body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %v: status = %d (%v), want 400", body, status, doc)
		}
	}
	if got := h.srv.Stats().Queries.BadRequest; got != 4 {
		t.Fatalf("bad-request counter = %d, want 4", got)
	}
}

func TestDrainRefusesNewWorkAndFlipsHealthz(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	cl := h.client()
	ctx := context.Background()
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz while serving: %v", err)
	}
	if !h.srv.Drain(time.Second) {
		t.Fatal("idle drain was not clean")
	}
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("healthz ok while draining")
	}
	_, err := cl.Query(ctx, joinCount)
	var re *server.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %v, want 503", err)
	}
	// Idempotent: a second drain returns immediately.
	if !h.srv.Drain(time.Second) {
		t.Fatal("repeat drain not clean")
	}
}

func TestDrainCancelsStragglers(t *testing.T) {
	h := newHarness(t, server.Config{Workers: 1}, slowCatalogOnce())
	cl := h.client()

	errCh := make(chan error, 1)
	go func() {
		_, err := cl.Query(context.Background(), joinCount)
		errCh <- err
	}()
	// Wait for the query to be in flight, then drain with a grace window far
	// shorter than its runtime.
	deadline := time.Now().Add(5 * time.Second)
	for h.srv.Stats().Queries.Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became active")
		}
		time.Sleep(time.Millisecond)
	}
	if clean := h.srv.Drain(time.Millisecond); clean {
		t.Fatal("drain reported clean despite a straggler")
	}
	err := <-errCh
	var re *server.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("straggler result = %v, want 503 (cancelled by drain)", err)
	}
}

// TestConcurrentSessionsSoak is the in-package half of the acceptance soak:
// many concurrent sessions streaming against one tight broker, with clients
// that shed-and-retry, one that disconnects mid-stream, and one killed by
// the watchdog — all while -race watches, and with pool balance and
// goroutine counts asserted after a clean drain.
func TestConcurrentSessionsSoak(t *testing.T) {
	faultinject.FailOnLeak(t)
	const clients = 8
	const iters = 4
	broker := admit.NewBroker(admit.Config{
		GlobalMem:        8 << 20,
		PerQueryDefault:  2 << 20,
		QueueDepth:       clients,
		MaxWait:          500 * time.Millisecond,
		StallWindow:      time.Hour, // during the soak only the armed fault may kill
		WatchdogInterval: 5 * time.Millisecond,
	})
	defer broker.Close()
	cat := testCatalog()
	for k, v := range wideCatalog() {
		cat[k] = v
	}
	h := newHarness(t, server.Config{Broker: broker, StreamChunk: 32}, cat)

	var totalRows, sheds, retries int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := h.client()
			ctx := context.Background()
			if _, err := cl.NewSession(ctx, server.SessionDefaults{Algo: []string{"bhj", "rj"}[ci%2]}); err != nil {
				errCh <- fmt.Errorf("client %d session: %w", ci, err)
				return
			}
			for it := 0; it < iters; it++ {
				var rows int64
				for {
					n := int64(0)
					_, err := cl.QueryStream(ctx, "SELECT k, v FROM probe", func([]any) error {
						n++
						return nil
					})
					if err != nil {
						var re *server.RemoteError
						if errors.As(err, &re) && re.Overloaded() {
							mu.Lock()
							sheds++
							retries++
							mu.Unlock()
							time.Sleep(5 * time.Millisecond)
							continue
						}
						errCh <- fmt.Errorf("client %d iter %d: %w", ci, it, err)
						return
					}
					rows = n
					break
				}
				mu.Lock()
				totalRows += rows
				mu.Unlock()
			}
			_ = cl.EndSession(ctx)
		}(ci)
	}

	// One extra client abandons a fat stream mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		n := 0
		h.client().QueryStream(ctx, "SELECT k, pad FROM wide", func([]any) error {
			if n++; n == 4 {
				cancel()
			}
			return nil
		})
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if want := int64(clients * iters * 1000); totalRows != want {
		t.Fatalf("streamed %d rows total, want %d", totalRows, want)
	}

	// One more query, watchdog-killed: a morsel stall flattens its progress
	// counter and the armed watchdog fault turns the first flat sample into
	// a kill — proving kills coexist with the healthy traffic this broker
	// just served.
	faultinject.Arm(t, exec.MorselSite, faultinject.Fault{Kind: faultinject.Stall, Stall: 400 * time.Millisecond, Once: true})
	faultinject.Arm(t, admit.WatchdogSite, faultinject.Fault{Kind: faultinject.Fail, Once: true})
	_, werr := h.client().Query(context.Background(), joinCount)
	var wre *server.RemoteError
	if !errors.As(werr, &wre) || wre.Status != http.StatusInternalServerError {
		t.Fatalf("watchdog-targeted query: %v, want 500", werr)
	}
	if broker.StallKills() == 0 {
		t.Fatal("watchdog recorded no kill")
	}

	if clean := h.srv.Drain(10 * time.Second); !clean {
		t.Fatal("soak drain was not clean")
	}
	if inUse := broker.InUse(); inUse != 0 {
		t.Fatalf("broker pool unbalanced after drain: %d bytes in use", inUse)
	}
	st := h.srv.Stats()
	if st.Sessions != 0 {
		t.Fatalf("%d sessions survived drain", st.Sessions)
	}
	t.Logf("soak: %d queries (%d ok, %d shed server-side), cache %d/%d hits, %d retries client-side",
		st.Queries.Total, st.Queries.OK, st.Queries.Overloaded,
		st.PlanCache.Hits, st.PlanCache.Hits+st.PlanCache.Misses, retries)
}

// TestDrainWhileStreamingFinishesStream: SIGTERM's drain must not cut an
// NDJSON stream mid-flight — the in-progress stream runs to its trailer
// while new queries are refused with 503, and the drain reports clean.
func TestDrainWhileStreamingFinishesStream(t *testing.T) {
	h := newHarness(t, server.Config{Workers: 1, StreamChunk: 64}, wideCatalog())
	cl := h.client()

	started := make(chan struct{})
	release := make(chan struct{})
	type streamOut struct {
		tr  *server.StreamTrailer
		n   int
		err error
	}
	outCh := make(chan streamOut, 1)
	go func() {
		var out streamOut
		var once sync.Once
		out.tr, out.err = cl.QueryStream(context.Background(),
			"SELECT k, pad FROM wide", func(row []any) error {
				out.n++
				once.Do(func() { close(started) })
				if out.n == 1 {
					<-release // hold the stream open until drain has begun
				}
				return nil
			})
		outCh <- out
	}()
	<-started

	drainDone := make(chan bool, 1)
	go func() { drainDone <- h.srv.Drain(30 * time.Second) }()

	// The draining server refuses new work while the stream is still live.
	refused := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := cl.Query(context.Background(), "SELECT count(*) AS n FROM wide")
		var re *server.RemoteError
		if errors.As(err, &re) && re.Status == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("draining server kept accepting new queries")
	}

	close(release)
	if clean := <-drainDone; !clean {
		t.Error("drain was not clean despite the stream finishing in grace")
	}
	out := <-outCh
	if out.err != nil {
		t.Fatalf("stream interrupted by drain: %v", out.err)
	}
	if out.tr == nil || out.tr.RowCount != 1<<16 || out.n != 1<<16 {
		t.Fatalf("stream incomplete: trailer %+v, %d rows seen, want %d", out.tr, out.n, 1<<16)
	}
}

// TestQueryIDPropagatesEndToEnd: a caller-supplied X-Query-ID comes back on
// collected results, stream trailers, and error bodies, so one id follows
// the query through every layer.
func TestQueryIDPropagatesEndToEnd(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	cl := h.client()
	cl.QueryID = "trace-abc"
	ctx := context.Background()

	res, err := cl.Query(ctx, joinCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID != "trace-abc" {
		t.Fatalf("collected QueryID = %q, want trace-abc", res.QueryID)
	}

	tr, err := cl.QueryStream(ctx, joinCount, func([]any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if tr.QueryID != "trace-abc" {
		t.Fatalf("trailer QueryID = %q, want trace-abc", tr.QueryID)
	}

	_, err = cl.Query(ctx, "SELECT nope FROM nowhere")
	var re *server.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if re.QueryID != "trace-abc" {
		t.Fatalf("error QueryID = %q, want trace-abc", re.QueryID)
	}

	// Hostile ids are sanitized, not echoed: spaces and non-ASCII drop,
	// length is bounded to 64.
	cl.QueryID = "evil id ☠ " + strings.Repeat("z", 80)
	res, err = cl.Query(ctx, joinCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueryID) > 64 || strings.ContainsAny(res.QueryID, " ☠") ||
		!strings.HasPrefix(res.QueryID, "evilid") {
		t.Fatalf("sanitized QueryID = %q", res.QueryID)
	}
}
