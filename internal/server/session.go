package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"partitionjoin/internal/plan"
	"partitionjoin/internal/spill"
)

// SessionDefaults are the per-session knobs a client sets once at session
// creation instead of repeating on every query. The zero value of each field
// defers to the server's configuration.
type SessionDefaults struct {
	// MemBudget is the per-query reservation request in bytes.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// Timeout bounds each query of the session (milliseconds on the wire).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Algo selects the default join implementation: "bhj", "rj", "brj".
	Algo string `json:"algo,omitempty"`
	// NoScanPushdown / NoDictCodes are the A/B gates: they select which
	// rewrite variant of each statement the session compiles and caches.
	NoScanPushdown bool `json:"no_scan_pushdown,omitempty"`
	NoDictCodes    bool `json:"no_dict_codes,omitempty"`
	// NoAdapt disables runtime adaptation for the session's queries. An
	// execution-time knob (like the join algorithm), deliberately absent
	// from the plan-cache key.
	NoAdapt bool `json:"no_adapt,omitempty"`
	// NoResultCache bypasses the result cache for the session's queries:
	// they neither read nor fill it. Like NoAdapt it is execution-time
	// state, outside the plan-cache (and result-cache) key — opted-out
	// sessions do not fragment either cache.
	NoResultCache bool `json:"no_result_cache,omitempty"`
}

// parseAlgo maps the wire name onto the plan enum.
func parseAlgo(s string) (plan.JoinAlgo, bool) {
	switch strings.ToLower(s) {
	case "", "bhj":
		return plan.BHJ, true
	case "rj":
		return plan.RJ, true
	case "brj":
		return plan.BRJ, true
	}
	return plan.BHJ, false
}

// session is one client's server-side state: defaults, an expiry refreshed
// on every use, and a private spill parent so one session's disk usage is
// reclaimed in a single remove when it ends.
type session struct {
	id       string
	defaults SessionDefaults

	mu       sync.Mutex
	expires  time.Time
	spillDir string // lazy; "" until the first spilling-capable query
	queries  int64
}

// touch extends the session's lease.
func (s *session) touch(ttl time.Duration) {
	s.mu.Lock()
	s.expires = time.Now().Add(ttl)
	s.queries++
	s.mu.Unlock()
}

// spillParent returns the session's private spill directory, creating it
// under parent on first use.
func (s *session) spillParent(parent string) (string, error) {
	if parent == "" {
		return "", nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spillDir != "" {
		return s.spillDir, nil
	}
	dir, err := spill.SessionParent(parent, s.id)
	if err != nil {
		return "", err
	}
	s.spillDir = dir
	return dir, nil
}

// destroy reclaims the session's spill tree.
func (s *session) destroy() {
	s.mu.Lock()
	dir := s.spillDir
	s.spillDir = ""
	s.mu.Unlock()
	if dir != "" {
		spill.RemoveSessionParent(dir)
	}
}

// createSession registers a new session with the given defaults.
func (s *Server) createSession(d SessionDefaults) (*session, error) {
	if _, ok := parseAlgo(d.Algo); !ok {
		return nil, fmt.Errorf("unknown join algorithm %q", d.Algo)
	}
	id := fmt.Sprintf("s%d-%d", time.Now().UnixNano(), s.sessionSeq.Add(1))
	sess := &session{id: id, defaults: d, expires: time.Now().Add(s.cfg.SessionTTL)}
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	return sess, nil
}

// lookupSession resolves and touches a session; a missing or expired id is
// an error (the client must create a new session).
func (s *Server) lookupSession(id string) (*session, error) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("unknown or expired session %q", id)
	}
	sess.touch(s.cfg.SessionTTL)
	return sess, nil
}

// dropSession removes a session and reclaims its spill tree.
func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	sess.destroy()
	return true
}

// sessionJanitor expires idle sessions periodically until the server's base
// context ends.
func (s *Server) sessionJanitor(interval time.Duration) {
	defer s.bg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*session
		s.mu.Lock()
		for id, sess := range s.sessions {
			sess.mu.Lock()
			dead := now.After(sess.expires)
			sess.mu.Unlock()
			if dead {
				delete(s.sessions, id)
				expired = append(expired, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range expired {
			sess.destroy()
			s.sessionsExpired.Add(1)
		}
	}
}
