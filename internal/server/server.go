// Package server is the query service layer of the engine: a long-lived,
// concurrent SQL-over-HTTP daemon wrapping the single-process stack (SQL
// frontend → plan → admission → governed execution → spill) the earlier
// layers built. It owns what a network service needs and a one-shot CLI
// never did:
//
//   - session lifecycle: clients create sessions carrying per-session
//     defaults (memory budget, timeout, join algorithm, rewrite A/B gates)
//     and a private spill directory, expired by a janitor when idle;
//   - a bounded LRU prepared-statement cache keyed on normalized SQL —
//     parse and plan once, execute many — invalidated when a table is
//     re-registered;
//   - a bytes- and entry-bounded result cache above the plan cache: repeat
//     statements replay pre-encoded row pages without planning, admission,
//     or execution, with the X-Result-Cache header naming hit or miss;
//   - chunked NDJSON row streaming with mid-stream client-disconnect
//     cancellation through the request context, the admission reservation
//     held until the last row is consumed;
//   - typed error mapping: overload → 429 with Retry-After, deadline → 408,
//     client cancel → 499, watchdog stall and contained panics → 5xx, every
//     response naming the query ID;
//   - graceful drain: stop accepting, let in-flight queries finish inside a
//     grace window, then cancel-cause the stragglers;
//   - introspection: /healthz flips during drain, /statsz exports broker
//     pool state, queue depth, shed counts, plan-cache hit rate, session
//     counts, and aggregated execution meters.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partitionjoin/internal/adapt"
	"partitionjoin/internal/admit"
	"partitionjoin/internal/colstore"
	"partitionjoin/internal/core"
	"partitionjoin/internal/exec"
	"partitionjoin/internal/plan"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
)

// StatusClientClosedRequest is the nginx-convention status for "the client
// went away before the response"; it can never reach that client, but it is
// what the access log and the error counters record.
const StatusClientClosedRequest = 499

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the per-query pipeline parallelism (0 = GOMAXPROCS).
	Workers int
	// Algo is the default join algorithm for sessions that do not choose.
	Algo plan.JoinAlgo
	// Core tunes the radix joins; the zero value uses core.DefaultConfig().
	Core core.Config
	// MemBudget is the default per-query budget request in bytes.
	MemBudget int64
	// Timeout is the default per-query deadline (0 = none).
	Timeout time.Duration
	// SpillDir, when set, arms spilling; sessions get private subtrees.
	SpillDir string
	// DataDir, when set, is the column store directory the served tables
	// were opened from; queries default their spill space under it when
	// SpillDir is empty (see plan.Options.DataDir).
	DataDir string
	// BufferPool, when set, is the column store's buffer pool backing the
	// served tables; /statsz reports its counters under "buffer_pool".
	BufferPool *colstore.Pool
	// PlanCacheSize bounds the prepared-statement LRU (<= 0 uses 128).
	PlanCacheSize int
	// ResultCacheBytes bounds the result cache (<= 0 uses 64 MiB) and
	// ResultCacheEntries its entry count (<= 0 uses 256); NoResultCache
	// disables result caching server-wide. Sessions opt out individually
	// via SessionDefaults.NoResultCache.
	ResultCacheBytes   int64
	ResultCacheEntries int
	NoResultCache      bool
	// SessionTTL expires idle sessions (<= 0 uses 10 minutes).
	SessionTTL time.Duration
	// JanitorInterval is the session-expiry sweep period (<= 0 uses
	// SessionTTL/4, min 100ms).
	JanitorInterval time.Duration
	// NoAdapt disables runtime adaptation (mid-build join migration, skew
	// splits, reservation revision) server-wide; sessions can also opt out
	// individually via SessionDefaults.
	NoAdapt bool
	// Broker routes queries through process-wide admission control; nil
	// runs unarbitrated. The server does not close it — the owner does.
	Broker *admit.Broker
	// StreamChunk is the number of rows encoded between flush/cancellation
	// checks while streaming (<= 0 uses 256).
	StreamChunk int
}

// queryCounters aggregates lifetime outcomes for /statsz.
type queryCounters struct {
	Total      atomic.Int64
	Active     atomic.Int64
	OK         atomic.Int64
	BadRequest atomic.Int64
	Overloaded atomic.Int64
	Timeout    atomic.Int64
	Canceled   atomic.Int64
	Stalled    atomic.Int64
	Internal   atomic.Int64
}

// execMeters aggregates ExecResult meters across all queries.
type execMeters struct {
	RowsReturned    atomic.Int64
	SourceRows      atomic.Int64
	SpilledBytes    atomic.Int64
	DegradedEvents  atomic.Int64
	MorselsPruned   atomic.Int64
	BatchesPruned   atomic.Int64
	RowsPrefiltered atomic.Int64
	AdaptMigrations atomic.Int64
	AdaptSplits     atomic.Int64
	AdaptRevisions  atomic.Int64
}

// Server is the query service. Construct with New, serve it as an
// http.Handler, and end it with Drain.
type Server struct {
	cfg    Config
	cache  *PlanCache
	rcache *ResultCache // nil when Config.NoResultCache
	mux    *http.ServeMux

	mu         sync.Mutex
	cat        sql.Catalog // replaced wholesale on RegisterTable (copy-on-write)
	catVersion int64
	sessions   map[string]*session
	draining   bool
	inflightN  int
	idleCh     chan struct{} // closed when draining && inflightN == 0

	baseCtx    context.Context // cancelled to hard-stop in-flight queries
	baseCancel context.CancelCauseFunc
	bg         sync.WaitGroup // janitor and other background loops

	sessionSeq      atomic.Int64
	sessionsExpired atomic.Int64
	queryID         atomic.Int64
	counters        queryCounters
	meters          execMeters
	started         time.Time
}

// New builds a server over the given catalog. The catalog map is copied;
// use RegisterTable to change it afterwards.
func New(cfg Config, cat sql.Catalog) *Server {
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 10 * time.Minute
	}
	if cfg.JanitorInterval <= 0 {
		cfg.JanitorInterval = cfg.SessionTTL / 4
		if cfg.JanitorInterval < 100*time.Millisecond {
			cfg.JanitorInterval = 100 * time.Millisecond
		}
	}
	if cfg.StreamChunk <= 0 {
		cfg.StreamChunk = 256
	}
	if cfg.Core == (core.Config{}) {
		cfg.Core = core.DefaultConfig()
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewPlanCache(cfg.PlanCacheSize),
		cat:      make(sql.Catalog, len(cat)),
		sessions: make(map[string]*session),
		idleCh:   make(chan struct{}),
		started:  time.Now(),
	}
	if !cfg.NoResultCache {
		s.rcache = NewResultCache(cfg.ResultCacheBytes, cfg.ResultCacheEntries)
	}
	for k, v := range cat {
		s.cat[strings.ToLower(k)] = v
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/session", s.handleSession)
	s.mux.HandleFunc("/session/", s.handleSession)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.bg.Add(1)
	go s.sessionJanitor(cfg.JanitorInterval)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Broker exposes the admission broker (nil when unarbitrated) so harnesses
// can assert pool balance after drain.
func (s *Server) Broker() *admit.Broker { return s.cfg.Broker }

// RegisterTable replaces (or adds) a table in the catalog and invalidates
// the plan cache: every cached plan compiled against the previous storage
// generation is unreachable afterwards — re-registration is how a table
// reload becomes visible, and a stale plan must never read freed columns.
func (s *Server) RegisterTable(t *storage.Table) {
	s.mu.Lock()
	next := make(sql.Catalog, len(s.cat)+1)
	for k, v := range s.cat {
		next[k] = v
	}
	next[strings.ToLower(t.Name)] = t
	s.cat = next
	s.catVersion++
	s.mu.Unlock()
	s.cache.Purge()
	if s.rcache != nil {
		s.rcache.Purge()
	}
}

// catalog returns the current catalog generation and its version.
func (s *Server) catalog() (sql.Catalog, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat, s.catVersion
}

// ErrDraining is the cancel cause installed when the drain grace period
// expires with queries still running.
var ErrDraining = errors.New("server: draining, grace period exceeded")

// Drain gracefully stops the server: new queries are refused with 503,
// in-flight queries may finish within grace, and any still running after
// that are cancelled through their contexts with ErrDraining as the cause.
// It returns true when every query finished inside the grace window (a
// "clean" drain) and false when stragglers had to be cancelled. Drain
// blocks until the last handler has returned and background loops have
// stopped; it is idempotent.
func (s *Server) Drain(grace time.Duration) bool {
	s.mu.Lock()
	alreadyIdle := false
	if !s.draining {
		s.draining = true
		if s.inflightN == 0 {
			close(s.idleCh)
			alreadyIdle = true
		}
	}
	s.mu.Unlock()

	clean := true
	if !alreadyIdle {
		timer := time.NewTimer(grace)
		select {
		case <-s.idleCh:
			timer.Stop()
		case <-timer.C:
			clean = false
			s.baseCancel(ErrDraining)
			<-s.idleCh
		}
	}
	s.baseCancel(ErrDraining) // stops the janitor; no-op if already cancelled
	s.bg.Wait()
	// Reclaim every session's spill tree on the way out.
	s.mu.Lock()
	sessions := s.sessions
	s.sessions = map[string]*session{}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.destroy()
	}
	return clean
}

// enter registers an in-flight query; it fails when draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflightN++
	return true
}

// leave balances enter and wakes Drain when the last query ends.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflightN--
	if s.draining && s.inflightN == 0 {
		close(s.idleCh)
	}
	s.mu.Unlock()
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	// Overrides (optional; session defaults, then server defaults apply).
	MemBudget int64 `json:"mem_budget,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Stream    bool  `json:"stream,omitempty"`
}

// colMeta describes one result column on the wire.
type colMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// queryStats is the per-query meter block of a response.
type queryStats struct {
	DurationMS   float64  `json:"duration_ms"`
	SourceRows   int64    `json:"source_rows"`
	Reserved     int64    `json:"reserved_bytes,omitempty"`
	AdmitWaitMS  float64  `json:"admit_wait_ms,omitempty"`
	MemPeak      int64    `json:"mem_peak_bytes,omitempty"`
	Degraded     []string `json:"degraded,omitempty"`
	SpilledBytes int64    `json:"spilled_bytes,omitempty"`
	// Adapt carries the runtime adaptation summary when the query adapted
	// (migrations, partition splits, reservation revisions, decision log).
	Adapt     *adapt.Stats `json:"adapt,omitempty"`
	PlanCache string       `json:"plan_cache"` // "hit" or "miss"
	// ResultCache is "hit" when the response was replayed from the result
	// cache and "miss" when this execution filled (or tried to fill) it;
	// absent when the cache is off or the session opted out.
	ResultCache string `json:"result_cache,omitempty"`
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error        string `json:"error"`
	QueryID      string `json:"query_id,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeError emits the JSON error body with the mapped status and counts it.
func (s *Server) writeError(w http.ResponseWriter, qid string, status int, err error) {
	body := errorBody{Error: err.Error(), QueryID: qid}
	var oe *admit.OverloadError
	if errors.As(err, &oe) {
		body.RetryAfterMS = oe.RetryAfter.Milliseconds()
		secs := int64(oe.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	switch status {
	case http.StatusBadRequest:
		s.counters.BadRequest.Add(1)
	case http.StatusTooManyRequests:
		s.counters.Overloaded.Add(1)
	case http.StatusRequestTimeout:
		s.counters.Timeout.Add(1)
	case StatusClientClosedRequest:
		s.counters.Canceled.Add(1)
	default:
		if errors.Is(err, admit.ErrStalled) {
			s.counters.Stalled.Add(1)
		} else {
			s.counters.Internal.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// statusFor maps an execution error onto its HTTP status. The qctx lets a
// generic context error be attributed: a dead request context means the
// client went away (499), a drain cancellation or watchdog kill is the
// server's doing.
func statusFor(err error, reqDone bool) int {
	switch {
	case errors.Is(err, admit.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, admit.ErrStalled):
		return http.StatusInternalServerError
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		if reqDone {
			return StatusClientClosedRequest
		}
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// cacheKey builds the plan-cache key: catalog generation, the two rewrite
// gates that shape the prepared tree, and the normalized statement. The
// join algorithm and all resource knobs are execution-time and deliberately
// absent — sessions differing only in them share one plan.
func cacheKey(catVersion int64, noPush, noDict bool, normalized string) string {
	return fmt.Sprintf("v%d|p%t|d%t|%s", catVersion, noPush, noDict, normalized)
}

// handleQuery is POST /query: resolve session, prepare (or fetch) the plan,
// admit, execute, and deliver rows as one JSON document or an NDJSON stream.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.enter() {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, "", http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	defer s.leave()
	s.counters.Total.Add(1)
	s.counters.Active.Add(1)
	defer s.counters.Active.Add(-1)

	// A caller-supplied X-Query-ID (a coordinator's fragment id, a client's
	// trace id) wins so one id follows the query through every log line,
	// error body, and stream trailer it touches; otherwise one is minted.
	qid := sanitizeQueryID(r.Header.Get("X-Query-ID"))
	if qid == "" {
		qid = fmt.Sprintf("q%d", s.queryID.Add(1))
	} else {
		s.queryID.Add(1)
	}
	w.Header().Set("X-Query-ID", qid)

	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, qid, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		s.writeError(w, qid, http.StatusBadRequest, errors.New("empty sql"))
		return
	}
	if h := r.Header.Get("X-Session"); h != "" && req.Session == "" {
		req.Session = h
	}
	stream := req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")

	// Session resolution: defaults layer under per-request overrides.
	var defaults SessionDefaults
	var sess *session
	if req.Session != "" {
		var err error
		sess, err = s.lookupSession(req.Session)
		if err != nil {
			s.writeError(w, qid, http.StatusBadRequest, err)
			return
		}
		defaults = sess.defaults
	}
	budget := s.cfg.MemBudget
	if defaults.MemBudget > 0 {
		budget = defaults.MemBudget
	}
	if req.MemBudget > 0 {
		budget = req.MemBudget
	}
	timeout := s.cfg.Timeout
	if defaults.TimeoutMS > 0 {
		timeout = time.Duration(defaults.TimeoutMS) * time.Millisecond
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	algo, _ := parseAlgo(defaults.Algo)

	// Plan cache: normalized SQL + catalog generation + rewrite gates.
	normalized, err := sql.Normalize(req.SQL)
	if err != nil {
		s.writeError(w, qid, http.StatusBadRequest, err)
		return
	}
	cat, catVersion := s.catalog()
	key := cacheKey(catVersion, defaults.NoScanPushdown, defaults.NoDictCodes, normalized)

	// Result cache: consulted before planning and before admission — a hit
	// costs no broker reservation and no execution, just a page replay. The
	// opt-out (server flag or session default) is an execution-time knob
	// and deliberately not part of the key: an opted-out session bypasses
	// the cache but does not fragment it.
	useRC := s.rcache != nil && !defaults.NoResultCache
	if useRC {
		if ce, ok := s.rcache.Get(key); ok {
			w.Header().Set("X-Result-Cache", "hit")
			s.counters.OK.Add(1)
			s.meters.RowsReturned.Add(int64(ce.rowCount))
			stats := queryStats{SourceRows: ce.sourceRows, PlanCache: "hit", ResultCache: "hit"}
			if stream {
				s.streamCached(r.Context(), w, qid, ce, stats, time.Now())
			} else {
				s.writeCachedDoc(w, qid, ce, stats, time.Now())
			}
			return
		}
		w.Header().Set("X-Result-Cache", "miss")
	}

	gateOpts := plan.Options{NoScanPushdown: defaults.NoScanPushdown, NoDictCodes: defaults.NoDictCodes}
	prepared, cached := s.cache.Get(key)
	if !cached {
		prepared, err = sql.Prepare(cat, req.SQL, gateOpts)
		if err != nil {
			s.writeError(w, qid, http.StatusBadRequest, err)
			return
		}
		s.cache.Put(key, prepared)
	}

	// Query context: dies with the client (request context), the drain
	// deadline (base context), or the per-query timeout.
	qctx, qcancel := context.WithCancelCause(r.Context())
	defer qcancel(nil)
	stopDrainWatch := context.AfterFunc(s.baseCtx, func() {
		qcancel(context.Cause(s.baseCtx))
	})
	defer stopDrainWatch()
	if timeout > 0 {
		var tcancel context.CancelFunc
		qctx, tcancel = context.WithTimeout(qctx, timeout)
		defer tcancel()
	}

	opts := plan.Options{
		Workers: s.cfg.Workers, Algo: algo, Core: s.cfg.Core,
		MemBudget:      budget,
		DataDir:        s.cfg.DataDir,
		NoScanPushdown: defaults.NoScanPushdown, NoDictCodes: defaults.NoDictCodes,
		NoAdapt: s.cfg.NoAdapt || defaults.NoAdapt,
	}
	if s.cfg.SpillDir != "" {
		opts.SpillDir = s.cfg.SpillDir
		if sess != nil {
			dir, derr := sess.spillParent(s.cfg.SpillDir)
			if derr != nil {
				s.writeError(w, qid, http.StatusInternalServerError, derr)
				return
			}
			opts.SpillDir = dir
		}
	}

	// Admission: the server holds the reservation itself so it spans both
	// execution and row streaming — a client that disconnects mid-stream
	// releases pool memory the moment the handler unwinds, not when some
	// timeout fires.
	if s.cfg.Broker != nil {
		rsv, actx, aerr := s.cfg.Broker.Admit(qctx, budget)
		if aerr != nil {
			s.writeError(w, qid, statusFor(aerr, r.Context().Err() != nil), aerr)
			return
		}
		defer rsv.Release()
		opts.Reservation = rsv
		qctx = actx
	}

	res, err := prepared.ExecuteErr(qctx, opts)
	if err != nil {
		s.writeError(w, qid, statusFor(err, r.Context().Err() != nil), err)
		return
	}
	s.counters.OK.Add(1)
	s.recordMeters(res)

	stats := queryStats{
		DurationMS:   float64(res.Duration.Microseconds()) / 1000,
		SourceRows:   res.SourceRows,
		Reserved:     res.Reserved,
		AdmitWaitMS:  float64(res.AdmitWait.Microseconds()) / 1000,
		MemPeak:      res.MemPeak,
		Degraded:     res.Degraded,
		SpilledBytes: res.Spill.SpilledBytes,
		PlanCache:    map[bool]string{true: "hit", false: "miss"}[cached],
	}
	if res.Adapt.Any() {
		a := res.Adapt
		stats.Adapt = &a
	}
	cols := make([]colMeta, len(res.Cols))
	for i, c := range res.Cols {
		cols[i] = colMeta{Name: c.Name, Type: res.Result.Vecs[i].T.String()}
	}
	if useRC {
		// Fill: encode the rows once into cache pages, insert, and serve
		// this response from the same pages — the first execution pays the
		// encoding exactly once. Oversized results are served through the
		// uncached writers instead.
		stats.ResultCache = "miss"
		if ce := encodeResultEntry(key, cols, res, s.rcache.MaxEntry()); ce != nil {
			s.rcache.Put(ce)
			if stream {
				s.streamCached(qctx, w, qid, ce, stats, time.Time{})
			} else {
				s.writeCachedDoc(w, qid, ce, stats, time.Time{})
			}
			return
		}
		s.rcache.noteRejected()
	}
	if stream {
		s.streamResult(qctx, w, qid, cols, res, stats)
	} else {
		s.writeResult(w, qid, cols, res, stats)
	}
}

// recordMeters folds one query's ExecResult into the lifetime aggregates.
func (s *Server) recordMeters(res *plan.ExecResult) {
	s.meters.RowsReturned.Add(int64(res.Result.NumRows()))
	s.meters.SourceRows.Add(res.SourceRows)
	s.meters.SpilledBytes.Add(res.Spill.SpilledBytes)
	s.meters.DegradedEvents.Add(int64(len(res.Degraded)) + res.DroppedEvents)
	s.meters.MorselsPruned.Add(res.Scan.MorselsPruned)
	s.meters.BatchesPruned.Add(res.Scan.BatchesPruned)
	s.meters.RowsPrefiltered.Add(res.Scan.RowsPrefiltered)
	s.meters.AdaptMigrations.Add(res.Adapt.Migrations)
	s.meters.AdaptSplits.Add(res.Adapt.Splits)
	s.meters.AdaptRevisions.Add(res.Adapt.Revisions())
}

// rowValue extracts row i of vector v as a JSON-encodable value.
func rowValue(v *exec.Vector, i int) any {
	switch v.T {
	case storage.Float64:
		return v.F64[i]
	case storage.String:
		return string(v.Str[i])
	default:
		return v.I64[i]
	}
}

// writeResult delivers the whole result as one JSON document.
func (s *Server) writeResult(w http.ResponseWriter, qid string, cols []colMeta, res *plan.ExecResult, stats queryStats) {
	n := res.Result.NumRows()
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(res.Result.Vecs))
		for c := range res.Result.Vecs {
			row[c] = rowValue(&res.Result.Vecs[c], i)
		}
		rows[i] = row
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		QueryID  string     `json:"query_id"`
		Cols     []colMeta  `json:"cols"`
		Rows     [][]any    `json:"rows"`
		RowCount int        `json:"row_count"`
		Stats    queryStats `json:"stats"`
	}{qid, cols, rows, n, stats})
}

// streamResult delivers rows as NDJSON: a header object, one JSON array per
// row, then a trailer object with the row count and meters. Rows go out in
// chunks of cfg.StreamChunk with a flush and a cancellation check between
// chunks, so a disconnected client stops the stream (and releases the
// admission reservation, held by the handler) within one chunk.
func (s *Server) streamResult(ctx context.Context, w http.ResponseWriter, qid string, cols []colMeta, res *plan.ExecResult, stats queryStats) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		QueryID string    `json:"query_id"`
		Cols    []colMeta `json:"cols"`
	}{qid, cols}); err != nil {
		return
	}
	n := res.Result.NumRows()
	row := make([]any, len(res.Result.Vecs))
	for i := 0; i < n; i++ {
		for c := range res.Result.Vecs {
			row[c] = rowValue(&res.Result.Vecs[c], i)
		}
		if err := enc.Encode(row); err != nil {
			return // client went away; handler unwinds, reservation releases
		}
		if (i+1)%s.cfg.StreamChunk == 0 {
			if flusher != nil {
				flusher.Flush()
			}
			if ctx.Err() != nil {
				s.counters.Canceled.Add(1)
				return
			}
		}
	}
	enc.Encode(struct {
		QueryID  string     `json:"query_id"`
		RowCount int        `json:"row_count"`
		Stats    queryStats `json:"stats"`
	}{qid, n, stats})
	if flusher != nil {
		flusher.Flush()
	}
}

// streamCached replays a cached result as NDJSON: header, then the cached
// row pages verbatim (they are already '\n'-terminated row lines), then a
// trailer. Pages are the flush unit, with a cancellation check between
// them so a disconnected client abandons the replay within one page. A
// non-zero start marks a cache hit: the trailer reports the replay time
// instead of the (absent) execution time.
func (s *Server) streamCached(ctx context.Context, w http.ResponseWriter, qid string, ce *resultEntry, stats queryStats, start time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if err := enc.Encode(StreamHeader{QueryID: qid, Cols: ce.cols}); err != nil {
		return
	}
	for _, pg := range ce.pages {
		if _, err := w.Write(pg); err != nil {
			return // client went away mid-replay
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ctx.Err() != nil {
			s.counters.Canceled.Add(1)
			return
		}
	}
	if !start.IsZero() {
		stats.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	}
	enc.Encode(StreamTrailer{QueryID: qid, RowCount: ce.rowCount, Stats: stats})
	if flusher != nil {
		flusher.Flush()
	}
}

// writeCachedDoc replays a cached result as one JSON document, splicing
// the NDJSON pages into the rows array by turning the '\n' row separators
// into ',' — json encoding escapes newlines inside values, so '\n' occurs
// only between rows.
func (s *Server) writeCachedDoc(w http.ResponseWriter, qid string, ce *resultEntry, stats queryStats, start time.Time) {
	if !start.IsZero() {
		stats.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	}
	colsJSON, _ := json.Marshal(ce.cols)
	statsJSON, _ := json.Marshal(stats)
	qidJSON, _ := json.Marshal(qid)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"query_id":%s,"cols":%s,"rows":[`, qidJSON, colsJSON)
	for i, pg := range ce.pages {
		if i > 0 {
			io.WriteString(w, ",")
		}
		// Every page ends with '\n'; strip it, splice the inner row
		// separators.
		w.Write(bytes.ReplaceAll(pg[:len(pg)-1], []byte("\n"), []byte(",")))
	}
	fmt.Fprintf(w, "],\"row_count\":%d,\"stats\":%s}\n", ce.rowCount, statsJSON)
}

// sanitizeQueryID keeps a caller-supplied query id loggable: printable
// ASCII, bounded length.
func sanitizeQueryID(s string) string {
	if len(s) > 64 {
		s = s[:64]
	}
	var b strings.Builder
	for _, r := range s {
		if r > 0x20 && r < 0x7f {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sessionResponse is the POST /session reply.
type sessionResponse struct {
	Session string `json:"session"`
	TTLMS   int64  `json:"ttl_ms"`
}

// handleSession creates (POST /session) and deletes (DELETE /session/<id>).
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if !s.enter() {
			s.writeError(w, "", http.StatusServiceUnavailable, errors.New("server is draining"))
			return
		}
		defer s.leave()
		var d SessionDefaults
		if r.Body != nil {
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&d); err != nil && err != io.EOF {
				s.writeError(w, "", http.StatusBadRequest, fmt.Errorf("bad session body: %w", err))
				return
			}
		}
		sess, err := s.createSession(d)
		if err != nil {
			s.writeError(w, "", http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sessionResponse{Session: sess.id, TTLMS: s.cfg.SessionTTL.Milliseconds()})
	case http.MethodDelete:
		id := strings.TrimPrefix(r.URL.Path, "/session/")
		if id == "" || id == "/session" {
			id = r.URL.Query().Get("id")
		}
		if !s.dropSession(id) {
			s.writeError(w, "", http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "POST or DELETE", http.StatusMethodNotAllowed)
	}
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 while
// draining so traffic shifts away before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// BufferPoolStats is the buffer-pool section of /statsz: the colstore
// counters plus the derived hit rate.
type BufferPoolStats struct {
	colstore.PoolStats
	HitRate float64 `json:"hit_rate"`
}

// ServerStats is the /statsz document.
type ServerStats struct {
	UptimeSec       float64      `json:"uptime_sec"`
	Draining        bool         `json:"draining"`
	Sessions        int          `json:"sessions"`
	SessionsExpired int64        `json:"sessions_expired"`
	Broker          *admit.Stats `json:"broker,omitempty"`
	PlanCache       CacheStats   `json:"plan_cache"`
	// ResultCache is absent when the result cache is disabled.
	ResultCache *ResultCacheStats `json:"result_cache,omitempty"`
	// BufferPool is absent when the server is not backed by a column store.
	BufferPool *BufferPoolStats `json:"buffer_pool,omitempty"`
	Queries    struct {
		Total      int64 `json:"total"`
		Active     int64 `json:"active"`
		OK         int64 `json:"ok"`
		BadRequest int64 `json:"bad_request"`
		Overloaded int64 `json:"overloaded"`
		Timeout    int64 `json:"timeout"`
		Canceled   int64 `json:"canceled"`
		Stalled    int64 `json:"stalled"`
		Internal   int64 `json:"internal"`
	} `json:"queries"`
	Meters struct {
		RowsReturned    int64 `json:"rows_returned"`
		SourceRows      int64 `json:"source_rows"`
		SpilledBytes    int64 `json:"spilled_bytes"`
		DegradedEvents  int64 `json:"degraded_events"`
		MorselsPruned   int64 `json:"morsels_pruned"`
		BatchesPruned   int64 `json:"batches_pruned"`
		RowsPrefiltered int64 `json:"rows_prefiltered"`
		AdaptMigrations int64 `json:"adapt_migrations"`
		AdaptSplits     int64 `json:"adapt_partition_splits"`
		AdaptRevisions  int64 `json:"adapt_reservation_revisions"`
	} `json:"meters"`
}

// Stats snapshots the server's introspection surface (also available over
// HTTP at /statsz).
func (s *Server) Stats() ServerStats {
	var st ServerStats
	st.UptimeSec = time.Since(s.started).Seconds()
	s.mu.Lock()
	st.Draining = s.draining
	st.Sessions = len(s.sessions)
	s.mu.Unlock()
	st.SessionsExpired = s.sessionsExpired.Load()
	if s.cfg.Broker != nil {
		bs := s.cfg.Broker.Stats()
		st.Broker = &bs
	}
	st.PlanCache = s.cache.Stats()
	if s.rcache != nil {
		rs := s.rcache.Stats()
		st.ResultCache = &rs
	}
	if s.cfg.BufferPool != nil {
		ps := s.cfg.BufferPool.Stats()
		st.BufferPool = &BufferPoolStats{PoolStats: ps, HitRate: ps.HitRate()}
	}
	st.Queries.Total = s.counters.Total.Load()
	st.Queries.Active = s.counters.Active.Load()
	st.Queries.OK = s.counters.OK.Load()
	st.Queries.BadRequest = s.counters.BadRequest.Load()
	st.Queries.Overloaded = s.counters.Overloaded.Load()
	st.Queries.Timeout = s.counters.Timeout.Load()
	st.Queries.Canceled = s.counters.Canceled.Load()
	st.Queries.Stalled = s.counters.Stalled.Load()
	st.Queries.Internal = s.counters.Internal.Load()
	st.Meters.RowsReturned = s.meters.RowsReturned.Load()
	st.Meters.SourceRows = s.meters.SourceRows.Load()
	st.Meters.SpilledBytes = s.meters.SpilledBytes.Load()
	st.Meters.DegradedEvents = s.meters.DegradedEvents.Load()
	st.Meters.MorselsPruned = s.meters.MorselsPruned.Load()
	st.Meters.BatchesPruned = s.meters.BatchesPruned.Load()
	st.Meters.RowsPrefiltered = s.meters.RowsPrefiltered.Load()
	st.Meters.AdaptMigrations = s.meters.AdaptMigrations.Load()
	st.Meters.AdaptSplits = s.meters.AdaptSplits.Load()
	st.Meters.AdaptRevisions = s.meters.AdaptRevisions.Load()
	return st
}

// handleStatsz serves the stats snapshot as JSON.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
