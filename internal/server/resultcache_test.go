// Result-cache tests: differential equality of cached vs uncached rows
// over TPC-H-shaped statements across sessions and rewrite gates,
// invalidation on table re-registration, mid-stream disconnect during a
// cached replay, and bytes-bound eviction under concurrent traffic.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"partitionjoin/internal/server"
	"partitionjoin/internal/sql"
	"partitionjoin/internal/storage"
	"partitionjoin/internal/tpch"
)

// tpchCat generates one small TPC-H database shared by the differential
// tests (generation dominates their runtime).
var tpchCat = sync.OnceValue(func() sql.Catalog { return tpch.ServeCatalog(0.01) })

// tpchStatements are Q3-, Q12- and Q18-style statements: a filtered
// three-way join rollup, a two-way join with IN and date-range predicates
// over dictionary columns, and a large-volume join aggregate.
func tpchStatements() []struct{ name, q string } {
	return []struct{ name, q string }{
		{"q3-style", fmt.Sprintf(
			`SELECT o_orderkey, sum(l_extendedprice) AS rev
			 FROM customer c, orders o, lineitem l
			 WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			   AND c.c_mktsegment = 'BUILDING'
			   AND o.o_orderdate < %d AND l.l_shipdate > %d
			 GROUP BY o_orderkey ORDER BY rev DESC, o_orderkey LIMIT 10`,
			tpch.Date(1995, 3, 15), tpch.Date(1995, 3, 15))},
		{"q12-style", fmt.Sprintf(
			`SELECT l_shipmode, count(*) AS n
			 FROM lineitem l, orders o
			 WHERE l.l_orderkey = o.o_orderkey
			   AND l_shipmode IN ('MAIL', 'SHIP')
			   AND l_receiptdate >= %d AND l_receiptdate <= %d
			 GROUP BY l_shipmode ORDER BY l_shipmode`,
			tpch.Date(1994, 1, 1), tpch.Date(1994, 12, 31))},
		{"q18-style",
			`SELECT o_orderpriority, sum(l_quantity) AS qty, count(*) AS n
			 FROM lineitem l, orders o
			 WHERE l.l_orderkey = o.o_orderkey
			 GROUP BY o_orderpriority ORDER BY o_orderpriority`},
	}
}

// TestResultCacheDifferential requires byte-identical rows from the result
// cache and from uncached execution, for every statement crossed with every
// rewrite-gate session shape, on both the fill (miss) and the replay (hit)
// request — and that opted-out sessions bypass the cache entirely.
func TestResultCacheDifferential(t *testing.T) {
	h := newHarness(t, server.Config{}, tpchCat())
	ctx := context.Background()

	gates := []struct {
		name     string
		defaults server.SessionDefaults
	}{
		{"default", server.SessionDefaults{}},
		{"no-pushdown", server.SessionDefaults{NoScanPushdown: true}},
		{"no-dict", server.SessionDefaults{NoDictCodes: true}},
	}

	for _, q := range tpchStatements() {
		t.Run(q.name, func(t *testing.T) {
			// Reference rows: an opted-out session, cache never involved.
			ref := h.client()
			if _, err := ref.NewSession(ctx, server.SessionDefaults{NoResultCache: true}); err != nil {
				t.Fatalf("reference session: %v", err)
			}
			want, err := ref.Query(ctx, q.q)
			if err != nil {
				t.Fatalf("reference query: %v", err)
			}
			if want.ResultCache != "" {
				t.Fatalf("opted-out session reported result_cache %q, want bypass", want.ResultCache)
			}
			for _, g := range gates {
				cl := h.client()
				if _, err := cl.NewSession(ctx, g.defaults); err != nil {
					t.Fatalf("session %s: %v", g.name, err)
				}
				fill, err := cl.Query(ctx, q.q)
				if err != nil {
					t.Fatalf("%s fill: %v", g.name, err)
				}
				if fill.ResultCache != "miss" {
					t.Fatalf("%s fill result_cache = %q, want miss", g.name, fill.ResultCache)
				}
				replay, err := cl.Query(ctx, q.q)
				if err != nil {
					t.Fatalf("%s replay: %v", g.name, err)
				}
				if !replay.ResultCacheHit() {
					t.Fatalf("%s replay result_cache = %q, want hit", g.name, replay.ResultCache)
				}
				if !reflect.DeepEqual(fill.Rows, want.Rows) || !reflect.DeepEqual(replay.Rows, want.Rows) {
					t.Fatalf("%s rows diverge: fill=%v replay=%v want=%v", g.name, fill.Rows, replay.Rows, want.Rows)
				}
				if replay.RowCount != want.RowCount {
					t.Fatalf("%s replay row_count = %d, want %d", g.name, replay.RowCount, want.RowCount)
				}
			}
		})
	}

	st := h.srv.Stats()
	if st.ResultCache == nil || st.ResultCache.Hits == 0 || st.ResultCache.Entries == 0 {
		t.Fatalf("result cache stats = %+v, want hits and entries", st.ResultCache)
	}
}

// TestResultCacheStreamDifferential replays a cached result over the NDJSON
// stream path and requires the same rows as the filling stream.
func TestResultCacheStreamDifferential(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	cl := h.client()
	ctx := context.Background()
	const q = `SELECT r.v AS v, s.pay AS pay FROM probe r, build s WHERE r.k = s.k ORDER BY v`

	collect := func() ([][]any, int) {
		var rows [][]any
		tr, err := cl.QueryStream(ctx, q, func(row []any) error {
			rows = append(rows, row)
			return nil
		})
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		return rows, tr.RowCount
	}
	fill, fillN := collect()
	replay, replayN := collect()
	if !reflect.DeepEqual(fill, replay) || fillN != replayN {
		t.Fatalf("streamed replay diverges: %d vs %d rows", len(fill), len(replay))
	}
	if st := h.srv.Stats(); st.ResultCache == nil || st.ResultCache.Hits == 0 {
		t.Fatalf("stream replay did not hit the result cache: %+v", st.ResultCache)
	}
}

// TestResultCacheInvalidationOnRegisterTable reloads a table between two
// executions of the same statement: the second must miss the cache and see
// the new storage generation, never the cached old rows.
func TestResultCacheInvalidationOnRegisterTable(t *testing.T) {
	h := newHarness(t, server.Config{}, testCatalog())
	cl := h.client()
	ctx := context.Background()
	const q = `SELECT sum(pay) AS s FROM build`

	before, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if warm, err := cl.Query(ctx, q); err != nil || !warm.ResultCacheHit() {
		t.Fatalf("warm repeat: err=%v result_cache=%v", err, warm != nil && warm.ResultCacheHit())
	}

	bs := storage.NewSchema(
		storage.ColumnDef{Name: "k", Type: storage.Int64},
		storage.ColumnDef{Name: "pay", Type: storage.Int64},
	)
	nb := storage.NewTable("build", bs, 100)
	nk := nb.Cols[0].(*storage.Int64Column)
	np := nb.Cols[1].(*storage.Int64Column)
	for i := 0; i < 100; i++ {
		nk.Values = append(nk.Values, int64(i))
		np.Values = append(np.Values, int64(i)*20)
	}
	h.srv.RegisterTable(nb)

	after, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatalf("query after reload: %v", err)
	}
	if after.ResultCacheHit() {
		t.Fatal("stale result served from cache after RegisterTable")
	}
	if b, a := before.Rows[0][0].(float64), after.Rows[0][0].(float64); a != 2*b {
		t.Fatalf("after reload sum = %v, want %v", a, 2*b)
	}
}

// TestResultCacheMidStreamDisconnect abandons a cached replay mid-stream:
// the server must notice within one page, stay healthy, and keep serving
// the full cached result to later clients.
func TestResultCacheMidStreamDisconnect(t *testing.T) {
	h := newHarness(t, server.Config{}, wideCatalog())
	cl := h.client()
	ctx := context.Background()
	// ~64K rows x ~100 B spans many 64 KiB cache pages.
	const q = `SELECT k, pad FROM wide`

	var total int
	if _, err := cl.QueryStream(ctx, q, func(row []any) error { total++; return nil }); err != nil {
		t.Fatalf("fill stream: %v", err)
	}

	errStop := errors.New("client bails")
	seen := 0
	if _, err := cl.QueryStream(ctx, q, func(row []any) error {
		seen++
		if seen >= 100 {
			return errStop
		}
		return nil
	}); !errors.Is(err, errStop) {
		t.Fatalf("disconnected replay: err=%v, want %v", err, errStop)
	}

	var again int
	if _, err := cl.QueryStream(ctx, q, func(row []any) error { again++; return nil }); err != nil {
		t.Fatalf("stream after disconnect: %v", err)
	}
	if again != total {
		t.Fatalf("replay after disconnect returned %d rows, want %d", again, total)
	}
	if st := h.srv.Stats(); st.ResultCache == nil || st.ResultCache.Hits < 2 {
		t.Fatalf("replays did not hit the result cache: %+v", st.ResultCache)
	}
}

// TestResultCacheEviction bounds the cache tightly and issues more distinct
// statements than fit — concurrently, so the LRU's locking is exercised
// under -race. The byte bound must hold throughout and evictions occur.
func TestResultCacheEviction(t *testing.T) {
	h := newHarness(t, server.Config{
		ResultCacheBytes:   1 << 15,
		ResultCacheEntries: 64,
	}, testCatalog())
	ctx := context.Background()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := h.client()
			for i := 0; i < 24; i++ {
				q := fmt.Sprintf(`SELECT v FROM probe WHERE v < %d ORDER BY v`, 200+(w*24+i)%32*25)
				if _, err := cl.Query(ctx, q); err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := h.srv.Stats()
	rc := st.ResultCache
	if rc == nil {
		t.Fatal("result cache stats missing")
	}
	if rc.Bytes > rc.CapBytes {
		t.Fatalf("cache bytes %d exceed bound %d", rc.Bytes, rc.CapBytes)
	}
	if rc.Entries > rc.CapEntries {
		t.Fatalf("cache entries %d exceed bound %d", rc.Entries, rc.CapEntries)
	}
	if rc.Evicted == 0 {
		t.Fatalf("no evictions under a %d-byte bound: %+v", rc.CapBytes, rc)
	}

	// The cache must still function after the churn: a small result fills
	// and replays.
	cl := h.client()
	const q = `SELECT v FROM probe WHERE v < 200 ORDER BY v`
	if _, err := cl.Query(ctx, q); err != nil {
		t.Fatalf("post-churn fill: %v", err)
	}
	if res, err := cl.Query(ctx, q); err != nil || !res.ResultCacheHit() {
		t.Fatalf("post-churn replay: err=%v hit=%v", err, res != nil && res.ResultCacheHit())
	}
}
