package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client of the query service, used by joinbench's serve
// experiment and by tests. It is safe for concurrent use; Session, when
// set, rides along on every query.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:7432".
	Base string
	// HTTP is the transport (nil uses http.DefaultClient).
	HTTP *http.Client
	// Session, when non-empty, is sent with every query.
	Session string
	// QueryID, when non-empty, is sent as X-Query-ID with every query so
	// server logs, error bodies, and stream trailers carry the caller's
	// trace id instead of a server-minted one.
	QueryID string
}

func (c *Client) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RemoteError is any non-2xx response: the mapped status, the server's
// message, and — for 429/503 — the suggested backoff.
type RemoteError struct {
	Status     int
	QueryID    string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s (query %s)", e.Status, e.Message, e.QueryID)
}

// Overloaded reports whether the server shed the query and retrying after
// RetryAfter is the contract.
func (e *RemoteError) Overloaded() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// remoteError decodes an error response.
func remoteError(resp *http.Response) *RemoteError {
	e := &RemoteError{Status: resp.StatusCode, QueryID: resp.Header.Get("X-Query-ID")}
	var body errorBody
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body) == nil {
		e.Message = body.Error
		if body.QueryID != "" {
			e.QueryID = body.QueryID
		}
		if body.RetryAfterMS > 0 {
			e.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
		}
	}
	if e.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if e.Message == "" {
		e.Message = resp.Status
	}
	return e
}

// NewSession creates a server-side session with the given defaults and
// stores its id on the client.
func (c *Client) NewSession(ctx context.Context, d SessionDefaults) (string, error) {
	b, _ := json.Marshal(d)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/session", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", remoteError(resp)
	}
	var sr sessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", fmt.Errorf("server: bad session response: %w", err)
	}
	c.Session = sr.Session
	return sr.Session, nil
}

// EndSession deletes the client's session on the server.
func (c *Client) EndSession(ctx context.Context) error {
	if c.Session == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/session/"+c.Session, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.Session = ""
	if resp.StatusCode != http.StatusNoContent {
		return remoteError(resp)
	}
	return nil
}

// QueryResult is a fully collected response.
type QueryResult struct {
	QueryID  string     `json:"query_id"`
	Cols     []colMeta  `json:"cols"`
	Rows     [][]any    `json:"rows"`
	RowCount int        `json:"row_count"`
	Stats    queryStats `json:"stats"`
	// ResultCache echoes the X-Result-Cache response header: "hit" when
	// the rows were replayed from the server's result cache, "miss" when
	// this execution filled it, "" when the cache was bypassed.
	ResultCache string `json:"-"`
}

// CacheHit reports whether the server executed a cached plan.
func (r *QueryResult) CacheHit() bool { return r.Stats.PlanCache == "hit" }

// ResultCacheHit reports whether the rows came from the result cache.
func (r *QueryResult) ResultCacheHit() bool { return r.ResultCache == "hit" }

// Query executes one statement and collects the whole result.
func (c *Client) Query(ctx context.Context, sqlText string) (*QueryResult, error) {
	resp, err := c.post(ctx, sqlText, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var qr QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("server: bad query response: %w", err)
	}
	qr.ResultCache = resp.Header.Get("X-Result-Cache")
	return &qr, nil
}

// StreamHeader is the first NDJSON line of a streamed result.
type StreamHeader struct {
	QueryID string    `json:"query_id"`
	Cols    []colMeta `json:"cols"`
}

// StreamTrailer is the last NDJSON line.
type StreamTrailer struct {
	QueryID  string     `json:"query_id"`
	RowCount int        `json:"row_count"`
	Stats    queryStats `json:"stats"`
}

// QueryStream executes one statement and feeds each row to fn as it
// arrives. Returning an error from fn (or cancelling ctx) abandons the
// stream — the server notices the disconnect and releases the query's
// admission reservation. The trailer is returned once the stream completes.
func (c *Client) QueryStream(ctx context.Context, sqlText string, fn func(row []any) error) (*StreamTrailer, error) {
	resp, err := c.post(ctx, sqlText, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("server: empty stream: %w", sc.Err())
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("server: bad stream header: %w", err)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '{' { // trailer
			var tr StreamTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				return nil, fmt.Errorf("server: bad stream trailer: %w", err)
			}
			return &tr, nil
		}
		var row []any
		if err := json.Unmarshal(line, &row); err != nil {
			return nil, fmt.Errorf("server: bad stream row: %w", err)
		}
		if err := fn(row); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("server: stream ended without trailer (query %s)", hdr.QueryID)
}

// post issues the query request.
func (c *Client) post(ctx context.Context, sqlText string, stream bool) (*http.Response, error) {
	b, _ := json.Marshal(queryRequest{SQL: sqlText, Session: c.Session, Stream: stream})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/query", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.QueryID != "" {
		req.Header.Set("X-Query-ID", c.QueryID)
	}
	if stream {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	return c.hc().Do(req)
}

// Healthz probes the health endpoint; it returns nil while the server is
// accepting queries.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Statsz fetches the server's stats snapshot.
func (c *Client) Statsz(ctx context.Context) (*ServerStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("server: bad statsz response: %w", err)
	}
	return &st, nil
}
