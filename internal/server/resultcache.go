package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"sync"

	"partitionjoin/internal/plan"
)

// ResultCache sits above the plan cache: where the plan cache saves parse
// and plan, the result cache saves the whole execution. It is a bounded
// (bytes and entries) LRU of fully-encoded result sets keyed exactly like
// the plan cache — normalized SQL, catalog generation, and the two
// plan-shaping rewrite gates (Server.cacheKey). Execution-time knobs (join
// algorithm, budgets, adaptation, and the result-cache opt-out itself) are
// deliberately absent from the key: they cannot change the rows a
// statement returns, only how fast they were produced, so sessions
// differing in them share one cached result.
//
// Entries store rows as pre-encoded NDJSON lines packed into pages, the
// stream path's flush unit: a hit replays pages verbatim with a flush and
// a cancellation check between pages, and the JSON-document path splices
// the same pages by turning the '\n' row separators into ',' — safe
// because encoding/json escapes newlines inside values, so '\n' occurs
// only between rows.
type ResultCache struct {
	mu         sync.Mutex
	capBytes   int64
	capEntries int
	maxEntry   int64 // largest cacheable result; bigger fills are rejected
	bytes      int64
	lru        *list.List // front = most recently used; values are *resultEntry
	byKey      map[string]*list.Element
	hits       int64
	misses     int64
	evicted    int64
	rejected   int64
}

// resultEntry is one cached result set.
type resultEntry struct {
	key   string
	bytes int64
	cols  []colMeta
	// pages are NDJSON row lines ('['...']\n' each), packed to about
	// resultPageBytes per page.
	pages    [][]byte
	rowCount int
	// sourceRows is the original execution's source-tuple count, replayed
	// in the stats block so throughput accounting stays meaningful.
	sourceRows int64
}

// resultPageBytes is the target page size: large enough to amortize the
// flush syscall, small enough that a disconnected client is noticed and
// the stream abandoned within one page.
const resultPageBytes = 64 << 10

// NewResultCache builds a cache bounded by capBytes (<= 0 uses 64 MiB) and
// capEntries (<= 0 uses 256). Single results larger than capBytes/8 are
// never cached: one giant result must not evict the whole working set.
func NewResultCache(capBytes int64, capEntries int) *ResultCache {
	if capBytes <= 0 {
		capBytes = 64 << 20
	}
	if capEntries <= 0 {
		capEntries = 256
	}
	return &ResultCache{
		capBytes:   capBytes,
		capEntries: capEntries,
		maxEntry:   capBytes / 8,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
// Entries are immutable after insertion, so the returned entry is safe to
// replay without holding the lock.
func (c *ResultCache) Get(key string) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*resultEntry), true
}

// Put inserts a result, evicting least-recently-used entries past either
// bound. Oversized results are dropped (rejected). Concurrent fills of the
// same key keep the newest.
func (c *ResultCache) Put(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes > c.maxEntry {
		c.rejected++
		return
	}
	if el, ok := c.byKey[e.key]; ok {
		c.bytes += e.bytes - el.Value.(*resultEntry).bytes
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		c.byKey[e.key] = c.lru.PushFront(e)
		c.bytes += e.bytes
	}
	for c.lru.Len() > c.capEntries || c.bytes > c.capBytes {
		oldest := c.lru.Back()
		old := oldest.Value.(*resultEntry)
		c.lru.Remove(oldest)
		delete(c.byKey, old.key)
		c.bytes -= old.bytes
		c.evicted++
	}
}

// MaxEntry returns the per-result size cap a fill must stay under.
func (c *ResultCache) MaxEntry() int64 { return c.maxEntry }

// noteRejected counts a fill abandoned for size before it reached Put.
func (c *ResultCache) noteRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

// Purge empties the cache: RegisterTable calls it alongside the plan
// cache's purge so a table reload invalidates cached rows immediately
// (the catalog version in the key already makes stale entries
// unreachable; purging frees their bytes).
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byKey = make(map[string]*list.Element)
	c.bytes = 0
}

// ResultCacheStats is the /statsz snapshot.
type ResultCacheStats struct {
	Entries    int     `json:"entries"`
	CapEntries int     `json:"cap_entries"`
	Bytes      int64   `json:"bytes"`
	CapBytes   int64   `json:"cap_bytes"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Evicted    int64   `json:"evicted"`
	Rejected   int64   `json:"rejected"`
	HitRate    float64 `json:"hit_rate"`
}

// Stats returns occupancy and hit/miss/eviction counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ResultCacheStats{
		Entries: c.lru.Len(), CapEntries: c.capEntries,
		Bytes: c.bytes, CapBytes: c.capBytes,
		Hits: c.hits, Misses: c.misses, Evicted: c.evicted, Rejected: c.rejected,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}

// encodeResultEntry encodes a finished execution into a cache entry:
// every row as one NDJSON line, lines packed into pages. It returns nil
// when the encoded rows outgrow maxBytes — the caller then serves the
// result through the uncached writers and the fill is rejected without
// having buffered the whole oversized result.
func encodeResultEntry(key string, cols []colMeta, res *plan.ExecResult, maxBytes int64) *resultEntry {
	e := &resultEntry{key: key, cols: cols, rowCount: res.Result.NumRows(), sourceRows: res.SourceRows}
	var page bytes.Buffer
	page.Grow(resultPageBytes + 1024)
	enc := json.NewEncoder(&page)
	row := make([]any, len(res.Result.Vecs))
	flush := func() {
		if page.Len() == 0 {
			return
		}
		pg := make([]byte, page.Len())
		copy(pg, page.Bytes())
		e.pages = append(e.pages, pg)
		e.bytes += int64(len(pg))
		page.Reset()
	}
	for i := 0; i < e.rowCount; i++ {
		for c := range res.Result.Vecs {
			row[c] = rowValue(&res.Result.Vecs[c], i)
		}
		if enc.Encode(row) != nil {
			return nil
		}
		if page.Len() >= resultPageBytes {
			flush()
			if e.bytes > maxBytes {
				return nil
			}
		}
	}
	flush()
	if e.bytes > maxBytes {
		return nil
	}
	return e
}
