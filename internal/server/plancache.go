package server

import (
	"container/list"
	"sync"

	"partitionjoin/internal/plan"
)

// PlanCache is a bounded LRU of prepared statements keyed on normalized SQL
// (plus catalog version and rewrite gates — see Server.cacheKey). Parse and
// plan run once per distinct statement; repeated traffic executes the cached
// plan. Entries referencing re-registered tables become unreachable when the
// catalog version bumps and age out of the LRU; Purge drops everything at
// once (table reload).
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	byKey   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type cacheEntry struct {
	key string
	p   *plan.Prepared
}

// NewPlanCache builds a cache holding at most capacity plans (<= 0 uses 128).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &PlanCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached plan for key, marking it most recently used.
func (c *PlanCache) Get(key string) (*plan.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used entry
// past capacity. Concurrent fills of the same key keep the newest.
func (c *PlanCache) Put(key string, p *plan.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, p: p})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// Purge empties the cache (table re-registration invalidates every plan that
// might reference the replaced storage).
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byKey = make(map[string]*list.Element)
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is the snapshot exported by /statsz.
type CacheStats struct {
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Evicted  int64   `json:"evicted"`
	HitRate  float64 `json:"hit_rate"`
}

// Stats returns hit/miss/eviction counters and the lifetime hit rate.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Size: c.lru.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses, Evicted: c.evicted}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
